# mxtasking-go build targets.

GO ?= go

.PHONY: all build vet test race bench chaos cluster-chaos steal-stress prefetch-stress interleave-stress pager-stress fuzz ci figures verify dat clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages designed to be race-free. The optimistic index
# structures intentionally perform validated racy reads (seqlock pattern)
# and are excluded by design; see README "Status". kvstore and wal are
# included: under `-race` the store selects the serialized tree mode
# (internal/kvstore/treemode_race.go), which is data-race-free by
# construction.
race:
	$(GO) test -race ./internal/mxtask ./internal/queue ./internal/latch \
		./internal/epoch ./internal/alloc ./internal/tbb ./internal/metrics \
		./internal/ycsb ./internal/tpch ./internal/hashjoin ./internal/sim \
		./internal/wal ./internal/kvstore ./internal/faultfs ./internal/linearize \
		./internal/netfault ./internal/repl ./internal/prefetch ./internal/pager \
		./cmd/mxload
	MXKV_SHARDS=4 $(GO) test -race -count=1 ./internal/kvstore
	$(GO) test -race -count=1 -shuffle=on -run 'TestGroup' ./internal/mxtask
	$(MAKE) prefetch-stress
	$(MAKE) interleave-stress
	$(MAKE) pager-stress

bench:
	$(GO) test -bench=. -benchmem .

# Chaos harness (README "Chaos testing"): crash the durable store at every
# enumerated WAL filesystem operation on the fault-injecting filesystem,
# recover from the crash image, and linearizability-check the merged
# pre/post-crash history; then drive the network fault matrix — the
# netfault proxy injecting latency, blackholes, RSTs, and one-way
# partitions into the client/server path. Race-detected; failures print
# the seed and fault index needed to reproduce the exact schedule.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/kvstore
	$(GO) test -race -count=1 ./internal/netfault
	MXKV_CLUSTER_SCHEDULES=10 $(GO) test -race -count=1 -timeout 600s \
		-run 'TestClusterChaosSchedules' ./internal/repl
	$(MAKE) steal-stress

# Scheduler stress (DESIGN.md §7): the cross-runtime stealing test suite
# swept over 20 seeds under the race detector — adversarial spawn patterns
# (hot node, bursty waves, resource-bound mixes) with exactly-once and
# mutual-exclusion ledgers, the steal-exclusion invariants, pending
# accounting, and shared-epoch reclamation. Shuffled so inter-test state
# leaks can't hide.
steal-stress:
	MXTASK_STEAL_SEEDS=20 $(GO) test -race -count=1 -shuffle=on -timeout 600s \
		-run 'TestGroup' -v ./internal/mxtask

# Learned-prefetcher stress (DESIGN.md §8): the seeded access-pattern
# suite — sequential, strided, phase-changing, interleaved, and random
# streams — swept over 20 seeds under the race detector, checking stride
# induction, adaptive-window behavior, the self-disable gate, and
# re-enable on fresh patterns. Shuffled so stream state can't leak
# between pattern classes.
prefetch-stress:
	MXPF_SEEDS=20 $(GO) test -race -count=1 -shuffle=on -timeout 600s \
		-run 'TestPrefetchPatterns' -v ./internal/prefetch

# Cluster chaos (DESIGN.md §6): a 3-node replicated cluster — all links
# through netfault proxies — driven through 20 seeded fault schedules of
# primary crashes (torn-tail disk images), replica crashes, and one-way
# replication-link partitions, under concurrent redirect-following
# writers and bounded-staleness readers. Strict ops are checked for
# per-phase linearizability (the timeline cuts at each primary crash),
# acked-durable writes for survival into the final timeline, and every
# windowed replica read against the final primary's replayed WAL.
cluster-chaos:
	MXKV_CLUSTER_SCHEDULES=20 $(GO) test -race -count=1 -timeout 900s \
		-run 'TestClusterChaosSchedules' -v ./internal/repl

# Interleaved-descent stress (DESIGN.md §9): the batched-traversal suite —
# lockstep invariance against the sequential reference, group descents
# racing splits and root growth, mixed batch workloads with exactly-once
# ledgers — swept over 20 seeds under the race detector (where the store
# runs the all-fallback serialized mode, covering both sides of the
# contract). Shuffled so tree/runtime state can't leak between tests.
interleave-stress:
	MXIL_SEEDS=20 $(GO) test -race -count=1 -shuffle=on -timeout 600s \
		-run 'TestInterleave|TestBatchCompletionContract' -v \
		./internal/blinktree ./internal/kvstore

# Paged-tier stress (DESIGN.md §10): the pager's seeded buffer-pool
# shape sweep (page size x frames x workers, stores/loads/frees/touches
# against an oracle under forced eviction) over 20 seeds, plus the paged
# store's lockstep invariance and crash-at-every-fs-op suites, all under
# the race detector. Shuffled so pool/runtime state can't leak between
# shapes. The paged server suite rides MXKV_PAGED (every backend behind a
# thrashing 8-frame pool).
pager-stress:
	MXPG_SEEDS=20 $(GO) test -race -count=1 -shuffle=on -timeout 600s \
		-run 'TestPager' -v ./internal/pager
	$(GO) test -race -count=1 -shuffle=on -timeout 600s \
		-run 'TestPaged|TestChaosPaged' -v ./internal/kvstore
	MXKV_PAGED=1 $(GO) test -race -count=1 ./internal/kvstore

# Fuzz smoke: 10s of coverage-guided input generation per target (`go test`
# allows one fuzz target per invocation).
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeRecord' -fuzztime=10s ./internal/wal
	$(GO) test -run '^$$' -fuzz 'FuzzServerHandle$$' -fuzztime=10s ./internal/kvstore
	$(GO) test -run '^$$' -fuzz 'FuzzServerProtocol' -fuzztime=10s ./internal/kvstore
	$(GO) test -run '^$$' -fuzz 'FuzzLookupBatch' -fuzztime=10s ./internal/kvstore
	$(GO) test -run '^$$' -fuzz 'FuzzThreadTreeOps' -fuzztime=10s ./internal/blinktree
	$(GO) test -run '^$$' -fuzz 'FuzzNodeLowerBound' -fuzztime=10s ./internal/blinktree
	$(GO) test -run '^$$' -fuzz 'FuzzPageCodec' -fuzztime=10s ./internal/pager

# The gate run before merging: vet, full build, an order-shuffled full
# test pass (catches tests coupled through shared state), race-detected
# tests of the concurrency-critical packages (the WAL and the store it
# backs), the chaos crash-recovery sweep, and a fuzz smoke pass over
# every fuzz target.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -count=1 -shuffle=on ./...
	$(GO) test -race ./internal/wal ./internal/kvstore ./internal/queue \
		./internal/epoch ./internal/faultfs ./internal/linearize \
		./internal/netfault ./internal/repl ./internal/pager ./cmd/mxload
	MXKV_SHARDS=4 $(GO) test -race -count=1 ./internal/kvstore
	$(GO) test -run '^$$' -bench 'BenchmarkServerSharded' -benchtime 100x .
	$(GO) test -run '^$$' -bench 'BenchmarkServerPagedYCSB' -benchtime 100x .
	$(MAKE) chaos
	$(MAKE) prefetch-stress
	$(MAKE) interleave-stress
	$(MAKE) pager-stress
	$(MAKE) fuzz

figures:
	$(GO) run ./cmd/mxbench

verify:
	$(GO) run ./cmd/mxbench -verify -experiment fig7

dat:
	$(GO) run ./cmd/mxbench -dat out -experiment fig7

clean:
	rm -rf out test_output.txt bench_output.txt
