# mxtasking-go build targets.

GO ?= go

.PHONY: all build vet test race bench figures verify dat clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages designed to be race-free. The optimistic index
# structures intentionally perform validated racy reads (seqlock pattern)
# and are excluded by design; see README "Status".
race:
	$(GO) test -race ./internal/mxtask ./internal/queue ./internal/latch \
		./internal/epoch ./internal/alloc ./internal/tbb ./internal/metrics \
		./internal/ycsb ./internal/tpch ./internal/hashjoin ./internal/sim

bench:
	$(GO) test -bench=. -benchmem .

figures:
	$(GO) run ./cmd/mxbench

verify:
	$(GO) run ./cmd/mxbench -verify -experiment fig7

dat:
	$(GO) run ./cmd/mxbench -dat out -experiment fig7

clean:
	rm -rf out test_output.txt bench_output.txt
