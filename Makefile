# mxtasking-go build targets.

GO ?= go

.PHONY: all build vet test race bench ci figures verify dat clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages designed to be race-free. The optimistic index
# structures intentionally perform validated racy reads (seqlock pattern)
# and are excluded by design; see README "Status". kvstore and wal are
# included: under `-race` the store selects the serialized tree mode
# (internal/kvstore/treemode_race.go), which is data-race-free by
# construction.
race:
	$(GO) test -race ./internal/mxtask ./internal/queue ./internal/latch \
		./internal/epoch ./internal/alloc ./internal/tbb ./internal/metrics \
		./internal/ycsb ./internal/tpch ./internal/hashjoin ./internal/sim \
		./internal/wal ./internal/kvstore

bench:
	$(GO) test -bench=. -benchmem .

# The gate run before merging: vet, full build, and race-detected tests
# of the concurrency-critical packages (the WAL and the store it backs).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/wal ./internal/kvstore ./internal/queue ./internal/epoch

figures:
	$(GO) run ./cmd/mxbench

verify:
	$(GO) run ./cmd/mxbench -verify -experiment fig7

dat:
	$(GO) run ./cmd/mxbench -dat out -experiment fig7

clean:
	rm -rf out test_output.txt bench_output.txt
