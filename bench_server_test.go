// Benchmarks for the KV server's TCP request path: blocking round trips
// vs the pipelined path. With pipelining the network round trip is
// amortized over the in-flight window and the server's task runtime sees
// real batches, so BenchmarkServerPipelined should beat
// BenchmarkServerSerial by well over 2x at depth >= 16.
//
// Run: go test -bench='BenchmarkServer' -benchtime=2s .
package mxtasking_test

import (
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
)

// benchServer starts an in-process server preloaded with keys 0..n-1.
func benchServer(b *testing.B, n uint64) *kvstore.Server {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, PrefetchDistance: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	b.Cleanup(rt.Stop)
	store := kvstore.New(rt)
	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < n; k++ {
		if c.InFlight() == kvstore.DefaultWindow {
			if _, err := c.AwaitSet(); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.SendSet(k, k); err != nil {
			b.Fatal(err)
		}
	}
	for c.InFlight() > 0 {
		if _, err := c.AwaitSet(); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

const benchKeys = 1 << 14

// BenchmarkServerSerial is the pre-pipelining request path: one GET per
// round trip, the connection idle while the request crosses the wire.
func BenchmarkServerSerial(b *testing.B) {
	srv := benchServer(b, benchKeys)
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(uint64(i) % benchKeys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPipelined keeps a window of GETs in flight on one
// connection; acceptance: depth=16 sustains at least 2x the serial
// ops/sec.
func BenchmarkServerPipelined(b *testing.B) {
	for _, depth := range []int{16, 64} {
		b.Run(benchName(depth), func(b *testing.B) {
			srv := benchServer(b, benchKeys)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					if _, _, err := c.AwaitGet(); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.SendGet(uint64(i) % benchKeys); err != nil {
					b.Fatal(err)
				}
			}
			for c.InFlight() > 0 {
				if _, _, err := c.AwaitGet(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(depth int) string {
	switch depth {
	case 16:
		return "depth=16"
	default:
		return "depth=64"
	}
}
