// Benchmarks for the KV server's TCP request path: blocking round trips
// vs the pipelined path. With pipelining the network round trip is
// amortized over the in-flight window and the server's task runtime sees
// real batches, so BenchmarkServerPipelined should beat
// BenchmarkServerSerial by well over 2x at depth >= 16.
//
// Run: go test -bench='BenchmarkServer' -benchtime=2s .
package mxtasking_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/prefetch"
	"mxtasking/internal/ycsb"
)

// benchServer starts an in-process server preloaded with keys 0..n-1.
func benchServer(b *testing.B, n uint64) *kvstore.Server {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, PrefetchDistance: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	b.Cleanup(rt.Stop)
	store := kvstore.New(rt)
	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < n; k++ {
		if c.InFlight() == kvstore.DefaultWindow {
			if _, err := c.AwaitSet(); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.SendSet(k, k); err != nil {
			b.Fatal(err)
		}
	}
	for c.InFlight() > 0 {
		if _, err := c.AwaitSet(); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

const benchKeys = 1 << 14

// BenchmarkServerSerial is the pre-pipelining request path: one GET per
// round trip, the connection idle while the request crosses the wire.
func BenchmarkServerSerial(b *testing.B) {
	srv := benchServer(b, benchKeys)
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(uint64(i) % benchKeys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPipelined keeps a window of GETs in flight on one
// connection; acceptance: depth=16 sustains at least 2x the serial
// ops/sec.
func BenchmarkServerPipelined(b *testing.B) {
	for _, depth := range []int{16, 64} {
		b.Run(benchName(depth), func(b *testing.B) {
			srv := benchServer(b, benchKeys)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					if _, _, err := c.AwaitGet(); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.SendGet(uint64(i) % benchKeys); err != nil {
					b.Fatal(err)
				}
			}
			for c.InFlight() > 0 {
				if _, _, err := c.AwaitGet(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchShardedServer starts a server over an n-shard store, one runtime
// per shard, preloaded with `records` YCSB-scrambled keys (scrambling
// spreads the key space uniformly, so every shard holds its share). steal
// turns on cross-runtime pool stealing in the shard group.
func benchShardedServer(b *testing.B, shards int, records uint64, steal bool) *kvstore.Server {
	b.Helper()
	g := mxtask.NewGroup(mxtask.Config{
		Workers:          4,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		Steal:            mxtask.StealConfig{Enabled: steal},
	}, shards)
	g.Start()
	b.Cleanup(g.Stop)
	srv, err := kvstore.NewServer(kvstore.NewSharded(g.Runtimes()), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for id := uint64(0); id < records; id++ {
		if c.InFlight() == kvstore.DefaultWindow {
			if _, err := c.AwaitSet(); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.SendSet(ycsb.ScrambleKey(id), id); err != nil {
			b.Fatal(err)
		}
	}
	for c.InFlight() > 0 {
		if _, err := c.AwaitSet(); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// BenchmarkServerSharded drives a YCSB-A stream (50 % reads / 50 %
// updates, Zipfian over scrambled keys) through one pipelined connection
// at depth 16 against 1-, 2-, and 4-shard backends. Acceptance on
// multi-socket hardware: 4 shards sustain at least 1.5x the 1-shard
// ops/sec — each shard's tree, task pools, and hot set stay local to its
// runtime. On a single-core box the ratio is scheduler noise; the
// benchmark reports, it does not assert.
func BenchmarkServerSharded(b *testing.B) {
	const depth = 16
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv := benchShardedServer(b, shards, benchKeys, false)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			gen := ycsb.NewGenerator(ycsb.WorkloadA, benchKeys, 42)
			await := func() {
				reply, err := c.Await()
				if err != nil || strings.HasPrefix(reply, "ERR") {
					b.Fatalf("reply %q, err %v", reply, err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					await()
				}
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					err = c.SendGet(op.Key)
				} else {
					err = c.SendSet(op.Key, op.Value)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			for c.InFlight() > 0 {
				await()
			}
		})
	}
}

// BenchmarkServerShardedZipf is the hot-shard benchmark: a Zipfian
// θ=0.99 key stream (50 % GET / 50 % SET over scrambled keys, depth 16)
// against 1-, 2-, and 4-shard backends with cross-runtime stealing off
// vs on. At θ=0.99 the scrambled hot keys concentrate on one shard, so
// without stealing the hot shard's runtime saturates while its siblings
// idle; with stealing the siblings drain the hot shard's task pools.
//
// Acceptance on multi-core hardware (one core per shard runtime or
// better): steal=on sustains at least 1.3x steal=off ops/sec at 4 shards.
// On a single-core box — such as the container this repo's CI runs in —
// all workers time-share one CPU, idle-sibling capacity does not exist,
// and the ratio is scheduler noise (measured here: ~1.0x at 4 shards,
// steal on vs off, nproc=1); like BenchmarkServerSharded above, the
// benchmark reports and documents, it does not assert.
func BenchmarkServerShardedZipf(b *testing.B) {
	const depth = 16
	const theta = 0.99
	for _, shards := range []int{1, 2, 4} {
		for _, steal := range []bool{false, true} {
			b.Run(fmt.Sprintf("shards=%d/steal=%v", shards, steal), func(b *testing.B) {
				srv := benchShardedServer(b, shards, benchKeys, steal)
				c, err := kvstore.Dial(srv.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				zipf := ycsb.NewZipf(benchKeys, theta, 42)
				await := func() {
					reply, err := c.Await()
					if err != nil || strings.HasPrefix(reply, "ERR") {
						b.Fatalf("reply %q, err %v", reply, err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if c.InFlight() == depth {
						await()
					}
					key := ycsb.ScrambleKey(zipf.Next())
					if i%2 == 0 {
						err = c.SendGet(key)
					} else {
						err = c.SendSet(key, uint64(i))
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				for c.InFlight() > 0 {
					await()
				}
			})
		}
	}
}

// benchLearnedServer is benchServer with learned prefetching switchable:
// the A/B pairs below run the same workload against both settings.
func benchLearnedServer(b *testing.B, n uint64, learned bool) *kvstore.Server {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, PrefetchDistance: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	b.Cleanup(rt.Stop)
	var opts []kvstore.ServerOption
	if learned {
		opts = append(opts, kvstore.WithLearnedPrefetch(prefetch.Config{}))
	}
	srv, err := kvstore.NewServer(kvstore.New(rt), "127.0.0.1:0", opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < n; k++ {
		if c.InFlight() == kvstore.DefaultWindow {
			if _, err := c.AwaitSet(); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.SendSet(k, k); err != nil {
			b.Fatal(err)
		}
	}
	for c.InFlight() > 0 {
		if _, err := c.AwaitSet(); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// BenchmarkServerScanPaging pages sequentially through the keyspace —
// the YCSB-E shape — with learned prefetching off vs on. With it on, the
// server induces the paging stride from the SCAN start keys and warms the
// leaf chain each next page will walk before the page arrives. Acceptance
// on multi-core hardware: learned=on at least matches learned=off and
// wins as the tree outgrows cache. On a single-core box the touch chains
// time-share the same CPU as the scans, so the ratio is noise; like the
// sharding benchmarks above, this reports rather than asserts.
func BenchmarkServerScanPaging(b *testing.B) {
	const page = 256
	const depth = 4
	for _, learned := range []bool{false, true} {
		b.Run(fmt.Sprintf("learned=%v", learned), func(b *testing.B) {
			srv := benchLearnedServer(b, benchKeys, learned)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			await := func() {
				if _, _, err := c.AwaitScan(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			from := uint64(0)
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					await()
				}
				if err := c.SendScan(from, from+page, page); err != nil {
					b.Fatal(err)
				}
				from += page
				if from+page > benchKeys {
					from = 0
				}
			}
			for c.InFlight() > 0 {
				await()
			}
		})
	}
}

// BenchmarkServerMGETRuns streams MGETs of consecutive 32-key runs, the
// runs themselves advancing sequentially — a batch loader replaying a key
// range. Learned prefetching induces the stride from the batch members
// and warms the predicted keys' leaves. Report-only, like ScanPaging.
func BenchmarkServerMGETRuns(b *testing.B) {
	const run = 32
	const depth = 8
	for _, learned := range []bool{false, true} {
		b.Run(fmt.Sprintf("learned=%v", learned), func(b *testing.B) {
			srv := benchLearnedServer(b, benchKeys, learned)
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			w := bufio.NewWriter(conn)
			r := bufio.NewReaderSize(conn, 1<<20)
			inflight := 0
			await := func() {
				reply, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(reply, "VALUES") {
					b.Fatalf("reply %q, err %v", reply, err)
				}
				inflight--
			}
			var sb strings.Builder
			b.ResetTimer()
			base := uint64(0)
			for i := 0; i < b.N; i++ {
				if inflight == depth {
					if err := w.Flush(); err != nil {
						b.Fatal(err)
					}
					await()
				}
				sb.Reset()
				sb.WriteString("MGET")
				for k := base; k < base+run; k++ {
					fmt.Fprintf(&sb, " %d", k)
				}
				sb.WriteByte('\n')
				if _, err := w.WriteString(sb.String()); err != nil {
					b.Fatal(err)
				}
				inflight++
				base += run
				if base+run > benchKeys {
					base = 0
				}
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			for inflight > 0 {
				await()
			}
		})
	}
}

// BenchmarkServerRandomGets is the overhead guard: a YCSB-C random-read
// stream on which the learned streams self-disable. learned=on must track
// learned=off closely — the disabled stream's fast path is three compares
// and a ring store per request.
func BenchmarkServerRandomGets(b *testing.B) {
	const depth = 16
	for _, learned := range []bool{false, true} {
		b.Run(fmt.Sprintf("learned=%v", learned), func(b *testing.B) {
			srv := benchLearnedServer(b, benchKeys, learned)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			zipf := ycsb.NewZipf(benchKeys, 0.99, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					if _, _, err := c.AwaitGet(); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.SendGet(ycsb.ScrambleKey(zipf.Next()) % benchKeys); err != nil {
					b.Fatal(err)
				}
			}
			for c.InFlight() > 0 {
				if _, _, err := c.AwaitGet(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(depth int) string {
	switch depth {
	case 16:
		return "depth=16"
	default:
		return "depth=64"
	}
}

// benchPagedServer starts a server over either a plain in-memory store or
// one whose values live behind the paged tier's buffer pool (DESIGN.md
// §10), preloaded in-process with n scrambled keys. The pool is sized at
// 16 frames x 252 slots ≈ 4k resident values, so the benchKeys=16k
// dataset runs larger-than-RAM by 4x.
func benchPagedServer(b *testing.B, n uint64, paged bool) (*kvstore.Server, *kvstore.Store) {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, PrefetchDistance: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	b.Cleanup(rt.Stop)
	var store *kvstore.Store
	if paged {
		var err error
		store, err = kvstore.NewPaged(rt, kvstore.PagedConfig{
			PageBytes: 4096, PoolFrames: 16, SpillOver: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
	} else {
		store = kvstore.New(rt)
	}
	for k := uint64(0); k < n; k++ {
		store.Set(ycsb.ScrambleKey(k)%n, k, nil)
	}
	rt.Drain()
	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, store
}

// BenchmarkServerPagedYCSB is the paged tier's A/B: a YCSB-A stream (50%
// reads / 50% updates, Zipfian over scrambled keys, depth 16) against the
// same server with values fully resident vs spilled behind a buffer pool
// 1/4 the dataset's size. The paged side additionally reports the pool's
// hit rate — Zipfian skew keeps the hot values resident, so the hit rate
// lands far above the 25% a uniform stream would see, and the slowdown vs
// the resident store stays well under the 4x the capacity ratio suggests.
// Report-only, like the sharding benchmarks: the exact ratio is
// hardware-dependent.
func BenchmarkServerPagedYCSB(b *testing.B) {
	const depth = 16
	for _, paged := range []bool{false, true} {
		b.Run(fmt.Sprintf("paged=%v", paged), func(b *testing.B) {
			srv, store := benchPagedServer(b, benchKeys, paged)
			c, err := kvstore.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			gen := ycsb.NewGenerator(ycsb.WorkloadA, benchKeys, 42)
			await := func() {
				reply, err := c.Await()
				if err != nil || strings.HasPrefix(reply, "ERR") {
					b.Fatalf("reply %q, err %v", reply, err)
				}
			}
			base, _ := store.PagerStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.InFlight() == depth {
					await()
				}
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					err = c.SendGet(op.Key)
				} else {
					err = c.SendSet(op.Key, op.Value)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			for c.InFlight() > 0 {
				await()
			}
			b.StopTimer()
			if st, ok := store.PagerStats(); ok {
				hits, misses := st.Hits-base.Hits, st.Misses-base.Misses
				if hits+misses > 0 {
					b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
				}
				b.ReportMetric(float64(st.Evictions-base.Evictions)/float64(b.N), "evictions/op")
			}
		})
	}
}

// benchInterleaveServer starts a server whose store uses the given batch
// group width (blinktree.SetInterleave semantics: 1 = sequential per-key
// chains, 0 = default interleaved descents), preloaded in-process.
func benchInterleaveServer(b *testing.B, width int) *kvstore.Server {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, PrefetchDistance: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	b.Cleanup(rt.Stop)
	store := kvstore.New(rt)
	store.SetInterleave(width)
	for k := uint64(0); k < benchKeys; k++ {
		store.Set(ycsb.ScrambleKey(k)%benchKeys, k, nil)
	}
	rt.Drain()
	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// BenchmarkServerMGETInterleaved is the A/B for the interleaved group
// descents (DESIGN.md §9): a YCSB-C zipfian read stream issued as 64-key
// MGETs with 16 in flight, against the same server with interleaving
// disabled (width 1, the old one-chain-per-key dispatch). The interleaved
// side sustains >= 1.3x the sequential ops/sec: each group descent retires
// read cursors inline instead of paying per-node task dispatch, and on
// multi-core hosts additionally overlaps one cursor's node miss with its
// neighbors' compute (measured 1.3-1.4x even on a 1-CPU runner, where
// only the dispatch saving applies). Reported, not asserted: the margin
// on a loaded single-CPU host can narrow to noise.
func BenchmarkServerMGETInterleaved(b *testing.B) {
	const run = 64
	const depth = 16
	for _, cfg := range []struct {
		name  string
		width int
	}{{"interleaved", 0}, {"sequential", 1}} {
		b.Run(cfg.name, func(b *testing.B) {
			srv := benchInterleaveServer(b, cfg.width)
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			w := bufio.NewWriter(conn)
			r := bufio.NewReaderSize(conn, 1<<20)
			zipf := ycsb.NewZipf(benchKeys, 0.99, 7)
			inflight := 0
			await := func() {
				reply, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(reply, "VALUES") {
					b.Fatalf("reply %q, err %v", reply, err)
				}
				inflight--
			}
			var sb strings.Builder
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if inflight == depth {
					if err := w.Flush(); err != nil {
						b.Fatal(err)
					}
					await()
				}
				sb.Reset()
				sb.WriteString("MGET")
				for k := 0; k < run; k++ {
					fmt.Fprintf(&sb, " %d", ycsb.ScrambleKey(zipf.Next())%benchKeys)
				}
				sb.WriteByte('\n')
				if _, err := w.WriteString(sb.String()); err != nil {
					b.Fatal(err)
				}
				inflight++
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			for inflight > 0 {
				await()
			}
			b.SetBytes(0)
			b.ReportMetric(float64(run), "keys/op")
		})
	}
}
