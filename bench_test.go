// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §3 for the index).
//
// Each figure has two faces here:
//
//   - Sim benchmarks regenerate the paper-shaped series through the
//     machine model and attach the headline values as b.ReportMetric
//     metrics (deterministic, host-independent);
//   - Real benchmarks drive the actual runtime/data structures of this
//     repository at host scale, validating that the implementations work
//     and exposing their wall-clock behaviour.
//
// Run: go test -bench=. -benchmem .
package mxtasking_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"mxtasking/internal/alloc"
	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/hashjoin"
	"mxtasking/internal/index/btreeolc"
	"mxtasking/internal/index/bwtree"
	"mxtasking/internal/index/masstree"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/sim"
	"mxtasking/internal/tbb"
	"mxtasking/internal/tpch"
	"mxtasking/internal/wal"
	"mxtasking/internal/ycsb"
)

// ---------------------------------------------------------------------
// Figure 7 — task allocation cost
// ---------------------------------------------------------------------

// BenchmarkFig07AllocatorCycles measures the real multi-level allocator's
// steady-state alloc/free pair and reports the simulated Figure 7 bars.
func BenchmarkFig07AllocatorCycles(b *testing.B) {
	b.Run("real/multi-level", func(b *testing.B) {
		a := alloc.New(1, 1)
		h := a.Core(0)
		warm := h.Alloc()
		h.Free(warm)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := h.Alloc()
			h.Free(blk)
		}
	})
	b.Run("real/go-heap", func(b *testing.B) {
		type taskSized struct{ _ [96]byte }
		sink := make([]*taskSized, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink[i%64] = &taskSized{}
		}
	})
	b.Run("sim", func(b *testing.B) {
		var libc, ml sim.AllocResult
		for i := 0; i < b.N; i++ {
			libc = sim.SimulateAlloc(sim.AllocLibc, 48)
			ml = sim.SimulateAlloc(sim.AllocMultiLevel, 48)
		}
		b.ReportMetric(libc.Allocation, "libc-alloc-cycles/op")
		b.ReportMetric(ml.Allocation, "multilevel-alloc-cycles/op")
	})
}

// ---------------------------------------------------------------------
// Figure 9 — hash-join task granularity
// ---------------------------------------------------------------------

func BenchmarkFig09Granularity(b *testing.B) {
	customers := tpch.Customers(10000, 1)
	orders := tpch.Orders(100000, 10000, 2)
	for _, g := range []int{8, 128, 4096, 65536} {
		b.Run(fmt.Sprintf("real/records=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Off, EpochInterval: -1})
				rt.Start()
				j := hashjoin.NewJoin(rt, customers, orders, g)
				tuples := j.Run()
				rt.Stop()
				if tuples == 0 {
					b.Fatal("join produced no tuples")
				}
			}
			b.SetBytes(int64(len(orders) * 16))
		})
	}
	b.Run("sim", func(b *testing.B) {
		var plateau, tiny sim.JoinResult
		for i := 0; i < b.N; i++ {
			plateau = sim.SimulateJoin(sim.DefaultJoin(1024))
			tiny = sim.SimulateJoin(sim.DefaultJoin(8))
		}
		b.ReportMetric(plateau.OutputMtuples, "plateau-Mtuples/s")
		b.ReportMetric(tiny.OutputMtuples, "tiny-task-Mtuples/s")
	})
}

// ---------------------------------------------------------------------
// Figure 10 — annotation-based prefetching (throughput/stalls/instructions)
// ---------------------------------------------------------------------

// realTreeWorkload loads a task tree and runs ops of the given workload.
func realTreeWorkload(b *testing.B, distance int, w ycsb.Workload) {
	b.Helper()
	const records = 20000
	rt := mxtask.New(mxtask.Config{
		Workers:          2,
		PrefetchDistance: distance,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	defer rt.Stop()
	tree := blinktree.NewTaskTree(rt, blinktree.TaskSyncOptimistic)
	load := ycsb.NewGenerator(ycsb.WorkloadInsert, records, 1)
	for i := 0; i < records; i++ {
		op := load.Next()
		tree.Insert(op.Key, op.Value)
	}
	rt.Drain()
	gen := ycsb.NewGenerator(w, records, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		switch op.Kind {
		case ycsb.OpInsert:
			tree.Insert(op.Key, op.Value)
		case ycsb.OpRead:
			tree.Lookup(op.Key)
		case ycsb.OpUpdate:
			tree.Update(op.Key, op.Value)
		}
		if i%512 == 511 {
			rt.Drain()
		}
	}
	rt.Drain()
}

func BenchmarkFig10Prefetch(b *testing.B) {
	for _, w := range []ycsb.Workload{ycsb.WorkloadInsert, ycsb.WorkloadA, ycsb.WorkloadC} {
		for _, d := range []int{0, 2} {
			b.Run(fmt.Sprintf("real/%s/distance=%d", w, d), func(b *testing.B) {
				realTreeWorkload(b, d, w)
			})
		}
	}
	b.Run("sim", func(b *testing.B) {
		var pf, nopf sim.Result
		for i := 0; i < b.N; i++ {
			pf = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48)
			nopf = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly, PrefetchDistance: 0, EBMR: sim.EBMRBatched}, 48)
		}
		b.ReportMetric(pf.ThroughputMops, "prefetch-Mops")
		b.ReportMetric(nopf.ThroughputMops, "noprefetch-Mops")
		b.ReportMetric(1-pf.StallsPerOp/nopf.StallsPerOp, "stall-reduction")
		b.ReportMetric(pf.InstrPerOp-nopf.InstrPerOp, "extra-instr/op")
	})
}

// ---------------------------------------------------------------------
// Figure 11 — EBMR policies
// ---------------------------------------------------------------------

func BenchmarkFig11EBMR(b *testing.B) {
	for _, policy := range []epoch.Policy{epoch.Off, epoch.Batched, epoch.EveryTask} {
		b.Run("real/"+policy.String(), func(b *testing.B) {
			m := epoch.NewManager(1, policy, 0)
			w := m.Worker(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Enter()
				w.Leave()
			}
		})
	}
	b.Run("sim", func(b *testing.B) {
		var off, every sim.Result
		for i := 0; i < b.N; i++ {
			off = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMROff}, 48)
			every = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMREvery}, 48)
		}
		b.ReportMetric((off.ThroughputMops-every.ThroughputMops)/off.ThroughputMops*100, "everytask-loss-%")
	})
}

// ---------------------------------------------------------------------
// Figure 12 — synchronization families and baselines
// ---------------------------------------------------------------------

func taskTreeBench(b *testing.B, mode blinktree.TaskSyncMode) {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Batched, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	tree := blinktree.NewTaskTree(rt, mode)
	for i := uint64(0); i < 10000; i++ {
		tree.Insert(i, i)
	}
	rt.Drain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Lookup(uint64(i) % 10000)
		if i%512 == 511 {
			rt.Drain()
		}
	}
	rt.Drain()
}

func BenchmarkFig12Serialized(b *testing.B) {
	b.Run("real/mxtask-scheduling", func(b *testing.B) { taskTreeBench(b, blinktree.TaskSyncSerialized) })
	b.Run("real/threads-spinlock", func(b *testing.B) {
		tree := blinktree.NewThreadTree(blinktree.SyncSpin)
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup(uint64(i) % 10000)
		}
	})
	b.Run("sim", func(b *testing.B) {
		var mx, th sim.Result
		for i := 0; i < b.N; i++ {
			mx = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamSerialized, Workload: sim.WReadOnly}, 12)
			th = sim.SimulateTree(sim.TreeConfig{System: sim.SysThreads, Sync: sim.FamSerialized, Workload: sim.WReadOnly}, 12)
		}
		b.ReportMetric(mx.ThroughputMops, "mx-12core-Mops")
		b.ReportMetric(th.ThroughputMops, "spinlock-12core-Mops")
	})
}

func BenchmarkFig12RWLock(b *testing.B) {
	b.Run("real/mxtask-rwlatch", func(b *testing.B) { taskTreeBench(b, blinktree.TaskSyncRWLatch) })
	b.Run("real/threads-rwlock", func(b *testing.B) {
		tree := blinktree.NewThreadTree(blinktree.SyncRW)
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup(uint64(i) % 10000)
		}
	})
	b.Run("sim", func(b *testing.B) {
		var mx, tbbres sim.Result
		for i := 0; i < b.N; i++ {
			mx = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamRWLatch, Workload: sim.WReadOnly, PrefetchDistance: 2}, 48)
			tbbres = sim.SimulateTree(sim.TreeConfig{System: sim.SysTBB, Sync: sim.FamRWLatch, Workload: sim.WReadOnly}, 48)
		}
		b.ReportMetric(mx.ThroughputMops, "mx-48core-Mops")
		b.ReportMetric(tbbres.ThroughputMops, "tbb-htm-48core-Mops")
	})
}

func BenchmarkFig12Optimistic(b *testing.B) {
	b.Run("real/mxtask", func(b *testing.B) { taskTreeBench(b, blinktree.TaskSyncOptimistic) })
	b.Run("real/threads-olc-blink", func(b *testing.B) {
		tree := blinktree.NewThreadTree(blinktree.SyncOptimistic)
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup(uint64(i) % 10000)
		}
	})
	b.Run("real/btreeolc", func(b *testing.B) {
		tree := btreeolc.New()
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup(uint64(i) % 10000)
		}
	})
	b.Run("real/masstree", func(b *testing.B) {
		tree := masstree.New()
		for i := uint64(0); i < 10000; i++ {
			tree.Insert64(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup64(uint64(i) % 10000)
		}
	})
	b.Run("real/bwtree", func(b *testing.B) {
		tree := bwtree.New()
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Lookup(uint64(i) % 10000)
		}
	})
	b.Run("real/tbb-blink", func(b *testing.B) {
		rt := tbb.New(2)
		rt.Start()
		defer rt.Stop()
		tree := blinktree.NewThreadTree(blinktree.SyncOptimistic)
		for i := uint64(0); i < 10000; i++ {
			tree.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i) % 10000
			rt.Spawn(func() { tree.Lookup(k) })
			if i%256 == 255 {
				rt.Drain()
			}
		}
		rt.Drain()
	})
	b.Run("sim", func(b *testing.B) {
		var mx, mass sim.Result
		for i := 0; i < b.N; i++ {
			mx = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48)
			mass = sim.SimulateTree(sim.TreeConfig{System: sim.SysMasstree, Sync: sim.FamOptimistic,
				Workload: sim.WReadOnly}, 48)
		}
		b.ReportMetric(mx.ThroughputMops, "mx-48core-Mops")
		b.ReportMetric(mass.ThroughputMops, "masstree-48core-Mops")
	})
}

// ---------------------------------------------------------------------
// Figure 13 — cycle breakdown
// ---------------------------------------------------------------------

func BenchmarkFig13Breakdown(b *testing.B) {
	var mx sim.Result
	for i := 0; i < b.N; i++ {
		mx = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
			Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48)
	}
	b.ReportMetric(mx.Breakdown.Traverse, "traverse-cycles/op")
	b.ReportMetric(mx.Breakdown.Sync, "sync-cycles/op")
	b.ReportMetric(mx.Breakdown.Runtime, "runtime-cycles/op")
	b.ReportMetric(mx.CyclesPerOp, "total-cycles/op")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4)
// ---------------------------------------------------------------------

// BenchmarkAblationPrefetchDistance sweeps the prefetch distance (design
// decision 2).
func BenchmarkAblationPrefetchDistance(b *testing.B) {
	for _, d := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sim/distance=%d", d), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
					Workload: sim.WReadOnly, PrefetchDistance: d, EBMR: sim.EBMRBatched}, 48)
			}
			b.ReportMetric(r.ThroughputMops, "Mops")
		})
	}
}

// BenchmarkAblationEpochBatch sweeps the EBMR advancement batch (design
// decision 3) on the real epoch manager.
func BenchmarkAblationEpochBatch(b *testing.B) {
	for _, batch := range []int{1, 10, 50, 200} {
		b.Run(fmt.Sprintf("real/batch=%d", batch), func(b *testing.B) {
			m := epoch.NewManager(1, epoch.Batched, batch)
			w := m.Worker(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Enter()
				w.Leave()
			}
		})
	}
}

// BenchmarkAblationPlacement compares resource-routed vs always-local
// spawning (design decision 1) through the spawn path costs.
func BenchmarkAblationPlacement(b *testing.B) {
	run := func(b *testing.B, iso mxtask.Isolation) {
		rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Off, EpochInterval: -1})
		rt.Start()
		defer rt.Stop()
		x := 0
		res := rt.CreateResource(&x, 8, iso, mxtask.RWWriteHeavy, mxtask.FrequencyHigh)
		res.ForcePrimitive(mxtask.PrimSpinlock)
		if iso == mxtask.IsolationExclusive {
			res.ForcePrimitive(mxtask.PrimSerialize)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task := rt.NewTask(func(*mxtask.Context, *mxtask.Task) { x++ }, nil)
			task.AnnotateResource(res, mxtask.Write)
			rt.Spawn(task)
			if i%256 == 255 {
				rt.Drain()
			}
		}
		rt.Drain()
	}
	b.Run("real/routed-to-pool", func(b *testing.B) { run(b, mxtask.IsolationExclusive) })
	b.Run("real/local-spinlock", func(b *testing.B) { run(b, mxtask.IsolationNone) })
}

// BenchmarkSimAllFigures measures the full figure-regeneration cost.
func BenchmarkSimAllFigures(b *testing.B) {
	total := 0.0
	for i := 0; i < b.N; i++ {
		r := sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
			Workload: sim.WReadUpdate, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48)
		total += r.ThroughputMops
	}
	if math.IsNaN(total) {
		b.Fatal("NaN in simulation")
	}
}

// ---------------------------------------------------------------------
// Durability — WAL append policies (DESIGN.md "Durability")
// ---------------------------------------------------------------------

// walBenchLog opens a fresh WAL on its own runtime for one sub-benchmark.
func walBenchLog(b *testing.B, opts wal.Options) (*wal.Log, func()) {
	b.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	opts.Dir = b.TempDir()
	log, err := wal.Open(rt, opts)
	if err != nil {
		rt.Stop()
		b.Fatal(err)
	}
	return log, func() {
		if err := log.Close(); err != nil {
			b.Error(err)
		}
		rt.Stop()
	}
}

// BenchmarkWALAppend contrasts the three durability policies: a serial
// client that fsyncs every operation, concurrent producers under
// scheduling-based group commit (one write + one fsync per drained
// batch), and group commit without fsync. The group-commit variant
// reports the achieved batch size and requires it to exceed one —
// the whole point of running the log on an exclusive mxtask resource.
func BenchmarkWALAppend(b *testing.B) {
	b.Run("sync-every-op", func(b *testing.B) {
		log, done := walBenchLog(b, wal.Options{})
		defer done()
		ch := make(chan error, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			log.Append(wal.OpSet, uint64(i), uint64(i), func(err error) { ch <- err })
			if err := <-ch; err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(wal.FrameSize)
	})
	b.Run("group-commit", func(b *testing.B) {
		log, done := walBenchLog(b, wal.Options{})
		defer done()
		// Guarantee concurrent producers even on a single-core host:
		// group commit needs overlapping appends to form batches.
		b.SetParallelism(max(1, 8/runtime.GOMAXPROCS(0)))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ch := make(chan error, 1)
			var k uint64
			for pb.Next() {
				k++
				log.Append(wal.OpSet, k, k, func(err error) { ch <- err })
				if err := <-ch; err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		avg := log.Metrics().AvgBatch()
		b.ReportMetric(avg, "records/batch")
		b.ReportMetric(float64(log.Metrics().MaxBatch.Load()), "max-batch")
		// With concurrent producers the scheduler must coalesce appends;
		// only meaningful once enough operations ran to form batches.
		if b.N >= 256 && avg <= 1.0 {
			b.Fatalf("group commit never batched: avg %.2f records/batch", avg)
		}
		b.SetBytes(wal.FrameSize)
	})
	b.Run("no-sync", func(b *testing.B) {
		log, done := walBenchLog(b, wal.Options{NoSync: true})
		defer done()
		b.SetParallelism(max(1, 8/runtime.GOMAXPROCS(0)))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ch := make(chan error, 1)
			var k uint64
			for pb.Next() {
				k++
				log.Append(wal.OpSet, k, k, func(err error) { ch <- err })
				if err := <-ch; err != nil {
					b.Fatal(err)
				}
			}
		})
		b.SetBytes(wal.FrameSize)
	})
}

// BenchmarkIndexInserts complements the Figure 12 lookup benchmarks with
// the insert path of every real index implementation.
func BenchmarkIndexInserts(b *testing.B) {
	b.Run("blink-olc", func(b *testing.B) {
		tree := blinktree.NewThreadTree(blinktree.SyncOptimistic)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Insert(uint64(i), uint64(i))
		}
	})
	b.Run("btreeolc", func(b *testing.B) {
		tree := btreeolc.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Insert(uint64(i), uint64(i))
		}
	})
	b.Run("masstree", func(b *testing.B) {
		tree := masstree.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Insert64(uint64(i), uint64(i))
		}
	})
	b.Run("bwtree", func(b *testing.B) {
		tree := bwtree.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Insert(uint64(i), uint64(i))
		}
	})
	b.Run("bulkload", func(b *testing.B) {
		pairs := make([]blinktree.KV, 100000)
		for i := range pairs {
			pairs[i] = blinktree.KV{Key: uint64(i), Value: uint64(i)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blinktree.BulkLoad(blinktree.SyncOptimistic, pairs, 0.7)
		}
		b.SetBytes(int64(len(pairs) * 16))
	})
}
