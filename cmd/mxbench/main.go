// Command mxbench regenerates the paper's evaluation figures.
//
// By default it renders the simulated series for every figure (see
// DESIGN.md for the machine-model rationale). With -real it additionally
// runs scaled-down workloads on the real MxTasking runtime of this host,
// reporting wall-clock throughput.
//
// Usage:
//
//	mxbench                  # all figures
//	mxbench -experiment fig9 # one figure
//	mxbench -list            # available ids
//	mxbench -real            # append real-runtime measurements
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mxtasking/internal/experiments"
)

func main() {
	var (
		expID     = flag.String("experiment", "", "figure id to run (default: all)")
		list      = flag.Bool("list", false, "list experiment ids")
		real      = flag.Bool("real", false, "also run scaled-down real-runtime workloads")
		ablations = flag.Bool("ablations", false, "also run the design-decision ablations")
		verify    = flag.Bool("verify", false, "check the paper's shape claims against the model")
		datDir    = flag.String("dat", "", "also export every figure as gnuplot .dat files into this directory")
		ops       = flag.Int("ops", 200000, "operations per real workload")
		recs      = flag.Int("records", 100000, "records in the real tree")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *expID != "" {
		report, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expID)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
	} else {
		for _, report := range experiments.All() {
			report.Fprint(os.Stdout)
		}
	}
	if *ablations {
		for _, report := range experiments.Ablations() {
			report.Fprint(os.Stdout)
		}
	}
	if *verify {
		failed := 0
		for _, c := range experiments.Verify() {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-8s %s — %s\n", mark, c.Figure, c.Text, c.Detail)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d claims failed\n", failed)
			os.Exit(1)
		}
	}
	if *datDir != "" {
		paths, err := experiments.ExportAll(*datDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d .dat files to %s\n", len(paths), *datDir)
	}
	if *real {
		workers := runtime.GOMAXPROCS(0)
		cfg := experiments.RealConfig{Workers: workers, Records: *recs, Ops: *ops}
		experiments.RealYCSB(cfg).Fprint(os.Stdout)
		experiments.RealJoin(cfg).Fprint(os.Stdout)
	}
}
