// Command mxkv serves the MxTask-based key-value store over TCP (the
// paper's end-to-end application). Protocol:
//
//	SET <key> <value> | GET <key> | DEL <key> | COUNT | PING | QUIT
//
// Example:
//
//	mxkv -addr 127.0.0.1:7070 -workers 4
//	printf 'SET 1 42\nGET 1\nQUIT\n' | nc 127.0.0.1 7070
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
		distance = flag.Int("prefetch", 2, "prefetch distance (0 disables)")
		pin      = flag.Bool("pin", false, "pin workers to OS threads")
	)
	flag.Parse()

	rt := mxtask.New(mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: *distance,
		EpochPolicy:      epoch.Batched,
		PinWorkers:       *pin,
	})
	rt.Start()
	defer rt.Stop()

	store := kvstore.New(rt)
	srv, err := kvstore.NewServer(store, *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mxkv: %s listening on %s\n", rt, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmxkv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("mxkv: close: %v", err)
	}
	st := store.Stats()
	fmt.Printf("mxkv: served %d gets, %d sets, %d dels\n", st.Gets, st.Sets, st.Dels)
}
