// Command mxkv serves the MxTask-based key-value store over TCP (the
// paper's end-to-end application). Protocol:
//
//	SET <key> <value> | GET <key> | DEL <key> | SCAN <from> <to> [limit]
//	MSET <k> <v> ... | MGET <key> ... | COUNT | STATS | PING | QUIT
//
// Clients may pipeline: requests are parsed and dispatched as they
// arrive and replies are written back strictly in request order, up to
// -window requests in flight per connection (see kvstore.Server).
//
// Example:
//
//	mxkv -addr 127.0.0.1:7070 -workers 4 -wal-dir /var/lib/mxkv -sync batch
//	printf 'SET 1 42\nGET 1\nQUIT\n' | nc 127.0.0.1 7070
//
// With -wal-dir set, every SET/DEL reply is a durable ack: the record has
// been written to the write-ahead log and fsynced (per the -sync policy)
// before the reply is sent. Restarting mxkv with the same -wal-dir
// recovers the store from the newest snapshot plus the log tail.
//
// With -shards N (N > 1), the keyspace is range-partitioned across N
// shards, each on its own runtime (the workers are split across the
// shards, simulating one runtime per NUMA node) with its own Blink-tree
// and its own WAL subdirectory <wal-dir>/shard-NNN. Restarting requires
// the same -shards value; recovery replays all shard logs concurrently.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"time"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
)

// parseSyncPolicy maps the -sync flag onto WAL options:
//
//	"batch"    fsync once per group-commit batch (default, strongest)
//	"none"     no fsync; acks mean "written", not "durable"
//	an integer fsync after that many unsynced records (e.g. -sync 64)
//	a duration fsync at least that often (e.g. -sync 5ms)
func parseSyncPolicy(s string, d *kvstore.Durability) error {
	switch s {
	case "batch", "":
		return nil
	case "none":
		d.NoSync = true
		return nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return fmt.Errorf("-sync count must be positive, got %d", n)
		}
		d.SyncEvery = n
		return nil
	}
	if iv, err := time.ParseDuration(s); err == nil {
		if iv <= 0 {
			return fmt.Errorf("-sync interval must be positive, got %v", iv)
		}
		d.SyncInterval = iv
		return nil
	}
	return fmt.Errorf("-sync must be batch, none, a record count, or a duration; got %q", s)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count (split across shards when -shards > 1)")
		shards   = flag.Int("shards", 1, "shard count: partition the keyspace across this many per-node runtimes")
		distance = flag.Int("prefetch", 2, "prefetch distance (0 disables)")
		pin      = flag.Bool("pin", false, "pin workers to OS threads")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory, no durability)")
		syncMode = flag.String("sync", "batch", "fsync policy: batch | none | <count> | <duration>")
		segBytes = flag.Int64("segment-bytes", 0, "WAL segment size cap in bytes (0 = default 64MiB)")
		snapEvry = flag.Uint64("snapshot-every", 0, "checkpoint after this many logged records (0 = manual only)")
		window   = flag.Int("window", kvstore.DefaultWindow, "max pipelined requests in flight per connection")
		idleTO   = flag.Duration("idle-timeout", 0, "reap connections idle for this long (0 = never)")
		writeTO  = flag.Duration("write-timeout", 0, "reap connections whose reply flush stalls this long (0 = never)")
		maxInfl  = flag.Int("max-inflight", 0, "admission high-water mark: shed store requests past this in-flight depth (0 = unbounded)")
		retryAft = flag.Duration("retry-after", 0, "backoff hint attached to overload rejections (0 = default)")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("mxkv: -shards must be >= 1, got %d", *shards)
	}

	cfg := mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: *distance,
		EpochPolicy:      epoch.Batched,
		PinWorkers:       *pin,
	}

	var d kvstore.Durability
	durable := *walDir != ""
	if durable {
		d = kvstore.Durability{
			Dir:           *walDir,
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvry,
		}
		if err := parseSyncPolicy(*syncMode, &d); err != nil {
			log.Fatal(err)
		}
	}

	var stop func()
	var store kvstore.Backend
	var sharded *kvstore.Sharded
	if *shards > 1 {
		g := mxtask.NewGroup(cfg, *shards)
		g.Start()
		stop = g.Stop
		if durable {
			var recov []kvstore.ShardRecovery
			var err error
			sharded, recov, err = kvstore.OpenSharded(g.Runtimes(), d)
			for _, r := range recov {
				if r.Err != nil {
					log.Printf("mxkv: shard %d recovery: %v", r.Shard, r.Err)
				} else {
					fmt.Printf("mxkv: shard %d recovered: %s\n", r.Shard, r.Stats)
				}
			}
			if err != nil {
				log.Fatalf("mxkv: recovery: %v", err)
			}
		} else {
			sharded = kvstore.NewSharded(g.Runtimes())
		}
		store = sharded
		fmt.Printf("mxkv: %d shards, %s each\n", sharded.Shards(), g.Runtime(0))
	} else {
		rt := mxtask.New(cfg)
		rt.Start()
		stop = rt.Stop
		if durable {
			single, stats, err := kvstore.Open(rt, d)
			if err != nil {
				log.Fatalf("mxkv: recovery: %v", err)
			}
			fmt.Printf("mxkv: recovered from %s: %s\n", *walDir, stats)
			store = single
		} else {
			store = kvstore.New(rt)
		}
		fmt.Printf("mxkv: %s\n", rt)
	}
	defer stop()

	opts := []kvstore.ServerOption{
		kvstore.WithWindow(*window),
		kvstore.WithErrorLog(func(err error) { log.Printf("mxkv: conn: %v", err) }),
	}
	if *idleTO > 0 {
		opts = append(opts, kvstore.WithIdleTimeout(*idleTO))
	}
	if *writeTO > 0 {
		opts = append(opts, kvstore.WithWriteTimeout(*writeTO))
	}
	if *maxInfl > 0 {
		opts = append(opts, kvstore.WithAdmission(*maxInfl, *retryAft))
	}
	srv, err := kvstore.NewServer(store, *addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mxkv: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmxkv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("mxkv: close: %v", err)
	}
	if durable {
		if err := store.(interface{ Close() error }).Close(); err != nil {
			log.Printf("mxkv: wal close: %v", err)
		}
		if sharded != nil {
			for i := 0; i < sharded.Shards(); i++ {
				fmt.Printf("mxkv: shard %d wal %s\n", i, sharded.Shard(i).WALMetrics())
			}
		} else {
			fmt.Printf("mxkv: wal %s\n", store.(*kvstore.Store).WALMetrics())
		}
	}
	st := store.Stats()
	fmt.Printf("mxkv: served %d gets, %d sets, %d dels\n", st.Gets, st.Sets, st.Dels)
	if sharded != nil {
		for i, ss := range sharded.StatsByShard() {
			fmt.Printf("mxkv: shard %d served %d gets, %d sets, %d dels\n", i, ss.Gets, ss.Sets, ss.Dels)
		}
		rm := sharded.RouterMetrics()
		fmt.Printf("mxkv: router routed=%v scan-fanout[%s] batch-fanout[%s]\n",
			rm.Routed.Values(), rm.ScanFanout.String(), rm.BatchFanout.String())
	}
	fmt.Printf("mxkv: wire %s\n", srv.Metrics())
}
