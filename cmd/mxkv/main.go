// Command mxkv serves the MxTask-based key-value store over TCP (the
// paper's end-to-end application). Protocol:
//
//	SET <key> <value> | GET <key> | DEL <key> | SCAN <from> <to> [limit]
//	MSET <k> <v> ... | MGET <key> ... | COUNT | STATS | PING | QUIT
//
// Clients may pipeline: requests are parsed and dispatched as they
// arrive and replies are written back strictly in request order, up to
// -window requests in flight per connection (see kvstore.Server).
//
// Example:
//
//	mxkv -addr 127.0.0.1:7070 -workers 4 -wal-dir /var/lib/mxkv -sync batch
//	printf 'SET 1 42\nGET 1\nQUIT\n' | nc 127.0.0.1 7070
//
// With -wal-dir set, every SET/DEL reply is a durable ack: the record has
// been written to the write-ahead log and fsynced (per the -sync policy)
// before the reply is sent. Restarting mxkv with the same -wal-dir
// recovers the store from the newest snapshot plus the log tail.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"time"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/wal"
)

// parseSyncPolicy maps the -sync flag onto WAL options:
//
//	"batch"    fsync once per group-commit batch (default, strongest)
//	"none"     no fsync; acks mean "written", not "durable"
//	an integer fsync after that many unsynced records (e.g. -sync 64)
//	a duration fsync at least that often (e.g. -sync 5ms)
func parseSyncPolicy(s string, d *kvstore.Durability) error {
	switch s {
	case "batch", "":
		return nil
	case "none":
		d.NoSync = true
		return nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return fmt.Errorf("-sync count must be positive, got %d", n)
		}
		d.SyncEvery = n
		return nil
	}
	if iv, err := time.ParseDuration(s); err == nil {
		if iv <= 0 {
			return fmt.Errorf("-sync interval must be positive, got %v", iv)
		}
		d.SyncInterval = iv
		return nil
	}
	return fmt.Errorf("-sync must be batch, none, a record count, or a duration; got %q", s)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
		distance = flag.Int("prefetch", 2, "prefetch distance (0 disables)")
		pin      = flag.Bool("pin", false, "pin workers to OS threads")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory, no durability)")
		syncMode = flag.String("sync", "batch", "fsync policy: batch | none | <count> | <duration>")
		segBytes = flag.Int64("segment-bytes", 0, "WAL segment size cap in bytes (0 = default 64MiB)")
		snapEvry = flag.Uint64("snapshot-every", 0, "checkpoint after this many logged records (0 = manual only)")
		window   = flag.Int("window", kvstore.DefaultWindow, "max pipelined requests in flight per connection")
	)
	flag.Parse()

	rt := mxtask.New(mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: *distance,
		EpochPolicy:      epoch.Batched,
		PinWorkers:       *pin,
	})
	rt.Start()
	defer rt.Stop()

	var store *kvstore.Store
	if *walDir != "" {
		d := kvstore.Durability{
			Dir:           *walDir,
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvry,
		}
		if err := parseSyncPolicy(*syncMode, &d); err != nil {
			log.Fatal(err)
		}
		var stats wal.ReplayStats
		var err error
		store, stats, err = kvstore.Open(rt, d)
		if err != nil {
			log.Fatalf("mxkv: recovery: %v", err)
		}
		fmt.Printf("mxkv: recovered from %s: %s\n", *walDir, stats)
	} else {
		store = kvstore.New(rt)
	}

	srv, err := kvstore.NewServer(store, *addr,
		kvstore.WithWindow(*window),
		kvstore.WithErrorLog(func(err error) { log.Printf("mxkv: conn: %v", err) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mxkv: %s listening on %s\n", rt, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmxkv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("mxkv: close: %v", err)
	}
	if store.Durable() {
		if err := store.Close(); err != nil {
			log.Printf("mxkv: wal close: %v", err)
		}
		fmt.Printf("mxkv: wal %s\n", store.WALMetrics())
	}
	st := store.Stats()
	fmt.Printf("mxkv: served %d gets, %d sets, %d dels\n", st.Gets, st.Sets, st.Dels)
	fmt.Printf("mxkv: wire %s\n", srv.Metrics())
}
