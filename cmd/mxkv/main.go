// Command mxkv serves the MxTask-based key-value store over TCP (the
// paper's end-to-end application). Protocol:
//
//	SET <key> <value> | GET <key> | DEL <key> | SCAN <from> <to> [limit]
//	MSET <k> <v> ... | MGET <key> ... | COUNT | STATS | PING | QUIT
//
// Clients may pipeline: requests are parsed and dispatched as they
// arrive and replies are written back strictly in request order, up to
// -window requests in flight per connection (see kvstore.Server).
//
// Example:
//
//	mxkv -addr 127.0.0.1:7070 -workers 4 -wal-dir /var/lib/mxkv -sync batch
//	printf 'SET 1 42\nGET 1\nQUIT\n' | nc 127.0.0.1 7070
//
// With -wal-dir set, every SET/DEL reply is a durable ack: the record has
// been written to the write-ahead log and fsynced (per the -sync policy)
// before the reply is sent. Restarting mxkv with the same -wal-dir
// recovers the store from the newest snapshot plus the log tail.
//
// With -shards N (N > 1), the keyspace is range-partitioned across N
// shards, each on its own runtime (the workers are split across the
// shards, simulating one runtime per NUMA node) with its own Blink-tree
// and its own WAL subdirectory <wal-dir>/shard-NNN. Restarting requires
// the same -shards value; recovery replays all shard logs concurrently.
//
// Replication (single shard, durable only) is enabled by -advertise, the
// canonical address peers and redirected clients dial. -wal-dir then
// names the node's data root: the live WAL generation lives under it
// (snapshot resyncs rotate generations via the wal.current pointer) next
// to the replication state file. Start the first node bare and the rest
// with -replica-of pointing at it:
//
//	mxkv -addr :7070 -advertise host0:7070 -wal-dir /var/lib/mxkv0 -ack-replicas 1
//	mxkv -addr :7071 -advertise host1:7071 -wal-dir /var/lib/mxkv1 -replica-of host0:7070
//	mxkv -supervise host0:7070,host1:7071
//
// Replicas serve GETR (bounded-staleness reads) and redirect writes;
// -supervise runs a standalone supervisor that leases the primary,
// promotes the highest-applied replica when it dies, and sweeps
// rejoining nodes onto the current timeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/pager"
	"mxtasking/internal/prefetch"
	"mxtasking/internal/repl"
)

// parseSyncPolicy maps the -sync flag onto WAL options:
//
//	"batch"    fsync once per group-commit batch (default, strongest)
//	"none"     no fsync; acks mean "written", not "durable"
//	an integer fsync after that many unsynced records (e.g. -sync 64)
//	a duration fsync at least that often (e.g. -sync 5ms)
func parseSyncPolicy(s string, d *kvstore.Durability) error {
	switch s {
	case "batch", "":
		return nil
	case "none":
		d.NoSync = true
		return nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return fmt.Errorf("-sync count must be positive, got %d", n)
		}
		d.SyncEvery = n
		return nil
	}
	if iv, err := time.ParseDuration(s); err == nil {
		if iv <= 0 {
			return fmt.Errorf("-sync interval must be positive, got %v", iv)
		}
		d.SyncInterval = iv
		return nil
	}
	return fmt.Errorf("-sync must be batch, none, a record count, or a duration; got %q", s)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count (split across shards when -shards > 1)")
		shards   = flag.Int("shards", 1, "shard count: partition the keyspace across this many per-node runtimes")
		distance = flag.Int("prefetch", 2, "prefetch distance (0 disables)")
		pin      = flag.Bool("pin", false, "pin workers to OS threads")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory, no durability)")
		syncMode = flag.String("sync", "batch", "fsync policy: batch | none | <count> | <duration>")
		segBytes = flag.Int64("segment-bytes", 0, "WAL segment size cap in bytes (0 = default 64MiB)")
		snapEvry = flag.Uint64("snapshot-every", 0, "checkpoint after this many logged records (0 = manual only)")
		window   = flag.Int("window", kvstore.DefaultWindow, "max pipelined requests in flight per connection")
		idleTO   = flag.Duration("idle-timeout", 0, "reap connections idle for this long (0 = never)")
		writeTO  = flag.Duration("write-timeout", 0, "reap connections whose reply flush stalls this long (0 = never)")
		maxInfl  = flag.Int("max-inflight", 0, "admission high-water mark: shed store requests past this in-flight depth (0 = unbounded)")
		retryAft = flag.Duration("retry-after", 0, "backoff hint attached to overload rejections (0 = default)")
		steal    = flag.Bool("steal", false, "let idle shard runtimes steal task pools from overloaded siblings (requires -shards > 1)")
		stealMin = flag.Int("steal-backlog", 0, "min stealable backlog before a shard is stolen from (0 = default 16)")
		learned  = flag.Bool("learned-prefetch", false, "learn per-connection access strides and warm predicted leaves (DESIGN.md §8)")
		ilWidth  = flag.Int("interleave", 0, "batched-read group-descent width: 0 = default, 1 = sequential per-key chains (DESIGN.md §9)")

		pageBytes  = flag.Int("page-bytes", 0, "paged value tier page size in bytes (0 with -pool-frames set = 4096; enables paging, DESIGN.md §10)")
		poolFrames = flag.Int("pool-frames", 0, "paged value tier buffer pool frames (0 with -page-bytes set = 128; enables paging)")
		spillOver  = flag.Uint64("spill-over", 0, "spill values >= this to page files (0 = every value; needs -page-bytes or -pool-frames)")

		advertise = flag.String("advertise", "", "canonical address peers and redirected clients dial; enables replication (requires -wal-dir, -shards 1)")
		replicaOf = flag.String("replica-of", "", "start as a replica of this primary's advertise address (requires -advertise)")
		ackReps   = flag.Int("ack-replicas", 0, "semi-sync bar: ack client writes only after this many replicas acknowledged (0 = async)")
		ackTO     = flag.Duration("ack-timeout", 0, "bound on the semi-sync replica-ack wait (0 = default)")
		heartbeat = flag.Duration("heartbeat", 0, "replication heartbeat/lease cadence (0 = default)")
		leaseTO   = flag.Duration("lease-timeout", 0, "self-fence the primary when supervisor lease renewals stop for this long (0 = no fencing)")
		staleAft  = flag.Duration("stale-after", 0, "replica refuses bounded reads after this long without a primary frame (0 = 6x heartbeat)")
		shipWin   = flag.Int("ship-window", 0, "max records shipped but unacknowledged per follower (0 = default)")
		supervise = flag.String("supervise", "", "run a standalone supervisor over these comma-separated member addresses (no store)")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("mxkv: -shards must be >= 1, got %d", *shards)
	}

	if *supervise != "" {
		runSupervisor(strings.Split(*supervise, ","), *heartbeat, *leaseTO)
		return
	}
	replicated := *advertise != ""
	if *replicaOf != "" && !replicated {
		log.Fatal("mxkv: -replica-of requires -advertise")
	}
	if replicated && *walDir == "" {
		log.Fatal("mxkv: replication requires -wal-dir (the node's data root)")
	}
	if replicated && *shards != 1 {
		log.Fatalf("mxkv: replication requires -shards 1, got %d", *shards)
	}

	if *steal && *shards < 2 {
		log.Fatal("mxkv: -steal requires -shards > 1 (stealing balances across shard runtimes)")
	}
	cfg := mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: *distance,
		EpochPolicy:      epoch.Batched,
		PinWorkers:       *pin,
		Steal: mxtask.StealConfig{
			Enabled:    *steal,
			MinBacklog: *stealMin,
		},
	}

	var d kvstore.Durability
	durable := *walDir != ""
	if durable {
		d = kvstore.Durability{
			Dir:           *walDir,
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvry,
		}
		if err := parseSyncPolicy(*syncMode, &d); err != nil {
			log.Fatal(err)
		}
	}

	// Paged value tier (DESIGN.md §10): values spill out of the trees into
	// buffer-pool-managed page files, keeping the resident set bounded by
	// -pool-frames regardless of dataset size.
	paged := *pageBytes > 0 || *poolFrames > 0
	var pc kvstore.PagedConfig
	if paged {
		pc = kvstore.PagedConfig{
			PageBytes:  *pageBytes,
			PoolFrames: *poolFrames,
			SpillOver:  *spillOver,
		}
		if durable {
			d.Paged = &pc
		}
	} else if *spillOver != 0 {
		log.Fatal("mxkv: -spill-over requires -page-bytes or -pool-frames")
	}

	var stop func()
	var store kvstore.Backend
	var sharded *kvstore.Sharded
	var node *repl.Node
	if *shards > 1 {
		g := mxtask.NewGroup(cfg, *shards)
		g.Start()
		stop = g.Stop
		if durable {
			var recov []kvstore.ShardRecovery
			var err error
			sharded, recov, err = kvstore.OpenSharded(g.Runtimes(), d)
			for _, r := range recov {
				if r.Err != nil {
					log.Printf("mxkv: shard %d recovery: %v", r.Shard, r.Err)
				} else {
					fmt.Printf("mxkv: shard %d recovered: %s\n", r.Shard, r.Stats)
				}
			}
			if err != nil {
				log.Fatalf("mxkv: recovery: %v", err)
			}
		} else if paged {
			var err error
			sharded, err = kvstore.NewShardedPaged(g.Runtimes(), pc)
			if err != nil {
				log.Fatalf("mxkv: paged tier: %v", err)
			}
		} else {
			sharded = kvstore.NewSharded(g.Runtimes())
		}
		store = sharded
		if g.StealEnabled() {
			fmt.Printf("mxkv: %d shards, %s each, stealing on (min backlog %d)\n",
				sharded.Shards(), g.Runtime(0), g.Steal().MinBacklog)
		} else {
			fmt.Printf("mxkv: %d shards, %s each\n", sharded.Shards(), g.Runtime(0))
		}
	} else {
		rt := mxtask.New(cfg)
		rt.Start()
		stop = rt.Stop
		if durable {
			dd := d
			if replicated {
				// -wal-dir is the data root: the live WAL generation is
				// wherever the resync pointer says (first boot: root/wal).
				dir, err := repl.ActiveWALDir(nil, *walDir, filepath.Join(*walDir, "wal"))
				if err != nil {
					log.Fatalf("mxkv: %v", err)
				}
				dd.Dir = dir
			}
			single, stats, err := kvstore.Open(rt, dd)
			if err != nil {
				log.Fatalf("mxkv: recovery: %v", err)
			}
			fmt.Printf("mxkv: recovered from %s: %s\n", dd.Dir, stats)
			store = single
			if replicated {
				node, err = repl.NewNode(repl.Config{
					Store:          single,
					Advertise:      *advertise,
					PrimaryAddr:    *replicaOf,
					StateDir:       filepath.Join(*walDir, "state"),
					Rebuild:        repl.SnapshotRebuild(rt, *walDir, d),
					AckReplicas:    *ackReps,
					AckTimeout:     *ackTO,
					HeartbeatEvery: *heartbeat,
					LeaseTimeout:   *leaseTO,
					StaleAfter:     *staleAft,
					ShipWindow:     *shipWin,
					Logf:           log.Printf,
				})
				if err != nil {
					log.Fatalf("mxkv: %v", err)
				}
			}
		} else if paged {
			single, err := kvstore.NewPaged(rt, pc)
			if err != nil {
				log.Fatalf("mxkv: paged tier: %v", err)
			}
			store = single
		} else {
			store = kvstore.New(rt)
		}
		fmt.Printf("mxkv: %s\n", rt)
	}
	defer stop()

	if paged {
		if ps, ok := store.(interface{ Paged() bool }); ok && ps.Paged() {
			shape := pc
			if shape.PageBytes == 0 {
				shape.PageBytes = 4096
			}
			if shape.PoolFrames == 0 {
				shape.PoolFrames = 128
			}
			fmt.Printf("mxkv: paged values: %d-byte pages x %d frames, spill >= %d\n",
				shape.PageBytes, shape.PoolFrames, shape.SpillOver)
		}
	}

	if *ilWidth != 0 {
		store.(interface{ SetInterleave(int) }).SetInterleave(*ilWidth)
	}

	opts := []kvstore.ServerOption{
		kvstore.WithWindow(*window),
		kvstore.WithErrorLog(func(err error) { log.Printf("mxkv: conn: %v", err) }),
	}
	if *idleTO > 0 {
		opts = append(opts, kvstore.WithIdleTimeout(*idleTO))
	}
	if *writeTO > 0 {
		opts = append(opts, kvstore.WithWriteTimeout(*writeTO))
	}
	if *maxInfl > 0 {
		opts = append(opts, kvstore.WithAdmission(*maxInfl, *retryAft))
	}
	if node != nil {
		opts = append(opts, kvstore.WithRepl(node))
	}
	if *learned {
		opts = append(opts, kvstore.WithLearnedPrefetch(prefetch.Config{}))
	}
	srv, err := kvstore.NewServer(store, *addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if node != nil {
		node.SetServer(srv)
		if err := node.Start(); err != nil {
			log.Fatal(err)
		}
		role := "primary"
		if *replicaOf != "" {
			role = fmt.Sprintf("replica of %s", *replicaOf)
		}
		fmt.Printf("mxkv: replication on, advertising %s (%s)\n", *advertise, role)
	}
	fmt.Printf("mxkv: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmxkv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("mxkv: close: %v", err)
	}
	if node != nil {
		// Stop replication before the store: the applier's final batch
		// runs to completion, and a resync may have swapped the store out
		// from under the one opened above.
		node.Close()
		store = node.Store()
	}
	if ps, ok := store.(interface {
		PagerStats() (pager.Stats, bool)
	}); ok {
		if pg, on := ps.PagerStats(); on {
			fmt.Printf("mxkv: pager hits=%d misses=%d (%.0f%% hit) evictions=%d writebacks=%d pages=%d resident=%d load-p50=%dus load-p99=%dus\n",
				pg.Hits, pg.Misses, 100*pg.HitRate(), pg.Evictions, pg.Writebacks,
				pg.Pages, pg.Resident, pg.LoadP50Micros, pg.LoadP99Micros)
		}
	}
	if durable {
		if err := store.(interface{ Close() error }).Close(); err != nil {
			log.Printf("mxkv: wal close: %v", err)
		}
		if sharded != nil {
			for i := 0; i < sharded.Shards(); i++ {
				fmt.Printf("mxkv: shard %d wal %s\n", i, sharded.Shard(i).WALMetrics())
			}
		} else {
			fmt.Printf("mxkv: wal %s\n", store.(*kvstore.Store).WALMetrics())
		}
	} else if paged {
		// In-memory paged store: still close to release the page file.
		if err := store.(interface{ Close() error }).Close(); err != nil {
			log.Printf("mxkv: pager close: %v", err)
		}
	}
	st := store.Stats()
	fmt.Printf("mxkv: served %d gets, %d sets, %d dels\n", st.Gets, st.Sets, st.Dels)
	if is, ok := store.(interface {
		InterleaveStats() mxtask.InterleaveStats
	}); ok {
		if il := is.InterleaveStats(); il.Groups > 0 {
			fmt.Printf("mxkv: interleave groups=%d cursors=%d retired=%d fallbacks=%d steps/turn=%.1f width<=%d\n",
				il.Groups, il.Cursors, il.Retired, il.Fallbacks,
				float64(il.Steps)/float64(il.Turns), il.MaxWidth)
		}
	}
	if sharded != nil {
		for i, ss := range sharded.StatsByShard() {
			fmt.Printf("mxkv: shard %d served %d gets, %d sets, %d dels\n", i, ss.Gets, ss.Sets, ss.Dels)
		}
		rm := sharded.RouterMetrics()
		fmt.Printf("mxkv: router routed=%v scan-fanout[%s] batch-fanout[%s]\n",
			rm.Routed.Values(), rm.ScanFanout.String(), rm.BatchFanout.String())
	}
	if m := srv.LearnedPrefetchMetrics(); m != nil {
		fmt.Printf("mxkv: learned prefetch streams=%d observed=%d hits=%d misses=%d induced=%d issued=%d window-max=%d disables=%d reenables=%d\n",
			m.Streams.Load(), m.Observed.Load(), m.Hits.Load(), m.Misses.Load(),
			m.Induced.Load(), m.Issued.Load(), m.WindowMax(), m.Disables.Load(), m.Reenables.Load())
	}
	fmt.Printf("mxkv: wire %s\n", srv.Metrics())
}

// runSupervisor runs the standalone failure detector / promotion agent
// until interrupted: lease the primary, fail over to the highest-applied
// replica when it dies, sweep rejoining members onto the winner.
func runSupervisor(members []string, heartbeat, leaseTimeout time.Duration) {
	for i := range members {
		members[i] = strings.TrimSpace(members[i])
	}
	sup, err := repl.NewSupervisor(repl.SupervisorConfig{
		Members:        members,
		HeartbeatEvery: heartbeat,
		LeaseTimeout:   leaseTimeout,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	sup.Start()
	fmt.Printf("mxkv: supervising %s\n", strings.Join(members, ", "))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nmxkv: supervisor stopping")
	sup.Close()
}
