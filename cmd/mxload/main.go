// Command mxload drives a running mxkv server with YCSB workloads over
// TCP, reporting throughput and latency percentiles — the "first results
// of an MxTask-based key-value store" pipeline (§1, §7) end to end.
//
// Usage:
//
//	mxkv -addr 127.0.0.1:7070 &
//	mxload -addr 127.0.0.1:7070 -records 10000 -ops 50000 -workload C
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"mxtasking/internal/kvstore"
	"mxtasking/internal/metrics"
	"mxtasking/internal/ycsb"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "mxkv server address")
		records  = flag.Int("records", 10000, "records to load")
		ops      = flag.Int("ops", 50000, "workload operations")
		workload = flag.String("workload", "C", "workload: A (50/50) or C (read-only)")
		clients  = flag.Int("clients", 4, "concurrent client connections")
	)
	flag.Parse()

	var w ycsb.Workload
	switch *workload {
	case "A", "a":
		w = ycsb.WorkloadA
	case "C", "c":
		w = ycsb.WorkloadC
	default:
		log.Fatalf("unknown workload %q (want A or C)", *workload)
	}

	// Load phase.
	loadStart := time.Now()
	if err := loadPhase(*addr, *records, *clients); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records in %v\n", *records, time.Since(loadStart).Round(time.Millisecond))

	// Run phase.
	var tp metrics.Throughput
	var hist metrics.Histogram
	batches := ycsb.NewBatches(ycsb.NewGenerator(w, uint64(*records), 7), *ops, ycsb.DefaultBatchSize)
	tp.Start()
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runClient(*addr, batches, &tp, &hist); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		log.Fatal(err)
	default:
	}
	fmt.Printf("workload %s: %.0f ops/s over %d ops (%s)\n",
		w, tp.PerSecond(), tp.Ops(), hist.Summary())
}

// loadPhase inserts the records, sharded across client connections.
func loadPhase(addr string, records, clients int) error {
	gen := ycsb.NewGenerator(ycsb.WorkloadInsert, uint64(records), 1)
	batches := ycsb.NewBatches(gen, records, ycsb.DefaultBatchSize)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := kvstore.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for {
				batch := batches.Next()
				if batch == nil {
					return
				}
				for _, op := range batch {
					if _, err := client.Set(op.Key, op.Value); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runClient executes workload batches until the stream is exhausted.
func runClient(addr string, batches *ycsb.Batches, tp *metrics.Throughput, hist *metrics.Histogram) error {
	client, err := kvstore.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	for {
		batch := batches.Next()
		if batch == nil {
			return nil
		}
		for _, op := range batch {
			start := time.Now()
			switch op.Kind {
			case ycsb.OpRead:
				if _, _, err := client.Get(op.Key); err != nil {
					return err
				}
			case ycsb.OpUpdate, ycsb.OpInsert:
				if _, err := client.Set(op.Key, op.Value); err != nil {
					return err
				}
			}
			hist.Observe(time.Since(start))
			tp.Add(1)
		}
	}
}
