// Command mxload drives a running mxkv server with YCSB workloads over
// TCP, reporting throughput and latency percentiles — the "first results
// of an MxTask-based key-value store" pipeline (§1, §7) end to end.
//
// Requests are pipelined: each connection keeps up to -depth requests in
// flight (1 = classic blocking round trips), which is what lets the
// server's task runtime see real batches instead of being bounded by the
// network round-trip time. Per-op latency is measured from issue to reply
// through the in-flight ring, so the reported percentiles stay honest
// under pipelining.
//
// Usage:
//
//	mxkv -addr 127.0.0.1:7070 &
//	mxload -addr 127.0.0.1:7070 -records 10000 -ops 50000 -workload C -depth 16
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"mxtasking/internal/kvstore"
	"mxtasking/internal/metrics"
	"mxtasking/internal/ycsb"
)

// loadDepth is the pipeline depth of the load phase (not latency-measured,
// so it just runs as deep as the server's default window).
const loadDepth = 64

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "mxkv server address")
		records  = flag.Int("records", 10000, "records to load")
		ops      = flag.Int("ops", 50000, "workload operations")
		workload = flag.String("workload", "C", "workload: A (50/50), B (95/5), C (read-only), D (read latest), E (short scans)")
		clients  = flag.Int("clients", 4, "concurrent client connections")
		depth    = flag.Int("depth", 16, "pipeline depth per connection (1 = blocking round trips)")
		shards   = flag.Int("shards", 0, "expected server shard count (0 = don't check); per-shard stats print either way")
		dialTO   = flag.Duration("dial-timeout", kvstore.DefaultDialTimeout, "TCP connect timeout (<0 = none)")
		opTO     = flag.Duration("op-timeout", 0, "per-operation read/write deadline (0 = none)")
		retries  = flag.Int("retries", 0, "retries for idempotent/shed operations before giving up")
	)
	flag.Parse()

	cfg := kvstore.DialConfig{
		DialTimeout:  *dialTO,
		ReadTimeout:  *opTO,
		WriteTimeout: *opTO,
		MaxRetries:   *retries,
	}

	var w ycsb.Workload
	switch *workload {
	case "A", "a":
		w = ycsb.WorkloadA
	case "B", "b":
		w = ycsb.WorkloadB
	case "C", "c":
		w = ycsb.WorkloadC
	case "D", "d":
		w = ycsb.WorkloadD
	case "E", "e":
		w = ycsb.WorkloadE
	default:
		log.Fatalf("unknown workload %q (want A, B, C, D, or E)", *workload)
	}

	// Load phase.
	loadStart := time.Now()
	if err := loadPhase(*addr, cfg, *records, *clients); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records in %v\n", *records, time.Since(loadStart).Round(time.Millisecond))

	// Run phase.
	var tp metrics.Throughput
	var hist metrics.Histogram
	batches := ycsb.NewBatches(ycsb.NewGenerator(w, uint64(*records), 7), *ops, ycsb.DefaultBatchSize)
	tp.Start()
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runClient(*addr, cfg, batches, *depth, &tp, &hist); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		log.Fatal(err)
	default:
	}
	sum := hist.Summary()
	fmt.Printf("workload %s: depth=%d %.0f ops/s over %d ops (n=%d mean=%v p50<=%v p95<=%v p99<=%v)\n",
		w, *depth, tp.PerSecond(), tp.Ops(), sum.Count, sum.Mean, sum.P50, sum.P95, sum.P99)

	if err := reportShards(*addr, cfg, *shards); err != nil {
		log.Fatal(err)
	}
}

// reportShards fetches the server's STATS and prints the per-shard
// operation breakdown, so a sharded run shows how evenly the scrambled
// key space landed. With want > 0 a shard-count mismatch (e.g. mxload
// -shards 4 against an unsharded server) is an error.
func reportShards(addr string, cfg kvstore.DialConfig, want int) error {
	c, err := kvstore.DialWith(addr, cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("mxload: STATS: %w", err)
	}
	if want > 0 && len(st.PerShard) != want {
		return fmt.Errorf("mxload: server reports %d shards, expected %d", len(st.PerShard), want)
	}
	for i, ss := range st.PerShard {
		fmt.Printf("shard %d: %d gets, %d sets, %d dels\n", i, ss.Gets, ss.Sets, ss.Dels)
	}
	// Scheduler stealing activity, present when the server runs its
	// shards on a cooperating mxtask.Group (-steal). The fields arrive
	// via the forward-compatible Extra map, so older servers simply
	// print nothing here.
	if _, ok := st.Extra["steal_attempts"]; ok {
		field := func(name string) uint64 {
			v, _ := st.ExtraUint(name)
			return v
		}
		fmt.Printf("stealing: %d attempts, %d ok, %d aborts, %d tasks moved, imbalance %s\n",
			field("steal_attempts"), field("steal_ok"),
			field("steal_aborts"), field("steal_tasks"), st.Extra["imbalance"])
	}
	if _, ok := st.Extra["pf_induced"]; ok {
		field := func(name string) uint64 {
			v, _ := st.ExtraUint(name)
			return v
		}
		fmt.Printf("learned prefetch: %d streams, %d observed, %d hits, %d misses, %d strides induced, %d issued, window max %d, %d disables, %d reenables\n",
			field("pf_streams"), field("pf_observed"), field("pf_hits"),
			field("pf_misses"), field("pf_induced"), field("pf_issued"),
			field("pf_window"), field("pf_disables"), field("pf_reenables"))
	}
	// Paged value tier hit-rate report. Pager() is tolerant by contract:
	// it reports absent on servers predating the paged tier and zero-fills
	// individually missing fields, so this never misreads an old server.
	if pg, ok := st.Pager(); ok {
		fmt.Printf("pager: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d writebacks, %d/%d pages resident, value load p50 %dus p99 %dus\n",
			pg.Hits, pg.Misses, 100*pg.HitRate(), pg.Evictions, pg.Writebacks,
			pg.Resident, pg.Pages, pg.LoadP50Us, pg.LoadP99Us)
	}
	return nil
}

// loadPhase inserts the records, sharded across pipelined client
// connections.
func loadPhase(addr string, cfg kvstore.DialConfig, records, clients int) error {
	gen := ycsb.NewGenerator(ycsb.WorkloadInsert, uint64(records), 1)
	batches := ycsb.NewBatches(gen, records, ycsb.DefaultBatchSize)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := kvstore.DialWith(addr, cfg)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for {
				batch := batches.Next()
				if batch == nil {
					break
				}
				for _, op := range batch {
					if client.InFlight() == loadDepth {
						if _, err := client.AwaitSet(); err != nil {
							errs <- err
							return
						}
					}
					if err := client.SendSet(op.Key, op.Value); err != nil {
						errs <- err
						return
					}
				}
			}
			for client.InFlight() > 0 {
				if _, err := client.AwaitSet(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// flight is one issued-but-unanswered request: what to await and when it
// was issued, so latency covers the full issue-to-reply span even under
// pipelining.
type flight struct {
	kind  ycsb.OpKind
	start time.Time
}

// runClient executes workload batches over one pipelined connection until
// the stream is exhausted, keeping at most depth requests in flight.
// Every op kind the generator can emit is either sent or rejected: an
// unknown kind fails the run instead of silently inflating throughput.
func runClient(addr string, cfg kvstore.DialConfig, batches *ycsb.Batches, depth int, tp *metrics.Throughput, hist *metrics.Histogram) error {
	if depth < 1 {
		depth = 1
	}
	client, err := kvstore.DialWith(addr, cfg)
	if err != nil {
		return err
	}
	defer client.Close()

	// In-flight ring, oldest at head: replies arrive in issue order.
	ring := make([]flight, depth)
	head, inflight := 0, 0
	awaitOne := func() error {
		f := ring[head]
		head = (head + 1) % depth
		inflight--
		var err error
		switch f.kind {
		case ycsb.OpRead:
			_, _, err = client.AwaitGet()
		case ycsb.OpUpdate, ycsb.OpInsert:
			_, err = client.AwaitSet()
		case ycsb.OpScan:
			_, _, err = client.AwaitScan()
		}
		if err != nil {
			return err
		}
		hist.Observe(time.Since(f.start))
		tp.Add(1)
		return nil
	}
	issue := func(op ycsb.Op) error {
		switch op.Kind {
		case ycsb.OpRead:
			return client.SendGet(op.Key)
		case ycsb.OpUpdate, ycsb.OpInsert:
			return client.SendSet(op.Key, op.Value)
		case ycsb.OpScan:
			// Keys are scrambled across the whole space; a YCSB "scan of
			// n records from key" is a limited range scan upward.
			return client.SendScan(op.Key, math.MaxUint64, op.ScanLen)
		default:
			return fmt.Errorf("mxload: unhandled op kind %v (%d)", op.Kind, op.Kind)
		}
	}

	for {
		batch := batches.Next()
		if batch == nil {
			break
		}
		for _, op := range batch {
			if inflight == depth {
				if err := awaitOne(); err != nil {
					return err
				}
			}
			if err := issue(op); err != nil {
				return err
			}
			ring[(head+inflight)%depth] = flight{kind: op.Kind, start: time.Now()}
			inflight++
		}
	}
	for inflight > 0 {
		if err := awaitOne(); err != nil {
			return err
		}
	}
	return nil
}
