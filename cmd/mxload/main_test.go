package main

import (
	"strings"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/metrics"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/ycsb"
)

func startServer(t *testing.T) *kvstore.Server {
	t.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Batched})
	rt.Start()
	t.Cleanup(rt.Stop)
	srv, err := kvstore.NewServer(kvstore.New(rt), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRunClientAllOpKinds drives runClient with a stream covering every
// ycsb.OpKind: each op must be executed and measured exactly once — no
// kind may fall through uncounted (the bug this guards against inflated
// reported throughput by skipping scans).
func TestRunClientAllOpKinds(t *testing.T) {
	srv := startServer(t)

	var ops []ycsb.Op
	// Inserts first so the reads/scans below have something to hit.
	for i := uint64(0); i < 50; i++ {
		ops = append(ops, ycsb.Op{Kind: ycsb.OpInsert, Key: i, Value: i * 10})
	}
	for i := uint64(0); i < 50; i++ {
		switch i % 3 {
		case 0:
			ops = append(ops, ycsb.Op{Kind: ycsb.OpRead, Key: i})
		case 1:
			ops = append(ops, ycsb.Op{Kind: ycsb.OpUpdate, Key: i, Value: i + 1})
		default:
			ops = append(ops, ycsb.Op{Kind: ycsb.OpScan, Key: i, ScanLen: 7})
		}
	}

	for _, depth := range []int{1, 8} {
		var tp metrics.Throughput
		var hist metrics.Histogram
		tp.Start()
		batches := ycsb.NewBatchesFromOps(ops, 16)
		if err := runClient(srv.Addr(), kvstore.DialConfig{}, batches, depth, &tp, &hist); err != nil {
			t.Fatalf("depth %d: runClient: %v", depth, err)
		}
		if got := tp.Ops(); got != uint64(len(ops)) {
			t.Fatalf("depth %d: throughput counted %d ops, want %d", depth, got, len(ops))
		}
		if got := hist.Count(); got != uint64(len(ops)) {
			t.Fatalf("depth %d: histogram recorded %d latencies, want %d", depth, got, len(ops))
		}
	}
}

// TestRunClientUnknownKind: an op kind runClient does not understand must
// fail the run immediately, not be skipped (skipping silently inflates
// the reported ops/s).
func TestRunClientUnknownKind(t *testing.T) {
	srv := startServer(t)

	ops := []ycsb.Op{
		{Kind: ycsb.OpInsert, Key: 1, Value: 1},
		{Kind: ycsb.OpKind(99), Key: 2},
		{Kind: ycsb.OpRead, Key: 1},
	}
	var tp metrics.Throughput
	var hist metrics.Histogram
	tp.Start()
	err := runClient(srv.Addr(), kvstore.DialConfig{}, ycsb.NewBatchesFromOps(ops, 0), 4, &tp, &hist)
	if err == nil {
		t.Fatal("runClient accepted an unknown op kind")
	}
	if !strings.Contains(err.Error(), "unhandled op kind") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLoadPhase loads records through the pipelined load path and checks
// they all landed.
func TestLoadPhase(t *testing.T) {
	srv := startServer(t)

	const records = 300
	if err := loadPhase(srv.Addr(), kvstore.DialConfig{}, records, 3); err != nil {
		t.Fatal(err)
	}
	c, err := kvstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := uint64(0); id < records; id++ {
		v, found, err := c.Get(ycsb.ScrambleKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != id {
			t.Fatalf("record %d: got (%d, %v), want (%d, true)", id, v, found, id)
		}
	}
}
