// Command mxtrace runs a YCSB workload on the task-based Blink-tree with
// the runtime tracer enabled and prints an execution profile: what each
// worker spent its events on (executions by synchronization class, steals,
// optimistic retries, prefetches, reclamation).
//
// Usage:
//
//	mxtrace -workers 4 -records 50000 -ops 100000 -workload A
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/prefetch"
	"mxtasking/internal/ycsb"
)

func main() {
	var (
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
		records  = flag.Int("records", 20000, "records to load")
		ops      = flag.Int("ops", 50000, "workload operations")
		workload = flag.String("workload", "A", "workload: A or C")
		capacity = flag.Int("trace", 65536, "trace ring capacity per worker")
		learned  = flag.Bool("learned-prefetch", false, "run a learned stride stream over the op keys and warm predicted leaves (DESIGN.md §8)")
	)
	flag.Parse()

	var w ycsb.Workload
	switch *workload {
	case "A", "a":
		w = ycsb.WorkloadA
	case "C", "c":
		w = ycsb.WorkloadC
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	rt := mxtask.New(mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
		TraceCapacity:    *capacity,
	})
	rt.Start()
	tree := blinktree.NewTaskTree(rt, blinktree.TaskSyncOptimistic)

	load := ycsb.NewGenerator(ycsb.WorkloadInsert, uint64(*records), 1)
	for i := 0; i < *records; i++ {
		op := load.Next()
		tree.Insert(op.Key, op.Value)
	}
	rt.Drain()

	var (
		pfM      *prefetch.Metrics
		pfStream *prefetch.Stream
		pfBuf    []uint64
	)
	if *learned {
		pfM = &prefetch.Metrics{}
		rt.AttachLearnedPrefetch(pfM)
		pfStream = prefetch.New(prefetch.Config{}, pfM)
	}

	gen := ycsb.NewGenerator(w, uint64(*records), 7)
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		if pfStream != nil {
			pfBuf = pfStream.Observe(op.Key, pfBuf[:0])
			for _, k := range pfBuf {
				tree.Touch(k, nil)
			}
		}
		switch op.Kind {
		case ycsb.OpRead:
			tree.Lookup(op.Key)
		case ycsb.OpUpdate:
			tree.Update(op.Key, op.Value)
		}
	}
	rt.Drain()
	rt.Stop()

	profile(rt.Trace(), *workers)
	s := rt.Stats()
	fmt.Printf("\ntotals: executed=%d spawned=%d prefetches=%d retries=%d steals=%d localFastPath=%d\n",
		s.Executed, s.Spawned, s.Prefetches, s.ReadRetries, s.PoolsStolen, s.LocalFastPath)
	if pfStream != nil {
		st := pfStream.Stats()
		fmt.Printf("learned prefetch: observed=%d hits=%d misses=%d induced=%d issued=%d window=%d disabled=%v disables=%d reenables=%d\n",
			st.Observed, st.Hits, st.Misses, st.Induced, st.Issued, st.Window, st.Disabled, st.Disables, pfM.Reenables.Load())
		fmt.Printf("runtime fold: learned_hits=%d learned_misses=%d learned_strides=%d learned_issued=%d learned_window_max=%d\n",
			s.LearnedHits, s.LearnedMisses, s.LearnedStrides, s.LearnedIssued, s.LearnedWindowMax)
	}
}

// execClass names the TraceExecute Info codes.
var execClass = [...]string{"plain", "latched", "optimistic-read", "write-sync"}

func profile(events []mxtask.TraceEvent, workers int) {
	type row struct {
		exec     [4]int
		steals   int
		gsteals  int
		retries  int
		prefetch int
		collect  int
	}
	rows := make([]row, workers)
	for _, e := range events {
		r := &rows[e.Worker]
		switch e.Kind {
		case mxtask.TraceExecute:
			if e.Info < uint64(len(r.exec)) {
				r.exec[e.Info]++
			}
		case mxtask.TraceSteal:
			r.steals++
		case mxtask.TraceGroupSteal:
			r.gsteals++
		case mxtask.TraceRetry:
			r.retries++
		case mxtask.TracePrefetch:
			r.prefetch++
		case mxtask.TraceCollect:
			r.collect++
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "worker")
	for _, c := range execClass {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw, "\tsteals\tgsteals\tretries\tprefetch\tcollect")
	order := make([]int, workers)
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		r := rows[i]
		fmt.Fprintf(tw, "%d", i)
		for _, c := range r.exec {
			fmt.Fprintf(tw, "\t%d", c)
		}
		fmt.Fprintf(tw, "\t%d\t%d\t%d\t%d\t%d\n", r.steals, r.gsteals, r.retries, r.prefetch, r.collect)
	}
	tw.Flush()
	fmt.Printf("(last %d events per worker; enlarge -trace for full runs)\n", capEvents(events, workers))
}

func capEvents(events []mxtask.TraceEvent, workers int) int {
	if workers == 0 {
		return 0
	}
	return len(events) / workers
}
