// Package mxtasking is a Go reproduction of "MxTasks: How to Make
// Efficient Synchronization and Prefetching Easy" (Mühlig & Teubner,
// SIGMOD 2021).
//
// The library lives in internal/: the MxTasking runtime (internal/mxtask)
// with annotation-driven synchronization and prefetching, its substrates
// (queues, latches, epoch reclamation, the multi-level task allocator),
// the task-based Blink-tree and the baseline systems the paper compares
// against, plus a deterministic model of the paper's evaluation machine
// (internal/sim) that regenerates every figure.
//
// Entry points:
//
//   - cmd/mxbench — regenerate the paper's figures (plus -real mode)
//   - cmd/mxkv — the task-based key-value store over TCP
//   - examples/ — runnable API walkthroughs
//   - bench_test.go — testing.B benchmarks, one per figure
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package mxtasking
