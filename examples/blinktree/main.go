// Blink-tree example: the paper's §5.1 data structure under a YCSB-style
// workload, with annotation-driven synchronization and prefetching.
//
// Run with: go run ./examples/blinktree [-records N] [-ops N] [-mode optimistic]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/ycsb"
)

func main() {
	var (
		records = flag.Int("records", 50000, "records to load")
		ops     = flag.Int("ops", 100000, "workload operations")
		mode    = flag.String("mode", "optimistic", "sync mode: serialized | rwlock | optimistic")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
	)
	flag.Parse()

	var sync blinktree.TaskSyncMode
	switch *mode {
	case "serialized":
		sync = blinktree.TaskSyncSerialized
	case "rwlock":
		sync = blinktree.TaskSyncRWLatch
	case "optimistic":
		sync = blinktree.TaskSyncOptimistic
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	rt := mxtask.New(mxtask.Config{
		Workers:          *workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
	})
	rt.Start()
	defer rt.Stop()

	tree := blinktree.NewTaskTree(rt, sync)
	fmt.Printf("task-based Blink-tree, mode=%s, %d workers\n", tree.Mode(), *workers)

	// Load phase = the paper's insert-only workload.
	load := ycsb.NewGenerator(ycsb.WorkloadInsert, uint64(*records), 1)
	start := time.Now()
	for i := 0; i < *records; i++ {
		op := load.Next()
		tree.Insert(op.Key, op.Value)
	}
	rt.Drain()
	fmt.Printf("loaded %d records in %v (height %d, count %d)\n",
		*records, time.Since(start).Round(time.Millisecond), tree.Height(), tree.Count())

	// Workloads A and C over the loaded keys.
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC} {
		gen := ycsb.NewGenerator(w, uint64(*records), 7)
		start = time.Now()
		for i := 0; i < *ops; i++ {
			op := gen.Next()
			switch op.Kind {
			case ycsb.OpRead:
				tree.Lookup(op.Key)
			case ycsb.OpUpdate:
				tree.Update(op.Key, op.Value)
			}
		}
		rt.Drain()
		elapsed := time.Since(start)
		fmt.Printf("%-12s %8.0f ops/s\n", w, float64(*ops)/elapsed.Seconds())
	}

	s := rt.Stats()
	fmt.Printf("stats: executed=%d spawned=%d prefetches=%d readRetries=%d localFastPath=%d poolsStolen=%d\n",
		s.Executed, s.Spawned, s.Prefetches, s.ReadRetries, s.LocalFastPath, s.PoolsStolen)
	fmt.Printf("allocator: coreHits=%d processorRefills=%d globalRefills=%d\n",
		rt.AllocStats().CoreHits.Load(),
		rt.AllocStats().ProcessorRefs.Load(),
		rt.AllocStats().GlobalRefs.Load())
}
