// Hash-join example: the morsel-style, task-based join of paper §5.3,
// swept across task granularities like Figure 9 (scaled to the host).
//
// Run with: go run ./examples/hashjoin [-customers N] [-orders N]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"mxtasking/internal/epoch"
	"mxtasking/internal/hashjoin"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/tpch"
)

func main() {
	var (
		customers = flag.Int("customers", 20000, "build-side rows")
		orders    = flag.Int("orders", 200000, "probe-side rows")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
	)
	flag.Parse()

	cust := tpch.Customers(*customers, 1)
	ord := tpch.Orders(*orders, *customers, 2)
	fmt.Printf("customer ⋈ orders: %d x %d rows, %d workers\n",
		len(cust), len(ord), *workers)

	fmt.Printf("%-14s %-16s %s\n", "records/task", "M tuples/s", "output")
	for _, g := range []int{4, 16, 64, 256, 1024, 4096, 16384, 65536} {
		rt := mxtask.New(mxtask.Config{
			Workers:       *workers,
			EpochPolicy:   epoch.Off,
			EpochInterval: -1,
		})
		rt.Start()
		join := hashjoin.NewJoin(rt, cust, ord, g)
		start := time.Now()
		tuples := join.Run()
		elapsed := time.Since(start)
		rt.Stop()
		fmt.Printf("%-14d %-16.3f %d\n", g, float64(tuples)/elapsed.Seconds()/1e6, tuples)
	}
}
