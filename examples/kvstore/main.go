// KV-store example: the paper's end-to-end key-value store, exercised
// both embedded (completion-task API) and over its TCP protocol.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"runtime"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
)

func main() {
	rt := mxtask.New(mxtask.Config{
		Workers:          runtime.GOMAXPROCS(0),
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
	})
	rt.Start()
	defer rt.Stop()

	store := kvstore.New(rt)

	// Embedded, asynchronous use: the callback runs as a completion task
	// on the worker that finished the lookup.
	store.Set(1, 100, nil)
	store.Set(2, 200, nil)
	rt.Drain()
	done := make(chan kvstore.Result, 1)
	store.Get(2, func(r kvstore.Result) { done <- r })
	r := <-done
	fmt.Printf("embedded async get(2): value=%d found=%v\n", r.Value, r.Found)

	// Bulk load through the synchronous facade.
	for k := uint64(10); k < 1010; k++ {
		store.Set(k, k*k, nil)
	}
	rt.Drain()
	fmt.Printf("store holds %d records\n", store.Count())

	// Networked use: the same store behind the TCP text protocol.
	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", srv.Addr())

	client, err := kvstore.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.Ping(); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Set(9001, 42); err != nil {
		log.Fatal(err)
	}
	v, found, err := client.Get(9001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network get(9001): value=%d found=%v\n", v, found)
	existed, err := client.Delete(9001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network delete(9001): existed=%v\n", existed)

	// Range scans run as task chains too: optimistic leaf readers feed
	// collector tasks serialized through the scan's own resource.
	pairs, err := client.Scan(10, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network scan[10,15): %d records, first=%v\n", len(pairs), pairs[0])

	st := store.Stats()
	fmt.Printf("store stats: gets=%d sets=%d dels=%d\n", st.Gets, st.Sets, st.Dels)
}
