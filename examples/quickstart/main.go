// Quickstart: the MxTasking API in one file.
//
// It walks the paper's Figure 2 end to end: create an annotated resource,
// spawn annotated tasks against it, and let the runtime inject the
// synchronization — no latch appears in application code.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync/atomic"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

func main() {
	// A runtime with four logical cores. The epoch policy and prefetch
	// distance mirror the paper's defaults.
	rt := mxtask.New(mxtask.Config{
		Workers:          4,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
	})
	rt.Start()
	defer rt.Stop()

	// --- 1. Scheduling-based synchronization (paper §4.1) -----------
	// A plain counter, no mutex anywhere: requesting exclusive
	// isolation makes the runtime route every writer to one task pool,
	// where they run in order.
	counter := 0
	counterRes := rt.CreateResource(&counter, 8,
		mxtask.IsolationExclusive, mxtask.RWWriteHeavy, mxtask.FrequencyHigh)
	fmt.Printf("counter resource: isolation=%q -> primitive=%q\n",
		counterRes.Isolation(), counterRes.Primitive())

	const increments = 10000
	for i := 0; i < increments; i++ {
		task := rt.NewTask(func(*mxtask.Context, *mxtask.Task) { counter++ }, nil)
		task.AnnotateResource(counterRes, mxtask.Write)
		rt.Spawn(task)
	}
	rt.Drain()
	fmt.Printf("scheduling-synchronized counter: %d (want %d)\n", counter, increments)

	// --- 2. Optimistic readers, serialized writers (§4.2) -----------
	// A pair of values kept equal by writers; readers run optimistically
	// and are re-executed if a write slips under them.
	var pair [2]int64
	pairRes := rt.CreateResource(&pair, 16,
		mxtask.IsolationExclusiveWriteSharedRead, mxtask.RWReadHeavy, mxtask.FrequencyHigh)
	fmt.Printf("pair resource: rw=%q -> primitive=%q\n", pairRes.RWRatio(), pairRes.Primitive())

	var torn atomic.Int64
	for i := 1; i <= 2000; i++ {
		v := int64(i)
		w := rt.NewTask(func(*mxtask.Context, *mxtask.Task) { pair[0] = v; pair[1] = v }, nil)
		w.AnnotateResource(pairRes, mxtask.Write)
		rt.Spawn(w)

		r := rt.NewTask(func(*mxtask.Context, *mxtask.Task) {
			if a, b := pair[0], pair[1]; a != b {
				torn.Add(1) // would only stick if the validated read were torn
			}
		}, nil)
		r.AnnotateResource(pairRes, mxtask.ReadOnly)
		rt.Spawn(r)
	}
	rt.Drain()
	fmt.Printf("optimistic readers completed; writers applied: pair=%v\n", pair)

	// --- 3. Priorities and placement (Figure 1) ----------------------
	ran := make(chan string, 2)
	low := rt.NewTask(func(ctx *mxtask.Context, _ *mxtask.Task) {
		ran <- fmt.Sprintf("low-priority task on worker %d", ctx.WorkerID())
	}, nil)
	low.AnnotatePriority(mxtask.PriorityLow)
	high := rt.NewTask(func(ctx *mxtask.Context, _ *mxtask.Task) {
		ran <- fmt.Sprintf("high-priority task on worker %d", ctx.WorkerID())
	}, nil)
	high.AnnotatePriority(mxtask.PriorityHigh)
	high.AnnotateCore(2)
	rt.Spawn(low)
	rt.Spawn(high)
	rt.Drain()
	fmt.Println(<-ran)
	fmt.Println(<-ran)

	s := rt.Stats()
	fmt.Printf("runtime stats: executed=%d prefetches=%d readRetries=%d poolsStolen=%d\n",
		s.Executed, s.Prefetches, s.ReadRetries, s.PoolsStolen)
}
