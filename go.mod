module mxtasking

go 1.22
