// Package alloc implements the multi-level task allocator of paper §5.2
// (Figure 8): a core heap per worker (no synchronization, LIFO reuse for
// cache warmth), a processor heap per NUMA node (one latch), and a global
// heap (the Go runtime, standing in for the OS's numa_alloc_onnode).
//
// Tasks are fixed-size objects that are allocated and freed at very high
// rates; the allocator's job is to make `new task` cost a handful of cycles
// by reusing the most recently freed block, which with high probability is
// still resident in the allocating core's cache.
//
// Blocks may be freed on a different core than they were allocated on
// (Figure 8's case ①); the block then joins the freeing core's heap, which
// shuffles memory between heaps but avoids synchronization on the hot path.
package alloc

import (
	"sync"
	"sync/atomic"
)

// Block is one fixed-size allocation slot. Real task state is stored in
// Data; Node links free blocks into the core heap's LIFO list without
// additional allocations. Home records the NUMA node whose processor heap
// the block came from, so statistics can track cross-node shuffling.
type Block struct {
	next *Block
	Home int
	Data any
}

// chunkBlocks is how many blocks a processor heap requests from the global
// heap at once, and how many a core heap requests from its processor heap.
const chunkBlocks = 64

// Stats aggregates allocator behaviour for tests and the Figure 7
// experiment.
type Stats struct {
	CoreHits      atomic.Uint64 // allocations served by the core heap's free list
	ProcessorRefs atomic.Uint64 // refills served by a processor heap
	GlobalRefs    atomic.Uint64 // refills that had to reach the global heap
	CrossNodeFree atomic.Uint64 // frees of blocks born on another NUMA node
}

// Allocator is the top of the three-level hierarchy.
type Allocator struct {
	processors []*processorHeap
	cores      []*CoreHeap
	Stats      Stats
}

// processorHeap is the middle level: one per NUMA node, protected by a
// single latch (the only synchronization in the allocator).
type processorHeap struct {
	mu   sync.Mutex
	free *Block
	node int
	allo *Allocator
}

// CoreHeap is the per-worker level. It is not safe for concurrent use; the
// run-to-completion guarantee of MxTasks makes synchronization redundant
// (§5.2).
type CoreHeap struct {
	free *Block
	proc *processorHeap
	allo *Allocator
	core int
}

// New creates an allocator for the given topology: cores total workers
// spread over nodes NUMA nodes (cores are assigned to nodes round-robin in
// contiguous ranges, matching the paper's machine enumeration).
func New(cores, nodes int) *Allocator {
	if nodes < 1 {
		nodes = 1
	}
	if cores < 1 {
		cores = 1
	}
	a := &Allocator{}
	a.processors = make([]*processorHeap, nodes)
	for i := range a.processors {
		a.processors[i] = &processorHeap{node: i, allo: a}
	}
	perNode := (cores + nodes - 1) / nodes
	a.cores = make([]*CoreHeap, cores)
	for c := range a.cores {
		node := c / perNode
		if node >= nodes {
			node = nodes - 1
		}
		a.cores[c] = &CoreHeap{proc: a.processors[node], allo: a, core: c}
	}
	return a
}

// Core returns worker c's core heap.
func (a *Allocator) Core(c int) *CoreHeap { return a.cores[c] }

// Nodes returns the number of NUMA nodes the allocator was built for.
func (a *Allocator) Nodes() int { return len(a.processors) }

// Alloc returns a block, reusing the most recently freed one when possible.
// Only the owning worker may call Alloc on its core heap.
func (h *CoreHeap) Alloc() *Block {
	if b := h.free; b != nil {
		h.free = b.next
		b.next = nil
		h.allo.Stats.CoreHits.Add(1)
		return b
	}
	h.refill()
	b := h.free
	h.free = b.next
	b.next = nil
	return b
}

// Free returns a block to this core heap's LIFO list. The block may have
// been allocated by any core (Figure 8 case ①).
//
// Data is deliberately left in place: callers cache their fixed-size object
// (e.g. a Task) inside the block so reuse skips re-construction — that is
// the whole point of the LIFO core heap. Callers must clear any references
// *inside* their object that should not outlive the free.
func (h *CoreHeap) Free(b *Block) {
	if b.Home != h.proc.node {
		h.allo.Stats.CrossNodeFree.Add(1)
	}
	b.next = h.free
	h.free = b
}

// refill pulls a chunk of blocks from the processor heap.
func (h *CoreHeap) refill() {
	h.allo.Stats.ProcessorRefs.Add(1)
	p := h.proc
	p.mu.Lock()
	if p.free == nil {
		p.refillLocked()
	}
	// Detach up to chunkBlocks blocks.
	head := p.free
	tail := head
	n := 1
	for n < chunkBlocks && tail.next != nil {
		tail = tail.next
		n++
	}
	p.free = tail.next
	tail.next = nil
	p.mu.Unlock()
	h.free = head
}

// refillLocked allocates a fresh chunk from the global heap (Go's runtime,
// standing in for numa_alloc_onnode). Caller holds p.mu.
func (p *processorHeap) refillLocked() {
	p.allo.Stats.GlobalRefs.Add(1)
	blocks := make([]Block, chunkBlocks)
	for i := range blocks {
		blocks[i].Home = p.node
		if i+1 < len(blocks) {
			blocks[i].next = &blocks[i+1]
		}
	}
	blocks[len(blocks)-1].next = p.free
	p.free = &blocks[0]
}

// FreeListLen reports the current length of the core heap's free list
// (test/diagnostic helper; O(n)).
func (h *CoreHeap) FreeListLen() int {
	n := 0
	for b := h.free; b != nil; b = b.next {
		n++
	}
	return n
}
