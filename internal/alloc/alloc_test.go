package alloc

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLIFOReuse(t *testing.T) {
	a := New(1, 1)
	h := a.Core(0)
	b1 := h.Alloc()
	b2 := h.Alloc()
	if b1 == b2 {
		t.Fatal("two live allocations share a block")
	}
	h.Free(b2)
	h.Free(b1)
	// LIFO: most recently freed (b1) comes back first — the cache-warmth
	// property §5.2 relies on.
	if got := h.Alloc(); got != b1 {
		t.Fatal("allocator did not reuse the most recently freed block")
	}
	if got := h.Alloc(); got != b2 {
		t.Fatal("allocator lost the second freed block")
	}
}

func TestNoDoubleHandout(t *testing.T) {
	a := New(1, 1)
	h := a.Core(0)
	live := make(map[*Block]bool)
	for i := 0; i < 1000; i++ {
		b := h.Alloc()
		if live[b] {
			t.Fatalf("block %p handed out twice while live", b)
		}
		live[b] = true
		if i%3 == 0 {
			for k := range live {
				h.Free(k)
				delete(live, k)
				break
			}
		}
	}
}

func TestFreePreservesData(t *testing.T) {
	// Blocks cache the caller's object (e.g. a Task) across free/alloc
	// cycles so reuse skips re-construction.
	a := New(1, 1)
	h := a.Core(0)
	b := h.Alloc()
	b.Data = "payload"
	h.Free(b)
	if got := h.Alloc(); got != b || got.Data != "payload" {
		t.Fatal("Free/Alloc cycle did not preserve the cached object")
	}
}

func TestCoreHitRate(t *testing.T) {
	a := New(1, 1)
	h := a.Core(0)
	// Warm up: one refill fills the free list.
	b := h.Alloc()
	h.Free(b)
	a.Stats.CoreHits.Store(0)
	a.Stats.ProcessorRefs.Store(0)
	for i := 0; i < 10000; i++ {
		x := h.Alloc()
		h.Free(x)
	}
	if hits := a.Stats.CoreHits.Load(); hits != 10000 {
		t.Fatalf("core hits = %d, want 10000 (steady state must not touch the processor heap)", hits)
	}
	if refs := a.Stats.ProcessorRefs.Load(); refs != 0 {
		t.Fatalf("processor refills = %d in steady state, want 0", refs)
	}
}

func TestCrossNodeFreeTracking(t *testing.T) {
	a := New(4, 2) // cores 0,1 on node 0; cores 2,3 on node 1
	b := a.Core(0).Alloc()
	if b.Home != 0 {
		t.Fatalf("block Home = %d, want 0", b.Home)
	}
	a.Core(3).Free(b) // freed on the remote node
	if got := a.Stats.CrossNodeFree.Load(); got != 1 {
		t.Fatalf("CrossNodeFree = %d, want 1", got)
	}
	// The remote core now owns the block and hands it out locally.
	if got := a.Core(3).Alloc(); got != b {
		t.Fatal("remote core heap did not reuse the foreign block")
	}
}

func TestTopologyAssignment(t *testing.T) {
	a := New(48, 2)
	if a.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", a.Nodes())
	}
	if a.Core(0).proc.node != 0 || a.Core(23).proc.node != 0 {
		t.Error("cores 0..23 must map to node 0")
	}
	if a.Core(24).proc.node != 1 || a.Core(47).proc.node != 1 {
		t.Error("cores 24..47 must map to node 1")
	}
}

func TestProcessorHeapSharing(t *testing.T) {
	a := New(2, 1)
	// Core 0 allocates and frees a big batch; core 1's refill must not
	// disturb core 0's list.
	h0, h1 := a.Core(0), a.Core(1)
	var blocks []*Block
	for i := 0; i < chunkBlocks*2; i++ {
		blocks = append(blocks, h0.Alloc())
	}
	for _, b := range blocks {
		h0.Free(b)
	}
	before := h0.FreeListLen()
	_ = h1.Alloc()
	if h0.FreeListLen() != before {
		t.Fatal("core 1's refill disturbed core 0's free list")
	}
}

func TestQuickAllocFreeBalance(t *testing.T) {
	// Property: after any alloc/free sequence, live set size equals
	// allocations minus frees, and all live blocks are distinct.
	f := func(ops []bool) bool {
		a := New(1, 1)
		h := a.Core(0)
		var live []*Block
		seen := make(map[*Block]bool)
		for _, isAlloc := range ops {
			if isAlloc || len(live) == 0 {
				b := h.Alloc()
				if seen[b] {
					return false // double handout
				}
				seen[b] = true
				live = append(live, b)
			} else {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				delete(seen, b)
				h.Free(b)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(1, 1)
	h := a.Core(0)
	warm := h.Alloc()
	h.Free(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := h.Alloc()
		h.Free(x)
	}
}

func TestConcurrentCoreHeapsShareProcessorHeap(t *testing.T) {
	// Four goroutines, each owning one core heap, hammer alloc/free with
	// cross-core frees mixed in; no block may ever be live twice.
	a := New(4, 2)
	var wg sync.WaitGroup
	handoff := make(chan *Block, 1024) // cross-core free channel
	var handed atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := a.Core(g)
			var live []*Block
			for i := 0; i < 20000; i++ {
				switch i % 4 {
				case 0, 1:
					live = append(live, h.Alloc())
				case 2:
					if len(live) > 0 {
						b := live[len(live)-1]
						live = live[:len(live)-1]
						select {
						case handoff <- b: // freed on another core later
							handed.Add(1)
						default:
							h.Free(b)
						}
					}
				case 3:
					select {
					case b := <-handoff:
						h.Free(b) // cross-core free (Fig. 8 case ①)
					default:
					}
				}
			}
			for _, b := range live {
				h.Free(b)
			}
		}(g)
	}
	wg.Wait()
	// Drain leftovers.
	for {
		select {
		case b := <-handoff:
			a.Core(0).Free(b)
			continue
		default:
		}
		break
	}
	if handed.Load() > 0 && a.Stats.CrossNodeFree.Load() == 0 {
		t.Log("no cross-NUMA frees observed (scheduling-dependent; cross-core frees still exercised)")
	}
}
