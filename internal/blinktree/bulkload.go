package blinktree

import "sort"

// BulkLoad builds a ThreadTree bottom-up from key/value pairs, packing
// leaves to the given fill factor (0 < fill <= 1; the benchmarks use 0.7,
// the steady-state occupancy of random inserts). Pairs may arrive in any
// order; duplicate keys keep the last value. BulkLoad is not safe to run
// concurrently with other operations — it is the initialization path that
// replaces millions of individual inserts when preparing an experiment.
func BulkLoad(mode SyncMode, pairs []KV, fill float64) *ThreadTree {
	t := NewThreadTree(mode)
	if len(pairs) == 0 {
		return t
	}
	if fill <= 0 || fill > 1 {
		fill = 0.7
	}
	perLeaf := int(float64(Capacity) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}

	sorted := append([]KV(nil), pairs...)
	// Stable sort: equal keys keep input order, so "last value wins"
	// below means last *inserted*, matching incremental Insert semantics.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	// Deduplicate, last value wins.
	dedup := sorted[:0]
	for i, kv := range sorted {
		if i+1 < len(sorted) && sorted[i+1].Key == kv.Key {
			continue
		}
		dedup = append(dedup, kv)
	}
	sorted = dedup

	// Build the leaf level.
	var leaves []*Node
	for lo := 0; lo < len(sorted); lo += perLeaf {
		hi := lo + perLeaf
		if hi > len(sorted) {
			hi = len(sorted)
		}
		leaf := newNode(LeafNode, 0)
		for _, kv := range sorted[lo:hi] {
			leaf.keys[leaf.count] = kv.Key
			leaf.values[leaf.count] = kv.Value
			leaf.count++
		}
		leaves = append(leaves, leaf)
	}
	linkSiblings(leaves, func(n *Node) Key { return n.keys[0] })

	// Build inner levels until one node remains.
	level := uint8(1)
	nodes := leaves
	for len(nodes) > 1 {
		var parents []*Node
		perInner := perLeaf
		for lo := 0; lo < len(nodes); lo += perInner {
			hi := lo + perInner
			if hi > len(nodes) {
				hi = len(nodes)
			}
			inner := newNode(nodeTypeFor(level), level)
			for i, child := range nodes[lo:hi] {
				sep := child.keys[0]
				if lo == 0 && i == 0 {
					sep = 0 // leftmost sentinel
				}
				inner.keys[inner.count] = sep
				inner.children[inner.count] = child
				inner.count++
			}
			parents = append(parents, inner)
		}
		linkSiblings(parents, func(n *Node) Key { return n.keys[0] })
		nodes = parents
		level++
	}
	t.root.Store(nodes[0])
	return t
}

// linkSiblings chains nodes left-to-right and sets high keys from each
// right sibling's smallest key.
func linkSiblings(nodes []*Node, firstKey func(*Node) Key) {
	for i := 0; i+1 < len(nodes); i++ {
		nodes[i].right = nodes[i+1]
		nodes[i].highKey = firstKey(nodes[i+1])
	}
}
