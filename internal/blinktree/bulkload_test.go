package blinktree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBulkLoadBasic(t *testing.T) {
	pairs := make([]KV, 10000)
	for i := range pairs {
		pairs[i] = KV{Key: Key(i), Value: Value(i * 3)}
	}
	tr := BulkLoad(SyncOptimistic, pairs, 0.7)
	if c := tr.Count(); c != len(pairs) {
		t.Fatalf("Count = %d, want %d", c, len(pairs))
	}
	for i := range pairs {
		if v, ok := tr.Lookup(Key(i)); !ok || v != Value(i*3) {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height = %d, want >= 3", h)
	}
}

func TestBulkLoadUnsortedAndDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var pairs []KV
	for i := 0; i < 5000; i++ {
		k := Key(rng.Intn(2000))
		pairs = append(pairs, KV{Key: k, Value: Value(i)})
	}
	tr := BulkLoad(SyncOptimistic, pairs, 0.7)
	// Last value per key must win.
	want := map[Key]Value{}
	for _, kv := range pairs {
		want[kv.Key] = kv.Value
	}
	if c := tr.Count(); c != len(want) {
		t.Fatalf("Count = %d, want %d distinct keys", c, len(want))
	}
	for k, v := range want {
		got, ok := tr.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Lookup(%d) = %d,%v, want %d (last write must win)", k, got, ok, v)
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	pairs := make([]KV, 3000)
	for i := range pairs {
		pairs[i] = KV{Key: Key(i * 2), Value: Value(i)}
	}
	tr := BulkLoad(SyncSpin, pairs, 0.7)
	// The loaded tree must accept ordinary inserts/splits afterwards.
	for i := 0; i < 3000; i++ {
		tr.Insert(Key(i*2+1), Value(i+100000))
	}
	if c := tr.Count(); c != 6000 {
		t.Fatalf("Count after mutation = %d, want 6000", c)
	}
	var prev Key
	first := true
	count := 0
	tr.Scan(0, ^Key(0), func(k Key, v Value) bool {
		if !first && k <= prev {
			t.Fatalf("scan order broken: %d after %d", k, prev)
		}
		first = false
		prev = k
		count++
		return true
	})
	if count != 6000 {
		t.Fatalf("scan visited %d records, want 6000", count)
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad(SyncOptimistic, nil, 0.7)
	if tr.Count() != 0 {
		t.Fatal("empty bulk load not empty")
	}
	tr.Insert(1, 2) // still usable
	if v, ok := tr.Lookup(1); !ok || v != 2 {
		t.Fatal("empty-loaded tree unusable")
	}
	one := BulkLoad(SyncOptimistic, []KV{{Key: 9, Value: 90}}, 1.0)
	if v, ok := one.Lookup(9); !ok || v != 90 {
		t.Fatal("single-record bulk load broken")
	}
}

func TestBulkLoadEquivalentToInsertsQuick(t *testing.T) {
	f := func(keys []uint16, fillSel uint8) bool {
		fill := 0.3 + float64(fillSel%70)/100
		pairs := make([]KV, len(keys))
		ref := NewThreadTree(SyncOptimistic)
		for i, k := range keys {
			pairs[i] = KV{Key: Key(k), Value: Value(i)}
			ref.Insert(Key(k), Value(i))
		}
		tr := BulkLoad(SyncOptimistic, pairs, fill)
		if tr.Count() != ref.Count() {
			return false
		}
		ok := true
		ref.Scan(0, ^Key(0), func(k Key, v Value) bool {
			got, found := tr.Lookup(k)
			if !found || got != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
