package blinktree_test

import (
	"fmt"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

// A task-based Blink-tree: operations spawn task chains (one task per node
// visit); results arrive asynchronously.
func Example() {
	rt := mxtask.New(mxtask.Config{
		Workers: 2, PrefetchDistance: 2,
		EpochPolicy: epoch.Batched, EpochInterval: -1,
	})
	rt.Start()
	defer rt.Stop()

	tree := blinktree.NewTaskTree(rt, blinktree.TaskSyncOptimistic)
	for k := uint64(0); k < 100; k++ {
		tree.Insert(k, k*k)
	}
	rt.Drain()

	look := tree.Lookup(7)
	rt.Drain()
	fmt.Println("lookup(7):", look.Result, look.Found)

	scan := tree.Scan(10, 14, nil)
	rt.Drain()
	for _, kv := range scan.Results {
		fmt.Println("scan:", kv.Key, kv.Value)
	}
	// Output:
	// lookup(7): 49 true
	// scan: 10 100
	// scan: 11 121
	// scan: 12 144
	// scan: 13 169
}

// BulkLoad builds a tree bottom-up for benchmark initialization.
func ExampleBulkLoad() {
	pairs := make([]blinktree.KV, 200)
	for i := range pairs {
		pairs[i] = blinktree.KV{Key: uint64(i), Value: uint64(i * 10)}
	}
	tree := blinktree.BulkLoad(blinktree.SyncOptimistic, pairs, 0.7)
	v, ok := tree.Lookup(42)
	fmt.Println(v, ok, tree.Count())
	// Output:
	// 420 true 200
}
