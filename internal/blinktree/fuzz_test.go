package blinktree

import (
	"testing"
)

// FuzzThreadTreeOps replays an arbitrary byte string as a tree operation
// sequence against a map oracle. Catches ordering, split and delete bugs
// from angles the hand-written tests do not.
func FuzzThreadTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewThreadTree(SyncOptimistic)
		ref := make(map[Key]Value)
		for i := 0; i+1 < len(data); i += 2 {
			op, keyByte := data[i], data[i+1]
			key := Key(keyByte)
			switch op % 4 {
			case 0, 1:
				val := Value(i)
				tr.Insert(key, val)
				ref[key] = val
			case 2:
				got, ok := tr.Lookup(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%d) = %d,%v, want %d,%v", key, got, ok, want, wok)
				}
			case 3:
				ok := tr.Delete(key)
				if _, wok := ref[key]; ok != wok {
					t.Fatalf("Delete(%d) = %v, want %v", key, ok, wok)
				}
				delete(ref, key)
			}
		}
		if tr.Count() != len(ref) {
			t.Fatalf("Count = %d, want %d", tr.Count(), len(ref))
		}
	})
}

// FuzzNodeLowerBound checks the search helper against a linear scan on
// arbitrary sorted content and arbitrary probe keys — including the
// clamped paths that optimistic readers exercise on torn counts.
func FuzzNodeLowerBound(f *testing.F) {
	f.Add(uint8(10), uint64(55))
	f.Add(uint8(0), uint64(0))
	f.Add(uint8(60), uint64(599))

	f.Fuzz(func(t *testing.T, count uint8, probe uint64) {
		n := newNode(LeafNode, 0)
		c := int(count)
		if c > Capacity {
			c = Capacity
		}
		for i := 0; i < c; i++ {
			n.keys[i] = Key(i * 10)
		}
		n.count = int32(c)
		got := n.lowerBound(probe)
		want := 0
		for want < c && n.keys[want] < probe {
			want++
		}
		if got != want {
			t.Fatalf("lowerBound(%d) = %d, want %d (count %d)", probe, got, want, c)
		}
		// A torn count must never cause out-of-range results.
		n.count = int32(Capacity) + 7 // impossible value, as a torn read might show
		if lb := n.lowerBound(probe); lb < 0 || lb > Capacity {
			t.Fatalf("lowerBound out of range under torn count: %d", lb)
		}
	})
}
