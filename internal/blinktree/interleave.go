package blinktree

import (
	"sync/atomic"

	"mxtasking/internal/mxtask"
)

// Interleaved group descents (DESIGN.md §9, CoroBase-style stall hiding).
//
// A batch of point operations used to dispatch as independent task chains:
// each root-to-leaf descent stalls alone on every node miss. StartBatch
// instead packs up to DefaultInterleave operations into one group-descent
// task that carries K cursors and advances each one node step per turn,
// round-robin. The step that computes cursor i's next node immediately
// issues that node's prefetch, then moves on to cursor i+1 — so by the
// time cursor i touches the node on the following turn, its miss has been
// overlapped by the other cursors' compute (and by the runtime's own
// window prefetcher across turns).
//
// The group task is deliberately NOT annotated with any node's resource:
// its body mutates cursor state, which must advance exactly once per turn,
// while annotated read bodies may re-run under failed optimistic
// validation. Per-node synchronization is instead taken explicitly through
// mxtask.Resource.ReadInline, whose critical sections are restartable pure
// reads. Anything ReadInline cannot express — serialized pools, persistent
// validation failure, a writer arriving at its write boundary, a torn
// sibling edge — hands the cursor off to the classic one-task-per-node
// chain, which remains the correctness baseline.

// DefaultInterleave is the default group width: how many traversal cursors
// one group-descent task carries. Six sits in the middle of the model's
// zero-stall window (sim.SimulateInterleave with the calibrated per-visit
// costs): wide enough that the other cursors' compute covers a node miss
// (width > miss/exec + 1 ≈ 3), narrow enough that a fetched node is still
// resident when its cursor's turn returns (width ≤ 7 under the modeled
// eviction horizon). CoroBase lands its sweet spot in the same 4–8 band.
const DefaultInterleave = 6

// MaxInterleave caps configured widths: beyond this the early cursors'
// prefetched nodes risk eviction before their turn returns (the same
// too-early failure mode as over-deep static prefetch distances).
const MaxInterleave = 64

// interleaveState carries the tree's group-descent configuration and
// counters (surfaced through InterleaveStats / mxtask.AttachInterleave).
type interleaveState struct {
	width atomic.Int32 // configured group width; 0 = DefaultInterleave

	groups    atomic.Uint64
	cursors   atomic.Uint64
	turns     atomic.Uint64
	steps     atomic.Uint64
	retired   atomic.Uint64
	fallbacks atomic.Uint64
	maxWidth  atomic.Uint64
}

// SetInterleave sets the group width for subsequent StartBatch calls:
// 0 restores DefaultInterleave, 1 disables interleaving (every batch
// member runs as its own sequential chain), values above MaxInterleave
// clamp. Safe to call at any time; in-flight groups keep their width.
func (t *TaskTree) SetInterleave(width int) {
	if width < 0 {
		width = 0
	}
	if width > MaxInterleave {
		width = MaxInterleave
	}
	t.il.width.Store(int32(width))
}

// Interleave returns the effective group width.
func (t *TaskTree) Interleave() int {
	w := int(t.il.width.Load())
	if w == 0 {
		return DefaultInterleave
	}
	return w
}

// InterleaveStats snapshots the tree's group-descent counters.
func (t *TaskTree) InterleaveStats() mxtask.InterleaveStats {
	return mxtask.InterleaveStats{
		Groups:    t.il.groups.Load(),
		Cursors:   t.il.cursors.Load(),
		Turns:     t.il.turns.Load(),
		Steps:     t.il.steps.Load(),
		Retired:   t.il.retired.Load(),
		Fallbacks: t.il.fallbacks.Load(),
		MaxWidth:  t.il.maxWidth.Load(),
	}
}

// gaugeMax lifts g to at least v.
func gaugeMax(g *atomic.Uint64, v uint64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// groupCursor is one traversal's position within a group. op==nil marks a
// slot whose traversal has retired or been handed off.
type groupCursor struct {
	op   *Op
	node *Node
}

// groupOp is the state of one interleaved group descent. It is owned by
// exactly one group task at a time (each turn re-spawns the continuation
// after the previous turn returned), so its fields need no synchronization.
type groupOp struct {
	tree    *TaskTree
	cursors []groupCursor
	live    int
}

// StartBatch dispatches ops as interleaved group descents of up to the
// tree's configured width. Each op completes exactly as it would under
// StartFrom: Result/Found written at the leaf, Done spawned once, Commit
// (writers) run under the leaf's write synchronization — writers always
// finish on the scheduled chain, which the group hands them to at their
// write-announcement boundary. Member completions are independent and
// unordered, like a loop of StartFrom calls.
func (t *TaskTree) StartBatch(ops []*Op) {
	width := t.Interleave()
	i := 0
	for i < len(ops) {
		k := len(ops) - i
		if k > width {
			k = width
		}
		if k < 2 || width < 2 {
			// A lone cursor (width 1, or a batch remainder of one) gains
			// nothing from grouping: run the classic chain.
			t.StartFrom(nil, ops[i])
			i++
			continue
		}
		g := &groupOp{tree: t, cursors: make([]groupCursor, k), live: k}
		root := t.loadRoot()
		for j := 0; j < k; j++ {
			g.cursors[j] = groupCursor{op: ops[i+j], node: root}
		}
		i += k
		t.il.groups.Add(1)
		t.il.cursors.Add(uint64(k))
		gaugeMax(&t.il.maxWidth, uint64(k))
		t.rt.Spawn(t.rt.NewTask(groupStep, g))
	}
}

// LookupBatch runs one interleaved lookup per key; each fires exactly once
// with its index, on the worker that completed it. Duplicate keys are
// independent cursors; an empty batch is a no-op.
func (t *TaskTree) LookupBatch(keys []Key, each func(i int, v Value, found bool)) {
	if len(keys) == 0 {
		return
	}
	ops := make([]*Op, len(keys))
	for i, k := range keys {
		i := i
		ops[i] = t.NewOp("lookup", k, 0, func(_ *mxtask.Context, task *mxtask.Task) {
			o := task.Arg.(*Op)
			each(i, o.Result, o.Found)
		})
	}
	t.StartBatch(ops)
}

// groupStep is one turn of an interleaved group descent: advance every
// live cursor one node step, then re-spawn the continuation. The task is
// unannotated (see the package comment above), so the body runs exactly
// once per turn and its spawns publish immediately.
func groupStep(ctx *mxtask.Context, task *mxtask.Task) {
	g := task.Arg.(*groupOp)
	t := g.tree
	t.il.turns.Add(1)
	for i := range g.cursors {
		if g.cursors[i].op != nil {
			g.stepCursor(ctx, &g.cursors[i])
		}
	}
	if g.live >= 2 {
		ctx.Spawn(ctx.NewTask(groupStep, g))
		return
	}
	if g.live == 1 {
		// A lone survivor overlaps with nothing; give it back to the
		// per-key chain instead of burning a turn per node.
		for i := range g.cursors {
			if g.cursors[i].op != nil {
				g.handoff(ctx, &g.cursors[i])
			}
		}
	}
}

// stepCursor advances one cursor by one node: follow the right sibling if
// the key moved past this node, descend to the covering child, or — at a
// leaf — resolve the lookup and retire. All shared-state reads happen
// inside ReadInline's critical section; the section body is restartable
// (it resets its outputs first), matching optimistic re-run semantics.
func (g *groupOp) stepCursor(ctx *mxtask.Context, c *groupCursor) {
	t := g.tree
	op := c.op
	node := c.node

	if op.writes() && node.Type() != InnerNode {
		// Writers announce themselves at branch nodes so the leaf task
		// arrives pre-annotated as a writer (§5.1): the group can
		// interleave them through the inner levels but must hand off at
		// the write boundary (a branch — or a root that IS the leaf).
		g.handoff(ctx, c)
		return
	}

	var next *Node
	var val Value
	var found, atLeaf bool
	ok := nodeResource(node).ReadInline(func() {
		next, val, found, atLeaf = nil, 0, false, false
		if !node.covers(op.key) {
			next = node.right
			return
		}
		if node.Type() != LeafNode {
			next = node.childFor(op.key)
			return
		}
		val, found = node.leafLookup(op.key)
		atLeaf = true
	})
	if !ok {
		// Serialized resource or persistent optimistic-validation failure:
		// the scheduled chain synchronizes properly where we cannot.
		g.handoff(ctx, c)
		return
	}
	t.il.steps.Add(1)
	if atLeaf {
		// Validated read: the (value, found) pair was consistent under the
		// leaf's version. Idempotent Op writes, then the one completion.
		op.Result, op.Found = val, found
		g.retire(ctx, c)
		return
	}
	if next == nil {
		// covers()==true with a nil child slot is a torn edge the
		// validation should have caught; be defensive rather than spin.
		g.handoff(ctx, c)
		return
	}
	c.node = next
	// Issue the next node's fetch now: the remaining cursors' steps and
	// the turn boundary overlap the miss, which is the entire point.
	next.Prefetch()
}

// retire completes a cursor in place: the op's Done spawns exactly once
// (the group body is not re-run, so no buffering is needed).
func (g *groupOp) retire(ctx *mxtask.Context, c *groupCursor) {
	op := c.op
	c.op, c.node = nil, nil
	g.live--
	g.tree.il.retired.Add(1)
	if op.Done != nil {
		ctx.Spawn(ctx.NewTask(op.Done, op))
	}
}

// handoff falls back to the classic one-task-per-node chain from the
// cursor's current position, with the access mode a scheduled step
// arriving at that node would carry.
func (g *groupOp) handoff(ctx *mxtask.Context, c *groupCursor) {
	op, node := c.op, c.node
	c.op, c.node = nil, nil
	g.live--
	g.tree.il.fallbacks.Add(1)
	g.tree.spawnOnNode(ctx, op, node, stepTask, g.tree.stepMode(node, op.writes()))
}
