package blinktree

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"mxtasking/internal/mxtask"
)

// Naming convention, mirrored by the Makefile's interleave-stress target:
// TestInterleave* run under -race and therefore restrict themselves to the
// data-race-free synchronization modes (serialized, rwlock). The
// TestLookupBatch*/TestStartBatch* family also covers optimistic mode,
// whose validated-racy reads are correct but not race-detector-clean, and
// runs only in the plain suite (like the rest of the optimistic tests).

// raceCleanModes are the modes whose read paths are latch-protected.
var raceCleanModes = []TaskSyncMode{TaskSyncSerialized, TaskSyncRWLatch}

// fillTree inserts keys 1..n (value = 10*key) and drains.
func fillTree(t testing.TB, rt *mxtask.Runtime, tr *TaskTree, n int) {
	t.Helper()
	for k := 1; k <= n; k++ {
		tr.Insert(Key(k), Value(10*k))
	}
	rt.Drain()
}

// checkBatch runs LookupBatch over keys and verifies every index fired
// exactly once with the expected (value, found) for a 1..n fill.
func checkBatch(t *testing.T, rt *mxtask.Runtime, tr *TaskTree, keys []Key, n int) {
	t.Helper()
	results := make([]Value, len(keys))
	found := make([]bool, len(keys))
	fired := make([]int32, len(keys))
	tr.LookupBatch(keys, func(i int, v Value, ok bool) {
		atomic.AddInt32(&fired[i], 1)
		results[i], found[i] = v, ok
	})
	rt.Drain()
	for i, k := range keys {
		if fired[i] != 1 {
			t.Fatalf("index %d fired %d times, want exactly once", i, fired[i])
		}
		wantFound := k >= 1 && int(k) <= n
		if found[i] != wantFound {
			t.Fatalf("key %d: found=%v, want %v", k, found[i], wantFound)
		}
		if wantFound && results[i] != Value(10*int(k)) {
			t.Fatalf("key %d: value=%d, want %d", k, results[i], 10*int(k))
		}
	}
}

// TestLookupBatchBasic covers every mode with duplicate, missing, and
// boundary keys across several widths (including width 1 = sequential and
// a batch smaller than the width).
func TestLookupBatchBasic(t *testing.T) {
	const n = 3000
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(2)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)
			fillTree(t, rt, tr, n)

			rng := rand.New(rand.NewSource(1))
			keys := make([]Key, 0, 128)
			for i := 0; i < 100; i++ {
				keys = append(keys, Key(1+rng.Intn(n)))
			}
			keys = append(keys, keys[0], keys[0])        // duplicates
			keys = append(keys, 0, Key(n+1), Key(1<<40)) // missing
			keys = append(keys, 1, Key(n))               // boundaries

			for _, width := range []int{0, 1, 2, 3, DefaultInterleave, MaxInterleave} {
				tr.SetInterleave(width)
				checkBatch(t, rt, tr, keys, n)
				checkBatch(t, rt, tr, keys[:1], n) // batch below any width
				tr.LookupBatch(nil, func(int, Value, bool) {
					t.Fatal("empty batch fired a completion")
				})
			}
			rt.Drain()

			il := tr.InterleaveStats()
			if il.Groups == 0 {
				t.Fatal("no groups started despite width >= 2 batches")
			}
			if il.Cursors != il.Retired+il.Fallbacks {
				t.Fatalf("cursor accounting: %d admitted != %d retired + %d fallbacks",
					il.Cursors, il.Retired, il.Fallbacks)
			}
			if mode == TaskSyncSerialized && il.Retired != 0 {
				t.Fatalf("serialized mode retired %d cursors inline; ReadInline must refuse", il.Retired)
			}
			if mode != TaskSyncSerialized && il.Retired == 0 {
				t.Fatal("no cursor ever completed inline")
			}
		})
	}
}

// TestStartBatchWrites drives inserts (including splits and root growth)
// through StartBatch in every mode: writers interleave across inner levels
// and must hand off at their write boundary with per-key completion intact.
func TestStartBatchWrites(t *testing.T) {
	const n = 4000
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(2)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)

			var doneCount atomic.Int64
			batch := make([]*Op, 0, 256)
			for k := 1; k <= n; k++ {
				batch = append(batch, tr.NewOp("insert", Key(k), Value(10*k),
					func(_ *mxtask.Context, task *mxtask.Task) {
						if task.Arg.(*Op).Found {
							t.Error("fresh insert reported existing key")
						}
						doneCount.Add(1)
					}))
				if len(batch) == 256 {
					tr.StartBatch(batch)
					batch = batch[:0]
				}
			}
			tr.StartBatch(batch)
			rt.Drain()
			if got := doneCount.Load(); got != n {
				t.Fatalf("write completions = %d, want %d", got, n)
			}
			if tr.Count() != n {
				t.Fatalf("tree count = %d, want %d", tr.Count(), n)
			}
			if tr.Height() < 2 {
				t.Fatal("batch too small to split; test is vacuous")
			}
			keys := make([]Key, 0, n/7)
			for k := 1; k <= n; k += 7 {
				keys = append(keys, Key(k))
			}
			checkBatch(t, rt, tr, keys, n)
		})
	}
}

// TestInterleaveRacingSplits runs interleaved lookup batches of stable
// keys while concurrent insert chains drive splits through the same nodes.
// Race-clean modes only (see the file comment); `go test -race` exercises
// the inline RLock path against real writers.
func TestInterleaveRacingSplits(t *testing.T) {
	const stable = 2000
	const churn = 6000
	for _, mode := range raceCleanModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(4)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)
			fillTree(t, rt, tr, stable)

			// Writers: fresh keys beyond the stable range, inserted through
			// normal chains while the batches below are in flight.
			for k := stable + 1; k <= stable+churn; k++ {
				tr.Insert(Key(k), Value(10*k))
			}
			rng := rand.New(rand.NewSource(42))
			for b := 0; b < 30; b++ {
				keys := make([]Key, 64)
				for i := range keys {
					keys[i] = Key(1 + rng.Intn(stable))
				}
				var fired atomic.Int64
				tr.LookupBatch(keys, func(i int, v Value, ok bool) {
					if !ok || v != Value(10*int(keys[i])) {
						t.Errorf("key %d: got %d,%v mid-churn", keys[i], v, ok)
					}
					fired.Add(1)
				})
				if b%10 == 9 {
					rt.Drain()
					if got := fired.Load(); got != 64 {
						t.Fatalf("batch %d: %d completions, want 64", b, got)
					}
				}
			}
			rt.Drain()
			if tr.Count() != stable+churn {
				t.Fatalf("count = %d, want %d", tr.Count(), stable+churn)
			}
		})
	}
}

// TestInterleaveRacingRootGrowth batches lookups against a tree whose root
// is actively being split and re-grown: groups snapshot the root at
// dispatch, so a grown root must still route every cursor correctly (the
// old root stays valid via sibling links).
func TestInterleaveRacingRootGrowth(t *testing.T) {
	for _, mode := range raceCleanModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(4)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)
			tr.Insert(1, 10)
			rt.Drain()

			next := 2
			applied := 1 // highest key known applied (drained)
			for round := 0; round < 12; round++ {
				// Grow: enough inserts to split whatever the root is now.
				for i := 0; i < 400; i++ {
					tr.Insert(Key(next), Value(10*next))
					next++
				}
				// Interleaved lookups of keys from drained earlier rounds
				// race this round's growth.
				keys := make([]Key, 32)
				for i := range keys {
					keys[i] = Key(1 + (i*37)%applied)
				}
				round := round
				tr.LookupBatch(keys, func(i int, v Value, ok bool) {
					if !ok || v != Value(10*int(keys[i])) {
						t.Errorf("round %d key %d: got %d,%v", round, keys[i], v, ok)
					}
				})
				rt.Drain()
				applied = next - 1
			}
			if h := tr.Height(); h < 3 {
				t.Fatalf("height %d: root growth never raced the batches", h)
			}
		})
	}
}

// TestInterleaveLockstep is the tree-level invariance check: the same
// seeded lookup stream answered by interleaved groups and by the 1-cursor
// sequential reference must be identical, while interleaved write batches
// on a disjoint key range drive splits underneath.
func TestInterleaveLockstep(t *testing.T) {
	const stable = 2500
	seeds := []int64{1, 7, 1234}
	for _, mode := range raceCleanModes {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				run := func(width int) []Value {
					rt := newTreeRuntime(4)
					rt.Start()
					defer rt.Stop()
					tr := NewTaskTree(rt, mode)
					tr.SetInterleave(width)
					fillTree(t, rt, tr, stable)

					rng := rand.New(rand.NewSource(seed))
					out := make([]Value, 0, 40*64)
					// Writers live far above every readable key (present
					// or missing): they churn the tree's shape without
					// being able to change any read's answer.
					writeKey := 1 << 30
					for b := 0; b < 40; b++ {
						// Disjoint-range writers churn the tree shape but
						// cannot change any read answer.
						wops := make([]*Op, 32)
						for i := range wops {
							wops[i] = tr.NewOp("insert", Key(writeKey), Value(writeKey), nil)
							writeKey++
						}
						tr.StartBatch(wops)

						keys := make([]Key, 64)
						for i := range keys {
							keys[i] = Key(1 + rng.Intn(stable+stable/2)) // ~1/3 missing
						}
						vals := make([]Value, len(keys))
						tr.LookupBatch(keys, func(i int, v Value, ok bool) {
							if !ok {
								v = 1 << 62
							}
							vals[i] = v
						})
						rt.Drain()
						out = append(out, vals...)
					}
					return out
				}
				il := run(DefaultInterleave)
				seq := run(1)
				if len(il) != len(seq) {
					t.Fatalf("result lengths differ: %d vs %d", len(il), len(seq))
				}
				for i := range il {
					if il[i] != seq[i] {
						t.Fatalf("result %d differs: interleaved %d, sequential %d", i, il[i], seq[i])
					}
				}
			})
		}
	}
}
