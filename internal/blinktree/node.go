// Package blinktree implements the Blink-tree of Lehman and Yao as used in
// the MxTasks paper (§5.1, §6): 1 kB nodes storing 64-bit keys and 64-bit
// payloads, with right-sibling links that let traversals survive concurrent
// splits without holding parent latches.
//
// Two drivers share the node structure:
//
//   - TaskTree (tasktree.go) — the paper's contribution: one MxTask per node
//     visit, synchronization injected by the runtime from annotations
//     (Figure 6's pseudocode).
//   - ThreadTree (threadtree.go) — the p_thread baseline: synchronous calls
//     with pluggable latch modes (spinlock, reader/writer lock, optimistic
//     lock coupling).
package blinktree

import (
	"mxtasking/internal/latch"
)

// Key and Value are the paper's 64-bit record format.
type (
	Key   = uint64
	Value = uint64
)

// Capacity is the number of entries per node. With 8-byte keys and 8-byte
// payloads plus the header this keeps nodes at the paper's ~1 kB.
const Capacity = 60

// NodeSize is the annotated node size in bytes (paper: 1 kB), the amount the
// prefetcher pulls in per node.
const NodeSize = 1024

// NodeType distinguishes leaves, inner nodes, and branch nodes. A branch
// node is an inner node whose children are leaves; the paper introduces it
// so an insert task can annotate itself as a writer one step early without
// loading the child's metadata (§5.1).
type NodeType uint8

const (
	// LeafNode stores key/value records.
	LeafNode NodeType = iota
	// BranchNode is an inner node whose children are leaves.
	BranchNode
	// InnerNode is an inner node whose children are inner or branch
	// nodes.
	InnerNode
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case LeafNode:
		return "leaf"
	case BranchNode:
		return "branch"
	case InnerNode:
		return "inner"
	default:
		return "invalid"
	}
}

// Node is one Blink-tree node.
//
// Inner and branch nodes store count (separator, child) pairs; children[i]
// covers keys in [keys[i], keys[i+1]), the last child up to highKey. The
// leftmost separator of the leftmost node is the sentinel 0. Leaves store
// count (key, value) records in sorted order.
//
// highKey is the exclusive upper bound of the node's key range and is only
// meaningful while right is non-nil (rightmost nodes are unbounded); a
// traversal that looks for a key >= highKey follows the right sibling
// (the Blink-tree's "move right" rule).
type Node struct {
	Version latch.VersionLock // optimistic synchronization
	Latch   latch.RWSpinLock  // latch-based synchronization

	typ     NodeType
	level   uint8 // leaf = 0
	count   int32
	highKey Key
	right   *Node

	keys     [Capacity]Key
	values   [Capacity]Value     // leaves only
	children [Capacity + 1]*Node // inner/branch only; index parallel to keys

	// Res is the node's annotated data object handle when the node
	// belongs to a TaskTree; nil in a ThreadTree.
	Res resourceRef
}

// resourceRef decouples the node structure from the mxtask package so the
// thread-based baseline does not depend on the runtime. The TaskTree stores
// its *mxtask.Resource here.
type resourceRef = any

// newNode returns an empty node of the given type and level.
func newNode(typ NodeType, level uint8) *Node {
	return &Node{typ: typ, level: level}
}

// Type returns the node's type.
func (n *Node) Type() NodeType { return n.typ }

// Level returns the node's height above the leaves.
func (n *Node) Level() int { return int(n.level) }

// Count returns the number of entries.
func (n *Node) Count() int { return int(n.count) }

// Right returns the right sibling, or nil.
func (n *Node) Right() *Node { return n.right }

// HighKey returns the node's exclusive upper bound (valid while Right is
// non-nil).
func (n *Node) HighKey() Key { return n.highKey }

// covers reports whether key belongs to this node's range (the move-right
// test, Fig. 6 line 1).
func (n *Node) covers(key Key) bool {
	return n.right == nil || key < n.highKey
}

// Prefetch pulls the node's entry arrays toward the CPU cache, one read per
// 64-byte cache line. It implements mxtask.Prefetchable, standing in for
// the prefetcht0 sequence the paper's runtime injects (§3).
//
// The warming reads are deliberately unsynchronized — a prefetch hint may
// race writers by design, exactly like the hardware instruction it stands
// in for; no computed value escapes. Under the race detector that benign
// race would still be flagged, so race builds compile Prefetch to a no-op
// (node_prefetch_race.go) and keep every other path detector-clean.
func (n *Node) Prefetch() { n.prefetchImpl() }

// lowerBound returns the first index i in [0, count) with keys[i] >= key,
// by binary search (the access pattern that defeats hardware prefetching,
// §6.2). The count snapshot is clamped so that optimistic readers racing a
// writer can never index out of range; the version validation afterwards
// rejects any value computed from such a torn state.
func (n *Node) lowerBound(key Key) int {
	lo, hi := 0, int(n.count)
	if hi > Capacity {
		hi = Capacity
	}
	if hi < 0 {
		hi = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child covering key: children[i] for the largest i
// with keys[i] <= key. Only valid on inner/branch nodes that cover key.
// Like lowerBound it is safe (but possibly wrong, pending validation) under
// a racing writer; optimistic callers must nil-check the result.
func (n *Node) childFor(key Key) *Node {
	cnt := int(n.count)
	if cnt > Capacity {
		cnt = Capacity
	}
	i := n.lowerBound(key)
	if i >= cnt || n.keys[i] > key {
		i--
	}
	if i < 0 {
		i = 0 // key below the leftmost separator: leftmost child
	}
	return n.children[i]
}

// leafLookup finds key in a leaf.
func (n *Node) leafLookup(key Key) (Value, bool) {
	i := n.lowerBound(key)
	if i < int(n.count) && n.keys[i] == key {
		return n.values[i], true
	}
	return 0, false
}

// leafInsert inserts or overwrites key in a leaf that has room (or already
// contains key). It reports whether the leaf was full (insert not
// performed), whether the key already existed, and — when it did — the
// value that was overwritten (the paged value tier frees the page slot
// behind a displaced spilled value).
func (n *Node) leafInsert(key Key, value Value) (full, existed bool, prev Value) {
	i := n.lowerBound(key)
	if i < int(n.count) && n.keys[i] == key {
		prev = n.values[i]
		n.values[i] = value
		return false, true, prev
	}
	if int(n.count) == Capacity {
		return true, false, 0
	}
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.values[i+1:n.count+1], n.values[i:n.count])
	n.keys[i] = key
	n.values[i] = value
	n.count++
	return false, false, 0
}

// leafDelete removes key from a leaf, reporting whether it was present and
// the value it held. Blink-tree deletions do not merge nodes (matching the
// paper's baselines).
func (n *Node) leafDelete(key Key) (existed bool, prev Value) {
	i := n.lowerBound(key)
	if i >= int(n.count) || n.keys[i] != key {
		return false, 0
	}
	prev = n.values[i]
	copy(n.keys[i:n.count-1], n.keys[i+1:n.count])
	copy(n.values[i:n.count-1], n.values[i+1:n.count])
	n.count--
	return true, prev
}

// innerInsert inserts a (separator, child) pair into an inner node with
// room. It reports whether the node was full (insert not performed).
func (n *Node) innerInsert(sep Key, child *Node) (full bool) {
	if int(n.count) == Capacity {
		return true
	}
	i := n.lowerBound(sep)
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.children[i+1:n.count+1], n.children[i:n.count])
	n.keys[i] = sep
	n.children[i] = child
	n.count++
	return false
}

// splitPrepare builds the new right node for a split of this (full) node
// without publishing it: the caller can lock the fresh node first and only
// then call splitCommit, so no concurrent reader ever observes an unlocked,
// half-initialized sibling. Works for leaves and inner nodes alike. The
// caller must hold the node's write synchronization.
func (n *Node) splitPrepare() (right *Node, sep Key, leftCount int32) {
	mid := int(n.count) / 2
	right = newNode(n.typ, n.level)
	copy(right.keys[:], n.keys[mid:n.count])
	if n.typ == LeafNode {
		copy(right.values[:], n.values[mid:n.count])
	} else {
		copy(right.children[:], n.children[mid:n.count])
	}
	right.count = n.count - int32(mid)
	right.highKey = n.highKey
	right.right = n.right
	return right, n.keys[mid], int32(mid)
}

// splitCommit publishes a prepared split: the node shrinks to leftCount
// entries (the value splitPrepare returned — callers may have topped up the
// right node in between, so the left size must be explicit) and links the
// new right sibling. The caller must hold write synchronization on both
// nodes.
func (n *Node) splitCommit(right *Node, sep Key, leftCount int32) {
	n.count = leftCount
	n.highKey = sep
	n.right = right
}
