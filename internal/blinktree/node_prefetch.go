//go:build !race

package blinktree

// prefetchImpl performs the actual cache-warming reads (see Node.Prefetch).
func (n *Node) prefetchImpl() {
	var sink uint64
	for i := 0; i < Capacity; i += 8 { // 8 keys per cache line
		sink += n.keys[i]
	}
	if n.typ == LeafNode {
		for i := 0; i < Capacity; i += 8 {
			sink += n.values[i]
		}
	}
	_ = sink
}
