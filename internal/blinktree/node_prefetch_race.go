//go:build race

package blinktree

// prefetchImpl is a no-op under the race detector: the warming reads are
// benign races by construction (see Node.Prefetch), but the detector
// cannot know that. Dropping the hint changes no behavior — prefetching
// is purely a performance signal.
func (n *Node) prefetchImpl() {}
