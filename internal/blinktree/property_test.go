package blinktree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTaskTreeMapEquivalence drives the task-based tree and a reference
// map with the same operation stream, draining between dependent phases,
// and checks they agree — the task-tree twin of the thread-tree property
// test.
func TestTaskTreeMapEquivalence(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rt := newTreeRuntime(2)
		rt.Start()
		defer rt.Stop()
		tree := NewTaskTree(rt, TaskSyncOptimistic)
		ref := make(map[Key]Value)
		rng := rand.New(rand.NewSource(seed))

		for _, op := range ops {
			key := Key(op % 307)
			switch rng.Intn(4) {
			case 0, 1:
				val := Value(rng.Uint64())
				tree.Insert(key, val)
				rt.Drain() // define the order of same-key inserts
				ref[key] = val
			case 2:
				look := tree.Lookup(key)
				rt.Drain()
				want, wok := ref[key]
				if look.Found != wok || (wok && look.Result != want) {
					return false
				}
			case 3:
				del := tree.Delete(key)
				rt.Drain()
				_, wok := ref[key]
				if del.Found != wok {
					return false
				}
				delete(ref, key)
			}
		}
		rt.Drain()
		if tree.Count() != len(ref) {
			return false
		}
		for k, want := range ref {
			look := tree.Lookup(k)
			rt.Drain()
			if !look.Found || look.Result != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Writes issued before a Drain must be visible to lookups issued after it
// (the tree's external consistency contract).
func TestTaskTreeDrainVisibility(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncOptimistic)
	for round := 0; round < 50; round++ {
		k := Key(round)
		tree.Insert(k, Value(round*100))
		rt.Drain()
		look := tree.Lookup(k)
		rt.Drain()
		if !look.Found || look.Result != Value(round*100) {
			t.Fatalf("round %d: write not visible after drain (%+v)", round, look)
		}
	}
}

// TestTaskTreeScanMatchesThreadTree cross-checks the two implementations
// on identical contents.
func TestTaskTreeScanMatchesThreadTree(t *testing.T) {
	rt := newTreeRuntime(2)
	rt.Start()
	defer rt.Stop()
	taskTree := NewTaskTree(rt, TaskSyncOptimistic)
	threadTree := NewThreadTree(SyncOptimistic)

	// Unique keys: concurrent same-key inserts would have no defined
	// winner in the asynchronous tree.
	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(20000)[:4000]
	for _, k := range perm {
		v := Value(rng.Uint64())
		taskTree.Insert(Key(k), v)
		threadTree.Insert(Key(k), v)
	}
	rt.Drain()

	for trial := 0; trial < 20; trial++ {
		from := Key(rng.Intn(15000))
		to := from + Key(rng.Intn(5000))
		op := taskTree.Scan(from, to, nil)
		rt.Drain()
		var want []KV
		threadTree.Scan(from, to, func(k Key, v Value) bool {
			want = append(want, KV{Key: k, Value: v})
			return true
		})
		if len(op.Results) != len(want) {
			t.Fatalf("scan [%d,%d): task tree %d records, thread tree %d",
				from, to, len(op.Results), len(want))
		}
		for i := range want {
			if op.Results[i] != want[i] {
				t.Fatalf("scan [%d,%d) record %d: %+v vs %+v",
					from, to, i, op.Results[i], want[i])
			}
		}
	}
}

// Thread-tree scans racing inserts must never return duplicates or
// out-of-order keys (they may legitimately miss or include concurrently
// inserted keys).
func TestThreadTreeScanUnderInserts(t *testing.T) {
	tr := NewThreadTree(SyncOptimistic)
	for i := Key(0); i < 2000; i++ {
		tr.Insert(i*2, Value(i))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := Key(0); i < 2000; i++ {
			tr.Insert(i*2+1, Value(i)) // odd keys appear concurrently
		}
	}()
	for trial := 0; trial < 50; trial++ {
		var last Key
		first := true
		tr.Scan(100, 3900, func(k Key, v Value) bool {
			if !first && k <= last {
				t.Errorf("scan keys not strictly increasing: %d after %d", k, last)
				return false
			}
			first = false
			last = k
			return true
		})
	}
	<-done
}
