package blinktree

import (
	"sort"
	"sync/atomic"

	"mxtasking/internal/mxtask"
)

// ScanOp is an asynchronous range scan over [From, To). It showcases how
// larger operations compose from MxTasks: each leaf is read by an
// optimistic task; the per-leaf results are handed to collector tasks that
// the runtime serializes through the scan's own exclusive resource — no
// mutex in sight, exactly the paper's "synchronization through scheduling".
//
// Read Results only after completion (the Done task, or Runtime.Drain).
type ScanOp struct {
	tree *TaskTree
	from Key
	to   Key

	// collect is the scan's result buffer's annotated resource: exclusive
	// isolation serializes all collector tasks onto one pool.
	collect *mxtask.Resource

	// Results holds the matching pairs, sorted by key after completion.
	Results []KV

	// Limit, when positive, caps len(Results): once the collector has
	// gathered Limit records the leaf walk stops early instead of
	// visiting (and buffering) the rest of the range.
	Limit int

	// Truncated reports, after completion, that the scan hit Limit and
	// records past the cap may exist in [From, To). Resume from
	// Results[len(Results)-1].Key + 1 to continue.
	Truncated bool

	// stop is set by the collector when Limit is reached; the leaf walk
	// polls it and terminates the chain at the next step.
	stop atomic.Bool

	// Done, when non-nil, is spawned with the ScanOp as Arg once the
	// scan has visited every leaf in range and sorted the results.
	Done mxtask.Func
}

// KV is one scanned record.
type KV struct {
	Key   Key
	Value Value
}

// leafBatch carries one leaf's matching records to the collector.
type leafBatch struct {
	op      *ScanOp
	kv      []KV
	last    bool // no further leaves in range
	stopped bool // walk cut short by the result cap (implies last)
}

// Scan spawns a range scan of [from, to). The Done task (optional) fires
// after the results are complete and sorted.
func (t *TaskTree) Scan(from, to Key, done mxtask.Func) *ScanOp {
	return t.ScanLimit(from, to, 0, done)
}

// ScanLimit is Scan with a result cap: a positive limit stops the leaf
// walk once that many records have been collected and marks the op
// Truncated when records past the cap may remain. limit <= 0 scans the
// whole range.
func (t *TaskTree) ScanLimit(from, to Key, limit int, done mxtask.Func) *ScanOp {
	op := &ScanOp{tree: t, from: from, to: to, Limit: limit, Done: done}
	// The collector buffer is a data object like any other: exclusive
	// isolation → serialize-by-scheduling (§4.2).
	op.collect = t.rt.CreateResource(op, 0,
		mxtask.IsolationExclusive, mxtask.RWWriteHeavy, mxtask.FrequencyLow)
	root := t.loadRoot()
	t.spawnOnNode(nil, op, root, scanStep, t.scanStepMode())
	return op
}

// scanStepMode: scans only read tree nodes.
func (t *TaskTree) scanStepMode() mxtask.AccessMode {
	if t.mode == TaskSyncSerialized {
		return mxtask.Write // pools make no distinction; keep routing uniform
	}
	return mxtask.ReadOnly
}

// scanStep visits one node on the way to (and then along) the leaf level.
// Restartable: it reads tree state and spawns buffered follow-ups only.
func scanStep(ctx *mxtask.Context, task *mxtask.Task) {
	op := task.Arg.(*ScanOp)
	node := task.Arg2.(*Node)
	t := op.tree

	if !node.covers(op.from) && node.Type() != LeafNode {
		next := node.right
		if next == nil {
			next = node
		}
		t.spawnOnNode(ctx, op, next, scanStep, t.scanStepMode())
		return
	}
	if node.Type() != LeafNode {
		next := node.childFor(op.from)
		if next == nil {
			next = node
		}
		t.spawnOnNode(ctx, op, next, scanStep, t.scanStepMode())
		return
	}
	// Result cap reached while the walk was still racing ahead of the
	// collectors: terminate the chain with a synthetic final batch instead
	// of reading further leaves. The walk is one sequential chain, so
	// exactly one last batch is produced either way.
	if op.Limit > 0 && op.stop.Load() {
		terminal := ctx.NewTask(collectStep, &leafBatch{op: op, last: true, stopped: true})
		terminal.AnnotateResource(op.collect, mxtask.Write)
		ctx.Spawn(terminal)
		return
	}
	// Leaf: gather matches into a fresh batch (fresh per attempt, so a
	// retried optimistic read cannot double-collect), then hand it to a
	// collector task and continue along the sibling chain.
	batch := &leafBatch{op: op}
	for i := 0; i < node.Count(); i++ {
		if k := node.keys[i]; k >= op.from && k < op.to {
			batch.kv = append(batch.kv, KV{Key: k, Value: node.values[i]})
		}
	}
	next := node.right
	if next == nil || node.highKey >= op.to {
		batch.last = true
	}
	collector := ctx.NewTask(collectStep, batch)
	collector.AnnotateResource(op.collect, mxtask.Write)
	ctx.Spawn(collector) // buffered under the optimistic read: fires once
	if !batch.last {
		t.spawnOnNode(ctx, op, next, scanLeafStep, t.scanStepMode())
	}
}

// scanLeafStep continues a scan along the leaf chain (the node is already
// a leaf; no descent logic needed).
func scanLeafStep(ctx *mxtask.Context, task *mxtask.Task) {
	scanStep(ctx, task)
}

// collectStep appends one leaf's batch to the result buffer. All
// collectors of a scan run in the same pool, in order, so the append is
// unsynchronized by construction. The final collector sorts and fires
// Done.
func collectStep(ctx *mxtask.Context, task *mxtask.Task) {
	batch := task.Arg.(*leafBatch)
	op := batch.op
	op.Results = append(op.Results, batch.kv...)
	if op.Limit > 0 && len(op.Results) >= op.Limit {
		op.stop.Store(true) // walk: no further leaves needed
	}
	if batch.last {
		sort.Slice(op.Results, func(i, j int) bool {
			return op.Results[i].Key < op.Results[j].Key
		})
		if op.Limit > 0 && len(op.Results) > op.Limit {
			op.Results = op.Results[:op.Limit]
			op.Truncated = true
		} else if batch.stopped {
			// Stopped exactly at the cap with unvisited leaves left:
			// more in-range records may (or may not) exist.
			op.Truncated = true
		}
		if op.Done != nil {
			ctx.Spawn(ctx.NewTask(op.Done, op))
		}
	}
}
