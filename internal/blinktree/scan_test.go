package blinktree

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"mxtasking/internal/mxtask"
)

func TestTaskTreeScanBasic(t *testing.T) {
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(2)
			rt.Start()
			defer rt.Stop()
			tree := NewTaskTree(rt, mode)
			for i := Key(0); i < 1000; i++ {
				tree.Insert(i*2, Value(i)) // even keys
			}
			rt.Drain()

			op := tree.Scan(100, 200, nil)
			rt.Drain()
			if len(op.Results) != 50 {
				t.Fatalf("scan returned %d records, want 50", len(op.Results))
			}
			for i, kv := range op.Results {
				want := Key(100 + 2*i)
				if kv.Key != want || kv.Value != Value(want/2) {
					t.Fatalf("result %d = %+v, want key %d", i, kv, want)
				}
			}
		})
	}
}

func TestTaskTreeScanSpansLeaves(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncOptimistic)
	const n = 10000
	for i := Key(0); i < n; i++ {
		tree.Insert(i, Value(i))
	}
	rt.Drain()
	if tree.Height() < 3 {
		t.Fatal("tree too small for a multi-leaf scan test")
	}

	op := tree.Scan(500, 7500, nil)
	rt.Drain()
	if len(op.Results) != 7000 {
		t.Fatalf("scan returned %d records, want 7000", len(op.Results))
	}
	for i, kv := range op.Results {
		if kv.Key != Key(500+i) {
			t.Fatalf("result %d = key %d, want %d (order or completeness broken)", i, kv.Key, 500+i)
		}
	}
}

func TestTaskTreeScanEmptyRangeAndBounds(t *testing.T) {
	rt := newTreeRuntime(2)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncOptimistic)
	for i := Key(0); i < 500; i++ {
		tree.Insert(i*10, Value(i))
	}
	rt.Drain()

	empty := tree.Scan(4991, 4999, nil) // between keys
	rt.Drain()
	if len(empty.Results) != 0 {
		t.Fatalf("empty range returned %d records", len(empty.Results))
	}
	// Inclusive lower, exclusive upper.
	edge := tree.Scan(10, 21, nil)
	rt.Drain()
	if len(edge.Results) != 2 || edge.Results[0].Key != 10 || edge.Results[1].Key != 20 {
		t.Fatalf("edge scan = %+v, want keys [10 20]", edge.Results)
	}
	// Whole-tree scan.
	all := tree.Scan(0, ^Key(0), nil)
	rt.Drain()
	if len(all.Results) != 500 {
		t.Fatalf("full scan returned %d records, want 500", len(all.Results))
	}
}

func TestTaskTreeScanDoneFiresOnce(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncOptimistic)
	for i := Key(0); i < 5000; i++ {
		tree.Insert(i, Value(i))
	}
	rt.Drain()

	var fired atomic.Int64
	var sawCount atomic.Int64
	tree.Scan(0, 5000, func(_ *mxtask.Context, task *mxtask.Task) {
		op := task.Arg.(*ScanOp)
		sawCount.Store(int64(len(op.Results)))
		fired.Add(1)
	})
	rt.Drain()
	if fired.Load() != 1 {
		t.Fatalf("Done fired %d times", fired.Load())
	}
	if sawCount.Load() != 5000 {
		t.Fatalf("Done observed %d results, want 5000", sawCount.Load())
	}
}

func TestTaskTreeScanUnderConcurrentUpdates(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncOptimistic)
	const n = 3000
	for i := Key(0); i < n; i++ {
		tree.Insert(i, Value(i))
	}
	rt.Drain()

	// Updates fly while scans run; every scanned value must be one some
	// writer wrote for its key (k mod n invariant).
	rng := rand.New(rand.NewSource(5))
	var scans []*ScanOp
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			k := Key(rng.Intn(n))
			tree.Update(k, Value(k)+n*Value(rng.Intn(3)))
		}
		scans = append(scans, tree.Scan(Key(rng.Intn(n/2)), Key(n/2+rng.Intn(n/2)), nil))
	}
	rt.Drain()
	for _, op := range scans {
		for _, kv := range op.Results {
			if kv.Value%n != kv.Key {
				t.Fatalf("scan observed foreign value %d for key %d", kv.Value, kv.Key)
			}
		}
	}
}

// TestTaskTreeScanRacingSplits drives scans through a region of the tree
// while concurrent inserts force leaf splits under them. A Blink split
// moves keys only rightward and leaves a right-link behind, and in
// serialized mode every node visit is an exclusively scheduled task, so a
// scan must (a) never observe keys out of order or duplicated and
// (b) never miss a key that existed before the scan started — no matter
// how many leaves split mid-flight. Run under -race this also proves the
// scan path shares no unsynchronized state with the split path.
func TestTaskTreeScanRacingSplits(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tree := NewTaskTree(rt, TaskSyncSerialized)

	// Preload the even keys; the racing inserts add odd keys between
	// them, doubling the population and forcing a wave of leaf splits
	// inside the scanned range.
	const n = Key(4000)
	for k := Key(0); k < n; k += 2 {
		tree.Insert(k, Value(k))
	}
	rt.Drain()
	leavesBefore := tree.Height()

	rng := rand.New(rand.NewSource(9))
	odds := rng.Perm(int(n / 2))
	var scans []*ScanOp
	var bounds [][2]Key
	for i, o := range odds {
		k := Key(2*o + 1)
		tree.Insert(k, Value(k))
		if i%50 == 0 {
			lo := Key(rng.Intn(int(n / 2)))
			hi := lo + Key(rng.Intn(int(n/2))) + 1
			bounds = append(bounds, [2]Key{lo, hi})
			scans = append(scans, tree.Scan(lo, hi, nil))
		}
	}
	rt.Drain()

	if tree.Height() <= leavesBefore && tree.Count() != int(n) {
		t.Fatalf("inserts did not grow the tree: height %d, count %d", tree.Height(), tree.Count())
	}
	for si, op := range scans {
		lo, hi := bounds[si][0], bounds[si][1]
		seen := make(map[Key]bool, len(op.Results))
		prev := Key(0)
		for i, kv := range op.Results {
			if kv.Key < lo || kv.Key >= hi {
				t.Fatalf("scan %d [%d,%d): result key %d out of range", si, lo, hi, kv.Key)
			}
			if i > 0 && kv.Key <= prev {
				t.Fatalf("scan %d: keys not strictly increasing at %d (%d after %d)", si, i, kv.Key, prev)
			}
			if kv.Value != Value(kv.Key) {
				t.Fatalf("scan %d: key %d carries foreign value %d", si, kv.Key, kv.Value)
			}
			prev = kv.Key
			seen[kv.Key] = true
		}
		// Every pre-existing (even) key in range must have been observed:
		// splits move keys rightward ahead of the scan cursor, never
		// behind it, so racing splits cannot hide them.
		start := lo
		if start%2 == 1 {
			start++
		}
		for k := start; k < hi; k += 2 {
			if !seen[k] {
				t.Fatalf("scan %d [%d,%d): pre-existing key %d missing (%d results)", si, lo, hi, k, len(op.Results))
			}
		}
	}
}

func TestTaskTreeScanLimit(t *testing.T) {
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(4)
			rt.Start()
			defer rt.Stop()
			tree := NewTaskTree(rt, mode)
			const n = 10000
			for i := Key(0); i < n; i++ {
				tree.Insert(i, Value(i*3))
			}
			rt.Drain()

			// Capped scan over a huge range: exactly limit results, the
			// lowest keys in range, marked truncated.
			op := tree.ScanLimit(100, n, 250, nil)
			rt.Drain()
			if len(op.Results) != 250 || !op.Truncated {
				t.Fatalf("capped scan = %d results truncated=%v, want 250/true",
					len(op.Results), op.Truncated)
			}
			for i, kv := range op.Results {
				if kv.Key != Key(100+i) || kv.Value != Value((100+i)*3) {
					t.Fatalf("result %d = %+v, want key %d", i, kv, 100+i)
				}
			}

			// Limit above the range's population: full results, untruncated.
			op = tree.ScanLimit(0, 50, 1000, nil)
			rt.Drain()
			if len(op.Results) != 50 || op.Truncated {
				t.Fatalf("roomy scan = %d results truncated=%v, want 50/false",
					len(op.Results), op.Truncated)
			}

			// Limit zero scans everything (Scan's contract).
			op = tree.ScanLimit(0, n, 0, nil)
			rt.Drain()
			if len(op.Results) != n || op.Truncated {
				t.Fatalf("unlimited scan = %d results truncated=%v", len(op.Results), op.Truncated)
			}

			// Resumability: capped pages stitched together equal one scan.
			var got []KV
			from := Key(0)
			for {
				op := tree.ScanLimit(from, 2000, 300, nil)
				rt.Drain()
				got = append(got, op.Results...)
				if !op.Truncated {
					break
				}
				from = op.Results[len(op.Results)-1].Key + 1
			}
			if len(got) != 2000 {
				t.Fatalf("paged scan stitched %d results, want 2000", len(got))
			}
			for i, kv := range got {
				if kv.Key != Key(i) {
					t.Fatalf("paged result %d = key %d", i, kv.Key)
				}
			}
		})
	}
}
