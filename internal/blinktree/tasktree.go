package blinktree

import (
	"sync/atomic"

	"mxtasking/internal/latch"
	"mxtasking/internal/mxtask"
)

// TaskSyncMode selects which synchronization family the TaskTree's node
// annotations request, matching the three configurations of Figure 12.
type TaskSyncMode int

const (
	// TaskSyncSerialized forces serialize-by-scheduling on every node:
	// tasks touching the same node are routed to the same pool and run
	// in order (Fig. 12a).
	TaskSyncSerialized TaskSyncMode = iota
	// TaskSyncRWLatch forces reader/writer latches; tasks stay on their
	// spawning core (Fig. 12b).
	TaskSyncRWLatch
	// TaskSyncOptimistic uses the cost model (§4.2): inner nodes get
	// optimistic scheduling, leaves get optimistic latches (Fig. 12c).
	TaskSyncOptimistic
)

// String names the mode.
func (m TaskSyncMode) String() string {
	switch m {
	case TaskSyncSerialized:
		return "serialized"
	case TaskSyncRWLatch:
		return "rwlock"
	case TaskSyncOptimistic:
		return "optimistic"
	default:
		return "invalid"
	}
}

// TaskTree is the MxTask-based Blink-tree (§5.1): every node visit is one
// task, annotated with the node's resource and an access intention; the
// runtime injects prefetching and synchronization.
//
// Operations are asynchronous: Lookup/Insert/Update/Delete spawn a task
// chain and return immediately; completion is observable through the Op's
// Done task (if set) or by draining the runtime.
type TaskTree struct {
	rt     *mxtask.Runtime
	mode   TaskSyncMode
	root   atomic.Pointer[Node]
	rootMu latch.Spinlock // serializes root growth only

	// il configures and counts interleaved group descents (interleave.go).
	il interleaveState
}

// Op carries one tree operation through its task chain. Create it with the
// tree's operation methods; read Result/Found only after completion.
type Op struct {
	tree  *TaskTree
	key   Key
	value Value
	kind  opKind

	// Result and Found are written by the final leaf task. Writes are
	// idempotent so a retried optimistic read stays correct.
	Result Value
	Found  bool

	// Prev and PrevFound report the value a writing operation displaced:
	// for insert/update the overwritten value, for delete the removed
	// one. Only meaningful inside Commit and after completion — the
	// paged value tier uses them to free the page slot behind a spilled
	// value that is no longer reachable from the tree. Never set by
	// lookups.
	Prev      Value
	PrevFound bool

	// Done, when non-nil, is spawned (with the Op as Arg) after the
	// operation completes. Spawns inside optimistic reads are buffered
	// by the runtime, so Done fires exactly once.
	Done mxtask.Func

	// Commit, when non-nil on a writing operation, runs synchronously in
	// the leaf task immediately after the write applies, while the
	// worker still holds the leaf's write synchronization. Two writes to
	// the same key are therefore observed by their Commit hooks in apply
	// order — the property the WAL relies on to keep log order and
	// memory order consistent per key. Must not be set on lookups:
	// optimistic read bodies may re-execute, and a Commit side effect
	// would fire once per attempt.
	Commit func(o *Op)
}

type opKind uint8

const (
	opLookup opKind = iota
	opInsert
	opUpdate
	opDelete
)

// linkOp carries a pending parent link after a split: install (sep, child)
// at the given level.
type linkOp struct {
	tree  *TaskTree
	sep   Key
	child *Node
	level uint8
}

// NewTaskTree builds an empty task-based tree on the runtime.
func NewTaskTree(rt *mxtask.Runtime, mode TaskSyncMode) *TaskTree {
	t := &TaskTree{rt: rt, mode: mode}
	t.root.Store(t.newTreeNode(LeafNode, 0))
	return t
}

// Mode returns the tree's synchronization mode.
func (t *TaskTree) Mode() TaskSyncMode { return t.mode }

// Runtime returns the tree's runtime.
func (t *TaskTree) Runtime() *mxtask.Runtime { return t.rt }

// newTreeNode allocates a node together with its annotated resource.
func (t *TaskTree) newTreeNode(typ NodeType, level uint8) *Node {
	n := newNode(typ, level)
	t.annotate(n)
	return n
}

// annotate attaches a resource to the node (paper Fig. 2 line 1).
// Annotation choices follow §4.2's illustration: inner nodes are read-mostly
// and hot, leaves are written more and cooler.
func (t *TaskTree) annotate(n *Node) {
	var res *mxtask.Resource
	switch t.mode {
	case TaskSyncSerialized:
		res = t.rt.CreateResource(n, NodeSize,
			mxtask.IsolationExclusive, mxtask.RWBalanced, mxtask.FrequencyNormal)
	case TaskSyncRWLatch:
		res = t.rt.CreateResource(n, NodeSize,
			mxtask.IsolationExclusiveWriteSharedRead, mxtask.RWBalanced, mxtask.FrequencyNormal)
		res.ForcePrimitive(mxtask.PrimRWLock)
	default: // TaskSyncOptimistic
		if n.typ == LeafNode {
			res = t.rt.CreateResource(n, NodeSize,
				mxtask.IsolationExclusiveWriteSharedRead, mxtask.RWWriteHeavy, mxtask.FrequencyNormal)
		} else {
			res = t.rt.CreateResource(n, NodeSize,
				mxtask.IsolationExclusiveWriteSharedRead, mxtask.RWReadHeavy, mxtask.FrequencyHigh)
		}
	}
	n.Res = res
}

func nodeResource(n *Node) *mxtask.Resource { return n.Res.(*mxtask.Resource) }

// Root returns the current root (for tests and diagnostics).
func (t *TaskTree) Root() *Node { return t.root.Load() }

// loadRoot reads the root pointer.
func (t *TaskTree) loadRoot() *Node { return t.root.Load() }

// spawnOnNode creates and spawns a step task for op at node, annotated with
// the node's resource and the access mode the step needs (paper Fig. 6,
// lines 3–5 / 8–11 / 13–17).
func (t *TaskTree) spawnOnNode(ctx *mxtask.Context, op any, node *Node, fn mxtask.Func, mode mxtask.AccessMode) {
	var task *mxtask.Task
	if ctx != nil {
		task = ctx.NewTask(fn, op)
	} else {
		task = t.rt.NewTask(fn, op)
	}
	task.Arg2 = node
	task.AnnotateResource(nodeResource(node), mode)
	if ctx != nil {
		ctx.Spawn(task)
	} else {
		t.rt.Spawn(task)
	}
}

// stepMode returns the access-mode annotation for a traversal step arriving
// at node: writers announce themselves one level early, at branch nodes
// (§5.1), so the leaf task lands pre-annotated as a writer.
func (t *TaskTree) stepMode(node *Node, writing bool) mxtask.AccessMode {
	if t.mode == TaskSyncSerialized {
		// Serialized pools make no read/write distinction, but Write
		// keeps routing uniform.
		return mxtask.Write
	}
	if writing && node.Type() == LeafNode {
		return mxtask.Write
	}
	return mxtask.ReadOnly
}

// Lookup spawns a lookup for key. The result lands in op.Result/op.Found.
func (t *TaskTree) Lookup(key Key) *Op {
	op := &Op{tree: t, key: key, kind: opLookup}
	t.start(op)
	return op
}

// LookupWith is Lookup with a completion task.
func (t *TaskTree) LookupWith(key Key, done mxtask.Func) *Op {
	op := &Op{tree: t, key: key, kind: opLookup, Done: done}
	t.start(op)
	return op
}

// Insert spawns an insert (or overwrite) of key/value.
func (t *TaskTree) Insert(key Key, value Value) *Op {
	op := &Op{tree: t, key: key, value: value, kind: opInsert}
	t.start(op)
	return op
}

// Update spawns an update of an existing key.
func (t *TaskTree) Update(key Key, value Value) *Op {
	op := &Op{tree: t, key: key, value: value, kind: opUpdate}
	t.start(op)
	return op
}

// Delete spawns a delete of key.
func (t *TaskTree) Delete(key Key) *Op {
	op := &Op{tree: t, key: key, kind: opDelete}
	t.start(op)
	return op
}

// start spawns the first step task at the root.
func (t *TaskTree) start(op *Op) {
	root := t.loadRoot()
	t.spawnOnNode(nil, op, root, stepTask, t.stepMode(root, op.writes()))
}

// StartFrom spawns op's first step from inside a task (batch dispatchers
// use this to keep spawns on the local core).
func (t *TaskTree) StartFrom(ctx *mxtask.Context, op *Op) {
	root := t.loadRoot()
	t.spawnOnNode(ctx, op, root, stepTask, t.stepMode(root, op.writes()))
}

// NewOp builds an operation without spawning it (for batch dispatchers).
func (t *TaskTree) NewOp(kind string, key Key, value Value, done mxtask.Func) *Op {
	op := &Op{tree: t, key: key, value: value, Done: done}
	switch kind {
	case "lookup":
		op.kind = opLookup
	case "insert":
		op.kind = opInsert
	case "update":
		op.kind = opUpdate
	case "delete":
		op.kind = opDelete
	default:
		panic("blinktree: unknown op kind " + kind)
	}
	return op
}

func (o *Op) writes() bool { return o.kind != opLookup }

// Key returns the operation's key.
func (o *Op) Key() Key { return o.key }

// stepTask is one node visit (Fig. 6). Arg is the *Op, Arg2 the node. The
// body is restartable: it only reads shared tree state and spawns
// follow-ups (buffered under optimistic reads); Op mutations are
// idempotent overwrites.
func stepTask(ctx *mxtask.Context, task *mxtask.Task) {
	op := task.Arg.(*Op)
	node := task.Arg2.(*Node)
	t := op.tree

	if !node.covers(op.key) {
		// Fig. 6 lines 1–5: the key moved right past this node
		// (a concurrent split); follow the sibling.
		next := node.right
		if next == nil {
			// Torn optimistic read; validation will fail and the
			// body re-runs. Re-spawn on the same node to stay safe
			// even if it somehow validated.
			next = node
		}
		t.spawnOnNode(ctx, op, next, stepTask, t.stepMode(next, op.writes()))
		return
	}
	if node.Type() != LeafNode {
		// Fig. 6 lines 6–17: continue the traversal. The access-mode
		// annotation of the next task flips to write when the child is
		// a leaf — i.e. when this node is a branch node (§5.1).
		next := node.childFor(op.key)
		if next == nil {
			t.spawnOnNode(ctx, op, node, stepTask, t.stepMode(node, op.writes()))
			return
		}
		t.spawnOnNode(ctx, op, next, stepTask, t.stepMode(next, op.writes()))
		return
	}
	op.runLeaf(ctx, node)
}

// runLeaf executes the operation on its leaf (Fig. 6 lines 18–20). The
// worker already holds the leaf's write synchronization for writing ops.
func (o *Op) runLeaf(ctx *mxtask.Context, leaf *Node) {
	t := o.tree
	switch o.kind {
	case opLookup:
		o.Result, o.Found = leaf.leafLookup(o.key)
	case opUpdate:
		i := leaf.lowerBound(o.key)
		if i < leaf.Count() && leaf.keys[i] == o.key {
			o.Prev, o.PrevFound = leaf.values[i], true
			leaf.values[i] = o.value
			o.Found = true
		} else {
			o.Found = false
		}
	case opDelete:
		o.Found, o.Prev = leaf.leafDelete(o.key)
		o.PrevFound = o.Found
	case opInsert:
		full, existed, prev := leaf.leafInsert(o.key, o.value)
		o.Found = existed
		o.Prev, o.PrevFound = prev, existed
		if full {
			// Split (§5.1 "Blink-tree Node Splits"): build the new
			// sibling, place the record, publish, then spawn a
			// separate task that links the new node to the parent.
			right, sep, leftCount := t.splitNode(leaf)
			if o.key >= sep {
				right.leafInsert(o.key, o.value)
				leaf.splitCommit(right, sep, leftCount)
			} else {
				leaf.splitCommit(right, sep, leftCount)
				leaf.leafInsert(o.key, o.value)
			}
			t.startLink(ctx, sep, right, leaf.level+1)
		}
	}
	if o.Commit != nil && o.kind != opLookup {
		o.Commit(o)
	}
	if o.Done != nil {
		done := ctx.NewTask(o.Done, o)
		ctx.Spawn(done) // buffered under optimistic reads: fires once
	}
}

// splitNode prepares a split of n, allocating the new sibling with its own
// annotated resource. The split is not yet published; callers fill the
// proper half and then call splitCommit.
func (t *TaskTree) splitNode(n *Node) (*Node, Key, int32) {
	right, sep, leftCount := n.splitPrepare()
	t.annotate(right)
	return right, sep, leftCount
}

// startLink begins installing (sep, child) at the given level: grow the
// root if the level does not exist yet, else spawn a link-task traversal
// from the root (no parent pointers needed — the Blink-tree finds the
// parent by key).
func (t *TaskTree) startLink(ctx *mxtask.Context, sep Key, child *Node, level uint8) {
	for {
		root := t.loadRoot()
		if root.Level() < int(level) {
			if t.growRoot(level, sep, child) {
				return
			}
			continue // another split grew the tree first
		}
		l := &linkOp{tree: t, sep: sep, child: child, level: level}
		mode := mxtask.ReadOnly
		if root.Level() == int(level) || t.mode == TaskSyncSerialized {
			mode = mxtask.Write
		}
		t.spawnOnNode(ctx, l, root, linkStep, mode)
		return
	}
}

// growRoot installs a new root (level = old root's level + 1) holding the
// old root and the new child. Returns false if the tree grew concurrently.
func (t *TaskTree) growRoot(level uint8, sep Key, child *Node) bool {
	t.rootMu.Lock()
	defer t.rootMu.Unlock()
	cur := t.root.Load()
	if cur.Level() >= int(level) {
		return false
	}
	newRoot := t.newTreeNode(nodeTypeFor(level), level)
	newRoot.keys[0] = 0
	newRoot.children[0] = cur
	newRoot.keys[1] = sep
	newRoot.children[1] = child
	newRoot.count = 2
	t.root.Store(newRoot)
	return true
}

// linkStep is one node visit of a parent-link traversal. Read-only steps
// descend; the step at the target level inserts the separator, splitting
// upward if necessary.
func linkStep(ctx *mxtask.Context, task *mxtask.Task) {
	l := task.Arg.(*linkOp)
	node := task.Arg2.(*Node)
	t := l.tree

	if !node.covers(l.sep) {
		next := node.right
		if next == nil {
			next = node
		}
		t.spawnLink(ctx, l, next)
		return
	}
	if node.Level() > int(l.level) {
		next := node.childFor(l.sep)
		if next == nil {
			next = node
		}
		t.spawnLink(ctx, l, next)
		return
	}
	// node.Level() == l.level: install the separator. The worker holds
	// this node's write synchronization.
	if full := node.innerInsert(l.sep, l.child); !full {
		return
	}
	right, upSep, leftCount := t.splitNode(node)
	if l.sep >= upSep {
		right.innerInsert(l.sep, l.child)
		node.splitCommit(right, upSep, leftCount)
	} else {
		node.splitCommit(right, upSep, leftCount)
		node.innerInsert(l.sep, l.child)
	}
	t.startLink(ctx, upSep, right, node.level+1)
}

// spawnLink spawns the next link step with the right access-mode
// annotation: write when arriving at the target level.
func (t *TaskTree) spawnLink(ctx *mxtask.Context, l *linkOp, next *Node) {
	mode := mxtask.ReadOnly
	if next.Level() == int(l.level) || t.mode == TaskSyncSerialized {
		mode = mxtask.Write
	}
	t.spawnOnNode(ctx, l, next, linkStep, mode)
}

// Count returns the number of records. Only meaningful while the tree is
// quiescent (e.g. after Runtime.Drain).
func (t *TaskTree) Count() int {
	node := t.loadRoot()
	for node.typ != LeafNode {
		node = node.children[0]
	}
	n := 0
	for node != nil {
		n += node.Count()
		node = node.right
	}
	return n
}

// Height returns the tree height (1 for a lone leaf).
func (t *TaskTree) Height() int { return t.loadRoot().Level() + 1 }
