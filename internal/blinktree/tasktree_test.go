package blinktree

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

var taskModes = []TaskSyncMode{TaskSyncSerialized, TaskSyncRWLatch, TaskSyncOptimistic}

func newTreeRuntime(workers int) *mxtask.Runtime {
	return mxtask.New(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
}

func TestTaskTreeBasic(t *testing.T) {
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(2)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)

			ins := tr.Insert(42, 420)
			rt.Drain()
			if ins.Found {
				t.Fatal("fresh insert reported existing key")
			}
			look := tr.Lookup(42)
			rt.Drain()
			if !look.Found || look.Result != 420 {
				t.Fatalf("Lookup(42) = %d,%v, want 420,true", look.Result, look.Found)
			}
			up := tr.Update(42, 421)
			rt.Drain()
			if !up.Found {
				t.Fatal("update of existing key not found")
			}
			look2 := tr.Lookup(42)
			rt.Drain()
			if look2.Result != 421 {
				t.Fatalf("update not visible: got %d", look2.Result)
			}
			del := tr.Delete(42)
			rt.Drain()
			if !del.Found {
				t.Fatal("delete of existing key not found")
			}
			look3 := tr.Lookup(42)
			rt.Drain()
			if look3.Found {
				t.Fatal("deleted key still found")
			}
		})
	}
}

func TestTaskTreeBulkInsertAndSplits(t *testing.T) {
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(4)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)

			const n = 8000
			for i := Key(0); i < n; i++ {
				tr.Insert(i, Value(i*3))
			}
			rt.Drain()
			if h := tr.Height(); h < 3 {
				t.Fatalf("height = %d after %d inserts, want >= 3", h, n)
			}
			if c := tr.Count(); c != n {
				t.Fatalf("Count = %d, want %d", c, n)
			}
			ops := make([]*Op, n)
			for i := Key(0); i < n; i++ {
				ops[i] = tr.Lookup(i)
			}
			rt.Drain()
			for i := Key(0); i < n; i++ {
				if !ops[i].Found || ops[i].Result != Value(i*3) {
					t.Fatalf("Lookup(%d) = %d,%v, want %d,true",
						i, ops[i].Result, ops[i].Found, i*3)
				}
			}
		})
	}
}

func TestTaskTreeRandomKeys(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)

	rng := rand.New(rand.NewSource(11))
	const n = 6000
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		tr.Insert(keys[i], Value(i))
	}
	rt.Drain()
	ops := make([]*Op, n)
	for i, k := range keys {
		ops[i] = tr.Lookup(k)
	}
	rt.Drain()
	for i := range keys {
		if !ops[i].Found {
			t.Fatalf("random key %d (#%d) not found", keys[i], i)
		}
	}
}

func TestTaskTreeDoneFiresExactlyOnce(t *testing.T) {
	rt := newTreeRuntime(2)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)

	// Preload so lookups traverse several levels of optimistic reads.
	const n = 5000
	for i := Key(0); i < n; i++ {
		tr.Insert(i, Value(i))
	}
	rt.Drain()

	var completions atomic.Int64
	const lookups = 2000
	for i := 0; i < lookups; i++ {
		tr.LookupWith(Key(i)%n, func(_ *mxtask.Context, task *mxtask.Task) {
			op := task.Arg.(*Op)
			if !op.Found {
				t.Errorf("lookup of existing key %d not found", op.Key())
			}
			completions.Add(1)
		})
	}
	rt.Drain()
	if got := completions.Load(); got != lookups {
		t.Fatalf("Done fired %d times, want %d", got, lookups)
	}
}

func TestTaskTreeConcurrentMixedWorkload(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)

	const n = 2000
	for i := Key(0); i < n; i++ {
		tr.Insert(i, Value(i))
	}
	rt.Drain()

	// Interleave updates and lookups; every lookup must find its key.
	var bad atomic.Int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		k := Key(rng.Intn(n))
		if rng.Intn(2) == 0 {
			tr.Update(k, Value(k)+n*Value(rng.Intn(4)))
		} else {
			tr.LookupWith(k, func(_ *mxtask.Context, task *mxtask.Task) {
				op := task.Arg.(*Op)
				if !op.Found || op.Result%n != op.Key() {
					bad.Add(1)
				}
			})
		}
	}
	rt.Drain()
	if got := bad.Load(); got != 0 {
		t.Fatalf("%d lookups observed missing keys or foreign values", got)
	}
	if c := tr.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
}

func TestTaskTreeOverwriteSemantics(t *testing.T) {
	rt := newTreeRuntime(2)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncSerialized)

	first := tr.Insert(5, 50)
	rt.Drain()
	second := tr.Insert(5, 51)
	rt.Drain()
	if first.Found || !second.Found {
		t.Fatalf("insert Found flags: first=%v second=%v, want false,true", first.Found, second.Found)
	}
	look := tr.Lookup(5)
	rt.Drain()
	if look.Result != 51 {
		t.Fatalf("final value = %d, want 51", look.Result)
	}
}

func TestTaskTreeNewOpKinds(t *testing.T) {
	rt := newTreeRuntime(1)
	tr := NewTaskTree(rt, TaskSyncOptimistic)
	for _, kind := range []string{"lookup", "insert", "update", "delete"} {
		op := tr.NewOp(kind, 1, 2, nil)
		if op == nil {
			t.Fatalf("NewOp(%q) returned nil", kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewOp with bogus kind did not panic")
		}
	}()
	tr.NewOp("bogus", 0, 0, nil)
}

// validateTree checks structural invariants while the tree is quiescent.
func validateTree(t *testing.T, root *Node) {
	t.Helper()
	var walk func(n *Node, level int)
	walk = func(n *Node, level int) {
		if n.Level() != level {
			t.Fatalf("node at level %d reports level %d", level, n.Level())
		}
		for i := 1; i < n.Count(); i++ {
			if n.keys[i-1] >= n.keys[i] {
				t.Fatalf("unsorted keys at level %d: %d >= %d", level, n.keys[i-1], n.keys[i])
			}
		}
		if n.Right() != nil {
			for i := 0; i < n.Count(); i++ {
				if n.keys[i] >= n.HighKey() && i > 0 {
					t.Fatalf("key %d >= highKey %d", n.keys[i], n.HighKey())
				}
			}
		}
		if n.Type() != LeafNode {
			for i := 0; i < n.Count(); i++ {
				if n.children[i] == nil {
					t.Fatalf("nil child %d at level %d", i, level)
				}
				walk(n.children[i], level-1)
			}
		}
	}
	walk(root, root.Level())
}

func TestTaskTreeInvariants(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12000; i++ {
		tr.Insert(Key(rng.Intn(30000)), Value(i))
	}
	rt.Drain()
	validateTree(t, tr.Root())
}
