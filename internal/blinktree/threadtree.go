package blinktree

import (
	"runtime"
	"sync/atomic"

	"mxtasking/internal/latch"
)

// SyncMode selects the synchronization protocol of a ThreadTree, matching
// the baselines of Figure 12.
type SyncMode int

const (
	// SyncSpin serializes every node access with a spinlock (Fig. 12a).
	SyncSpin SyncMode = iota
	// SyncRW uses reader/writer latches: shared for traversal, exclusive
	// for modification (Fig. 12b).
	SyncRW
	// SyncOptimistic uses optimistic lock coupling: validated reads,
	// latched writes (Fig. 12c).
	SyncOptimistic
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncSpin:
		return "spinlock"
	case SyncRW:
		return "rwlock"
	case SyncOptimistic:
		return "optimistic"
	default:
		return "invalid"
	}
}

// nodeTypeFor maps a level to the node type (level 1 inner nodes are branch
// nodes, §5.1).
func nodeTypeFor(level uint8) NodeType {
	switch level {
	case 0:
		return LeafNode
	case 1:
		return BranchNode
	default:
		return InnerNode
	}
}

// ThreadTree is the thread-based Blink-tree baseline: operations are
// synchronous calls; each node access is protected according to the tree's
// SyncMode. It is safe for concurrent use by any number of goroutines.
type ThreadTree struct {
	mode   SyncMode
	root   atomic.Pointer[Node]
	rootMu latch.Spinlock
}

// NewThreadTree returns an empty tree.
func NewThreadTree(mode SyncMode) *ThreadTree {
	t := &ThreadTree{mode: mode}
	t.root.Store(newNode(LeafNode, 0))
	return t
}

// Mode returns the tree's synchronization mode.
func (t *ThreadTree) Mode() SyncMode { return t.mode }

// Height returns the tree height (1 for a lone leaf).
func (t *ThreadTree) Height() int { return t.root.Load().Level() + 1 }

// lockShared acquires node for reading per the mode. Optimistic mode does
// not use this path.
func (t *ThreadTree) lockShared(n *Node) {
	if t.mode == SyncSpin {
		n.Latch.Lock()
	} else {
		n.Latch.RLock()
	}
}

func (t *ThreadTree) unlockShared(n *Node) {
	if t.mode == SyncSpin {
		n.Latch.Unlock()
	} else {
		n.Latch.RUnlock()
	}
}

// lockExclusive acquires node for writing per the mode.
func (t *ThreadTree) lockExclusive(n *Node) {
	if t.mode == SyncOptimistic {
		n.Version.Lock()
	} else {
		n.Latch.Lock()
	}
}

func (t *ThreadTree) unlockExclusive(n *Node) {
	if t.mode == SyncOptimistic {
		n.Version.Unlock()
	} else {
		n.Latch.Unlock()
	}
}

// Lookup returns the value stored under key.
func (t *ThreadTree) Lookup(key Key) (Value, bool) {
	if t.mode == SyncOptimistic {
		return t.lookupOptimistic(key)
	}
	node := t.root.Load()
	for {
		t.lockShared(node)
		if !node.covers(key) {
			next := node.right
			t.unlockShared(node)
			node = next
			continue
		}
		if node.typ == LeafNode {
			v, ok := node.leafLookup(key)
			t.unlockShared(node)
			return v, ok
		}
		next := node.childFor(key)
		t.unlockShared(node)
		node = next
	}
}

// lookupOptimistic is the optimistic-lock-coupling read path: node contents
// are read without latches and validated against the version afterwards.
func (t *ThreadTree) lookupOptimistic(key Key) (Value, bool) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		node := t.root.Load()
		val, ok, done := t.tryReadDescend(node, key)
		if done {
			return val, ok
		}
	}
}

// tryReadDescend performs one validated descent; done is false when a
// validation failed and the whole descent must restart.
func (t *ThreadTree) tryReadDescend(node *Node, key Key) (val Value, ok, done bool) {
	for {
		v, live := node.Version.ReadBegin()
		if !live {
			return 0, false, false
		}
		if !node.covers(key) {
			next := node.right
			if !node.Version.ReadValidate(v) || next == nil {
				return 0, false, false
			}
			node = next
			continue
		}
		if node.typ == LeafNode {
			val, ok = node.leafLookup(key)
			if !node.Version.ReadValidate(v) {
				return 0, false, false
			}
			return val, ok, true
		}
		next := node.childFor(key)
		if !node.Version.ReadValidate(v) || next == nil {
			return 0, false, false
		}
		node = next
	}
}

// descendToLeaf finds the leaf that covered key at observation time, using
// the mode's read protocol. The caller re-checks coverage under its write
// lock (splits may intervene).
func (t *ThreadTree) descendToLeaf(key Key) *Node {
	if t.mode == SyncOptimistic {
		for attempt := 0; ; attempt++ {
			if attempt > 0 && attempt%16 == 0 {
				runtime.Gosched()
			}
			if leaf := t.tryDescendToLevel(key, 0); leaf != nil {
				return leaf
			}
		}
	}
	node := t.root.Load()
	for {
		t.lockShared(node)
		if !node.covers(key) {
			next := node.right
			t.unlockShared(node)
			node = next
			continue
		}
		if node.typ == LeafNode {
			t.unlockShared(node)
			return node
		}
		next := node.childFor(key)
		t.unlockShared(node)
		node = next
	}
}

// tryDescendToLevel optimistically descends to the node at the given level
// covering key; nil means a validation failed.
func (t *ThreadTree) tryDescendToLevel(key Key, level uint8) *Node {
	node := t.root.Load()
	for {
		v, live := node.Version.ReadBegin()
		if !live {
			return nil
		}
		if !node.covers(key) {
			next := node.right
			if !node.Version.ReadValidate(v) || next == nil {
				return nil
			}
			node = next
			continue
		}
		if node.level == level {
			if !node.Version.ReadValidate(v) {
				return nil
			}
			return node
		}
		next := node.childFor(key)
		if !node.Version.ReadValidate(v) || next == nil {
			return nil
		}
		node = next
	}
}

// lockCovering write-locks node, moving right until the node covers key
// (lock coupling along the sibling chain only, never downward — the
// Blink-tree's deadlock-freedom argument).
func (t *ThreadTree) lockCovering(node *Node, key Key) *Node {
	t.lockExclusive(node)
	for !node.covers(key) {
		next := node.right
		t.unlockExclusive(node)
		node = next
		t.lockExclusive(node)
	}
	return node
}

// Insert stores value under key, overwriting any existing record. It
// reports whether the key was newly inserted (false = overwrite).
func (t *ThreadTree) Insert(key Key, value Value) bool {
	leaf := t.descendToLeaf(key)
	leaf = t.lockCovering(leaf, key)
	full, existed, _ := leaf.leafInsert(key, value)
	if !full {
		t.unlockExclusive(leaf)
		return !existed
	}
	// Split: build and lock the new sibling before publishing it, insert
	// into the proper half, then link the new node into the parent level.
	right, sep, leftCount := leaf.splitPrepare()
	t.lockExclusive(right)
	leaf.splitCommit(right, sep, leftCount)
	target := leaf
	if key >= sep {
		target = right
	}
	if f, _, _ := target.leafInsert(key, value); f {
		panic("blinktree: post-split leaf still full")
	}
	t.unlockExclusive(right)
	t.unlockExclusive(leaf)
	t.insertSeparator(1, sep, right)
	return true
}

// Update overwrites the value of an existing key, reporting whether the key
// was found.
func (t *ThreadTree) Update(key Key, value Value) bool {
	leaf := t.descendToLeaf(key)
	leaf = t.lockCovering(leaf, key)
	i := leaf.lowerBound(key)
	found := i < leaf.Count() && leaf.keys[i] == key
	if found {
		leaf.values[i] = value
	}
	t.unlockExclusive(leaf)
	return found
}

// Delete removes key, reporting whether it was present. Nodes are never
// merged (matching the paper's evaluation, which has no deletes in the
// measured workloads).
func (t *ThreadTree) Delete(key Key) bool {
	leaf := t.descendToLeaf(key)
	leaf = t.lockCovering(leaf, key)
	ok, _ := leaf.leafDelete(key)
	t.unlockExclusive(leaf)
	return ok
}

// insertSeparator installs (sep, child) at the given level, splitting
// upwards as needed. child.level == level-1.
func (t *ThreadTree) insertSeparator(level uint8, sep Key, child *Node) {
	for {
		root := t.root.Load()
		if root.level < level {
			if t.growRoot(level, sep, child) {
				return
			}
			continue // lost the race; the root is taller now
		}
		var node *Node
		if t.mode == SyncOptimistic {
			node = t.tryDescendToLevel(sep, level)
			if node == nil {
				runtime.Gosched()
				continue
			}
		} else {
			node = t.descendToLevel(sep, level)
		}
		node = t.lockCovering(node, sep)
		if full := node.innerInsert(sep, child); !full {
			t.unlockExclusive(node)
			return
		}
		right, upSep, leftCount := node.splitPrepare()
		t.lockExclusive(right)
		node.splitCommit(right, upSep, leftCount)
		target := node
		if sep >= upSep {
			target = right
		}
		if full := target.innerInsert(sep, child); full {
			panic("blinktree: post-split inner node still full")
		}
		t.unlockExclusive(right)
		t.unlockExclusive(node)
		level++
		sep, child = upSep, right
	}
}

// descendToLevel is the latched variant of tryDescendToLevel.
func (t *ThreadTree) descendToLevel(key Key, level uint8) *Node {
	node := t.root.Load()
	for {
		t.lockShared(node)
		if !node.covers(key) {
			next := node.right
			t.unlockShared(node)
			node = next
			continue
		}
		if node.level == level {
			t.unlockShared(node)
			return node
		}
		next := node.childFor(key)
		t.unlockShared(node)
		node = next
	}
}

// growRoot installs a new root one level above the current one, with the
// old root as leftmost child. Returns false if another goroutine grew the
// tree first.
func (t *ThreadTree) growRoot(level uint8, sep Key, child *Node) bool {
	t.rootMu.Lock()
	defer t.rootMu.Unlock()
	cur := t.root.Load()
	if cur.level >= level {
		return false
	}
	newRoot := newNode(nodeTypeFor(level), level)
	newRoot.keys[0] = 0 // sentinel: leftmost child covers everything below sep
	newRoot.children[0] = cur
	newRoot.keys[1] = sep
	newRoot.children[1] = child
	newRoot.count = 2
	t.root.Store(newRoot)
	return true
}

// Scan visits records in [from, to) in key order, calling fn for each; fn
// returning false stops the scan. Scan uses the mode's read protocol per
// leaf.
func (t *ThreadTree) Scan(from, to Key, fn func(Key, Value) bool) {
	leaf := t.descendToLeaf(from)
	for leaf != nil {
		type rec struct {
			k Key
			v Value
		}
		var buf [Capacity]rec
		nrec := 0
		read := func() {
			nrec = 0
			for i := 0; i < leaf.Count(); i++ {
				if leaf.keys[i] >= from && leaf.keys[i] < to {
					buf[nrec] = rec{leaf.keys[i], leaf.values[i]}
					nrec++
				}
			}
		}
		var next *Node
		var high Key
		if t.mode == SyncOptimistic {
			for {
				v, live := leaf.Version.ReadBegin()
				if !live {
					runtime.Gosched()
					continue
				}
				read()
				next, high = leaf.right, leaf.highKey
				if leaf.Version.ReadValidate(v) {
					break
				}
			}
		} else {
			t.lockShared(leaf)
			read()
			next, high = leaf.right, leaf.highKey
			t.unlockShared(leaf)
		}
		for i := 0; i < nrec; i++ {
			if !fn(buf[i].k, buf[i].v) {
				return
			}
		}
		if next == nil || high >= to {
			return
		}
		leaf = next
	}
}

// Count returns the total number of records (O(n), test helper).
func (t *ThreadTree) Count() int {
	// Walk down the leftmost spine, then across the leaf chain.
	node := t.root.Load()
	for node.typ != LeafNode {
		node = node.children[0]
	}
	n := 0
	for node != nil {
		n += node.Count()
		node = node.right
	}
	return n
}
