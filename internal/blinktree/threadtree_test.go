package blinktree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var threadModes = []SyncMode{SyncSpin, SyncRW, SyncOptimistic}

func TestThreadTreeBasic(t *testing.T) {
	for _, mode := range threadModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := NewThreadTree(mode)
			if _, ok := tr.Lookup(42); ok {
				t.Fatal("lookup in empty tree succeeded")
			}
			if !tr.Insert(42, 420) {
				t.Fatal("fresh insert reported overwrite")
			}
			if v, ok := tr.Lookup(42); !ok || v != 420 {
				t.Fatalf("Lookup(42) = %d,%v, want 420,true", v, ok)
			}
			if tr.Insert(42, 421) {
				t.Fatal("overwrite reported fresh insert")
			}
			if v, _ := tr.Lookup(42); v != 421 {
				t.Fatalf("overwrite not visible, got %d", v)
			}
			if !tr.Update(42, 422) {
				t.Fatal("update of existing key failed")
			}
			if tr.Update(7, 1) {
				t.Fatal("update of missing key succeeded")
			}
			if !tr.Delete(42) {
				t.Fatal("delete of existing key failed")
			}
			if _, ok := tr.Lookup(42); ok {
				t.Fatal("deleted key still found")
			}
			if tr.Delete(42) {
				t.Fatal("double delete succeeded")
			}
		})
	}
}

func TestThreadTreeSplitsAndHeight(t *testing.T) {
	for _, mode := range threadModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := NewThreadTree(mode)
			const n = 10000
			for i := Key(0); i < n; i++ {
				tr.Insert(i, Value(i*2))
			}
			if h := tr.Height(); h < 3 {
				t.Fatalf("height = %d after %d inserts, want >= 3", h, n)
			}
			if c := tr.Count(); c != n {
				t.Fatalf("Count = %d, want %d", c, n)
			}
			for i := Key(0); i < n; i++ {
				v, ok := tr.Lookup(i)
				if !ok || v != Value(i*2) {
					t.Fatalf("Lookup(%d) = %d,%v, want %d,true", i, v, ok, i*2)
				}
			}
		})
	}
}

func TestThreadTreeReverseAndRandomOrder(t *testing.T) {
	tr := NewThreadTree(SyncOptimistic)
	const n = 5000
	for i := n - 1; i >= 0; i-- {
		tr.Insert(Key(i), Value(i))
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, i := range perm {
		if v, ok := tr.Lookup(Key(i)); !ok || v != Value(i) {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestThreadTreeScan(t *testing.T) {
	for _, mode := range threadModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := NewThreadTree(mode)
			for i := Key(0); i < 1000; i++ {
				tr.Insert(i*2, Value(i)) // even keys only
			}
			var got []Key
			tr.Scan(100, 200, func(k Key, v Value) bool {
				got = append(got, k)
				return true
			})
			if len(got) != 50 {
				t.Fatalf("scan returned %d keys, want 50", len(got))
			}
			for i, k := range got {
				if k != Key(100+2*i) {
					t.Fatalf("scan[%d] = %d, want %d", i, k, 100+2*i)
				}
			}
			// Early termination.
			count := 0
			tr.Scan(0, 2000, func(Key, Value) bool {
				count++
				return count < 10
			})
			if count != 10 {
				t.Fatalf("early-terminated scan visited %d, want 10", count)
			}
		})
	}
}

// TestThreadTreeMapEquivalence drives the tree and a map with the same
// random operation sequence and checks they agree.
func TestThreadTreeMapEquivalence(t *testing.T) {
	f := func(ops []uint32, seed int64) bool {
		tr := NewThreadTree(SyncOptimistic)
		ref := make(map[Key]Value)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := Key(op % 512) // small key space to force collisions
			switch rng.Intn(4) {
			case 0, 1:
				val := Value(rng.Uint64())
				tr.Insert(key, val)
				ref[key] = val
			case 2:
				got, ok := tr.Lookup(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 3:
				ok := tr.Delete(key)
				_, wok := ref[key]
				if ok != wok {
					return false
				}
				delete(ref, key)
			}
		}
		for k, want := range ref {
			got, ok := tr.Lookup(k)
			if !ok || got != want {
				return false
			}
		}
		return tr.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadTreeConcurrentInserts(t *testing.T) {
	for _, mode := range threadModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := NewThreadTree(mode)
			const goroutines = 4
			const perG = 3000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := Key(g * perG)
					for i := Key(0); i < perG; i++ {
						tr.Insert(base+i, Value(base+i))
					}
				}(g)
			}
			wg.Wait()
			if c := tr.Count(); c != goroutines*perG {
				t.Fatalf("Count = %d, want %d", c, goroutines*perG)
			}
			for i := Key(0); i < goroutines*perG; i++ {
				if v, ok := tr.Lookup(i); !ok || v != Value(i) {
					t.Fatalf("Lookup(%d) = %d,%v after concurrent inserts", i, v, ok)
				}
			}
		})
	}
}

func TestThreadTreeConcurrentMixed(t *testing.T) {
	tr := NewThreadTree(SyncOptimistic)
	const n = 4000
	for i := Key(0); i < n; i++ {
		tr.Insert(i, Value(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers update in place; readers must always find every key with a
	// value that some writer wrote.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := Key(rng.Intn(n))
				tr.Update(k, Value(k)+Value(rng.Intn(5))*n)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := Key(rng.Intn(n))
				v, ok := tr.Lookup(k)
				if !ok {
					t.Errorf("key %d vanished", k)
					return
				}
				if v%n != k {
					t.Errorf("Lookup(%d) = %d: not a value any writer wrote", k, v)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
}

func TestNodeTypeForLevels(t *testing.T) {
	if nodeTypeFor(0) != LeafNode || nodeTypeFor(1) != BranchNode || nodeTypeFor(2) != InnerNode || nodeTypeFor(5) != InnerNode {
		t.Fatal("nodeTypeFor mapping broken")
	}
	if LeafNode.String() != "leaf" || BranchNode.String() != "branch" || InnerNode.String() != "inner" {
		t.Fatal("NodeType.String broken")
	}
}

func TestNodeSplitKeepsOrder(t *testing.T) {
	n := newNode(LeafNode, 0)
	for i := 0; i < Capacity; i++ {
		n.leafInsert(Key(i*10), Value(i))
	}
	right, sep, leftCount := n.splitPrepare()
	n.splitCommit(right, sep, leftCount)
	if n.Count()+right.Count() != Capacity {
		t.Fatalf("split lost entries: %d + %d != %d", n.Count(), right.Count(), Capacity)
	}
	if n.HighKey() != sep || n.Right() != right {
		t.Fatal("split did not link sibling correctly")
	}
	for i := 1; i < n.Count(); i++ {
		if n.keys[i-1] >= n.keys[i] {
			t.Fatal("left half unsorted")
		}
	}
	for i := 1; i < right.Count(); i++ {
		if right.keys[i-1] >= right.keys[i] {
			t.Fatal("right half unsorted")
		}
	}
	if right.keys[0] != sep {
		t.Fatalf("separator %d != first right key %d", sep, right.keys[0])
	}
}
