package blinktree

import (
	"sync/atomic"

	"mxtasking/internal/mxtask"
)

// Touch chains are the learned prefetcher's cache-warming primitive: a
// best-effort descent to a key's leaf (and optionally onward along the
// sibling chain) whose only side effect is reading the visited nodes —
// Node.Prefetch pulls one word per cache line toward the CPU. Each step is
// a normal annotated task, so the worker's batch window prefetches the
// next node's resource ahead of the step exactly as it does for real
// operations (§3): the touch chain rides the same prefetchFor path.
//
// Touch chains race the demand operations they warm the cache for and may
// outlive their issuer (a connection can close with predictions still in
// flight), so every step checks the issuer's stop flag and the chain
// terminates quietly on any irregularity (nil child, torn sibling
// pointer) instead of retrying: warming the wrong leaf costs nothing,
// chasing a perfect answer would.

// touchOp carries one touch chain. Each chain step that advances along
// the leaf chain allocates a fresh op with a decremented count: the body
// may re-run under optimistic validation, and a shared mutable countdown
// would double-decrement.
type touchOp struct {
	tree   *TaskTree
	key    Key
	leaves int          // leaves still to read along the sibling chain
	stop   *atomic.Bool // issuer's cancellation flag (nil = never cancelled)
}

func (op *touchOp) cancelled() bool { return op.stop != nil && op.stop.Load() }

// Touch spawns a best-effort descent to key's leaf and reads it. stop
// (optional) cancels the chain at its next step — the issuer sets it when
// the access stream the prediction came from dies.
func (t *TaskTree) Touch(key Key, stop *atomic.Bool) {
	t.TouchAhead(key, 1, stop)
}

// TouchAhead descends to from's leaf and reads up to leaves consecutive
// leaves along the sibling chain — next-leaf warming for a scan that is
// predicted to continue past from.
func (t *TaskTree) TouchAhead(from Key, leaves int, stop *atomic.Bool) {
	if leaves < 1 {
		leaves = 1
	}
	if stop != nil && stop.Load() {
		return
	}
	root := t.loadRoot()
	if root == nil {
		return
	}
	op := &touchOp{tree: t, key: from, leaves: leaves, stop: stop}
	t.spawnOnNode(nil, op, root, touchStep, t.scanStepMode())
}

// touchStep is one descent step of a touch chain.
func touchStep(ctx *mxtask.Context, task *mxtask.Task) {
	op := task.Arg.(*touchOp)
	node, _ := task.Arg2.(*Node)
	t := op.tree
	if node == nil || op.cancelled() {
		return
	}
	if !node.covers(op.key) && node.Type() != LeafNode {
		// The key moved right past this node; follow the sibling, or give
		// up on a torn read — this is only a warming hint.
		if next := node.right; next != nil {
			t.spawnOnNode(ctx, op, next, touchStep, t.scanStepMode())
		}
		return
	}
	if node.Type() != LeafNode {
		if next := node.childFor(op.key); next != nil {
			t.spawnOnNode(ctx, op, next, touchStep, t.scanStepMode())
		}
		return
	}
	touchLeaf(ctx, op, node)
}

// touchLeafStep continues a touch chain along the leaf level.
func touchLeafStep(ctx *mxtask.Context, task *mxtask.Task) {
	op := task.Arg.(*touchOp)
	node, _ := task.Arg2.(*Node)
	if node == nil || op.cancelled() {
		return
	}
	touchLeaf(ctx, op, node)
}

// touchLeaf reads the leaf and, when the chain has leaves left, spawns the
// next sibling step with a fresh op (see touchOp).
func touchLeaf(ctx *mxtask.Context, op *touchOp, leaf *Node) {
	leaf.Prefetch()
	if op.leaves <= 1 {
		return
	}
	next := leaf.right
	if next == nil {
		return
	}
	cont := &touchOp{tree: op.tree, key: op.key, leaves: op.leaves - 1, stop: op.stop}
	op.tree.spawnOnNode(ctx, cont, next, touchLeafStep, op.tree.scanStepMode())
}
