package blinktree

import (
	"sync/atomic"
	"testing"
)

// TestTouchChains exercises the warming descent across sync modes: chains
// must drain cleanly whether they hit a leaf, run off the right edge of
// the tree, or target a key past every leaf.
func TestTouchChains(t *testing.T) {
	for _, mode := range taskModes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newTreeRuntime(2)
			rt.Start()
			defer rt.Stop()
			tr := NewTaskTree(rt, mode)

			const n = 4000
			for i := Key(0); i < n; i++ {
				tr.Insert(i, Value(i))
			}
			rt.Drain()

			tr.Touch(123, nil)
			tr.TouchAhead(1000, 8, nil)
			// Chain longer than the remaining leaf level: must stop at the
			// right edge, not spin.
			tr.TouchAhead(n-5, 1000, nil)
			// Key past every leaf lands on the rightmost leaf.
			tr.Touch(n+500, nil)
			rt.Drain()

			// The tree must be untouched: warming has no side effects.
			if c := tr.Count(); c != n {
				t.Fatalf("touch chains changed Count: %d, want %d", c, n)
			}
		})
	}
}

// TestTouchCancelled asserts a set stop flag kills the chain before it
// spawns, and that flipping it mid-flight still drains the runtime.
func TestTouchCancelled(t *testing.T) {
	rt := newTreeRuntime(2)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)
	for i := Key(0); i < 4000; i++ {
		tr.Insert(i, Value(i))
	}
	rt.Drain()

	var stop atomic.Bool
	stop.Store(true)
	tr.TouchAhead(0, 64, &stop)
	rt.Drain() // pre-cancelled: nothing to do, must not hang

	// Cancel mid-flight: issue long chains, flip stop while they run.
	stop.Store(false)
	for i := 0; i < 32; i++ {
		tr.TouchAhead(Key(i*100), 32, &stop)
	}
	stop.Store(true)
	rt.Drain() // remaining steps observe stop and fall through
}

// TestTouchRacesWithMutation runs touch chains against concurrent splits;
// under -race this is the memory-safety check for the best-effort reads.
func TestTouchRacesWithMutation(t *testing.T) {
	rt := newTreeRuntime(4)
	rt.Start()
	defer rt.Stop()
	tr := NewTaskTree(rt, TaskSyncOptimistic)
	for i := Key(0); i < 512; i++ {
		tr.Insert(i*8, Value(i))
	}
	rt.Drain()

	var stop atomic.Bool
	for i := Key(0); i < 2048; i++ {
		tr.Insert(i*2+1, Value(i))
		if i%4 == 0 {
			tr.TouchAhead(i, 4, &stop)
		}
	}
	rt.Drain()
}
