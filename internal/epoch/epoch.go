// Package epoch implements Epoch Based Memory Reclamation (EBMR) adapted to
// a task-based environment, as described in §4.4 of the MxTasks paper.
//
// Time is divided into coarse epochs by a global counter. Workers publish a
// local epoch while they may hold optimistic references; logically removed
// objects are tagged with the global epoch at removal time and physically
// reclaimed only once every worker has advanced past that epoch.
//
// Because MxTasks split logical operations across many short tasks, the
// paper proposes two advancement policies:
//
//   - EveryTask: synchronize the local epoch before each task execution and
//     reset it to "not in a critical section" afterwards. Safe but causes a
//     fenced store/load pair per task.
//   - Batched: refresh the local epoch only every N tasks (and when idle),
//     trading a bounded reclamation delay for almost-zero overhead. The
//     paper uses N = 50; that is the default here.
package epoch

import (
	"math"
	"sync/atomic"
)

// Policy selects how workers advance their local epochs.
type Policy int

const (
	// Off disables reclamation entirely (the "No Reclamation" baseline in
	// Figure 11). Retired objects are dropped on the floor and left to
	// Go's garbage collector; the limbo bookkeeping is skipped.
	Off Policy = iota
	// EveryTask wraps every task execution in a local-epoch update.
	EveryTask
	// Batched refreshes the local epoch every BatchSize task executions.
	Batched
)

// String returns the policy name as used in Figure 11's legend.
func (p Policy) String() string {
	switch p {
	case Off:
		return "No Reclamation"
	case EveryTask:
		return "Every Task"
	case Batched:
		return "Batching Tasks"
	default:
		return "unknown"
	}
}

// DefaultBatchSize is the paper's chosen advancement batch ("e.g., 50").
const DefaultBatchSize = 50

// notInCritical marks a worker that holds no optimistic references;
// conceptually "infinity" (§4.4: the local value is reset to infinity when
// leaving the critical path).
const notInCritical = math.MaxUint64

// retired couples an object's reclamation callback with the epoch at which
// it was logically removed.
type retired struct {
	free  func()
	epoch uint64
}

// Manager coordinates the global epoch and per-worker state.
//
// The global epoch is advanced explicitly via Advance (the runtime does so
// periodically, playing the role of the paper's 50 ms ticker; tests and the
// simulator advance it deterministically).
type Manager struct {
	policy    Policy
	batchSize int
	global    atomic.Uint64
	workers   []*Worker
}

// NewManager returns a manager for n workers using the given policy.
// batchSize is only meaningful for the Batched policy; pass 0 for the
// default.
func NewManager(n int, policy Policy, batchSize int) *Manager {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	m := &Manager{policy: policy, batchSize: batchSize}
	m.global.Store(1)
	m.workers = make([]*Worker, n)
	for i := range m.workers {
		w := &Worker{mgr: m}
		w.local.Store(notInCritical)
		m.workers[i] = w
	}
	return m
}

// Policy returns the manager's reclamation policy.
func (m *Manager) Policy() Policy { return m.policy }

// Worker returns the per-worker handle for worker i.
func (m *Manager) Worker(i int) *Worker { return m.workers[i] }

// Global returns the current global epoch.
func (m *Manager) Global() uint64 { return m.global.Load() }

// Advance increments the global epoch and returns the new value. The caller
// (the runtime's epoch ticker) should afterwards trigger Collect on each
// worker, typically by spawning reclamation tasks (§4.4).
func (m *Manager) Advance() uint64 {
	if m.policy == Off {
		return m.global.Load()
	}
	return m.global.Add(1)
}

// minLocal computes the lowest local epoch across workers: the horizon below
// which retired objects are unreachable.
func (m *Manager) minLocal() uint64 {
	minEpoch := m.global.Load()
	for _, w := range m.workers {
		if l := w.local.Load(); l < minEpoch {
			minEpoch = l
		}
	}
	return minEpoch
}

// Worker is the per-worker EBMR state. All methods except the documented
// exceptions must be called only from the owning worker.
type Worker struct {
	mgr   *Manager
	local atomic.Uint64 // current local epoch; notInCritical when outside
	limbo []retired     // logically removed, not yet reclaimable
	count int           // tasks executed since the last refresh (Batched)

	// Reclaimed counts objects physically freed; exported for tests and
	// metrics.
	Reclaimed atomic.Uint64
}

// Enter marks the beginning of a (task) critical section according to the
// policy. It must be called before executing a task that may read
// optimistically synchronized objects.
func (w *Worker) Enter() {
	switch w.mgr.policy {
	case Off:
		return
	case EveryTask:
		w.local.Store(w.mgr.global.Load())
	case Batched:
		if w.count == 0 {
			w.local.Store(w.mgr.global.Load())
		}
		w.count++
		if w.count >= w.mgr.batchSize {
			w.count = 0
		}
	}
}

// Leave marks the end of a critical section. Under EveryTask the local
// epoch resets to infinity; under Batched it stays published until the batch
// completes (Idle resets it when the worker runs out of work, guaranteeing
// progress as §4.4 requires).
func (w *Worker) Leave() {
	if w.mgr.policy == EveryTask {
		w.local.Store(notInCritical)
	}
}

// Idle tells the manager the worker has no runnable tasks; the local epoch
// resets so it never blocks reclamation while the worker waits.
func (w *Worker) Idle() {
	if w.mgr.policy == Off {
		return
	}
	w.count = 0
	w.local.Store(notInCritical)
}

// Retire registers free to run once no worker can still hold a reference to
// the removed object. With policy Off the callback is discarded: the object
// stays reachable by Go's GC until truly unreferenced, which is the
// "No Reclamation" baseline's semantics.
func (w *Worker) Retire(free func()) {
	if w.mgr.policy == Off {
		return
	}
	w.limbo = append(w.limbo, retired{free: free, epoch: w.mgr.global.Load()})
}

// Collect reclaims every limbo object retired strictly before the minimal
// local epoch. It returns the number of objects freed. The runtime calls it
// from reclamation tasks it spawns at epoch boundaries.
func (w *Worker) Collect() int {
	if w.mgr.policy == Off || len(w.limbo) == 0 {
		return 0
	}
	horizon := w.mgr.minLocal()
	kept := w.limbo[:0]
	freed := 0
	for _, r := range w.limbo {
		if r.epoch < horizon {
			r.free()
			freed++
		} else {
			kept = append(kept, r)
		}
	}
	// Zero the tail so freed callbacks are collectable.
	for i := len(kept); i < len(w.limbo); i++ {
		w.limbo[i] = retired{}
	}
	w.limbo = kept
	w.Reclaimed.Add(uint64(freed))
	return freed
}

// Pending returns the number of retired-but-unreclaimed objects.
func (w *Worker) Pending() int { return len(w.limbo) }

// LocalEpoch returns the published local epoch (notInCritical reads as the
// maximum uint64). Exposed for tests.
func (w *Worker) LocalEpoch() uint64 { return w.local.Load() }
