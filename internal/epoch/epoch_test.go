package epoch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Off: "No Reclamation", EveryTask: "Every Task", Batched: "Batching Tasks",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestOffDiscardsRetirees(t *testing.T) {
	m := NewManager(1, Off, 0)
	w := m.Worker(0)
	freed := false
	w.Retire(func() { freed = true })
	m.Advance()
	if n := w.Collect(); n != 0 {
		t.Fatalf("Collect under Off freed %d, want 0", n)
	}
	if freed {
		t.Fatal("Off policy ran a reclamation callback")
	}
	if w.Pending() != 0 {
		t.Fatal("Off policy buffered a retiree")
	}
}

func TestReclaimAfterAllWorkersAdvance(t *testing.T) {
	m := NewManager(2, EveryTask, 0)
	w0, w1 := m.Worker(0), m.Worker(1)

	w0.Enter() // w0 in epoch 1
	freed := 0
	w0.Retire(func() { freed++ }) // retired at epoch 1
	w0.Leave()

	// w1 lingers in epoch 1 — a potential optimistic reader.
	w1.Enter()

	m.Advance() // global -> 2
	if n := w0.Collect(); n != 0 {
		t.Fatalf("Collect freed %d while w1 was still in the retire epoch", n)
	}

	w1.Leave() // w1 exits its critical section
	m.Advance()
	if n := w0.Collect(); n != 1 {
		t.Fatalf("Collect freed %d after all workers advanced, want 1", n)
	}
	if freed != 1 {
		t.Fatalf("callback ran %d times, want 1", freed)
	}
	if got := w0.Reclaimed.Load(); got != 1 {
		t.Fatalf("Reclaimed = %d, want 1", got)
	}
}

func TestNeverReclaimWhileReferenced(t *testing.T) {
	// The core safety property: an object retired in epoch E is not freed
	// while any worker's local epoch is <= E.
	m := NewManager(3, EveryTask, 0)
	w := m.Worker(0)
	reader := m.Worker(2)

	reader.Enter() // pins epoch 1
	w.Enter()
	w.Retire(func() {})
	w.Leave()
	for i := 0; i < 10; i++ {
		m.Advance()
		if w.Collect() != 0 {
			t.Fatal("reclaimed while a reader pinned the retire epoch")
		}
	}
	reader.Leave()
	m.Advance()
	if w.Collect() != 1 {
		t.Fatal("failed to reclaim once the reader left")
	}
}

func TestBatchedAdvancesEveryN(t *testing.T) {
	const batch = 5
	m := NewManager(1, Batched, batch)
	w := m.Worker(0)

	w.Enter() // publishes epoch 1
	if got := w.LocalEpoch(); got != 1 {
		t.Fatalf("local epoch = %d, want 1", got)
	}
	m.Advance() // global -> 2
	// Executions 2..batch must NOT refresh the local epoch.
	for i := 1; i < batch; i++ {
		w.Leave()
		w.Enter()
		if got := w.LocalEpoch(); got != 1 {
			t.Fatalf("execution %d refreshed local epoch to %d mid-batch", i+1, got)
		}
	}
	// Execution batch+1 starts a new batch and refreshes.
	w.Leave()
	w.Enter()
	if got := w.LocalEpoch(); got != 2 {
		t.Fatalf("local epoch after batch = %d, want 2", got)
	}
}

func TestIdleUnpinsEpoch(t *testing.T) {
	m := NewManager(1, Batched, 10)
	w := m.Worker(0)
	w.Enter()
	if w.LocalEpoch() == math.MaxUint64 {
		t.Fatal("Enter did not publish an epoch")
	}
	w.Idle()
	if w.LocalEpoch() != math.MaxUint64 {
		t.Fatal("Idle did not reset the local epoch to infinity")
	}
	// After idling, a retiree from before must become reclaimable.
	w.Enter()
	w.Retire(func() {})
	w.Idle()
	m.Advance()
	if w.Collect() != 1 {
		t.Fatal("retiree not reclaimed after Idle + Advance")
	}
}

func TestEveryTaskLeaveUnpins(t *testing.T) {
	m := NewManager(1, EveryTask, 0)
	w := m.Worker(0)
	w.Enter()
	w.Leave()
	if w.LocalEpoch() != math.MaxUint64 {
		t.Fatal("Leave under EveryTask did not reset the local epoch")
	}
}

func TestQuickSafety(t *testing.T) {
	// Property: for any interleaving of retire/advance/collect with one
	// pinned reader, nothing retired at or after the reader's pin epoch is
	// freed until the reader leaves.
	f := func(ops []uint8) bool {
		m := NewManager(2, Batched, 3)
		w := m.Worker(0)
		reader := m.Worker(1)
		reader.Enter()
		pin := reader.LocalEpoch()
		live := 0 // retirees at epoch >= pin that must not be freed
		violated := false
		for _, op := range ops {
			switch op % 4 {
			case 0:
				w.Enter()
				epochNow := m.Global()
				if epochNow >= pin {
					live++
					w.Retire(func() { violated = true })
				} else {
					w.Retire(func() {})
				}
				w.Leave()
			case 1:
				m.Advance()
			case 2:
				w.Collect()
			case 3:
				w.Idle()
			}
			if violated {
				return false
			}
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnterLeaveEveryTask(b *testing.B) {
	m := NewManager(1, EveryTask, 0)
	w := m.Worker(0)
	for i := 0; i < b.N; i++ {
		w.Enter()
		w.Leave()
	}
}

func BenchmarkEnterLeaveBatched(b *testing.B) {
	m := NewManager(1, Batched, DefaultBatchSize)
	w := m.Worker(0)
	for i := 0; i < b.N; i++ {
		w.Enter()
		w.Leave()
	}
}
