package experiments

import (
	"fmt"

	"mxtasking/internal/sim"
)

// Ablations returns the design-decision studies of DESIGN.md §4 that are
// not already figures of the paper, plus the beyond-paper extension
// experiments.
func Ablations() []Report {
	return []Report{AblationAllocatorLevels(), AblationEpochBatch(), AblationSMT(), AblationLearnedPrefetch(), AblationInterleave(), AblationPaged(), ExtensionWorkloadB()}
}

// AblationPaged sweeps the paged value tier's buffer pool size (DESIGN.md
// §10) against the hit rate it sustains over a 512-page spilled working
// set, at three Zipf skews. Each skew is plotted twice: the measured hit
// rate of the pager's second-chance clock over a deterministic trace, and
// Che's approximation for an ideal LRU — the pairs track each other
// closely, validating the analytic model against the implemented policy.
// The figure's point is the skewed curves' shape: under Zipf 0.99 a pool
// holding 10% of the pages already serves ~half the loads and 35% serves
// over three quarters, which is why the larger-than-RAM kvstore's YCSB
// A/B stays close to fully resident; the uniform curve is the no-locality
// floor where the hit rate is just the resident fraction.
func AblationPaged() Report {
	r := Report{
		ID:     "ablation-paged",
		Title:  "Paged value tier: pool size vs. hit rate (512-page working set)",
		XLabel: "pool size (fraction of working set resident)",
		YLabel: "hit rate",
		Paper:  "beyond the paper: the buffer pool is an exclusive-resource mxtask object (pool ops serialize on its task chain, no latches); skew keeps larger-than-RAM working sets effectively resident",
	}
	const pages = 512
	fractions := []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}
	for _, th := range []struct {
		theta float64
		name  string
	}{{0.99, "zipf 0.99"}, {0.8, "zipf 0.8"}, {0, "uniform"}} {
		clock := Series{Name: th.name + " (clock)"}
		che := Series{Name: th.name + " (che/LRU)"}
		for _, f := range fractions {
			frames := int(f * pages)
			clock.X = append(clock.X, f)
			clock.Y = append(clock.Y, sim.SimulatePagedClock(sim.DefaultPagedSim(frames, th.theta)).HitRate)
			che.X = append(che.X, f)
			che.Y = append(che.Y, sim.PagedCheHitRate(pages, frames, th.theta))
		}
		r.Series = append(r.Series, clock, che)
	}
	return r
}

// AblationInterleave sweeps the group width of the interleaved batched
// descents (DESIGN.md §9): W traversal cursors share one task and advance
// round-robin, so the miss of traversal i is serviced while traversals
// j≠i execute — the CoroBase mechanism on MxTask chains. Speedup rises
// until the other cursors' compute fully covers a node miss, plateaus,
// then collapses once a fetched node's wait for its cursor's turn exceeds
// the eviction horizon (the same too-early failure mode as over-deep
// static prefetch distances; §3). The tree's DefaultInterleave sits in
// the middle of the plateau.
func AblationInterleave() Report {
	r := Report{
		ID:     "ablation-interleave",
		Title:  "Interleaved group descents: width sweep (64-lookup batch, event model)",
		XLabel: "group width (cursors per descent task)",
		YLabel: "speedup over sequential (x) / miss coverage",
		Paper:  "beyond the paper: batched traversals interleaved CoroBase-style over the task chains; stalls vanish for width in the miss/exec..eviction window and return past it",
	}
	speed := Series{Name: "batch speedup (x)"}
	cov := Series{Name: "miss-latency coverage"}
	for _, w := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		res := sim.SimulateInterleave(sim.DefaultInterleaveSim(w))
		speed.X = append(speed.X, float64(w))
		speed.Y = append(speed.Y, sim.InterleaveSpeedup(w))
		cov.X = append(cov.X, float64(w))
		cov.Y = append(cov.Y, res.Coverage)
	}
	r.Series = []Series{speed, cov}
	return r
}

// AblationLearnedPrefetch compares the learned per-stream prefetcher
// (DESIGN.md §8) against the paper's annotation-driven static distance as
// stream predictability varies. Annotations know every task's data address
// up front, so their coverage is flat; the learner has to induce the
// stride online, so its coverage rises with the fraction of accesses that
// follow one — reaching the annotated level on fully sequential streams
// and falling to the no-prefetch floor (not below it: the gate disables
// the stream rather than letting it thrash) on random ones.
func AblationLearnedPrefetch() Report {
	r := Report{
		ID:     "ablation-learned-prefetch",
		Title:  "Learned prefetch vs. annotated distance (pipeline model)",
		XLabel: "stream predictability (stride-follow probability)",
		YLabel: "miss-latency coverage",
		Paper:  "beyond the paper: annotations (§3) assume the spawner knows the address; the learned stream recovers most of that coverage when the access pattern is inducible, and its self-disable gate makes the random-stream cost ~zero",
	}
	axis := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1}
	learned := Series{Name: "learned (stride induction)"}
	annotated := Series{Name: "annotated d=2"}
	none := Series{Name: "no prefetch"}
	static := sim.PipelineCoverage(2)
	for _, c := range axis {
		learned.X = append(learned.X, c)
		learned.Y = append(learned.Y, sim.LearnedCoverage(c))
		annotated.X = append(annotated.X, c)
		annotated.Y = append(annotated.Y, static)
		none.X = append(none.X, c)
		none.Y = append(none.Y, 0)
	}
	r.Series = []Series{annotated, learned, none}
	return r
}

// ExtensionWorkloadB extends Figure 12c's comparison to YCSB B (95/5),
// a workload the paper does not measure: with only 5 % writers the
// optimistic systems approach their read-only throughput, and MxTasking's
// prefetch advantage persists.
func ExtensionWorkloadB() Report {
	r := Report{
		ID:     "ext-ycsb-b",
		Title:  "Extension: YCSB B (95/5) across systems",
		XLabel: "cores",
		YLabel: "M ops/s",
		Paper:  "not in the paper; predicted from the same cost model — B sits between the A and C panels of fig12c",
	}
	for _, sys := range []sim.System{sim.SysMxTasking, sim.SysThreads, sim.SysBtreeOLC, sim.SysMasstree} {
		cfg := sim.TreeConfig{System: sys, Sync: sim.FamOptimistic, Workload: sim.WReadMostly}
		if sys == sim.SysMxTasking {
			cfg.PrefetchDistance = 2
			cfg.EBMR = sim.EBMRBatched
		}
		s := Series{Name: sys.String()}
		for _, c := range CoreAxis {
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, sim.SimulateTree(cfg, c).ThroughputMops)
		}
		r.Series = append(r.Series, s)
	}
	return r
}

// AblationAllocatorLevels compares the allocator hierarchy depths (design
// decision 4: global malloc vs. Hoard-style processor heaps vs. the full
// three-level stack).
func AblationAllocatorLevels() Report {
	r := Report{
		ID:     "ablation-alloc",
		Title:  "Allocator hierarchy ablation (48 cores, read-only lookups)",
		XLabel: "0=app 1=mx+pf 2=alloc 3=total",
		YLabel: "K cycles / lookup",
		Paper:  "the paper motivates the third (core-heap) level: run-to-completion makes it synchronization-free (§5.2)",
	}
	for _, v := range []sim.AllocVariant{sim.AllocLibc, sim.AllocProcessorOnly, sim.AllocMultiLevel} {
		res := sim.SimulateAlloc(v, 48)
		r.Series = append(r.Series, Series{
			Name: res.Variant.String(),
			X:    []float64{0, 1, 2, 3},
			Y:    []float64{res.App / 1000, res.Runtime / 1000, res.Allocation / 1000, res.Total() / 1000},
		})
	}
	return r
}

// AblationEpochBatch sweeps the EBMR advancement batch (design decision 3;
// the paper picks 50 as "as small as possible without suffering from
// performance losses").
func AblationEpochBatch() Report {
	r := Report{
		ID:     "ablation-ebmr-batch",
		Title:  "EBMR advancement-batch sweep (read-only, 48 cores)",
		XLabel: "batch size",
		YLabel: "M ops/s",
		Paper:  "batch 1 equals the every-task scheme; gains flatten quickly — 50 is already indistinguishable from no reclamation",
	}
	s := Series{Name: "MxTasking read-only"}
	for _, batch := range []int{1, 2, 5, 10, 25, 50, 100, 200} {
		res := sim.SimulateTree(sim.TreeConfig{
			System: sim.SysMxTasking, Sync: sim.FamOptimistic, Workload: sim.WReadOnly,
			PrefetchDistance: 2, EBMR: sim.EBMRBatched, EBMRBatch: batch,
		}, 48)
		s.X = append(s.X, float64(batch))
		s.Y = append(s.Y, res.ThroughputMops)
	}
	r.Series = []Series{s}
	return r
}

// AblationSMT isolates the hyperthreading effect: the same workload on 12
// physical cores vs. 24 logical cores of one socket, with and without
// prefetching. Stall-bound (no-prefetch) configurations profit from the
// second hyperthread at least as much as execution-bound (prefetching)
// ones — in the calibrated model both ride the SMT overlap limit, which
// is itself the reason the paper's curves bend at 13+ cores.
func AblationSMT() Report {
	r := Report{
		ID:     "ablation-smt",
		Title:  "SMT interaction with prefetching (read-only, one socket)",
		XLabel: "cores",
		YLabel: "M ops/s",
		Paper:  "hyperthreads add much less than physical cores (the 13+ knee of every scaling figure); stall-bound configs profit no less than execution-bound ones",
	}
	for _, d := range []int{0, 2} {
		s := Series{Name: fmt.Sprintf("distance=%d", d)}
		for _, c := range []int{12, 24} {
			res := sim.SimulateTree(sim.TreeConfig{
				System: sim.SysMxTasking, Sync: sim.FamOptimistic, Workload: sim.WReadOnly,
				PrefetchDistance: d, EBMR: sim.EBMRBatched,
			}, c)
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, res.ThroughputMops)
		}
		r.Series = append(r.Series, s)
	}
	return r
}
