// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6). Each experiment produces structured series plus a
// textual rendering that mirrors what the figure reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// The multi-core series come from the machine model in internal/sim (see
// DESIGN.md for the substitution rationale); the companion benchmarks in
// bench_test.go exercise the same code paths on the real runtime at host
// scale.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CoreAxis is the x-axis used by the paper's scaling figures.
var CoreAxis = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48}

// Series is one labelled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// At returns the Y value at x (exact match; NaN-free by construction).
func (s Series) At(x float64) (float64, bool) {
	for i, v := range s.X {
		if v == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Report is one regenerated figure.
type Report struct {
	ID     string // "fig7", "fig10a", ...
	Title  string
	YLabel string
	XLabel string
	Paper  string // the paper's headline observation for this figure
	Series []Series
}

// Fprint renders the report as an aligned text table, one row per x value.
func (r Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	fmt.Fprintf(w, "paper: %s\n", r.Paper)
	if len(r.Series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%16s", truncate(s.Name, 16))
	}
	fmt.Fprintf(w, "   (%s)\n", r.YLabel)
	for i, x := range r.Series[0].X {
		fmt.Fprintf(w, "%-12.6g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "%16.2f", s.Y[i])
			} else {
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// All returns every experiment keyed by ID, in presentation order.
func All() []Report {
	return []Report{
		Fig04(), Fig07(), Fig09(), Fig10a(), Fig10b(), Fig10c(), Fig11(),
		Fig12a(), Fig12b(), Fig12c(), Fig13(), Distance(),
	}
}

// ByID returns one experiment ("fig7".."fig13", "distance", or an
// ablation id), or false.
func ByID(id string) (Report, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range Ablations() {
		if r.ID == id {
			return r, true
		}
	}
	return Report{}, false
}

// IDs lists the available experiment identifiers, figures first.
func IDs() []string {
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	for _, r := range Ablations() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}
