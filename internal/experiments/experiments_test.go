package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mxtasking/internal/sim"
)

func TestAllExperimentsProduceSeries(t *testing.T) {
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Paper == "" {
			t.Errorf("experiment %q missing metadata", r.ID)
		}
		if len(r.Series) == 0 {
			t.Errorf("experiment %q produced no series", r.ID)
		}
		for _, s := range r.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Errorf("experiment %q series %q malformed (%d x, %d y)",
					r.ID, s.Name, len(s.X), len(s.Y))
			}
			for i, y := range s.Y {
				if y < 0 || y != y { // negative or NaN
					t.Errorf("experiment %q series %q has bad value %v at %d",
						r.ID, s.Name, y, i)
				}
			}
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range IDs() {
		r, ok := ByID(id)
		if !ok || r.ID != id {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID accepted a bogus id")
	}
	if r, ok := ByID("  FIG10A "); !ok || r.ID != "fig10a" {
		t.Error("ByID is not case/space tolerant")
	}
}

func TestFprintRendersEverySeries(t *testing.T) {
	var buf bytes.Buffer
	r := Fig10a()
	r.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "fig10a") || !strings.Contains(out, "paper:") {
		t.Fatal("rendering lacks header")
	}
	// Every core count shows up as a row.
	for _, c := range []string{"\n1 ", "\n48 "} {
		if !strings.Contains(out, c) {
			t.Errorf("rendered table missing row %q", strings.TrimSpace(c))
		}
	}
}

func TestFig10aHeadlineNumbers(t *testing.T) {
	r := Fig10a()
	var pf, nopf Series
	for _, s := range r.Series {
		switch s.Name {
		case "Read only +pf":
			pf = s
		case "Read only -pf":
			nopf = s
		}
	}
	a, _ := pf.At(48)
	b, _ := nopf.At(48)
	if gain := a/b - 1; gain < 0.25 || gain > 0.65 {
		t.Errorf("read-only prefetch gain at 48 cores = %.2f, want ~0.45", gain)
	}
}

func TestFig9PlateauInReport(t *testing.T) {
	r := Fig09()
	s := r.Series[0]
	v128, _ := s.At(128)
	v65536, _ := s.At(65536)
	v8, _ := s.At(8)
	if v8 > 0.5*v128 {
		t.Errorf("fig9 report lost the small-granularity collapse: %f vs %f", v8, v128)
	}
	if d := v65536/v128 - 1; d > 0.1 || d < -0.1 {
		t.Errorf("fig9 plateau not flat: %f", d)
	}
}

func TestFig7Segments(t *testing.T) {
	r := Fig07()
	if len(r.Series) != 2 {
		t.Fatalf("fig7 has %d series, want 2", len(r.Series))
	}
	// Series Y layout: app, runtime, alloc, total.
	libc, ml := r.Series[0], r.Series[1]
	if libc.Y[2] <= ml.Y[2]*5 {
		t.Errorf("libc allocation segment (%.2f) must dwarf multi-level (%.2f)", libc.Y[2], ml.Y[2])
	}
	if libc.Y[3] <= ml.Y[3] {
		t.Error("libc total must exceed multi-level total")
	}
}

func TestDistanceSweepShape(t *testing.T) {
	s := Distance().Series[0]
	d0, _ := s.At(0)
	d1, _ := s.At(1)
	d2, _ := s.At(2)
	d8, _ := s.At(8)
	if !(d2 > d1 && d1 > d0 && d8 > d0 && d8 < d2) {
		t.Errorf("distance sweep shape broken: d0=%.1f d1=%.1f d2=%.1f d8=%.1f", d0, d1, d2, d8)
	}
}

func TestVerifyAllClaimsPass(t *testing.T) {
	for _, c := range Verify() {
		if !c.Pass {
			t.Errorf("[%s] %s — %s", c.Figure, c.Text, c.Detail)
		}
	}
}

func TestAblationsProduceSeries(t *testing.T) {
	for _, r := range Ablations() {
		if len(r.Series) == 0 {
			t.Errorf("ablation %q empty", r.ID)
		}
		if _, ok := ByID(r.ID); !ok {
			t.Errorf("ablation %q not resolvable via ByID", r.ID)
		}
	}
}

func TestAblationAllocatorOrdering(t *testing.T) {
	r := AblationAllocatorLevels()
	// Allocation segment: libc > processor-only > multi-level.
	get := func(name string) float64 {
		for _, s := range r.Series {
			if s.Name == name {
				return s.Y[2]
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	libc, proc, ml := get("libc-2.31"), get("Processor-heap"), get("Multi-level")
	// The core-heap level is the win: without it, even per-processor
	// heaps cost more than libc's thread-local tcache fast path.
	if !(proc > libc && libc > ml) {
		t.Fatalf("allocator ablation ordering broken: libc=%.2f proc=%.2f ml=%.2f", libc, proc, ml)
	}
}

func TestAblationEpochBatchFlattens(t *testing.T) {
	s := AblationEpochBatch().Series[0]
	b1, _ := s.At(1)
	b50, _ := s.At(50)
	b200, _ := s.At(200)
	if !(b50 > b1) {
		t.Fatal("batching must beat per-task advancement")
	}
	if (b200-b50)/b50 > 0.01 {
		t.Fatal("gains past batch 50 should be negligible (the paper's choice)")
	}
}

func TestAblationSMTInteraction(t *testing.T) {
	r := AblationSMT()
	gain := func(name string) float64 {
		for _, s := range r.Series {
			if s.Name == name {
				return s.Y[1] / s.Y[0]
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	noPf, pf := gain("distance=0"), gain("distance=2")
	if noPf < pf-1e-9 {
		t.Fatalf("SMT must help the stall-bound configuration no less (nopf %.2fx vs pf %.2fx)", noPf, pf)
	}
	// Hyperthreads are far from free cores: the 12->24 gain stays well
	// below 2x (the knee at 13+ cores in every scaling figure).
	if noPf > 1.7 || pf > 1.7 {
		t.Fatalf("SMT gain unrealistically high: nopf %.2fx pf %.2fx", noPf, pf)
	}
}

func TestAblationPagedShape(t *testing.T) {
	r := AblationPaged()
	byName := map[string]Series{}
	for _, s := range r.Series {
		byName[s.Name] = s
	}
	for _, name := range []string{"zipf 0.99 (clock)", "zipf 0.99 (che/LRU)", "uniform (clock)", "uniform (che/LRU)"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("series %q missing", name)
		}
	}
	// The implemented clock policy must track Che's LRU approximation.
	for _, pair := range [][2]string{
		{"zipf 0.99 (clock)", "zipf 0.99 (che/LRU)"},
		{"zipf 0.8 (clock)", "zipf 0.8 (che/LRU)"},
		{"uniform (clock)", "uniform (che/LRU)"},
	} {
		clock, che := byName[pair[0]], byName[pair[1]]
		for i := range clock.Y {
			if d := clock.Y[i] - che.Y[i]; d > 0.05 || d < -0.05 {
				t.Fatalf("%s diverges from %s at x=%.2f: %.3f vs %.3f",
					pair[0], pair[1], clock.X[i], clock.Y[i], che.Y[i])
			}
		}
	}
	// Skew is the whole point: at every partial pool size the Zipfian
	// stream must beat uniform's resident-fraction floor, markedly so.
	z, u := byName["zipf 0.99 (clock)"], byName["uniform (clock)"]
	for i := range z.Y {
		if z.X[i] < 1 && z.Y[i] < u.Y[i]+0.1 {
			t.Fatalf("zipf hit rate %.3f barely above uniform %.3f at x=%.2f", z.Y[i], u.Y[i], z.X[i])
		}
	}
	// Full-size pool: everything hits, both models.
	for name, s := range byName {
		if last := s.Y[len(s.Y)-1]; last < 0.999 {
			t.Fatalf("%s at full pool = %.3f, want 1", name, last)
		}
	}
}

func TestWriteDat(t *testing.T) {
	dir := t.TempDir()
	paths, err := ExportAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := len(All()) + len(Ablations())
	if len(paths) != want {
		t.Fatalf("exported %d files, want %d", len(paths), want)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.HasPrefix(content, "# fig") {
		t.Fatalf("dat header malformed: %q", content[:40])
	}
	lines := strings.Split(strings.TrimSpace(content), "\n")
	dataLines := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			dataLines++
			if strings.Contains(l, "NaN") {
				t.Fatalf("NaN in dat output: %q", l)
			}
		}
	}
	if dataLines == 0 {
		t.Fatal("no data rows exported")
	}
}

func TestRealExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime experiments are wall-clock bound")
	}
	cfg := RealConfig{Workers: 2, Records: 5000, Ops: 10000}
	ycsbReport := RealYCSB(cfg)
	if len(ycsbReport.Series) != 2 || len(ycsbReport.Series[0].Y) != 3 {
		t.Fatalf("real YCSB report malformed: %+v", ycsbReport.Series)
	}
	for _, s := range ycsbReport.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q value %d = %f", s.Name, i, y)
			}
		}
	}
	join := RealJoin(RealConfig{Workers: 2, Records: 2000, Ops: 0})
	ys := join.Series[0].Y
	if len(ys) != 5 {
		t.Fatalf("real join report has %d points", len(ys))
	}
	// The tiny-task point must be visibly below the best plateau point.
	best := 0.0
	for _, y := range ys[1:] {
		if y > best {
			best = y
		}
	}
	if ys[0] >= best {
		t.Fatalf("tiny-task join (%f) not below plateau (%f)", ys[0], best)
	}
}

func TestExtensionWorkloadBOrdering(t *testing.T) {
	r := ExtensionWorkloadB()
	at48 := func(name string) float64 {
		for _, s := range r.Series {
			if s.Name == name {
				v, _ := s.At(48)
				return v
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	mx, th := at48("MxTasking"), at48("p_thread")
	if !(mx > th) {
		t.Fatalf("B workload: mx (%.1f) must stay ahead of threads (%.1f)", mx, th)
	}
	// B must land between A and C for MxTasking.
	a := sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
		Workload: sim.WReadUpdate, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48).ThroughputMops
	c := sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
		Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMRBatched}, 48).ThroughputMops
	if !(mx > a && mx < c) {
		t.Fatalf("B (%.1f) must sit between A (%.1f) and C (%.1f)", mx, a, c)
	}
}
