package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteDat renders the report as a gnuplot-style .dat file (the paper's
// figures are gnuplot plots): a comment header, one column per series,
// one row per x value. Returns the written path.
func (r Report) WriteDat(dir string) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "# paper: %s\n", r.Paper)
	fmt.Fprintf(&sb, "# x: %s, y: %s\n", r.XLabel, r.YLabel)
	fmt.Fprintf(&sb, "# columns: %s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "\t%q", s.Name)
	}
	sb.WriteByte('\n')
	if len(r.Series) > 0 {
		for i, x := range r.Series[0].X {
			fmt.Fprintf(&sb, "%g", x)
			for _, s := range r.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&sb, "\t%.4f", s.Y[i])
				} else {
					sb.WriteString("\t-")
				}
			}
			sb.WriteByte('\n')
		}
	}
	path := filepath.Join(dir, r.ID+".dat")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return path, nil
}

// ExportAll writes every figure (and ablation) as a .dat file into dir,
// creating it if needed. Returns the written paths.
func ExportAll(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: mkdir %s: %w", dir, err)
	}
	var paths []string
	for _, r := range append(All(), Ablations()...) {
		p, err := r.WriteDat(dir)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
