package experiments

import (
	"math"

	"mxtasking/internal/sim"
)

func coresF() []float64 {
	xs := make([]float64, len(CoreAxis))
	for i, c := range CoreAxis {
		xs[i] = float64(c)
	}
	return xs
}

// treeSeries sweeps a tree configuration over the core axis, projecting
// one metric.
func treeSeries(name string, cfg sim.TreeConfig, metric func(sim.Result) float64) Series {
	s := Series{Name: name, X: coresF()}
	for _, c := range CoreAxis {
		s.Y = append(s.Y, metric(sim.SimulateTree(cfg, c)))
	}
	return s
}

func tput(r sim.Result) float64   { return r.ThroughputMops }
func stalls(r sim.Result) float64 { return r.StallsPerOp / 1000 }
func instr(r sim.Result) float64  { return r.InstrPerOp / 1000 }

func mxCfg(w sim.Workload, distance int, ebmr sim.EBMRPolicy) sim.TreeConfig {
	return sim.TreeConfig{
		System: sim.SysMxTasking, Sync: sim.FamOptimistic, Workload: w,
		PrefetchDistance: distance, EBMR: ebmr,
	}
}

// Fig07 — CPU cycles for a single lookup on the task-based tree with
// different task allocators (paper §5.2).
func Fig07() Report {
	r := Report{
		ID:     "fig7",
		Title:  "Task allocation cost (Blink-tree read-only lookup, 48 cores)",
		XLabel: "segment",
		YLabel: "K cycles / lookup",
		Paper:  "malloc spends ~450 cycles/lookup on allocation (~16 % of total); the multi-level allocator ~30, plus ~7 % fewer prefetch cycles",
	}
	for _, v := range []sim.AllocVariant{sim.AllocLibc, sim.AllocMultiLevel} {
		res := sim.SimulateAlloc(v, 48)
		r.Series = append(r.Series, Series{
			Name: res.Variant.String(),
			X:    []float64{0, 1, 2, 3},
			Y: []float64{
				res.App / 1000,
				res.Runtime / 1000,
				res.Allocation / 1000,
				res.Total() / 1000,
			},
		})
	}
	r.XLabel = "0=app 1=mx+pf 2=alloc 3=total"
	return r
}

// Fig09 — hash-join throughput across task granularities (paper §5.3).
func Fig09() Report {
	r := Report{
		ID:     "fig9",
		Title:  "Hash join across task granularities (TPC-H SF100-shaped, 48 cores)",
		XLabel: "records/task",
		YLabel: "M output tuples / s",
		Paper:  "2^7..2^16 records/task behave approximately equivalent; <=16 records collapse under scheduling overhead; 2^18 droops from imbalance",
	}
	s := Series{Name: "MxTasking join"}
	for _, e := range []int{3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18} {
		g := math.Pow(2, float64(e))
		s.X = append(s.X, g)
		s.Y = append(s.Y, sim.SimulateJoin(sim.DefaultJoin(g)).OutputMtuples)
	}
	r.Series = []Series{s}
	return r
}

// fig10 builds one panel triple (insert / read-update / read-only) for a
// metric, comparing prefetch on/off.
func fig10(id, title, ylabel string, metric func(sim.Result) float64, paper string) Report {
	r := Report{ID: id, Title: title, XLabel: "cores", YLabel: ylabel, Paper: paper}
	for _, w := range []sim.Workload{sim.WInsert, sim.WReadUpdate, sim.WReadOnly} {
		r.Series = append(r.Series,
			treeSeries(w.String()+" +pf", mxCfg(w, 2, sim.EBMRBatched), metric),
			treeSeries(w.String()+" -pf", mxCfg(w, 0, sim.EBMRBatched), metric),
		)
	}
	return r
}

// Fig10a — throughput with and without annotation-based prefetching.
func Fig10a() Report {
	return fig10("fig10a", "Prefetching impact: throughput", "M ops/s", tput,
		"prefetching lifts throughput ~21 % on insert and read/update, ~45 % on read-only")
}

// Fig10b — memory stalls per operation.
func Fig10b() Report {
	return fig10("fig10b", "Prefetching impact: memory stalls", "K stalls/op", stalls,
		"stalls drop 31 % (insert), 41 % (read/update), 52 % (read-only); read/update equalizes at high core counts")
}

// Fig10c — executed instructions per operation.
func Fig10c() Report {
	return fig10("fig10c", "Prefetching impact: instructions", "K instr/op", instr,
		"prefetching costs ~245 additional instructions per operation")
}

// Fig11 — EBMR scaling across advancement policies.
func Fig11() Report {
	r := Report{
		ID:     "fig11",
		Title:  "Epoch-based memory reclamation in a task-based environment",
		XLabel: "cores",
		YLabel: "M ops/s",
		Paper:  "both EBMR variants cost little; wrapping every task is worst on read-only, write-heavy workloads are almost unaffected",
	}
	for _, w := range []sim.Workload{sim.WInsert, sim.WReadUpdate, sim.WReadOnly} {
		for _, e := range []sim.EBMRPolicy{sim.EBMROff, sim.EBMRBatched, sim.EBMREvery} {
			r.Series = append(r.Series,
				treeSeries(w.String()+" / "+e.String(), mxCfg(w, 2, e), tput))
		}
	}
	return r
}

// fig12 builds one synchronization-family comparison.
func fig12(id, title string, fam sim.SyncFamily, systems []sim.System, paper string) Report {
	r := Report{ID: id, Title: title, XLabel: "cores", YLabel: "M ops/s", Paper: paper}
	for _, w := range []sim.Workload{sim.WInsert, sim.WReadUpdate, sim.WReadOnly} {
		for _, s := range systems {
			cfg := sim.TreeConfig{System: s, Sync: fam, Workload: w}
			if s == sim.SysMxTasking {
				cfg.PrefetchDistance = 2
				cfg.EBMR = sim.EBMRBatched
			}
			r.Series = append(r.Series,
				treeSeries(w.String()+" / "+s.String(), cfg, tput))
		}
	}
	return r
}

// Fig12a — serialized synchronization (scheduling vs. spinlocks).
func Fig12a() Report {
	return fig12("fig12a", "Serialized synchronization",
		sim.FamSerialized,
		[]sim.System{sim.SysMxTasking, sim.SysThreads, sim.SysTBB},
		"scheduling beats spinlocks until hyperthreads (13+) and the second region (25+); root serialization and pool contention then cap it")
}

// Fig12b — reader/writer latches.
func Fig12b() Report {
	return fig12("fig12b", "Reader/writer-lock synchronization",
		sim.FamRWLatch,
		[]sim.System{sim.SysMxTasking, sim.SysThreads, sim.SysTBB},
		"MxTasking +45 % lookups over threads (prefetching); both decline in the second region; HTM-elided TBB 2.6x/3.7x ahead")
}

// Fig12c — optimistic synchronization plus state-of-the-art indexes.
func Fig12c() Report {
	return fig12("fig12c", "Optimistic synchronization and state-of-the-art indexes",
		sim.FamOptimistic,
		[]sim.System{sim.SysMxTasking, sim.SysThreads, sim.SysTBB,
			sim.SysBtreeOLC, sim.SysMasstree, sim.SysOpenBwTree},
		"read-only at 48: MxTasking 74.6 M, Masstree 68.2, threads 57.7, BtreeOLC 55.3; read/update: threads/OLC +4 % at 48; insert comparable")
}

// Fig13 — cycle-accurate per-operation breakdown at 48 cores.
func Fig13() Report {
	r := Report{
		ID:     "fig13",
		Title:  "Cycle breakdown per operation (48 cores, optimistic configs)",
		XLabel: "category",
		YLabel: "K cycles / op",
		Paper:  "MxTasking traverses cheapest (prefetching, incl. version headers); task runtimes pay visible scheduling overhead; TBB the most",
	}
	systems := []sim.System{sim.SysMxTasking, sim.SysTBB, sim.SysThreads,
		sim.SysOpenBwTree, sim.SysBtreeOLC, sim.SysMasstree}
	for _, w := range []sim.Workload{sim.WInsert, sim.WReadUpdate, sim.WReadOnly} {
		for _, s := range systems {
			cfg := sim.TreeConfig{System: s, Sync: sim.FamOptimistic, Workload: w}
			if s == sim.SysMxTasking {
				cfg.PrefetchDistance = 2
				cfg.EBMR = sim.EBMRBatched
			}
			res := sim.SimulateTree(cfg, 48)
			cats := res.Breakdown.Categories()
			series := Series{Name: w.String() + " / " + s.String()}
			for i, c := range cats {
				series.X = append(series.X, float64(i))
				series.Y = append(series.Y, c.Value/1000)
			}
			series.X = append(series.X, float64(len(cats)))
			series.Y = append(series.Y, res.Breakdown.Total()/1000)
			r.Series = append(r.Series, series)
		}
	}
	r.XLabel = "0=traverse 1=op 2=prefetch 3=sync 4=runtime 5=system 6=other 7=total"
	return r
}

// Distance — the §6.2 prefetch-distance sweep.
func Distance() Report {
	r := Report{
		ID:     "distance",
		Title:  "Prefetch-distance sweep (read-only, 48 cores)",
		XLabel: "distance",
		YLabel: "M ops/s",
		Paper:  "distance 1 is too late to help much; 2 performs best; beyond 4 the advantage shrinks but remains noticeable",
	}
	s := Series{Name: "MxTasking read-only"}
	for d := 0; d <= 8; d++ {
		s.X = append(s.X, float64(d))
		s.Y = append(s.Y, sim.SimulateTree(mxCfg(sim.WReadOnly, d, sim.EBMRBatched), 48).ThroughputMops)
	}
	r.Series = []Series{s}
	return r
}

// Fig04 — the prefetch/execution timeline of Figure 4, produced by the
// event-driven pipeline model: for each of the first tasks, when its
// prefetch was issued, when the data arrived, and when it executed.
func Fig04() Report {
	r := Report{
		ID:     "fig4",
		Title:  "Prefetch pipeline timeline (event model, distance 2)",
		XLabel: "task",
		YLabel: "cycles",
		Paper:  "prefetch requests are processed asynchronously by the memory subsystem while preceding tasks execute; steady-state tasks find their data cached",
	}
	res := sim.SimulatePipeline(sim.DefaultPipeline(2))
	issue := Series{Name: "pf issued (0=demand)"}
	ready := Series{Name: "data ready"}
	start := Series{Name: "exec start"}
	stall := Series{Name: "stalled"}
	for _, e := range res.TimelineHead {
		x := float64(e.Task)
		issue.X = append(issue.X, x)
		if e.PrefetchStart >= 0 {
			issue.Y = append(issue.Y, e.PrefetchStart)
		} else {
			// The first Distance tasks have no prefetch: demand miss.
			issue.Y = append(issue.Y, 0)
		}
		ready.X = append(ready.X, x)
		ready.Y = append(ready.Y, e.DataReady)
		start.X = append(start.X, x)
		start.Y = append(start.Y, e.ExecStart)
		stall.X = append(stall.X, x)
		stall.Y = append(stall.Y, e.Stalled)
	}
	r.Series = []Series{issue, ready, start, stall}
	return r
}
