package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure output")

// TestGoldenFigures pins the complete rendered output of every simulated
// figure. The model is deterministic, so any diff here is a deliberate
// recalibration — rerun with -update and re-check EXPERIMENTS.md's numbers
// when that happens.
func TestGoldenFigures(t *testing.T) {
	var buf bytes.Buffer
	for _, r := range All() {
		r.Fprint(&buf)
	}
	for _, r := range Ablations() {
		r.Fprint(&buf)
	}
	golden := filepath.Join("testdata", "figures.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run Golden -update`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		// Locate the first differing line for a readable failure.
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("figure output diverged from golden at line %d:\n got: %s\nwant: %s\n(recalibration? rerun with -update and refresh EXPERIMENTS.md)",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("figure output length changed: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
