package experiments

import (
	"fmt"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/hashjoin"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/tpch"
	"mxtasking/internal/ycsb"
)

// RealConfig scales the real-runtime experiments to the host.
type RealConfig struct {
	Workers int
	Records int // tree records / build-side basis
	Ops     int // workload operations
}

// DefaultRealConfig returns a configuration that completes in seconds on
// a small host.
func DefaultRealConfig(workers int) RealConfig {
	return RealConfig{Workers: workers, Records: 100000, Ops: 200000}
}

// RealYCSB runs the paper's workloads on this host's actual runtime,
// with and without prefetching, and reports wall-clock throughput.
// These numbers measure the implementation on the current host, not the
// paper's testbed (see EXPERIMENTS.md's caveats).
func RealYCSB(cfg RealConfig) Report {
	r := Report{
		ID:     "real-ycsb",
		Title:  fmt.Sprintf("Real runtime: YCSB on the task-based Blink-tree (%d workers)", cfg.Workers),
		XLabel: "0=insert 1=read/update 2=read-only",
		YLabel: "M ops/s",
		Paper:  "host-scale companion to fig10a; shapes live in the simulated series",
	}
	workloads := []ycsb.Workload{ycsb.WorkloadInsert, ycsb.WorkloadA, ycsb.WorkloadC}
	for _, distance := range []int{2, 0} {
		s := Series{Name: fmt.Sprintf("distance=%d", distance)}
		for i, w := range workloads {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, realYCSBRun(cfg, w, distance))
		}
		r.Series = append(r.Series, s)
	}
	return r
}

func realYCSBRun(cfg RealConfig, w ycsb.Workload, distance int) float64 {
	rt := mxtask.New(mxtask.Config{
		Workers:          cfg.Workers,
		PrefetchDistance: distance,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	defer rt.Stop()
	tree := blinktree.NewTaskTree(rt, blinktree.TaskSyncOptimistic)

	load := ycsb.NewGenerator(ycsb.WorkloadInsert, uint64(cfg.Records), 1)
	for i := 0; i < cfg.Records; i++ {
		op := load.Next()
		tree.Insert(op.Key, op.Value)
	}
	rt.Drain()

	gen := ycsb.NewGenerator(w, uint64(cfg.Records), 7)
	batch := make([]ycsb.Op, 0, ycsb.DefaultBatchSize)
	start := time.Now()
	done := 0
	for done < cfg.Ops {
		batch = gen.Fill(batch[:0], ycsb.DefaultBatchSize)
		for _, op := range batch {
			switch op.Kind {
			case ycsb.OpInsert:
				tree.Insert(op.Key, op.Value)
			case ycsb.OpRead:
				tree.Lookup(op.Key)
			case ycsb.OpUpdate:
				tree.Update(op.Key, op.Value)
			}
		}
		done += len(batch)
	}
	rt.Drain()
	return float64(done) / time.Since(start).Seconds() / 1e6
}

// RealJoin runs the Figure 9 granularity sweep on the real runtime with
// host-scaled inputs.
func RealJoin(cfg RealConfig) Report {
	r := Report{
		ID:     "real-fig9",
		Title:  fmt.Sprintf("Real runtime: hash-join granularity (%d workers)", cfg.Workers),
		XLabel: "records/task",
		YLabel: "M output tuples/s",
		Paper:  "host-scale companion to fig9: collapse at tiny tasks, plateau beyond",
	}
	customers := tpch.Customers(cfg.Records/2, 1)
	orders := tpch.Orders(cfg.Records*5, cfg.Records/2, 2)
	s := Series{Name: "MxTasking join (real)"}
	for _, g := range []int{8, 64, 512, 4096, 32768} {
		rt := mxtask.New(mxtask.Config{Workers: cfg.Workers, EpochPolicy: epoch.Off, EpochInterval: -1})
		rt.Start()
		join := hashjoin.NewJoin(rt, customers, orders, g)
		start := time.Now()
		tuples := join.Run()
		elapsed := time.Since(start)
		rt.Stop()
		s.X = append(s.X, float64(g))
		s.Y = append(s.Y, float64(tuples)/elapsed.Seconds()/1e6)
	}
	r.Series = []Series{s}
	return r
}
