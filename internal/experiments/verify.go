package experiments

import (
	"fmt"

	"mxtasking/internal/sim"
)

// Claim is one of the paper's verifiable shape statements, evaluated
// against the regenerated data.
type Claim struct {
	Figure string
	Text   string
	Pass   bool
	Detail string
}

// Verify evaluates every headline claim of §5–§6 against the model and
// returns the results (all claims are also enforced as unit tests; this
// form feeds `mxbench -verify` for human inspection).
func Verify() []Claim {
	var claims []Claim
	add := func(fig, text string, pass bool, detail string) {
		claims = append(claims, Claim{Figure: fig, Text: text, Pass: pass, Detail: detail})
	}
	mx := func(w sim.Workload, d, c int) sim.Result {
		return sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
			Workload: w, PrefetchDistance: d, EBMR: sim.EBMRBatched}, c)
	}
	at48 := func(s sim.System, fam sim.SyncFamily, w sim.Workload) float64 {
		cfg := sim.TreeConfig{System: s, Sync: fam, Workload: w}
		if s == sim.SysMxTasking {
			cfg.PrefetchDistance = 2
			cfg.EBMR = sim.EBMRBatched
		}
		return sim.SimulateTree(cfg, 48).ThroughputMops
	}

	// Figure 7.
	libc := sim.SimulateAlloc(sim.AllocLibc, 48)
	ml := sim.SimulateAlloc(sim.AllocMultiLevel, 48)
	add("fig7", "multi-level allocation costs an order of magnitude less than malloc",
		libc.Allocation > 8*ml.Allocation,
		fmt.Sprintf("libc %.0f vs multi-level %.0f cycles/lookup", libc.Allocation, ml.Allocation))

	// Figure 9.
	plateau := sim.SimulateJoin(sim.DefaultJoin(1024)).OutputMtuples
	tiny := sim.SimulateJoin(sim.DefaultJoin(8)).OutputMtuples
	heavy := sim.SimulateJoin(sim.DefaultJoin(1 << 18)).OutputMtuples
	add("fig9", "tiny tasks collapse, heavyweight tasks droop, plateau in between",
		tiny < 0.5*plateau && heavy < 0.92*plateau,
		fmt.Sprintf("2^3: %.0f, plateau: %.0f, 2^18: %.0f Mtuples/s", tiny, plateau, heavy))

	// Figure 10.
	roGain := mx(sim.WReadOnly, 2, 48).ThroughputMops/mx(sim.WReadOnly, 0, 48).ThroughputMops - 1
	add("fig10a", "prefetching lifts read-only throughput by tens of percent (paper: 45 %)",
		roGain > 0.25 && roGain < 0.65, fmt.Sprintf("gain %.0f%%", roGain*100))
	stallRed := 1 - mx(sim.WReadOnly, 2, 48).StallsPerOp/mx(sim.WReadOnly, 0, 48).StallsPerOp
	add("fig10b", "read-only memory stalls drop by about half (paper: 52 %)",
		stallRed > 0.35 && stallRed < 0.65, fmt.Sprintf("reduction %.0f%%", stallRed*100))
	extra := mx(sim.WReadOnly, 2, 48).InstrPerOp - mx(sim.WReadOnly, 0, 48).InstrPerOp
	add("fig10c", "prefetching costs ~245 extra instructions/op",
		extra > 180 && extra < 320, fmt.Sprintf("+%.0f instructions", extra))

	// §6.2 distance sweep.
	d1 := mx(sim.WReadOnly, 1, 48).ThroughputMops
	d2 := mx(sim.WReadOnly, 2, 48).ThroughputMops
	d6 := mx(sim.WReadOnly, 6, 48).ThroughputMops
	d0 := mx(sim.WReadOnly, 0, 48).ThroughputMops
	add("distance", "distance 2 best; 1 too late; beyond 4 smaller but noticeable",
		d2 > d1 && d1 > d0 && d6 < d2 && d6 > d0,
		fmt.Sprintf("d0=%.1f d1=%.1f d2=%.1f d6=%.1f Mops", d0, d1, d2, d6))

	// Figure 11.
	off := mx(sim.WReadOnly, 2, 48).ThroughputMops
	every := sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamOptimistic,
		Workload: sim.WReadOnly, PrefetchDistance: 2, EBMR: sim.EBMREvery}, 48).ThroughputMops
	add("fig11", "every-task EBMR visibly slower on read-only; batching near-free",
		every < off && (off-every)/off < 0.2,
		fmt.Sprintf("every-task loses %.1f%%", (off-every)/off*100))

	// Figure 12a.
	mxSer12 := at48(sim.SysMxTasking, sim.FamSerialized, sim.WReadOnly)
	mxSer24 := sim.SimulateTree(sim.TreeConfig{System: sim.SysMxTasking, Sync: sim.FamSerialized, Workload: sim.WReadOnly}, 24).ThroughputMops
	thSer := at48(sim.SysThreads, sim.FamSerialized, sim.WReadOnly)
	add("fig12a", "scheduling beats spinlocks; both stop scaling (root serialization)",
		mxSer12 > 2*thSer && mxSer12 < mxSer24,
		fmt.Sprintf("mx 24c=%.1f 48c=%.1f, spinlocks 48c=%.1f Mops", mxSer24, mxSer12, thSer))

	// Figure 12b.
	mxRW := at48(sim.SysMxTasking, sim.FamRWLatch, sim.WReadOnly)
	thRW := at48(sim.SysThreads, sim.FamRWLatch, sim.WReadOnly)
	tbbRW := at48(sim.SysTBB, sim.FamRWLatch, sim.WReadOnly)
	add("fig12b", "mx ahead of threads (prefetching); HTM TBB ahead of both",
		mxRW > 1.2*thRW && tbbRW > 1.4*mxRW,
		fmt.Sprintf("mx=%.1f threads=%.1f tbb=%.1f Mops", mxRW, thRW, tbbRW))

	// Figure 12c.
	ro := func(s sim.System) float64 { return at48(s, sim.FamOptimistic, sim.WReadOnly) }
	order := ro(sim.SysMxTasking) > ro(sim.SysMasstree) &&
		ro(sim.SysMasstree) > ro(sim.SysThreads) &&
		ro(sim.SysThreads) > ro(sim.SysBtreeOLC) &&
		ro(sim.SysBtreeOLC) > ro(sim.SysOpenBwTree) &&
		ro(sim.SysThreads) > ro(sim.SysTBB)
	add("fig12c", "read-only ordering: mx > Masstree > threads > BtreeOLC > BwTree; TBB behind",
		order, fmt.Sprintf("mx=%.1f mass=%.1f th=%.1f olc=%.1f bw=%.1f tbb=%.1f",
			ro(sim.SysMxTasking), ro(sim.SysMasstree), ro(sim.SysThreads),
			ro(sim.SysBtreeOLC), ro(sim.SysOpenBwTree), ro(sim.SysTBB)))

	// Figure 13.
	mxBD := mx(sim.WReadOnly, 2, 48).Breakdown
	thBD := sim.SimulateTree(sim.TreeConfig{System: sim.SysThreads, Sync: sim.FamOptimistic, Workload: sim.WReadOnly}, 48).Breakdown
	tbbBD := sim.SimulateTree(sim.TreeConfig{System: sim.SysTBB, Sync: sim.FamOptimistic, Workload: sim.WReadOnly}, 48).Breakdown
	add("fig13", "mx traverses cheapest; runtimes pay scheduling overhead, TBB most",
		mxBD.Traverse < thBD.Traverse && mxBD.Runtime > thBD.Runtime && tbbBD.Runtime > mxBD.Runtime,
		fmt.Sprintf("traverse mx=%.0f th=%.0f; runtime mx=%.0f th=%.0f tbb=%.0f cycles",
			mxBD.Traverse, thBD.Traverse, mxBD.Runtime, thBD.Runtime, tbbBD.Runtime))

	return claims
}
