// Package faultfs is the filesystem seam under the durability subsystem:
// an interface over the handful of file operations the write-ahead log
// performs (create/open/write/fsync/rename/directory-sync/remove/...), one
// passthrough implementation backed by the real OS, and one in-memory
// implementation with a deterministic, seed-driven fault engine.
//
// The fault engine exists so the chaos harness (internal/kvstore) can
// prove the WAL's crash-consistency claims instead of asserting them:
// every filesystem operation is assigned a global index and recorded in a
// trace, so "crash at operation N" is enumerable — the harness replays a
// workload once to learn the trace, then crashes the process model at
// *every* index and verifies recovery each time. Beyond crashes the
// engine can tear a write at any byte, make fsync lie (return success
// without making data durable — the classic broken-WAL bug), and fail any
// single operation with a scripted error.
//
// The durability model mirrors an append-only page cache: each file keeps
// a synced watermark advanced by Sync; a crash preserves the synced
// prefix and loses a policy-chosen amount of the unsynced tail (torn at
// an arbitrary byte under KeepRandom). Directory entries become durable
// only at SyncDir — a created, renamed, or removed entry whose directory
// was not yet synced may land on either side of the crash.
package faultfs

import (
	"errors"
	"os"
)

// FS is the set of filesystem operations the WAL uses. Disk is the real
// implementation; FaultFS (NewMem) is the in-memory fault-injecting one.
type FS interface {
	// MkdirAll creates a directory (and parents) if missing.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens name with the given flags. Only the flag
	// combinations the WAL uses need to be supported: O_WRONLY|O_APPEND,
	// O_CREATE|O_WRONLY|O_EXCL, and O_CREATE|O_WRONLY|O_TRUNC.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// Stat reports a file's metadata (the WAL only uses Size).
	Stat(name string) (os.FileInfo, error)
	// Truncate cuts a file to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making creates/renames/removes in it
	// durable.
	SyncDir(dir string) error
	// OpenRandom opens name for random access (ReadAt/WriteAt) — the
	// page-file seam the buffer pool (internal/pager) writes through.
	// Supported flag combinations: O_RDWR and O_CREATE|O_RDWR with
	// optional O_TRUNC.
	OpenRandom(name string, flag int, perm os.FileMode) (RandomFile, error)
}

// File is an open, append-only writable file.
type File interface {
	Name() string
	Write(p []byte) (n int, err error)
	Sync() error
	Close() error
}

// RandomFile is an open random-access file: a File whose writes land at
// explicit offsets instead of the tail. Unsynced WriteAt spans have the
// page-cache crash semantics of real disks — after a crash each span may
// have fully hit the medium, been dropped, or been torn mid-span, in any
// combination (writeback is unordered) — so crash images built by the
// fault engine model out-of-order page writeback, not just lost tails.
type RandomFile interface {
	File
	ReadAt(p []byte, off int64) (n int, err error)
	WriteAt(p []byte, off int64) (n int, err error)
}

// Disk is the passthrough FS over the real filesystem — the default for
// every production code path. It adds nothing but a static interface
// dispatch over direct os calls.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (diskFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) OpenRandom(name string, flag int, perm os.FileMode) (RandomFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (diskFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (diskFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (diskFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (diskFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(name string) error                   { return os.Remove(name) }

func (diskFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	return errors.Join(err, cerr)
}
