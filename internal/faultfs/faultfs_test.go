package faultfs

import (
	"errors"
	"os"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if n, err := f.Write(p); err != nil || n != len(p) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
}

func TestMemFSBasicRoundTrip(t *testing.T) {
	fs := NewMem(1)
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello "))
	writeAll(t, f, []byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/d/a")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read back %q, %v", data, err)
	}
	st, err := fs.Stat("/d/a")
	if err != nil || st.Size() != 11 {
		t.Fatalf("stat: %v %v", st, err)
	}
	if _, err := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644); !errors.Is(err, os.ErrExist) {
		t.Fatalf("O_EXCL on existing file: %v", err)
	}
	entries, err := fs.ReadDir("/d")
	if err != nil || len(entries) != 1 || entries[0].Name() != "a" {
		t.Fatalf("readdir: %v %v", entries, err)
	}
	if err := fs.Truncate("/d/a", 5); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("/d/a"); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := fs.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/d/a"); !os.IsNotExist(err) {
		t.Fatalf("read after remove: %v", err)
	}
}

// TestCrashAtEveryOpIsEnumerable: the trace of a reference run names
// every op; crashing at each index fails that op and all later ones.
func TestCrashAtEveryOpIsEnumerable(t *testing.T) {
	run := func(fs *FaultFS) error {
		if err := fs.MkdirAll("/d", 0o755); err != nil {
			return err
		}
		f, err := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("abc")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		return f.Close()
	}
	ref := NewMem(7)
	if err := run(ref); err != nil {
		t.Fatal(err)
	}
	n := ref.OpCount()
	if n != 5 {
		t.Fatalf("reference run: %d ops, want 5 (trace %v)", n, ref.Trace())
	}
	for i := int64(0); i < n; i++ {
		fs := NewMem(7)
		fs.CrashAtOp(i)
		if err := run(fs); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at %d: err %v", i, err)
		}
		if !fs.Crashed() {
			t.Fatalf("crash at %d did not fire", i)
		}
	}
}

// TestCrashImageRespectsSyncWatermark: synced bytes always survive;
// unsynced bytes obey the keep policy.
func TestCrashImageRespectsSyncWatermark(t *testing.T) {
	build := func(keep KeepPolicy) *FaultFS {
		fs := NewMem(11)
		fs.SetKeepPolicy(keep)
		fs.MkdirAll("/d", 0o755)
		f, _ := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		fs.SyncDir("/d")
		writeAll(t, f, []byte("durable!"))
		f.Sync()
		writeAll(t, f, []byte("volatile"))
		return fs
	}

	img := build(KeepNone).CrashImage()
	if data, err := img.ReadFile("/d/a"); err != nil || string(data) != "durable!" {
		t.Fatalf("KeepNone image: %q %v", data, err)
	}
	img = build(KeepAll).CrashImage()
	if data, err := img.ReadFile("/d/a"); err != nil || string(data) != "durable!volatile" {
		t.Fatalf("KeepAll image: %q %v", data, err)
	}
	img = build(KeepRandom).CrashImage()
	data, err := img.ReadFile("/d/a")
	if err != nil || len(data) < 8 || len(data) > 16 || string(data[:8]) != "durable!" {
		t.Fatalf("KeepRandom image: %q %v", data, err)
	}
	// Determinism: the same seed and script produce the same image.
	again, _ := build(KeepRandom).CrashImage().ReadFile("/d/a")
	if string(again) != string(data) {
		t.Fatalf("CrashImage not deterministic: %q vs %q", data, again)
	}
}

// TestDroppedSyncLosesData: a lying fsync leaves the watermark behind,
// so a KeepNone crash image comes back empty.
func TestDroppedSyncLosesData(t *testing.T) {
	fs := NewMem(3)
	fs.DropSyncs(true)
	fs.SetKeepPolicy(KeepNone)
	fs.MkdirAll("/d", 0o755)
	f, _ := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	fs.SyncDir("/d")
	writeAll(t, f, []byte("acked data"))
	if err := f.Sync(); err != nil {
		t.Fatalf("dropped sync must still report success: %v", err)
	}
	data, err := fs.CrashImage().ReadFile("/d/a")
	if err != nil || len(data) != 0 {
		t.Fatalf("dropped fsync survived the crash: %q %v", data, err)
	}
}

// TestTearWriteAndFailOp: scripted short writes and op failures.
func TestTearWriteAndFailOp(t *testing.T) {
	fs := NewMem(5)
	fs.MkdirAll("/d", 0o755)
	f, _ := fs.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY, 0o644)
	fs.TearWrite(fs.OpCount(), 3)
	if n, err := f.Write([]byte("abcdef")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if data, _ := fs.ReadFile("/d/a"); string(data) != "abc" {
		t.Fatalf("torn write persisted %q", data)
	}
	boom := errors.New("boom")
	fs.FailOp(fs.OpCount(), boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("scripted op failure: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("fault is one-shot, next op must pass: %v", err)
	}
}

// TestRenameDurability: a rename is provisional until SyncDir; a crash
// before the dir sync may leave either name, after it only the new one.
func TestRenameDurability(t *testing.T) {
	fs := NewMem(9)
	fs.MkdirAll("/d", 0o755)
	f, _ := fs.OpenFile("/d/tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("snapshot"))
	f.Sync()
	f.Close()
	fs.SyncDir("/d")
	if err := fs.Rename("/d/tmp", "/d/final"); err != nil {
		t.Fatal(err)
	}
	// Without the dir sync, the crash image may resurrect the old name
	// or show the new one — but never lose the content entirely.
	img := fs.CrashImage()
	oldData, oldErr := img.ReadFile("/d/tmp")
	newData, newErr := img.ReadFile("/d/final")
	if oldErr != nil && newErr != nil {
		t.Fatalf("rename lost both names: %v / %v", oldErr, newErr)
	}
	for _, d := range [][]byte{oldData, newData} {
		if len(d) > 0 && string(d) != "snapshot" {
			t.Fatalf("corrupt content %q", d)
		}
	}
	// After the dir sync the rename is durable: new name only.
	fs.SyncDir("/d")
	img = fs.CrashImage()
	if _, err := img.ReadFile("/d/tmp"); !os.IsNotExist(err) {
		t.Fatalf("old name survived a durable rename: %v", err)
	}
	if data, err := img.ReadFile("/d/final"); err != nil || string(data) != "snapshot" {
		t.Fatalf("durable rename target: %q %v", data, err)
	}
}

// TestDiskFSPassthrough exercises the passthrough implementation against
// a real temp dir (same call pattern the WAL uses).
func TestDiskFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	if err := Disk.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := Disk.OpenFile(dir+"/sub/x", os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Disk.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if err := Disk.Rename(dir+"/sub/x", dir+"/sub/y"); err != nil {
		t.Fatal(err)
	}
	data, err := Disk.ReadFile(dir + "/sub/y")
	if err != nil || string(data) != "data" {
		t.Fatalf("%q %v", data, err)
	}
	entries, err := Disk.ReadDir(dir + "/sub")
	if err != nil || len(entries) != 1 {
		t.Fatalf("%v %v", entries, err)
	}
	if err := Disk.Truncate(dir+"/sub/y", 2); err != nil {
		t.Fatal(err)
	}
	st, err := Disk.Stat(dir + "/sub/y")
	if err != nil || st.Size() != 2 {
		t.Fatalf("%v %v", st, err)
	}
	if err := Disk.Remove(dir + "/sub/y"); err != nil {
		t.Fatal(err)
	}
}
