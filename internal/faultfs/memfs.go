package faultfs

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Fault-engine errors.
var (
	// ErrCrashed is returned by every operation at and after the
	// configured crash point: the process model is dead as far as the
	// filesystem is concerned.
	ErrCrashed = errors.New("faultfs: simulated crash")
	// ErrInjected is returned by operations failed via FailOp/TearWrite.
	ErrInjected = errors.New("faultfs: injected fault")
)

// KeepPolicy selects what CrashImage does with bytes that were written
// but not covered by an fsync when the crash fired.
type KeepPolicy int

const (
	// KeepRandom keeps a seed-determined prefix of each file's unsynced
	// tail — including prefixes that tear a record mid-frame. This is
	// the realistic page-cache model and the default.
	KeepRandom KeepPolicy = iota
	// KeepNone drops every unsynced byte: the page cache never wrote
	// back. The adversarial choice for catching missing fsyncs.
	KeepNone
	// KeepAll keeps every written byte: the page cache happened to flush
	// everything before the crash.
	KeepAll
)

// TraceOp is one recorded filesystem operation.
type TraceOp struct {
	Index int64
	Kind  string // mkdir create open write sync close dirsync rename remove truncate readdir readfile stat
	Path  string
	Bytes int
}

// writeSpan is one random-access write that has not yet been covered by a
// Sync: the unit of the out-of-order writeback crash model.
type writeSpan struct {
	off  int64
	data []byte
}

// memFile is one file's volatile and durable state.
type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash (fsync watermark)
	// Random-access state (OpenRandom files). base is the durable image as
	// of the last Sync; spans are the WriteAt spans issued since. A crash
	// keeps base plus an arbitrary (seed-chosen) subset of spans, possibly
	// tearing one mid-span — real page caches write dirty pages back in any
	// order, so no prefix property holds across spans.
	random bool
	base   []byte
	spans  []writeSpan
	// linked: the volatile directory has an entry for this name.
	// durableLinked: the on-disk directory is guaranteed to have it.
	// A file with linked != durableLinked has a directory operation
	// pending a SyncDir; a crash may land on either side of it. A file
	// with linked == false lingers as a ghost until the SyncDir that
	// makes its removal durable.
	linked        bool
	durableLinked bool
	// renamedTo names the entry this ghost's content moved to, so the
	// crash model never drops both sides of a not-yet-synced rename.
	renamedTo string
}

// FaultFS is the in-memory, fault-injecting FS implementation. The zero
// value is not usable; construct with NewMem. All faults are disabled by
// default — a fresh FaultFS is simply a deterministic in-memory disk.
//
// Safe for concurrent use (one mutex; the WAL's writer is serialized
// anyway, only snapshots and recovery overlap it).
type FaultFS struct {
	mu        sync.Mutex
	seed      int64
	crashAt   int64 // op index that triggers the crash; <0 disabled
	crashed   bool
	dropSyncs bool
	keep      KeepPolicy
	failOps   map[int64]error
	tears     map[int64]int
	nops      int64
	trace     []TraceOp
	files     map[string]*memFile
	dirs      map[string]bool
}

// NewMem returns an empty in-memory FS with every fault disabled. The
// seed drives the crash model's byte-level tearing decisions, so the same
// seed and fault script reproduce the same post-crash image.
func NewMem(seed int64) *FaultFS {
	return &FaultFS{
		seed:    seed,
		crashAt: -1,
		failOps: make(map[int64]error),
		tears:   make(map[int64]int),
		files:   make(map[string]*memFile),
		dirs:    make(map[string]bool),
	}
}

// CrashAtOp arms the crash model: the operation with global index n (and
// every one after it) fails with ErrCrashed. If that operation is a
// write, a seed-determined prefix of it still reaches the volatile state
// — the crash interrupts the write mid-copy. Negative disables.
func (f *FaultFS) CrashAtOp(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// DropSyncs makes every file Sync lie: it returns success without
// advancing the durability watermark. Directory syncs are unaffected, so
// files keep their names and lose their contents — the sharpest version
// of the fsync-dropped-before-ack bug.
func (f *FaultFS) DropSyncs(drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropSyncs = drop
}

// FailOp scripts the operation at index idx to fail with err (wrapped
// semantics are the caller's choice; ErrInjected is conventional).
func (f *FaultFS) FailOp(idx int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOps[idx] = err
}

// TearWrite scripts the write at op index idx to persist only its first
// keep bytes and return ErrInjected — a short write at an arbitrary byte.
func (f *FaultFS) TearWrite(idx int64, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tears[idx] = keep
}

// SetKeepPolicy selects the unsynced-tail policy CrashImage applies.
func (f *FaultFS) SetKeepPolicy(p KeepPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.keep = p
}

// Crashed reports whether the crash point fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// OpCount returns the number of operations performed so far; crash-point
// enumeration iterates indices [0, OpCount) of a reference run.
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nops
}

// Trace returns a copy of the operation trace.
func (f *FaultFS) Trace() []TraceOp {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]TraceOp(nil), f.trace...)
}

// step records one operation, then applies the crash model and scripted
// faults. Caller must hold f.mu.
func (f *FaultFS) step(kind, path string, bytes int) (int64, error) {
	idx := f.nops
	f.nops++
	f.trace = append(f.trace, TraceOp{Index: idx, Kind: kind, Path: path, Bytes: bytes})
	if f.crashed {
		return idx, ErrCrashed
	}
	if f.crashAt >= 0 && idx >= f.crashAt {
		f.crashed = true
		return idx, ErrCrashed
	}
	if err, ok := f.failOps[idx]; ok {
		return idx, err
	}
	return idx, nil
}

// tornLen derives a deterministic tear point in [0, n] from the seed and
// an op index.
func tornLen(seed, idx int64, n int) int {
	if n == 0 {
		return 0
	}
	r := rand.New(rand.NewSource(seed ^ (idx+1)*0x9e3779b97f4a7c))
	return r.Intn(n + 1)
}

func notExist(op, path string) error {
	return &os.PathError{Op: op, Path: path, Err: os.ErrNotExist}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, _ os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("mkdir", path, 0); err != nil {
		return err
	}
	f.dirs[filepath.Clean(path)] = true
	return nil
}

// OpenFile implements FS for the flag combinations the WAL uses.
func (f *FaultFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	kind := "open"
	if flag&os.O_CREATE != 0 {
		kind = "create"
	}
	if _, err := f.step(kind, name, 0); err != nil {
		return nil, err
	}
	mf := f.files[name]
	exists := mf != nil && mf.linked
	switch {
	case exists && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !exists && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case !exists:
		if mf == nil {
			mf = &memFile{}
			f.files[name] = mf
		}
		mf.data, mf.synced = nil, 0
		mf.linked = true
		mf.renamedTo = ""
	case flag&os.O_TRUNC != 0:
		mf.data, mf.synced = nil, 0
	}
	return &memHandle{fs: f, name: name, f: mf}, nil
}

// OpenRandom implements FS for the flag combinations the pager uses
// (O_RDWR, optionally with O_CREATE and O_TRUNC).
func (f *FaultFS) OpenRandom(name string, flag int, _ os.FileMode) (RandomFile, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("openrand", name, 0); err != nil {
		return nil, err
	}
	mf := f.files[name]
	exists := mf != nil && mf.linked
	switch {
	case exists && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !exists && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case !exists:
		if mf == nil {
			mf = &memFile{}
			f.files[name] = mf
		}
		mf.data, mf.synced = nil, 0
		mf.linked = true
		mf.renamedTo = ""
	case flag&os.O_TRUNC != 0:
		mf.data, mf.synced = nil, 0
	}
	// Whatever content the file carries now is its durable base (it came
	// from a synced image or a fresh create); random writes layer on top.
	mf.random = true
	mf.base = append([]byte(nil), mf.data...)
	mf.spans = nil
	return &randHandle{memHandle{fs: f, name: name, f: mf}}, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("readdir", name, 0); err != nil {
		return nil, err
	}
	if !f.dirs[name] {
		return nil, notExist("open", name)
	}
	var names []string
	for p, mf := range f.files {
		if mf.linked && filepath.Dir(p) == name {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	entries := make([]os.DirEntry, len(names))
	for i, n := range names {
		entries[i] = dirEntry(n)
	}
	return entries, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("readfile", name, 0); err != nil {
		return nil, err
	}
	mf := f.files[name]
	if mf == nil || !mf.linked {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), mf.data...), nil
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("stat", name, 0); err != nil {
		return nil, err
	}
	mf := f.files[name]
	if mf == nil || !mf.linked {
		return nil, notExist("stat", name)
	}
	return fileInfo{name: filepath.Base(name), size: int64(len(mf.data))}, nil
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("truncate", name, int(size)); err != nil {
		return err
	}
	mf := f.files[name]
	if mf == nil || !mf.linked {
		return notExist("truncate", name)
	}
	if int(size) < len(mf.data) {
		mf.data = mf.data[:size]
		if mf.synced > int(size) {
			mf.synced = int(size)
		}
	}
	return nil
}

// Rename implements FS. The old name lingers as a ghost that a crash may
// resurrect until SyncDir makes the rename durable.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if _, err := f.step("rename", oldpath+" -> "+newpath, 0); err != nil {
		return err
	}
	of := f.files[oldpath]
	if of == nil || !of.linked {
		return notExist("rename", oldpath)
	}
	nf := f.files[newpath]
	if nf == nil {
		nf = &memFile{}
		f.files[newpath] = nf
	}
	nf.data = append([]byte(nil), of.data...)
	nf.synced = of.synced
	nf.linked = true
	of.linked = false
	of.renamedTo = newpath
	return nil
}

// Remove implements FS. The entry lingers as a ghost (crash may
// resurrect its durable content) until SyncDir.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.step("remove", name, 0); err != nil {
		return err
	}
	mf := f.files[name]
	if mf == nil || !mf.linked {
		return notExist("remove", name)
	}
	mf.linked = false
	return nil
}

// SyncDir implements FS: every pending directory operation in dir
// becomes durable, and fully unlinked ghosts are garbage collected.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if _, err := f.step("dirsync", dir, 0); err != nil {
		return err
	}
	for p, mf := range f.files {
		if filepath.Dir(p) != dir {
			continue
		}
		mf.durableLinked = mf.linked
		if !mf.linked {
			delete(f.files, p)
		} else {
			mf.renamedTo = ""
		}
	}
	return nil
}

// CrashImage materializes the durable view of the filesystem: what a
// process starting after the crash would find on disk. Files keep their
// synced prefix plus a KeepPolicy-chosen amount of unsynced tail;
// entries with a pending directory operation land on a seed-determined
// side of the crash. The image is a fresh fault-free FaultFS, so
// recovery code runs against it unmodified. Deterministic for a given
// (seed, crash point, fault script).
func (f *FaultFS) CrashImage() *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	img := NewMem(f.seed + 1)
	for d := range f.dirs {
		img.dirs[d] = true
	}
	rng := rand.New(rand.NewSource(f.seed ^ (f.crashAt+2)*0x9e3779b97f4a7c))
	paths := make([]string, 0, len(f.files))
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic rng consumption order
	exists := make(map[string]bool, len(paths))
	for _, p := range paths {
		mf := f.files[p]
		switch {
		case mf.linked && mf.durableLinked:
			exists[p] = true
		case mf.linked || mf.durableLinked:
			// Created/renamed/removed but the directory was never
			// synced: the entry may have hit the disk or not.
			exists[p] = rng.Intn(2) == 0
		}
	}
	// A not-yet-synced rename leaves the old entry or the new one — the
	// directory update is atomic, so never neither.
	for _, p := range paths {
		mf := f.files[p]
		if !exists[p] && mf.durableLinked && mf.renamedTo != "" && !exists[mf.renamedTo] {
			exists[p] = true
		}
	}
	for _, p := range paths {
		if !exists[p] {
			continue
		}
		mf := f.files[p]
		if mf.random {
			data := crashRandomData(rng, mf, f.keep)
			img.files[p] = &memFile{
				data:          data,
				synced:        len(data),
				linked:        true,
				durableLinked: true,
			}
			continue
		}
		n := len(mf.data)
		switch f.keep {
		case KeepNone:
			n = mf.synced
		case KeepRandom:
			n = mf.synced + rng.Intn(len(mf.data)-mf.synced+1)
		}
		img.files[p] = &memFile{
			data:          append([]byte(nil), mf.data[:n]...),
			synced:        n,
			linked:        true,
			durableLinked: true,
		}
	}
	return img
}

// crashRandomData materializes a random-access file's post-crash content:
// the synced base plus a policy-chosen subset of the unsynced WriteAt
// spans. Under KeepRandom each span independently lands in full, partially
// (torn at an arbitrary byte), or not at all — spans are page-cache dirty
// ranges and real writeback is unordered, so a LATER span may survive a
// crash that an EARLIER one did not. File growth past the base survives
// exactly as far as surviving spans extend it.
func crashRandomData(rng *rand.Rand, mf *memFile, keep KeepPolicy) []byte {
	data := append([]byte(nil), mf.base...)
	apply := func(sp writeSpan, n int) {
		end := sp.off + int64(n)
		if int64(len(data)) < end {
			grown := make([]byte, end)
			copy(grown, data)
			data = grown
		}
		copy(data[sp.off:end], sp.data[:n])
	}
	for _, sp := range mf.spans {
		switch keep {
		case KeepAll:
			apply(sp, len(sp.data))
		case KeepNone:
			// Dropped entirely.
		default: // KeepRandom
			switch rng.Intn(3) {
			case 0:
				// Dropped: this dirty range never wrote back.
			case 1:
				apply(sp, len(sp.data))
			default:
				apply(sp, rng.Intn(len(sp.data)+1))
			}
		}
	}
	return data
}

// memHandle is an open append-only file on a FaultFS.
type memHandle struct {
	fs     *FaultFS
	name   string
	f      *memFile
	closed bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	idx, err := h.fs.step("write", h.name, len(p))
	if err != nil {
		if errors.Is(err, ErrCrashed) && idx == h.fs.crashAt {
			// The crash interrupts this very write: a seed-determined
			// prefix reaches the page cache before the model dies.
			h.f.data = append(h.f.data, p[:tornLen(h.fs.seed, idx, len(p))]...)
		}
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if keep, ok := h.fs.tears[idx]; ok {
		if keep > len(p) {
			keep = len(p)
		}
		h.f.data = append(h.f.data, p[:keep]...)
		return keep, ErrInjected
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.step("sync", h.name, 0); err != nil {
		return err
	}
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.dropSyncs {
		return nil // the lie: success without durability
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.step("close", h.name, 0); err != nil {
		return err
	}
	h.closed = true
	return nil
}

// randHandle is an open random-access file on a FaultFS. It shares the
// append-only handle's Name/Write/Close and overrides Sync with span
// semantics.
type randHandle struct {
	memHandle
}

func (h *randHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.step("readat", h.name, len(p)); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if off < 0 {
		return 0, &os.PathError{Op: "readat", Path: h.name, Err: os.ErrInvalid}
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *randHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	idx, err := h.fs.step("writeat", h.name, len(p))
	if err != nil {
		if errors.Is(err, ErrCrashed) && idx == h.fs.crashAt {
			// The crash interrupts this very write: a seed-determined
			// prefix becomes a dirty span that may or may not survive.
			if cut := tornLen(h.fs.seed, idx, len(p)); cut > 0 {
				h.apply(p[:cut], off)
			}
		}
		return 0, err
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if off < 0 {
		return 0, &os.PathError{Op: "writeat", Path: h.name, Err: os.ErrInvalid}
	}
	if keep, ok := h.fs.tears[idx]; ok {
		if keep > len(p) {
			keep = len(p)
		}
		h.apply(p[:keep], off)
		return keep, ErrInjected
	}
	h.apply(p, off)
	return len(p), nil
}

// apply lands bytes in the volatile view and records the dirty span.
// Caller must hold fs.mu.
func (h *randHandle) apply(p []byte, off int64) {
	mf := h.f
	end := off + int64(len(p))
	if int64(len(mf.data)) < end {
		grown := make([]byte, end)
		copy(grown, mf.data)
		mf.data = grown
	}
	copy(mf.data[off:end], p)
	mf.spans = append(mf.spans, writeSpan{off: off, data: append([]byte(nil), p...)})
}

func (h *randHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.step("sync", h.name, 0); err != nil {
		return err
	}
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.dropSyncs {
		return nil // the lie: success without durability
	}
	h.f.base = append([]byte(nil), h.f.data...)
	h.f.spans = nil
	h.f.synced = len(h.f.data)
	return nil
}

// fileInfo is the minimal os.FileInfo Stat returns.
type fileInfo struct {
	name string
	size int64
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() os.FileMode  { return 0o644 }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return false }
func (fi fileInfo) Sys() any           { return nil }

// dirEntry is the minimal os.DirEntry ReadDir returns.
type dirEntry string

func (d dirEntry) Name() string               { return string(d) }
func (d dirEntry) IsDir() bool                { return false }
func (d dirEntry) Type() os.FileMode          { return 0 }
func (d dirEntry) Info() (os.FileInfo, error) { return fileInfo{name: string(d)}, nil }
