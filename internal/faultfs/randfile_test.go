package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openRand(t *testing.T, fs FS, name string) RandomFile {
	t.Helper()
	f, err := fs.OpenRandom(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenRandom(%s): %v", name, err)
	}
	return f
}

func TestRandomFileRoundTrip(t *testing.T) {
	fs := NewMem(1)
	if err := fs.MkdirAll("/pg", 0o755); err != nil {
		t.Fatal(err)
	}
	f := openRand(t, fs, "/pg/pages")
	if _, err := f.WriteAt([]byte("hellohello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("WORLD"), 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloWORLD" {
		t.Fatalf("read back %q", buf)
	}
	// Sparse write extends with zeros.
	if _, err := f.WriteAt([]byte("x"), 20); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 21)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[10] != 0 || buf[20] != 'x' {
		t.Fatalf("sparse region = %q", buf)
	}
	// Short read past EOF.
	if n, err := f.ReadAt(make([]byte, 8), 18); n != 3 || err != io.EOF {
		t.Fatalf("tail read = (%d, %v), want (3, EOF)", n, err)
	}
	if n, err := f.ReadAt(make([]byte, 8), 100); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = (%d, %v), want (0, EOF)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// O_TRUNC reopens empty.
	f2, err := fs.OpenRandom("/pg/pages", os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f2.ReadAt(make([]byte, 1), 0); n != 0 || err != io.EOF {
		t.Fatalf("post-trunc read = (%d, %v), want (0, EOF)", n, err)
	}
}

// Synced random writes must survive any crash; unsynced spans must land as
// full / torn / dropped, independently per span — never garbage outside a
// written range.
func TestRandomFileCrashSpans(t *testing.T) {
	fs := NewMem(7)
	fs.MkdirAll("/pg", 0o755)
	f := openRand(t, fs, "/pg/pages")
	fs.SyncDir("/pg") // make the entry itself durable; spans are the subject
	synced := bytes.Repeat([]byte{0xAA}, 64)
	if _, err := f.WriteAt(synced, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Two unsynced spans: one overwriting the synced range, one extending.
	spanA := bytes.Repeat([]byte{0xBB}, 16)
	spanB := bytes.Repeat([]byte{0xCC}, 16)
	if _, err := f.WriteAt(spanA, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(spanB, 64); err != nil {
		t.Fatal(err)
	}

	img := fs.CrashImage()
	got, err := img.ReadFile("/pg/pages")
	if err != nil {
		t.Fatalf("crash image lost the file: %v", err)
	}
	if len(got) < 64 {
		t.Fatalf("crash image lost synced bytes: len=%d", len(got))
	}
	for i, b := range got {
		switch {
		case i >= 8 && i < 24:
			if b != 0xAA && b != 0xBB {
				t.Fatalf("byte %d = %#x, want synced 0xAA or span 0xBB", i, b)
			}
		case i < 64:
			if b != 0xAA {
				t.Fatalf("synced byte %d = %#x, want 0xAA", i, b)
			}
		default:
			if b != 0xCC {
				t.Fatalf("extension byte %d = %#x, want 0xCC", i, b)
			}
		}
	}

	// KeepNone: only the synced base survives.
	fs.SetKeepPolicy(KeepNone)
	got, err = fs.CrashImage().ReadFile("/pg/pages")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, synced) {
		t.Fatalf("KeepNone image = %d bytes (first diff at %d), want the 64-byte synced base", len(got), bytes.IndexFunc(got, func(r rune) bool { return r != 0xAA }))
	}

	// KeepAll: everything survives.
	fs.SetKeepPolicy(KeepAll)
	got, err = fs.CrashImage().ReadFile("/pg/pages")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 || got[8] != 0xBB || got[79] != 0xCC {
		t.Fatalf("KeepAll image wrong: len=%d", len(got))
	}
}

// Out-of-order writeback: a later span may survive a crash that dropped an
// earlier one. Sweep seeds until both orders are observed.
func TestRandomFileWritebackIsUnordered(t *testing.T) {
	sawLaterWithoutEarlier := false
	sawEarlierWithoutLater := false
	for seed := int64(0); seed < 200 && !(sawLaterWithoutEarlier && sawEarlierWithoutLater); seed++ {
		fs := NewMem(seed)
		fs.MkdirAll("/pg", 0o755)
		f := openRand(t, fs, "/pg/pages")
		f.WriteAt(bytes.Repeat([]byte{1}, 8), 0)  // earlier span
		f.WriteAt(bytes.Repeat([]byte{2}, 8), 32) // later span
		got, err := fs.CrashImage().ReadFile("/pg/pages")
		if err != nil {
			continue // the whole entry may miss: directory never synced
		}
		earlier := len(got) >= 8 && got[0] == 1 && got[7] == 1
		later := len(got) == 40 && got[32] == 2 && got[39] == 2
		if later && !earlier {
			sawLaterWithoutEarlier = true
		}
		if earlier && !later {
			sawEarlierWithoutLater = true
		}
	}
	if !sawLaterWithoutEarlier || !sawEarlierWithoutLater {
		t.Fatalf("crash model never reordered writeback (later-only=%v earlier-only=%v): spans are not independent",
			sawLaterWithoutEarlier, sawEarlierWithoutLater)
	}
}

// Crash-at-op enumeration covers random-file operations: the op that
// crashes mid-WriteAt leaves at most a torn prefix of that span.
func TestRandomFileCrashAtWriteAt(t *testing.T) {
	// Reference run to find the writeat index.
	ref := NewMem(3)
	ref.MkdirAll("/pg", 0o755)
	rf := openRand(t, ref, "/pg/pages")
	rf.WriteAt(bytes.Repeat([]byte{9}, 32), 0)
	var writeIdx int64 = -1
	for _, op := range ref.Trace() {
		if op.Kind == "writeat" {
			writeIdx = op.Index
		}
	}
	if writeIdx < 0 {
		t.Fatal("no writeat op recorded in trace")
	}

	fs := NewMem(3)
	fs.CrashAtOp(writeIdx)
	fs.MkdirAll("/pg", 0o755)
	f := openRand(t, fs, "/pg/pages")
	if _, err := f.WriteAt(bytes.Repeat([]byte{9}, 32), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt at crash index returned %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not fire")
	}
	fs.SetKeepPolicy(KeepAll)
	got, err := fs.CrashImage().ReadFile("/pg/pages")
	if err != nil {
		return // entry itself lost: fine
	}
	if len(got) > 32 {
		t.Fatalf("torn WriteAt left %d bytes, more than written", len(got))
	}
	for i, b := range got {
		if b != 9 {
			t.Fatalf("torn prefix byte %d = %#x, want 9", i, b)
		}
	}
}

func TestDiskOpenRandomPassthrough(t *testing.T) {
	dir := t.TempDir()
	f, err := Disk.OpenRandom(filepath.Join(dir, "pages"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("abcd"), 4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 4); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcd" {
		t.Fatalf("disk round trip = %q", buf)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
