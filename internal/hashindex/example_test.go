package hashindex_test

import (
	"fmt"

	"mxtasking/internal/epoch"
	"mxtasking/internal/hashindex"
	"mxtasking/internal/mxtask"
)

// A task-based hash table: every bucket is an annotated resource, so the
// runtime injects all synchronization.
func Example() {
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Batched, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	idx := hashindex.New(rt, hashindex.SyncOptimistic, 1024)
	for k := uint64(0); k < 100; k++ {
		idx.Put(k, k+1000)
	}
	rt.Drain()

	get := idx.Get(42)
	rt.Drain()
	fmt.Println(get.Result, get.Found)
	// Output:
	// 1042 true
}
