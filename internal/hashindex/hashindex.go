// Package hashindex is a task-based hash table built on MxTasking,
// demonstrating that annotation-driven synchronization generalizes beyond
// trees (the paper's §2.1 cites task-based B-trees *and hash tables*).
//
// The table is an array of buckets; every bucket is an annotated data
// object, so the runtime — not this package — synchronizes access:
//
//   - with IsolationExclusive annotations, all operations on a bucket are
//     serialized through the bucket's task pool (zero latches);
//   - with the optimistic annotation set, lookups run validated and
//     writers take the bucket's version latch.
//
// Operations are asynchronous like the Blink-tree's: they spawn exactly
// one task (hashing replaces traversal), so the per-op task overhead is
// minimal — the structure the paper's granularity discussion (§5.3) calls
// implicit.
package hashindex

import (
	"mxtasking/internal/mxtask"
)

// SyncMode selects the annotation set for buckets.
type SyncMode int

const (
	// SyncSerialized: every bucket access is serialized by scheduling.
	SyncSerialized SyncMode = iota
	// SyncOptimistic: validated reads, latched writes.
	SyncOptimistic
)

// String names the mode.
func (m SyncMode) String() string {
	if m == SyncSerialized {
		return "serialized"
	}
	return "optimistic"
}

// bucket is one chained bucket. The chain is mutated only under the
// bucket resource's injected synchronization.
type bucket struct {
	res  *mxtask.Resource
	head *entry
}

type entry struct {
	key   uint64
	value uint64
	next  *entry
}

// Prefetch pulls the first chain links toward the cache (the annotated
// object of every bucket task).
func (b *bucket) Prefetch() {
	var sink uint64
	for e, i := b.head, 0; e != nil && i < 4; e, i = e.next, i+1 {
		sink += e.key
	}
	_ = sink
}

// Index is the task-based hash table.
type Index struct {
	rt      *mxtask.Runtime
	mode    SyncMode
	buckets []bucket
	mask    uint64
}

// Op is one asynchronous operation; read Result/Found after completion.
type Op struct {
	idx   *Index
	key   uint64
	value uint64
	kind  opKind

	Result uint64
	Found  bool

	// Done, when non-nil, is spawned with the Op as Arg on completion.
	Done mxtask.Func
}

type opKind uint8

const (
	opGet opKind = iota
	opPut
	opDelete
)

// New creates an index with capacity for roughly n entries (bucket count
// is the next power of two above n/4, i.e. mean chain length ~4).
func New(rt *mxtask.Runtime, mode SyncMode, n int) *Index {
	nBuckets := 16
	for nBuckets < n/4 {
		nBuckets <<= 1
	}
	idx := &Index{rt: rt, mode: mode, buckets: make([]bucket, nBuckets), mask: uint64(nBuckets - 1)}
	for i := range idx.buckets {
		b := &idx.buckets[i]
		switch mode {
		case SyncSerialized:
			b.res = rt.CreateResource(b, 64,
				mxtask.IsolationExclusive, mxtask.RWBalanced, mxtask.FrequencyNormal)
		default:
			b.res = rt.CreateResource(b, 64,
				mxtask.IsolationExclusiveWriteSharedRead, mxtask.RWBalanced, mxtask.FrequencyLow)
		}
	}
	return idx
}

// Mode returns the index's annotation mode.
func (x *Index) Mode() SyncMode { return x.mode }

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	return k ^ (k >> 33)
}

func (x *Index) bucketFor(key uint64) *bucket {
	return &x.buckets[hash64(key)&x.mask]
}

// spawn creates the single task an operation needs.
func (x *Index) spawn(op *Op) {
	b := x.bucketFor(op.key)
	mode := mxtask.ReadOnly
	if op.kind != opGet {
		mode = mxtask.Write
	}
	task := x.rt.NewTask(bucketTask, op)
	task.Arg2 = b
	task.AnnotateResource(b.res, mode)
	x.rt.Spawn(task)
}

// Get fetches key asynchronously.
func (x *Index) Get(key uint64) *Op {
	op := &Op{idx: x, key: key, kind: opGet}
	x.spawn(op)
	return op
}

// GetWith is Get with a completion task.
func (x *Index) GetWith(key uint64, done mxtask.Func) *Op {
	op := &Op{idx: x, key: key, kind: opGet, Done: done}
	x.spawn(op)
	return op
}

// Put stores key=value asynchronously (overwrites).
func (x *Index) Put(key, value uint64) *Op {
	op := &Op{idx: x, key: key, value: value, kind: opPut}
	x.spawn(op)
	return op
}

// Delete removes key asynchronously.
func (x *Index) Delete(key uint64) *Op {
	op := &Op{idx: x, key: key, kind: opDelete}
	x.spawn(op)
	return op
}

// bucketTask executes one operation on its bucket. The body is
// restartable for Get (pure read + idempotent Op writes); Put/Delete run
// under the bucket's write synchronization.
func bucketTask(ctx *mxtask.Context, t *mxtask.Task) {
	op := t.Arg.(*Op)
	b := t.Arg2.(*bucket)
	switch op.kind {
	case opGet:
		op.Found = false
		for e := b.head; e != nil; e = e.next {
			if e.key == op.key {
				op.Result = e.value
				op.Found = true
				break
			}
		}
	case opPut:
		op.Found = false
		for e := b.head; e != nil; e = e.next {
			if e.key == op.key {
				e.value = op.value
				op.Found = true
				break
			}
		}
		if !op.Found {
			b.head = &entry{key: op.key, value: op.value, next: b.head}
		}
	case opDelete:
		op.Found = false
		for p := &b.head; *p != nil; p = &(*p).next {
			if (*p).key == op.key {
				removed := *p
				*p = removed.next
				op.Found = true
				// Readers may still traverse the removed entry
				// optimistically; retire it through EBMR.
				ctx.Retire(func() { removed.next = nil })
				break
			}
		}
	}
	if op.Done != nil {
		ctx.Spawn(ctx.NewTask(op.Done, op))
	}
}

// Count returns the number of entries (quiescent helper).
func (x *Index) Count() int {
	n := 0
	for i := range x.buckets {
		for e := x.buckets[i].head; e != nil; e = e.next {
			n++
		}
	}
	return n
}
