package hashindex

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

var modes = []SyncMode{SyncSerialized, SyncOptimistic}

func newRT(workers int) *mxtask.Runtime {
	return mxtask.New(mxtask.Config{
		Workers:       workers,
		EpochPolicy:   epoch.Batched,
		EpochInterval: -1,
	})
}

func TestBasic(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(2)
			rt.Start()
			defer rt.Stop()
			idx := New(rt, mode, 1000)

			get := idx.Get(1)
			rt.Drain()
			if get.Found {
				t.Fatal("empty index found a key")
			}
			put := idx.Put(1, 10)
			rt.Drain()
			if put.Found {
				t.Fatal("fresh put reported overwrite")
			}
			get = idx.Get(1)
			rt.Drain()
			if !get.Found || get.Result != 10 {
				t.Fatalf("Get = %+v", get)
			}
			over := idx.Put(1, 11)
			rt.Drain()
			if !over.Found {
				t.Fatal("overwrite not reported")
			}
			del := idx.Delete(1)
			rt.Drain()
			if !del.Found {
				t.Fatal("delete missed existing key")
			}
			del = idx.Delete(1)
			rt.Drain()
			if del.Found {
				t.Fatal("double delete succeeded")
			}
		})
	}
}

func TestBulkAndChains(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(4)
			rt.Start()
			defer rt.Stop()
			// Tiny capacity forces long chains.
			idx := New(rt, mode, 64)
			const n = 5000
			for i := uint64(0); i < n; i++ {
				idx.Put(i, i*2)
			}
			rt.Drain()
			if c := idx.Count(); c != n {
				t.Fatalf("Count = %d, want %d", c, n)
			}
			ops := make([]*Op, n)
			for i := uint64(0); i < n; i++ {
				ops[i] = idx.Get(i)
			}
			rt.Drain()
			for i := uint64(0); i < n; i++ {
				if !ops[i].Found || ops[i].Result != i*2 {
					t.Fatalf("Get(%d) = %+v", i, ops[i])
				}
			}
		})
	}
}

func TestDoneFiresOnce(t *testing.T) {
	rt := newRT(2)
	rt.Start()
	defer rt.Stop()
	idx := New(rt, SyncOptimistic, 100)
	for i := uint64(0); i < 1000; i++ {
		idx.Put(i, i)
	}
	rt.Drain()
	var fired atomic.Int64
	for i := uint64(0); i < 1000; i++ {
		idx.GetWith(i, func(_ *mxtask.Context, task *mxtask.Task) {
			op := task.Arg.(*Op)
			if !op.Found {
				t.Errorf("existing key %d not found", op.key)
			}
			fired.Add(1)
		})
	}
	rt.Drain()
	if fired.Load() != 1000 {
		t.Fatalf("Done fired %d times, want 1000", fired.Load())
	}
}

func TestMapEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rt := newRT(2)
		rt.Start()
		defer rt.Stop()
		idx := New(rt, SyncOptimistic, 128)
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(seed))
		for _, o := range ops {
			key := uint64(o % 251)
			switch rng.Intn(4) {
			case 0, 1:
				val := rng.Uint64()
				idx.Put(key, val)
				rt.Drain()
				ref[key] = val
			case 2:
				get := idx.Get(key)
				rt.Drain()
				want, wok := ref[key]
				if get.Found != wok || (wok && get.Result != want) {
					return false
				}
			case 3:
				del := idx.Delete(key)
				rt.Drain()
				if _, wok := ref[key]; del.Found != wok {
					return false
				}
				delete(ref, key)
			}
		}
		rt.Drain()
		return idx.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	rt := newRT(4)
	rt.Start()
	defer rt.Stop()
	idx := New(rt, SyncOptimistic, 512)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		idx.Put(i, i)
	}
	rt.Drain()
	var bad atomic.Int64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(n))
		if rng.Intn(2) == 0 {
			idx.Put(k, k+n*uint64(rng.Intn(4)))
		} else {
			idx.GetWith(k, func(_ *mxtask.Context, task *mxtask.Task) {
				op := task.Arg.(*Op)
				if !op.Found || op.Result%n != op.key {
					bad.Add(1)
				}
			})
		}
	}
	rt.Drain()
	if bad.Load() != 0 {
		t.Fatalf("%d inconsistent reads", bad.Load())
	}
	if c := idx.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
}

func TestDeleteWithConcurrentReaders(t *testing.T) {
	rt := newRT(4)
	rt.Start()
	defer rt.Stop()
	idx := New(rt, SyncOptimistic, 64) // long chains: deletes unlink mid-chain
	const n = 2000
	for i := uint64(0); i < n; i++ {
		idx.Put(i, i)
	}
	rt.Drain()
	// Interleave deletes of odd keys with reads of even keys; even keys
	// must never disappear.
	var lost atomic.Int64
	for i := uint64(0); i < n; i += 2 {
		idx.Delete(i + 1)
		idx.GetWith(i, func(_ *mxtask.Context, task *mxtask.Task) {
			if op := task.Arg.(*Op); !op.Found {
				lost.Add(1)
			}
		})
	}
	rt.Drain()
	if lost.Load() != 0 {
		t.Fatalf("%d surviving keys vanished during deletes", lost.Load())
	}
	if c := idx.Count(); c != n/2 {
		t.Fatalf("Count = %d, want %d", c, n/2)
	}
}
