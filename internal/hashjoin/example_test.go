package hashjoin_test

import (
	"fmt"

	"mxtasking/internal/epoch"
	"mxtasking/internal/hashjoin"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/tpch"
)

// A morsel-style task-based join: builds run first, probes are released by
// the runtime's dependency barriers.
func Example() {
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	customers := tpch.Customers(1000, 1)
	orders := tpch.Orders(10000, 1000, 2)
	join := hashjoin.NewJoin(rt, customers, orders, 256)
	fmt.Println("output tuples:", join.Run())
	// Output:
	// output tuples: 10000
}
