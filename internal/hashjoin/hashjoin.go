// Package hashjoin implements the morsel-style, task-based parallel hash
// join of paper §5.3 (Figure 9): the inputs are partitioned across workers,
// each worker builds a core-local hash table from its customer partition,
// and probe tasks — carrying a configurable number of records each — join
// the orders partition against it. Partitions are pinned to cores with
// task annotations, so builds and probes run NUMA-locally and without
// synchronization, exploiting run-to-completion.
//
// The build→probe ordering uses the runtime's dependency barriers (§4.1's
// generalized scheduling-based synchronization): probe tasks are spawned
// up front, annotated after the partition's barrier, and the runtime
// withholds them until the last build task arrives.
package hashjoin

import (
	"sync/atomic"

	"mxtasking/internal/mxtask"
	"mxtasking/internal/tpch"
)

// Table is a minimal open-addressing hash table (linear probing) from
// customer key to nation key. Each worker owns one, so no synchronization
// is needed.
type Table struct {
	keys  []uint64 // 0 = empty (custkeys start at 1)
	vals  []uint8
	mask  uint64
	count int
}

// NewTable sizes a table for n entries at 50 % max load.
func NewTable(n int) *Table {
	capacity := 16
	for capacity < n*2 {
		capacity <<= 1
	}
	return &Table{
		keys: make([]uint64, capacity),
		vals: make([]uint8, capacity),
		mask: uint64(capacity - 1),
	}
}

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	return k ^ (k >> 33)
}

// Insert adds key -> val (keys must be non-zero and unique).
func (t *Table) Insert(key uint64, val uint8) {
	i := hash64(key) & t.mask
	for t.keys[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.vals[i] = val
	t.count++
}

// Lookup finds key.
func (t *Table) Lookup(key uint64) (uint8, bool) {
	i := hash64(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Count returns the number of entries.
func (t *Table) Count() int { return t.count }

// Join is a prepared customers ⋈ orders join on a runtime. recordsPerTask
// is the task granularity swept in Figure 9.
type Join struct {
	rt             *mxtask.Runtime
	recordsPerTask int

	custParts  [][]tpch.Customer
	orderParts [][]tpch.Order
	tables     []*Table
	barriers   []*mxtask.Barrier // build completion per partition
	output     atomic.Int64
}

// morsel identifies one build or probe task's slice of a partition.
type morsel struct {
	j    *Join
	part int
	lo   int
	hi   int
}

// NewJoin prepares a join of customers ⋈ orders on the runtime.
func NewJoin(rt *mxtask.Runtime, customers []tpch.Customer, orders []tpch.Order, recordsPerTask int) *Join {
	if recordsPerTask < 1 {
		recordsPerTask = 1
	}
	j := &Join{rt: rt, recordsPerTask: recordsPerTask}
	w := rt.Workers()
	j.custParts = make([][]tpch.Customer, w)
	j.orderParts = make([][]tpch.Order, w)
	j.tables = make([]*Table, w)
	j.barriers = make([]*mxtask.Barrier, w)

	// Partition by join-key hash so matching rows land in the same
	// partition (and therefore on the same core).
	for _, c := range customers {
		p := int(hash64(c.CustKey) % uint64(w))
		j.custParts[p] = append(j.custParts[p], c)
	}
	for _, o := range orders {
		p := int(hash64(o.CustKey) % uint64(w))
		j.orderParts[p] = append(j.orderParts[p], o)
	}
	for p := 0; p < w; p++ {
		j.tables[p] = NewTable(len(j.custParts[p]) + 1)
	}
	return j
}

// tasksFor splits n records into morsel bounds of the join's granularity.
func (j *Join) tasksFor(n int) int {
	return (n + j.recordsPerTask - 1) / j.recordsPerTask
}

// Run executes the join to completion and returns the output-tuple count.
func (j *Join) Run() int64 {
	w := j.rt.Workers()
	// Spawn everything up front: builds run immediately, probes are
	// annotated after their partition's barrier and released by the last
	// build task's Arrive.
	for p := 0; p < w; p++ {
		builds := j.tasksFor(len(j.custParts[p]))
		if builds > 0 {
			j.barriers[p] = j.rt.NewBarrier(builds)
		}
		for lo := 0; lo < len(j.custParts[p]); lo += j.recordsPerTask {
			hi := min(lo+j.recordsPerTask, len(j.custParts[p]))
			task := j.rt.NewTask(buildTask, &morsel{j: j, part: p, lo: lo, hi: hi})
			task.AnnotateCore(p) // data affinity: partition p lives on core p
			j.rt.Spawn(task)
		}
		for lo := 0; lo < len(j.orderParts[p]); lo += j.recordsPerTask {
			hi := min(lo+j.recordsPerTask, len(j.orderParts[p]))
			task := j.rt.NewTask(probeTask, &morsel{j: j, part: p, lo: lo, hi: hi})
			task.AnnotateCore(p)
			if j.barriers[p] != nil {
				task.AnnotateAfter(j.barriers[p])
			}
			j.rt.Spawn(task)
		}
	}
	j.rt.Drain()
	return j.output.Load()
}

// buildTask inserts one morsel of customers into the partition's table.
// The partition's table is only ever touched by tasks pinned to its core
// and — thanks to run-to-completion under the pool's consume latch —
// never concurrently.
func buildTask(_ *mxtask.Context, t *mxtask.Task) {
	m := t.Arg.(*morsel)
	table := m.j.tables[m.part]
	for _, c := range m.j.custParts[m.part][m.lo:m.hi] {
		table.Insert(c.CustKey, c.NationKey)
	}
	// The last build task of the partition releases the probes.
	m.j.barriers[m.part].Arrive()
}

// probeTask joins one morsel of orders against the partition's table.
func probeTask(_ *mxtask.Context, t *mxtask.Task) {
	m := t.Arg.(*morsel)
	table := m.j.tables[m.part]
	matches := int64(0)
	for _, o := range m.j.orderParts[m.part][m.lo:m.hi] {
		if _, ok := table.Lookup(o.CustKey); ok {
			matches++
		}
	}
	m.j.output.Add(matches)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
