package hashjoin

import (
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/tpch"
)

func newRT(workers int) *mxtask.Runtime {
	return mxtask.New(mxtask.Config{
		Workers:       workers,
		EpochPolicy:   epoch.Off,
		EpochInterval: -1,
	})
}

func TestTableBasic(t *testing.T) {
	tab := NewTable(100)
	for k := uint64(1); k <= 100; k++ {
		tab.Insert(k, uint8(k%25))
	}
	if tab.Count() != 100 {
		t.Fatalf("Count = %d", tab.Count())
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := tab.Lookup(k)
		if !ok || v != uint8(k%25) {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tab.Lookup(9999); ok {
		t.Fatal("lookup of absent key succeeded")
	}
}

func TestTableCollisions(t *testing.T) {
	tab := NewTable(4)
	// Force growth-free collisions within a tiny table.
	keys := []uint64{1, 17, 33, 49}
	for i, k := range keys {
		tab.Insert(k, uint8(i))
	}
	for i, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != uint8(i) {
			t.Fatalf("collision chain broken for key %d", k)
		}
	}
}

// referenceJoin computes the expected output cardinality.
func referenceJoin(customers []tpch.Customer, orders []tpch.Order) int64 {
	set := make(map[uint64]bool, len(customers))
	for _, c := range customers {
		set[c.CustKey] = true
	}
	n := int64(0)
	for _, o := range orders {
		if set[o.CustKey] {
			n++
		}
	}
	return n
}

func TestJoinMatchesReference(t *testing.T) {
	customers := tpch.Customers(3000, 1)
	orders := tpch.Orders(30000, 3000, 2)
	want := referenceJoin(customers, orders)

	for _, granularity := range []int{1, 8, 128, 4096, 100000} {
		rt := newRT(4)
		rt.Start()
		j := NewJoin(rt, customers, orders, granularity)
		got := j.Run()
		rt.Stop()
		if got != want {
			t.Fatalf("granularity %d: output = %d, want %d", granularity, got, want)
		}
	}
}

func TestJoinSingleWorker(t *testing.T) {
	customers := tpch.Customers(500, 3)
	orders := tpch.Orders(5000, 500, 4)
	want := referenceJoin(customers, orders)
	rt := newRT(1)
	rt.Start()
	defer rt.Stop()
	if got := NewJoin(rt, customers, orders, 64).Run(); got != want {
		t.Fatalf("output = %d, want %d", got, want)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	rt := newRT(2)
	rt.Start()
	defer rt.Stop()
	if got := NewJoin(rt, nil, nil, 64).Run(); got != 0 {
		t.Fatalf("empty join produced %d tuples", got)
	}
	customers := tpch.Customers(10, 1)
	if got := NewJoin(rt, customers, nil, 64).Run(); got != 0 {
		t.Fatalf("probe-less join produced %d tuples", got)
	}
	orders := tpch.Orders(100, 10, 1)
	if got := NewJoin(rt, nil, orders, 64).Run(); got != 0 {
		t.Fatalf("build-less join produced %d tuples", got)
	}
}

func TestTPCHGeneratorShape(t *testing.T) {
	customers := tpch.Customers(900, 5)
	if len(customers) != 900 {
		t.Fatalf("customer count = %d", len(customers))
	}
	for i, c := range customers {
		if c.CustKey != uint64(i+1) {
			t.Fatalf("custkey %d at row %d", c.CustKey, i)
		}
		if c.NationKey >= 25 {
			t.Fatalf("nation key %d out of TPC-H range", c.NationKey)
		}
	}
	orders := tpch.Orders(9000, 900, 6)
	active := uint64(900 * 2 / 3)
	for _, o := range orders {
		if o.CustKey == 0 || o.CustKey > active {
			t.Fatalf("order custkey %d outside active range [1,%d]", o.CustKey, active)
		}
	}
	// Determinism.
	again := tpch.Orders(9000, 900, 6)
	for i := range orders {
		if orders[i] != again[i] {
			t.Fatal("generator not deterministic")
		}
	}
}
