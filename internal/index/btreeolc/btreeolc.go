// Package btreeolc is a from-scratch Go implementation of a B+-tree with
// Optimistic Lock Coupling (Leis, Haubenschild, Neumann: "Optimistic Lock
// Coupling: A Scalable and Efficient General-Purpose Synchronization
// Method"), the BtreeOLC baseline in Figure 12c of the MxTasks paper.
//
// Readers descend without acquiring latches, validating each node's version
// after use (coupled with the parent's validation); writers upgrade the
// optimistic read to an exclusive latch only on the nodes they modify,
// splitting full nodes eagerly on the way down. Unlike the Blink-tree there
// are no sibling links on inner nodes; restarts handle every conflict.
//
// As in the paper's index-microbench configuration, BtreeOLC does not
// implement memory reclamation (the paper notes this explicitly); nodes
// are garbage-collected by the Go runtime.
package btreeolc

import (
	"runtime"
	"sync/atomic"

	"mxtasking/internal/latch"
)

// Capacity is entries per node (~1 kB nodes with 8-byte keys and values,
// matching the paper's record format).
const Capacity = 60

type node struct {
	version latch.VersionLock
	leaf    bool
	count   int32
	keys    [Capacity]uint64
	values  [Capacity]uint64    // leaves
	childs  [Capacity + 1]*node // inner: childs[i] covers keys < keys[i]; childs[count] the rest
}

// Tree is the OLC B+-tree. The zero value is not usable; call New.
type Tree struct {
	root atomic.Pointer[node]
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.Store(&node{leaf: true})
	return t
}

// lowerBound returns the first i with keys[i] >= key (clamped for torn
// reads; validation rejects results computed from them).
func (n *node) lowerBound(key uint64) int {
	lo, hi := 0, int(n.count)
	if hi > Capacity {
		hi = Capacity
	}
	if hi < 0 {
		hi = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor picks the child slot for key in an inner node: childs[i] holds
// keys < keys[i]; keys >= keys[count-1] go to childs[count].
func (n *node) childFor(key uint64) *node {
	i := n.lowerBound(key)
	if i < int(n.count) && n.keys[i] == key {
		i++
	}
	if i > Capacity {
		i = Capacity
	}
	return n.childs[i]
}

func (n *node) full() bool { return int(n.count) == Capacity }

// splitLeaf splits a full leaf; returns new right and separator (first key
// of right). Caller holds the write lock.
func (n *node) splitLeaf() (*node, uint64) {
	mid := int(n.count) / 2
	right := &node{leaf: true}
	copy(right.keys[:], n.keys[mid:n.count])
	copy(right.values[:], n.values[mid:n.count])
	right.count = n.count - int32(mid)
	n.count = int32(mid)
	return right, right.keys[0]
}

// splitInner splits a full inner node; the middle key moves up.
func (n *node) splitInner() (*node, uint64) {
	mid := int(n.count) / 2
	sep := n.keys[mid]
	right := &node{}
	copy(right.keys[:], n.keys[mid+1:n.count])
	copy(right.childs[:], n.childs[mid+1:n.count+1])
	right.count = n.count - int32(mid) - 1
	n.count = int32(mid)
	return right, sep
}

// insertInner inserts (sep, right) into a non-full inner node so that keys
// >= sep route to right. Caller holds the write lock.
func (n *node) insertInner(sep uint64, right *node) {
	i := n.lowerBound(sep)
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.childs[i+2:n.count+2], n.childs[i+1:n.count+1])
	n.keys[i] = sep
	n.childs[i+1] = right
	n.count++
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		v, ok, done := t.tryLookup(key)
		if done {
			return v, ok
		}
	}
}

func (t *Tree) tryLookup(key uint64) (uint64, bool, bool) {
	node := t.root.Load()
	ver, live := node.version.ReadBegin()
	if !live {
		return 0, false, false
	}
	for !node.leaf {
		next := node.childFor(key)
		if !node.version.ReadValidate(ver) || next == nil {
			return 0, false, false
		}
		nextVer, live := next.version.ReadBegin()
		if !live {
			return 0, false, false
		}
		// Lock coupling, optimistically: re-validate the parent after
		// latching the child's version so the child pointer was stable.
		if !node.version.ReadValidate(ver) {
			return 0, false, false
		}
		node, ver = next, nextVer
	}
	i := node.lowerBound(key)
	var val uint64
	found := i < int(node.count) && i < Capacity && node.keys[i] == key
	if found {
		val = node.values[i]
	}
	if !node.version.ReadValidate(ver) {
		return 0, false, false
	}
	return val, found, true
}

// Insert stores value under key (overwriting). Reports whether the key was
// newly inserted.
func (t *Tree) Insert(key, value uint64) bool {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		inserted, done := t.tryInsert(key, value)
		if done {
			return inserted
		}
	}
}

// tryInsert performs one optimistic descent; done=false requests a restart.
func (t *Tree) tryInsert(key, value uint64) (inserted, done bool) {
	node := t.root.Load()
	ver, live := node.version.ReadBegin()
	if !live {
		return false, false
	}
	return t.descendInsert(nil, 0, node, ver, key, value)
}

type nodeT = node

// descendInsert walks down from node (validated at ver), splitting full
// nodes eagerly. parent (validated at parentVer) is the already-traversed
// parent, nil at the root.
func (t *Tree) descendInsert(parent *nodeT, parentVer uint64, n *nodeT, ver uint64, key, value uint64) (inserted, done bool) {
	for {
		if n.full() {
			// Eager split: upgrade parent and node locks.
			if parent != nil {
				if !parent.version.TryLockVersion(parentVer) {
					return false, false
				}
				if !n.version.TryLockVersion(ver) {
					parent.version.UnlockUnmodified()
					return false, false
				}
				var right *nodeT
				var sep uint64
				if n.leaf {
					right, sep = n.splitLeaf()
				} else {
					right, sep = n.splitInner()
				}
				parent.insertInner(sep, right)
				n.version.Unlock()
				parent.version.Unlock()
				return false, false // restart from the root
			}
			// Root split.
			if !n.version.TryLockVersion(ver) {
				return false, false
			}
			if t.root.Load() != n {
				n.version.UnlockUnmodified()
				return false, false
			}
			var right *nodeT
			var sep uint64
			if n.leaf {
				right, sep = n.splitLeaf()
			} else {
				right, sep = n.splitInner()
			}
			newRoot := &nodeT{count: 1}
			newRoot.keys[0] = sep
			newRoot.childs[0] = n
			newRoot.childs[1] = right
			t.root.Store(newRoot)
			n.version.Unlock()
			return false, false // restart
		}
		if n.leaf {
			if !n.version.TryLockVersion(ver) {
				return false, false
			}
			i := n.lowerBound(key)
			if i < int(n.count) && n.keys[i] == key {
				n.values[i] = value
				n.version.Unlock()
				return false, true
			}
			copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
			copy(n.values[i+1:n.count+1], n.values[i:n.count])
			n.keys[i] = key
			n.values[i] = value
			n.count++
			n.version.Unlock()
			return true, true
		}
		next := n.childFor(key)
		if !n.version.ReadValidate(ver) || next == nil {
			return false, false
		}
		nextVer, live := next.version.ReadBegin()
		if !live {
			return false, false
		}
		if !n.version.ReadValidate(ver) {
			return false, false
		}
		parent, parentVer = n, ver
		n, ver = next, nextVer
	}
}

// Update overwrites an existing key; reports whether it was found.
func (t *Tree) Update(key, value uint64) bool {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		found, done := t.tryLeafWrite(key, func(n *nodeT, i int, hit bool) bool {
			if hit {
				n.values[i] = value
			}
			return hit
		})
		if done {
			return found
		}
	}
}

// Delete removes a key; reports whether it was present. Underfull nodes
// are not merged (matching the benchmark configuration).
func (t *Tree) Delete(key uint64) bool {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		found, done := t.tryLeafWrite(key, func(n *nodeT, i int, hit bool) bool {
			if hit {
				copy(n.keys[i:n.count-1], n.keys[i+1:n.count])
				copy(n.values[i:n.count-1], n.values[i+1:n.count])
				n.count--
			}
			return hit
		})
		if done {
			return found
		}
	}
}

// tryLeafWrite descends to the leaf and applies fn under the leaf's write
// lock. fn receives the slot index and whether the key was found.
func (t *Tree) tryLeafWrite(key uint64, fn func(n *nodeT, i int, hit bool) bool) (result, done bool) {
	n := t.root.Load()
	ver, live := n.version.ReadBegin()
	if !live {
		return false, false
	}
	for !n.leaf {
		next := n.childFor(key)
		if !n.version.ReadValidate(ver) || next == nil {
			return false, false
		}
		nextVer, live := next.version.ReadBegin()
		if !live {
			return false, false
		}
		if !n.version.ReadValidate(ver) {
			return false, false
		}
		n, ver = next, nextVer
	}
	if !n.version.TryLockVersion(ver) {
		return false, false
	}
	i := n.lowerBound(key)
	hit := i < int(n.count) && n.keys[i] == key
	changed := fn(n, i, hit)
	if changed {
		n.version.Unlock()
	} else {
		n.version.UnlockUnmodified()
	}
	return hit, true
}

// Count returns the number of records (single-threaded helper).
func (t *Tree) Count() int {
	var walk func(n *nodeT) int
	walk = func(n *nodeT) int {
		if n.leaf {
			return int(n.count)
		}
		total := 0
		for i := 0; i <= int(n.count); i++ {
			total += walk(n.childs[i])
		}
		return total
	}
	return walk(t.root.Load())
}

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root.Load(); !n.leaf; n = n.childs[0] {
		h++
	}
	return h
}
