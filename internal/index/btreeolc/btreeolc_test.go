package btreeolc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	tr := New()
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if !tr.Insert(1, 10) {
		t.Fatal("fresh insert reported overwrite")
	}
	if v, ok := tr.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if tr.Insert(1, 11) {
		t.Fatal("overwrite reported fresh insert")
	}
	if v, _ := tr.Lookup(1); v != 11 {
		t.Fatal("overwrite not visible")
	}
	if !tr.Update(1, 12) || tr.Update(2, 0) {
		t.Fatal("update semantics broken")
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Fatal("delete semantics broken")
	}
}

func TestBulkSequential(t *testing.T) {
	tr := New()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i*2)
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height = %d, want >= 3", h)
	}
	if c := tr.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Lookup(i); !ok || v != i*2 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestBulkReverseAndRandom(t *testing.T) {
	tr := New()
	const n = 10000
	for i := n; i > 0; i-- {
		tr.Insert(uint64(i), uint64(i))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(n) + 1)
		if v, ok := tr.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestMapEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New()
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := uint64(op % 997)
			switch rng.Intn(4) {
			case 0, 1:
				val := rng.Uint64()
				tr.Insert(key, val)
				ref[key] = val
			case 2:
				got, ok := tr.Lookup(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 3:
				if tr.Delete(key) != (func() bool { _, ok := ref[key]; return ok })() {
					return false
				}
				delete(ref, key)
			}
		}
		return tr.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	tr := New()
	const goroutines = 4
	const perG = 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for i := uint64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
		}(g)
	}
	wg.Wait()
	if c := tr.Count(); c != goroutines*perG {
		t.Fatalf("Count = %d, want %d", c, goroutines*perG)
	}
	for i := uint64(0); i < goroutines*perG; i++ {
		if v, ok := tr.Lookup(i); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	tr := New()
	const n = 4000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(n))
				tr.Update(k, k+n*uint64(rng.Intn(3)))
			}
		}(w)
	}
	errs := make(chan string, 4)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(50 + r)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := tr.Lookup(k)
				if !ok || v%n != k {
					errs <- "inconsistent read"
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestDeleteDoesNotMerge(t *testing.T) {
	tr := New()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	h := tr.Height()
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Height() != h {
		t.Fatal("height changed: deletes must not restructure")
	}
	if c := tr.Count(); c != n/2 {
		t.Fatalf("Count = %d, want %d", c, n/2)
	}
	for i := uint64(1); i < n; i += 2 {
		if v, ok := tr.Lookup(i); !ok || v != i {
			t.Fatalf("survivor %d lost", i)
		}
	}
}

func TestUpdateUnderSplitPressure(t *testing.T) {
	tr := New()
	// Fill exactly around capacity boundaries to exercise eager splits.
	for i := uint64(0); i < Capacity*3; i++ {
		tr.Insert(i, i)
	}
	for i := uint64(0); i < Capacity*3; i++ {
		if !tr.Update(i, i*7) {
			t.Fatalf("Update(%d) missed", i)
		}
	}
	for i := uint64(0); i < Capacity*3; i++ {
		if v, _ := tr.Lookup(i); v != i*7 {
			t.Fatalf("Lookup(%d) = %d", i, v)
		}
	}
}
