// Package bwtree is a from-scratch Go implementation in the family of the
// open Bw-Tree (Wang et al., "Building a Bw-Tree Takes More Than Just Buzz
// Words"), the open-BwTree baseline in Figure 12c of the MxTasks paper.
//
// The Bw-Tree's signature mechanisms are implemented:
//
//   - a mapping table from logical page IDs (PIDs) to page state, so nodes
//     are updated by CAS-installing delta records instead of latching;
//   - delta chains (insert/delete deltas over a base page) that are
//     consolidated into a fresh base page when they exceed a threshold;
//   - epoch-based reclamation is delegated to Go's garbage collector
//     (replaced pages become unreachable), which is safe by construction.
//
// Structure modification operations (splits) are, as the open BwTree paper
// painstakingly documents, the hard 90 %. This reproduction simplifies:
// record operations are fully latch-free (CAS on the mapping table); splits
// install a split delta and fix the parent under a single tree-level SMO
// latch. This keeps the *data path* — the part the YCSB benchmarks hammer —
// latch-free while keeping rare SMOs simple; the simplification is recorded
// in DESIGN.md.
package bwtree

import (
	"sort"
	"sync"
	"sync/atomic"
)

// baseCapacity is entries per consolidated page.
const baseCapacity = 60

// consolidateAfter is the delta-chain length that triggers consolidation.
const consolidateAfter = 8

type deltaKind uint8

const (
	deltaInsert deltaKind = iota
	deltaDelete
)

// page is a node state: a chain of deltas over a base page. All fields are
// immutable once published; updates copy the head.
type page struct {
	kind  deltaKind
	key   uint64
	value uint64
	next  *page // older delta or nil (then base is the backing page)
	base  *base
	depth int // chain length above base
}

// base is an immutable consolidated page.
type base struct {
	leaf     bool
	keys     []uint64
	values   []uint64 // leaves
	children []pid    // inner: children[i] covers keys < keys[i]; children[len] the rest
	highKey  uint64
	hasHigh  bool
	rightPID pid
	hasRight bool
}

type pid int32

const nilPID pid = -1

// mapping-table geometry: a fixed directory of lazily allocated chunks.
// Slots never move once allocated, so CAS on a slot stays valid across
// table growth.
const (
	chunkBits = 12
	chunkSize = 1 << chunkBits // 4096 PIDs per chunk
	maxChunks = 1 << 16        // up to ~268M pages
)

type chunk [chunkSize]atomic.Pointer[page]

// Tree is the Bw-Tree.
type Tree struct {
	dir     [maxChunks]atomic.Pointer[chunk]
	dirMu   sync.Mutex // allocates chunks
	nextPID atomic.Int32
	rootPID atomic.Int32
	smo     sync.Mutex // serializes structure modifications
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	root := t.allocPID(&page{base: &base{leaf: true}})
	t.rootPID.Store(int32(root))
	return t
}

// slot returns the mapping-table slot for id, allocating its chunk on
// first use.
func (t *Tree) slot(id pid) *atomic.Pointer[page] {
	ci, off := int(id)>>chunkBits, int(id)&(chunkSize-1)
	c := t.dir[ci].Load()
	if c == nil {
		t.dirMu.Lock()
		if c = t.dir[ci].Load(); c == nil {
			c = new(chunk)
			t.dir[ci].Store(c)
		}
		t.dirMu.Unlock()
	}
	return &c[off]
}

func (t *Tree) allocPID(p *page) pid {
	id := pid(t.nextPID.Add(1) - 1)
	t.slot(id).Store(p)
	return id
}

// read loads a PID's current page head.
func (t *Tree) read(id pid) *page {
	return t.slot(id).Load()
}

// cas installs a new head for a PID.
func (t *Tree) cas(id pid, old, new *page) bool {
	return t.slot(id).CompareAndSwap(old, new)
}

// lookupChain resolves key through a delta chain: the newest delta for the
// key wins; the base page answers otherwise.
func lookupChain(p *page, key uint64) (uint64, bool) {
	for d := p; d.depth > 0; d = d.next {
		if d.key == key {
			if d.kind == deltaInsert {
				return d.value, true
			}
			return 0, false
		}
	}
	b := p.base
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	if i < len(b.keys) && b.keys[i] == key {
		return b.values[i], true
	}
	return 0, false
}

// childPID routes key through an inner base page.
func (b *base) childPID(key uint64) pid {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] > key })
	return b.children[i]
}

// consolidate folds a delta chain into a fresh base page.
func consolidate(p *page) *base {
	b := p.base
	merged := make(map[uint64]*page)
	for d := p; d != nil && d.depth > 0; d = d.next {
		if _, seen := merged[d.key]; !seen {
			merged[d.key] = d
		}
	}
	nb := &base{
		leaf:     b.leaf,
		highKey:  b.highKey,
		hasHigh:  b.hasHigh,
		rightPID: b.rightPID,
		hasRight: b.hasRight,
	}
	nb.keys = make([]uint64, 0, len(b.keys)+len(merged))
	nb.values = make([]uint64, 0, len(b.values)+len(merged))
	for i, k := range b.keys {
		if d, ok := merged[k]; ok {
			if d.kind == deltaInsert {
				nb.keys = append(nb.keys, k)
				nb.values = append(nb.values, d.value)
			}
			delete(merged, k)
			continue
		}
		nb.keys = append(nb.keys, k)
		nb.values = append(nb.values, b.values[i])
	}
	for k, d := range merged {
		if d.kind == deltaInsert {
			nb.keys = append(nb.keys, k)
			nb.values = append(nb.values, d.value)
		}
	}
	// Re-sort the appended tail.
	sort.Sort(kvSlice{nb.keys, nb.values})
	return nb
}

type kvSlice struct {
	k []uint64
	v []uint64
}

func (s kvSlice) Len() int           { return len(s.k) }
func (s kvSlice) Less(i, j int) bool { return s.k[i] < s.k[j] }
func (s kvSlice) Swap(i, j int) {
	s.k[i], s.k[j] = s.k[j], s.k[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// descendToLeaf finds the leaf PID covering key.
func (t *Tree) descendToLeaf(key uint64) pid {
	id := pid(t.rootPID.Load())
	for {
		p := t.read(id)
		b := p.base
		if b.hasHigh && key >= b.highKey && b.hasRight {
			id = b.rightPID
			continue
		}
		if b.leaf {
			return id
		}
		id = b.childPID(key)
	}
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	id := t.descendToLeaf(key)
	for {
		p := t.read(id)
		b := p.base
		if b.hasHigh && key >= b.highKey && b.hasRight {
			id = b.rightPID
			continue
		}
		return lookupChain(p, key)
	}
}

// Insert stores value under key (overwrite allowed). Reports whether the
// key was newly inserted.
func (t *Tree) Insert(key, value uint64) bool {
	for {
		id := t.descendToLeaf(key)
		p := t.read(id)
		b := p.base
		if b.hasHigh && key >= b.highKey && b.hasRight {
			continue // raced with a split; re-descend
		}
		_, existed := lookupChain(p, key)
		d := &page{kind: deltaInsert, key: key, value: value, next: p, base: b, depth: p.depth + 1}
		if !t.cas(id, p, d) {
			continue
		}
		t.maybeMaintain(id, d)
		return !existed
	}
}

// Update overwrites an existing key.
func (t *Tree) Update(key, value uint64) bool {
	for {
		id := t.descendToLeaf(key)
		p := t.read(id)
		b := p.base
		if b.hasHigh && key >= b.highKey && b.hasRight {
			continue
		}
		if _, ok := lookupChain(p, key); !ok {
			return false
		}
		d := &page{kind: deltaInsert, key: key, value: value, next: p, base: b, depth: p.depth + 1}
		if !t.cas(id, p, d) {
			continue
		}
		t.maybeMaintain(id, d)
		return true
	}
}

// Delete removes a key; reports whether it was present.
func (t *Tree) Delete(key uint64) bool {
	for {
		id := t.descendToLeaf(key)
		p := t.read(id)
		b := p.base
		if b.hasHigh && key >= b.highKey && b.hasRight {
			continue
		}
		if _, ok := lookupChain(p, key); !ok {
			return false
		}
		d := &page{kind: deltaDelete, key: key, next: p, base: b, depth: p.depth + 1}
		if !t.cas(id, p, d) {
			continue
		}
		t.maybeMaintain(id, d)
		return true
	}
}

// maybeMaintain consolidates long chains and splits oversized pages.
func (t *Tree) maybeMaintain(id pid, p *page) {
	if p.depth < consolidateAfter {
		return
	}
	nb := consolidate(p)
	np := &page{base: nb}
	if !t.cas(id, p, np) {
		return // someone else is maintaining; fine
	}
	if len(nb.keys) > baseCapacity {
		t.split(id)
	}
}

// split performs the SMO under the tree-level latch: split the page,
// install the new sibling, and fix the parent (or grow the root).
func (t *Tree) split(id pid) {
	t.smo.Lock()
	defer t.smo.Unlock()
	p := t.read(id)
	if p.depth > 0 {
		nb := consolidate(p)
		np := &page{base: nb}
		if !t.cas(id, p, np) {
			return
		}
		p = np
	}
	b := p.base
	if len(b.keys) <= baseCapacity {
		return // already split by a competitor
	}
	mid := len(b.keys) / 2
	sep := b.keys[mid]
	rightBase := &base{
		leaf:     b.leaf,
		highKey:  b.highKey,
		hasHigh:  b.hasHigh,
		rightPID: b.rightPID,
		hasRight: b.hasRight,
	}
	if b.leaf {
		rightBase.keys = append([]uint64(nil), b.keys[mid:]...)
		rightBase.values = append([]uint64(nil), b.values[mid:]...)
	} else {
		// Inner split: the separator moves up; children[i] covers keys
		// < keys[i], so the right page starts after the separator.
		rightBase.keys = append([]uint64(nil), b.keys[mid+1:]...)
		rightBase.children = append([]pid(nil), b.children[mid+1:]...)
	}
	rightPID := t.allocPID(&page{base: rightBase})
	leftBase := &base{
		leaf:     b.leaf,
		keys:     append([]uint64(nil), b.keys[:mid]...),
		highKey:  sep,
		hasHigh:  true,
		rightPID: rightPID,
		hasRight: true,
	}
	if b.leaf {
		leftBase.values = append([]uint64(nil), b.values[:mid]...)
	} else {
		leftBase.children = append([]pid(nil), b.children[:mid+1]...)
	}
	if !t.cas(id, p, &page{base: leftBase}) {
		// A record delta landed meanwhile; retry later (next maintain).
		return
	}
	t.fixParent(id, sep, rightPID)
}

// fixParent installs (sep -> rightPID) into the parent of id, growing the
// root when id is the root. Caller holds the SMO latch.
func (t *Tree) fixParent(id pid, sep uint64, rightPID pid) {
	rootID := pid(t.rootPID.Load())
	if id == rootID {
		newRoot := &base{
			keys:     []uint64{sep},
			children: []pid{id, rightPID},
		}
		t.rootPID.Store(int32(t.allocPID(&page{base: newRoot})))
		return
	}
	// Find the parent by descending from the root.
	parent := rootID
	for {
		p := t.read(parent)
		b := p.base
		if b.hasHigh && sep >= b.highKey && b.hasRight {
			parent = b.rightPID
			continue
		}
		child := b.childPID(sep)
		if child == id {
			break
		}
		if b.leaf {
			return // structure changed under us; give up, chain stays reachable
		}
		parent = child
	}
	for {
		p := t.read(parent)
		b := p.base
		i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] > sep })
		nb := &base{
			leaf:     false,
			keys:     make([]uint64, 0, len(b.keys)+1),
			children: make([]pid, 0, len(b.children)+1),
			highKey:  b.highKey,
			hasHigh:  b.hasHigh,
			rightPID: b.rightPID,
			hasRight: b.hasRight,
		}
		nb.keys = append(nb.keys, b.keys[:i]...)
		nb.keys = append(nb.keys, sep)
		nb.keys = append(nb.keys, b.keys[i:]...)
		nb.children = append(nb.children, b.children[:i+1]...)
		nb.children = append(nb.children, rightPID)
		nb.children = append(nb.children, b.children[i+1:]...)
		if t.cas(parent, p, &page{base: nb}) {
			if len(nb.keys) > baseCapacity {
				t.splitLocked(parent)
			}
			return
		}
	}
}

// splitLocked splits an inner page while already holding the SMO latch.
func (t *Tree) splitLocked(id pid) {
	p := t.read(id)
	b := p.base
	if len(b.keys) <= baseCapacity {
		return
	}
	mid := len(b.keys) / 2
	sep := b.keys[mid]
	rightBase := &base{
		keys:     append([]uint64(nil), b.keys[mid+1:]...),
		children: append([]pid(nil), b.children[mid+1:]...),
		highKey:  b.highKey,
		hasHigh:  b.hasHigh,
		rightPID: b.rightPID,
		hasRight: b.hasRight,
	}
	rightPID := t.allocPID(&page{base: rightBase})
	leftBase := &base{
		keys:     append([]uint64(nil), b.keys[:mid]...),
		children: append([]pid(nil), b.children[:mid+1]...),
		highKey:  sep,
		hasHigh:  true,
		rightPID: rightPID,
		hasRight: true,
	}
	if !t.cas(id, p, &page{base: leftBase}) {
		return
	}
	t.fixParent(id, sep, rightPID)
}

// Count returns the number of records (quiescent helper).
func (t *Tree) Count() int {
	// Walk to the leftmost leaf, then along the right-sibling chain.
	id := pid(t.rootPID.Load())
	for {
		b := t.read(id).base
		if b.leaf {
			break
		}
		id = b.children[0]
	}
	n := 0
	for {
		p := t.read(id)
		keys := make(map[uint64]bool)
		for d := p; d != nil && d.depth > 0; d = d.next {
			if !keys[d.key] {
				keys[d.key] = true
				if d.kind == deltaInsert {
					n++
				}
			}
		}
		for _, k := range p.base.keys {
			if !keys[k] {
				n++
			}
		}
		if !p.base.hasRight {
			return n
		}
		id = p.base.rightPID
	}
}

// DeltaChainDepth reports the current chain length of the leaf covering
// key (diagnostics for the consolidation tests).
func (t *Tree) DeltaChainDepth(key uint64) int {
	return t.read(t.descendToLeaf(key)).depth
}
