package bwtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	tr := New()
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if !tr.Insert(1, 10) {
		t.Fatal("fresh insert reported overwrite")
	}
	if v, ok := tr.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if tr.Insert(1, 11) {
		t.Fatal("overwrite reported fresh insert")
	}
	if v, _ := tr.Lookup(1); v != 11 {
		t.Fatal("overwrite not visible")
	}
	if !tr.Update(1, 12) || tr.Update(2, 0) {
		t.Fatal("update semantics broken")
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Fatal("delete semantics broken")
	}
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestDeltaChainsConsolidate(t *testing.T) {
	tr := New()
	// Hammer one leaf with updates; the chain must stay bounded.
	tr.Insert(7, 0)
	for i := uint64(1); i <= 1000; i++ {
		tr.Update(7, i)
	}
	if d := tr.DeltaChainDepth(7); d > consolidateAfter {
		t.Fatalf("delta chain depth %d exceeds consolidation threshold %d", d, consolidateAfter)
	}
	if v, ok := tr.Lookup(7); !ok || v != 1000 {
		t.Fatalf("value after updates = %d,%v", v, ok)
	}
}

func TestBulkSequential(t *testing.T) {
	tr := New()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i*2)
	}
	if c := tr.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Lookup(i); !ok || v != i*2 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestBulkRandom(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		tr.Insert(keys[i], uint64(i))
	}
	for i, k := range keys {
		if v, ok := tr.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%d) = %d,%v, want %d", k, v, ok, i)
		}
	}
}

func TestMapEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New()
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := uint64(op % 499)
			switch rng.Intn(4) {
			case 0, 1:
				val := rng.Uint64()
				tr.Insert(key, val)
				ref[key] = val
			case 2:
				got, ok := tr.Lookup(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 3:
				_, wok := ref[key]
				if tr.Delete(key) != wok {
					return false
				}
				delete(ref, key)
			}
		}
		return tr.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	tr := New()
	const goroutines = 4
	const perG = 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for i := uint64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
		}(g)
	}
	wg.Wait()
	if c := tr.Count(); c != goroutines*perG {
		t.Fatalf("Count = %d, want %d", c, goroutines*perG)
	}
	for i := uint64(0); i < goroutines*perG; i++ {
		if v, ok := tr.Lookup(i); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr := New()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	var wg sync.WaitGroup
	bad := make(chan uint64, 8)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 15000; i++ {
				k := uint64(rng.Intn(n))
				tr.Update(k, k+n*uint64(rng.Intn(3)))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(70 + r)))
			for i := 0; i < 15000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := tr.Lookup(k)
				if !ok || v%n != k {
					select {
					case bad <- k:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case k := <-bad:
		t.Fatalf("inconsistent read for key %d", k)
	default:
	}
}
