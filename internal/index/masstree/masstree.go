// Package masstree is a from-scratch Go implementation of the Masstree
// design (Mao, Kohler, Morris: "Cache craftiness for fast multicore
// key-value storage"), the Masstree baseline in Figure 12c of the MxTasks
// paper.
//
// Masstree is a trie of B+-trees: each trie layer indexes one 8-byte slice
// of the key with a small, cache-line-conscious B+-tree (fanout 15); keys
// that share an 8-byte slice descend into a nested layer indexed by the
// next slice. Synchronization follows the original's optimistic scheme:
// per-node version validation for readers, per-node latches for writers.
// Like the original, descents prefetch the next node's cache lines before
// searching it — one of the reasons the paper groups Masstree with
// MxTasking among the prefetching implementations (§6.4).
//
// Simplifications relative to the C++ original (documented for the
// reproduction): border-node entries use sorted arrays instead of
// permutation words; removal does not collapse empty layers; and key
// slices are zero-padded, so two keys that differ only by trailing zero
// bytes within one 8-byte slice are conflated (the original disambiguates
// with a per-entry key length). The benchmarks use fixed 8-byte keys,
// which are unaffected.
package masstree

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"

	"mxtasking/internal/latch"
)

// Fanout is Masstree's node width (15 keys per node).
const Fanout = 15

// entry is one border-node slot: a key slice may simultaneously terminate
// a key here (hasValue) and prefix longer keys (next layer).
type entry struct {
	hasValue bool
	value    uint64
	next     *layer
}

type node struct {
	version latch.VersionLock
	border  bool
	count   int32
	keys    [Fanout]uint64
	entries [Fanout]entry     // border nodes
	childs  [Fanout + 1]*node // interior nodes
}

// layer is one trie layer: a small B+-tree over one 8-byte key slice.
type layer struct {
	root atomic.Pointer[node]
}

func newLayer() *layer {
	l := &layer{}
	l.root.Store(&node{border: true})
	return l
}

// Tree is the Masstree. Keys are arbitrary byte strings; Insert64 and
// friends adapt the paper's fixed 64-bit keys.
type Tree struct {
	top *layer
}

// New returns an empty tree.
func New() *Tree { return &Tree{top: newLayer()} }

// slice extracts the big-endian 8-byte slice of key at the given depth,
// zero-padded, plus whether the key ends within this slice.
func slice(key []byte, depth int) (s uint64, last bool) {
	off := depth * 8
	rest := len(key) - off
	var buf [8]byte
	if rest > 8 {
		copy(buf[:], key[off:off+8])
		return binary.BigEndian.Uint64(buf[:]), false
	}
	copy(buf[:], key[off:])
	return binary.BigEndian.Uint64(buf[:]), true
}

// prefetchNode touches the node's arrays, mirroring Masstree's explicit
// prefetch of the next node during descent.
func prefetchNode(n *node) {
	var sink uint64
	for i := 0; i < Fanout; i += 8 {
		sink += n.keys[i]
	}
	_ = sink
}

func (n *node) lowerBound(key uint64) int {
	lo, hi := 0, int(n.count)
	if hi > Fanout {
		hi = Fanout
	}
	if hi < 0 {
		hi = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *node) childFor(key uint64) *node {
	i := n.lowerBound(key)
	if i < int(n.count) && i < Fanout && n.keys[i] == key {
		i++
	}
	if i > Fanout {
		i = Fanout
	}
	return n.childs[i]
}

func (n *node) full() bool { return int(n.count) == Fanout }

func (n *node) splitBorder() (*node, uint64) {
	mid := int(n.count) / 2
	right := &node{border: true}
	copy(right.keys[:], n.keys[mid:n.count])
	copy(right.entries[:], n.entries[mid:n.count])
	right.count = n.count - int32(mid)
	n.count = int32(mid)
	for i := int(n.count); i < Fanout; i++ {
		n.entries[i] = entry{}
	}
	return right, right.keys[0]
}

func (n *node) splitInterior() (*node, uint64) {
	mid := int(n.count) / 2
	sep := n.keys[mid]
	right := &node{}
	copy(right.keys[:], n.keys[mid+1:n.count])
	copy(right.childs[:], n.childs[mid+1:n.count+1])
	right.count = n.count - int32(mid) - 1
	n.count = int32(mid)
	return right, sep
}

func (n *node) insertInterior(sep uint64, right *node) {
	i := n.lowerBound(sep)
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.childs[i+2:n.count+2], n.childs[i+1:n.count+1])
	n.keys[i] = sep
	n.childs[i+1] = right
	n.count++
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	l := t.top
	depth := 0
	for {
		s, last := slice(key, depth)
		e, ok := l.get(s)
		if !ok {
			return 0, false
		}
		if last {
			if e.hasValue {
				return e.value, true
			}
			return 0, false
		}
		if e.next == nil {
			return 0, false
		}
		l = e.next
		depth++
	}
}

// get finds the entry for a slice within one layer, optimistically.
func (l *layer) get(s uint64) (entry, bool) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		e, ok, done := l.tryGet(s)
		if done {
			return e, ok
		}
	}
}

func (l *layer) tryGet(s uint64) (entry, bool, bool) {
	n := l.root.Load()
	ver, live := n.version.ReadBegin()
	if !live {
		return entry{}, false, false
	}
	for !n.border {
		prefetchNode(n)
		next := n.childFor(s)
		if !n.version.ReadValidate(ver) || next == nil {
			return entry{}, false, false
		}
		nextVer, live := next.version.ReadBegin()
		if !live {
			return entry{}, false, false
		}
		if !n.version.ReadValidate(ver) {
			return entry{}, false, false
		}
		n, ver = next, nextVer
	}
	prefetchNode(n)
	i := n.lowerBound(s)
	var e entry
	found := i < int(n.count) && i < Fanout && n.keys[i] == s
	if found {
		e = n.entries[i]
	}
	if !n.version.ReadValidate(ver) {
		return entry{}, false, false
	}
	return e, found, true
}

// Put stores value under key, creating nested layers for shared slices.
// Reports whether the key was newly inserted.
func (t *Tree) Put(key []byte, value uint64) bool {
	l := t.top
	depth := 0
	for {
		s, last := slice(key, depth)
		if last {
			return l.putValue(s, value)
		}
		l = l.descendOrCreate(s)
		depth++
	}
}

// putValue sets the terminal value for slice s in this layer.
func (l *layer) putValue(s uint64, value uint64) bool {
	inserted := false
	l.withBorder(s, func(n *node, i int, hit bool) {
		if hit {
			inserted = !n.entries[i].hasValue
			n.entries[i].hasValue = true
			n.entries[i].value = value
			return
		}
		l.borderInsert(n, i, s, entry{hasValue: true, value: value})
		inserted = true
	})
	return inserted
}

// descendOrCreate returns the nested layer for slice s, creating it (and
// the border entry) if needed.
func (l *layer) descendOrCreate(s uint64) *layer {
	var next *layer
	l.withBorder(s, func(n *node, i int, hit bool) {
		if hit {
			if n.entries[i].next == nil {
				n.entries[i].next = newLayer()
			}
			next = n.entries[i].next
			return
		}
		nl := newLayer()
		l.borderInsert(n, i, s, entry{next: nl})
		next = nl
	})
	return next
}

// borderInsert inserts (s, e) into border node n at position i. The caller
// holds n's write lock and guarantees n is not full.
func (l *layer) borderInsert(n *node, i int, s uint64, e entry) {
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.entries[i+1:n.count+1], n.entries[i:n.count])
	n.keys[i] = s
	n.entries[i] = e
	n.count++
}

// withBorder locks the border node that covers s (splitting full nodes
// eagerly, restarting on conflicts) and runs fn with the slot position.
func (l *layer) withBorder(s uint64, fn func(n *node, i int, hit bool)) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%16 == 0 {
			runtime.Gosched()
		}
		if l.tryWithBorder(s, fn) {
			return
		}
	}
}

func (l *layer) tryWithBorder(s uint64, fn func(n *node, i int, hit bool)) bool {
	n := l.root.Load()
	ver, live := n.version.ReadBegin()
	if !live {
		return false
	}
	var parent *node
	var parentVer uint64
	for {
		if n.full() {
			if parent != nil {
				if !parent.version.TryLockVersion(parentVer) {
					return false
				}
				if !n.version.TryLockVersion(ver) {
					parent.version.UnlockUnmodified()
					return false
				}
				var right *node
				var sep uint64
				if n.border {
					right, sep = n.splitBorder()
				} else {
					right, sep = n.splitInterior()
				}
				parent.insertInterior(sep, right)
				n.version.Unlock()
				parent.version.Unlock()
				return false // restart
			}
			if !n.version.TryLockVersion(ver) {
				return false
			}
			if l.root.Load() != n {
				n.version.UnlockUnmodified()
				return false
			}
			var right *node
			var sep uint64
			if n.border {
				right, sep = n.splitBorder()
			} else {
				right, sep = n.splitInterior()
			}
			newRoot := &node{count: 1}
			newRoot.keys[0] = sep
			newRoot.childs[0] = n
			newRoot.childs[1] = right
			l.root.Store(newRoot)
			n.version.Unlock()
			return false // restart
		}
		if n.border {
			if !n.version.TryLockVersion(ver) {
				return false
			}
			i := n.lowerBound(s)
			hit := i < int(n.count) && n.keys[i] == s
			fn(n, i, hit)
			n.version.Unlock()
			return true
		}
		prefetchNode(n)
		next := n.childFor(s)
		if !n.version.ReadValidate(ver) || next == nil {
			return false
		}
		nextVer, live := next.version.ReadBegin()
		if !live {
			return false
		}
		if !n.version.ReadValidate(ver) {
			return false
		}
		parent, parentVer = n, ver
		n, ver = next, nextVer
	}
}

// Remove deletes key's terminal value; reports whether it was present.
// Nested layers are left in place (no collapse), like many production
// deployments of the original.
func (t *Tree) Remove(key []byte) bool {
	l := t.top
	depth := 0
	for {
		s, last := slice(key, depth)
		if last {
			removed := false
			l.withBorder(s, func(n *node, i int, hit bool) {
				if hit && n.entries[i].hasValue {
					removed = true
					n.entries[i].hasValue = false
					n.entries[i].value = 0
					if n.entries[i].next == nil {
						// Fully dead slot: drop it.
						copy(n.keys[i:n.count-1], n.keys[i+1:n.count])
						copy(n.entries[i:n.count-1], n.entries[i+1:n.count])
						n.count--
						n.entries[n.count] = entry{}
					}
				}
			})
			return removed
		}
		e, ok := l.get(s)
		if !ok || e.next == nil {
			return false
		}
		l = e.next
		depth++
	}
}

// key64 adapts a fixed 64-bit key to the byte API.
func key64(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

// Insert64 stores a 64-bit key (the paper's record format).
func (t *Tree) Insert64(k, v uint64) bool { return t.Put(key64(k), v) }

// Lookup64 fetches a 64-bit key.
func (t *Tree) Lookup64(k uint64) (uint64, bool) { return t.Get(key64(k)) }

// Update64 atomically overwrites an existing 64-bit key, reporting whether
// it was found.
func (t *Tree) Update64(k, v uint64) bool {
	key := key64(k)
	l := t.top
	depth := 0
	for {
		s, last := slice(key, depth)
		if last {
			found := false
			l.withBorder(s, func(n *node, i int, hit bool) {
				if hit && n.entries[i].hasValue {
					n.entries[i].value = v
					found = true
				}
			})
			return found
		}
		e, ok := l.get(s)
		if !ok || e.next == nil {
			return false
		}
		l = e.next
		depth++
	}
}

// Delete64 removes a 64-bit key.
func (t *Tree) Delete64(k uint64) bool { return t.Remove(key64(k)) }
