package masstree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic64(t *testing.T) {
	tr := New()
	if _, ok := tr.Lookup64(1); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if !tr.Insert64(1, 10) {
		t.Fatal("fresh insert reported overwrite")
	}
	if v, ok := tr.Lookup64(1); !ok || v != 10 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if tr.Insert64(1, 11) {
		t.Fatal("overwrite reported fresh insert")
	}
	if !tr.Update64(1, 12) || tr.Update64(2, 0) {
		t.Fatal("update semantics broken")
	}
	if v, _ := tr.Lookup64(1); v != 12 {
		t.Fatal("update not visible")
	}
	if !tr.Delete64(1) || tr.Delete64(1) {
		t.Fatal("delete semantics broken")
	}
}

func TestBulk64(t *testing.T) {
	tr := New()
	const n = 15000
	for i := uint64(0); i < n; i++ {
		tr.Insert64(i, i*3)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Lookup64(i); !ok || v != i*3 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New()
	keys := []string{
		"", "a", "ab", "abcdefgh", "abcdefghi", "abcdefghij",
		"abcdefgh12345678", "abcdefgh12345679", "abcdefgh1234567890",
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
	}
	for i, k := range keys {
		if !tr.Put([]byte(k), uint64(i)) {
			t.Fatalf("fresh Put(%q) reported overwrite", k)
		}
	}
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v, want %d,true", k, v, ok, i)
		}
	}
	// Prefix keys must be distinct from their extensions.
	if v, _ := tr.Get([]byte("abcdefgh")); v != 3 {
		t.Fatalf("prefix key clobbered by extension: got %d", v)
	}
}

func TestSharedPrefixLayers(t *testing.T) {
	tr := New()
	// 1000 keys sharing a 16-byte prefix force two nested layers.
	prefix := "0123456789abcdef"
	for i := 0; i < 1000; i++ {
		tr.Put([]byte(fmt.Sprintf("%s%08d", prefix, i)), uint64(i))
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("%s%08d", prefix, i)))
		if !ok || v != uint64(i) {
			t.Fatalf("nested-layer key %d = %d,%v", i, v, ok)
		}
	}
}

func TestMapEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New()
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := uint64(op % 509)
			switch rng.Intn(4) {
			case 0, 1:
				val := rng.Uint64()
				tr.Insert64(key, val)
				ref[key] = val
			case 2:
				got, ok := tr.Lookup64(key)
				want, wok := ref[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 3:
				_, wok := ref[key]
				if tr.Delete64(key) != wok {
					return false
				}
				delete(ref, key)
			}
		}
		for k, want := range ref {
			if got, ok := tr.Lookup64(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	tr := New()
	const goroutines = 4
	const perG = 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for i := uint64(0); i < perG; i++ {
				tr.Insert64(base+i, base+i)
			}
		}(g)
	}
	wg.Wait()
	for i := uint64(0); i < goroutines*perG; i++ {
		if v, ok := tr.Lookup64(i); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	tr := New()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert64(i, i)
	}
	var wg sync.WaitGroup
	var failed sync.Map
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 15000; i++ {
				k := uint64(rng.Intn(n))
				tr.Update64(k, k+n*uint64(rng.Intn(3)))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + r)))
			for i := 0; i < 15000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := tr.Lookup64(k)
				if !ok || v%n != k {
					failed.Store(k, v)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	failed.Range(func(k, v any) bool {
		t.Fatalf("inconsistent read: key %v value %v", k, v)
		return false
	})
}

func TestSliceExtraction(t *testing.T) {
	s, last := slice([]byte("abcdefgh"), 0)
	if !last || s == 0 {
		t.Fatalf("slice of exactly 8 bytes: last=%v", last)
	}
	s2, last2 := slice([]byte("abcdefghX"), 0)
	if last2 {
		t.Fatal("9-byte key reported last at depth 0")
	}
	if s != s2 {
		t.Fatal("shared 8-byte prefix produced different slices")
	}
	_, last3 := slice([]byte("abcdefghX"), 1)
	if !last3 {
		t.Fatal("9-byte key not last at depth 1")
	}
}

func TestRemoveKeepsLayerEntriesWithChildren(t *testing.T) {
	tr := New()
	// "abcdefgh" terminates at the slice that also prefixes longer keys;
	// removing it must not orphan the nested layer.
	tr.Put([]byte("abcdefgh"), 1)
	tr.Put([]byte("abcdefghXYZ"), 2)
	if !tr.Remove([]byte("abcdefgh")) {
		t.Fatal("Remove missed the short key")
	}
	if _, ok := tr.Get([]byte("abcdefgh")); ok {
		t.Fatal("removed key still visible")
	}
	if v, ok := tr.Get([]byte("abcdefghXYZ")); !ok || v != 2 {
		t.Fatal("nested key lost after prefix removal")
	}
}

func TestDeepLayers(t *testing.T) {
	tr := New()
	// 40-byte keys force five trie layers.
	long := make([]byte, 40)
	for i := 0; i < 200; i++ {
		copy(long, "0123456789012345678901234567890123456789")
		long[39] = byte(i)
		tr.Put(long, uint64(i))
	}
	for i := 0; i < 200; i++ {
		copy(long, "0123456789012345678901234567890123456789")
		long[39] = byte(i)
		if v, ok := tr.Get(long); !ok || v != uint64(i) {
			t.Fatalf("deep key %d = %d,%v", i, v, ok)
		}
	}
}
