package kvstore

// Network chaos tests: every fault netfault can inject — latency,
// blackholes, RSTs, one-way partitions, cut at arbitrary byte offsets —
// must end in a successful retry or a typed error, never a hang. Each
// case runs under a watchdog; the suite-wide leak guard (leak_test.go)
// proves nothing is left pumping afterwards.

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/netfault"
)

// watchdog runs fn on its own goroutine and fails the test if it neither
// returns nil nor an error within d — the "never a hang" assertion. A
// timed-out fn's goroutine is abandoned; the test is already failed, so
// the leak guard (which only arms on success) stays quiet.
func watchdog(t *testing.T, d time.Duration, fn func() error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- fn() }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		t.Fatalf("operation hung past %v\n%s", d, buf[:runtime.Stack(buf, true)])
	}
}

// matrixBackend builds the backend for one chaos-matrix mode: a single
// Store, or a Sharded router over two per-node runtimes.
func matrixBackend(t *testing.T, sharded bool) (testBackend, func()) {
	t.Helper()
	if sharded {
		g := mxtask.NewGroup(mxtask.Config{
			Workers:          2,
			PrefetchDistance: 2,
			EpochPolicy:      epoch.Batched,
			EpochInterval:    -1,
		}, 2)
		g.Start()
		return NewSharded(g.Runtimes()), g.Stop
	}
	return newStore(t, 2)
}

// chaosClientConfig is the resilient client every matrix case uses: tight
// I/O deadlines so faults surface fast, a few retries so the clean
// reconnect path can win, deterministic jitter.
func chaosClientConfig() DialConfig {
	return DialConfig{
		DialTimeout:  2 * time.Second,
		ReadTimeout:  150 * time.Millisecond,
		WriteTimeout: 150 * time.Millisecond,
		MaxRetries:   4,
		BackoffBase:  time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		Seed:         7,
	}
}

// TestChaosNetFaultMatrix sweeps fault kind × client mode × cut offset.
// Every fault except latency dooms only connection 0 (netfault.Only), so
// an idempotent retry over the reconnected connection must succeed; the
// latency case shapes every connection and must succeed outright. The
// seeded key is written through a direct (unproxied) connection so every
// case can assert the exact recovered value.
func TestChaosNetFaultMatrix(t *testing.T) {
	faults := []struct {
		name    string
		offsets []int64 // CutAfterBytes sample points
		plan    func(off int64) netfault.Script
	}{
		{"latency", []int64{0}, func(int64) netfault.Script {
			return netfault.Fixed(netfault.Plan{Latency: 15 * time.Millisecond, ChunkBytes: 4})
		}},
		{"blackhole", []int64{0, 9, 33}, func(off int64) netfault.Script {
			return netfault.Only(0, netfault.Plan{Cut: netfault.Blackhole, CutAfterBytes: off})
		}},
		{"reset", []int64{0, 9, 33}, func(off int64) netfault.Script {
			return netfault.Only(0, netfault.Plan{Cut: netfault.Reset, CutAfterBytes: off})
		}},
		{"partition-c2s", []int64{0, 9, 33}, func(off int64) netfault.Script {
			return netfault.Only(0, netfault.Plan{Cut: netfault.DropC2S, CutAfterBytes: off})
		}},
		{"partition-s2c", []int64{0, 9, 33}, func(off int64) netfault.Script {
			return netfault.Only(0, netfault.Plan{Cut: netfault.DropS2C, CutAfterBytes: off})
		}},
	}
	modes := []string{"serial", "pipelined", "sharded"}

	for _, mode := range modes {
		for _, f := range faults {
			t.Run(mode+"/"+f.name, func(t *testing.T) {
				backend, stop := matrixBackend(t, mode == "sharded")
				defer stop()
				srv, err := NewServer(backend, "127.0.0.1:0",
					WithIdleTimeout(2*time.Second), WithWriteTimeout(time.Second))
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()

				// Seed around the fault so recovery has a known answer.
				seed, err := Dial(srv.Addr())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := seed.Set(1, 100); err != nil {
					t.Fatal(err)
				}
				seed.Close()

				for _, off := range f.offsets {
					proxy, err := netfault.New(srv.Addr(), f.plan(off))
					if err != nil {
						t.Fatal(err)
					}
					cli, err := DialWith(proxy.Addr(), chaosClientConfig())
					if err != nil {
						proxy.Close()
						t.Fatalf("off=%d: dial through proxy: %v", off, err)
					}
					watchdog(t, 15*time.Second, func() error {
						var oerr error
						if mode == "pipelined" {
							oerr = chaosPipelinedOps(cli)
						} else {
							oerr = chaosSerialOps(cli)
						}
						if oerr != nil {
							return fmt.Errorf("cut offset %d: %w", off, oerr)
						}
						return nil
					})
					cli.Close()
					proxy.Close()
				}
			})
		}
	}
}

// chaosSerialOps drives blocking operations through the fault. The
// non-idempotent Set may fail — the fault may have eaten it — but must
// return; the idempotent Get must come back with the seeded value, via
// retries onto a clean connection if necessary.
func chaosSerialOps(cli *Client) error {
	if _, err := cli.Set(2, 200); err != nil {
		if !returnedPromptly(err) {
			return fmt.Errorf("Set returned unexpected error: %w", err)
		}
	}
	v, found, err := cli.Get(1)
	if err != nil {
		return fmt.Errorf("Get(1) did not recover: %w", err)
	}
	if !found || v != 100 {
		return fmt.Errorf("Get(1) = (%d, %v), want (100, true)", v, found)
	}
	return nil
}

// chaosPipelinedOps drives a pipelined window through the fault. The
// window itself is never replayed automatically — each Await must return
// ok or an error, and after the first error the application (this test)
// reconnects and proves the fresh connection works with a retried read.
func chaosPipelinedOps(cli *Client) error {
	const window = 8
	for i := 0; i < window; i++ {
		if err := cli.SendSet(uint64(10+i), uint64(i)); err != nil {
			return fmt.Errorf("SendSet %d: %w", i, err)
		}
	}
	for i := 0; i < window; i++ {
		if _, err := cli.AwaitSet(); err != nil {
			if !returnedPromptly(err) {
				return fmt.Errorf("AwaitSet %d unexpected error: %w", i, err)
			}
			// Window poisoned: abandon it on a fresh connection.
			if rerr := cli.Reconnect(); rerr != nil {
				return fmt.Errorf("reconnect after fault: %w", rerr)
			}
			break
		}
	}
	v, found, err := cli.Get(1)
	if err != nil {
		return fmt.Errorf("Get(1) after pipelined fault did not recover: %w", err)
	}
	if !found || v != 100 {
		return fmt.Errorf("Get(1) = (%d, %v), want (100, true)", v, found)
	}
	return nil
}

// returnedPromptly accepts any error shape a fault may legally surface:
// deadline, connection reset/EOF, typed overload or retry exhaustion.
// The matrix's real assertion is that the error *arrived* (the watchdog
// did not fire); this filter only rejects obviously-wrong replies like a
// protocol error, which would mean stream corruption.
func returnedPromptly(err error) bool {
	if errors.Is(err, ErrTooManyRetries) || errors.Is(err, ErrOverloaded) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Transport-level failures wrapped by the client or bufio: reset,
	// closed, EOF mid-reply.
	s := err.Error()
	for _, marker := range []string{"connection reset", "broken pipe", "closed", "EOF", "deadline"} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

// TestClientRetryIdempotentOnly pins the retry taxonomy: a transport
// failure mid-write is NOT retried (its fate is unknown — that ambiguity
// belongs to the caller), while an idempotent read replays over a fresh
// connection and succeeds.
func TestClientRetryIdempotentOnly(t *testing.T) {
	backend, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	seed, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Set(1, 100); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Connection 0 resets on the first byte; connection 1 is clean.
	proxy, err := netfault.New(srv.Addr(), netfault.Only(0, netfault.Plan{Cut: netfault.Reset}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cli, err := DialWith(proxy.Addr(), chaosClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	watchdog(t, 10*time.Second, func() error {
		if _, err := cli.Set(7, 7); err == nil {
			return errors.New("Set over a reset connection reported success")
		} else if errors.Is(err, ErrTooManyRetries) {
			return fmt.Errorf("non-idempotent Set was retried: %w", err)
		}
		if n := cli.Metrics().Retries.Value(); n != 0 {
			return fmt.Errorf("Set consumed %d retries, want 0", n)
		}
		v, found, err := cli.Get(1)
		if err != nil {
			return fmt.Errorf("idempotent Get did not recover: %w", err)
		}
		if !found || v != 100 {
			return fmt.Errorf("Get(1) = (%d, %v), want (100, true)", v, found)
		}
		return nil
	})
	if n := cli.Metrics().Reconnects.Value(); n == 0 {
		t.Fatal("Get recovered without reconnecting — fault never engaged?")
	}
	if n := cli.Metrics().Retries.Value(); n == 0 {
		t.Fatal("Get recovered without a retry — fault never engaged?")
	}
}

// TestDialTimeoutBounded proves Dial cannot block forever on an
// unresponsive address: 240.0.0.0/4 is reserved and never answers, so
// only the dial timeout gets the call back. Some CI sandboxes route all
// egress through a proxy that happily accepts the connect — the bound
// still held (the call returned), so that environment only skips the
// error assertion.
func TestDialTimeoutBounded(t *testing.T) {
	skip := false
	watchdog(t, 5*time.Second, func() error {
		cli, err := DialWith("240.0.0.1:9", DialConfig{DialTimeout: 100 * time.Millisecond})
		if err == nil {
			cli.Close()
			skip = true
		}
		return nil
	})
	if skip {
		t.Skip("environment accepts connects to reserved addresses (egress middlebox)")
	}
}

// TestClientCloseMidPipeline closes a client with most of a 200-request
// window still in flight. The server must shrug (abandoned replies are
// discarded, the connection reaped) and keep serving fresh clients; the
// suite leak guard proves no goroutine is left behind.
func TestClientCloseMidPipeline(t *testing.T) {
	backend, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	watchdog(t, 10*time.Second, func() error {
		cli, err := Dial(srv.Addr())
		if err != nil {
			return err
		}
		for i := 0; i < 200; i++ {
			if err := cli.SendSet(uint64(i), uint64(i)*3); err != nil {
				return fmt.Errorf("SendSet %d: %w", i, err)
			}
		}
		if err := cli.Flush(); err != nil {
			return fmt.Errorf("flush: %w", err)
		}
		// Drain a few replies, then abandon the rest mid-window.
		for i := 0; i < 5; i++ {
			if _, err := cli.AwaitSet(); err != nil {
				return fmt.Errorf("AwaitSet %d: %w", i, err)
			}
		}
		if err := cli.Close(); err != nil {
			return fmt.Errorf("close mid-window: %w", err)
		}

		// The server survived and still serves.
		c2, err := Dial(srv.Addr())
		if err != nil {
			return fmt.Errorf("dial after abandoned window: %w", err)
		}
		defer c2.Close()
		if err := c2.Ping(); err != nil {
			return fmt.Errorf("ping after abandoned window: %w", err)
		}
		return nil
	})
}

// gatedBackend blocks read deliveries until release is closed, pinning
// the server's dispatched-but-unanswered depth so the admission gate's
// behavior under saturation is deterministic. Writes pass through
// untouched (the tests seed through them).
type gatedBackend struct {
	testBackend
	release chan struct{}
}

func (g *gatedBackend) Get(key uint64, done func(Result)) {
	g.testBackend.Get(key, func(r Result) { <-g.release; done(r) })
}

func (g *gatedBackend) GetBatch(keys []uint64, each func(int, Result)) {
	g.testBackend.GetBatch(keys, func(i int, r Result) { <-g.release; each(i, r) })
}

// TestServerOverloadSheds saturates the admission gate and asserts the
// acceptance criteria directly: in-flight store depth never exceeds the
// high-water mark, excess requests are shed with the typed overload
// error (still in request order), a saturated blocking client exhausts
// its retries on ErrOverloaded, and once pressure lifts everything —
// including the previously-failing client — succeeds.
func TestServerOverloadSheds(t *testing.T) {
	backend, stop := newBackend(t, 2)
	defer stop()
	gb := &gatedBackend{testBackend: backend, release: make(chan struct{})}

	const highWater = 4
	srv, err := NewServer(gb, "127.0.0.1:0", WithAdmission(highWater, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	seed, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Set(1, 100); err != nil { // Set is ungated
		t.Fatal(err)
	}
	seed.Close()

	// Saturate: 32 pipelined GETs; the gate admits highWater and must
	// shed the rest because the gated backend never answers.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 32
	for i := 0; i < n; i++ {
		if err := cli.SendGet(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait for the reader to have processed the whole window: exactly
	// n-highWater sheds.
	waitFor(t, 5*time.Second, func() bool {
		return srv.Metrics().Shed.Value() >= n-highWater
	}, "admission gate never shed under saturation")

	// A blocking client retrying into the saturated gate gets the typed
	// failure, not a hang.
	b, err := DialWith(srv.Addr(), DialConfig{
		MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	watchdog(t, 10*time.Second, func() error {
		_, _, err := b.Get(1)
		if err == nil {
			return errors.New("Get succeeded through a saturated gate")
		}
		if !errors.Is(err, ErrTooManyRetries) {
			return fmt.Errorf("want ErrTooManyRetries, got: %w", err)
		}
		if !errors.Is(err, ErrOverloaded) {
			return fmt.Errorf("exhausted error does not carry ErrOverloaded: %w", err)
		}
		return nil
	})
	if got := b.Metrics().Overloaded.Value(); got < 3 {
		t.Fatalf("Overloaded counter = %d, want >= 3 (initial try + 2 retries)", got)
	}

	// Lift the pressure; the admitted window completes, the shed replies
	// were already queued in order.
	close(gb.release)
	okN, shedN := 0, 0
	watchdog(t, 10*time.Second, func() error {
		for i := 0; i < n; i++ {
			v, found, err := cli.AwaitGet()
			switch {
			case err == nil && found && v == 100:
				okN++
			case errors.Is(err, ErrOverloaded):
				shedN++
			default:
				return fmt.Errorf("AwaitGet %d = (%d, %v, %v)", i, v, found, err)
			}
		}
		return nil
	})
	if okN != highWater || shedN != n-highWater {
		t.Fatalf("drained window: %d ok, %d shed; want %d ok, %d shed", okN, shedN, highWater, n-highWater)
	}

	// The previously-failing client now succeeds, and STATS carries the
	// shed count.
	watchdog(t, 10*time.Second, func() error {
		v, found, err := b.Get(1)
		if err != nil || !found || v != 100 {
			return fmt.Errorf("Get after release = (%d, %v, %v)", v, found, err)
		}
		st, err := b.Stats()
		if err != nil {
			return fmt.Errorf("stats after release: %w", err)
		}
		if st.Shed < n-highWater {
			return fmt.Errorf("STATS shed = %d, want >= %d", st.Shed, n-highWater)
		}
		return nil
	})

	// The hard invariant: dispatched-but-unanswered depth never crossed
	// the high-water mark.
	if max := srv.Metrics().Busy.Max(); max > highWater {
		t.Fatalf("Busy.Max() = %d, exceeded high-water mark %d", max, highWater)
	}
	if srv.Metrics().Shed.Value() < n-highWater {
		t.Fatalf("Shed = %d, want >= %d", srv.Metrics().Shed.Value(), n-highWater)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerIdleReap proves a silent connection is reaped by the idle
// deadline — counted as a deadline drop, not a connection error — and
// that live clients are unaffected.
func TestServerIdleReap(t *testing.T) {
	backend, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(backend, "127.0.0.1:0", WithIdleTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A connection that never sends a request.
	idle, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The read must fail because the server closed the connection, well
	// before our own 5s guard deadline.
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection received data")
	}
	waitFor(t, 5*time.Second, func() bool {
		return srv.Metrics().DeadlineDrops.Value() >= 1
	}, "idle connection was never reaped")
	if srv.Metrics().ConnErrors.Value() != 0 {
		t.Fatalf("idle reap miscounted as connection error: %v", srv.LastError())
	}

	// An active client sails through, slower than the idle timeout.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		time.Sleep(40 * time.Millisecond)
		if err := cli.Ping(); err != nil {
			t.Fatalf("active client reaped: %v", err)
		}
	}
}

// TestServerWriteTimeoutReapsStuckReader proves a peer that stops
// draining replies is cut loose by the write deadline instead of wedging
// the writer (and with it the whole window) forever.
func TestServerWriteTimeoutReapsStuckReader(t *testing.T) {
	backend, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(backend, "127.0.0.1:0", WithWriteTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Seed enough records that SCAN replies are large.
	seed, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if err := seed.SendSet(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	watchdog(t, 20*time.Second, func() error {
		for i := 0; i < 4000; i++ {
			if _, err := seed.AwaitSet(); err != nil {
				return fmt.Errorf("seed AwaitSet %d: %w", i, err)
			}
		}
		return nil
	})
	seed.Close()

	// A raw connection that requests huge scans and never reads a byte.
	// Loopback kernel buffers can swallow megabytes, so keep piling
	// ~36 KiB replies on until the server's flush actually stalls and the
	// write deadline severs us (our own write then errors, or the reap
	// counter moves).
	stuck, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	watchdog(t, 20*time.Second, func() error {
		for i := 0; i < 4096; i++ {
			if srv.Metrics().DeadlineDrops.Value() >= 1 {
				return nil
			}
			stuck.SetWriteDeadline(time.Now().Add(2 * time.Second))
			if _, err := fmt.Fprintf(stuck, "SCAN 0 5000\n"); err != nil {
				return nil // server severed us — the success path
			}
		}
		return nil
	})
	waitFor(t, 10*time.Second, func() bool {
		return srv.Metrics().DeadlineDrops.Value() >= 1
	}, "stuck reader was never reaped by the write deadline")

	// The server is still healthy for everyone else.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after reaping stuck reader: %v", err)
	}
}
