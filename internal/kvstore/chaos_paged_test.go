package kvstore

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mxtasking/internal/faultfs"
	"mxtasking/internal/linearize"
	"mxtasking/internal/mxtask"
)

// Paged chaos: the crash-at-every-op sweep of chaos_test.go re-run with
// the paged value tier armed on the same fault-injecting filesystem. The
// enumerated op stream now interleaves WAL appends/fsyncs with page-file
// writebacks and faults, so the sweep crashes inside every ordering the
// two tiers produce: a writeback whose WAL record is already synced, a
// WAL append whose value page never hit the file, a page fault mid-
// recovery. The correctness argument under test is the one DESIGN.md §10
// makes: the page file is a volatile cache — WAL records always carry
// client values, recovery rebuilds the paged tier from the log alone, and
// a torn or lost writeback can at worst lose state the WAL re-creates.
// Both linearizability views (volatile pre-crash, durable acked+post-
// crash) must hold at every crash index, exactly as in the unpaged sweep.

// chaosPagedConfig forces every workload value (100..999) through the
// pager with a single-frame pool, so nearly every spilled store in the
// 30-op workload evicts and writes back — eviction traffic at a density
// worth crashing into.
func chaosPagedConfig() *PagedConfig {
	return &PagedConfig{PageBytes: 128, PoolFrames: 1, SpillOver: 0}
}

// chaosPagedKeySpace widens the workload past the pool: one 128-byte
// frame holds 6 slots, so 40 live keys keep the working set strictly
// larger than RAM for the whole run. (The base chaos workload's 4 keys
// would sit resident forever and the sweep would never cross tiers.)
const chaosPagedKeySpace = 40

// chaosPagedWorkload is chaosWorkload over the widened keyspace.
func chaosPagedWorkload(st *Store) {
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(chaosSeed + int64(1000*c)))
			for i := 0; i < chaosOpsEach; i++ {
				key := uint64(rng.Intn(chaosPagedKeySpace) + 1)
				switch rng.Intn(10) {
				case 0, 1:
					st.GetSync(key)
				case 2, 3:
					st.DeleteSync(key)
				default:
					st.SetSync(key, uint64(rng.Intn(900)+100))
				}
			}
		}(c)
	}
	wg.Wait()
}

// runChaosPagedOnce is runChaosOnce with the paged tier armed on both the
// crashing store and the recovered one. crashAt < 0 runs fault-free and
// returns the total filesystem op count for enumeration.
func runChaosPagedOnce(t *testing.T, crashAt int64) int64 {
	t.Helper()
	fs := faultfs.NewMem(chaosSeed)
	if crashAt >= 0 {
		fs.CrashAtOp(crashAt)
	}
	rec := linearize.NewRecorder()

	rt := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt.Start()
	st, _, err := Open(rt, Durability{Dir: chaosDir, FS: fs, Paged: chaosPagedConfig()})
	if err == nil {
		st.Instrument(rec)
		chaosPagedWorkload(st)
		st.Close() // the crash may land here; the error is the point
	} else if crashAt < 0 {
		t.Fatalf("fault-free open failed: %v", err)
	}
	rt.Stop()
	cut := rec.Now()

	// All that survives is the crash image. The page file in the image is
	// garbage by construction (torn writebacks, lost frames); recovery
	// must truncate it and rebuild from the WAL.
	image := fs.CrashImage()
	rt2 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt2.Start()
	defer rt2.Stop()
	st2, _, err := Open(rt2, Durability{Dir: chaosDir, FS: image, Paged: chaosPagedConfig()})
	if err != nil {
		t.Fatalf("crashAt=%d seed=%#x: paged recovery failed: %v", crashAt, chaosSeed, err)
	}
	st2.Instrument(rec)
	for k := uint64(1); k <= chaosPagedKeySpace; k++ {
		if r := st2.GetSync(k); r.Err != nil {
			t.Fatalf("crashAt=%d: post-recovery read of %d failed: %v", crashAt, k, r.Err)
		}
	}
	// The recovered store must also accept new durable spilled writes.
	if r := st2.SetSync(chaosProbesKey, 7); r.Err != nil {
		t.Fatalf("crashAt=%d: post-recovery write failed: %v", crashAt, r.Err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("crashAt=%d: post-recovery close failed: %v", crashAt, err)
	}

	volatile, durable := splitHistory(rec.History(), cut)
	if res := linearize.Check(volatile); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: pre-crash paged history not linearizable, bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(volatile))
	}
	if res := linearize.Check(durable); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: durable paged history not linearizable (lost an acked write?), bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(durable))
	}
	if crashAt < 0 {
		// Teeth check on the reference run: the enumerated op stream must
		// actually interleave page-file writebacks/faults with WAL traffic,
		// or the sweep proves nothing about the paged tier.
		pageOps := 0
		for _, op := range fs.Trace() {
			if strings.Contains(op.Path, "/pages/") && (op.Kind == "writeat" || op.Kind == "readat") {
				pageOps++
			}
		}
		if pageOps < 5 {
			t.Fatalf("reference paged run produced only %d page-file transfer ops; workload not larger than pool", pageOps)
		}
		t.Logf("reference paged run: %d page-file transfer ops in the stream", pageOps)
	}
	return fs.OpCount()
}

// TestChaosPagedCrashAtEveryFsOp sweeps a crash across every filesystem
// operation the paged store performs — WAL and page file interleaved —
// recovering from the deterministic crash image each time and checking
// both linearizability views. A failure message carries the seed and
// crash index for exact reproduction.
func TestChaosPagedCrashAtEveryFsOp(t *testing.T) {
	total := runChaosPagedOnce(t, -1)
	t.Logf("reference paged run: %d filesystem ops, crashing at each", total)
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for idx := int64(0); idx < total; idx += stride {
		runChaosPagedOnce(t, idx)
	}
}

// TestChaosPagedEvictionWriteFailure pins the non-crash fault path: a
// writeback that fails (ENOSPC-style, no crash) must surface as an error
// on the op that needed the frame — never an ack for a value that was
// silently dropped — and service must recover once writes work again.
// The store runs without a WAL, its page file alone on the fault FS, so
// every scripted failure lands on pager traffic specifically.
func TestChaosPagedEvictionWriteFailure(t *testing.T) {
	fs := faultfs.NewMem(chaosSeed)
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	st, err := NewPaged(rt, PagedConfig{
		PageBytes: 128, PoolFrames: 2, SpillOver: 0,
		FS: fs, Dir: "/pages",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 128-byte pages hold 6 slots; 12 values fill both frames with no
	// eviction and therefore no page-file writes to fail yet.
	for k := uint64(1); k <= 12; k++ {
		if r := st.SetSync(k, 100+k); r.Err != nil {
			t.Fatalf("seed set %d: %v", k, r.Err)
		}
	}
	// Script the next 6 filesystem ops to fail: the following spilled
	// stores need a frame, the eviction's writeback is the next fs op,
	// and the SET must carry the error rather than ack a dropped value.
	cur := fs.OpCount()
	for i := int64(0); i < 6; i++ {
		fs.FailOp(cur+i, faultfs.ErrInjected)
	}
	errs := 0
	for k := uint64(100); k < 130; k++ {
		if r := st.SetSync(k, 500+k); r.Err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("30 spilled stores through a failing filesystem all acked")
	}
	// Past the scripted window the pool drains its dirty frame and keeps
	// going; earlier committed values survived the failed writebacks.
	if r := st.SetSync(200, 777); r.Err != nil {
		t.Fatalf("post-window set: %v", r.Err)
	}
	if r := st.GetSync(200); !r.Found || r.Value != 777 {
		t.Fatalf("post-window get = %+v", r)
	}
	for k := uint64(1); k <= 12; k++ {
		if r := st.GetSync(k); r.Err != nil || !r.Found || r.Value != 100+k {
			t.Fatalf("pre-fault key %d = %+v after failure window", k, r)
		}
	}
}

// TestChaosPagedConcurrentLiveRun is the accept-side fixture: four
// concurrent clients against a thrashing two-frame paged store, no
// faults — the recorded history must be linearizable and the pool must
// have actually evicted under it.
func TestChaosPagedConcurrentLiveRun(t *testing.T) {
	rt := newRT(t)
	st, _, err := Open(rt, Durability{Dir: t.TempDir(), Paged: chaosPagedConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rec := linearize.NewRecorder()
	st.Instrument(rec)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c * 8)
			for i := 0; i < 40; i++ {
				key := base + uint64(i%8) + 1
				switch i % 5 {
				case 0:
					st.GetSync(key)
				case 1:
					st.DeleteSync(key)
				default:
					st.SetSync(key, uint64(1000*c+i+1))
				}
			}
		}(c)
	}
	wg.Wait()
	pgStats, ok := st.PagerStats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !ok || pgStats.Evictions == 0 {
		t.Fatalf("live run drove no eviction traffic: %+v", pgStats)
	}
	hist := rec.History()
	if len(hist) != 160 {
		t.Fatalf("recorded %d ops, want 160", len(hist))
	}
	if res := linearize.Check(hist); !res.Ok {
		t.Fatalf("4-client paged run not linearizable, bad keys %v\n%s", res.BadKeys, dumpHistory(hist))
	}
}
