package kvstore

import (
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mxtasking/internal/faultfs"
	"mxtasking/internal/linearize"
	"mxtasking/internal/mxtask"
)

// Sharded chaos harness: the crash-at-every-fs-op sweep from chaos_test.go
// run against a 3-shard durable store. All shard WALs share one fault
// filesystem with a single global operation index, so the enumerated crash
// points systematically land between shard syncs — at a typical index,
// K of the N shard logs have fsynced their latest group commit and the
// rest have not, which is exactly the partial-durability state a
// multi-log store must recover from. The two linearizability views
// (volatile pre-crash, durable acked-only) are checked per key across the
// merged multi-shard history; the shards share one Recorder clock, so the
// splits and checks from chaos_test.go apply unchanged.

const (
	chaosShards     = 3
	chaosShardedDir = "/shardedwal"
)

// chaosShardedKeys pins the workload's key set to the shard layout:
// four keys per shard, offset from the shard's first owned key, so every
// run mutates all three WALs (small consecutive keys would all land in
// shard 0 under the range partition).
func chaosShardedKeys() []uint64 {
	keys := make([]uint64, 0, 4*chaosShards)
	for i := 0; i < chaosShards; i++ {
		base := shardStart(i, chaosShards)
		for j := uint64(1); j <= 4; j++ {
			keys = append(keys, base+j)
		}
	}
	return keys
}

// chaosShardedWorkload is chaosWorkload over the sharded key set.
func chaosShardedWorkload(st *Sharded, keys []uint64) {
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(chaosSeed + int64(1000*c)))
			for i := 0; i < chaosOpsEach; i++ {
				key := keys[rng.Intn(len(keys))]
				switch rng.Intn(10) {
				case 0, 1:
					st.GetSync(key)
				case 2, 3:
					st.DeleteSync(key)
				default:
					st.SetSync(key, uint64(rng.Intn(900)+100))
				}
			}
		}(c)
	}
	wg.Wait()
}

func newChaosRuntimes() []*mxtask.Runtime {
	rts := make([]*mxtask.Runtime, chaosShards)
	for i := range rts {
		rts[i] = mxtask.New(mxtask.Config{Workers: 2, EpochInterval: -1})
		rts[i].Start()
	}
	return rts
}

func stopRuntimes(rts []*mxtask.Runtime) {
	for _, rt := range rts {
		rt.Stop()
	}
}

// runShardedChaosOnce is runChaosOnce over the sharded store: run the
// workload, crash all shards at global fs-op crashAt, recover every shard
// WAL from the crash image, probe, and check both history views.
// crashAt < 0 runs fault-free and returns the fs op total.
func runShardedChaosOnce(t *testing.T, crashAt int64) int64 {
	t.Helper()
	fs := faultfs.NewMem(chaosSeed)
	if crashAt >= 0 {
		fs.CrashAtOp(crashAt)
	}
	rec := linearize.NewRecorder()
	keys := chaosShardedKeys()

	rts := newChaosRuntimes()
	st, _, err := OpenSharded(rts, Durability{Dir: chaosShardedDir, FS: fs})
	if err == nil {
		st.Instrument(rec)
		chaosShardedWorkload(st, keys)
		st.Close() // the crash may land here; the error is the point
	} else if crashAt < 0 {
		t.Fatalf("fault-free open failed: %v", err)
	}
	stopRuntimes(rts)
	cut := rec.Now()

	// Only the crash image survives. Every shard must come back — a crash
	// mid-sync is a torn tail at worst, never corruption.
	image := fs.CrashImage()
	rts2 := newChaosRuntimes()
	defer stopRuntimes(rts2)
	st2, recov, err := OpenSharded(rts2, Durability{Dir: chaosShardedDir, FS: image})
	if err != nil {
		for _, r := range recov {
			if r.Err != nil {
				t.Errorf("crashAt=%d: shard %d recovery: %v", crashAt, r.Shard, r.Err)
			}
		}
		t.Fatalf("crashAt=%d seed=%#x: sharded recovery failed: %v", crashAt, chaosSeed, err)
	}
	st2.Instrument(rec)
	for _, k := range keys {
		st2.GetSync(k)
	}
	// Every shard of the recovered store must accept new durable writes.
	for i := 0; i < chaosShards; i++ {
		probe := shardStart(i, chaosShards) + 90
		if r := st2.SetSync(probe, 7); r.Err != nil {
			t.Fatalf("crashAt=%d: post-recovery write to shard %d failed: %v", crashAt, i, r.Err)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("crashAt=%d: post-recovery close failed: %v", crashAt, err)
	}

	volatile, durable := splitHistory(rec.History(), cut)
	if res := linearize.Check(volatile); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: pre-crash sharded history not linearizable, bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(volatile))
	}
	if res := linearize.Check(durable); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: durable sharded history not linearizable (lost an acked write?), bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(durable))
	}
	return fs.OpCount()
}

// TestChaosShardedCrashAtEveryFsOp sweeps a crash through every filesystem
// operation of a 3-shard run. The reference run must show fsync traffic in
// several distinct shard directories — proof the sweep actually exercises
// crashes with K of N shard WALs synced rather than degenerating to one
// hot shard.
func TestChaosShardedCrashAtEveryFsOp(t *testing.T) {
	total := runShardedChaosOnce(t, -1)
	if total < 10 {
		t.Fatalf("reference run performed only %d fs ops; workload too small to mean anything", total)
	}

	// Re-run fault-free to grab the trace (runShardedChaosOnce owns its fs)
	// and verify the multi-WAL coverage claim.
	fs := faultfs.NewMem(chaosSeed)
	rec := linearize.NewRecorder()
	rts := newChaosRuntimes()
	st, _, err := OpenSharded(rts, Durability{Dir: chaosShardedDir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(rec)
	chaosShardedWorkload(st, chaosShardedKeys())
	st.Close()
	stopRuntimes(rts)
	syncDirs := map[string]bool{}
	for _, op := range fs.Trace() {
		if op.Kind != "sync" {
			continue
		}
		dir := filepath.Dir(op.Path)
		if strings.HasPrefix(filepath.Base(dir), "shard-") {
			syncDirs[dir] = true
		}
	}
	if len(syncDirs) < 2 {
		t.Fatalf("workload fsynced only %d shard dirs (%v); crash points cannot cover partial multi-WAL sync states",
			len(syncDirs), syncDirs)
	}
	t.Logf("reference run: %d filesystem ops across %d synced shard dirs, crashing at each", total, len(syncDirs))

	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for idx := int64(0); idx < total; idx += stride {
		runShardedChaosOnce(t, idx)
	}
}
