package kvstore

import (
	"math/rand"
	"sync"
	"testing"

	"mxtasking/internal/faultfs"
	"mxtasking/internal/linearize"
	"mxtasking/internal/mxtask"
)

// Chaos harness: run concurrent clients against a durable store on an
// in-memory fault-injecting filesystem, crash it at an enumerated WAL
// filesystem operation, recover from the crash image, and check the merged
// pre/post-crash operation history with the linearizability checker.
//
// Two checks per crash point:
//
//  1. Volatile: the full pre-crash history (including mutations whose acks
//     never fired, kept as pending) must be linearizable — the store never
//     reorders or loses an operation *while running*.
//
//  2. Durable: every acked mutation plus post-crash reads must be
//     linearizable. Acked mutations MUST be visible after recovery (their
//     covering fsync completed before the ack); un-acked mutations may or
//     may not be (the checker's pending branches). Pre-crash reads are
//     excluded here: they legitimately observed volatile state that the
//     crash was allowed to destroy.
//
// Soundness of check 2: the WAL appends each key's records in the leaf's
// apply order, and an fsync covers the whole file prefix written before
// it, so the durable mutations of a key are always a prefix of that key's
// apply order — a valid linearization exists exactly when recovery kept
// every acked operation and replayed them in order.

const (
	chaosSeed      = int64(0x5eed)
	chaosDir       = "/wal"
	chaosClients   = 3
	chaosOpsEach   = 10
	chaosKeySpace  = 4 // keys 1..chaosKeySpace
	chaosProbesKey = uint64(99)
)

// chaosWorkload runs the deterministic per-client operation mix against an
// instrumented store. Errors are expected after the crash fires (acks carry
// the injected error and the recorder keeps those ops pending).
func chaosWorkload(st *Store) {
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(chaosSeed + int64(1000*c)))
			for i := 0; i < chaosOpsEach; i++ {
				key := uint64(rng.Intn(chaosKeySpace) + 1)
				switch rng.Intn(10) {
				case 0, 1:
					st.GetSync(key)
				case 2, 3:
					st.DeleteSync(key)
				default:
					st.SetSync(key, uint64(rng.Intn(900)+100))
				}
			}
		}(c)
	}
	wg.Wait()
}

// splitHistory separates the merged history at the crash cut: the volatile
// (pre-crash) ops, and the durable view (all mutations + post-crash reads).
func splitHistory(full []linearize.Op, cut int64) (volatile, durable []linearize.Op) {
	for _, op := range full {
		if op.Call <= cut {
			volatile = append(volatile, op)
		}
		if op.Kind != linearize.OpGet || op.Call > cut {
			durable = append(durable, op)
		}
	}
	return volatile, durable
}

// runChaosOnce executes one crash-recover-verify cycle. crashAt < 0 runs
// fault-free and returns the total filesystem op count for enumeration.
func runChaosOnce(t *testing.T, crashAt int64) int64 {
	t.Helper()
	fs := faultfs.NewMem(chaosSeed)
	if crashAt >= 0 {
		fs.CrashAtOp(crashAt)
	}
	rec := linearize.NewRecorder()

	rt := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt.Start()
	st, _, err := Open(rt, Durability{Dir: chaosDir, FS: fs})
	if err == nil {
		st.Instrument(rec)
		chaosWorkload(st)
		st.Close() // the crash may land here; the error is the point
	} else if crashAt < 0 {
		t.Fatalf("fault-free open failed: %v", err)
	}
	rt.Stop()
	cut := rec.Now()

	// The store is gone; all that survives is the crash image.
	image := fs.CrashImage()
	rt2 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt2.Start()
	defer rt2.Stop()
	st2, _, err := Open(rt2, Durability{Dir: chaosDir, FS: image})
	if err != nil {
		t.Fatalf("crashAt=%d seed=%#x: recovery failed: %v", crashAt, chaosSeed, err)
	}
	st2.Instrument(rec)
	for k := uint64(1); k <= chaosKeySpace; k++ {
		st2.GetSync(k)
	}
	// The recovered store must also accept new durable writes.
	if r := st2.SetSync(chaosProbesKey, 7); r.Err != nil {
		t.Fatalf("crashAt=%d: post-recovery write failed: %v", crashAt, r.Err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("crashAt=%d: post-recovery close failed: %v", crashAt, err)
	}

	volatile, durable := splitHistory(rec.History(), cut)
	if res := linearize.Check(volatile); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: pre-crash history not linearizable, bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(volatile))
	}
	if res := linearize.Check(durable); !res.Ok {
		t.Fatalf("crashAt=%d seed=%#x: durable history not linearizable (lost an acked write?), bad keys %v\n%s",
			crashAt, chaosSeed, res.BadKeys, dumpHistory(durable))
	}
	return fs.OpCount()
}

// dumpHistory renders a history for failure repro reports.
func dumpHistory(ops []linearize.Op) string {
	out := ""
	for _, op := range ops {
		out += op.String() + "\n"
	}
	return out
}

// TestChaosCrashAtEveryWALOp is the systematic sweep: a fault-free
// reference run enumerates every filesystem operation the WAL performs,
// then the workload is re-run crashing at each index in turn, recovering
// from the deterministic crash image, and checking both linearizability
// views. A failure message carries the seed and crash index — re-running
// with those values reproduces the exact schedule of injected faults.
func TestChaosCrashAtEveryWALOp(t *testing.T) {
	total := runChaosOnce(t, -1)
	if total < 10 {
		t.Fatalf("reference run performed only %d fs ops; workload too small to mean anything", total)
	}
	t.Logf("reference run: %d filesystem ops, crashing at each", total)
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for idx := int64(0); idx < total; idx += stride {
		runChaosOnce(t, idx)
	}
}

// TestChaosCatchesDroppedFsync is the harness's proof of usefulness: a WAL
// that acks before its data is actually durable (fsyncs silently dropped,
// page cache lost in the crash) must FAIL the durable check. If this test
// ever finds the history linearizable, the harness has lost its teeth.
func TestChaosCatchesDroppedFsync(t *testing.T) {
	fs := faultfs.NewMem(chaosSeed)
	fs.DropSyncs(true)                 // fsync lies: returns success, persists nothing
	fs.SetKeepPolicy(faultfs.KeepNone) // the crash loses everything unsynced
	rec := linearize.NewRecorder()

	rt := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt.Start()
	st, _, err := Open(rt, Durability{Dir: chaosDir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(rec)
	for k := uint64(1); k <= 4; k++ {
		if r := st.SetSync(k, 100+k); r.Err != nil {
			t.Fatalf("set %d: %v", k, r.Err) // acked fine — the fsync "succeeded"
		}
	}
	rt.Stop()
	cut := rec.Now()

	image := fs.CrashImage()
	rt2 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt2.Start()
	defer rt2.Stop()
	st2, _, err := Open(rt2, Durability{Dir: chaosDir, FS: image})
	if err != nil {
		t.Fatal(err)
	}
	st2.Instrument(rec)
	for k := uint64(1); k <= 4; k++ {
		st2.GetSync(k)
	}
	st2.Close()

	_, durable := splitHistory(rec.History(), cut)
	res := linearize.Check(durable)
	if res.Ok {
		t.Fatal("dropped fsyncs lost 4 acked writes, but the durable check accepted the history")
	}
	if len(res.BadKeys) == 0 {
		t.Fatal("rejection must name the keys that lost writes")
	}
	t.Logf("correctly rejected: lost acked writes on keys %v", res.BadKeys)
}

// TestChaosFourClientLiveRun is the accept-side fixture on the real
// runtime and real disk: four concurrent clients over a shared key space,
// no faults — the recorded history must be linearizable.
func TestChaosFourClientLiveRun(t *testing.T) {
	rt := newRT(t)
	st, _, err := Open(rt, Durability{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := linearize.NewRecorder()
	st.Instrument(rec)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + c)))
			for i := 0; i < 50; i++ {
				key := uint64(rng.Intn(6) + 1)
				switch rng.Intn(5) {
				case 0:
					st.GetSync(key)
				case 1:
					st.DeleteSync(key)
				default:
					st.SetSync(key, uint64(rng.Intn(1000)+1))
				}
			}
		}(c)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	hist := rec.History()
	if len(hist) != 200 {
		t.Fatalf("recorded %d ops, want 200", len(hist))
	}
	if res := linearize.Check(hist); !res.Ok {
		t.Fatalf("4-client run not linearizable, bad keys %v\n%s", res.BadKeys, dumpHistory(hist))
	}
}
