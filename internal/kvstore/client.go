package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/metrics"
)

// Client-side resilience defaults (see DialConfig).
const (
	// DefaultDialTimeout bounds how long Dial waits for the TCP connect:
	// a dial to an unresponsive address returns an error instead of
	// blocking forever.
	DefaultDialTimeout = 5 * time.Second

	// DefaultBackoffBase is the first retry's backoff delay; each further
	// attempt doubles it up to DefaultBackoffMax, with jitter.
	DefaultBackoffBase = 5 * time.Millisecond

	// DefaultBackoffMax caps the exponential backoff.
	DefaultBackoffMax = 500 * time.Millisecond
)

// ErrTooManyRetries marks an operation abandoned after DialConfig
// .MaxRetries replays (reconnects and/or overload backoffs) all failed.
// The wrapping error carries the last underlying cause; test with
// errors.Is(err, ErrTooManyRetries).
var ErrTooManyRetries = errors.New("kvstore: too many retries")

// ErrOverloaded marks a request the server shed at its admission gate
// ("ERR overloaded retry-after=<ms>") instead of executing. A shed
// request definitely did not run, so retrying it — after the hinted
// delay — is always safe, writes included. Test with
// errors.Is(err, ErrOverloaded); the concrete type is *OverloadedError.
var ErrOverloaded = errors.New("kvstore: server overloaded")

// OverloadedError is the parsed form of the server's admission-control
// rejection, carrying its Retry-After hint.
type OverloadedError struct {
	// RetryAfter is the server's backoff hint (zero if absent).
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("kvstore: server overloaded (retry after %v)", e.RetryAfter)
}

// Is lets errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// parseOverloadedReply recognizes the admission gate's rejection line.
func parseOverloadedReply(reply string) (retryAfter time.Duration, ok bool) {
	rest, found := strings.CutPrefix(reply, "ERR overloaded")
	if !found {
		return 0, false
	}
	for _, f := range strings.Fields(rest) {
		if v, isHint := strings.CutPrefix(f, "retry-after="); isHint {
			if ms, err := strconv.Atoi(v); err == nil && ms >= 0 {
				retryAfter = time.Duration(ms) * time.Millisecond
			}
		}
	}
	return retryAfter, true
}

// ErrReadonly marks a write rejected because the server is a replica (or a
// fenced ex-primary): "ERR readonly primary=<addr>". Like an overload
// shed, a readonly rejection definitely did not execute, so replaying it —
// against the advertised primary — is always safe. Test with
// errors.Is(err, ErrReadonly); the concrete type is *ReadonlyError.
var ErrReadonly = errors.New("kvstore: server is readonly")

// ReadonlyError is the parsed form of a readonly rejection.
type ReadonlyError struct {
	// Primary is the address the server believes can take writes (empty
	// when the server does not know — e.g. a fenced primary awaiting a
	// supervisor).
	Primary string
}

func (e *ReadonlyError) Error() string {
	if e.Primary == "" {
		return "kvstore: server is readonly (no known primary)"
	}
	return fmt.Sprintf("kvstore: server is readonly (primary %s)", e.Primary)
}

// Is lets errors.Is(err, ErrReadonly) match.
func (e *ReadonlyError) Is(target error) bool { return target == ErrReadonly }

// parseReadonlyReply recognizes the role gate's rejection line.
func parseReadonlyReply(reply string) (primary string, ok bool) {
	rest, found := strings.CutPrefix(reply, "ERR readonly")
	if !found {
		return "", false
	}
	for _, f := range strings.Fields(rest) {
		if v, isAddr := strings.CutPrefix(f, "primary="); isAddr {
			primary = v
		}
	}
	return primary, true
}

// ErrStale marks a bounded-staleness read the replica refused: its lag
// exceeded the requested bound, or it is still bootstrapping.
var ErrStale = errors.New("kvstore: replica too stale")

// replyError converts a server error reply line into a typed error:
// admission-gate rejections become *OverloadedError (matching
// ErrOverloaded), role rejections *ReadonlyError (matching ErrReadonly),
// everything else the legacy opaque error.
func replyError(reply string) error {
	if ra, ok := parseOverloadedReply(reply); ok {
		return &OverloadedError{RetryAfter: ra}
	}
	if primary, ok := parseReadonlyReply(reply); ok {
		return &ReadonlyError{Primary: primary}
	}
	if strings.HasPrefix(reply, "ERR stale") || strings.HasPrefix(reply, "ERR catching-up") {
		return fmt.Errorf("%w: %s", ErrStale, reply)
	}
	return errors.New("kvstore: " + reply)
}

// DialConfig tunes the client's resilience: connect/read/write deadlines
// and the retry policy for blocking operations. The zero value gives the
// historical behavior plus a DefaultDialTimeout — no I/O deadlines, no
// retries.
type DialConfig struct {
	// DialTimeout bounds the TCP connect (0 = DefaultDialTimeout;
	// negative = no timeout).
	DialTimeout time.Duration

	// ReadTimeout bounds each wait for a reply line (0 = none). A reply
	// that misses the deadline surfaces os.ErrDeadlineExceeded and the
	// connection must be re-established (Await's scanner state is gone);
	// blocking operations with retries do that automatically.
	ReadTimeout time.Duration

	// WriteTimeout bounds each flush of queued requests (0 = none).
	WriteTimeout time.Duration

	// MaxRetries is how many times a blocking operation is replayed
	// after a failure before giving up with ErrTooManyRetries (0 = fail
	// on the first error). Overload rejections are replayed for every
	// operation (a shed request never executed); transport errors are
	// replayed — over a fresh connection — only for idempotent reads
	// (Get/Scan/Ping/Stats/Count), because a broken connection leaves a
	// write's fate unknown. Pipelined Send/Await traffic is never
	// replayed automatically: the window's replay semantics belong to
	// the application.
	MaxRetries int

	// BackoffBase is the first backoff delay (0 = DefaultBackoffBase);
	// attempt n waits min(BackoffBase << n, BackoffMax), half fixed and
	// half jittered, or the server's Retry-After hint if larger.
	BackoffBase time.Duration

	// BackoffMax caps the backoff (0 = DefaultBackoffMax).
	BackoffMax time.Duration

	// Seed drives the backoff jitter deterministically (0 = seed 1), so
	// chaos tests reproduce their exact retry timing.
	Seed int64

	// FollowPrimary makes blocking writes follow "ERR readonly
	// primary=<addr>" rejections: the client re-points at the advertised
	// primary, reconnects, and replays (a readonly rejection never
	// executed, so the replay is safe even for writes). Counts against
	// MaxRetries like any other retry.
	FollowPrimary bool

	// Rewrite, when set, maps a server-advertised address (the primary in
	// a readonly redirect) to the address the client should actually dial.
	// Chaos tests use it to route advertised addresses through fault
	// proxies.
	Rewrite func(addr string) string
}

// withDefaults fills the zero fields.
func (c DialConfig) withDefaults() DialConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClientMetrics exposes the client's resilience counters.
type ClientMetrics struct {
	// Retries counts operations replayed after a failure (reconnect
	// replays and overload backoffs).
	Retries metrics.Counter
	// Reconnects counts re-established connections.
	Reconnects metrics.Counter
	// DeadlineDrops counts operations that hit a read or write deadline.
	DeadlineDrops metrics.Counter
	// Overloaded counts "ERR overloaded" rejections observed.
	Overloaded metrics.Counter
}

// String renders the counters on one line.
func (m *ClientMetrics) String() string {
	return fmt.Sprintf("retries=%d reconnects=%d deadline_drops=%d overloaded=%d",
		m.Retries.Value(), m.Reconnects.Value(), m.DeadlineDrops.Value(), m.Overloaded.Value())
}

// Client speaks the Server's protocol in two modes:
//
//   - Blocking: Get/Set/Delete/Scan/Ping issue one request and wait for
//     its reply — one round trip per call.
//   - Pipelined: SendGet/SendSet/SendDelete/SendScan queue requests
//     without waiting; AwaitGet/AwaitSet/AwaitDelete/AwaitScan read the
//     replies strictly in issue order. Many requests share one round
//     trip, which is what keeps the server's task window full.
//
// The two modes may be mixed as long as every Send is matched by the
// Await of the same type in issue order. A Client is not safe for
// concurrent use. Note that pipelined requests execute concurrently in
// the store: a SendGet issued before the reply to a SendSet of the same
// key may observe the pre-SET value (see Server).
type Client struct {
	conn     net.Conn
	r        *bufio.Scanner
	w        *bufio.Writer
	inflight int

	addr     string   // address of the live connection
	seeds    []string // configured addresses, tried round-robin
	si       int      // index into seeds of the last successful dial
	redirect string   // server-advertised primary, tried before seeds

	cfg DialConfig
	rng *rand.Rand
	m   ClientMetrics
}

// Dial connects to a Server with the default resilience configuration:
// the connect is bounded by DefaultDialTimeout, I/O has no deadlines, and
// nothing is retried.
func Dial(addr string) (*Client, error) { return DialWith(addr, DialConfig{}) }

// DialWith connects to a Server with explicit resilience settings.
func DialWith(addr string, cfg DialConfig) (*Client, error) {
	return DialAnyWith([]string{addr}, cfg)
}

// DialAnyWith connects to the first reachable of several servers (a
// cluster's members, in any order). Reconnects rotate through the list
// starting from the last address that worked, so a client whose server
// dies fails over to a sibling on the next retry; FollowPrimary then
// steers writes back to whichever member is primary.
func DialAnyWith(addrs []string, cfg DialConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: DialAnyWith with no addresses")
	}
	cfg = cfg.withDefaults()
	c := &Client{seeds: addrs, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the address of the current connection.
func (c *Client) Addr() string { return c.addr }

// scanFullLines is bufio.ScanLines minus its final-token leniency: a
// line with no terminating newline is never yielded, even at stream end.
// bufio.Scanner hands the split function atEOF=true on ANY read error —
// including an expired read deadline — so with the default split a
// deadline firing mid-reply would surface the reply's prefix ("VALUE"
// cut from "VALUE 100") as a complete line and a retryable timeout would
// masquerade as a protocol error. The newline is the frame terminator;
// without it there is no frame.
func scanFullLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line := data[:i]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return i + 1, line, nil
	}
	return 0, nil, nil
}

// dialOne opens one TCP connection, bounded by DialTimeout.
func (c *Client) dialOne(addr string) (net.Conn, error) {
	if c.cfg.DialTimeout > 0 {
		return net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	}
	return net.Dial("tcp", addr)
}

// connect (re)establishes the TCP connection and resets the wire state.
// A pending redirect target is tried first (and cleared if unreachable),
// then the seed addresses round-robin from the last one that worked.
func (c *Client) connect() error {
	var conn net.Conn
	var err error
	if c.redirect != "" {
		if conn, err = c.dialOne(c.redirect); err == nil {
			c.addr = c.redirect
		} else {
			c.redirect = "" // unreachable; fall back to the seed rotation
		}
	}
	for i := 0; conn == nil && i < len(c.seeds); i++ {
		idx := (c.si + i) % len(c.seeds)
		if conn, err = c.dialOne(c.seeds[idx]); err == nil {
			c.si, c.addr = idx, c.seeds[idx]
		}
	}
	if conn == nil {
		return fmt.Errorf("kvstore: dial: %w", err)
	}
	r := bufio.NewScanner(conn)
	// Reply lines (large SCAN and MGET results) can far exceed
	// bufio.Scanner's default 64 KiB token cap; size it to the protocol's
	// actual line limit so big replies don't kill the connection.
	r.Buffer(make([]byte, 64<<10), MaxLineBytes)
	r.Split(scanFullLines)
	c.conn, c.r, c.w, c.inflight = conn, r, bufio.NewWriter(conn), 0
	return nil
}

// Reconnect drops the current connection and dials a fresh one with the
// same configuration. Outstanding pipelined requests are abandoned —
// their replies will never be read — so InFlight resets to zero. The
// blocking operations call this automatically when retries are enabled.
//
// The seed rotation restarts one past the previous address: a reconnect
// means the old connection failed, and a dead member behind a proxy (or
// any middlebox that accepts and then drops) passes the dial check, so
// restarting AT the old member could retry it forever.
func (c *Client) Reconnect() error {
	c.conn.Close()
	c.m.Reconnects.Inc()
	if len(c.seeds) > 0 {
		c.si = (c.si + 1) % len(c.seeds)
	}
	return c.connect()
}

// Metrics returns the client's live resilience counters.
func (c *Client) Metrics() *ClientMetrics { return &c.m }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// InFlight returns the number of issued requests not yet awaited.
func (c *Client) InFlight() int { return c.inflight }

// send queues one request line without flushing.
func (c *Client) send(line string) error {
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	c.inflight++
	return nil
}

// Flush pushes all queued requests to the server, bounded by the
// configured WriteTimeout. Await flushes implicitly; an explicit Flush
// lets the server start on a partial window early.
func (c *Client) Flush() error {
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	if err := c.w.Flush(); err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			c.m.DeadlineDrops.Inc()
		}
		return err
	}
	return nil
}

// Await flushes queued requests and reads the oldest outstanding reply,
// bounded by the configured ReadTimeout. A deadline error poisons the
// connection (a late reply could otherwise be mistaken for the next one);
// call Reconnect — or use the blocking methods with retries enabled,
// which do — before reusing the client.
func (c *Client) Await() (string, error) {
	if c.inflight == 0 {
		return "", errors.New("kvstore: Await with no request in flight")
	}
	if err := c.Flush(); err != nil {
		return "", err
	}
	if c.cfg.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				c.m.DeadlineDrops.Inc()
			}
			return "", err
		}
		return "", errors.New("kvstore: connection closed")
	}
	c.inflight--
	return c.r.Text(), nil
}

// roundTrip sends one line and reads its reply (blocking mode, no retry).
func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	return c.Await()
}

// backoff sleeps before retry attempt n: capped exponential with jitter
// (half fixed, half seeded-random), or the server's Retry-After hint when
// that is longer.
func (c *Client) backoff(attempt int, hint time.Duration) {
	d := c.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	if hint > d {
		d = hint
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// do runs one blocking request with the configured retry policy.
// Overload rejections are retryable for every command — the gate shed the
// request before dispatch, so it never executed. Readonly rejections
// likewise never executed; with FollowPrimary set they are replayed
// against the advertised primary. Transport errors are retryable (over a
// fresh connection) only when idempotent is true: a broken connection
// leaves a non-idempotent write's fate unknown, and that ambiguity
// belongs to the caller.
func (c *Client) do(line string, idempotent bool) (string, error) {
	var last error
	for attempt := 0; ; attempt++ {
		reply, err := c.roundTrip(line)
		transport := false
		reconnect := false
		switch {
		case err != nil:
			last = err
			transport = true
			if !idempotent {
				return "", last
			}
		default:
			if ra, over := parseOverloadedReply(reply); over {
				c.m.Overloaded.Inc()
				last = &OverloadedError{RetryAfter: ra}
				break
			}
			if primary, ro := parseReadonlyReply(reply); ro && c.cfg.FollowPrimary {
				last = &ReadonlyError{Primary: primary}
				if primary != "" {
					if c.cfg.Rewrite != nil {
						primary = c.cfg.Rewrite(primary)
					}
					c.redirect = primary
				}
				// Even with no advertised primary, reconnecting re-enters
				// the seed rotation — a sibling may have been promoted.
				reconnect = true
				break
			}
			return reply, nil
		}
		if attempt >= c.cfg.MaxRetries {
			if c.cfg.MaxRetries == 0 {
				return "", last
			}
			return "", fmt.Errorf("%w (%d attempts): %w", ErrTooManyRetries, attempt+1, last)
		}
		c.m.Retries.Inc()
		var hint time.Duration
		if oe, ok := last.(*OverloadedError); ok {
			hint = oe.RetryAfter
		}
		c.backoff(attempt, hint)
		if transport || reconnect {
			// The old connection's stream state is unusable after a
			// transport error (a late reply could alias the retried
			// request's), and a redirect needs a connection to the new
			// target; replay on a fresh one either way.
			if rerr := c.Reconnect(); rerr != nil {
				last = rerr
			}
		}
	}
}

// SendGet queues a GET without waiting; match with AwaitGet.
func (c *Client) SendGet(key uint64) error {
	return c.send(fmt.Sprintf("GET %d", key))
}

// SendSet queues a SET without waiting; match with AwaitSet.
func (c *Client) SendSet(key, value uint64) error {
	return c.send(fmt.Sprintf("SET %d %d", key, value))
}

// SendDelete queues a DEL without waiting; match with AwaitDelete.
func (c *Client) SendDelete(key uint64) error {
	return c.send(fmt.Sprintf("DEL %d", key))
}

// SendScan queues a SCAN of [from, to) without waiting; match with
// AwaitScan. limit <= 0 leaves the cap to the server (DefaultScanLimit);
// the server caps explicit limits at MaxScanLimit.
func (c *Client) SendScan(from, to uint64, limit int) error {
	if limit > 0 {
		return c.send(fmt.Sprintf("SCAN %d %d %d", from, to, limit))
	}
	return c.send(fmt.Sprintf("SCAN %d %d", from, to))
}

// AwaitGet reads the oldest outstanding reply as a GET reply.
func (c *Client) AwaitGet() (value uint64, found bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return 0, false, err
	}
	return parseGetReply(reply)
}

// AwaitSet reads the oldest outstanding reply as a SET reply.
func (c *Client) AwaitSet() (overwrote bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return false, err
	}
	return parseSetReply(reply)
}

// AwaitDelete reads the oldest outstanding reply as a DEL reply.
func (c *Client) AwaitDelete() (existed bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return false, err
	}
	return parseDeleteReply(reply)
}

// AwaitScan reads the oldest outstanding reply as a SCAN reply. truncated
// reports that the server capped the result; resume from the last
// returned key + 1.
func (c *Client) AwaitScan() (pairs []blinktree.KV, truncated bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return nil, false, err
	}
	return parseScanReply(reply)
}

// Get fetches a key. An idempotent read: with MaxRetries set it is
// replayed across reconnects and overload backoffs.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	reply, err := c.do(fmt.Sprintf("GET %d", key), true)
	if err != nil {
		return 0, false, err
	}
	return parseGetReply(reply)
}

// Set stores key=value; overwrote reports whether the key existed. A
// shed ("ERR overloaded") Set is retried — it never executed — but a
// transport failure mid-Set is returned as-is: the write may or may not
// have applied, and only the caller can decide what that means.
func (c *Client) Set(key, value uint64) (overwrote bool, err error) {
	reply, err := c.do(fmt.Sprintf("SET %d %d", key, value), false)
	if err != nil {
		return false, err
	}
	return parseSetReply(reply)
}

// Delete removes a key. Retry semantics match Set.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	reply, err := c.do(fmt.Sprintf("DEL %d", key), false)
	if err != nil {
		return false, err
	}
	return parseDeleteReply(reply)
}

// ServerStats is a parsed STATS reply: aggregate wire and operation
// counters plus the per-shard operation breakdown.
type ServerStats struct {
	Gets, Sets, Dels uint64
	Errs, TooLong    uint64
	// Shed counts requests the admission gate rejected with
	// "ERR overloaded" instead of dispatching.
	Shed uint64
	// DeadlineDrops counts connections reaped by a read (idle) or write
	// deadline.
	DeadlineDrops uint64
	// PerShard holds each shard's Gets/Sets/Dels in shard order; length
	// is the server's shard count (1 for an unsharded store).
	PerShard []Stats
	// Extra holds every field this client version does not know by name
	// (for example replication's role=primary or lag=3), keyed by field
	// name with the raw value text. Servers grow new STATS fields across
	// versions; an old client must report them rather than reject the
	// whole reply. Nil when the reply had no unknown fields.
	Extra map[string]string
}

// ExtraUint parses an Extra field as a decimal counter.
func (s *ServerStats) ExtraUint(name string) (uint64, bool) {
	v, ok := s.Extra[name]
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(v, 10, 64)
	return n, err == nil
}

// PagerReport is the paged value tier's STATS digest (the pg_* fields a
// paged server appends; see DESIGN.md §10).
type PagerReport struct {
	Hits, Misses          uint64
	Evictions, Writebacks uint64
	Pages, Resident       uint64
	LoadP50Us, LoadP99Us  uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no pool traffic.
func (r PagerReport) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Pager extracts the paged-tier report from the Extra fields. ok is false
// when the server sent no pg_* fields at all — an old server, or one
// without a paged backend — so callers gate the whole report on it.
// Individual missing or malformed fields beyond the hits/misses pair are
// tolerated as zero rather than failing the report: servers grow pg_*
// fields across versions and a newer client must degrade, not reject.
func (s *ServerStats) Pager() (PagerReport, bool) {
	var r PagerReport
	hits, okH := s.ExtraUint("pg_hits")
	misses, okM := s.ExtraUint("pg_misses")
	if !okH && !okM {
		return PagerReport{}, false
	}
	r.Hits, r.Misses = hits, misses
	opt := []struct {
		name string
		dst  *uint64
	}{
		{"pg_evictions", &r.Evictions},
		{"pg_writebacks", &r.Writebacks},
		{"pg_pages", &r.Pages},
		{"pg_resident", &r.Resident},
		{"pg_load_p50_us", &r.LoadP50Us},
		{"pg_load_p99_us", &r.LoadP99Us},
	}
	for _, f := range opt {
		if v, ok := s.ExtraUint(f.name); ok {
			*f.dst = v
		}
	}
	return r, true
}

// isShardField reports whether a STATS field name is a per-shard counter
// (s<digits>), as opposed to a named field like "sets", "shards", "shed".
func isShardField(name string) bool {
	if len(name) < 2 || name[0] != 's' {
		return false
	}
	for i := 1; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return false
		}
	}
	return true
}

// Stats fetches and parses the server's STATS line (idempotent,
// replayed under the retry policy).
func (c *Client) Stats() (ServerStats, error) {
	reply, err := c.do("STATS", true)
	if err != nil {
		return ServerStats{}, err
	}
	return parseStatsReply(reply)
}

func parseStatsReply(reply string) (ServerStats, error) {
	rest, ok := strings.CutPrefix(reply, "STATS ")
	if !ok {
		return ServerStats{}, replyError(reply)
	}
	var st ServerStats
	shards := -1
	for _, field := range strings.Fields(rest) {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
		}
		if isShardField(name) {
			idx, err := strconv.Atoi(name[1:])
			if err != nil || idx < 0 {
				return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
			}
			parts := strings.Split(val, "/")
			if len(parts) != 3 {
				return ServerStats{}, errors.New("kvstore: malformed STATS shard field " + field)
			}
			var ss Stats
			var errs [3]error
			ss.Gets, errs[0] = strconv.ParseUint(parts[0], 10, 64)
			ss.Sets, errs[1] = strconv.ParseUint(parts[1], 10, 64)
			ss.Dels, errs[2] = strconv.ParseUint(parts[2], 10, 64)
			if errs[0] != nil || errs[1] != nil || errs[2] != nil {
				return ServerStats{}, errors.New("kvstore: malformed STATS shard field " + field)
			}
			for len(st.PerShard) <= idx {
				st.PerShard = append(st.PerShard, Stats{})
			}
			st.PerShard[idx] = ss
			continue
		}
		// Known fields parse strictly; anything else — numeric or not —
		// lands in Extra so a newer server's fields survive an older
		// client's parser.
		var dst *uint64
		switch name {
		case "gets":
			dst = &st.Gets
		case "sets":
			dst = &st.Sets
		case "dels":
			dst = &st.Dels
		case "errs":
			dst = &st.Errs
		case "toolong":
			dst = &st.TooLong
		case "shed":
			dst = &st.Shed
		case "deadline_drops":
			dst = &st.DeadlineDrops
		case "shards":
		default:
			if st.Extra == nil {
				st.Extra = make(map[string]string)
			}
			st.Extra[name] = val
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
		}
		if dst != nil {
			*dst = n
		} else {
			shards = int(n)
		}
	}
	if shards >= 0 && len(st.PerShard) != shards {
		return ServerStats{}, errors.New("kvstore: STATS shard fields disagree with shards count")
	}
	return st, nil
}

// Ping checks liveness (idempotent, replayed under the retry policy).
func (c *Client) Ping() error {
	reply, err := c.do("PING", true)
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return replyError(reply)
	}
	return nil
}

// Scan fetches records with keys in [from, to), sorted by key, up to the
// server's default result cap (the truncation flag is dropped; use
// ScanLimit to observe it).
func (c *Client) Scan(from, to uint64) ([]blinktree.KV, error) {
	pairs, _, err := c.ScanLimit(from, to, 0)
	return pairs, err
}

// ScanLimit fetches up to limit records with keys in [from, to), sorted by
// key (limit <= 0 uses the server's default cap). truncated reports that
// more records may exist past the last returned key. Idempotent: replayed
// under the retry policy.
func (c *Client) ScanLimit(from, to uint64, limit int) (pairs []blinktree.KV, truncated bool, err error) {
	line := fmt.Sprintf("SCAN %d %d", from, to)
	if limit > 0 {
		line = fmt.Sprintf("SCAN %d %d %d", from, to, limit)
	}
	reply, err := c.do(line, true)
	if err != nil {
		return nil, false, err
	}
	return parseScanReply(reply)
}

// StaleValue is a bounded-staleness read's result. A replica answers with
// the window of log sequence numbers that could have produced the
// observation: SeqLo is its applied seq when the read was admitted, SeqHi
// the primary's last-known seq when it replied, Lag their gap. A primary
// answers GETR with a plain linearizable read (Primary=true, zero window).
type StaleValue struct {
	Value uint64
	Found bool
	// SeqLo..SeqHi bounds the log positions the observation may reflect.
	SeqLo, SeqHi uint64
	// Lag is the replica's estimate of how many committed records it had
	// not yet applied when it served the read.
	Lag uint64
	// Primary reports that the server was the primary and served a strict
	// read instead of a windowed one.
	Primary bool
}

// GetStale fetches a key under an explicit staleness bound: the server
// refuses (ErrStale) rather than answer from state more than maxLag
// records behind the primary. maxLag 0 means "any lag". Idempotent —
// replayed under the retry policy.
func (c *Client) GetStale(key, maxLag uint64) (StaleValue, error) {
	reply, err := c.do(fmt.Sprintf("GETR %d %d", key, maxLag), true)
	if err != nil {
		return StaleValue{}, err
	}
	return parseStaleReply(reply)
}

// parseStaleReply decodes the GETR reply grammar:
//
//	RVALUE <lo> <hi> <lag> <value>   replica, key present
//	RNONE <lo> <hi> <lag>            replica, key absent
//	RVALUEP <value>                  primary, strict read, key present
//	RNONEP                           primary, strict read, key absent
func parseStaleReply(reply string) (StaleValue, error) {
	fields := strings.Fields(reply)
	if len(fields) == 0 {
		return StaleValue{}, replyError(reply)
	}
	var sv StaleValue
	var nums []string
	switch {
	case fields[0] == "RVALUE" && len(fields) == 5:
		sv.Found, nums = true, fields[1:]
	case fields[0] == "RNONE" && len(fields) == 4:
		nums = fields[1:]
	case fields[0] == "RVALUEP" && len(fields) == 2:
		sv.Found, sv.Primary, nums = true, true, fields[1:]
	case fields[0] == "RNONEP" && len(fields) == 1:
		sv.Primary = true
	case fields[0] == "RVALUE" || fields[0] == "RNONE" || fields[0] == "RVALUEP" || fields[0] == "RNONEP":
		return StaleValue{}, errors.New("kvstore: malformed " + fields[0] + " reply")
	default:
		return StaleValue{}, replyError(reply)
	}
	parsed := make([]uint64, len(nums))
	for i, f := range nums {
		n, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return StaleValue{}, errors.New("kvstore: malformed " + fields[0] + " reply")
		}
		parsed[i] = n
	}
	switch {
	case sv.Primary && sv.Found:
		sv.Value = parsed[0]
	case !sv.Primary:
		sv.SeqLo, sv.SeqHi, sv.Lag = parsed[0], parsed[1], parsed[2]
		if sv.Found {
			sv.Value = parsed[3]
		}
	}
	return sv, nil
}

func parseGetReply(reply string) (uint64, bool, error) {
	if reply == "NOT_FOUND" {
		return 0, false, nil
	}
	if v, ok := strings.CutPrefix(reply, "VALUE "); ok {
		value, err := strconv.ParseUint(v, 10, 64)
		return value, err == nil, err
	}
	return 0, false, replyError(reply)
}

func parseSetReply(reply string) (bool, error) {
	switch reply {
	case "STORED":
		return false, nil
	case "OVERWRITTEN":
		return true, nil
	}
	return false, replyError(reply)
}

func parseDeleteReply(reply string) (bool, error) {
	switch reply {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	return false, replyError(reply)
}

func parseScanReply(reply string) ([]blinktree.KV, bool, error) {
	rest, ok := strings.CutPrefix(reply, "RANGE ")
	if !ok {
		return nil, false, replyError(reply)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	truncated := false
	if len(fields) == 2+2*n && fields[len(fields)-1] == "MORE" {
		truncated = true
		fields = fields[:len(fields)-1]
	}
	if len(fields) != 1+2*n {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	pairs := make([]blinktree.KV, n)
	for i := 0; i < n; i++ {
		k, err1 := strconv.ParseUint(fields[1+2*i], 10, 64)
		v, err2 := strconv.ParseUint(fields[2+2*i], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, false, errors.New("kvstore: malformed RANGE pair")
		}
		pairs[i] = blinktree.KV{Key: k, Value: v}
	}
	return pairs, truncated, nil
}
