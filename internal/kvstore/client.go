package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"mxtasking/internal/blinktree"
)

// Client speaks the Server's protocol in two modes:
//
//   - Blocking: Get/Set/Delete/Scan/Ping issue one request and wait for
//     its reply — one round trip per call.
//   - Pipelined: SendGet/SendSet/SendDelete/SendScan queue requests
//     without waiting; AwaitGet/AwaitSet/AwaitDelete/AwaitScan read the
//     replies strictly in issue order. Many requests share one round
//     trip, which is what keeps the server's task window full.
//
// The two modes may be mixed as long as every Send is matched by the
// Await of the same type in issue order. A Client is not safe for
// concurrent use. Note that pipelined requests execute concurrently in
// the store: a SendGet issued before the reply to a SendSet of the same
// key may observe the pre-SET value (see Server).
type Client struct {
	conn     net.Conn
	r        *bufio.Scanner
	w        *bufio.Writer
	inflight int
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial: %w", err)
	}
	r := bufio.NewScanner(conn)
	// Reply lines (large SCAN and MGET results) can far exceed
	// bufio.Scanner's default 64 KiB token cap; size it to the protocol's
	// actual line limit so big replies don't kill the connection.
	r.Buffer(make([]byte, 64<<10), MaxLineBytes)
	return &Client{conn: conn, r: r, w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// InFlight returns the number of issued requests not yet awaited.
func (c *Client) InFlight() int { return c.inflight }

// send queues one request line without flushing.
func (c *Client) send(line string) error {
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	c.inflight++
	return nil
}

// Flush pushes all queued requests to the server. Await flushes
// implicitly; an explicit Flush lets the server start on a partial window
// early.
func (c *Client) Flush() error { return c.w.Flush() }

// Await flushes queued requests and reads the oldest outstanding reply.
func (c *Client) Await() (string, error) {
	if c.inflight == 0 {
		return "", errors.New("kvstore: Await with no request in flight")
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", errors.New("kvstore: connection closed")
	}
	c.inflight--
	return c.r.Text(), nil
}

// roundTrip sends one line and reads its reply (blocking mode).
func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	return c.Await()
}

// SendGet queues a GET without waiting; match with AwaitGet.
func (c *Client) SendGet(key uint64) error {
	return c.send(fmt.Sprintf("GET %d", key))
}

// SendSet queues a SET without waiting; match with AwaitSet.
func (c *Client) SendSet(key, value uint64) error {
	return c.send(fmt.Sprintf("SET %d %d", key, value))
}

// SendDelete queues a DEL without waiting; match with AwaitDelete.
func (c *Client) SendDelete(key uint64) error {
	return c.send(fmt.Sprintf("DEL %d", key))
}

// SendScan queues a SCAN of [from, to) without waiting; match with
// AwaitScan. limit <= 0 leaves the cap to the server (DefaultScanLimit);
// the server caps explicit limits at MaxScanLimit.
func (c *Client) SendScan(from, to uint64, limit int) error {
	if limit > 0 {
		return c.send(fmt.Sprintf("SCAN %d %d %d", from, to, limit))
	}
	return c.send(fmt.Sprintf("SCAN %d %d", from, to))
}

// AwaitGet reads the oldest outstanding reply as a GET reply.
func (c *Client) AwaitGet() (value uint64, found bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return 0, false, err
	}
	return parseGetReply(reply)
}

// AwaitSet reads the oldest outstanding reply as a SET reply.
func (c *Client) AwaitSet() (overwrote bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return false, err
	}
	return parseSetReply(reply)
}

// AwaitDelete reads the oldest outstanding reply as a DEL reply.
func (c *Client) AwaitDelete() (existed bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return false, err
	}
	return parseDeleteReply(reply)
}

// AwaitScan reads the oldest outstanding reply as a SCAN reply. truncated
// reports that the server capped the result; resume from the last
// returned key + 1.
func (c *Client) AwaitScan() (pairs []blinktree.KV, truncated bool, err error) {
	reply, err := c.Await()
	if err != nil {
		return nil, false, err
	}
	return parseScanReply(reply)
}

// Get fetches a key.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	if err := c.SendGet(key); err != nil {
		return 0, false, err
	}
	return c.AwaitGet()
}

// Set stores key=value; overwrote reports whether the key existed.
func (c *Client) Set(key, value uint64) (overwrote bool, err error) {
	if err := c.SendSet(key, value); err != nil {
		return false, err
	}
	return c.AwaitSet()
}

// Delete removes a key.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	if err := c.SendDelete(key); err != nil {
		return false, err
	}
	return c.AwaitDelete()
}

// ServerStats is a parsed STATS reply: aggregate wire and operation
// counters plus the per-shard operation breakdown.
type ServerStats struct {
	Gets, Sets, Dels uint64
	Errs, TooLong    uint64
	// PerShard holds each shard's Gets/Sets/Dels in shard order; length
	// is the server's shard count (1 for an unsharded store).
	PerShard []Stats
}

// Stats fetches and parses the server's STATS line.
func (c *Client) Stats() (ServerStats, error) {
	reply, err := c.roundTrip("STATS")
	if err != nil {
		return ServerStats{}, err
	}
	return parseStatsReply(reply)
}

func parseStatsReply(reply string) (ServerStats, error) {
	rest, ok := strings.CutPrefix(reply, "STATS ")
	if !ok {
		return ServerStats{}, errors.New("kvstore: " + reply)
	}
	var st ServerStats
	shards := -1
	for _, field := range strings.Fields(rest) {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
		}
		if strings.HasPrefix(name, "s") && name != "sets" && name != "shards" {
			idx, err := strconv.Atoi(name[1:])
			if err != nil || idx < 0 {
				return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
			}
			parts := strings.Split(val, "/")
			if len(parts) != 3 {
				return ServerStats{}, errors.New("kvstore: malformed STATS shard field " + field)
			}
			var ss Stats
			var errs [3]error
			ss.Gets, errs[0] = strconv.ParseUint(parts[0], 10, 64)
			ss.Sets, errs[1] = strconv.ParseUint(parts[1], 10, 64)
			ss.Dels, errs[2] = strconv.ParseUint(parts[2], 10, 64)
			if errs[0] != nil || errs[1] != nil || errs[2] != nil {
				return ServerStats{}, errors.New("kvstore: malformed STATS shard field " + field)
			}
			for len(st.PerShard) <= idx {
				st.PerShard = append(st.PerShard, Stats{})
			}
			st.PerShard[idx] = ss
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return ServerStats{}, errors.New("kvstore: malformed STATS field " + field)
		}
		switch name {
		case "gets":
			st.Gets = n
		case "sets":
			st.Sets = n
		case "dels":
			st.Dels = n
		case "errs":
			st.Errs = n
		case "toolong":
			st.TooLong = n
		case "shards":
			shards = int(n)
		}
	}
	if shards >= 0 && len(st.PerShard) != shards {
		return ServerStats{}, errors.New("kvstore: STATS shard fields disagree with shards count")
	}
	return st, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	reply, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return errors.New("kvstore: " + reply)
	}
	return nil
}

// Scan fetches records with keys in [from, to), sorted by key, up to the
// server's default result cap (the truncation flag is dropped; use
// ScanLimit to observe it).
func (c *Client) Scan(from, to uint64) ([]blinktree.KV, error) {
	pairs, _, err := c.ScanLimit(from, to, 0)
	return pairs, err
}

// ScanLimit fetches up to limit records with keys in [from, to), sorted by
// key (limit <= 0 uses the server's default cap). truncated reports that
// more records may exist past the last returned key.
func (c *Client) ScanLimit(from, to uint64, limit int) (pairs []blinktree.KV, truncated bool, err error) {
	if err := c.SendScan(from, to, limit); err != nil {
		return nil, false, err
	}
	return c.AwaitScan()
}

func parseGetReply(reply string) (uint64, bool, error) {
	if reply == "NOT_FOUND" {
		return 0, false, nil
	}
	if v, ok := strings.CutPrefix(reply, "VALUE "); ok {
		value, err := strconv.ParseUint(v, 10, 64)
		return value, err == nil, err
	}
	return 0, false, errors.New("kvstore: " + reply)
}

func parseSetReply(reply string) (bool, error) {
	switch reply {
	case "STORED":
		return false, nil
	case "OVERWRITTEN":
		return true, nil
	}
	return false, errors.New("kvstore: " + reply)
}

func parseDeleteReply(reply string) (bool, error) {
	switch reply {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	return false, errors.New("kvstore: " + reply)
}

func parseScanReply(reply string) ([]blinktree.KV, bool, error) {
	rest, ok := strings.CutPrefix(reply, "RANGE ")
	if !ok {
		return nil, false, errors.New("kvstore: " + reply)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	truncated := false
	if len(fields) == 2+2*n && fields[len(fields)-1] == "MORE" {
		truncated = true
		fields = fields[:len(fields)-1]
	}
	if len(fields) != 1+2*n {
		return nil, false, errors.New("kvstore: malformed RANGE reply")
	}
	pairs := make([]blinktree.KV, n)
	for i := 0; i < n; i++ {
		k, err1 := strconv.ParseUint(fields[1+2*i], 10, 64)
		v, err2 := strconv.ParseUint(fields[2+2*i], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, false, errors.New("kvstore: malformed RANGE pair")
		}
		pairs[i] = blinktree.KV{Key: k, Value: v}
	}
	return pairs, truncated, nil
}
