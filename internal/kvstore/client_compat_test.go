package kvstore

import (
	"errors"
	"testing"
)

// TestStatsForwardCompat feeds the STATS parser fields from an imaginary
// future server version. Unknown fields — numeric or not — must land in
// Extra instead of failing the whole reply: a v1 client pointed at a v3
// server still reads the counters it knows.
func TestStatsForwardCompat(t *testing.T) {
	reply := "STATS gets=7 sets=3 dels=1 errs=0 toolong=2 shed=5 deadline_drops=4 " +
		"role=primary lag=3 applied_seq=42 peer=127.0.0.1:4021 flux_capacitor=1.21gw " +
		"shards=2 s0=1/2/3 s1=6/1/0"
	st, err := parseStatsReply(reply)
	if err != nil {
		t.Fatalf("future fields rejected: %v", err)
	}
	if st.Gets != 7 || st.Sets != 3 || st.Dels != 1 || st.TooLong != 2 || st.Shed != 5 || st.DeadlineDrops != 4 {
		t.Fatalf("known counters misparsed: %+v", st)
	}
	if len(st.PerShard) != 2 || st.PerShard[1] != (Stats{Gets: 6, Sets: 1}) {
		t.Fatalf("shard fields misparsed: %+v", st.PerShard)
	}
	want := map[string]string{
		"role": "primary", "lag": "3", "applied_seq": "42",
		"peer": "127.0.0.1:4021", "flux_capacitor": "1.21gw",
	}
	if len(st.Extra) != len(want) {
		t.Fatalf("Extra = %v, want %v", st.Extra, want)
	}
	for k, v := range want {
		if st.Extra[k] != v {
			t.Errorf("Extra[%q] = %q, want %q", k, st.Extra[k], v)
		}
	}
	if n, ok := st.ExtraUint("applied_seq"); !ok || n != 42 {
		t.Errorf("ExtraUint(applied_seq) = %d, %v", n, ok)
	}
	if _, ok := st.ExtraUint("role"); ok {
		t.Error("ExtraUint(role) parsed a non-numeric value")
	}
	if _, ok := st.ExtraUint("absent"); ok {
		t.Error("ExtraUint(absent) reported present")
	}
}

// TestStatsPagerReportCompat exercises the pg_* report against STATS
// lines from every server vintage: an old server that predates the paged
// tier (no pg_* fields at all), a paged server emitting the full set, and
// a hypothetical middle vintage emitting only the core hit/miss pair.
// The report must gate on presence — never invent fields, never error —
// so cmd/mxload can print it unconditionally behind the ok flag.
func TestStatsPagerReportCompat(t *testing.T) {
	// Synthetic old-server reply: counters only, no paged tier.
	old, err := parseStatsReply("STATS gets=9 sets=4 dels=0 errs=0 toolong=0")
	if err != nil {
		t.Fatalf("old-server reply rejected: %v", err)
	}
	if r, ok := old.Pager(); ok {
		t.Fatalf("Pager() on old server = %+v, ok=true; want ok=false", r)
	}

	// Full modern paged reply.
	full, err := parseStatsReply("STATS gets=9 sets=4 dels=0 errs=0 toolong=0 " +
		"pg_hits=90 pg_misses=10 pg_evictions=7 pg_writebacks=6 " +
		"pg_pages=12 pg_resident=4 pg_load_p50_us=3 pg_load_p99_us=250")
	if err != nil {
		t.Fatalf("paged reply rejected: %v", err)
	}
	r, ok := full.Pager()
	if !ok {
		t.Fatal("Pager() on paged server reported absent")
	}
	want := PagerReport{Hits: 90, Misses: 10, Evictions: 7, Writebacks: 6,
		Pages: 12, Resident: 4, LoadP50Us: 3, LoadP99Us: 250}
	if r != want {
		t.Fatalf("PagerReport = %+v, want %+v", r, want)
	}
	if hr := r.HitRate(); hr != 0.9 {
		t.Fatalf("HitRate = %v, want 0.9", hr)
	}

	// Partial vintage: hit/miss only. Optional fields degrade to zero.
	part, err := parseStatsReply("STATS gets=1 sets=0 dels=0 errs=0 toolong=0 " +
		"pg_hits=0 pg_misses=0")
	if err != nil {
		t.Fatalf("partial reply rejected: %v", err)
	}
	r, ok = part.Pager()
	if !ok || r != (PagerReport{}) {
		t.Fatalf("partial Pager() = %+v, %v; want zero report, ok=true", r, ok)
	}
	if hr := r.HitRate(); hr != 0 {
		t.Fatalf("HitRate with no traffic = %v, want 0", hr)
	}
}

// Known fields keep their strict parsing: garbage in a field this client
// version understands is a real protocol error, not forward compatibility.
func TestStatsKnownFieldsStayStrict(t *testing.T) {
	for _, reply := range []string{
		"STATS gets=banana",
		"STATS shards=1", // shard count with no shard fields
		"STATS s0=1/2",   // malformed shard triple
		"STATS orphan",   // field without '='
		"ERR overloaded", // not a STATS reply at all
	} {
		if _, err := parseStatsReply(reply); err == nil {
			t.Errorf("parseStatsReply(%q) accepted", reply)
		}
	}
	// A clean modern reply has nil Extra — no allocation for the common case.
	st, err := parseStatsReply("STATS gets=1 sets=2 dels=0 errs=0 toolong=0")
	if err != nil || st.Extra != nil {
		t.Fatalf("clean reply: st=%+v err=%v", st, err)
	}
}

func TestParseReadonlyReply(t *testing.T) {
	if p, ok := parseReadonlyReply("ERR readonly primary=10.0.0.7:4021"); !ok || p != "10.0.0.7:4021" {
		t.Fatalf("got %q, %v", p, ok)
	}
	if p, ok := parseReadonlyReply("ERR readonly"); !ok || p != "" {
		t.Fatalf("bare readonly: got %q, %v", p, ok)
	}
	if _, ok := parseReadonlyReply("ERR overloaded retry-after=5"); ok {
		t.Fatal("overload misread as readonly")
	}
	err := replyError("ERR readonly primary=a:1")
	if !errors.Is(err, ErrReadonly) {
		t.Fatalf("replyError readonly = %v, want ErrReadonly match", err)
	}
	var ro *ReadonlyError
	if !errors.As(err, &ro) || ro.Primary != "a:1" {
		t.Fatalf("ReadonlyError = %+v", ro)
	}
	if !errors.Is(replyError("ERR stale lag=9 bound=2"), ErrStale) {
		t.Fatal("stale rejection did not match ErrStale")
	}
	if !errors.Is(replyError("ERR catching-up"), ErrStale) {
		t.Fatal("catching-up rejection did not match ErrStale")
	}
}

func TestParseStaleReply(t *testing.T) {
	cases := []struct {
		reply string
		want  StaleValue
	}{
		{"RVALUE 3 7 4 99", StaleValue{Value: 99, Found: true, SeqLo: 3, SeqHi: 7, Lag: 4}},
		{"RNONE 3 7 4", StaleValue{SeqLo: 3, SeqHi: 7, Lag: 4}},
		{"RVALUEP 99", StaleValue{Value: 99, Found: true, Primary: true}},
		{"RNONEP", StaleValue{Primary: true}},
	}
	for _, c := range cases {
		got, err := parseStaleReply(c.reply)
		if err != nil || got != c.want {
			t.Errorf("parseStaleReply(%q) = %+v, %v; want %+v", c.reply, got, err, c.want)
		}
	}
	for _, bad := range []string{
		"RVALUE 3 7 4", "RVALUE 3 7 4 99 0", "RNONE 3 7", "RVALUEP", "RVALUE x 7 4 99", "VALUE 99", "",
	} {
		if _, err := parseStaleReply(bad); err == nil {
			t.Errorf("parseStaleReply(%q) accepted", bad)
		}
	}
	if _, err := parseStaleReply("ERR stale lag=9 bound=2"); !errors.Is(err, ErrStale) {
		t.Errorf("ERR stale reply = %v, want ErrStale", err)
	}
}
