package kvstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mxtasking/internal/mxtask"
	"mxtasking/internal/wal"
)

func newRT(t testing.TB) *mxtask.Runtime {
	t.Helper()
	rt := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

// TestKillAndRestart is the acceptance-criteria integration test: write N
// operations with durable acks, hard-stop the store (no clean close),
// reopen from the WAL directory, and verify every acknowledged operation
// is present with the correct value.
func TestKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	const n = 500

	rt1 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt1.Start()
	store, _, err := Open(rt1, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent durable writers: every SetSync return is a durable ack.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if r := store.SetSync(uint64(i), uint64(i)*7+1); r.Err != nil {
					t.Errorf("set %d: %v", i, r.Err)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < n; i += 10 {
		if r := store.DeleteSync(uint64(i)); r.Err != nil {
			t.Fatalf("delete %d: %v", i, r.Err)
		}
	}
	// Hard stop: no Store.Close, no WAL close — just kill the runtime,
	// abandoning whatever was still buffered. Everything acked above must
	// survive anyway.
	rt1.Stop()

	rt2 := newRT(t)
	store2, stats, err := Open(rt2, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if stats.Records == 0 {
		t.Fatalf("recovery applied no records: %v", stats)
	}
	for i := 0; i < n; i++ {
		r := store2.GetSync(uint64(i))
		if i%10 == 0 {
			if r.Found {
				t.Fatalf("key %d: deleted before the crash but recovered", i)
			}
			continue
		}
		if !r.Found || r.Value != uint64(i)*7+1 {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", i, r.Value, r.Found, uint64(i)*7+1)
		}
	}
	if got, want := store2.Count(), n-n/10; got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
}

// TestRestartWithTornFinalRecord crashes with a half-written record at the
// log tail; recovery must keep every acked op and discard the torn bytes.
func TestRestartWithTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	rt1 := mxtask.New(mxtask.Config{Workers: 2, EpochInterval: -1})
	rt1.Start()
	store, _, err := Open(rt1, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := uint64(0); i < n; i++ {
		if r := store.SetSync(i, i+100); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	rt1.Stop()

	// Simulate the crash landing mid-write of the next record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, wal.FrameSize/3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rt2 := newRT(t)
	store2, stats, err := Open(rt2, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !stats.TornTail {
		t.Fatalf("recovery did not report the torn tail: %v", stats)
	}
	for i := uint64(0); i < n; i++ {
		if r := store2.GetSync(i); !r.Found || r.Value != i+100 {
			t.Fatalf("key %d lost after torn-tail recovery (got %d,%v)", i, r.Value, r.Found)
		}
	}
	// The store must keep working — and the torn bytes must be gone.
	if r := store2.SetSync(n, n+100); r.Err != nil {
		t.Fatal(r.Err)
	}
}

// TestRestartAfterSnapshotAndTruncation exercises the full checkpoint
// cycle: snapshot, log truncation, more writes, crash, recover.
func TestRestartAfterSnapshotAndTruncation(t *testing.T) {
	dir := t.TempDir()
	rt1 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt1.Start()
	store, _, err := Open(rt1, Durability{Dir: dir, SegmentBytes: 64 * wal.FrameSize})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]uint64)
	for i := uint64(0); i < 300; i++ {
		if r := store.SetSync(i, i*2); r.Err != nil {
			t.Fatal(r.Err)
		}
		want[i] = i * 2
	}
	snapDone := make(chan error, 1)
	store.Snapshot(func(err error) { snapDone <- err })
	if err := <-snapDone; err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("expected one snapshot file, got %v", snaps)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) > 2 {
		t.Fatalf("truncation left %d segments: %v", len(segs), segs)
	}

	// Write past the snapshot: overwrites, fresh keys, deletes.
	for i := uint64(0); i < 100; i++ {
		if r := store.SetSync(i, i+9000); r.Err != nil {
			t.Fatal(r.Err)
		}
		want[i] = i + 9000
	}
	for i := uint64(500); i < 550; i++ {
		if r := store.SetSync(i, i); r.Err != nil {
			t.Fatal(r.Err)
		}
		want[i] = i
	}
	for i := uint64(200); i < 220; i++ {
		if r := store.DeleteSync(i); r.Err != nil {
			t.Fatal(r.Err)
		}
		delete(want, i)
	}
	rt1.Stop() // hard stop

	rt2 := newRT(t)
	store2, stats, err := Open(rt2, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if stats.SnapshotPairs == 0 {
		t.Fatalf("recovery ignored the snapshot: %v", stats)
	}
	if got := store2.Count(); got != len(want) {
		t.Fatalf("recovered %d keys, want %d", got, len(want))
	}
	for k, v := range want {
		if r := store2.GetSync(k); !r.Found || r.Value != v {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, r.Value, r.Found, v)
		}
	}
}

// TestAutomaticSnapshots verifies SnapshotEvery checkpoints without manual
// calls and the store recovers across them.
func TestAutomaticSnapshots(t *testing.T) {
	dir := t.TempDir()
	rt1 := mxtask.New(mxtask.Config{Workers: 4, EpochInterval: -1})
	rt1.Start()
	store, _, err := Open(rt1, Durability{
		Dir:           dir,
		SegmentBytes:  32 * wal.FrameSize,
		SnapshotEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 450
	for i := uint64(0); i < n; i++ {
		if r := store.SetSync(i%97, i); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Let any in-flight checkpoint finish before the hard stop.
	deadline := time.Now().Add(5 * time.Second)
	for store.snapshotting.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("SnapshotEvery produced no snapshot files")
	}
	rt1.Stop()

	rt2 := newRT(t)
	store2, _, err := Open(rt2, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := store2.Count(); got != 97 {
		t.Fatalf("recovered %d keys, want 97", got)
	}
	// The last write to each residue class wins.
	for k := uint64(0); k < 97; k++ {
		last := uint64(0)
		for i := uint64(0); i < n; i++ {
			if i%97 == k {
				last = i
			}
		}
		if r := store2.GetSync(k); !r.Found || r.Value != last {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, r.Value, r.Found, last)
		}
	}
}

// TestGracefulServerShutdown verifies Close drains in-flight requests,
// unblocks idle connections, and flushes the WAL — even with a client that
// never sends another byte.
func TestGracefulServerShutdown(t *testing.T) {
	dir := t.TempDir()
	rt := newRT(t)
	store, _, err := Open(rt, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// An idle connection that would previously have blocked Close forever.
	idle, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if err := idle.Ping(); err != nil {
		t.Fatal(err)
	}

	// A busy client writing durable records until shutdown cuts it off.
	busy, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	acked := make(chan uint64, 1)
	go func() {
		var last uint64
		for i := uint64(1); ; i++ {
			if _, err := busy.Set(i, i*3); err != nil {
				break
			}
			last = i
		}
		acked <- last
	}()
	time.Sleep(30 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung on an idle connection")
	}
	last := <-acked
	if last == 0 {
		t.Fatal("busy client never got an ack")
	}
	// Every reply the client received was durable: reopen and check.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	rt2 := newRT(t)
	store2, _, err := Open(rt2, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	for i := uint64(1); i <= last; i++ {
		if r := store2.GetSync(i); !r.Found || r.Value != i*3 {
			t.Fatalf("acked key %d lost across shutdown (got %d,%v)", i, r.Value, r.Found)
		}
	}
}

// TestSnapshotOnInMemoryStore documents the durable-only API surface.
func TestSnapshotOnInMemoryStore(t *testing.T) {
	rt := newRT(t)
	store := New(rt)
	ch := make(chan error, 1)
	store.Snapshot(func(err error) { ch <- err })
	if err := <-ch; !errors.Is(err, ErrNoDurability) {
		t.Fatalf("got %v, want ErrNoDurability", err)
	}
	if err := store.Sync(); err != nil {
		t.Fatalf("Sync on in-memory store: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close on in-memory store: %v", err)
	}
	if store.Durable() {
		t.Fatal("in-memory store claims durability")
	}
	if store.WALMetrics() != nil {
		t.Fatal("in-memory store has WAL metrics")
	}
}

// TestDurableAckErrorPath verifies append errors surface through Result.Err.
func TestDurableAckErrorPath(t *testing.T) {
	dir := t.TempDir()
	rt := newRT(t)
	store, _, err := Open(rt, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r := store.SetSync(1, 1); r.Err != nil {
		t.Fatal(r.Err)
	}
	// Closing the store then writing must yield ErrClosed acks, not
	// silent success.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	r := store.SetSync(2, 2)
	if r.Err == nil || !strings.Contains(r.Err.Error(), "closed") {
		t.Fatalf("set after close: got err=%v, want wal closed error", r.Err)
	}
}
