package kvstore_test

import (
	"fmt"

	"mxtasking/internal/epoch"
	"mxtasking/internal/kvstore"
	"mxtasking/internal/mxtask"
)

// The end-to-end store: embedded API plus the TCP protocol.
func Example() {
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Batched, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	store := kvstore.New(rt)
	store.SetSync(1, 100)
	store.SetSync(2, 200)
	fmt.Println("get:", store.GetSync(2).Value)

	srv, err := kvstore.NewServer(store, "127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	client, err := kvstore.Dial(srv.Addr())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()
	v, found, _ := client.Get(1)
	fmt.Println("network get:", v, found)
	pairs, _ := client.Scan(1, 3)
	fmt.Println("scan pairs:", len(pairs))
	// Output:
	// get: 200
	// network get: 100 true
	// scan pairs: 2
}
