package kvstore

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

// FuzzServerHandle throws arbitrary request lines at the protocol handler:
// it must never panic and must answer every line with exactly one line.
func FuzzServerHandle(f *testing.F) {
	for _, seed := range []string{
		"GET 1", "SET 1 2", "DEL 1", "SCAN 0 10", "COUNT", "PING", "QUIT",
		"get 7", "SET", "SET a b", "SCAN x", "BOGUS stuff", "SET 18446744073709551615 1",
		"GET -1", "SCAN 10 0", "   ", "SET 1 2 3 4",
	} {
		f.Add(seed)
	}
	rt := mxtask.New(mxtask.Config{Workers: 1, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	store := New(rt)
	srv := &Server{}
	srv.backend.Store(func() *Backend { var b Backend = store; return &b }())

	f.Fuzz(func(t *testing.T, line string) {
		line = strings.TrimSpace(line)
		if line == "" {
			return // serve() skips blank lines before handle()
		}
		reply, _ := srv.handle(line)
		if reply == "" {
			t.Fatalf("empty reply for %q", line)
		}
		if strings.ContainsAny(reply, "\n\r") {
			t.Fatalf("multi-line reply for %q: %q", line, reply)
		}
	})
}

// FuzzLookupBatch throws arbitrary key batches and group widths at the
// batched-read path (DESIGN.md §9): whatever the batch shape — duplicate
// keys, missing keys, empty, larger than the group width, larger than the
// server's MGET cap — every admitted index must complete exactly once with
// the right answer, and the wire reply must carry exactly one field per
// requested key.
func FuzzLookupBatch(f *testing.F) {
	f.Add([]byte{}, 0)                                   // empty batch
	f.Add([]byte{0, 7}, 1)                               // single key, sequential mode
	f.Add([]byte{0, 5, 0, 5, 0, 5, 255, 255}, 6)         // duplicates + missing key
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0}, 64)         // odd trailing byte, max width
	f.Add(bytes.Repeat([]byte{0, 9}, MaxBatchKeys+1), 8) // over the MGET cap

	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	store := New(rt)
	const fillN = 400
	for k := uint64(1); k <= fillN; k++ {
		store.Set(k, k*3+1, nil)
	}
	rt.Drain()
	srv := &Server{}
	srv.backend.Store(func() *Backend { var b Backend = store; return &b }())

	f.Fuzz(func(t *testing.T, data []byte, width int) {
		store.SetInterleave(width) // clamps; negatives and huge values are the point
		keys := make([]uint64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			keys = append(keys, uint64(data[i])<<8|uint64(data[i+1]))
		}

		// Store layer: exactly-once completion with the right answer.
		fired := make([]int32, len(keys))
		store.GetBatch(keys, func(i int, r Result) {
			atomic.AddInt32(&fired[i], 1)
			k := keys[i]
			wantFound := k >= 1 && k <= fillN
			if r.Found != wantFound || (wantFound && r.Value != k*3+1) {
				t.Errorf("key %d: got %+v", k, r)
			}
		})
		rt.Drain()
		for i, n := range fired {
			if n != 1 {
				t.Fatalf("index %d fired %d times, want exactly once", i, n)
			}
		}

		// Wire layer: one reply field per key, or a clean ERR past the cap.
		if len(keys) == 0 {
			return
		}
		var sb strings.Builder
		sb.WriteString("MGET")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %d", k)
		}
		reply, quit := srv.handle(sb.String())
		if quit {
			t.Fatal("MGET closed the connection")
		}
		if len(keys) > MaxBatchKeys {
			if !strings.HasPrefix(reply, "ERR ") {
				t.Fatalf("over-cap MGET (%d keys) = %q, want ERR", len(keys), reply)
			}
			return
		}
		fields := strings.Fields(reply)
		if fields[0] != "VALUES" || len(fields)-1 != len(keys) {
			t.Fatalf("MGET of %d keys answered %d fields (%.60s...)", len(keys), len(fields)-1, reply)
		}
		for i, k := range keys {
			if k >= 1 && k <= fillN {
				if want := strconv.FormatUint(k*3+1, 10); fields[i+1] != want {
					t.Fatalf("key %d: wire %q, want %s", k, fields[i+1], want)
				}
			} else if fields[i+1] != "-" {
				t.Fatalf("missing key %d: wire %q, want -", k, fields[i+1])
			}
		}
	})
}
