package kvstore

import (
	"strings"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

// FuzzServerHandle throws arbitrary request lines at the protocol handler:
// it must never panic and must answer every line with exactly one line.
func FuzzServerHandle(f *testing.F) {
	for _, seed := range []string{
		"GET 1", "SET 1 2", "DEL 1", "SCAN 0 10", "COUNT", "PING", "QUIT",
		"get 7", "SET", "SET a b", "SCAN x", "BOGUS stuff", "SET 18446744073709551615 1",
		"GET -1", "SCAN 10 0", "   ", "SET 1 2 3 4",
	} {
		f.Add(seed)
	}
	rt := mxtask.New(mxtask.Config{Workers: 1, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	store := New(rt)
	srv := &Server{}
	srv.backend.Store(func() *Backend { var b Backend = store; return &b }())

	f.Fuzz(func(t *testing.T, line string) {
		line = strings.TrimSpace(line)
		if line == "" {
			return // serve() skips blank lines before handle()
		}
		reply, _ := srv.handle(line)
		if reply == "" {
			t.Fatalf("empty reply for %q", line)
		}
		if strings.ContainsAny(reply, "\n\r") {
			t.Fatalf("multi-line reply for %q: %q", line, reply)
		}
	})
}
