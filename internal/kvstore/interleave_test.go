package kvstore

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"mxtasking/internal/blinktree"
)

// Interleaved batched reads (DESIGN.md §9) at the store/server layer.
// These tests run under -race: the race build selects the serialized tree
// mode (treemode_race.go), where every group cursor falls back to the
// per-key chain — the batch CONTRACT must hold identically either way.

// interleaveSeeds reads MXIL_SEEDS for the stress sweep (the Makefile's
// interleave-stress target sets 20); default keeps `go test` fast.
func interleaveSeeds() int {
	n, err := strconv.Atoi(os.Getenv("MXIL_SEEDS"))
	if err != nil || n < 1 {
		return 3
	}
	return n
}

// TestBatchCompletionContract pins the documented GetBatch/SetBatch
// contract: each index fires exactly once with its own key's result,
// completion order is NOT submission order (members may complete in any
// order, possibly before later members dispatch), duplicate keys are
// independent operations, and an empty batch fires nothing. This is a
// regression test for the old doc comment that promised the chains were
// "spawned back to back before any completes" — group descents retire
// early cursors inline, so no such ordering ever held.
func TestBatchCompletionContract(t *testing.T) {
	s, stop := newStore(t, 2)
	defer stop()
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		s.Set(i, i*3, nil)
	}
	s.Runtime().Drain()

	// Empty batches must not fire.
	s.GetBatch(nil, func(int, Result) { t.Error("empty GetBatch fired") })
	s.SetBatch(nil, func(int, Result) { t.Error("empty SetBatch fired") })

	// Duplicates, missing keys, and boundary keys in one batch.
	keys := []uint64{1, n, 5, 5, 5, 0, n + 1, 1 << 40, 7}
	fired := make([]int32, len(keys))
	s.GetBatch(keys, func(i int, r Result) {
		atomic.AddInt32(&fired[i], 1)
		k := keys[i]
		wantFound := k >= 1 && k <= n
		if r.Found != wantFound || (wantFound && r.Value != k*3) {
			t.Errorf("key %d: got %+v", k, r)
		}
	})
	s.Runtime().Drain()
	for i, f := range fired {
		if f != 1 {
			t.Fatalf("GetBatch index %d fired %d times, want exactly once", i, f)
		}
	}

	// SetBatch: exactly-once, overwrite reporting per key; a duplicated
	// key may apply in either order but both completions must fire.
	pairs := []blinktree.KV{{Key: 1, Value: 100}, {Key: n + 50, Value: 1}, {Key: n + 50, Value: 2}}
	sfired := make([]int32, len(pairs))
	s.SetBatch(pairs, func(i int, r Result) {
		atomic.AddInt32(&sfired[i], 1)
		if i == 0 && !r.Found {
			t.Error("overwrite of key 1 not reported")
		}
	})
	s.Runtime().Drain()
	for i, f := range sfired {
		if f != 1 {
			t.Fatalf("SetBatch index %d fired %d times, want exactly once", i, f)
		}
	}
	if r := s.GetSync(n + 50); !r.Found || (r.Value != 1 && r.Value != 2) {
		t.Fatalf("duplicate-key upsert left %+v, want value 1 or 2", r)
	}
}

// TestInterleaveStoreLockstep is the store-level invariance check: a
// seeded GetBatch stream answered with interleaved group descents must be
// byte-identical to the same stream answered by the 1-cursor sequential
// reference, while concurrent SetBatch writers on a disjoint key range
// drive splits underneath. Under -race this runs against the serialized
// tree mode, covering the all-fallback path of the same contract.
func TestInterleaveStoreLockstep(t *testing.T) {
	const stable = 2500
	for _, seed := range []int64{1, 7, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(width int) []uint64 {
				s, stop := newStore(t, 4)
				defer stop()
				s.SetInterleave(width)
				for i := uint64(1); i <= stable; i++ {
					s.Set(i, i*3, nil)
				}
				s.Runtime().Drain()

				rng := rand.New(rand.NewSource(seed))
				out := make([]uint64, 0, 30*64)
				writeKey := uint64(1 << 30)
				for b := 0; b < 30; b++ {
					pairs := make([]blinktree.KV, 32)
					for i := range pairs {
						pairs[i] = blinktree.KV{Key: writeKey, Value: writeKey}
						writeKey++
					}
					s.SetBatch(pairs, func(int, Result) {})

					keys := make([]uint64, 64)
					for i := range keys {
						keys[i] = uint64(1 + rng.Intn(stable+stable/2)) // ~1/3 missing
					}
					vals := make([]uint64, len(keys))
					s.GetBatch(keys, func(i int, r Result) {
						if !r.Found {
							r.Value = 1 << 62
						}
						vals[i] = r.Value
					})
					s.Runtime().Drain()
					out = append(out, vals...)
				}
				return out
			}
			il := run(0) // default width
			seq := run(1)
			if len(il) != len(seq) {
				t.Fatalf("result lengths differ: %d vs %d", len(il), len(seq))
			}
			for i := range il {
				if il[i] != seq[i] {
					t.Fatalf("result %d differs: interleaved %d, sequential %d", i, il[i], seq[i])
				}
			}
		})
	}
}

// TestInterleaveStress sweeps seeded mixed batch workloads: every round
// submits overlapping GetBatch and SetBatch traffic and checks the
// exactly-once ledger plus final store contents against a model map.
// MXIL_SEEDS widens the sweep (Makefile interleave-stress: 20 seeds,
// -race, -shuffle=on).
func TestInterleaveStress(t *testing.T) {
	for seed := int64(0); seed < int64(interleaveSeeds()); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, stop := newStore(t, 4)
			defer stop()
			rng := rand.New(rand.NewSource(seed))
			s.SetInterleave(2 + rng.Intn(15))

			const space = 5000
			// Batches from different rounds overlap in flight, so any key
			// written more than once may land in either order; the model
			// checks only keys written exactly once over the whole run.
			writes := make(map[uint64]uint64)
			writeCount := make(map[uint64]int)
			var getFired, setFired, wantGets, wantSets int64
			for round := 0; round < 25; round++ {
				pairs := make([]blinktree.KV, 1+rng.Intn(96))
				for i := range pairs {
					k := uint64(1 + rng.Intn(space))
					v := rng.Uint64()
					pairs[i] = blinktree.KV{Key: k, Value: v}
					writes[k] = v
					writeCount[k]++
				}
				wantSets += int64(len(pairs))
				s.SetBatch(pairs, func(int, Result) { atomic.AddInt64(&setFired, 1) })

				keys := make([]uint64, 1+rng.Intn(128))
				for i := range keys {
					keys[i] = uint64(1 + rng.Intn(space*2))
				}
				wantGets += int64(len(keys))
				s.GetBatch(keys, func(i int, r Result) { atomic.AddInt64(&getFired, 1) })
				if round%5 == 4 {
					s.Runtime().Drain()
				}
			}
			s.Runtime().Drain()
			if getFired != wantGets || setFired != wantSets {
				t.Fatalf("completions: gets %d/%d, sets %d/%d", getFired, wantGets, setFired, wantSets)
			}
			for k, v := range writes {
				if writeCount[k] != 1 {
					continue
				}
				if r := s.GetSync(k); !r.Found || r.Value != v {
					t.Fatalf("seed %d: key %d = %+v, want %d", seed, k, r, v)
				}
			}
			il := s.InterleaveStats()
			if il.Cursors != il.Retired+il.Fallbacks {
				t.Fatalf("cursor accounting: %d != %d retired + %d fallbacks",
					il.Cursors, il.Retired, il.Fallbacks)
			}
		})
	}
}

// TestInterleaveCloseMidMGET closes the server while pipelined MGETs are
// in flight: every admitted batch member's completion must still fire
// exactly once (the backend drain below would hang forever on a lost
// cursor, and the package's testleak TestMain catches any stranded
// worker), and the client-visible replies must be whole lines.
func TestInterleaveCloseMidMGET(t *testing.T) {
	s, stop := newBackend(t, 4)
	defer stop()
	const n = 4000
	for i := uint64(0); i < n; i++ {
		s.Set(i, i+1, nil)
	}
	s.Drain()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	var sb strings.Builder
	sb.WriteString("MGET")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, " %d", i*61%n)
	}
	sb.WriteByte('\n')
	line := sb.String()
	for i := 0; i < 50; i++ {
		if _, err := w.WriteString(line); err != nil {
			break
		}
	}
	_ = w.Flush()

	// Read a few replies to be sure batches are actually dispatching,
	// then tear the server down mid-stream.
	r := bufio.NewReaderSize(conn, 1<<20)
	for i := 0; i < 3; i++ {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("warm-up reply %d: %v", i, err)
		}
		if !strings.HasPrefix(reply, "VALUES ") {
			t.Fatalf("warm-up reply %d = %q", i, reply)
		}
	}
	srv.Close()
	// Whatever still arrives must be whole VALUES lines, never a torn or
	// interleaved write.
	for {
		reply, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if !strings.HasPrefix(reply, "VALUES ") || !strings.HasSuffix(reply, "\n") {
			t.Fatalf("post-close reply = %q", reply)
		}
	}
	conn.Close()
	// Every cursor the server admitted before Close must complete: a lost
	// completion leaves a pending op and this drain never returns.
	s.Drain()
}

// TestServerStatsInterleave drives batched reads through the wire and
// checks the STATS il_* fields: present, parseable through the client's
// Extra map, and consistent (cursors fully accounted as retired or
// fallbacks; groups only when batches were wide enough to share a task).
func TestServerStatsInterleave(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	const n = 3000
	for i := uint64(1); i <= n; i++ {
		s.Set(i, i, nil)
	}
	s.Drain()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sb strings.Builder
	sb.WriteString("MGET")
	for i := 1; i <= 64; i++ {
		fmt.Fprintf(&sb, " %d", i*37%n)
	}
	for i := 0; i < 10; i++ {
		if err := c.send(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Await(); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var il [7]uint64
	for i, f := range []string{"il_groups", "il_cursors", "il_turns", "il_steps", "il_retired", "il_fallbacks", "il_width"} {
		v, ok := st.ExtraUint(f)
		if !ok {
			t.Fatalf("STATS missing %s (extra: %v)", f, st.Extra)
		}
		il[i] = v
	}
	groups, cursors, retired, fallbacks, width := il[0], il[1], il[4], il[5], il[6]
	if groups == 0 || cursors == 0 {
		t.Fatalf("no group descents counted after 10 batched MGETs: %v", il)
	}
	if cursors != retired+fallbacks {
		t.Fatalf("cursors %d != retired %d + fallbacks %d", cursors, retired, fallbacks)
	}
	if width < 2 || width > blinktree.MaxInterleave {
		t.Fatalf("il_width = %d, want within [2, %d]", width, blinktree.MaxInterleave)
	}
}
