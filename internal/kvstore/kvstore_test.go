package kvstore

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

func newStore(t testing.TB, workers int) (*Store, func()) {
	t.Helper()
	rt := mxtask.New(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	return New(rt), rt.Stop
}

// testBackend is the store surface the server/protocol tests exercise —
// Backend plus the quiescent helpers the assertions use. Both Store and
// Sharded satisfy it.
type testBackend interface {
	Backend
	Count() int
	Drain()
}

// testShards reads MXKV_SHARDS: the suite runs against a single Store by
// default and against a Sharded router with that many per-shard runtimes
// when set, so the whole server/protocol suite re-runs in sharded mode
// (`make race` does this with MXKV_SHARDS=4).
func testShards() int {
	n, err := strconv.Atoi(os.Getenv("MXKV_SHARDS"))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// testPaged reports whether MXKV_PAGED is set: the suite then runs every
// backend through the paged value tier with a deliberately tiny buffer
// pool (8 frames of 256-byte pages ≈ 112 resident values, SpillOver=0 so
// every value spills), forcing heavy eviction under the full
// server/protocol suite. Composes with MXKV_SHARDS (`make race` runs the
// paged sweep via `make pager-stress`).
func testPaged() bool {
	return os.Getenv("MXKV_PAGED") != ""
}

// testPagedConfig is the tiny-pool shape the MXKV_PAGED sweep uses. Any
// test writing more than ~4x its 112-slot capacity runs larger-than-RAM.
func testPagedConfig() PagedConfig {
	return PagedConfig{PageBytes: 256, PoolFrames: 8, SpillOver: 0}
}

// newBackend returns the backend under test per MXKV_SHARDS/MXKV_PAGED
// and its stop function.
func newBackend(t testing.TB, workers int) (testBackend, func()) {
	t.Helper()
	if n := testShards(); n > 1 {
		g := mxtask.NewGroup(mxtask.Config{
			Workers:          workers,
			PrefetchDistance: 2,
			EpochPolicy:      epoch.Batched,
			EpochInterval:    -1,
		}, n)
		g.Start()
		if testPaged() {
			s, err := NewShardedPaged(g.Runtimes(), testPagedConfig())
			if err != nil {
				g.Stop()
				t.Fatalf("NewShardedPaged: %v", err)
			}
			return s, func() { s.Close(); g.Stop() }
		}
		return NewSharded(g.Runtimes()), g.Stop
	}
	rt := mxtask.New(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	if testPaged() {
		s, err := NewPaged(rt, testPagedConfig())
		if err != nil {
			rt.Stop()
			t.Fatalf("NewPaged: %v", err)
		}
		return s, func() { s.Close(); rt.Stop() }
	}
	return New(rt), rt.Stop
}

func TestStoreBasic(t *testing.T) {
	s, stop := newStore(t, 2)
	defer stop()

	if r := s.GetSync(1); r.Found {
		t.Fatal("get on empty store found a value")
	}
	if r := s.SetSync(1, 100); r.Found {
		t.Fatal("fresh set reported overwrite")
	}
	if r := s.GetSync(1); !r.Found || r.Value != 100 {
		t.Fatalf("get = %+v, want 100", r)
	}
	if r := s.SetSync(1, 101); !r.Found {
		t.Fatal("overwrite not reported")
	}
	if r := s.DeleteSync(1); !r.Found {
		t.Fatal("delete of existing key not found")
	}
	if r := s.DeleteSync(1); r.Found {
		t.Fatal("double delete succeeded")
	}
	st := s.Stats()
	if st.Gets != 2 || st.Sets != 2 || st.Dels != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreBulk(t *testing.T) {
	s, stop := newStore(t, 4)
	defer stop()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		s.Set(i, i*7, nil)
	}
	s.Runtime().Drain()
	if c := s.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
	for i := uint64(0); i < n; i += 37 {
		if r := s.GetSync(i); !r.Found || r.Value != i*7 {
			t.Fatalf("GetSync(%d) = %+v", i, r)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if over, err := c.Set(7, 700); err != nil || over {
		t.Fatalf("Set = %v,%v", over, err)
	}
	if v, found, err := c.Get(7); err != nil || !found || v != 700 {
		t.Fatalf("Get = %d,%v,%v", v, found, err)
	}
	if over, err := c.Set(7, 701); err != nil || !over {
		t.Fatalf("overwrite Set = %v,%v", over, err)
	}
	if existed, err := c.Delete(7); err != nil || !existed {
		t.Fatalf("Delete = %v,%v", existed, err)
	}
	if _, found, err := c.Get(7); err != nil || found {
		t.Fatalf("Get after delete found=%v err=%v", found, err)
	}
	if existed, err := c.Delete(7); err != nil || existed {
		t.Fatalf("second Delete = %v,%v", existed, err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s, stop := newBackend(t, 4)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	const perClient = 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := uint64(cl * perClient)
			for i := uint64(0); i < perClient; i++ {
				if _, err := c.Set(base+i, base+i); err != nil {
					errs <- err
					return
				}
			}
			for i := uint64(0); i < perClient; i++ {
				v, found, err := c.Get(base + i)
				if err != nil || !found || v != base+i {
					errs <- fmt.Errorf("client %d: Get(%d) = %d,%v,%v", cl, base+i, v, found, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if c := s.Count(); c != clients*perClient {
		t.Fatalf("Count = %d, want %d", c, clients*perClient)
	}
}

func TestServerProtocolErrors(t *testing.T) {
	s, stop := newBackend(t, 1)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, bad := range []string{"BOGUS", "GET", "GET notanumber", "SET 1", "SET a b"} {
		reply, err := c.roundTrip(bad)
		if err != nil {
			t.Fatal(err)
		}
		if len(reply) < 3 || reply[:3] != "ERR" {
			t.Errorf("request %q got %q, want ERR...", bad, reply)
		}
	}
	reply, err := c.roundTrip("COUNT")
	if err != nil || reply != "COUNT 0" {
		t.Errorf("COUNT = %q, %v", reply, err)
	}
	reply, err = c.roundTrip("QUIT")
	if err != nil || reply != "BYE" {
		t.Errorf("QUIT = %q, %v", reply, err)
	}
}

func TestStoreScan(t *testing.T) {
	s, stop := newStore(t, 2)
	defer stop()
	for i := uint64(0); i < 500; i++ {
		s.Set(i*3, i, nil)
	}
	s.Runtime().Drain()

	res := s.ScanSync(30, 60)
	want := []uint64{30, 33, 36, 39, 42, 45, 48, 51, 54, 57}
	if len(res.Pairs) != len(want) {
		t.Fatalf("scan returned %d pairs, want %d", len(res.Pairs), len(want))
	}
	for i, kv := range res.Pairs {
		if kv.Key != want[i] || kv.Value != want[i]/3 {
			t.Fatalf("pair %d = %+v, want key %d", i, kv, want[i])
		}
	}
}

func TestServerScan(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := uint64(0); i < 100; i++ {
		if _, err := c.Set(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := c.Scan(10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("Scan returned %d pairs, want 5", len(pairs))
	}
	for i, kv := range pairs {
		if kv.Key != uint64(10+i) || kv.Value != kv.Key*2 {
			t.Fatalf("pair %d = %+v", i, kv)
		}
	}
	// Empty scan.
	empty, err := c.Scan(1000, 2000)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty Scan = %v, %v", empty, err)
	}
	// Bad bounds.
	if reply, err := c.roundTrip("SCAN x y"); err != nil || reply[:3] != "ERR" {
		t.Fatalf("bad SCAN = %q, %v", reply, err)
	}
}

func TestServerBatchCommands(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.roundTrip("MSET 1 10 2 20 3 30")
	if err != nil || reply != "STORED 3" {
		t.Fatalf("MSET = %q, %v", reply, err)
	}
	reply, err = c.roundTrip("MGET 1 2 99 3")
	if err != nil || reply != "VALUES 10 20 - 30" {
		t.Fatalf("MGET = %q, %v", reply, err)
	}
	st, err := c.Stats()
	if err != nil || st.Gets != 4 || st.Sets != 3 || st.Dels != 0 || st.Errs != 0 || st.TooLong != 0 {
		t.Fatalf("STATS = %+v, %v", st, err)
	}
	// The per-shard breakdown must sum to the aggregate counters.
	var sum Stats
	for _, ss := range st.PerShard {
		sum.Gets += ss.Gets
		sum.Sets += ss.Sets
		sum.Dels += ss.Dels
	}
	if sum.Gets != st.Gets || sum.Sets != st.Sets || sum.Dels != st.Dels {
		t.Fatalf("per-shard stats %+v do not sum to aggregate %+v", st.PerShard, sum)
	}
	for _, bad := range []string{"MSET 1", "MSET 1 2 3", "MSET a b", "MGET", "MGET x"} {
		reply, err := c.roundTrip(bad)
		if err != nil || len(reply) < 3 || reply[:3] != "ERR" {
			t.Fatalf("%q = %q, %v (want ERR)", bad, reply, err)
		}
	}
}
