package kvstore

import (
	"os"
	"testing"

	"mxtasking/internal/testleak"
)

// TestMain guards the whole suite against goroutine leaks: every runtime
// worker, server connection handler, and client helper spawned by a test
// must be gone once the tests pass. See internal/testleak.
func TestMain(m *testing.M) {
	os.Exit(testleak.Main(m))
}
