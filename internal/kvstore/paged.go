package kvstore

import (
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/faultfs"
	"mxtasking/internal/linearize"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/pager"
	"mxtasking/internal/wal"
)

// Paged value tier (DESIGN.md §10). The Blink-tree stays the index — keys
// and tree structure in memory — but values at or above a spill threshold
// live in pager-managed page files, so the dataset is no longer bounded
// by the tree's heap. The tree word for a spilled value is a tagged pager
// reference (pager.MakeRef); since the spill threshold is clamped to
// 2^63, every value with the tag bit set spills and inline words can
// never be mistaken for references.
//
// Durability is unchanged: the WAL logs client values (never references),
// recovery replays through the spill path, and the page file is a
// volatile cache rebuilt at open — which is what makes torn page
// writebacks recoverable by construction (see internal/pager).

// PagedConfig configures the paged value tier.
type PagedConfig struct {
	// PageBytes / PoolFrames size the buffer pool (pager defaults when 0).
	PageBytes  int
	PoolFrames int
	// SpillOver is the smallest value stored in the paged tier; smaller
	// values stay inline in the tree. 0 spills every value. Values ≥ 2^63
	// always spill regardless of the threshold (the tag bit demands it).
	SpillOver uint64
	// Dir overrides the page-file directory. Default: "pages" under the
	// store's WAL directory, or a private in-memory filesystem for
	// non-durable stores.
	Dir string
	// FS overrides the filesystem. Default: the store's Durability FS.
	FS faultfs.FS
}

// NewPaged creates an in-memory (non-durable) store with a paged value
// tier. With no Dir and no FS the page file lives on a private in-memory
// filesystem — the larger-than-RAM mechanics (eviction, writeback,
// load tasks) all exercise identically, which is what the invariance and
// stress suites use.
func NewPaged(rt *mxtask.Runtime, cfg PagedConfig) (*Store, error) {
	s := New(rt)
	if err := s.initPager(cfg, "", nil); err != nil {
		return nil, err
	}
	return s, nil
}

// initPager opens the page file and arms the spill threshold. walDir and
// walFS are the store's Durability settings, used as defaults.
func (s *Store) initPager(cfg PagedConfig, walDir string, walFS faultfs.FS) error {
	fs := cfg.FS
	if fs == nil {
		fs = walFS
	}
	dir := cfg.Dir
	if dir == "" {
		if walDir != "" {
			dir = filepath.Join(walDir, "pages")
		} else {
			dir = "/pages"
			if fs == nil {
				fs = faultfs.NewMem(0)
			}
		}
	}
	pg, err := pager.Open(s.rt, pager.Config{
		Path:       filepath.Join(dir, "pagefile"),
		FS:         fs,
		PageBytes:  cfg.PageBytes,
		PoolFrames: cfg.PoolFrames,
	})
	if err != nil {
		return err
	}
	s.pg = pg
	s.spillMin = cfg.SpillOver
	if s.spillMin > pager.RefTag {
		// Bit 63 tags references, so every value carrying it must spill.
		s.spillMin = pager.RefTag
	}
	return nil
}

// Paged reports whether the store has a paged value tier.
func (s *Store) Paged() bool { return s.pg != nil }

// PagerStats returns the buffer pool's counters; ok is false for
// non-paged stores.
func (s *Store) PagerStats() (pager.Stats, bool) {
	if s.pg == nil {
		return pager.Stats{}, false
	}
	return s.pg.Stats(), true
}

// spills reports whether value belongs in the paged tier.
func (s *Store) spills(value uint64) bool {
	return s.pg != nil && value >= s.spillMin
}

// spillStore routes value through the paged tier when it crosses the
// threshold, then hands run the tree word (inline value or reference).
// run executes inline for inline values and inside the pager task for
// spilled ones.
func (s *Store) spillStore(key, value uint64, fail func(error), run func(ctx *mxtask.Context, word uint64)) {
	if !s.spills(value) {
		run(nil, value)
		return
	}
	s.pg.Store(nil, key, value, func(ctx *mxtask.Context, ref uint64, err error) {
		if err != nil {
			fail(err)
			return
		}
		run(ctx, ref)
	})
}

// armPrevFree chains onto op's Commit hook to free the page slot behind a
// displaced reference. Commit runs in the leaf task under the leaf's
// write synchronization, exactly once per applied write, so the free
// cannot double-fire and cannot race the apply it observes. The freed
// slot may still be read by a concurrent lookup holding the old
// reference: slot self-validation turns that into a retried descent.
func (s *Store) armPrevFree(op *blinktree.Op, newWord uint64) {
	if s.pg == nil {
		return
	}
	chained := op.Commit
	op.Commit = func(o *blinktree.Op) {
		if o.PrevFound && pager.IsRef(o.Prev) && o.Prev != newWord {
			s.pg.Free(nil, o.Prev)
		}
		if chained != nil {
			chained(o)
		}
	}
}

// loadValue resolves a pager reference for key, retrying the whole tree
// descent when the slot was recycled under the reader (the reference was
// captured by a lookup that has since been overtaken by a delete or
// overwrite). Each retry observes a newer tree state, so the final answer
// is a value some Set committed or a clean not-found — never a stale or
// foreign value.
func (s *Store) loadValue(ctx *mxtask.Context, ref, key uint64, finish func(value uint64, found bool, err error)) {
	s.pg.Load(ctx, ref, key, func(ctx *mxtask.Context, v uint64, ok bool, err error) {
		switch {
		case err != nil:
			finish(0, false, err)
		case ok:
			finish(v, true, nil)
		default:
			op := s.tree.NewOp("lookup", key, 0, func(ctx *mxtask.Context, t *mxtask.Task) {
				o := t.Arg.(*blinktree.Op)
				if !o.Found || !pager.IsRef(o.Result) {
					finish(o.Result, o.Found, nil)
					return
				}
				s.loadValue(ctx, o.Result, key, finish)
			})
			s.tree.StartFrom(ctx, op)
		}
	})
}

// setPaged is the Set path for spilling values: allocate the page slot
// first (its own pool task), then run the tree insert with the reference
// as the tree word. The WAL, recorder, and ack all carry the client
// value; only the tree sees the reference.
func (s *Store) setPaged(key, value uint64, opID int64, done func(Result)) {
	s.pendingSpills.Add(1)
	s.pg.Store(nil, key, value, func(ctx *mxtask.Context, ref uint64, err error) {
		defer s.pendingSpills.Add(-1)
		if err != nil {
			if s.rec != nil {
				s.rec.Return(opID, value, false, err)
			}
			if done != nil {
				done(Result{Value: value, Err: err})
			}
			return
		}
		s.tree.StartFrom(ctx, s.setOpWord(key, value, ref, opID, done))
	})
}

// setBatchPaged is SetBatch's spill path: all spilling values allocate
// their page slots in ONE pool task (pager.StoreBatch), then the whole
// batch — inline and spilled — starts as interleaved group descents
// together, preserving SetBatch's batching benefits. A pager allocation
// failure fails only the spilled members; inline members still apply.
func (s *Store) setBatchPaged(pairs []blinktree.KV, each func(int, Result)) {
	n := len(pairs)
	opIDs := make([]int64, n)
	s.sets.Add(uint64(n))
	if s.rec != nil {
		for i, kv := range pairs {
			opIDs[i] = s.rec.Invoke(0, linearize.OpSet, kv.Key, kv.Value)
		}
	}
	var spillIdx []int
	var slots []pager.Slot
	for i, kv := range pairs {
		if s.spills(kv.Value) {
			spillIdx = append(spillIdx, i)
			slots = append(slots, pager.Slot{Key: kv.Key, Value: kv.Value})
		}
	}
	s.pendingSpills.Add(1)
	s.pg.StoreBatch(nil, slots, func(ctx *mxtask.Context, refs []uint64, err error) {
		defer s.pendingSpills.Add(-1)
		ops := make([]*blinktree.Op, 0, n)
		words := make([]uint64, n)
		failed := make([]bool, n)
		for i, kv := range pairs {
			words[i] = kv.Value
		}
		for j, i := range spillIdx {
			if err != nil {
				failed[i] = true
				continue
			}
			words[i] = refs[j]
		}
		for i, kv := range pairs {
			i, kv := i, kv
			if failed[i] {
				if s.rec != nil {
					s.rec.Return(opIDs[i], kv.Value, false, err)
				}
				if each != nil {
					each(i, Result{Value: kv.Value, Err: err})
				}
				continue
			}
			ops = append(ops, s.setOpWord(kv.Key, kv.Value, words[i], opIDs[i], func(r Result) {
				if each != nil {
					each(i, r)
				}
			}))
		}
		if len(ops) > 0 {
			s.tree.StartBatch(ops)
		}
	})
	if s.log != nil {
		s.maybeSnapshot()
	}
}

// resolveScan rewrites a scan's tree words into client values, batching
// all reference loads into one pool task. Slots recycled between the scan
// and the load re-resolve through a fresh descent; keys deleted in that
// window drop out of the result, exactly as if the scan had run a moment
// later.
func (s *Store) resolveScan(ctx *mxtask.Context, pairs []blinktree.KV, truncated bool, done func(ScanResult)) {
	var refIdx []int
	var refs, keys []uint64
	for i, kv := range pairs {
		if pager.IsRef(kv.Value) {
			refIdx = append(refIdx, i)
			refs = append(refs, kv.Value)
			keys = append(keys, kv.Key)
		}
	}
	if len(refIdx) == 0 {
		done(ScanResult{Pairs: pairs, Truncated: truncated})
		return
	}
	s.pg.LoadBatch(ctx, refs, keys, func(ctx *mxtask.Context, values []uint64, oks []bool, err error) {
		if err != nil {
			done(ScanResult{Err: err})
			return
		}
		out := make([]blinktree.KV, len(pairs))
		copy(out, pairs)
		var miss []int
		for j, i := range refIdx {
			if oks[j] {
				out[i].Value = values[j]
			} else {
				miss = append(miss, i)
			}
		}
		if len(miss) == 0 {
			done(ScanResult{Pairs: out, Truncated: truncated})
			return
		}
		// Stragglers: per-key re-resolution. Each callback owns distinct
		// indices; the last one to finish assembles the result.
		var (
			pending atomic.Int64
			errMu   sync.Mutex
			firstEr error
			drop    = make([]bool, len(out))
		)
		finishOne := func() {
			if pending.Add(-1) != 0 {
				return
			}
			errMu.Lock()
			err := firstEr
			errMu.Unlock()
			if err != nil {
				done(ScanResult{Err: err})
				return
			}
			final := out[:0:0]
			for i, kv := range out {
				if !drop[i] {
					final = append(final, kv)
				}
			}
			done(ScanResult{Pairs: final, Truncated: truncated})
		}
		pending.Store(int64(len(miss)))
		for _, i := range miss {
			i := i
			s.loadValue(ctx, out[i].Value, out[i].Key, func(v uint64, found bool, err error) {
				switch {
				case err != nil:
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
				case found:
					out[i].Value = v
				default:
					drop[i] = true
				}
				finishOne()
			})
		}
	})
}

// applyPagedToTree is ApplyToTree's spill path: the replica applier's
// record routes through the page tier before the tree insert. A pager
// allocation failure leaves the tree untouched — the record is already in
// the local WAL, so recovery replays it; done still fires to keep the
// applier advancing.
func (s *Store) applyPagedToTree(rec wal.Record, done func()) {
	s.pendingSpills.Add(1)
	s.pg.Store(nil, rec.Key, rec.Value, func(ctx *mxtask.Context, ref uint64, err error) {
		defer s.pendingSpills.Add(-1)
		if err != nil {
			if done != nil {
				done()
			}
			return
		}
		op := s.tree.NewOp("insert", rec.Key, ref, nil)
		s.armPrevFree(op, ref)
		if done != nil {
			op.Done = func(*mxtask.Context, *mxtask.Task) { done() }
		}
		s.tree.StartFrom(ctx, op)
	})
}

// NewShardedPaged is NewSharded with a paged value tier per shard: each
// shard gets its own page file (on its own private in-memory filesystem
// when cfg names no Dir/FS), so page-file tasks of different shards never
// serialize against each other — the same per-shard independence the WAL
// layout has. Durable paged sharding needs no special constructor:
// OpenSharded propagates Durability.Paged and each shard's pager lands
// under that shard's WAL directory.
func NewShardedPaged(rts []*mxtask.Runtime, cfg PagedConfig) (*Sharded, error) {
	s := NewSharded(rts)
	for i, st := range s.shards {
		shardCfg := cfg
		if shardCfg.Dir != "" {
			shardCfg.Dir = filepath.Join(shardCfg.Dir, "shard-"+strconv.Itoa(i))
		}
		if err := st.initPager(shardCfg, "", nil); err != nil {
			for _, prev := range s.shards[:i] {
				prev.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// Paged reports whether the shards carry a paged value tier.
func (s *Sharded) Paged() bool { return s.shards[0].Paged() }

// PagerStats sums the shards' buffer-pool counters; ok is false when the
// store is not paged. Latency percentiles are the max across shards (a
// sum would be meaningless).
func (s *Sharded) PagerStats() (pager.Stats, bool) {
	var sum pager.Stats
	any := false
	for _, st := range s.shards {
		ps, ok := st.PagerStats()
		if !ok {
			continue
		}
		any = true
		sum.Hits += ps.Hits
		sum.Misses += ps.Misses
		sum.Evictions += ps.Evictions
		sum.Writebacks += ps.Writebacks
		sum.Loads += ps.Loads
		sum.Allocs += ps.Allocs
		sum.Frees += ps.Frees
		sum.Touches += ps.Touches
		sum.Pages += ps.Pages
		sum.Resident += ps.Resident
		if ps.LoadP50Micros > sum.LoadP50Micros {
			sum.LoadP50Micros = ps.LoadP50Micros
		}
		if ps.LoadP99Micros > sum.LoadP99Micros {
			sum.LoadP99Micros = ps.LoadP99Micros
		}
	}
	return sum, any
}

// touchKey warms one predicted key: the tree's leaf chain, and — for a
// spilled value — the page holding it, so a learned-prefetch hit saves
// the page-load stall as well as the pointer chase. This is where the
// paper's prefetch annotations meet real I/O latency: the page load runs
// as an ordinary pool task ahead of the cursor instead of a blocking
// fault inside it.
func (s *Store) touchKey(key uint64, stop *atomic.Bool) {
	s.tree.Touch(key, stop)
	if s.pg == nil {
		return
	}
	op := s.tree.NewOp("lookup", key, 0, func(ctx *mxtask.Context, t *mxtask.Task) {
		if stop != nil && stop.Load() {
			return
		}
		o := t.Arg.(*blinktree.Op)
		if !o.Found || !pager.IsRef(o.Result) {
			return
		}
		pageID, _ := pager.SplitRef(o.Result)
		s.pg.Touch(ctx, pageID)
	})
	s.tree.StartFrom(nil, op)
}
