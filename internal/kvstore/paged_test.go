package kvstore

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/pager"
)

// newPagedStore builds an in-memory paged Store over its own runtime.
func newPagedStore(t testing.TB, workers int, cfg PagedConfig) (*Store, func()) {
	t.Helper()
	rt := mxtask.New(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	s, err := NewPaged(rt, cfg)
	if err != nil {
		rt.Stop()
		t.Fatalf("NewPaged: %v", err)
	}
	return s, func() { s.Close(); rt.Stop() }
}

// newPagedShardedN builds an in-memory paged Sharded over an n-node group.
func newPagedShardedN(t testing.TB, n, workers int, cfg PagedConfig) (*Sharded, func()) {
	t.Helper()
	g := mxtask.NewGroup(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	}, n)
	g.Start()
	s, err := NewShardedPaged(g.Runtimes(), cfg)
	if err != nil {
		g.Stop()
		t.Fatalf("NewShardedPaged: %v", err)
	}
	return s, func() { s.Close(); g.Stop() }
}

// The paged tier's contract: a Store whose values live in a buffer pool —
// however small, however hard it thrashes — is observably identical to a
// plain in-memory Store. A seeded random op stream runs in lockstep
// against an in-memory reference and three paged shapes: a 2-frame pool
// that must evict on nearly every store, a mid-size pool where only half
// the value range spills (exercising the inline/spilled boundary on
// overwrites in both directions), and a 3-shard paged router. Every GET,
// SCAN, and mutation ack must agree, and the final full-range contents
// must be identical. Same shape as TestShardCountInvariance.
func TestPagedStoreInvariance(t *testing.T) {
	ref, stopRef := newStore(t, 2)
	defer stopRef()
	refOps := storeOps(ref)

	tiny, stopTiny := newPagedStore(t, 2, PagedConfig{PageBytes: 128, PoolFrames: 2, SpillOver: 0})
	defer stopTiny()
	mixed, stopMixed := newPagedStore(t, 2, PagedConfig{PageBytes: 256, PoolFrames: 8, SpillOver: 1 << 63})
	defer stopMixed()
	shp, stopShp := newPagedShardedN(t, 3, 2, PagedConfig{PageBytes: 256, PoolFrames: 4, SpillOver: 0})
	defer stopShp()

	subjects := []struct {
		name string
		ops  syncOps
	}{
		{"paged-2frame", storeOps(tiny)},
		{"paged-halfspill", storeOps(mixed)},
		{"paged-3shard", shardedOps(shp)},
	}

	rng := rand.New(rand.NewSource(0x9a9ed))
	pool := make([]uint64, 160)
	for i := range pool {
		pool[i] = rng.Uint64()
	}
	pick := func() uint64 { return pool[rng.Intn(len(pool))] }

	const ops = 1200
	for op := 0; op < ops; op++ {
		switch c := rng.Intn(100); {
		case c < 40: // SET — uniform 64-bit values straddle mixed's spill line
			k, v := pick(), rng.Uint64()
			want := refOps.set(k, v)
			for _, s := range subjects {
				got := s.ops.set(k, v)
				if got.Err != nil {
					t.Fatalf("op %d: %s SET(%d) failed: %v", op, s.name, k, got.Err)
				}
				if got.Found != want.Found {
					t.Fatalf("op %d: %s SET(%d) overwrote=%v, ref %v", op, s.name, k, got.Found, want.Found)
				}
			}
		case c < 60: // DEL — must free the displaced slot, not just the key
			k := pick()
			want := refOps.del(k)
			for _, s := range subjects {
				if got := s.ops.del(k); got.Found != want.Found {
					t.Fatalf("op %d: %s DEL(%d) existed=%v, ref %v", op, s.name, k, got.Found, want.Found)
				}
			}
		case c < 85: // GET — resolves through the pool, maybe faulting a page
			k := pick()
			want := refOps.get(k)
			for _, s := range subjects {
				got := s.ops.get(k)
				if got.Err != nil {
					t.Fatalf("op %d: %s GET(%d) failed: %v", op, s.name, k, got.Err)
				}
				if got.Found != want.Found || got.Value != want.Value {
					t.Fatalf("op %d: %s GET(%d) = (%d,%v), ref (%d,%v)",
						op, s.name, k, got.Value, got.Found, want.Value, want.Found)
				}
			}
		default: // SCAN — batch-resolves every spilled ref in the window
			from := pick()
			width := uint64(1) << uint(rng.Intn(64))
			to := from + width
			if to < from {
				to = math.MaxUint64
			}
			limit := 0
			if rng.Intn(2) == 0 {
				limit = 1 + rng.Intn(16)
			}
			want := refOps.scan(from, to, limit)
			for _, s := range subjects {
				got := s.ops.scan(from, to, limit)
				if got.Err != nil {
					t.Fatalf("op %d: %s SCAN failed: %v", op, s.name, got.Err)
				}
				if len(got.Pairs) != len(want.Pairs) {
					t.Fatalf("op %d: %s SCAN[%d,%d)/%d = %d pairs, ref %d",
						op, s.name, from, to, limit, len(got.Pairs), len(want.Pairs))
				}
				for i := range got.Pairs {
					if got.Pairs[i] != want.Pairs[i] {
						t.Fatalf("op %d: %s SCAN pair %d = %+v, ref %+v",
							op, s.name, i, got.Pairs[i], want.Pairs[i])
					}
				}
				if len(got.Pairs) != limit && got.Truncated != want.Truncated {
					t.Fatalf("op %d: %s SCAN truncated=%v, ref %v", op, s.name, got.Truncated, want.Truncated)
				}
			}
		}
	}

	// Final state: identical full-range contents.
	want := refOps.scan(0, math.MaxUint64, 0)
	for _, s := range subjects {
		got := s.ops.scan(0, math.MaxUint64, 0)
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("%s final state has %d keys, ref %d", s.name, len(got.Pairs), len(want.Pairs))
		}
		for i := range got.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("%s final pair %d = %+v, ref %+v", s.name, i, got.Pairs[i], want.Pairs[i])
			}
		}
	}

	// The 2-frame subject cannot have held its working set resident: the
	// agreement above must have been earned under real eviction traffic.
	st, ok := tiny.PagerStats()
	if !ok {
		t.Fatal("paged store reports no pager stats")
	}
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("2-frame pool saw no eviction traffic (stats %+v) — test lost its teeth", st)
	}
	if st.Resident > 2 {
		t.Fatalf("2-frame pool holds %d resident pages", st.Resident)
	}
	sst, ok := shp.PagerStats()
	if !ok || sst.Pages == 0 {
		t.Fatalf("sharded paged stats = %+v, %v", sst, ok)
	}
	t.Logf("paged-2frame: %+v (hit rate %.2f)", st, st.HitRate())
}

// Deleting a spilled value must release its page slot back to the pool.
// Fill, delete everything, refill with fresh keys: the page count must not
// grow past the first generation's footprint (plus one page of slack for
// partial-fill boundaries). Guards the armPrevFree slot-recycling path —
// without it the page file leaks a slot per delete and a larger-than-RAM
// store grows without bound.
func TestPagedDeleteRecyclesSlots(t *testing.T) {
	s, stop := newPagedStore(t, 2, PagedConfig{PageBytes: 128, PoolFrames: 2, SpillOver: 0})
	defer stop()

	const n = 60
	fill := func(gen uint64) {
		for i := uint64(0); i < n; i++ {
			if r := s.SetSync(gen<<32|i, gen*1000+i); r.Err != nil {
				t.Fatalf("gen %d set %d: %v", gen, i, r.Err)
			}
		}
	}
	fill(1)
	base, ok := s.PagerStats()
	if !ok {
		t.Fatal("no pager stats")
	}
	for i := uint64(0); i < n; i++ {
		if r := s.DeleteSync(1<<32 | i); !r.Found {
			t.Fatalf("delete %d not found", i)
		}
	}
	s.Runtime().Drain() // let the fire-and-forget frees land
	fill(2)
	after, _ := s.PagerStats()
	if after.Pages > base.Pages+1 {
		t.Fatalf("page file grew %d -> %d across delete/refill; slots not recycled",
			base.Pages, after.Pages)
	}
	if after.Frees == 0 {
		t.Fatal("no frees recorded; deletes did not release spilled slots")
	}
	for i := uint64(0); i < n; i++ {
		if r := s.GetSync(2<<32 | i); !r.Found || r.Value != 2000+i {
			t.Fatalf("gen-2 key %d = %+v", i, r)
		}
	}
}

// Overwriting a spilled value with an inline one (and vice versa) must
// free the displaced slot and keep reads coherent across the transition.
func TestPagedSpillBoundaryOverwrites(t *testing.T) {
	// Spill threshold 1000: values >= 1000 page out, below stay inline.
	s, stop := newPagedStore(t, 2, PagedConfig{PageBytes: 128, PoolFrames: 2, SpillOver: 1000})
	defer stop()

	const k = uint64(42)
	seq := []uint64{5000, 7, 6000, 6001, 3, 9999}
	for i, v := range seq {
		r := s.SetSync(k, v)
		if r.Err != nil {
			t.Fatalf("step %d set %d: %v", i, v, r.Err)
		}
		if (r.Found) != (i > 0) {
			t.Fatalf("step %d overwrite flag = %v", i, r.Found)
		}
		if g := s.GetSync(k); !g.Found || g.Value != v {
			t.Fatalf("step %d get = %+v, want %d", i, g, v)
		}
	}
	s.Runtime().Drain()
	st, _ := s.PagerStats()
	// Four spilled generations wrote, three were displaced: their slots
	// must have been freed, keeping the footprint at one live slot.
	if st.Frees < 3 {
		t.Fatalf("stats %+v: displaced spilled slots not freed", st)
	}
	if r := s.DeleteSync(k); !r.Found {
		t.Fatal("final delete missed")
	}
}

// The pager surfaces typed errors, not panics, when the pool is too small
// to make progress — and an over-pinned pool is the canonical case.
func TestPagedStatsSurface(t *testing.T) {
	s, stop := newPagedStore(t, 1, PagedConfig{PageBytes: 256, PoolFrames: 4, SpillOver: 0})
	defer stop()
	if !s.Paged() {
		t.Fatal("Paged() = false on a paged store")
	}
	for i := uint64(0); i < 50; i++ {
		if r := s.SetSync(i, i+100); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st, ok := s.PagerStats()
	if !ok || st.Allocs < 50 {
		t.Fatalf("stats = %+v, %v", st, ok)
	}
	if st.Resident > 4 {
		t.Fatalf("resident %d > 4 frames", st.Resident)
	}
	var zero pager.Stats
	if st == zero {
		t.Fatal("stats all zero after 50 spilled stores")
	}
}

// Regression: a spilled Set detours through the pager's pool task before
// its tree insert, so an op dispatched right behind it — with no waiting
// on the Set's completion — used to overtake the insert and read the
// world as if the Set never happened (a pipelined `SET k v` / `GET k`
// on one connection answered NOT_FOUND where the plain store answers
// VALUE). The pendingSpills fence in Store.dispatch restores parity
// with the plain store's single-pool dispatch ordering, so every case
// below must hold deterministically at one worker. (At 2+ workers even
// the plain store's optimistic reads may overtake an unacked write, and
// interleaved group descents of 2+ cursors carry no cross-batch order by
// contract — neither is the paged tier's to strengthen; the fence's job
// is only to not be WEAKER than plain.)
func TestPagedDispatchOrdering(t *testing.T) {
	s, stop := newPagedStore(t, 1, PagedConfig{PageBytes: 256, PoolFrames: 4})
	defer stop()

	// Read-your-writes: GET issued immediately behind an async spilled SET.
	for i := uint64(0); i < 200; i++ {
		s.Set(i, i+1_000_000, nil)
		if r := s.GetSync(i); !r.Found || r.Value != i+1_000_000 {
			t.Fatalf("get behind pipelined spill set of key %d = %+v", i, r)
		}
	}

	// A DELETE issued right behind a spilled SET must win.
	s.Set(7, 7_000_000, nil)
	s.Delete(7, nil)
	if r := s.GetSync(7); r.Found {
		t.Fatalf("delete behind pipelined spill set lost: %+v", r)
	}

	// A SCAN issued right behind a spilled SET must include it.
	s.Set(300, 42_000, nil)
	res := s.ScanSync(300, 301)
	if len(res.Pairs) != 1 || res.Pairs[0].Value != 42_000 {
		t.Fatalf("scan behind pipelined spill set = %+v", res)
	}

	// The server flushes neighbor batches at every command-kind change, so
	// a pipelined SET/GET alternation arrives as batches of one — which
	// run as classic chains and must order exactly like the singles above.
	for i := uint64(400); i < 500; i++ {
		s.SetBatch([]blinktree.KV{{Key: i, Value: i + 900_000}}, func(int, Result) {})
		ch := make(chan Result, 1)
		s.GetBatch([]uint64{i}, func(_ int, r Result) { ch <- r })
		if r := <-ch; !r.Found || r.Value != i+900_000 {
			t.Fatalf("batch-of-one get behind batch-of-one set of key %d = %+v", i, r)
		}
	}
}

// Regression companion to TestPagedDispatchOrdering for the mixed
// inline/spilled case: with a spill threshold, an inline overwrite
// dispatched right behind a spilled write of the same key used to apply
// first and then be clobbered by the late-arriving spill insert —
// last-write-wins inverted.
func TestPagedDispatchOrderingInlineAfterSpill(t *testing.T) {
	s, stop := newPagedStore(t, 1, PagedConfig{PageBytes: 256, PoolFrames: 4, SpillOver: 1 << 20})
	defer stop()
	for i := uint64(0); i < 100; i++ {
		s.Set(i, (1<<20)+i, nil) // spills
		s.Set(i, 5+i, nil)       // inline, must win
		if r := s.GetSync(i); !r.Found || r.Value != 5+i {
			t.Fatalf("inline overwrite behind spill set of key %d = %+v", i, r)
		}
	}
	// And the reverse: the spilled write dispatched second must win.
	for i := uint64(200); i < 300; i++ {
		s.Set(i, 5+i, nil)       // inline
		s.Set(i, (1<<20)+i, nil) // spills, must win
		if r := s.GetSync(i); !r.Found || r.Value != (1<<20)+i {
			t.Fatalf("spill overwrite behind inline set of key %d = %+v", i, r)
		}
	}
}

// The same guarantee end-to-end: pipelined commands on one server
// connection (all written before any reply is read) answer as if
// executed in submission order, against a paged backend exactly as
// against a plain one. One worker — the configuration where the plain
// store provides this (see TestPagedDispatchOrdering), and the one the
// unfenced spill path deterministically broke.
func TestPagedServerPipelinedReadYourWrites(t *testing.T) {
	s, stop := newPagedStore(t, 1, PagedConfig{PageBytes: 256, PoolFrames: 4})
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	r := bufio.NewReader(conn)
	drive := func(req string, want []string) {
		t.Helper()
		if _, err := conn.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reply %d: %v", i, err)
			}
			if got := strings.TrimRight(line, "\n"); got != w {
				t.Fatalf("reply %d = %q, want %q", i, got, w)
			}
		}
	}

	// Burst 1: pipelined SET/GET pairs — the read-your-writes property the
	// pendingSpills fence exists for. Without the fence the GET's descent
	// overtakes the SET still parked in its page-allocation task.
	var req strings.Builder
	var want []string
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&req, "SET %d %d\nGET %d\n", i, 1000+i, i)
		want = append(want, "STORED", fmt.Sprintf("VALUE %d", 1000+i))
	}
	drive(req.String(), want)

	// Burst 2: pipelined DEL/GET pairs — the GET descends after the delete
	// applied, finds no entry, and needs no pager redemption, so NOT_FOUND
	// is deterministic at one worker.
	//
	// Deliberately NOT asserted: a GET pipelined *ahead of* a DEL on the
	// same key ("GET k\nDEL k" in one burst). The GET's leaf read resolves
	// the reference first (FIFO holds), but redeeming it at the pager is a
	// second spawned hop, and the delete's Commit-hook Free — enqueued
	// directly from the leaf task — can legally land in the pager lane
	// first. The invalidated slot sends loadValue back around the tree and
	// the GET resolves to the post-delete state. Both operations are in
	// flight, so either order is a valid linearization (the plain store
	// happens to pick the other one); see the loadValue contract.
	req.Reset()
	want = want[:0]
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&req, "DEL %d\nGET %d\n", i, i)
		want = append(want, "DELETED", "NOT_FOUND")
	}
	req.WriteString("QUIT\n")
	want = append(want, "BYE")
	drive(req.String(), want)
}
