package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// bigLine builds an MSET request line of n pairs with 16+-digit keys, so
// ~40 bytes per pair — n = 2000 comfortably exceeds 64 KiB.
func bigMSET(n int) (string, uint64) {
	var sb strings.Builder
	sb.WriteString("MSET")
	base := uint64(1_000_000_000_000_000)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " %d %d", base+uint64(i), base*2+uint64(i))
	}
	return sb.String(), base
}

// Regression: a request line past bufio.Scanner's default 64 KiB token
// cap used to terminate the scan silently — the connection dropped with no
// reply. It must now execute normally.
func TestServerLongRequestLine(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	line, base := bigMSET(2000)
	if len(line) <= 64<<10 {
		t.Fatalf("test line only %d bytes, want > 64 KiB", len(line))
	}
	reply, err := c.roundTrip(line)
	if err != nil || reply != "STORED 2000" {
		t.Fatalf("oversized MSET = %q, %v", reply, err)
	}
	// The connection survived and the data landed.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after long line: %v", err)
	}
	if v, found, err := c.Get(base + 1999); err != nil || !found || v != 2*base+1999 {
		t.Fatalf("Get after big MSET = %d,%v,%v", v, found, err)
	}
}

// Regression: a SCAN reply past 64 KiB used to fail client-side with
// bufio.ErrTooLong even when the server sent it.
func TestClientLargeScanReply(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// 4000 pairs of 16-digit keys/values ≈ 140 KiB of reply line.
	const n = 4000
	base := uint64(1_000_000_000_000_000)
	for i := uint64(0); i < n; i++ {
		s.Set(base+i, base+i*7, nil)
	}
	s.Drain()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs, truncated, err := c.ScanLimit(base, base+n, 0)
	if err != nil {
		t.Fatalf("large scan: %v", err)
	}
	if truncated || len(pairs) != n {
		t.Fatalf("large scan = %d pairs truncated=%v, want %d", len(pairs), truncated, n)
	}
	for i, kv := range pairs {
		if kv.Key != base+uint64(i) || kv.Value != base+uint64(i)*7 {
			t.Fatalf("pair %d = %+v", i, kv)
		}
	}
}

// A line over MaxLineBytes is answered with a protocol-level ERR, counted,
// and the connection resyncs at the next newline instead of dropping.
func TestServerLineTooLong(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	// One oversized garbage line, then a normal request.
	junk := strings.Repeat("x", MaxLineBytes+16)
	if _, err := conn.Write([]byte(junk + "\nPING\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	reply, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(reply) != "ERR line too long" {
		t.Fatalf("oversized line reply = %q, %v", reply, err)
	}
	reply, err = r.ReadString('\n')
	if err != nil || strings.TrimSpace(reply) != "PONG" {
		t.Fatalf("connection did not resync after oversized line: %q, %v", reply, err)
	}
	if got := srv.Metrics().TooLong.Value(); got != 1 {
		t.Fatalf("TooLong counter = %d, want 1", got)
	}
	if got := srv.Metrics().ConnErrors.Value(); got != 0 {
		t.Fatalf("ConnErrors counter = %d, want 0 (too-long is not a connection error)", got)
	}
}

// serve() used to discard r.Err(), making I/O errors indistinguishable
// from a clean hangup. A reset connection must bump the error counter and
// surface through LastError; a clean close must not.
func TestServerConnErrorSurfaced(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	var hooked error
	srv, err := NewServer(s, "127.0.0.1:0", WithErrorLog(func(e error) { hooked = e }))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Clean close first: no error counted.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	time.Sleep(20 * time.Millisecond)
	if got := srv.Metrics().ConnErrors.Value(); got != 0 {
		t.Fatalf("clean close counted as error (errs=%d)", got)
	}

	// Now an abortive close: SetLinger(0) turns Close into a RST, which
	// the server's blocked read sees as a hard I/O error.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET 1")); err != nil { // no newline: server stays in read
		t.Fatal(err)
	}
	conn.(*net.TCPConn).SetLinger(0)
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ConnErrors.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Metrics().ConnErrors.Value(); got != 1 {
		t.Fatalf("ConnErrors = %d after RST, want 1", got)
	}
	if srv.LastError() == nil || hooked == nil {
		t.Fatalf("LastError=%v hook=%v, want both non-nil", srv.LastError(), hooked)
	}
	// STATS reflects the counter.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	reply, err := c2.roundTrip("STATS")
	if err != nil || !strings.Contains(reply, "errs=1") {
		t.Fatalf("STATS = %q, %v (want errs=1)", reply, err)
	}
}

// Pipelined issue/await: replies come back strictly in issue order, mixed
// command types included, and the neighbor-batching fast path agrees with
// the dispatch slow path.
func TestServerPipelinedOrdering(t *testing.T) {
	s, stop := newBackend(t, 4)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Preload synchronously so pipelined reads have stable values.
	const n = 200
	for i := uint64(0); i < n; i++ {
		if _, err := c.Set(i, i*3); err != nil {
			t.Fatal(err)
		}
	}

	// One burst: n GETs with PINGs sprinkled in, written in one flush so
	// the server's reader sees deep buffered input (exercising both the
	// batcher and its boundaries).
	for i := uint64(0); i < n; i++ {
		if err := c.SendGet(i); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if err := c.send("PING"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		v, found, err := c.AwaitGet()
		if err != nil || !found || v != i*3 {
			t.Fatalf("pipelined Get(%d) = %d,%v,%v", i, v, found, err)
		}
		if i%17 == 0 {
			reply, err := c.Await()
			if err != nil || reply != "PONG" {
				t.Fatalf("interleaved PING = %q, %v", reply, err)
			}
		}
	}
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", c.InFlight())
	}

	// Pipelined writes then reads: await the writes before reading to
	// keep read-your-write semantics.
	for i := uint64(0); i < 50; i++ {
		if err := c.SendSet(1000+i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := c.AwaitSet(); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		if err := c.SendGet(1000 + i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		v, found, err := c.AwaitGet()
		if err != nil || !found || v != i {
			t.Fatalf("Get(1000+%d) = %d,%v,%v", i, v, found, err)
		}
	}

	m := srv.Metrics()
	if m.Depth.Count() == 0 {
		t.Fatal("depth histogram recorded nothing")
	}
	if m.InFlight.Max() < 2 {
		t.Fatalf("InFlight.Max = %d, want >= 2 for a pipelined burst", m.InFlight.Max())
	}
}

// A tiny window must throttle, not break: far more requests than the
// window still all answer, in order.
func TestServerWindowBackpressure(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0", WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := c.SendSet(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := c.AwaitSet(); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	if got := s.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	// The in-flight gauge settles back to zero once replies drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().InFlight.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Metrics().InFlight.Value(); got != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", got)
	}
}

// SCAN's server-side result cap: default cap, explicit limit, MORE marker,
// and resumability.
func TestServerScanCap(t *testing.T) {
	s, stop := newBackend(t, 2)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	total := DefaultScanLimit + 100
	for i := 0; i < total; i++ {
		s.Set(uint64(i), uint64(i), nil)
	}
	s.Drain()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Explicit small limit.
	pairs, truncated, err := c.ScanLimit(0, uint64(total), 5)
	if err != nil || len(pairs) != 5 || !truncated {
		t.Fatalf("ScanLimit(5) = %d pairs truncated=%v err=%v", len(pairs), truncated, err)
	}
	for i, kv := range pairs {
		if kv.Key != uint64(i) {
			t.Fatalf("capped scan pair %d = %+v, want key %d (lowest keys win)", i, kv, i)
		}
	}
	// Resume from last key + 1.
	pairs2, _, err := c.ScanLimit(pairs[4].Key+1, uint64(total), 5)
	if err != nil || len(pairs2) != 5 || pairs2[0].Key != 5 {
		t.Fatalf("resumed scan = %v, %v", pairs2, err)
	}
	// Default cap over the whole range.
	pairs, truncated, err = c.ScanLimit(0, uint64(total), 0)
	if err != nil || len(pairs) != DefaultScanLimit || !truncated {
		t.Fatalf("default-cap scan = %d pairs truncated=%v err=%v, want %d/true",
			len(pairs), truncated, err, DefaultScanLimit)
	}
	// Uncapped-in-range result: no MORE.
	pairs, truncated, err = c.ScanLimit(0, 10, 0)
	if err != nil || len(pairs) != 10 || truncated {
		t.Fatalf("in-cap scan = %d pairs truncated=%v err=%v", len(pairs), truncated, err)
	}
	// Bad limit argument.
	if reply, err := c.roundTrip("SCAN 0 10 0"); err != nil || !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("SCAN limit 0 = %q, %v", reply, err)
	}
	if reply, err := c.roundTrip("SCAN 0 10 x"); err != nil || !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("SCAN limit x = %q, %v", reply, err)
	}
}

// MGET/MSET batch size caps answer with ERR instead of building unbounded
// replies.
func TestServerBatchKeyCap(t *testing.T) {
	s, stop := newBackend(t, 1)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sb strings.Builder
	sb.WriteString("MGET")
	for i := 0; i <= MaxBatchKeys; i++ {
		sb.WriteString(" 1")
	}
	reply, err := c.roundTrip(sb.String())
	if err != nil || !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("oversized MGET = %q, %v", reply, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after capped MGET: %v", err)
	}
}

// Await with nothing outstanding is a client-usage error, not a hang.
func TestClientAwaitUnderflow(t *testing.T) {
	s, stop := newBackend(t, 1)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Await(); err == nil {
		t.Fatal("Await with no request in flight succeeded")
	}
}
