package kvstore

import (
	"sync/atomic"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/prefetch"
)

// Learned access-pattern prefetching (DESIGN.md §8): the server keeps two
// prefetch.Streams per connection — one over point-operation keys
// (GET/SET and each MGET member) and one over SCAN start keys — and turns
// confirmed stride predictions into best-effort cache-warming task chains
// against the backend's Blink-trees. A client paging sequentially through
// the keyspace (YCSB-E) induces a stride on the scan stream, so the leaf
// chain its next pages will walk is already warm; a client replaying a
// key-sequential batch load induces one on the point stream. Random
// clients (YCSB-C) never confirm a stride and their streams self-disable,
// so they pay only the stream's gated fast path per request.

// Toucher is the optional backend surface the learned prefetcher drives.
// Store and Sharded implement it; the server discovers it by type
// assertion per use (so SwapBackend to a toucher-less backend simply
// turns warming off) and never requires it of a Backend.
type Toucher interface {
	// TouchKeys warms the leaves holding the predicted keys. Best-effort:
	// chains observing stop terminate at their next step.
	TouchKeys(keys []uint64, stop *atomic.Bool)
	// TouchScanAhead warms up to leaves consecutive leaves starting at
	// from's leaf — the pages a sequentially paging scan will read next.
	TouchScanAhead(from uint64, leaves int, stop *atomic.Bool)
	// AttachLearnedPrefetch registers the server's aggregate prefetch
	// metrics with the backend's runtime so WorkerStats/Runtime.Stats
	// surface them.
	AttachLearnedPrefetch(m *prefetch.Metrics)
}

// TouchKeys warms each predicted key's leaf through a touch chain — and,
// on a paged store, the page holding its spilled value (see touchKey).
func (s *Store) TouchKeys(keys []uint64, stop *atomic.Bool) {
	for _, k := range keys {
		s.touchKey(k, stop)
	}
}

// TouchScanAhead warms the leaf chain a paging scan is predicted to walk,
// plus the start key's value page on a paged store.
func (s *Store) TouchScanAhead(from uint64, leaves int, stop *atomic.Bool) {
	s.tree.TouchAhead(from, leaves, stop)
	if s.pg != nil {
		s.touchKey(from, stop)
	}
}

// AttachLearnedPrefetch folds the aggregate learned-prefetch metrics into
// the store runtime's stats.
func (s *Store) AttachLearnedPrefetch(m *prefetch.Metrics) {
	s.rt.AttachLearnedPrefetch(m)
}

// TouchKeys routes each predicted key's touch chain to its owning shard.
func (s *Sharded) TouchKeys(keys []uint64, stop *atomic.Bool) {
	for _, k := range keys {
		s.shards[s.ShardOf(k)].touchKey(k, stop)
	}
}

// TouchScanAhead warms the leaf chain on the shard owning from. The chain
// stops at the shard boundary's rightmost leaf; a prediction landing in
// the next shard routes there on its own observation.
func (s *Sharded) TouchScanAhead(from uint64, leaves int, stop *atomic.Bool) {
	s.shards[s.ShardOf(from)].tree.TouchAhead(from, leaves, stop)
}

// AttachLearnedPrefetch attaches the shared aggregate metrics to shard 0's
// runtime only: the metrics object is one server-wide aggregate, and
// attaching it everywhere would make a Group-level stats sweep count it
// once per shard.
func (s *Sharded) AttachLearnedPrefetch(m *prefetch.Metrics) {
	s.shards[0].AttachLearnedPrefetch(m)
}

// WithLearnedPrefetch arms per-connection learned prefetching with cfg
// (zero value = defaults). The server aggregates all connections' stream
// counters into one prefetch.Metrics, surfaced via STATS pf_* fields and
// the backend runtime's WorkerStats.
func WithLearnedPrefetch(cfg prefetch.Config) ServerOption {
	return func(s *Server) {
		s.pfCfg = &cfg
		s.pfMetrics = &prefetch.Metrics{}
	}
}

// LearnedPrefetchMetrics returns the server-wide aggregate prefetcher
// counters, or nil when WithLearnedPrefetch was not configured.
func (s *Server) LearnedPrefetchMetrics() *prefetch.Metrics { return s.pfMetrics }

// maxScanAheadLeaves caps how far ahead of a paging scan the warmer runs:
// warming the whole tree for one huge predicted page would evict more
// than it saves.
const maxScanAheadLeaves = 8

// scanAheadLeaves converts a SCAN limit into a leaf-chain warming depth:
// enough leaves to cover the page at typical half-full occupancy, capped.
func scanAheadLeaves(limit int) int {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	leaves := 1 + limit/(blinktree.Capacity/2)
	if leaves > maxScanAheadLeaves {
		leaves = maxScanAheadLeaves
	}
	return leaves
}

// connPrefetch is one connection's learned prefetch state. Both streams
// are fed only from the connection's reader goroutine; stop is the shared
// cancellation flag every touch chain the connection issues carries, set
// when the connection (and therefore the access stream the predictions
// were induced from) dies. Methods are nil-receiver-safe so un-armed
// servers and the blocking handle() path pass nil.
type connPrefetch struct {
	srv   *Server
	point *prefetch.Stream
	scan  *prefetch.Stream
	stop  atomic.Bool
	buf   []uint64
	// Leaf-granular dedup for point predictions: a dense stride's frontier
	// advances one key per observation while a leaf holds ~Capacity/2 keys,
	// so touching every predicted key would descend the tree ~30x per
	// leaf's worth of useful warming. A prediction within half a leaf of
	// the last touch is already warm.
	lastTouch uint64
	haveTouch bool
	touchBuf  []uint64
}

// shouldTouch reports whether a predicted key plausibly lands on a leaf
// not already warmed by the previous touch.
func (pf *connPrefetch) shouldTouch(p uint64) bool {
	if pf.haveTouch {
		d := p - pf.lastTouch
		if int64(d) < 0 {
			d = -d
		}
		if d < blinktree.Capacity/2 {
			return false
		}
	}
	pf.lastTouch, pf.haveTouch = p, true
	return true
}

// newConnPrefetch returns nil when learned prefetching is not configured.
func (s *Server) newConnPrefetch() *connPrefetch {
	if s.pfCfg == nil {
		return nil
	}
	return &connPrefetch{
		srv:   s,
		point: prefetch.New(*s.pfCfg, s.pfMetrics),
		scan:  prefetch.New(*s.pfCfg, s.pfMetrics),
	}
}

// observeKey feeds one point access; confirmed predictions become key
// touch chains on the backend.
func (pf *connPrefetch) observeKey(key uint64) {
	if pf == nil {
		return
	}
	pf.buf = pf.point.Observe(key, pf.buf[:0])
	if len(pf.buf) == 0 {
		return
	}
	pf.touchBuf = pf.touchBuf[:0]
	for _, p := range pf.buf {
		if pf.shouldTouch(p) {
			pf.touchBuf = append(pf.touchBuf, p)
		}
	}
	if len(pf.touchBuf) == 0 {
		return
	}
	if t, ok := pf.srv.store().(Toucher); ok {
		t.TouchKeys(pf.touchBuf, &pf.stop)
	}
}

// observeScan feeds a SCAN's start key; a confirmed paging stride warms
// the leaf chains the predicted next pages will walk.
func (pf *connPrefetch) observeScan(from uint64, limit int) {
	if pf == nil {
		return
	}
	pf.buf = pf.scan.Observe(from, pf.buf[:0])
	if len(pf.buf) == 0 {
		return
	}
	t, ok := pf.srv.store().(Toucher)
	if !ok {
		return
	}
	leaves := scanAheadLeaves(limit)
	for _, start := range pf.buf {
		t.TouchScanAhead(start, leaves, &pf.stop)
	}
}

// cancel terminates every touch chain this connection issued: in-flight
// steps observe the flag and fall through, so predictions cannot outlive
// the stream that induced them.
func (pf *connPrefetch) cancel() {
	if pf == nil {
		return
	}
	pf.stop.Store(true)
}
