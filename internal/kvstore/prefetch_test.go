package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mxtasking/internal/prefetch"
)

// newLearnedServer stands up a backend (Store or Sharded per MXKV_SHARDS)
// behind a server with learned prefetching armed, plus a connected client.
func newLearnedServer(t *testing.T) (testBackend, *Server, *Client, func()) {
	t.Helper()
	b, stopBackend := newBackend(t, 2)
	srv, err := NewServer(b, "127.0.0.1:0", WithLearnedPrefetch(prefetch.Config{}))
	if err != nil {
		stopBackend()
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		stopBackend()
		t.Fatal(err)
	}
	return b, srv, c, func() {
		c.Close()
		srv.Close()
		stopBackend()
	}
}

// pfStat reads one pf_* aggregate off the STATS reply.
func pfStat(t *testing.T, c *Client, name string) uint64 {
	t.Helper()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	v, ok := st.ExtraUint(name)
	if !ok {
		t.Fatalf("STATS reply missing %s (extra=%v)", name, st.Extra)
	}
	return v
}

// TestLearnedPrefetchSequentialScan pages a client sequentially through
// the keyspace — the YCSB-E shape — and asserts the scan stream induced
// the paging stride, scored hits, widened its window, and issued
// leaf-warming predictions, all visible through STATS pf_* fields.
func TestLearnedPrefetchSequentialScan(t *testing.T) {
	b, srv, c, stop := newLearnedServer(t)
	defer stop()

	const n = 20000
	for i := uint64(0); i < n; i += 1 {
		b.Set(i, i, nil)
	}
	b.Drain()

	const page = 500
	for from := uint64(0); from+page <= n; from += page {
		if _, _, err := c.ScanLimit(from, from+page, page); err != nil {
			t.Fatalf("SCAN page at %d: %v", from, err)
		}
	}

	if got := pfStat(t, c, "pf_induced"); got == 0 {
		t.Fatal("sequential scan paging induced no stride")
	}
	if got := pfStat(t, c, "pf_hits"); got == 0 {
		t.Fatal("confirmed paging stride scored no hits")
	}
	if got := pfStat(t, c, "pf_issued"); got == 0 {
		t.Fatal("confirmed paging stride issued no predictions")
	}
	cfg := prefetch.Config{}
	if got := pfStat(t, c, "pf_window"); got <= 2 {
		t.Fatalf("lookahead window never widened: pf_window=%d (min=2, max=%d)", got, cfg.MaxWindow)
	}
	if got := pfStat(t, c, "pf_disables"); got != 0 {
		t.Fatalf("predictable scan stream gated itself off (pf_disables=%d)", got)
	}
	// The aggregate is also attached to the backend runtime, so scheduler
	// observability (WorkerStats / mxload) sees the same counters.
	if m := srv.LearnedPrefetchMetrics(); m == nil || m.Issued.Load() == 0 {
		t.Fatal("server aggregate metrics not populated")
	}
	// Let issued touch chains finish before teardown.
	b.Drain()
}

// TestLearnedPrefetchSequentialMGET feeds consecutive key runs through
// MGET — every batch member hits the point stream — and asserts key-run
// warming kicked in.
func TestLearnedPrefetchSequentialMGET(t *testing.T) {
	b, _, c, stop := newLearnedServer(t)
	defer stop()

	const n = 8192
	for i := uint64(0); i < n; i++ {
		b.Set(i, i*3, nil)
	}
	b.Drain()

	const run = 32
	for base := uint64(0); base+run <= n; base += run {
		var sb strings.Builder
		sb.WriteString("MGET")
		for k := base; k < base+run; k++ {
			fmt.Fprintf(&sb, " %d", k)
		}
		reply, err := c.roundTrip(sb.String())
		if err != nil || !strings.HasPrefix(reply, "VALUES") {
			t.Fatalf("MGET at %d = %q, %v", base, reply, err)
		}
	}

	if got := pfStat(t, c, "pf_induced"); got == 0 {
		t.Fatal("sequential MGET runs induced no stride")
	}
	if got := pfStat(t, c, "pf_hits"); got == 0 {
		t.Fatal("sequential MGET runs scored no hits")
	}
	if got := pfStat(t, c, "pf_issued"); got == 0 {
		t.Fatal("sequential MGET runs issued no key-warming predictions")
	}
	b.Drain()
}

// TestLearnedPrefetchRandomSelfDisables drives a random-read stream — the
// YCSB-C shape — and asserts the gate turned the stream off instead of
// issuing junk predictions.
func TestLearnedPrefetchRandomSelfDisables(t *testing.T) {
	b, _, c, stop := newLearnedServer(t)
	defer stop()

	state := uint64(0x5eed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := c.Get(next()); err != nil {
			t.Fatalf("GET: %v", err)
		}
	}

	if got := pfStat(t, c, "pf_disables"); got == 0 {
		t.Fatal("random point stream never self-disabled")
	}
	if got := pfStat(t, c, "pf_issued"); got > 32 {
		t.Fatalf("random stream issued %d predictions, want ~0", got)
	}
	b.Drain()
}

// TestLearnedPrefetchCloseMidScan confirms a paging stride (so touch
// chains are in flight), then drops the connection without draining its
// replies: the chains must observe the connection's stop flag and fall
// through — no panic, no deadlock, and the server keeps serving.
func TestLearnedPrefetchCloseMidScan(t *testing.T) {
	b, srv, c, stop := newLearnedServer(t)
	defer stop()

	const n = 50000
	for i := uint64(0); i < n; i++ {
		b.Set(i, i, nil)
	}
	b.Drain()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	const page = 400
	// Pipeline enough sequential pages to confirm the stride and keep
	// predictions (and their touch chains) flowing, then vanish without
	// reading a single reply.
	for from := uint64(0); from+page <= n; from += page {
		fmt.Fprintf(w, "SCAN %d %d %d\n", from, from+page, page)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the reader dispatch some pages
	conn.Close()

	// The dead connection's chains cancel; the runtime must drain.
	done := make(chan struct{})
	go func() { b.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backend did not drain after close-mid-scan")
	}

	// And the server is still healthy for other clients.
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after close-mid-scan: %v", err)
	}
	if v, found, err := c.Get(1234); err != nil || !found || v != 1234 {
		t.Fatalf("Get after close-mid-scan = %d,%v,%v", v, found, err)
	}
}
