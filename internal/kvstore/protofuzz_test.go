package kvstore

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"mxtasking/internal/mxtask"
)

// FuzzServerProtocol exercises the full TCP path — accept loop, line
// scanner, handler, reply writer — with arbitrary client byte streams.
// Contract under fuzz: the server never panics, answers every complete
// newline-terminated non-blank request line with exactly one reply line
// (until a QUIT), discards an unterminated final fragment without
// executing it (it may be a request truncated mid-wire), and closes the
// connection cleanly afterwards. Each iteration dials fresh, so a wedged
// or crashed server fails the next iteration immediately.
func FuzzServerProtocol(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("PING\n"),
		[]byte("SET 1 2\nGET 1\nDEL 1\nGET 1\n"),
		[]byte("SET 1 2\r\nSCAN 0 10\r\nQUIT\r\nGET 1\n"),
		[]byte("\n\n  \nPING\n"),
		[]byte("MSET 1 2 3 4\nMGET 1 3 5\nSTATS\nCOUNT\n"),
		[]byte("BOGUS\x00\xff\xfe junk\nquit\n"),
		[]byte("GET 18446744073709551615\nSET -1 -1\nSCAN 5 1\n"),
		[]byte("SET 1 10\nSET 2 20\nSET 3 30\nSCAN 0 10 2\nSCAN 0 10 16385\n"),
		[]byte("SCAN 0 10 0\nSCAN 0 10 -3\nSCAN 0 10 x\nSCAN 0 10 5 extra\n"),
		[]byte("SET 1 1\nSET 2 2\nGET 1\nGET 2\nGET 3\nDEL 1\nMGET 1 2\nQUIT\n"),
		[]byte("PING"), // no trailing newline: an unterminated frame, discarded
		{0x00, 0x01, 0x02, '\n', 'P', 'I', 'N', 'G', '\n'},
	} {
		f.Add(seed)
	}

	rt := mxtask.New(mxtask.Config{Workers: 2, EpochInterval: -1})
	rt.Start()
	f.Cleanup(rt.Stop)
	srv, err := NewServer(New(rt), "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	f.Fuzz(func(t *testing.T, data []byte) {
		// Keep every request line far below bufio.Scanner's token limit so
		// the expected-reply count below matches the server's line split.
		if len(data) > 4096 {
			data = data[:4096]
		}

		// Simulate the server's framing: one reply per newline-terminated
		// non-blank line, in order, stopping after the first QUIT (which is
		// still answered). The split's final element never had a newline —
		// it is not a frame and must draw no reply.
		want := 0
		lines := strings.Split(string(data), "\n")
		for _, line := range lines[:len(lines)-1] {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			want++
			if strings.ToUpper(strings.Fields(line)[0]) == "QUIT" {
				break
			}
		}

		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("server unreachable (did a previous input kill it?): %v", err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(data); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Half-close: the server sees EOF after the payload and must still
		// flush every owed reply before closing its side.
		if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
			t.Fatalf("close-write: %v", err)
		}

		r := bufio.NewReader(conn)
		got := 0
		for {
			reply, err := r.ReadString('\n')
			if len(reply) > 0 {
				got++
				if strings.TrimRight(reply, "\n") == "" {
					t.Fatalf("blank reply line (reply %d) for input %q", got, data)
				}
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("read replies: %v (after %d replies, input %q)", err, got, data)
			}
		}
		if got != want {
			t.Fatalf("got %d reply lines, want %d for input %q", got, want, data)
		}
	})
}
