package kvstore

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

// newShardedN builds an in-memory Sharded over a fresh n-node runtime
// group.
func newShardedN(t testing.TB, n, workers int) (*Sharded, func()) {
	t.Helper()
	g := mxtask.NewGroup(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	}, n)
	g.Start()
	return NewSharded(g.Runtimes()), g.Stop
}

// mgetSync runs a GetBatch and blocks for all per-key results.
func mgetSync(s *Sharded, keys []uint64) []Result {
	out := make([]Result, len(keys))
	var wg sync.WaitGroup
	wg.Add(len(keys))
	s.GetBatch(keys, func(i int, r Result) {
		out[i] = r
		wg.Done()
	})
	wg.Wait()
	return out
}

// The partition function's edges: shard 0 starts at key 0, the last shard
// owns MaxUint64, and each shardStart(i) is the exact first key of shard i
// (its predecessor belongs to shard i-1).
func TestShardBoundaries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 16} {
		if got := shardOf(0, n); got != 0 {
			t.Errorf("n=%d: shardOf(0) = %d, want 0", n, got)
		}
		if got := shardOf(math.MaxUint64, n); got != n-1 {
			t.Errorf("n=%d: shardOf(max) = %d, want %d", n, got, n-1)
		}
		if got := shardStart(0, n); got != 0 {
			t.Errorf("n=%d: shardStart(0) = %d, want 0", n, got)
		}
		for i := 1; i < n; i++ {
			b := shardStart(i, n)
			if b <= shardStart(i-1, n) {
				t.Errorf("n=%d: shardStart not increasing at %d", n, i)
			}
			if got := shardOf(b, n); got != i {
				t.Errorf("n=%d: shardOf(start(%d)) = %d, want %d", n, i, got, i)
			}
			if got := shardOf(b-1, n); got != i-1 {
				t.Errorf("n=%d: shardOf(start(%d)-1) = %d, want %d", n, i, got, i-1)
			}
		}
	}
}

// The partition must be monotonic in the key — the property the scan
// merge's concatenation depends on.
func TestShardOfMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, n := range []int{2, 3, 5, 8, 13} {
		prev := 0
		for _, k := range keys {
			sh := shardOf(k, n)
			if sh < prev || sh >= n {
				t.Fatalf("n=%d: shardOf(%d) = %d after shard %d", n, k, sh, prev)
			}
			prev = sh
		}
	}
}

func mkPairs(keys ...uint64) []blinktree.KV {
	out := make([]blinktree.KV, len(keys))
	for i, k := range keys {
		out[i] = blinktree.KV{Key: k, Value: k}
	}
	return out
}

// mergeScans in isolation: concatenation order, the cap landing mid-merge,
// and a shard-internal truncation cutting off all later shards.
func TestMergeScans(t *testing.T) {
	cases := []struct {
		name      string
		parts     []ScanResult
		limit     int
		want      []uint64
		wantTrunc bool
	}{
		{
			name:  "concat in shard order",
			parts: []ScanResult{{Pairs: mkPairs(1, 2)}, {Pairs: mkPairs(5, 6)}},
			want:  []uint64{1, 2, 5, 6},
		},
		{
			name:  "empty parts",
			parts: []ScanResult{{}, {}, {}},
			want:  nil,
		},
		{
			name:      "cap lands inside a later shard",
			parts:     []ScanResult{{Pairs: mkPairs(1, 2, 3)}, {Pairs: mkPairs(5, 6, 7)}},
			limit:     5,
			want:      []uint64{1, 2, 3, 5, 6},
			wantTrunc: true,
		},
		{
			name:      "cap lands exactly on a shard edge",
			parts:     []ScanResult{{Pairs: mkPairs(1, 2, 3)}, {Pairs: mkPairs(5)}},
			limit:     3,
			want:      []uint64{1, 2, 3},
			wantTrunc: true,
		},
		{
			name:  "exact limit with nothing beyond is not truncated",
			parts: []ScanResult{{Pairs: mkPairs(1, 2, 3)}, {}},
			limit: 3,
			want:  []uint64{1, 2, 3},
		},
		{
			// Shard 0's own scan hit its cap: keys between its cut and
			// shard 1's first key are unknown, so shard 1's pairs must NOT
			// appear — they would tear a hole in the range.
			name:      "shard-internal truncation stops the merge",
			parts:     []ScanResult{{Pairs: mkPairs(1, 2), Truncated: true}, {Pairs: mkPairs(5, 6)}},
			limit:     10,
			want:      []uint64{1, 2},
			wantTrunc: true,
		},
	}
	for _, tc := range cases {
		got := mergeScans(tc.parts, tc.limit)
		if got.Truncated != tc.wantTrunc || len(got.Pairs) != len(tc.want) {
			t.Errorf("%s: got %d pairs truncated=%v, want %d/%v",
				tc.name, len(got.Pairs), got.Truncated, len(tc.want), tc.wantTrunc)
			continue
		}
		for i, kv := range got.Pairs {
			if kv.Key != tc.want[i] {
				t.Errorf("%s: pair %d = %d, want %d", tc.name, i, kv.Key, tc.want[i])
			}
		}
	}
}

// Live scans across shard edges: a range straddling both boundaries of a
// 3-shard store returns every key in order, and ranges that span an edge
// but contain no keys come back empty without truncation.
func TestShardedScanEdges(t *testing.T) {
	s, stop := newShardedN(t, 3, 3)
	defer stop()
	b1, b2 := shardStart(1, 3), shardStart(2, 3)
	keys := []uint64{b1 - 2, b1 - 1, b1, b1 + 1, b2 - 1, b2, b2 + 1}
	for _, k := range keys {
		s.SetSync(k, k)
	}

	r := s.ScanSync(b1-2, b2+2)
	if r.Truncated || len(r.Pairs) != len(keys) {
		t.Fatalf("cross-boundary scan = %d pairs truncated=%v, want %d", len(r.Pairs), r.Truncated, len(keys))
	}
	for i, kv := range r.Pairs {
		if kv.Key != keys[i] {
			t.Fatalf("pair %d = %d, want %d (merge out of order)", i, kv.Key, keys[i])
		}
	}

	// Spans the shard-1/shard-2 edge but holds no keys.
	if r := s.ScanSync(b1+2, b2-1); r.Truncated || len(r.Pairs) != 0 {
		t.Fatalf("empty cross-edge scan = %d pairs truncated=%v", len(r.Pairs), r.Truncated)
	}
	// Degenerate and inverted ranges.
	if r := s.ScanSync(b1, b1); len(r.Pairs) != 0 {
		t.Fatalf("empty range returned %d pairs", len(r.Pairs))
	}
	if r := s.ScanSync(b2, b1); len(r.Pairs) != 0 {
		t.Fatalf("inverted range returned %d pairs", len(r.Pairs))
	}
	if got := s.RouterMetrics().ScanFanout.Count(); got == 0 {
		t.Fatal("ScanFanout recorded nothing")
	}
}

// The result cap landing mid-merge on a live store: the lowest keys win
// regardless of which shard holds them, and MORE is reported.
func TestShardedScanLimitMidMerge(t *testing.T) {
	s, stop := newShardedN(t, 2, 2)
	defer stop()
	b1 := shardStart(1, 2)
	var all []uint64
	for i := uint64(0); i < 10; i++ { // shard 0
		all = append(all, 100+i)
	}
	for i := uint64(0); i < 5; i++ { // shard 1
		all = append(all, b1+i)
	}
	for _, k := range all {
		s.SetSync(k, k)
	}
	to := b1 + 100

	// Cap inside shard 0's contribution: shard 1 fully excluded.
	r := s.ScanLimitSync(0, to, 5)
	if !r.Truncated || len(r.Pairs) != 5 {
		t.Fatalf("limit 5 = %d pairs truncated=%v", len(r.Pairs), r.Truncated)
	}
	for i, kv := range r.Pairs {
		if kv.Key != 100+uint64(i) {
			t.Fatalf("limit 5 pair %d = %d, want %d (lowest keys win)", i, kv.Key, 100+uint64(i))
		}
	}
	// Cap inside shard 1's contribution.
	r = s.ScanLimitSync(0, to, 12)
	if !r.Truncated || len(r.Pairs) != 12 {
		t.Fatalf("limit 12 = %d pairs truncated=%v", len(r.Pairs), r.Truncated)
	}
	if r.Pairs[11].Key != b1+1 {
		t.Fatalf("limit 12 last pair = %d, want %d", r.Pairs[11].Key, b1+1)
	}
	// Limit covers everything: no truncation.
	r = s.ScanLimitSync(0, to, len(all)+1)
	if r.Truncated || len(r.Pairs) != len(all) {
		t.Fatalf("uncapped = %d pairs truncated=%v, want %d/false", len(r.Pairs), r.Truncated, len(all))
	}
}

// MGET routing: a batch whose keys all live on one shard makes one
// shard-local submission (fan-out 1); a batch spread across all shards
// fans out to each, and either way replies land at their original indices.
func TestShardedMGETFanout(t *testing.T) {
	s, stop := newShardedN(t, 3, 3)
	defer stop()
	spread := []uint64{5, shardStart(1, 3) + 5, shardStart(2, 3) + 5}
	oneShard := []uint64{shardStart(1, 3) + 10, shardStart(1, 3) + 11, shardStart(1, 3) + 12}
	for _, k := range append(append([]uint64{}, spread...), oneShard...) {
		s.SetSync(k, k*2)
	}
	m := s.RouterMetrics()
	if got := m.BatchFanout.Count(); got != 0 {
		t.Fatalf("BatchFanout.Count = %d before any batch", got)
	}

	res := mgetSync(s, oneShard)
	for i, r := range res {
		if !r.Found || r.Value != oneShard[i]*2 {
			t.Fatalf("one-shard MGET[%d] = %+v", i, r)
		}
	}
	if c, mean := m.BatchFanout.Count(), m.BatchFanout.Mean(); c != 1 || mean != 1.0 {
		t.Fatalf("one-shard batch: fanout count=%d mean=%v, want 1/1.0", c, mean)
	}

	// Spread batch in shuffled index order, with a miss mixed in.
	mixed := []uint64{spread[2], spread[0], 999_999_999, spread[1]}
	res = mgetSync(s, mixed)
	for i, k := range mixed {
		if k == 999_999_999 {
			if res[i].Found {
				t.Fatalf("missing key reported found at index %d", i)
			}
			continue
		}
		if !res[i].Found || res[i].Value != k*2 {
			t.Fatalf("spread MGET[%d] (key %d) = %+v", i, k, res[i])
		}
	}
	// Second observation had fan-out 3 → mean (1+3)/2.
	if c, mean := m.BatchFanout.Count(), m.BatchFanout.Mean(); c != 2 || mean != 2.0 {
		t.Fatalf("spread batch: fanout count=%d mean=%v, want 2/2.0", c, mean)
	}
	// Every shard saw point-routed traffic.
	for i, v := range m.Routed.Values() {
		if v == 0 {
			t.Fatalf("shard %d routed no operations: %v", i, m.Routed.Values())
		}
	}
}
