package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mxtasking/internal/blinktree"
)

// Server exposes a Store over a line-based TCP protocol:
//
//	SET <key> <value>   -> STORED | OVERWRITTEN
//	GET <key>           -> VALUE <value> | NOT_FOUND
//	DEL <key>           -> DELETED | NOT_FOUND
//	SCAN <from> <to>    -> RANGE <n> k1 v1 k2 v2 ... (keys in [from,to))
//	MSET k1 v1 k2 v2 .. -> STORED <n>
//	MGET k1 k2 ..       -> VALUES v1 v2 .. (missing keys render as "-")
//	STATS               -> STATS gets=<n> sets=<n> dels=<n>
//	COUNT               -> COUNT <n>        (quiescent stores only)
//	PING                -> PONG
//	QUIT                -> BYE (closes the connection)
//
// Keys and values are decimal uint64. Each request is executed as an
// MxTask chain; the connection handler blocks per request (no pipelining),
// which keeps responses ordered.
type Server struct {
	store  *Store
	ln     net.Listener
	wg     sync.WaitGroup
	done   chan struct{}
	closed bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server is already accepting; call Close to stop.
func NewServer(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s := &Server{store: store, ln: ln, done: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully: it stops accepting connections,
// lets every in-flight request run to completion (idle connections are
// unblocked by an immediate read deadline), waits for the connection
// handlers to drain, and finally flushes the store's write-ahead log so no
// acknowledged work is lost. The store itself stays open — it may be
// shared — so call Store.Close separately when retiring it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.done)
	err := s.ln.Close()
	// In-flight requests finish and their replies flush before the
	// handler loop notices the deadline; connections merely waiting for
	// the next request fail their blocking read immediately.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	if serr := s.store.Sync(); err == nil {
		err = serr
	}
	return err
}

// track registers a live connection; the returned func removes it.
func (s *Server) track(conn net.Conn) func() {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	if s.closed {
		// Raced an in-progress Close: make sure this connection cannot
		// block the drain either.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.track(conn)()
	r := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		reply, quit := s.handle(line)
		fmt.Fprintln(w, reply)
		if err := w.Flush(); err != nil || quit {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
	}
}

// handle executes one request line and returns the response.
func (s *Server) handle(line string) (reply string, quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		return "PONG", false
	case "QUIT":
		return "BYE", true
	case "COUNT":
		return fmt.Sprintf("COUNT %d", s.store.Count()), false
	case "GET":
		key, err := parseKey(fields, 2)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		res := s.store.GetSync(key)
		if !res.Found {
			return "NOT_FOUND", false
		}
		return fmt.Sprintf("VALUE %d", res.Value), false
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>", false
		}
		key, err1 := strconv.ParseUint(fields[1], 10, 64)
		val, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR key and value must be uint64", false
		}
		res := s.store.SetSync(key, val)
		if res.Found {
			return "OVERWRITTEN", false
		}
		return "STORED", false
	case "SCAN":
		if len(fields) != 3 {
			return "ERR usage: SCAN <from> <to>", false
		}
		from, err1 := strconv.ParseUint(fields[1], 10, 64)
		to, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR bounds must be uint64", false
		}
		res := s.store.ScanSync(from, to)
		var sb strings.Builder
		fmt.Fprintf(&sb, "RANGE %d", len(res.Pairs))
		for _, kv := range res.Pairs {
			fmt.Fprintf(&sb, " %d %d", kv.Key, kv.Value)
		}
		return sb.String(), false
	case "MSET":
		if len(fields) < 3 || len(fields)%2 == 0 {
			return "ERR usage: MSET <key> <value> [<key> <value> ...]", false
		}
		type pair struct{ k, v uint64 }
		pairs := make([]pair, 0, (len(fields)-1)/2)
		for i := 1; i+1 < len(fields); i += 2 {
			k, err1 := strconv.ParseUint(fields[i], 10, 64)
			v, err2 := strconv.ParseUint(fields[i+1], 10, 64)
			if err1 != nil || err2 != nil {
				return "ERR keys and values must be uint64", false
			}
			pairs = append(pairs, pair{k, v})
		}
		// Issue all sets, then wait for all: one runtime drain per
		// batch instead of one per key.
		done := make(chan struct{}, len(pairs))
		for _, p := range pairs {
			s.store.Set(p.k, p.v, func(Result) { done <- struct{}{} })
		}
		for range pairs {
			<-done
		}
		return fmt.Sprintf("STORED %d", len(pairs)), false
	case "MGET":
		if len(fields) < 2 {
			return "ERR usage: MGET <key> [<key> ...]", false
		}
		keys := make([]uint64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			k, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return "ERR keys must be uint64", false
			}
			keys = append(keys, k)
		}
		results := make([]Result, len(keys))
		done := make(chan int, len(keys))
		for i, k := range keys {
			i := i
			s.store.Get(k, func(r Result) {
				results[i] = r
				done <- i
			})
		}
		for range keys {
			<-done
		}
		var sb strings.Builder
		sb.WriteString("VALUES")
		for _, r := range results {
			if r.Found {
				fmt.Fprintf(&sb, " %d", r.Value)
			} else {
				sb.WriteString(" -")
			}
		}
		return sb.String(), false
	case "STATS":
		st := s.store.Stats()
		return fmt.Sprintf("STATS gets=%d sets=%d dels=%d", st.Gets, st.Sets, st.Dels), false
	case "DEL":
		key, err := parseKey(fields, 2)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		if s.store.DeleteSync(key).Found {
			return "DELETED", false
		}
		return "NOT_FOUND", false
	default:
		return "ERR unknown command " + cmd, false
	}
}

func parseKey(fields []string, want int) (uint64, error) {
	if len(fields) != want {
		return 0, errors.New("wrong argument count")
	}
	key, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, errors.New("key must be uint64")
	}
	return key, nil
}

// Client is a minimal blocking client for the Server's protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one line and reads one response line.
func (c *Client) roundTrip(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", errors.New("kvstore: connection closed")
	}
	return c.r.Text(), nil
}

// Get fetches a key.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	reply, err := c.roundTrip(fmt.Sprintf("GET %d", key))
	if err != nil {
		return 0, false, err
	}
	if reply == "NOT_FOUND" {
		return 0, false, nil
	}
	if v, ok := strings.CutPrefix(reply, "VALUE "); ok {
		value, err = strconv.ParseUint(v, 10, 64)
		return value, err == nil, err
	}
	return 0, false, errors.New("kvstore: " + reply)
}

// Set stores key=value; overwrote reports whether the key existed.
func (c *Client) Set(key, value uint64) (overwrote bool, err error) {
	reply, err := c.roundTrip(fmt.Sprintf("SET %d %d", key, value))
	if err != nil {
		return false, err
	}
	switch reply {
	case "STORED":
		return false, nil
	case "OVERWRITTEN":
		return true, nil
	}
	return false, errors.New("kvstore: " + reply)
}

// Delete removes a key.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	reply, err := c.roundTrip(fmt.Sprintf("DEL %d", key))
	if err != nil {
		return false, err
	}
	switch reply {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	return false, errors.New("kvstore: " + reply)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	reply, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return errors.New("kvstore: " + reply)
	}
	return nil
}

// Scan fetches all records with keys in [from, to), sorted by key.
func (c *Client) Scan(from, to uint64) ([]blinktree.KV, error) {
	reply, err := c.roundTrip(fmt.Sprintf("SCAN %d %d", from, to))
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(reply, "RANGE ")
	if !ok {
		return nil, errors.New("kvstore: " + reply)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, errors.New("kvstore: malformed RANGE reply")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || len(fields) != 1+2*n {
		return nil, errors.New("kvstore: malformed RANGE reply")
	}
	pairs := make([]blinktree.KV, n)
	for i := 0; i < n; i++ {
		k, err1 := strconv.ParseUint(fields[1+2*i], 10, 64)
		v, err2 := strconv.ParseUint(fields[2+2*i], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, errors.New("kvstore: malformed RANGE pair")
		}
		pairs[i] = blinktree.KV{Key: k, Value: v}
	}
	return pairs, nil
}
