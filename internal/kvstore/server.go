package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/metrics"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/pager"
	"mxtasking/internal/prefetch"
)

// Protocol and pipelining limits. MaxLineBytes bounds both request and
// reply lines; the scan and batch caps keep every reply comfortably under
// it (MaxScanLimit pairs of two 20-digit uint64s is ~700 KiB).
const (
	// MaxLineBytes is the longest request or reply line either side
	// accepts (excluding the newline). The server answers an oversized
	// request line with "ERR line too long", discards it through its
	// newline, and keeps the connection alive.
	MaxLineBytes = 1 << 20

	// DefaultWindow is the per-connection cap on requests that have been
	// parsed but not yet replied to. When the window is full the reader
	// stops consuming input until the writer drains a reply —
	// backpressure, not disconnection.
	DefaultWindow = 64

	// DefaultScanLimit is the SCAN result cap applied when the client
	// sends no explicit limit. A capped reply ends with a "MORE" marker.
	DefaultScanLimit = 8192

	// MaxScanLimit bounds an explicit SCAN limit.
	MaxScanLimit = 16384

	// MaxBatchKeys bounds the keys of one MGET / pairs of one MSET.
	MaxBatchKeys = 16384

	// maxNeighborBatch caps how many consecutive same-type GET/SET
	// requests the reader merges into one multi-op store submission.
	maxNeighborBatch = 32

	// DefaultRetryAfter is the backoff hint attached to "ERR overloaded"
	// rejections when WithAdmission does not set one.
	DefaultRetryAfter = 2 * time.Millisecond
)

// Backend is the store surface the server drives: the single-tree Store
// or the NUMA-sharded router (Sharded). Point operations, batches, capped
// scans, live counts, and the flush hook the graceful shutdown needs.
type Backend interface {
	// Get fetches key; done runs on a worker with the outcome.
	Get(key uint64, done func(Result))
	// Set stores key=value; done fires after the ack (for durable
	// backends, after the covering fsync).
	Set(key, value uint64, done func(Result))
	// Delete removes key; done reports whether it existed.
	Delete(key uint64, done func(Result))
	// ScanLimit fetches up to limit records in [from, to) in key order.
	ScanLimit(from, to uint64, limit int, done func(ScanResult))
	// GetBatch issues the keys as one multi-op submission; each fires per
	// key with its index.
	GetBatch(keys []uint64, each func(int, Result))
	// SetBatch issues the pairs as one multi-op submission.
	SetBatch(pairs []blinktree.KV, each func(int, Result))
	// CountLive counts records through task chains (safe mid-flight).
	CountLive(done func(int))
	// Stats returns aggregate operation counters.
	Stats() Stats
	// StatsByShard returns per-shard counters (length 1 for a Store).
	StatsByShard() []Stats
	// Shards returns the shard count (1 for a Store).
	Shards() int
	// Sync blocks until acknowledged mutations are durable.
	Sync() error
}

// Server exposes a Backend over a line-based TCP protocol:
//
//	SET <key> <value>        -> STORED | OVERWRITTEN
//	GET <key>                -> VALUE <value> | NOT_FOUND
//	DEL <key>                -> DELETED | NOT_FOUND
//	SCAN <from> <to> [limit] -> RANGE <n> k1 v1 ... [MORE]   (keys in [from,to))
//	MSET k1 v1 k2 v2 ..      -> STORED <n>       (at most MaxBatchKeys pairs)
//	MGET k1 k2 ..            -> VALUES v1 v2 ..  (missing keys render as "-")
//	STATS                    -> STATS gets=<n> sets=<n> dels=<n> errs=<n> toolong=<n>
//	                            shed=<n> deadline_drops=<n>
//	                            shards=<n> s<i>=<gets>/<sets>/<dels> ...
//	COUNT                    -> COUNT <n>        (live, task-based count)
//	PING                     -> PONG
//	QUIT                     -> BYE (closes the connection)
//
// Keys and values are decimal uint64. Request lines are capped at
// MaxLineBytes; an oversized line is answered with "ERR line too long" and
// skipped, and the connection stays up. SCAN replies are capped at
// DefaultScanLimit pairs (or the request's explicit limit, itself capped
// at MaxScanLimit); a capped reply carries a trailing "MORE" token, and
// the caller resumes from the last returned key + 1.
//
// The request path is pipelined: a reader goroutine parses frames and
// dispatches every request as its MxTask chain immediately — consecutive
// GET (or SET) neighbors are merged into one multi-op batch submission so
// the runtime's group scheduling and prefetch window see real batches —
// while a writer goroutine flushes the replies strictly in request order.
// At most DefaultWindow (see WithWindow) requests are in flight per
// connection. Reply order always matches request order, but requests
// inside one window execute concurrently in the store: a pipelined GET
// issued before the reply to an earlier SET of the same key may observe
// the pre-SET value (each request still linearizes between its issue and
// its reply). Clients that need read-your-write ordering await the write's
// reply before issuing the read, as the blocking Client methods do.
//
// Resilience (all opt-in): WithIdleTimeout reaps connections that stop
// delivering requests, WithWriteTimeout reaps peers that stop reading
// replies, and WithAdmission sheds store requests with "ERR overloaded
// retry-after=<ms>" once the dispatched-but-unanswered depth crosses a
// high-water mark — bounded queues instead of unbounded ones, with the
// reaps and sheds surfaced in Metrics and the STATS reply.
type Server struct {
	backend atomic.Value // Backend; swappable for replica full-resync
	ln      net.Listener
	wg      sync.WaitGroup
	done    chan struct{}
	closed  bool
	window  int
	onError func(error)
	repl    ReplHandler

	// Resilience knobs (see the With* options).
	idleTimeout  time.Duration
	writeTimeout time.Duration
	highWater    int
	retryAfter   time.Duration
	// busy is the admission gate's slot count (see admitStore); the Busy
	// gauge mirrors it but only after a slot is actually won.
	busy atomic.Int64

	// Learned prefetching (see WithLearnedPrefetch / prefetch.go). pfCfg
	// nil means disabled; pfMetrics aggregates every connection's streams.
	pfCfg     *prefetch.Config
	pfMetrics *prefetch.Metrics

	m ServerMetrics

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	replConns map[net.Conn]struct{}
	lastErr   error
}

// ServerMetrics exposes the server's wire-level counters and gauges.
type ServerMetrics struct {
	// ConnErrors counts connections terminated by an I/O error (not by
	// EOF, QUIT, or server shutdown).
	ConnErrors metrics.Counter
	// TooLong counts request lines over MaxLineBytes (each answered with
	// "ERR line too long" and skipped).
	TooLong metrics.Counter
	// InFlight is the number of requests parsed but not yet written back.
	InFlight metrics.Gauge
	// Busy is the number of store operations dispatched but not yet
	// delivered — the depth the admission gate compares against its
	// high-water mark. Unlike InFlight it excludes immediate commands
	// (PING, STATS) and shed requests, so Busy.Max() never exceeds the
	// configured high-water mark.
	Busy metrics.Gauge
	// Shed counts requests rejected with "ERR overloaded" by the
	// admission gate instead of being dispatched.
	Shed metrics.Counter
	// DeadlineDrops counts connections reaped by the idle (read) or
	// write deadline.
	DeadlineDrops metrics.Counter
	// Depth samples the per-connection pipeline depth observed as each
	// request is admitted.
	Depth metrics.IntHistogram
}

// String renders the wire-level counters on one line.
func (m *ServerMetrics) String() string {
	return fmt.Sprintf("errs=%d toolong=%d shed=%d deadline_drops=%d inflight=%d maxinflight=%d maxbusy=%d depth{%s}",
		m.ConnErrors.Value(), m.TooLong.Value(), m.Shed.Value(), m.DeadlineDrops.Value(),
		m.InFlight.Value(), m.InFlight.Max(), m.Busy.Max(), m.Depth.String())
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithWindow sets the per-connection in-flight request window
// (DefaultWindow when unset; n < 1 means 1).
func WithWindow(n int) ServerOption {
	if n < 1 {
		n = 1
	}
	return func(s *Server) { s.window = n }
}

// WithIdleTimeout arms per-connection read deadlines: a connection that
// delivers no complete request for d — idle, or stalled mid-line by a
// slow or partitioned peer — is reaped instead of holding its goroutines
// and window forever. Reaps are counted in Metrics().DeadlineDrops and
// STATS deadline_drops=, not as connection errors. 0 (the default)
// disables reaping.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithWriteTimeout bounds each reply flush: a peer that stops reading
// (blackholed, or pipelining without draining) fails the flush after d,
// and the connection is closed rather than blocking the writer — and
// therefore the whole window — forever. Counted in DeadlineDrops. 0 (the
// default) disables it.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithAdmission arms the overload gate: when highWater store operations
// are already dispatched and unanswered (across all connections), further
// store requests are answered "ERR overloaded retry-after=<ms>" — still
// in request order — instead of queueing unboundedly. The reply carries
// retryAfter (DefaultRetryAfter if <= 0) as a client backoff hint;
// kvstore.Client retries shed requests automatically when configured
// with MaxRetries. Immediate commands (PING, STATS, QUIT) always pass,
// so health checks work under overload. highWater <= 0 (the default)
// disables the gate.
func WithAdmission(highWater int, retryAfter time.Duration) ServerOption {
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return func(s *Server) { s.highWater, s.retryAfter = highWater, retryAfter }
}

// WithErrorLog installs a hook invoked with every connection-level I/O
// error the server swallows (also recorded in Metrics().ConnErrors and
// LastError). The hook runs on the failing connection's goroutine.
func WithErrorLog(fn func(error)) ServerOption {
	return func(s *Server) { s.onError = fn }
}

// ReplHandler is the replication subsystem's surface on the server. The
// server stays replication-agnostic: it routes REPL verbs, write
// admission, GETR, and STATS decoration through this interface, and
// internal/repl implements it.
type ReplHandler interface {
	// WriteAllowed gates mutating commands (SET/DEL/MSET). When false,
	// errReply is the full rejection line — canonically
	// "ERR readonly primary=<addr>" — sent instead of dispatching.
	WriteAllowed() (ok bool, errReply string)
	// HandleControl answers a single-line REPL control verb
	// (PROMOTE/FOLLOW). May block (a demotion drains in-flight writes);
	// the server invokes it off the reader goroutine.
	HandleControl(line string) (reply string)
	// HandleStream takes ownership of a connection whose first line was
	// "REPL HELLO ...": the replication stream. br holds any bytes
	// already buffered past the hello line. The server closes conn after
	// HandleStream returns.
	HandleStream(helloLine string, conn net.Conn, br *bufio.Reader)
	// HandleStaleGet serves GETR <key> <maxlag>; deliver receives the
	// single reply line exactly once, possibly from another goroutine.
	HandleStaleGet(key, maxLag uint64, deliver func(string))
	// StatsExtra returns " key=value ..." fields appended to the STATS
	// reply (role, term, applied sequence, lag). Empty for none; must
	// start with a space when non-empty.
	StatsExtra() string
}

// WithRepl connects the replication subsystem's handler to the server's
// wire protocol: REPL HELLO hijacks its connection into a shipping
// stream, REPL PROMOTE/FOLLOW become control verbs, GETR serves bounded-
// staleness reads, writes are gated by role, and STATS grows role fields.
func WithRepl(h ReplHandler) ServerOption {
	return func(s *Server) { s.repl = h }
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server is already accepting; call Close to stop.
func NewServer(store Backend, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s := &Server{ln: ln, done: make(chan struct{}), conns: make(map[net.Conn]struct{}), replConns: make(map[net.Conn]struct{}), window: DefaultWindow}
	s.backend.Store(&store)
	for _, opt := range opts {
		opt(s)
	}
	if s.pfMetrics != nil {
		if t, ok := store.(Toucher); ok {
			t.AttachLearnedPrefetch(s.pfMetrics)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// store returns the current backend.
func (s *Server) store() Backend { return *s.backend.Load().(*Backend) }

// SwapBackend atomically replaces the serving backend and returns the
// previous one. Requests already dispatched finish against the old
// backend; new requests see the new one. The replication subsystem uses
// this when a replica discards divergent state and rebuilds from a
// primary snapshot.
func (s *Server) SwapBackend(b Backend) Backend {
	old := s.store()
	s.backend.Store(&b)
	return old
}

// Quiesce blocks until every admitted store operation has delivered its
// reply, or d elapses (error). Role demotion uses it: once new writes are
// rejected, this drains the ones already in flight — including a deferred
// neighbor batch, whose members hold admission slots until their replies
// are ready — so no accepted durable ack is lost or reordered across a
// promotion.
func (s *Server) Quiesce(d time.Duration) error {
	deadline := time.Now().Add(d)
	for s.m.Busy.Value() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("kvstore: quiesce: %d operations still in flight after %v", s.m.Busy.Value(), d)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the server's live wire-level counters.
func (s *Server) Metrics() *ServerMetrics { return &s.m }

// LastError returns the most recent connection-level I/O error, or nil.
func (s *Server) LastError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *Server) noteError(err error) {
	s.m.ConnErrors.Inc()
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	if s.onError != nil {
		s.onError(err)
	}
}

// Close shuts the server down gracefully: it stops accepting connections,
// lets every in-flight request run to completion (idle connections are
// unblocked by an immediate read deadline), waits for the connection
// handlers to drain, and finally flushes the store's write-ahead log so no
// acknowledged work is lost. The store itself stays open — it may be
// shared — so call Store.Close separately when retiring it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.done)
	err := s.ln.Close()
	// In-flight requests finish and their replies flush before the
	// handler loop notices the deadline; connections merely waiting for
	// the next request fail their blocking read immediately.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	// Hijacked replication streams pace their own deadlines and their
	// peer may stay live indefinitely, so a deadline nudge cannot end
	// them: hard-close so both their reader and shipper fail now.
	for conn := range s.replConns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if serr := s.store().Sync(); err == nil {
		err = serr
	}
	return err
}

// closing reports whether Close has begun (read errors are then expected).
func (s *Server) closing() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// track registers a live connection; the returned func removes it.
func (s *Server) track(conn net.Conn) func() {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	if s.closed {
		// Raced an in-progress Close: make sure this connection cannot
		// block the drain either.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// pendingReply is one request's slot in the connection's reply pipeline.
// deliver must be called exactly once; the buffered channel means the
// completing worker never blocks on a slow writer. release, when set, is
// the request's admission-gate slot: it is freed the moment the reply is
// ready, before the writer even flushes it.
type pendingReply struct {
	ch      chan string
	release func()
}

func newPending() *pendingReply { return &pendingReply{ch: make(chan string, 1)} }

func (p *pendingReply) deliver(reply string) {
	if p.release != nil {
		p.release()
	}
	p.ch <- reply
}

// admitStore reserves one admission-gate slot for a store operation. ok
// is false when the gate is armed and full: the request must be answered
// with overloadReply instead of dispatched. The CAS-then-count shape
// makes the high-water mark a hard invariant — the Busy gauge is bumped
// only after a slot is won, so even transiently it never exceeds the
// mark, and Busy.Max() is a faithful ceiling witness.
func (s *Server) admitStore() (release func(), ok bool) {
	if s.highWater > 0 {
		for {
			v := s.busy.Load()
			if v >= int64(s.highWater) {
				s.m.Shed.Inc()
				return nil, false
			}
			if s.busy.CompareAndSwap(v, v+1) {
				break
			}
		}
	}
	s.m.Busy.Inc()
	return func() {
		s.m.Busy.Dec()
		if s.highWater > 0 {
			s.busy.Add(-1)
		}
	}, true
}

// overloadReply is the admission gate's rejection line.
func (s *Server) overloadReply() string {
	return fmt.Sprintf("ERR overloaded retry-after=%d", s.retryAfter.Milliseconds())
}

// sheddable reports whether a request line is a store operation the
// admission gate may reject. Immediate commands (PING, STATS, QUIT — and
// garbage, which answers inline anyway) always pass.
func sheddable(line string) bool {
	cmd := line
	if i := strings.IndexByte(cmd, ' '); i >= 0 {
		cmd = cmd[:i]
	}
	switch strings.ToUpper(cmd) {
	case "GET", "SET", "DEL", "SCAN", "MGET", "MSET", "COUNT":
		return true
	}
	return false
}

// errLineTooLong marks a request line over the reader's cap; the line has
// been consumed through its newline and the connection is resynced.
var errLineTooLong = errors.New("kvstore: request line exceeds MaxLineBytes")

// lineReader frames newline-terminated requests with an explicit length
// cap. Unlike bufio.Scanner — whose ErrTooLong is terminal — it recovers
// from an oversized line: the line is reported as errLineTooLong,
// discarded through its newline, and reading continues.
type lineReader struct {
	br   *bufio.Reader
	line []byte
	max  int
}

func newLineReader(r io.Reader, max int) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64<<10), max: max}
}

// next returns the next line without its newline. A final unterminated
// line at EOF is NOT yielded: the newline is the protocol's frame
// terminator, and a line missing it may be a request truncated mid-wire
// (a partition or dead peer) — executing its prefix would mutate state
// from a corrupted frame (imagine "SET 1 100" arriving as "SET 1 1").
func (lr *lineReader) next() (string, error) {
	lr.line = lr.line[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		lr.line = append(lr.line, frag...)
		switch err {
		case nil:
			if len(lr.line)-1 > lr.max {
				return "", errLineTooLong
			}
			return string(lr.line[:len(lr.line)-1]), nil
		case bufio.ErrBufferFull:
			if len(lr.line) > lr.max {
				return "", lr.discardLine()
			}
		case io.EOF:
			return "", io.EOF
		default:
			return "", err
		}
	}
}

// discardLine consumes the remainder of an oversized line so the
// connection can resync at the next newline.
func (lr *lineReader) discardLine() error {
	lr.line = lr.line[:0]
	for {
		_, err := lr.br.ReadSlice('\n')
		switch err {
		case nil, io.EOF:
			return errLineTooLong
		case bufio.ErrBufferFull:
			// Keep discarding.
		default:
			return err
		}
	}
}

// hasBufferedLine reports whether a complete request line is already
// buffered — i.e. the reader can keep consuming pipelined input without
// blocking on the network.
func (lr *lineReader) hasBufferedLine() bool {
	n := lr.br.Buffered()
	if n == 0 {
		return false
	}
	buf, err := lr.br.Peek(n)
	return err == nil && bytes.IndexByte(buf, '\n') >= 0
}

// serve runs one connection: this goroutine reads and dispatches requests,
// a second goroutine (writeLoop) flushes replies in request order. The
// pending channel is the in-flight window; its capacity is the
// backpressure bound.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.track(conn)()

	window := s.window
	if window < 1 {
		window = DefaultWindow
	}
	pending := make(chan *pendingReply, window)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(conn, pending)
	}()

	lr := newLineReader(conn, MaxLineBytes)

	// Learned prefetch streams live and die with the connection: cancel
	// stops any touch chains still in flight once the reader exits.
	pf := s.newConnPrefetch()
	defer pf.cancel()

	// Neighbor batch: consecutive GET (or SET) requests already buffered
	// on the wire are submitted to the store as one multi-op batch.
	var (
		batchKind byte // 0 none, 'G' gets, 'S' sets
		batchKVs  []blinktree.KV
		batchPs   []*pendingReply
	)
	flushBatch := func() {
		if len(batchPs) == 0 {
			return
		}
		ps := batchPs
		switch batchKind {
		case 'G':
			keys := make([]uint64, len(batchKVs))
			for i, kv := range batchKVs {
				keys[i] = kv.Key
			}
			s.store().GetBatch(keys, func(i int, r Result) { ps[i].deliver(formatGet(r)) })
		case 'S':
			s.store().SetBatch(batchKVs, func(i int, r Result) { ps[i].deliver(formatSet(r)) })
		}
		batchKind, batchKVs, batchPs = 0, nil, nil
	}
	enqueue := func(p *pendingReply) {
		// Submit any deferred batch before a blocking enqueue: the writer
		// can only drain the window once the batched requests actually
		// run, so holding them while waiting for window space would
		// deadlock the connection.
		if len(pending) == cap(pending) {
			flushBatch()
		}
		s.m.InFlight.Inc()
		s.m.Depth.Observe(uint64(len(pending) + 1))
		pending <- p
	}

	var readErr error
	firstLine := true
loop:
	for {
		// Never block on the wire with a deferred batch pending — its
		// requests would never dispatch and the writer (and client) would
		// wait forever. The admitted path below flushes eagerly, but the
		// shed path can leave a batch accumulated when the input runs dry.
		if !lr.hasBufferedLine() {
			flushBatch()
		}
		// Idle reaping: each read gets a fresh deadline; a peer that
		// neither completes a request nor goes away within it is cut
		// loose. Guarded by the server mutex so an in-progress Close's
		// immediate deadline is never overwritten back to "later".
		if s.idleTimeout > 0 {
			s.mu.Lock()
			if !s.closed {
				conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
			}
			s.mu.Unlock()
		}
		line, err := lr.next()
		switch {
		case err == errLineTooLong:
			s.m.TooLong.Inc()
			flushBatch()
			p := newPending()
			p.deliver("ERR line too long")
			enqueue(p)
			continue
		case err != nil:
			readErr = err
			break loop
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if firstLine && s.repl != nil && strings.HasPrefix(line, "REPL HELLO ") {
			// A replication stream announces itself as the first line of a
			// dedicated connection. Retire the reply pipeline, then hand
			// the connection (and any bytes already buffered past the
			// hello) to the replication subsystem; serve's deferred close
			// still owns the socket's lifetime.
			close(pending)
			<-writerDone
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			conn.SetReadDeadline(time.Time{}) // the stream paces itself
			s.replConns[conn] = struct{}{}
			s.mu.Unlock()
			defer func() {
				s.mu.Lock()
				delete(s.replConns, conn)
				s.mu.Unlock()
			}()
			s.repl.HandleStream(line, conn, lr.br)
			return
		}
		firstLine = false
		p := newPending()
		if kind, kv, ok := parseBatchable(line); ok {
			if kind == 'S' && s.repl != nil {
				if wok, reply := s.repl.WriteAllowed(); !wok {
					// Readonly rejection, in order: like a shed, it takes
					// the request's reply slot without touching the store.
					p.deliver(reply)
					enqueue(p)
					continue
				}
			}
			release, admitted := s.admitStore()
			if !admitted {
				// Shed, in order: the rejection takes the request's reply
				// slot; the batch keeps accumulating around it.
				p.deliver(s.overloadReply())
				enqueue(p)
			} else {
				p.release = release
				if batchKind != 0 && batchKind != kind {
					flushBatch()
				}
				enqueue(p)
				batchKind = kind
				batchKVs = append(batchKVs, kv)
				batchPs = append(batchPs, p)
				pf.observeKey(kv.Key)
				// Submit when the batch is full or the wire has no further
				// complete request to merge; otherwise keep accumulating.
				if len(batchPs) >= maxNeighborBatch || !lr.hasBufferedLine() {
					flushBatch()
				}
			}
		} else {
			flushBatch() // preserve submission order across command types
			if sheddable(line) {
				release, admitted := s.admitStore()
				if !admitted {
					p.deliver(s.overloadReply())
					enqueue(p)
					continue
				}
				p.release = release
			}
			quit := s.dispatch(line, pf, p.deliver)
			enqueue(p)
			if quit {
				break loop
			}
		}
		select {
		case <-s.done:
			break loop
		default:
		}
	}
	flushBatch()
	close(pending)
	<-writerDone

	if errors.Is(readErr, os.ErrDeadlineExceeded) && !s.closing() {
		// The idle reaper fired: a bounded, expected eviction, not an
		// I/O failure.
		s.m.DeadlineDrops.Inc()
	}
	if readErr != nil && readErr != io.EOF && !s.closing() &&
		!errors.Is(readErr, net.ErrClosed) && !errors.Is(readErr, os.ErrDeadlineExceeded) {
		s.noteError(readErr)
	}
}

// writeLoop writes replies back in request order, batching flushes while
// the pipeline is busy and flushing as soon as it runs dry. Each flush is
// bounded by the configured write timeout: a peer that stops reading
// fails the flush instead of blocking the writer forever. On the first
// failed flush the connection is closed — that unblocks the reader too,
// so a dead peer costs two goroutines for at most one timeout, not
// until the heat death of the socket.
func (s *Server) writeLoop(conn net.Conn, pending <-chan *pendingReply) {
	w := bufio.NewWriter(conn)
	healthy := true
	fail := func(err error) {
		healthy = false
		if errors.Is(err, os.ErrDeadlineExceeded) && !s.closing() {
			s.m.DeadlineDrops.Inc()
		}
		// Sever the connection: the reader is likely blocked on a peer
		// that no longer drains replies; replies from here on are drained
		// and discarded.
		conn.Close()
	}
	// arm refreshes the write deadline. It must cover every buffered
	// write, not just the explicit flushes: a reply larger than the
	// buffer auto-flushes inside WriteString, and without a deadline
	// there a stuck reader would wedge the writer forever.
	arm := func() {
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
	}
	flush := func() {
		if !healthy {
			return
		}
		arm()
		if err := w.Flush(); err != nil {
			fail(err)
		}
	}
	for p := range pending {
		var reply string
		select {
		case reply = <-p.ch:
		default:
			// The oldest outstanding reply is not ready: push what is
			// already written out to the client, then wait.
			flush()
			reply = <-p.ch
		}
		if healthy {
			arm()
			if _, err := w.WriteString(reply); err != nil {
				fail(err)
			} else if err := w.WriteByte('\n'); err != nil {
				fail(err)
			}
		}
		// Dec before Flush: once a client has read its reply, the gauge
		// has already dropped.
		s.m.InFlight.Dec()
		if len(pending) == 0 {
			flush()
		}
	}
	flush()
}

// parseBatchable recognizes the two commands worth neighbor-batching. It
// must accept exactly what dispatch's GET/SET arms accept; anything
// irregular (wrong arity, bad numbers) falls back to dispatch for the
// precise error reply.
func parseBatchable(line string) (kind byte, kv blinktree.KV, ok bool) {
	fields := strings.Fields(line)
	switch strings.ToUpper(fields[0]) {
	case "GET":
		if len(fields) != 2 {
			return 0, kv, false
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, kv, false
		}
		return 'G', blinktree.KV{Key: k}, true
	case "SET":
		if len(fields) != 3 {
			return 0, kv, false
		}
		k, err1 := strconv.ParseUint(fields[1], 10, 64)
		v, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return 0, kv, false
		}
		return 'S', blinktree.KV{Key: k, Value: v}, true
	}
	return 0, kv, false
}

// handle executes one request line synchronously and returns the response.
// The serve loop dispatches asynchronously; this blocking form backs tests
// and fuzzing.
func (s *Server) handle(line string) (reply string, quit bool) {
	ch := make(chan string, 1)
	quit = s.dispatch(line, nil, func(r string) { ch <- r })
	return <-ch, quit
}

// dispatch parses one request line and starts it. deliver receives the
// single reply line exactly once — inline for immediate commands and
// malformed requests, from a worker for store operations. dispatch itself
// never blocks on the store. pf (nil when learned prefetching is off) is
// the connection's learned prefetch state; dispatch feeds it the request's
// access-pattern observations.
func (s *Server) dispatch(line string, pf *connPrefetch, deliver func(string)) (quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		deliver("PONG")
	case "QUIT":
		deliver("BYE")
		return true
	case "COUNT":
		// Task-based live count: the serve loop pipelines, so the tree
		// may never be quiescent when COUNT arrives.
		s.store().CountLive(func(n int) { deliver(fmt.Sprintf("COUNT %d", n)) })
	case "STATS":
		st := s.store().Stats()
		per := s.store().StatsByShard()
		var sb strings.Builder
		fmt.Fprintf(&sb, "STATS gets=%d sets=%d dels=%d errs=%d toolong=%d shed=%d deadline_drops=%d shards=%d",
			st.Gets, st.Sets, st.Dels, s.m.ConnErrors.Value(), s.m.TooLong.Value(),
			s.m.Shed.Value(), s.m.DeadlineDrops.Value(), len(per))
		for i, ss := range per {
			fmt.Fprintf(&sb, " s%d=%d/%d/%d", i, ss.Gets, ss.Sets, ss.Dels)
		}
		// Scheduler stealing stats, when the backend's shards run on a
		// cooperating mxtask.Group (DESIGN.md §7). Clients that predate
		// these fields pick them up via ServerStats.Extra.
		if sg, ok := s.store().(interface{ SchedulerGroup() *mxtask.Group }); ok {
			if g := sg.SchedulerGroup(); g != nil {
				gs := g.Stats()
				fmt.Fprintf(&sb, " steal_attempts=%d steal_ok=%d steal_aborts=%d steal_tasks=%d imbalance=%d",
					gs.StealAttempts, gs.StealSuccesses, gs.StealAborts,
					gs.TasksStolen, gs.Imbalance)
			}
		}
		// Interleaved group-descent counters (DESIGN.md §9). Old clients
		// pick the fields up via ServerStats.Extra.
		if is, ok := s.store().(interface {
			InterleaveStats() mxtask.InterleaveStats
		}); ok {
			il := is.InterleaveStats()
			fmt.Fprintf(&sb, " il_groups=%d il_cursors=%d il_turns=%d il_steps=%d il_retired=%d il_fallbacks=%d il_width=%d",
				il.Groups, il.Cursors, il.Turns, il.Steps, il.Retired, il.Fallbacks, il.MaxWidth)
		}
		// Learned-prefetcher aggregates, when armed (DESIGN.md §8). Old
		// clients pick the fields up via ServerStats.Extra.
		if m := s.pfMetrics; m != nil {
			fmt.Fprintf(&sb, " pf_streams=%d pf_observed=%d pf_hits=%d pf_misses=%d pf_induced=%d pf_issued=%d pf_window=%d pf_disables=%d pf_reenables=%d",
				m.Streams.Load(), m.Observed.Load(), m.Hits.Load(), m.Misses.Load(),
				m.Induced.Load(), m.Issued.Load(), m.WindowMax(), m.Disables.Load(), m.Reenables.Load())
		}
		// Paged value tier counters (DESIGN.md §10). Old clients pick the
		// fields up via ServerStats.Extra; new clients tolerate their
		// absence on old servers (ServerStats.Pager).
		if ps, ok := s.store().(interface {
			PagerStats() (pager.Stats, bool)
		}); ok {
			if pg, paged := ps.PagerStats(); paged {
				fmt.Fprintf(&sb, " pg_hits=%d pg_misses=%d pg_evictions=%d pg_writebacks=%d pg_pages=%d pg_resident=%d pg_load_p50_us=%d pg_load_p99_us=%d",
					pg.Hits, pg.Misses, pg.Evictions, pg.Writebacks,
					pg.Pages, pg.Resident, pg.LoadP50Micros, pg.LoadP99Micros)
			}
		}
		if s.repl != nil {
			sb.WriteString(s.repl.StatsExtra())
		}
		deliver(sb.String())
	case "REPL":
		// Control verbs (PROMOTE/FOLLOW). May block on a drain, so they
		// run off the reader goroutine; deliver is safe from any
		// goroutine. HELLO never reaches here on its own connection — the
		// serve loop hijacks it — so a misplaced one gets the handler's
		// error reply.
		if s.repl == nil {
			deliver("ERR replication not enabled")
			return false
		}
		ctl := line
		go func() { deliver(s.repl.HandleControl(ctl)) }()
	case "GETR":
		if s.repl == nil {
			deliver("ERR replication not enabled")
			return false
		}
		if len(fields) != 3 {
			deliver("ERR usage: GETR <key> <maxlag>")
			return false
		}
		key, err1 := strconv.ParseUint(fields[1], 10, 64)
		lag, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			deliver("ERR key and maxlag must be uint64")
			return false
		}
		s.repl.HandleStaleGet(key, lag, deliver)
	case "GET":
		key, err := parseKey(fields, 2)
		if err != nil {
			deliver("ERR " + err.Error())
			return false
		}
		pf.observeKey(key)
		s.store().Get(key, func(r Result) { deliver(formatGet(r)) })
	case "SET":
		if !s.writeAllowed(deliver) {
			return false
		}
		if len(fields) != 3 {
			deliver("ERR usage: SET <key> <value>")
			return false
		}
		key, err1 := strconv.ParseUint(fields[1], 10, 64)
		val, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			deliver("ERR key and value must be uint64")
			return false
		}
		pf.observeKey(key)
		s.store().Set(key, val, func(r Result) { deliver(formatSet(r)) })
	case "DEL":
		if !s.writeAllowed(deliver) {
			return false
		}
		key, err := parseKey(fields, 2)
		if err != nil {
			deliver("ERR " + err.Error())
			return false
		}
		s.store().Delete(key, func(r Result) {
			if r.Found {
				deliver("DELETED")
			} else {
				deliver("NOT_FOUND")
			}
		})
	case "SCAN":
		if len(fields) != 3 && len(fields) != 4 {
			deliver("ERR usage: SCAN <from> <to> [limit]")
			return false
		}
		from, err1 := strconv.ParseUint(fields[1], 10, 64)
		to, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			deliver("ERR bounds must be uint64")
			return false
		}
		limit := DefaultScanLimit
		if len(fields) == 4 {
			n, err := strconv.Atoi(fields[3])
			if err != nil || n <= 0 {
				deliver("ERR limit must be a positive integer")
				return false
			}
			limit = min(n, MaxScanLimit)
		}
		pf.observeScan(from, limit)
		s.store().ScanLimit(from, to, limit, func(res ScanResult) { deliver(formatRange(res)) })
	case "MSET":
		if !s.writeAllowed(deliver) {
			return false
		}
		if len(fields) < 3 || len(fields)%2 == 0 {
			deliver("ERR usage: MSET <key> <value> [<key> <value> ...]")
			return false
		}
		if (len(fields)-1)/2 > MaxBatchKeys {
			deliver(fmt.Sprintf("ERR at most %d pairs per MSET", MaxBatchKeys))
			return false
		}
		pairs := make([]blinktree.KV, 0, (len(fields)-1)/2)
		for i := 1; i+1 < len(fields); i += 2 {
			k, err1 := strconv.ParseUint(fields[i], 10, 64)
			v, err2 := strconv.ParseUint(fields[i+1], 10, 64)
			if err1 != nil || err2 != nil {
				deliver("ERR keys and values must be uint64")
				return false
			}
			pairs = append(pairs, blinktree.KV{Key: k, Value: v})
		}
		var done atomic.Int64
		s.store().SetBatch(pairs, func(int, Result) {
			if done.Add(1) == int64(len(pairs)) {
				deliver(fmt.Sprintf("STORED %d", len(pairs)))
			}
		})
	case "MGET":
		if len(fields) < 2 {
			deliver("ERR usage: MGET <key> [<key> ...]")
			return false
		}
		if len(fields)-1 > MaxBatchKeys {
			deliver(fmt.Sprintf("ERR at most %d keys per MGET", MaxBatchKeys))
			return false
		}
		keys := make([]uint64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			k, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				deliver("ERR keys must be uint64")
				return false
			}
			keys = append(keys, k)
		}
		// Feed the point stream every batch member: a client replaying a
		// key-run as MGETs is exactly the pattern key-run warming targets.
		for _, k := range keys {
			pf.observeKey(k)
		}
		results := make([]Result, len(keys))
		var done atomic.Int64
		s.store().GetBatch(keys, func(i int, r Result) {
			results[i] = r
			if done.Add(1) == int64(len(keys)) {
				var sb strings.Builder
				sb.WriteString("VALUES")
				for _, r := range results {
					if r.Found {
						fmt.Fprintf(&sb, " %d", r.Value)
					} else {
						sb.WriteString(" -")
					}
				}
				deliver(sb.String())
			}
		})
	default:
		deliver("ERR unknown command " + cmd)
	}
	return false
}

// writeAllowed gates a mutating command through the replication role; the
// rejection reply, when any, is delivered in the request's slot.
func (s *Server) writeAllowed(deliver func(string)) bool {
	if s.repl == nil {
		return true
	}
	ok, reply := s.repl.WriteAllowed()
	if !ok {
		deliver(reply)
	}
	return ok
}

func formatGet(r Result) string {
	if r.Err != nil {
		// Paged stores can fail a read (page I/O or corruption); surface
		// it rather than lying with NOT_FOUND.
		return "ERR get failed"
	}
	if !r.Found {
		return "NOT_FOUND"
	}
	return fmt.Sprintf("VALUE %d", r.Value)
}

func formatSet(r Result) string {
	if r.Found {
		return "OVERWRITTEN"
	}
	return "STORED"
}

func formatRange(res ScanResult) string {
	if res.Err != nil {
		return "ERR scan failed"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "RANGE %d", len(res.Pairs))
	for _, kv := range res.Pairs {
		fmt.Fprintf(&sb, " %d %d", kv.Key, kv.Value)
	}
	if res.Truncated {
		sb.WriteString(" MORE")
	}
	return sb.String()
}

func parseKey(fields []string, want int) (uint64, error) {
	if len(fields) != want {
		return 0, errors.New("wrong argument count")
	}
	key, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, errors.New("key must be uint64")
	}
	return key, nil
}
