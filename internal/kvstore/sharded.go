package kvstore

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/linearize"
	"mxtasking/internal/metrics"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/wal"
)

// Sharded partitions the keyspace across N single-shard Stores, each
// typically bound to its own per-NUMA-node runtime (mxtask.Group): a
// shard's Blink-tree, task pools, synchronization domains, and write-ahead
// log all live on one node, which is the paper's locality story (§2.3, §6)
// applied at system scale — a task never chases data across the socket
// boundary, and the per-shard hot set stays small enough to remain
// cache-resident.
//
// The router range-partitions: shard i owns the contiguous key interval
// [shardStart(i), shardStart(i+1)). Point operations route to exactly one
// shard; MGET/MSET group their keys per shard and submit one multi-op
// batch to each touched shard (neighbor-batching stays within a shard);
// SCAN fans out to the shards the range intersects and — because the
// partition is monotonic in the key — merges per-shard results by plain
// concatenation in shard order, carefully propagating the result cap's
// truncation marker (see mergeScans).
//
// A Sharded with one shard behaves exactly like its underlying Store; the
// shard-count invariance property test in sharded_test.go holds the router
// to that.
type Sharded struct {
	shards []*Store
	m      RouterMetrics
}

// RouterMetrics exposes the router's fan-out behaviour.
type RouterMetrics struct {
	// Routed counts point operations (Get/Set/Delete, including batch
	// members) routed to each shard. Per-slot cache-line padding keeps the
	// hot router from false-sharing across shards.
	Routed *metrics.CounterVec
	// ScanFanout samples how many shards each scan touched.
	ScanFanout metrics.IntHistogram
	// BatchFanout samples how many shards each MGET/MSET batch touched.
	BatchFanout metrics.IntHistogram
}

// ShardRecovery is one shard's recovery outcome from OpenSharded.
type ShardRecovery struct {
	Shard int
	Stats wal.ReplayStats
	// Err is the shard's recovery error (nil on success). A shard whose
	// WAL is damaged mid-segment reports wal.ErrCorrupt here; the other
	// shards still recover and report their stats.
	Err error
}

// shardOf maps a key to its shard by taking the high 64 bits of key × n —
// a full-range multiplicative reduction that is uniform over the keyspace
// AND monotonic in the key, so it doubles as a range partition: every key
// of shard i is smaller than every key of shard i+1. That monotonicity is
// what lets the scan merge be a concatenation instead of a heap.
func shardOf(key uint64, n int) int {
	hi, _ := bits.Mul64(key, uint64(n))
	return int(hi)
}

// shardStart returns the smallest key shard i of n owns:
// ceil(i·2^64 / n). shardStart(0) is always 0; the notional
// shardStart(n) is 2^64 (one past the keyspace).
func shardStart(i, n int) uint64 {
	if i <= 0 {
		return 0
	}
	quo, rem := bits.Div64(uint64(i), 0, uint64(n))
	if rem > 0 {
		quo++
	}
	return quo
}

// NewSharded creates an in-memory sharded store with one shard per
// runtime, in order: shard i lives entirely on rts[i]. Runtimes may
// repeat to co-locate shards on one runtime (tests do; production passes
// a per-NUMA-node mxtask.Group's runtimes). All runtimes must already be
// started.
func NewSharded(rts []*mxtask.Runtime) *Sharded {
	if len(rts) == 0 {
		panic("kvstore: NewSharded with no runtimes")
	}
	s := &Sharded{shards: make([]*Store, len(rts))}
	s.m.Routed = metrics.NewCounterVec(len(rts))
	for i, rt := range rts {
		s.shards[i] = New(rt)
	}
	return s
}

// OpenSharded creates a durable sharded store: shard i recovers from and
// logs to its own WAL directory wal.ShardDir(d.Dir, i) on rts[i]. All
// shard WALs are opened and replayed concurrently — recovery wall-clock is
// the slowest shard, not the sum — and the per-shard outcomes are always
// returned, even on failure: a shard with a corrupt log reports its error
// (wal.ErrCorrupt for mid-segment damage) in its ShardRecovery entry while
// the healthy shards still report successful replays. When any shard
// fails, the successfully opened shards are closed again and the combined
// error is returned; the store only comes up whole.
//
// The shard count is fixed by len(rts) and must match the directory layout
// across restarts: reopening with a different count would route keys to
// shards that never logged them. SnapshotEvery applies per shard (each
// shard counts its own logged mutations).
func OpenSharded(rts []*mxtask.Runtime, d Durability) (*Sharded, []ShardRecovery, error) {
	if len(rts) == 0 {
		panic("kvstore: OpenSharded with no runtimes")
	}
	s := &Sharded{shards: make([]*Store, len(rts))}
	s.m.Routed = metrics.NewCounterVec(len(rts))
	recov := make([]ShardRecovery, len(rts))
	var wg sync.WaitGroup
	for i, rt := range rts {
		wg.Add(1)
		go func(i int, rt *mxtask.Runtime) {
			defer wg.Done()
			sd := d
			sd.Dir = wal.ShardDir(d.Dir, i)
			st, stats, err := Open(rt, sd)
			recov[i] = ShardRecovery{Shard: i, Stats: stats, Err: err}
			s.shards[i] = st // nil on error
		}(i, rt)
	}
	wg.Wait()

	var errs []error
	for _, r := range recov {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("kvstore: shard %d: %w", r.Shard, r.Err))
		}
	}
	if len(errs) > 0 {
		for _, st := range s.shards {
			if st != nil {
				st.Close()
			}
		}
		return nil, recov, errors.Join(errs...)
	}
	return s, recov, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardOf returns the shard that owns key.
func (s *Sharded) ShardOf(key uint64) int { return shardOf(key, len(s.shards)) }

// Shard returns the i-th underlying store (for per-shard inspection:
// WAL metrics, snapshots, tests).
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// RouterMetrics returns the router's live fan-out counters.
func (s *Sharded) RouterMetrics() *RouterMetrics { return &s.m }

// SchedulerGroup returns the stealing mxtask.Group every shard runtime
// belongs to, or nil when the shards run on standalone runtimes, on
// different groups, or on a group without stealing enabled. The server's
// STATS handler uses it to surface GroupStats (steal_* fields).
func (s *Sharded) SchedulerGroup() *mxtask.Group {
	g := s.shards[0].Runtime().Group()
	if g == nil {
		return nil
	}
	for _, sh := range s.shards[1:] {
		if sh.Runtime().Group() != g {
			return nil
		}
	}
	return g
}

// Durable reports whether the shards write WALs (all or none do).
func (s *Sharded) Durable() bool { return s.shards[0].Durable() }

// Instrument attaches a linearizability recorder to every shard; the
// shards share the recorder's logical clock, so the merged history is
// checkable per key across shards. Call before any concurrent use.
func (s *Sharded) Instrument(rec *linearize.Recorder) {
	for _, st := range s.shards {
		st.Instrument(rec)
	}
}

// Get fetches key from its shard; done runs on that shard's worker.
func (s *Sharded) Get(key uint64, done func(Result)) {
	sh := s.ShardOf(key)
	s.m.Routed.Inc(sh)
	s.shards[sh].Get(key, done)
}

// Set stores key=value on its shard (see Store.Set for ack semantics).
func (s *Sharded) Set(key, value uint64, done func(Result)) {
	sh := s.ShardOf(key)
	s.m.Routed.Inc(sh)
	s.shards[sh].Set(key, value, done)
}

// Delete removes key from its shard (see Store.Delete).
func (s *Sharded) Delete(key uint64, done func(Result)) {
	sh := s.ShardOf(key)
	s.m.Routed.Inc(sh)
	s.shards[sh].Delete(key, done)
}

// GetBatch groups keys by shard and issues one multi-op submission per
// touched shard, so the runtime-level neighbor batching (group scheduling,
// prefetch window) stays shard-local. each fires per key with the key's
// index in the original slice, on the worker that completed it.
func (s *Sharded) GetBatch(keys []uint64, each func(int, Result)) {
	if len(s.shards) == 1 {
		s.m.Routed.Add(0, uint64(len(keys)))
		s.m.BatchFanout.Observe(1)
		s.shards[0].GetBatch(keys, each)
		return
	}
	groups := s.groupKeys(keys)
	touched := 0
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		touched++
		s.m.Routed.Add(sh, uint64(len(idxs)))
		sub := make([]uint64, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		idxs := idxs
		s.shards[sh].GetBatch(sub, func(j int, r Result) { each(idxs[j], r) })
	}
	s.m.BatchFanout.Observe(uint64(touched))
}

// SetBatch is GetBatch for upserts: pairs are grouped per shard and each
// shard sees one multi-op submission (its members typically share one
// group commit in that shard's WAL).
func (s *Sharded) SetBatch(pairs []blinktree.KV, each func(int, Result)) {
	if len(s.shards) == 1 {
		s.m.Routed.Add(0, uint64(len(pairs)))
		s.m.BatchFanout.Observe(1)
		s.shards[0].SetBatch(pairs, each)
		return
	}
	groups := make([][]int, len(s.shards))
	for i, kv := range pairs {
		sh := s.ShardOf(kv.Key)
		groups[sh] = append(groups[sh], i)
	}
	touched := 0
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		touched++
		s.m.Routed.Add(sh, uint64(len(idxs)))
		sub := make([]blinktree.KV, len(idxs))
		for j, i := range idxs {
			sub[j] = pairs[i]
		}
		idxs := idxs
		s.shards[sh].SetBatch(sub, func(j int, r Result) { each(idxs[j], r) })
	}
	s.m.BatchFanout.Observe(uint64(touched))
}

// groupKeys partitions key indices by shard, preserving request order
// within each shard.
func (s *Sharded) groupKeys(keys []uint64) [][]int {
	groups := make([][]int, len(s.shards))
	for i, k := range keys {
		sh := s.ShardOf(k)
		groups[sh] = append(groups[sh], i)
	}
	return groups
}

// Scan fetches all records in [from, to); see ScanLimit.
func (s *Sharded) Scan(from, to uint64, done func(ScanResult)) {
	s.ScanLimit(from, to, 0, done)
}

// ScanLimit fans the range out to every shard it intersects — each shard
// receives the full caller limit, since the lowest limit keys could all
// live in one shard — and merges the replies in shard order once the last
// one lands. done runs on the worker that completed the final shard's
// scan.
func (s *Sharded) ScanLimit(from, to uint64, limit int, done func(ScanResult)) {
	if from >= to {
		done(ScanResult{})
		return
	}
	lo, hi := s.ShardOf(from), s.ShardOf(to-1)
	n := hi - lo + 1
	s.m.ScanFanout.Observe(uint64(n))
	if n == 1 {
		s.shards[lo].ScanLimit(from, to, limit, done)
		return
	}
	parts := make([]ScanResult, n)
	var landed atomic.Int32
	for i := 0; i < n; i++ {
		i := i
		s.shards[lo+i].ScanLimit(from, to, limit, func(r ScanResult) {
			parts[i] = r
			// The final atomic Add orders after every part write: each
			// completer wrote its slot before its Add, and the RMW chain
			// publishes them to whoever observes the last increment.
			if landed.Add(1) == int32(n) {
				done(mergeScans(parts, limit))
			}
		})
	}
}

// mergeScans concatenates per-shard scan results in shard order (the
// range partition is monotonic, so concatenation IS the sorted merge) and
// re-applies the result cap. The subtle case is truncation landing
// mid-merge: when shard j's own scan was truncated, keys between shard
// j's cut and shard j+1's first key are unknown — including anything from
// a later shard would tear a hole in the range — so the merge stops at
// shard j's cut and reports Truncated. Likewise the cap itself can land
// mid-merge, cutting a later shard's contribution short.
func mergeScans(parts []ScanResult, limit int) ScanResult {
	var out []blinktree.KV
	for _, p := range parts {
		for _, kv := range p.Pairs {
			if limit > 0 && len(out) >= limit {
				return ScanResult{Pairs: out, Truncated: true}
			}
			out = append(out, kv)
		}
		if p.Truncated {
			return ScanResult{Pairs: out, Truncated: true}
		}
	}
	return ScanResult{Pairs: out}
}

// CountLive counts records across all shards through their task chains —
// safe while mutations are in flight, like Store.CountLive.
func (s *Sharded) CountLive(done func(int)) {
	var total atomic.Int64
	var landed atomic.Int32
	n := int32(len(s.shards))
	for _, st := range s.shards {
		st.CountLive(func(c int) {
			total.Add(int64(c))
			if landed.Add(1) == n {
				done(int(total.Load()))
			}
		})
	}
}

// Count returns the total record count (quiescent only; use CountLive
// while operations are in flight).
func (s *Sharded) Count() int {
	n := 0
	for _, st := range s.shards {
		n += st.Count()
	}
	return n
}

// Snapshot checkpoints every shard concurrently (each shard's snapshot
// covers its own WAL; see Store.Snapshot). done (optional) runs once after
// the last shard finishes, with the shards' errors joined.
func (s *Sharded) Snapshot(done func(error)) {
	errs := make([]error, len(s.shards))
	var landed atomic.Int32
	n := int32(len(s.shards))
	for i, st := range s.shards {
		i := i
		st.Snapshot(func(err error) {
			errs[i] = err
			if landed.Add(1) == n {
				if done != nil {
					done(errors.Join(errs...))
				}
			}
		})
	}
}

// Stats sums the per-shard operation counters.
func (s *Sharded) Stats() Stats {
	var t Stats
	for _, st := range s.shards {
		ss := st.Stats()
		t.Gets += ss.Gets
		t.Sets += ss.Sets
		t.Dels += ss.Dels
	}
	return t
}

// SetInterleave sets every shard's batched-operation group width. A
// re-split sub-batch interleaves within its shard; widths compose with
// the router's fan-out unchanged.
func (s *Sharded) SetInterleave(width int) {
	for _, st := range s.shards {
		st.SetInterleave(width)
	}
}

// InterleaveStats sums the shards' group-descent counters (MaxWidth by
// maximum).
func (s *Sharded) InterleaveStats() mxtask.InterleaveStats {
	var t mxtask.InterleaveStats
	for _, st := range s.shards {
		t.Add(st.InterleaveStats())
	}
	return t
}

// StatsByShard returns each shard's operation counters in shard order.
func (s *Sharded) StatsByShard() []Stats {
	out := make([]Stats, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.Stats()
	}
	return out
}

// Sync blocks until every shard's previously appended WAL records are
// durable. Must not be called from a task.
func (s *Sharded) Sync() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, st := range s.shards {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			errs[i] = st.Sync()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close drains and closes every shard concurrently. The runtimes keep
// running (they are shared); stop them separately. Must not be called
// from a task.
func (s *Sharded) Close() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, st := range s.shards {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			errs[i] = st.Close()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Drain blocks until every shard's runtime has no pending tasks. Must not
// be called from a task.
func (s *Sharded) Drain() {
	for _, st := range s.shards {
		st.Runtime().Drain()
	}
}

// ScanSync is a blocking Scan.
func (s *Sharded) ScanSync(from, to uint64) ScanResult {
	ch := make(chan ScanResult, 1)
	s.Scan(from, to, func(r ScanResult) { ch <- r })
	return <-ch
}

// ScanLimitSync is a blocking ScanLimit.
func (s *Sharded) ScanLimitSync(from, to uint64, limit int) ScanResult {
	ch := make(chan ScanResult, 1)
	s.ScanLimit(from, to, limit, func(r ScanResult) { ch <- r })
	return <-ch
}

// GetSync is a blocking Get.
func (s *Sharded) GetSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Get(key, func(r Result) { ch <- r })
	return <-ch
}

// SetSync is a blocking Set (durable per the sync policy for durable
// stores).
func (s *Sharded) SetSync(key, value uint64) Result {
	ch := make(chan Result, 1)
	s.Set(key, value, func(r Result) { ch <- r })
	return <-ch
}

// DeleteSync is a blocking Delete.
func (s *Sharded) DeleteSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Delete(key, func(r Result) { ch <- r })
	return <-ch
}
