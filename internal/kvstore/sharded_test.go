package kvstore

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/faultfs"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/wal"
)

// syncOps is the blocking-op surface shared by Store and Sharded, closed
// over so the invariance test can drive both through one code path.
type syncOps struct {
	get  func(uint64) Result
	set  func(uint64, uint64) Result
	del  func(uint64) Result
	scan func(from, to uint64, limit int) ScanResult
}

func storeOps(s *Store) syncOps {
	return syncOps{
		get: s.GetSync,
		set: s.SetSync,
		del: s.DeleteSync,
		scan: func(from, to uint64, limit int) ScanResult {
			ch := make(chan ScanResult, 1)
			s.ScanLimit(from, to, limit, func(r ScanResult) { ch <- r })
			return <-ch
		},
	}
}

func shardedOps(s *Sharded) syncOps {
	return syncOps{get: s.GetSync, set: s.SetSync, del: s.DeleteSync, scan: s.ScanLimitSync}
}

// The router's contract: a Sharded store over any shard count is
// observably identical to a single Store. A seeded random op stream runs
// against an unsharded reference and 2/3/5-shard stores in lockstep; every
// GET, SCAN, and mutation ack must agree.
func TestShardCountInvariance(t *testing.T) {
	ref, stopRef := newStore(t, 2)
	defer stopRef()
	subjects := []struct {
		name string
		ops  syncOps
	}{}
	for _, n := range []int{2, 3, 5} {
		sh, stop := newShardedN(t, n, 4)
		defer stop()
		subjects = append(subjects, struct {
			name string
			ops  syncOps
		}{name: string(rune('0'+n)) + "-shard", ops: shardedOps(sh)})
	}
	refOps := storeOps(ref)

	rng := rand.New(rand.NewSource(0xd1ce))
	pool := make([]uint64, 160)
	for i := range pool {
		pool[i] = rng.Uint64() // full-range keys → spread over every shard
	}
	pick := func() uint64 { return pool[rng.Intn(len(pool))] }

	const ops = 1200
	for op := 0; op < ops; op++ {
		switch c := rng.Intn(100); {
		case c < 40: // SET
			k, v := pick(), rng.Uint64()
			want := refOps.set(k, v)
			for _, s := range subjects {
				if got := s.ops.set(k, v); got.Found != want.Found {
					t.Fatalf("op %d: %s SET(%d) overwrote=%v, ref %v", op, s.name, k, got.Found, want.Found)
				}
			}
		case c < 60: // DEL
			k := pick()
			want := refOps.del(k)
			for _, s := range subjects {
				if got := s.ops.del(k); got.Found != want.Found {
					t.Fatalf("op %d: %s DEL(%d) existed=%v, ref %v", op, s.name, k, got.Found, want.Found)
				}
			}
		case c < 85: // GET
			k := pick()
			want := refOps.get(k)
			for _, s := range subjects {
				got := s.ops.get(k)
				if got.Found != want.Found || got.Value != want.Value {
					t.Fatalf("op %d: %s GET(%d) = (%d,%v), ref (%d,%v)",
						op, s.name, k, got.Value, got.Found, want.Value, want.Found)
				}
			}
		default: // SCAN
			from := pick()
			width := uint64(1) << uint(rng.Intn(64))
			to := from + width
			if to < from {
				to = math.MaxUint64
			}
			limit := 0
			if rng.Intn(2) == 0 {
				limit = 1 + rng.Intn(16)
			}
			want := refOps.scan(from, to, limit)
			for _, s := range subjects {
				got := s.ops.scan(from, to, limit)
				if len(got.Pairs) != len(want.Pairs) {
					t.Fatalf("op %d: %s SCAN[%d,%d)/%d = %d pairs, ref %d",
						op, s.name, from, to, limit, len(got.Pairs), len(want.Pairs))
				}
				for i := range got.Pairs {
					if got.Pairs[i] != want.Pairs[i] {
						t.Fatalf("op %d: %s SCAN pair %d = %+v, ref %+v",
							op, s.name, i, got.Pairs[i], want.Pairs[i])
					}
				}
				// When the result lands exactly on the limit, "more may
				// exist" is legitimately reported by either side of the
				// boundary; everywhere else the flags must agree.
				if len(got.Pairs) != limit && got.Truncated != want.Truncated {
					t.Fatalf("op %d: %s SCAN truncated=%v, ref %v", op, s.name, got.Truncated, want.Truncated)
				}
			}
		}
	}
	// Final state: identical full-range contents.
	want := refOps.scan(0, math.MaxUint64, 0)
	for _, s := range subjects {
		got := s.ops.scan(0, math.MaxUint64, 0)
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("%s final state has %d keys, ref %d", s.name, len(got.Pairs), len(want.Pairs))
		}
		for i := range got.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("%s final pair %d = %+v, ref %+v", s.name, i, got.Pairs[i], want.Pairs[i])
			}
		}
	}
}

// newStealingShardedN builds an in-memory Sharded over an n-node group
// with cross-runtime stealing on and thresholds lowered so steals can
// trigger even on small test workloads.
func newStealingShardedN(t testing.TB, n, workers int) (*Sharded, *mxtask.Group, func()) {
	t.Helper()
	g := mxtask.NewGroup(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
		Steal: mxtask.StealConfig{
			Enabled:    true,
			MinBacklog: 2,
			IdleStreak: 1,
		},
	}, n)
	g.Start()
	return NewSharded(g.Runtimes()), g, g.Stop
}

// asyncMutOps is the asynchronous mutation surface shared by Store and
// Sharded; the stealing lockstep test drives both through it.
type asyncMutOps interface {
	Set(key, value uint64, done func(Result))
	Delete(key uint64, done func(Result))
}

// Stealing must not change what the store computes — only where tasks run.
// The same seeded op stream is applied to an unsharded reference and to a
// 4-node stealing group, as concurrent bursts over distinct keys (so the
// ops of a burst commute and backlog actually builds up for thieves);
// after every burst completes on both, the full store contents must be
// identical. Extends TestShardCountInvariance to cover stealing.
func TestShardCountInvarianceStealing(t *testing.T) {
	ref, stopRef := newStore(t, 2)
	defer stopRef()
	sh, g, stop := newStealingShardedN(t, 4, 4)
	defer stop()
	refOps, shOps := storeOps(ref), shardedOps(sh)

	rng := rand.New(rand.NewSource(0x57ea1))
	const bursts, perBurst = 12, 300
	// Key universe skewed onto shard 0 (low quarter of the keyspace) so
	// the stealing group sees the hot-shard pattern, with a full-range
	// tail so every shard owns something.
	universe := make([]uint64, 2048)
	for i := range universe {
		if i%8 == 0 {
			universe[i] = rng.Uint64()
		} else {
			universe[i] = rng.Uint64() >> 2
		}
	}
	type burstOp struct {
		key, val uint64
		del      bool
	}
	submit := func(s asyncMutOps, ops []burstOp) *sync.WaitGroup {
		var wg sync.WaitGroup
		wg.Add(len(ops))
		for _, op := range ops {
			if op.del {
				s.Delete(op.key, func(Result) { wg.Done() })
			} else {
				s.Set(op.key, op.val, func(Result) { wg.Done() })
			}
		}
		return &wg
	}
	for b := 0; b < bursts; b++ {
		rng.Shuffle(len(universe), func(i, j int) {
			universe[i], universe[j] = universe[j], universe[i]
		})
		ops := make([]burstOp, perBurst)
		for i := range ops {
			// Distinct keys within the burst: its ops commute, so the
			// two stores may execute them in any interleaving.
			ops[i] = burstOp{key: universe[i], val: rng.Uint64(), del: rng.Intn(5) == 0}
		}
		wgRef := submit(ref, ops)
		wgSh := submit(sh, ops)
		wgRef.Wait()
		wgSh.Wait()
	}
	want := refOps.scan(0, math.MaxUint64, 0)
	got := shOps.scan(0, math.MaxUint64, 0)
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("stealing store has %d keys, ref %d", len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("pair %d = %+v, ref %+v", i, got.Pairs[i], want.Pairs[i])
		}
	}
	for _, k := range universe[:64] {
		w, gt := refOps.get(k), shOps.get(k)
		if w.Found != gt.Found || w.Value != gt.Value {
			t.Fatalf("GET(%d) = (%d,%v), ref (%d,%v)", k, gt.Value, gt.Found, w.Value, w.Found)
		}
	}
	// Whether steals fired depends on host parallelism; determinism must
	// hold either way. Record the activity for the curious.
	t.Logf("group stats after lockstep run: %+v", g.Stats())
}

// Per-shard recovery isolation: damage one shard's log mid-segment and the
// other shards still replay fully, while the damaged shard (and the joined
// open error) reports wal.ErrCorrupt.
func TestShardedParallelRecoveryCorruptShard(t *testing.T) {
	fs := faultfs.NewMem(1)
	const dir = "/kv"
	mkRTs := func(n int) []*mxtask.Runtime {
		rts := make([]*mxtask.Runtime, n)
		for i := range rts {
			rts[i] = newRT(t)
		}
		return rts
	}

	s, recov, err := OpenSharded(mkRTs(3), Durability{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recov {
		if r.Err != nil || r.Stats.Records != 0 {
			t.Fatalf("fresh open shard %d = %+v", r.Shard, r)
		}
	}
	// Three durable records per shard, keys pinned to their shard.
	for i := 0; i < 3; i++ {
		base := shardStart(i, 3)
		for j := uint64(1); j <= 3; j++ {
			k := base + j
			if got := s.ShardOf(k); got != i {
				t.Fatalf("key %d routed to shard %d, want %d", k, got, i)
			}
			if r := s.SetSync(k, k+7); r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: each shard replays its own log.
	s2, recov, err := OpenSharded(mkRTs(3), Durability{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recov {
		if r.Err != nil || r.Stats.Records != 3 {
			t.Fatalf("clean recovery shard %d = %+v", i, r)
		}
	}
	for i := 0; i < 3; i++ {
		base := shardStart(i, 3)
		for j := uint64(1); j <= 3; j++ {
			if r := s2.GetSync(base + j); !r.Found || r.Value != base+j+7 {
				t.Fatalf("key %d lost in recovery: %+v", base+j, r)
			}
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside shard 1's first record. Valid records follow it,
	// so this is mid-segment damage — ErrCorrupt, never silent truncation.
	shardDir := wal.ShardDir(dir, 1)
	entries, err := fs.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "wal-") || !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		p := filepath.Join(shardDir, e.Name())
		if data, err := fs.ReadFile(p); err == nil && len(data) >= 2*wal.FrameSize {
			seg = p
			break
		}
	}
	if seg == "" {
		t.Fatal("no shard-1 segment holding two or more records")
	}
	data, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[wal.FrameSize/2] ^= 0xff
	h, err := fs.OpenFile(seg, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Close()

	_, recov, err = OpenSharded(mkRTs(3), Durability{Dir: dir, FS: fs})
	if err == nil {
		t.Fatal("OpenSharded came up over a corrupt shard")
	}
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open error = %v, want wal.ErrCorrupt", err)
	}
	if !errors.Is(recov[1].Err, wal.ErrCorrupt) {
		t.Fatalf("shard 1 recovery = %+v, want wal.ErrCorrupt", recov[1])
	}
	for _, i := range []int{0, 2} {
		if recov[i].Err != nil || recov[i].Stats.Records != 3 {
			t.Fatalf("healthy shard %d did not recover: %+v", i, recov[i])
		}
	}
}

// A server over an explicit 3-shard backend: cross-shard writes, MGET,
// SCAN, and the per-shard STATS breakdown all work through the wire.
func TestShardedServerEndToEnd(t *testing.T) {
	s, stop := newShardedN(t, 3, 3)
	defer stop()
	srv, err := NewServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b1, b2 := shardStart(1, 3), shardStart(2, 3)
	keys := []uint64{1, 2, b1 + 1, b1 + 2, b2 + 1} // shards 0,0,1,1,2
	for _, k := range keys {
		if _, err := c.Set(k, k/3+9); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, found, err := c.Get(k); err != nil || !found || v != k/3+9 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, found, err)
		}
	}
	// Cross-shard SCAN through the wire comes back globally sorted.
	pairs, err := c.Scan(0, b2+10)
	if err != nil || len(pairs) != len(keys) {
		t.Fatalf("Scan = %d pairs, %v; want %d", len(pairs), err, len(keys))
	}
	for i, kv := range pairs {
		if kv.Key != keys[i] {
			t.Fatalf("scan pair %d = %d, want %d", i, kv.Key, keys[i])
		}
	}
	// STATS exposes the 3-shard breakdown; SETs landed 2/2/1.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerShard) != 3 {
		t.Fatalf("PerShard = %d entries, want 3", len(st.PerShard))
	}
	wantSets := []uint64{2, 2, 1}
	for i, ss := range st.PerShard {
		if ss.Sets != wantSets[i] {
			t.Fatalf("shard %d Sets = %d, want %d (%+v)", i, ss.Sets, wantSets[i], st.PerShard)
		}
	}
}
