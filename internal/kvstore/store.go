// Package kvstore is the MxTask-based key-value store the paper's
// introduction and conclusion describe: a Blink-tree index driven by
// annotated tasks, fronted by an embedded API and a small TCP text
// protocol (server.go). Each client request becomes a chain of MxTasks;
// responses are delivered through completion tasks, so the store inherits
// the runtime's prefetching and injected synchronization end to end.
package kvstore

import (
	"sync/atomic"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/mxtask"
)

// Store is an embedded key-value store.
type Store struct {
	rt   *mxtask.Runtime
	tree *blinktree.TaskTree

	// Stats
	gets atomic.Uint64
	sets atomic.Uint64
	dels atomic.Uint64
}

// Stats reports operation counts since creation.
type Stats struct {
	Gets, Sets, Dels uint64
}

// New creates a store on the runtime using the optimistic annotation
// scheme (§4.2's cost-model defaults).
func New(rt *mxtask.Runtime) *Store {
	return &Store{rt: rt, tree: blinktree.NewTaskTree(rt, blinktree.TaskSyncOptimistic)}
}

// Runtime returns the store's runtime.
func (s *Store) Runtime() *mxtask.Runtime { return s.rt }

// Result is a completed operation's outcome.
type Result struct {
	Value uint64
	Found bool
}

// Get fetches key asynchronously; done receives the outcome on the
// worker that completed the lookup.
func (s *Store) Get(key uint64, done func(Result)) {
	s.gets.Add(1)
	s.tree.LookupWith(key, func(_ *mxtask.Context, t *mxtask.Task) {
		op := t.Arg.(*blinktree.Op)
		done(Result{Value: op.Result, Found: op.Found})
	})
}

// Set stores key=value asynchronously; done (optional) fires on completion.
func (s *Store) Set(key, value uint64, done func(Result)) {
	s.sets.Add(1)
	op := s.tree.NewOp("insert", key, value, nil)
	if done != nil {
		op.Done = func(_ *mxtask.Context, t *mxtask.Task) {
			o := t.Arg.(*blinktree.Op)
			done(Result{Value: value, Found: o.Found})
		}
	}
	s.startOp(op)
}

// Delete removes key asynchronously; done (optional) reports whether the
// key existed.
func (s *Store) Delete(key uint64, done func(Result)) {
	s.dels.Add(1)
	op := s.tree.NewOp("delete", key, 0, nil)
	if done != nil {
		op.Done = func(_ *mxtask.Context, t *mxtask.Task) {
			o := t.Arg.(*blinktree.Op)
			done(Result{Found: o.Found})
		}
	}
	s.startOp(op)
}

func (s *Store) startOp(op *blinktree.Op) {
	s.tree.StartFrom(nil, op)
}

// ScanResult is a completed range scan's outcome.
type ScanResult struct {
	Pairs []blinktree.KV
}

// Scan fetches all records in [from, to) asynchronously; done receives the
// sorted results.
func (s *Store) Scan(from, to uint64, done func(ScanResult)) {
	s.tree.Scan(from, to, func(_ *mxtask.Context, t *mxtask.Task) {
		op := t.Arg.(*blinktree.ScanOp)
		done(ScanResult{Pairs: op.Results})
	})
}

// ScanSync is a blocking Scan.
func (s *Store) ScanSync(from, to uint64) ScanResult {
	ch := make(chan ScanResult, 1)
	s.Scan(from, to, func(r ScanResult) { ch <- r })
	return <-ch
}

// GetSync is a blocking Get for tests and simple clients.
func (s *Store) GetSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Get(key, func(r Result) { ch <- r })
	return <-ch
}

// SetSync is a blocking Set.
func (s *Store) SetSync(key, value uint64) Result {
	ch := make(chan Result, 1)
	s.Set(key, value, func(r Result) { ch <- r })
	return <-ch
}

// DeleteSync is a blocking Delete.
func (s *Store) DeleteSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Delete(key, func(r Result) { ch <- r })
	return <-ch
}

// Count returns the number of records (quiescent only).
func (s *Store) Count() int { return s.tree.Count() }

// Stats returns operation counters.
func (s *Store) Stats() Stats {
	return Stats{Gets: s.gets.Load(), Sets: s.sets.Load(), Dels: s.dels.Load()}
}
