// Package kvstore is the MxTask-based key-value store the paper's
// introduction and conclusion describe: a Blink-tree index driven by
// annotated tasks, fronted by an embedded API and a small TCP text
// protocol (server.go). Each client request becomes a chain of MxTasks;
// responses are delivered through completion tasks, so the store inherits
// the runtime's prefetching and injected synchronization end to end.
//
// Stores opened with a Durability configuration additionally write every
// mutation to a write-ahead log (internal/wal) before acknowledging it:
// the leaf task appends the record while it still holds the leaf's write
// synchronization, the WAL's group-commit writer makes it durable, and the
// caller's completion fires only after the covering fsync. Open replays
// the newest snapshot plus the log tail, so a restarted store recovers
// every acknowledged operation.
package kvstore

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mxtasking/internal/blinktree"
	"mxtasking/internal/faultfs"
	"mxtasking/internal/linearize"
	"mxtasking/internal/mxtask"
	"mxtasking/internal/pager"
	"mxtasking/internal/wal"
)

// Durability configures the optional write-ahead log.
type Durability struct {
	// Dir is the WAL directory (segments + snapshots). Required.
	Dir string
	// SyncEvery / SyncInterval / NoSync / SegmentBytes tune the
	// group-commit writer; see wal.Options.
	SyncEvery    int
	SyncInterval time.Duration
	NoSync       bool
	SegmentBytes int64
	// SnapshotEvery, when positive, checkpoints the tree into a snapshot
	// (and truncates the log) every that-many logged operations.
	SnapshotEvery uint64
	// FS is the filesystem the WAL and snapshots write through. Nil uses
	// the real disk; the chaos tests inject a faultfs.FaultFS to enumerate
	// crash points and verify recovery.
	FS faultfs.FS
	// Paged, when non-nil, adds the paged value tier (see paged.go):
	// values at or above the spill threshold live in pager-managed page
	// files under the WAL directory instead of the tree's heap.
	Paged *PagedConfig
}

// Store is an embedded key-value store.
type Store struct {
	rt   *mxtask.Runtime
	tree *blinktree.TaskTree

	// Paged value tier (nil pg for fully in-memory values). spillMin is
	// the smallest value routed to the pager, clamped to pager.RefTag so
	// tag-bit values always spill. pendingSpills counts Sets that are
	// between their page allocation and their tree insert; while it is
	// non-zero, op dispatch detours through a pager barrier so later ops
	// cannot overtake the pending insert (see dispatch).
	pg            *pager.Pager
	spillMin      uint64
	pendingSpills atomic.Int64

	// Durability (nil log for in-memory stores).
	log          *wal.Log
	dur          Durability
	logged       atomic.Uint64 // durable mutations issued
	snapLogged   atomic.Uint64 // logged at the last snapshot trigger
	snapshotting atomic.Bool

	// Stats
	gets atomic.Uint64
	sets atomic.Uint64
	dels atomic.Uint64

	// rec, when non-nil, captures every Get/Set/Delete as an
	// invoke/return pair for linearizability checking. Set via Instrument
	// before any concurrent use.
	rec *linearize.Recorder

	// commitGate, when set, interposes between a mutation's local
	// durability and its client-facing ack: the replication subsystem
	// holds the ack until enough replicas acknowledged the sequence
	// number (semi-synchronous commit). See SetCommitGate.
	commitGate atomic.Pointer[func(seq uint64, fire func(error))]
}

// Stats reports operation counts since creation.
type Stats struct {
	Gets, Sets, Dels uint64
}

// Snapshot coordination errors.
var (
	// ErrNoDurability marks a durable-only operation on an in-memory store.
	ErrNoDurability = errors.New("kvstore: store has no durability configured")
	// ErrSnapshotBusy marks an attempt to start overlapping snapshots.
	ErrSnapshotBusy = errors.New("kvstore: snapshot already in progress")
)

// New creates an in-memory store on the runtime using the optimistic
// annotation scheme (§4.2's cost-model defaults).
func New(rt *mxtask.Runtime) *Store {
	s := &Store{rt: rt, tree: blinktree.NewTaskTree(rt, defaultTreeMode)}
	// Surface the tree's group-descent counters through the runtime's
	// WorkerStats (last store on a shared runtime wins, like
	// AttachLearnedPrefetch).
	rt.AttachInterleave(s.tree.InterleaveStats)
	return s
}

// Open creates a durable store: it recovers the state persisted in
// d.Dir (newest valid snapshot, then the log tail — tolerating a torn
// final record) and opens the write-ahead log for appending. The returned
// stats describe the recovery. The runtime must already be started.
func Open(rt *mxtask.Runtime, d Durability) (*Store, wal.ReplayStats, error) {
	s := New(rt)
	s.dur = d

	// Replay is a read-only pass and tolerates a torn final record (a
	// crash mid-write), reporting it in the stats. It runs before Open,
	// which truncates that torn tail off the live log.
	var pairs []wal.KV
	var records []wal.Record
	stats, err := wal.ReplayFS(d.FS, d.Dir,
		func(kv wal.KV) { pairs = append(pairs, kv) },
		func(r wal.Record) error { records = append(records, r); return nil })
	if err != nil {
		return nil, stats, err
	}

	log, err := wal.Open(rt, wal.Options{
		Dir:          d.Dir,
		SyncEvery:    d.SyncEvery,
		SyncInterval: d.SyncInterval,
		NoSync:       d.NoSync,
		SegmentBytes: d.SegmentBytes,
		FS:           d.FS,
	})
	if err != nil {
		return nil, stats, err
	}

	// The paged tier opens before replay so recovered values route
	// through the spill path: the page file is rebuilt from the WAL and
	// snapshots here, which is why it never needs to be crash-consistent
	// itself.
	if d.Paged != nil {
		if perr := s.initPager(*d.Paged, d.Dir, d.FS); perr != nil {
			log.Close()
			return nil, stats, perr
		}
	}
	var replayMu sync.Mutex
	var replayErr error
	replayFail := func(err error) {
		replayMu.Lock()
		if replayErr == nil {
			replayErr = err
		}
		replayMu.Unlock()
	}
	replayInsert := func(key, value uint64) {
		s.spillStore(key, value, replayFail, func(ctx *mxtask.Context, word uint64) {
			s.tree.StartFrom(ctx, s.tree.NewOp("insert", key, word, nil))
		})
	}

	// Rebuild through the tree's own task chains. Snapshot pairs have
	// unique keys, so they load fully in parallel; log records are
	// compacted to the last record per key first — set/delete are
	// complete overwrites, so only each key's final logged operation
	// matters, and the compacted batch can also apply in parallel.
	for _, kv := range pairs {
		replayInsert(kv.Key, kv.Value)
	}
	rt.Drain()
	last := make(map[uint64]wal.Record, len(records))
	for _, r := range records {
		last[r.Key] = r
	}
	for _, r := range last {
		switch r.Op {
		case wal.OpSet:
			replayInsert(r.Key, r.Value)
		case wal.OpDelete:
			s.tree.StartFrom(nil, s.tree.NewOp("delete", r.Key, 0, nil))
		}
	}
	rt.Drain()
	if replayErr != nil {
		log.Close()
		if s.pg != nil {
			s.pg.Close()
		}
		return nil, stats, replayErr
	}

	s.log = log
	return s, stats, nil
}

// Runtime returns the store's runtime.
func (s *Store) Runtime() *mxtask.Runtime { return s.rt }

// Durable reports whether the store writes a WAL.
func (s *Store) Durable() bool { return s.log != nil }

// WALMetrics exposes the log writer's counters, or nil for in-memory
// stores.
func (s *Store) WALMetrics() *wal.Metrics {
	if s.log == nil {
		return nil
	}
	return s.log.Metrics()
}

// Result is a completed operation's outcome.
type Result struct {
	Value uint64
	Found bool
	// Err is non-nil when a durable store failed to persist the
	// mutation (the in-memory effect may still be visible until
	// restart). Always nil for in-memory stores and reads.
	Err error
}

// Instrument attaches a linearizability recorder: every subsequent
// Get/Set/Delete is captured as an invoke/return pair (returns fire only
// after the operation's ack — for durable mutations, after the covering
// fsync — so an op that never acked stays pending in the history). Call
// before any concurrent use; pass nil to detach.
func (s *Store) Instrument(rec *linearize.Recorder) { s.rec = rec }

// getOp counts, instruments, and builds one lookup op without spawning
// it; Get starts it as its own chain, GetBatch groups many into
// interleaved descents.
func (s *Store) getOp(key uint64, done func(Result)) *blinktree.Op {
	s.gets.Add(1)
	var opID int64
	if s.rec != nil {
		opID = s.rec.Invoke(0, linearize.OpGet, key, 0)
	}
	finish := func(value uint64, found bool, err error) {
		if s.rec != nil {
			s.rec.Return(opID, value, found, err)
		}
		done(Result{Value: value, Found: found, Err: err})
	}
	return s.tree.NewOp("lookup", key, 0, func(ctx *mxtask.Context, t *mxtask.Task) {
		op := t.Arg.(*blinktree.Op)
		if s.pg == nil || !op.Found || !pager.IsRef(op.Result) {
			finish(op.Result, op.Found, nil)
			return
		}
		s.loadValue(ctx, op.Result, key, finish)
	})
}

// Get fetches key asynchronously; done receives the outcome on the
// worker that completed the lookup. Reads are not logged.
func (s *Store) Get(key uint64, done func(Result)) {
	s.startOp(s.getOp(key, done))
}

// setOp counts, instruments, and builds one upsert op — with its WAL
// Commit hook when the store is durable — without spawning it. Only for
// values that stay inline; spilling values route through setPaged.
func (s *Store) setOp(key, value uint64, done func(Result)) *blinktree.Op {
	s.sets.Add(1)
	var opID int64
	if s.rec != nil {
		opID = s.rec.Invoke(0, linearize.OpSet, key, value)
	}
	return s.setOpWord(key, value, value, opID, done)
}

// setOpWord builds the tree op for an upsert whose tree word (inline
// value or pager reference) is already determined. The WAL record,
// recorder return, and client ack all carry the client value; only the
// tree stores the word.
func (s *Store) setOpWord(key, value, word uint64, opID int64, done func(Result)) *blinktree.Op {
	op := s.tree.NewOp("insert", key, word, nil)
	if s.log != nil {
		s.logged.Add(1)
		// The Commit hook runs in the leaf task, under the leaf's write
		// synchronization: the append reaches the log in apply order
		// for this key, so replay order and memory order agree.
		op.Commit = func(o *blinktree.Op) {
			found := o.Found
			s.log.AppendSeq(wal.OpSet, key, value, func(seq uint64, err error) {
				s.finishWrite(seq, err, func(err error) {
					if s.rec != nil {
						s.rec.Return(opID, value, found, err)
					}
					if done != nil {
						done(Result{Value: value, Found: found, Err: err})
					}
				})
			})
		}
		s.armPrevFree(op, word)
		return op
	}
	if done != nil || s.rec != nil {
		op.Done = func(_ *mxtask.Context, t *mxtask.Task) {
			o := t.Arg.(*blinktree.Op)
			if s.rec != nil {
				s.rec.Return(opID, value, o.Found, nil)
			}
			if done != nil {
				done(Result{Value: value, Found: o.Found})
			}
		}
	}
	s.armPrevFree(op, word)
	return op
}

// Set stores key=value asynchronously; done (optional) fires on completion
// — for durable stores, only after the record's covering fsync.
func (s *Store) Set(key, value uint64, done func(Result)) {
	if s.spills(value) {
		s.sets.Add(1)
		var opID int64
		if s.rec != nil {
			opID = s.rec.Invoke(0, linearize.OpSet, key, value)
		}
		s.setPaged(key, value, opID, done)
	} else {
		s.startOp(s.setOp(key, value, done))
	}
	if s.log != nil {
		s.maybeSnapshot()
	}
}

// Delete removes key asynchronously; done (optional) reports whether the
// key existed — for durable stores, only after the record's covering
// fsync.
func (s *Store) Delete(key uint64, done func(Result)) {
	s.dels.Add(1)
	var opID int64
	if s.rec != nil {
		opID = s.rec.Invoke(0, linearize.OpDelete, key, 0)
	}
	op := s.tree.NewOp("delete", key, 0, nil)
	if s.log != nil {
		s.logged.Add(1)
		op.Commit = func(o *blinktree.Op) {
			found := o.Found
			s.log.AppendSeq(wal.OpDelete, key, 0, func(seq uint64, err error) {
				s.finishWrite(seq, err, func(err error) {
					if s.rec != nil {
						s.rec.Return(opID, 0, found, err)
					}
					if done != nil {
						done(Result{Found: found, Err: err})
					}
				})
			})
		}
		s.armPrevFree(op, 0)
		s.startOp(op)
		s.maybeSnapshot()
		return
	}
	if done != nil || s.rec != nil {
		op.Done = func(_ *mxtask.Context, t *mxtask.Task) {
			o := t.Arg.(*blinktree.Op)
			if s.rec != nil {
				s.rec.Return(opID, 0, o.Found, nil)
			}
			if done != nil {
				done(Result{Found: o.Found})
			}
		}
	}
	s.armPrevFree(op, 0)
	s.startOp(op)
}

func (s *Store) startOp(op *blinktree.Op) {
	s.dispatch(func(ctx *mxtask.Context) { s.tree.StartFrom(ctx, op) })
}

// dispatch runs start — which must enqueue the operation's first tree
// task — either directly or, when a spilled Set is still between its
// page allocation and its tree insert, behind a pager-pool barrier.
// Pool tasks run FIFO on the pager's exclusive resource, so the barrier
// lands after every pending allocation and this op's descent is
// enqueued after theirs: the dispatch-order guarantee pipelined clients
// rely on (a SET's effects visible to the GET issued right behind it on
// the same connection) holds for the paged store exactly as it does for
// the plain one, where dispatch enqueues straight onto the tree.
func (s *Store) dispatch(start func(ctx *mxtask.Context)) {
	if s.pg != nil && s.pendingSpills.Load() > 0 {
		s.pg.Barrier(nil, start)
		return
	}
	start(nil)
}

// finishWrite routes a locally durable mutation through the commit gate
// (when one is set) before firing its client-facing ack. A failed local
// append never consults the gate — the error ack fires directly.
func (s *Store) finishWrite(seq uint64, err error, fire func(error)) {
	if err != nil {
		fire(err)
		return
	}
	if gate := s.commitGate.Load(); gate != nil {
		(*gate)(seq, fire)
		return
	}
	fire(nil)
}

// SetCommitGate interposes gate between local durability and client acks:
// after a mutation's covering fsync, gate receives its sequence number and
// the ack thunk, and fires the thunk once the commit condition (e.g.
// enough replica acks) holds — or with an error to surface a commit
// timeout. Pass nil to remove the gate; mutations already handed to a
// previous gate still complete through it. The gate runs on WAL ack
// workers and must not block.
func (s *Store) SetCommitGate(gate func(seq uint64, fire func(error))) {
	if gate == nil {
		s.commitGate.Store(nil)
		return
	}
	s.commitGate.Store(&gate)
}

// WAL exposes the store's log to the replication subsystem (nil for
// in-memory stores): the shipper tails it and watches DurableSeq.
func (s *Store) WAL() *wal.Log { return s.log }

// ApplyRecord appends one primary-assigned record to the local WAL,
// bypassing tree, stats, recorder, and commit gate. The replica applier
// calls it in ascending sequence order from one goroutine; done fires
// after the record's covering fsync.
func (s *Store) ApplyRecord(rec wal.Record, done func(error)) {
	if s.log == nil {
		if done != nil {
			done(ErrNoDurability)
		}
		return
	}
	s.log.AppendRec(rec, done)
}

// ApplyToTree applies one replicated mutation to the in-memory tree
// without logging, stats, or client acks: the record is already in the
// local WAL via ApplyRecord. done (optional) fires when the tree op
// completes.
func (s *Store) ApplyToTree(rec wal.Record, done func()) {
	var op *blinktree.Op
	switch rec.Op {
	case wal.OpSet:
		if s.spills(rec.Value) {
			s.applyPagedToTree(rec, done)
			return
		}
		op = s.tree.NewOp("insert", rec.Key, rec.Value, nil)
		s.armPrevFree(op, rec.Value)
	case wal.OpDelete:
		op = s.tree.NewOp("delete", rec.Key, 0, nil)
		s.armPrevFree(op, 0)
	default:
		if done != nil {
			done()
		}
		return
	}
	if done != nil {
		op.Done = func(_ *mxtask.Context, _ *mxtask.Task) { done() }
	}
	s.startOp(op)
}

// maybeSnapshot triggers an automatic checkpoint when enough mutations
// accumulated since the last one.
func (s *Store) maybeSnapshot() {
	every := s.dur.SnapshotEvery
	if every == 0 {
		return
	}
	n := s.logged.Load()
	if n-s.snapLogged.Load() < every {
		return
	}
	s.snapLogged.Store(n)
	s.Snapshot(nil) // ErrSnapshotBusy is benign here: one is running
}

// Snapshot checkpoints the tree into a compact snapshot file and truncates
// the log segments it covers. The checkpoint is fuzzy: it runs through
// TaskTree.Scan concurrently with mutations, which is safe because every
// logged operation at or below the snapshot horizon has already been
// applied to the tree when its sequence number was assigned, and replay
// re-applies everything above the horizon. done (optional) runs on a
// worker when the checkpoint (including truncation) finishes. Fully
// asynchronous — safe to call from anywhere, including tasks.
func (s *Store) Snapshot(done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if s.log == nil {
		finish(ErrNoDurability)
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		finish(ErrSnapshotBusy)
		return
	}
	finish = func(err error) {
		s.snapshotting.Store(false)
		if done != nil {
			done(err)
		}
	}
	// Rotate first so the pre-snapshot segments become truncatable.
	s.log.Rotate(func(err error) {
		if err != nil {
			finish(err)
			return
		}
		snapSeq := s.log.Seq()
		// ScanLimit resolves paged references into client values, so the
		// snapshot always holds real values — a snapshot of references
		// into a volatile page file would be unreplayable.
		s.ScanLimit(0, math.MaxUint64, 0, func(res ScanResult) {
			if res.Err != nil {
				finish(res.Err)
				return
			}
			pairs := make([]wal.KV, 0, len(res.Pairs)+1)
			for _, kv := range res.Pairs {
				pairs = append(pairs, wal.KV{Key: kv.Key, Value: kv.Value})
			}
			// Scan covers [0, MaxUint64); fetch the one key it cannot.
			s.Get(math.MaxUint64, func(r Result) {
				if r.Err != nil {
					finish(r.Err)
					return
				}
				if r.Found {
					pairs = append(pairs, wal.KV{Key: math.MaxUint64, Value: r.Value})
				}
				if werr := wal.WriteSnapshotFS(s.dur.FS, s.dur.Dir, snapSeq, pairs); werr != nil {
					finish(werr)
					return
				}
				s.log.TruncateThrough(snapSeq, finish)
			})
		})
	})
}

// Sync blocks until every previously appended WAL record is durable. A
// no-op for in-memory stores. Must not be called from a task.
func (s *Store) Sync() error {
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// Close drains in-flight operations, flushes and fsyncs the WAL, closes
// the log files, and closes the page file of a paged store. The runtime
// itself keeps running (it is shared). Must not be called from a task.
func (s *Store) Close() error {
	if s.log == nil && s.pg == nil {
		return nil
	}
	s.rt.Drain() // leaf applies + their WAL appends are queued
	var err error
	if s.log != nil {
		err = s.log.Sync() // every record durable, acks dispatched
		s.rt.Drain()       // ack tasks delivered
		if cerr := s.log.Close(); err == nil {
			err = cerr
		}
	}
	if s.pg != nil {
		s.rt.Drain() // stray frees spawned by late acks
		if cerr := s.pg.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ScanResult is a completed range scan's outcome.
type ScanResult struct {
	Pairs []blinktree.KV
	// Truncated reports that the scan hit its result cap and records past
	// the cap may exist; resume from Pairs[len(Pairs)-1].Key+1.
	Truncated bool
	// Err is non-nil when a paged store failed to resolve spilled values
	// (I/O error or page corruption); Pairs is empty then. Always nil for
	// non-paged stores.
	Err error
}

// Scan fetches all records in [from, to) asynchronously; done receives the
// sorted results.
func (s *Store) Scan(from, to uint64, done func(ScanResult)) {
	s.ScanLimit(from, to, 0, done)
}

// ScanLimit is Scan with a result cap: a positive limit stops the
// tree walk once that many records are collected (the cap propagates into
// the Blink-tree's leaf chain, so a short scan over a huge range does not
// buffer the whole range). limit <= 0 scans everything.
func (s *Store) ScanLimit(from, to uint64, limit int, done func(ScanResult)) {
	s.dispatch(func(*mxtask.Context) {
		s.tree.ScanLimit(from, to, limit, func(ctx *mxtask.Context, t *mxtask.Task) {
			op := t.Arg.(*blinktree.ScanOp)
			if s.pg == nil {
				done(ScanResult{Pairs: op.Results, Truncated: op.Truncated})
				return
			}
			s.resolveScan(ctx, op.Results, op.Truncated, done)
		})
	})
}

// GetBatch issues a batch of lookups as interleaved group descents
// (DESIGN.md §9): up to SetInterleave-width traversals share one task and
// advance round-robin, so one key's node miss is overlapped by its
// neighbors' compute.
//
// The contract is exactly that of a loop of independent Get calls, and no
// more: each fires exactly once per index, on the worker that completed
// that key's lookup. Submission order carries NO completion ordering —
// members may complete in any order relative to each other, and an early
// member's completion may run before later members are even dispatched.
// Duplicate keys are independent lookups. Callers needing ordering must
// sequence on their own completions.
func (s *Store) GetBatch(keys []uint64, each func(int, Result)) {
	if len(keys) == 0 {
		return
	}
	ops := make([]*blinktree.Op, len(keys))
	for i, k := range keys {
		i := i
		ops[i] = s.getOp(k, func(r Result) { each(i, r) })
	}
	s.dispatch(func(*mxtask.Context) { s.tree.StartBatch(ops) })
}

// SetBatch issues a batch of upserts as interleaved group descents (see
// GetBatch for the completion contract — exactly-once per index,
// unordered; in particular duplicate keys in one batch may apply in
// either order). For durable stores each completion fires only after the
// record's covering fsync — the whole batch typically shares one group
// commit.
func (s *Store) SetBatch(pairs []blinktree.KV, each func(int, Result)) {
	if len(pairs) == 0 {
		return
	}
	spilled := false
	for _, kv := range pairs {
		if s.spills(kv.Value) {
			spilled = true
			break
		}
	}
	if spilled {
		s.setBatchPaged(pairs, each)
		return
	}
	ops := make([]*blinktree.Op, len(pairs))
	for i, kv := range pairs {
		i := i
		ops[i] = s.setOp(kv.Key, kv.Value, func(r Result) { each(i, r) })
	}
	s.dispatch(func(*mxtask.Context) { s.tree.StartBatch(ops) })
	if s.log != nil {
		s.maybeSnapshot()
	}
}

// ScanSync is a blocking Scan.
func (s *Store) ScanSync(from, to uint64) ScanResult {
	ch := make(chan ScanResult, 1)
	s.Scan(from, to, func(r ScanResult) { ch <- r })
	return <-ch
}

// GetSync is a blocking Get for tests and simple clients.
func (s *Store) GetSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Get(key, func(r Result) { ch <- r })
	return <-ch
}

// SetSync is a blocking Set. For durable stores it returns only once the
// record is durable per the sync policy.
func (s *Store) SetSync(key, value uint64) Result {
	ch := make(chan Result, 1)
	s.Set(key, value, func(r Result) { ch <- r })
	return <-ch
}

// DeleteSync is a blocking Delete.
func (s *Store) DeleteSync(key uint64) Result {
	ch := make(chan Result, 1)
	s.Delete(key, func(r Result) { ch <- r })
	return <-ch
}

// Count returns the number of records (quiescent only). Use CountLive
// while operations are in flight.
func (s *Store) Count() int { return s.tree.Count() }

// CountLive counts records asynchronously through the tree's own task
// chains, so it is safe while mutations are in flight (it sees some
// serialization point of each concurrent mutation, like any scan).
func (s *Store) CountLive(done func(int)) {
	s.ScanLimit(0, math.MaxUint64, 0, func(res ScanResult) {
		n := len(res.Pairs)
		// Scan covers [0, MaxUint64); fetch the one key it cannot.
		s.Get(math.MaxUint64, func(r Result) {
			if r.Found {
				n++
			}
			done(n)
		})
	})
}

// Stats returns operation counters.
func (s *Store) Stats() Stats {
	return Stats{Gets: s.gets.Load(), Sets: s.sets.Load(), Dels: s.dels.Load()}
}

// SetInterleave sets the batched-operation group width (blinktree
// semantics: 0 restores the default, 1 disables interleaving).
func (s *Store) SetInterleave(width int) { s.tree.SetInterleave(width) }

// InterleaveStats reports the tree's interleaved group-descent counters.
func (s *Store) InterleaveStats() mxtask.InterleaveStats {
	return s.tree.InterleaveStats()
}

// Shards returns 1: a Store is the single-shard backend (Sharded is the
// N-shard one).
func (s *Store) Shards() int { return 1 }

// StatsByShard returns the one shard's counters, mirroring Sharded.
func (s *Store) StatsByShard() []Stats { return []Stats{s.Stats()} }

// Drain blocks until the store's runtime has no pending tasks. Must not
// be called from a task.
func (s *Store) Drain() { s.rt.Drain() }
