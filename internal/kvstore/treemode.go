//go:build !race

package kvstore

import "mxtasking/internal/blinktree"

// defaultTreeMode is the index's synchronization scheme. The optimistic
// cost-model choice (§4.2) performs validated racy reads by design — the
// seqlock pattern — which the Go race detector cannot model, so race-
// instrumented builds (treemode_race.go) fall back to pure
// serialize-by-scheduling, which is data-race-free by construction.
const defaultTreeMode = blinktree.TaskSyncOptimistic
