//go:build race

package kvstore

import "mxtasking/internal/blinktree"

// Under the race detector the store serializes every node access by
// scheduling (no validated racy reads), so `go test -race` exercises the
// store and its durability layer without false positives from the
// seqlock-style optimistic mode. See treemode.go for the production
// default.
const defaultTreeMode = blinktree.TaskSyncSerialized
