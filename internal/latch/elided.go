package latch

// ElidedRWLock emulates a hardware-transactional-memory (HTM) reader/writer
// latch of the kind Intel TBB offers (speculative spin-rw-mutex): readers
// execute speculatively without writing the lock word at all; only on
// conflict do they abort and retry, eventually falling back to real
// acquisition. Writers always acquire.
//
// Real HTM aborts a transaction when its read set is invalidated. Without
// ISA access we approximate the observable behaviour with a version lock:
// a speculative read validates the version after running and re-executes on
// conflict, which costs the same "wasted work on abort, zero coherence
// traffic on success" profile HTM exhibits. The critical section passed to
// ReadCritical must therefore be safe to re-execute (side-effect free until
// it succeeds), the same restriction HTM imposes in practice.
type ElidedRWLock struct {
	vl VersionLock
}

// speculationAttempts bounds optimistic retries before falling back to
// pessimistic acquisition, mirroring HTM retry heuristics.
const speculationAttempts = 8

// ReadCritical runs fn as a speculative read-only critical section.
// fn may run multiple times; only the final (validated or pessimistic)
// execution's effects should be published by the caller.
func (l *ElidedRWLock) ReadCritical(fn func()) {
	for attempt := 0; attempt < speculationAttempts; attempt++ {
		v, ok := l.vl.ReadBegin()
		if ok {
			fn()
			if l.vl.ReadValidate(v) {
				return
			}
		}
		spinWait(attempt * spinBudget)
	}
	// Fallback: acquire exclusively, which serializes with writers.
	l.vl.Lock()
	fn()
	l.vl.UnlockUnmodified()
}

// WriteCritical runs fn under the exclusive lock and publishes a new
// version, aborting concurrent speculative readers.
func (l *ElidedRWLock) WriteCritical(fn func()) {
	l.vl.Lock()
	fn()
	l.vl.Unlock()
}

// Lock acquires the underlying lock exclusively (non-speculative path).
func (l *ElidedRWLock) Lock() { l.vl.Lock() }

// Unlock releases the exclusive lock, bumping the version.
func (l *ElidedRWLock) Unlock() { l.vl.Unlock() }
