// Package latch implements the synchronization primitives that MxTasking
// selects among at runtime (paper §4.1): a test-and-test-and-set spinlock, a
// ticket lock, a reader/writer spinlock, an optimistic version lock (seqlock
// style, as used by optimistic lock coupling), and an elided latch that
// emulates the behaviour of a hardware-transactional-memory lock (optimistic
// execution with abort-and-fallback on conflict).
//
// The worker thread acquires and releases these on behalf of tasks; tasks
// themselves never name a primitive (unless they request one explicitly
// through annotations).
package latch

import (
	"runtime"
	"sync/atomic"
)

// Locker is the minimal mutual-exclusion interface shared by all latches.
type Locker interface {
	Lock()
	Unlock()
}

// RWLocker extends Locker with shared (reader) acquisition.
type RWLocker interface {
	Locker
	RLock()
	RUnlock()
}

// spinBudget is how many spins a waiter performs before yielding the
// processor. Yielding keeps single-core test environments live.
const spinBudget = 64

func spinWait(i int) {
	if i%spinBudget == spinBudget-1 {
		runtime.Gosched()
	}
}

// SpinWait performs one step of the package's standard bounded-spin
// backoff: spin for a budget of iterations, then yield the processor.
// Exported for callers implementing their own retry loops over these
// latches (e.g. inline optimistic readers).
func SpinWait(i int) { spinWait(i) }

// Spinlock is a test-and-test-and-set spinlock: the classic primitive used
// to serialize all accesses (paper §4.1, "Latches"). The zero value is
// unlocked.
type Spinlock struct {
	state atomic.Uint32
}

// Lock acquires the latch, spinning until it is free.
func (l *Spinlock) Lock() {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		spinWait(i)
	}
}

// TryLock attempts a single acquisition without spinning.
func (l *Spinlock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the latch. Calling Unlock on an unlocked Spinlock is a
// programming error and panics.
func (l *Spinlock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("latch: unlock of unlocked Spinlock")
	}
}

// TicketLock is a fair FIFO spinlock. Acquisition order equals arrival
// order, which bounds starvation under heavy contention (the regime Figure
// 12a exercises).
type TicketLock struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and spins until it is served.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	for i := 0; l.serving.Load() != ticket; i++ {
		spinWait(i)
	}
}

// Unlock passes the latch to the next ticket holder.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}

// RWSpinLock is a reader/writer spinlock with writer preference encoded in a
// single word: the low 31 bits count readers, the top bit marks a writer.
// This mirrors the folly-style RW latch the paper borrows for its thread
// baseline (§6.4).
type RWSpinLock struct {
	state atomic.Int32 // >0: reader count, -1: writer held
}

const rwWriter = -1

// Lock acquires the latch exclusively.
func (l *RWSpinLock) Lock() {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, rwWriter) {
			return
		}
		spinWait(i)
	}
}

// Unlock releases exclusive ownership.
func (l *RWSpinLock) Unlock() {
	if !l.state.CompareAndSwap(rwWriter, 0) {
		panic("latch: Unlock of RWSpinLock not held exclusively")
	}
}

// RLock acquires the latch in shared mode.
func (l *RWSpinLock) RLock() {
	for i := 0; ; i++ {
		s := l.state.Load()
		if s >= 0 && l.state.CompareAndSwap(s, s+1) {
			return
		}
		spinWait(i)
	}
}

// RUnlock releases one shared acquisition.
func (l *RWSpinLock) RUnlock() {
	if l.state.Add(-1) < 0 {
		panic("latch: RUnlock of RWSpinLock without RLock")
	}
}

// TryLock attempts a single exclusive acquisition without spinning.
func (l *RWSpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, rwWriter)
}
