package latch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// exercise hammers a Locker with concurrent increments and checks the final
// count, which catches lost updates from broken mutual exclusion.
func exercise(t *testing.T, l Locker) {
	t.Helper()
	const goroutines = 8
	const perG = 10000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, goroutines*perG)
	}
}

func TestSpinlockMutualExclusion(t *testing.T)   { exercise(t, &Spinlock{}) }
func TestTicketLockMutualExclusion(t *testing.T) { exercise(t, &TicketLock{}) }
func TestRWSpinLockMutualExclusion(t *testing.T) { exercise(t, &RWSpinLock{}) }
func TestVersionLockMutualExclusion(t *testing.T) {
	exercise(t, &VersionLock{})
}

func TestSpinlockTryLock(t *testing.T) {
	var l Spinlock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinlockUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked Spinlock did not panic")
		}
	}()
	var l Spinlock
	l.Unlock()
}

func TestRWSpinLockReadersShareWritersExclude(t *testing.T) {
	var l RWSpinLock
	l.RLock()
	l.RLock() // second reader must not block
	if l.TryLock() {
		t.Fatal("writer acquired while readers held")
	}
	l.RUnlock()
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("writer could not acquire free lock")
	}
	l.Unlock()
}

func TestRWSpinLockConcurrentReaders(t *testing.T) {
	var l RWSpinLock
	var wg sync.WaitGroup
	shared := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Lock()
				shared++
				l.Unlock()
				l.RLock()
				_ = shared
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 4*5000 {
		t.Fatalf("shared = %d, want %d", shared, 4*5000)
	}
}

func TestVersionLockDetectsWrite(t *testing.T) {
	var l VersionLock
	v, ok := l.ReadBegin()
	if !ok {
		t.Fatal("ReadBegin failed on unlocked lock")
	}
	l.Lock()
	if _, ok := l.ReadBegin(); ok {
		t.Fatal("ReadBegin succeeded while write-locked")
	}
	l.Unlock()
	if l.ReadValidate(v) {
		t.Fatal("ReadValidate passed despite intervening write")
	}
	v2, ok := l.ReadBegin()
	if !ok {
		t.Fatal("ReadBegin failed after unlock")
	}
	if !l.ReadValidate(v2) {
		t.Fatal("ReadValidate failed without intervening write")
	}
}

func TestVersionLockUnmodifiedRelease(t *testing.T) {
	var l VersionLock
	v, _ := l.ReadBegin()
	l.Lock()
	l.UnlockUnmodified()
	if !l.ReadValidate(v) {
		t.Fatal("ReadValidate failed after UnlockUnmodified (version must be unchanged)")
	}
}

func TestVersionLockUpgrade(t *testing.T) {
	var l VersionLock
	v, _ := l.ReadBegin()
	if !l.TryLockVersion(v) {
		t.Fatal("upgrade of untouched version failed")
	}
	l.Unlock()
	if l.TryLockVersion(v) {
		t.Fatal("upgrade with stale version succeeded")
	}
}

func TestVersionLockConcurrentReadersSeeConsistentPairs(t *testing.T) {
	// A writer keeps two fields equal under the lock; optimistic readers
	// must never observe them unequal in a validated read. The fields are
	// atomics because optimistic reads intentionally race with the writer
	// (the validation, not the memory model, provides consistency).
	var l VersionLock
	var a, b atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 50000; i++ {
			l.Lock()
			a.Store(i)
			b.Store(i)
			l.Unlock()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				v, ok := l.ReadBegin()
				if !ok {
					continue
				}
				ra, rb := a.Load(), b.Load()
				if l.ReadValidate(v) && ra != rb {
					t.Errorf("validated read observed torn pair a=%d b=%d", ra, rb)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestElidedRWLockSpeculativeRead(t *testing.T) {
	var l ElidedRWLock
	x := 41
	got := 0
	l.ReadCritical(func() { got = x })
	if got != 41 {
		t.Fatalf("speculative read = %d, want 41", got)
	}
	l.WriteCritical(func() { x = 42 })
	l.ReadCritical(func() { got = x })
	if got != 42 {
		t.Fatalf("read after write = %d, want 42", got)
	}
}

func TestElidedRWLockConcurrent(t *testing.T) {
	var l ElidedRWLock
	var a, b atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 20000; i++ {
			l.WriteCritical(func() { a.Store(i); b.Store(i) })
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				var ra, rb int64
				l.ReadCritical(func() { ra, rb = a.Load(), b.Load() })
				if ra != rb {
					t.Errorf("elided read observed torn pair a=%d b=%d", ra, rb)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTicketLockFairness checks FIFO granting: under contention, the
// spread of per-goroutine acquisition counts stays tight (a TTS spinlock
// shows heavy skew here).
func TestTicketLockFairness(t *testing.T) {
	var l TicketLock
	const goroutines = 4
	const total = 20000
	counts := make([]int64, goroutines)
	var claimed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				if claimed.Add(1) > total {
					return
				}
				l.Lock()
				counts[g]++
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		t.Fatalf("acquisitions = %d, want %d", sum, total)
	}
	// On a single-CPU host the Go scheduler may serialize goroutines, so
	// only assert that no goroutine starved entirely while others ran.
	for g, c := range counts {
		if c == 0 && sum > int64(goroutines)*100 {
			t.Logf("goroutine %d acquired 0 times (host scheduling artifact)", g)
		}
	}
}

// TestElidedLockFallback forces repeated conflicts so the speculative
// reader takes the pessimistic fallback path and still completes.
func TestElidedLockFallback(t *testing.T) {
	var l ElidedRWLock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer churn invalidates every speculation window
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.WriteCritical(func() {})
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		done := false
		l.ReadCritical(func() { done = true })
		if !done {
			t.Fatal("read critical section never executed")
		}
	}
	close(stop)
	wg.Wait()
}

func TestVersionLockAccessors(t *testing.T) {
	var l VersionLock
	if l.Locked() {
		t.Fatal("fresh lock reports locked")
	}
	v0 := l.Version()
	l.Lock()
	if !l.Locked() {
		t.Fatal("held lock reports unlocked")
	}
	l.Unlock()
	if l.Locked() || l.Version() == v0 {
		t.Fatal("Unlock must clear the bit and bump the version")
	}
}

func TestVersionLockUnlockPanics(t *testing.T) {
	for name, f := range map[string]func(*VersionLock){
		"Unlock":           func(l *VersionLock) { l.Unlock() },
		"UnlockUnmodified": func(l *VersionLock) { l.UnlockUnmodified() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of unlocked VersionLock did not panic", name)
				}
			}()
			var l VersionLock
			f(&l)
		}()
	}
}

func TestRWSpinLockPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock without Lock did not panic")
			}
		}()
		var l RWSpinLock
		l.Unlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RUnlock without RLock did not panic")
			}
		}()
		var l RWSpinLock
		l.RUnlock()
	}()
}

func TestElidedRWLockDirectLockUnlock(t *testing.T) {
	var l ElidedRWLock
	l.Lock()
	done := make(chan int, 1)
	go func() {
		x := 0
		l.ReadCritical(func() { x = 7 })
		done <- x
	}()
	l.Unlock()
	if got := <-done; got != 7 {
		t.Fatalf("reader after writer unlock got %d", got)
	}
}

func TestSpinWaitYields(t *testing.T) {
	// Exercise the yield path of contended spinning: one goroutine holds
	// the lock long enough that a waiter spins past the budget.
	var l Spinlock
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.Lock() // must spin through spinWait
		l.Unlock()
		close(acquired)
	}()
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	l.Unlock()
	<-acquired
}
