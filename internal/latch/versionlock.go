package latch

import "sync/atomic"

// VersionLock is an optimistic version lock (seqlock family), the primitive
// behind "Optimistic Versioning" in paper §4.1 and behind optimistic lock
// coupling in the BtreeOLC baseline.
//
// The 64-bit word encodes a version counter in the upper bits and a locked
// flag in bit 0. Readers sample the version before and after reading; if the
// versions match and neither sample had the locked bit set, the read was
// consistent. Writers acquire the lock bit and bump the version on release,
// which invalidates concurrent readers.
type VersionLock struct {
	word atomic.Uint64
}

const lockedBit = 1

// ReadBegin samples the version for an optimistic read. ok is false when a
// writer currently holds the lock, in which case the caller should back off
// and retry.
func (l *VersionLock) ReadBegin() (version uint64, ok bool) {
	v := l.word.Load()
	if v&lockedBit != 0 {
		return 0, false
	}
	return v, true
}

// ReadValidate reports whether a read that began at version was free of
// concurrent writes.
func (l *VersionLock) ReadValidate(version uint64) bool {
	return l.word.Load() == version
}

// Lock acquires the write lock, spinning until available.
func (l *VersionLock) Lock() {
	for i := 0; ; i++ {
		v := l.word.Load()
		if v&lockedBit == 0 && l.word.CompareAndSwap(v, v|lockedBit) {
			return
		}
		spinWait(i)
	}
}

// TryLockVersion atomically upgrades an optimistic read at the given version
// to a write lock. It fails if any writer intervened since ReadBegin.
func (l *VersionLock) TryLockVersion(version uint64) bool {
	if version&lockedBit != 0 {
		return false
	}
	return l.word.CompareAndSwap(version, version|lockedBit)
}

// Unlock releases the write lock and increments the version so concurrent
// optimistic readers detect the write.
func (l *VersionLock) Unlock() {
	v := l.word.Load()
	if v&lockedBit == 0 {
		panic("latch: Unlock of unlocked VersionLock")
	}
	l.word.Store(v + 1) // clears the lock bit and bumps the version
}

// UnlockUnmodified releases the write lock without changing the version.
// Use when the writer turned out not to modify the protected object, so
// optimistic readers need not retry.
func (l *VersionLock) UnlockUnmodified() {
	v := l.word.Load()
	if v&lockedBit == 0 {
		panic("latch: UnlockUnmodified of unlocked VersionLock")
	}
	l.word.Store(v &^ lockedBit)
}

// Version returns the current raw word; useful for tests and diagnostics.
func (l *VersionLock) Version() uint64 { return l.word.Load() }

// Locked reports whether a writer currently holds the lock.
func (l *VersionLock) Locked() bool { return l.word.Load()&lockedBit != 0 }
