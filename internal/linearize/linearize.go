// Package linearize is a Wing & Gong-style linearizability checker for
// single-key KV histories, in the spirit of Porcupine (Athalye 2017) and
// the checkers CoroBase/Silo-class engines validate against: a history of
// invoke/return events over Get/Set/Delete operations is partitioned by
// key (operations on distinct keys commute, so each key checks
// independently), and each per-key sub-history is searched for a valid
// sequential witness with a memoized depth-first search.
//
// The model is a single register per key that is either absent or holds a
// uint64 value. An operation may be linearized at any point between its
// invoke and return timestamps; a *pending* operation (invoked, but the
// client never saw a successful return — the signature of a crash) may
// take effect at any later point or never, so the search explores both an
// apply branch and a skip branch for it. This is exactly the durability
// contract the WAL documents: an acknowledged mutation must be visible, an
// unacknowledged one is allowed to be present or absent, but the value
// sequence must always be explainable by the operations that were issued.
package linearize

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// OpKind identifies an operation in a history.
type OpKind uint8

const (
	// OpGet reads a key; Output/Found carry the observed result.
	OpGet OpKind = iota + 1
	// OpSet writes Input to a key; Found reports whether the key
	// existed before (the store surfaces this, so the checker uses it).
	OpSet
	// OpDelete removes a key; Found reports whether it existed.
	OpDelete
)

// String names the kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one operation of a recorded history.
type Op struct {
	// Client identifies the issuing client (diagnostics only; the
	// checker uses timestamps, not client identity).
	Client int
	Kind   OpKind
	Key    uint64
	// Input is the value written (OpSet).
	Input uint64
	// Output is the value observed (OpGet with Found true).
	Output uint64
	// Found is the presence observation: OpGet saw the key; OpSet
	// overwrote an existing key; OpDelete removed an existing key.
	// Unchecked for pending operations (the client never saw it).
	Found bool
	// Call and Return are logical timestamps from a shared monotonic
	// clock. A pending op's Return is ignored.
	Call   int64
	Return int64
	// Pending marks an operation whose successful return the client
	// never observed: it may have taken effect at any point after Call,
	// or not at all.
	Pending bool
}

func (o Op) String() string {
	tail := ""
	switch {
	case o.Pending:
		tail = " pending"
	case o.Kind == OpGet && o.Found:
		tail = fmt.Sprintf(" -> %d", o.Output)
	case o.Kind == OpGet:
		tail = " -> absent"
	case o.Found:
		tail = " (existed)"
	}
	return fmt.Sprintf("c%d %s(%d%s)%s [%d,%d]", o.Client, o.Kind, o.Key,
		map[bool]string{true: fmt.Sprintf("=%d", o.Input), false: ""}[o.Kind == OpSet], tail, o.Call, o.Return)
}

// Result is a whole-history verdict.
type Result struct {
	// Ok is true when every per-key sub-history is linearizable.
	Ok bool
	// BadKeys lists the keys whose sub-histories admit no valid
	// linearization, ascending.
	BadKeys []uint64
}

func (r Result) String() string {
	if r.Ok {
		return "linearizable"
	}
	return fmt.Sprintf("NOT linearizable: keys %v", r.BadKeys)
}

// Check partitions history by key and checks each sub-history.
func Check(history []Op) Result {
	byKey := make(map[uint64][]Op)
	for _, op := range history {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	res := Result{Ok: true}
	for key, ops := range byKey {
		if !CheckKey(ops) {
			res.Ok = false
			res.BadKeys = append(res.BadKeys, key)
		}
	}
	sort.Slice(res.BadKeys, func(i, j int) bool { return res.BadKeys[i] < res.BadKeys[j] })
	return res
}

// regState is the sequential specification's state: one optional value.
type regState struct {
	present bool
	value   uint64
}

// apply attempts to linearize op against st. ok reports whether the
// op's recorded observations are consistent with st; next is the state
// afterwards. Pending ops have no recorded observations to contradict.
func apply(st regState, op Op) (next regState, ok bool) {
	switch op.Kind {
	case OpGet:
		if op.Found != st.present || (st.present && op.Output != st.value) {
			return st, false
		}
		return st, true
	case OpSet:
		if !op.Pending && op.Found != st.present {
			return st, false
		}
		return regState{present: true, value: op.Input}, true
	case OpDelete:
		if !op.Pending && op.Found != st.present {
			return st, false
		}
		return regState{}, true
	default:
		return st, false
	}
}

// CheckKey reports whether one key's operations admit a linearization.
// All ops must share a key. Exponential in the worst case but memoized
// on (remaining-set, register state), which keeps recorded histories
// from real runs fast: concurrency windows are short and values few.
func CheckKey(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	sorted := append([]Op(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })

	words := (n + 63) / 64
	remaining := make([]uint64, words)
	for i := 0; i < n; i++ {
		remaining[i/64] |= 1 << (i % 64)
	}
	left := n

	// minReturn is the earliest completed-op return among remaining ops:
	// only ops invoked before it are linearization candidates (an op
	// that returned before another was invoked must precede it).
	minReturn := func() int64 {
		m := int64(1)<<62 - 1
		for i := 0; i < n; i++ {
			if remaining[i/64]&(1<<(i%64)) != 0 && !sorted[i].Pending && sorted[i].Return < m {
				m = sorted[i].Return
			}
		}
		return m
	}

	visited := make(map[string]struct{})
	seen := func(st regState) bool {
		key := make([]byte, words*8+9)
		for i, w := range remaining {
			binary.LittleEndian.PutUint64(key[i*8:], w)
		}
		if st.present {
			key[words*8] = 1
		}
		binary.LittleEndian.PutUint64(key[words*8+1:], st.value)
		k := string(key)
		if _, ok := visited[k]; ok {
			return true
		}
		visited[k] = struct{}{}
		return false
	}

	var dfs func(st regState) bool
	dfs = func(st regState) bool {
		if left == 0 {
			return true
		}
		if seen(st) {
			return false
		}
		horizon := minReturn()
		for i := 0; i < n; i++ {
			bit := uint64(1) << (i % 64)
			if remaining[i/64]&bit == 0 {
				continue
			}
			op := sorted[i]
			if op.Call > horizon {
				break // sorted by Call: no later op qualifies either
			}
			remaining[i/64] &^= bit
			left--
			if next, ok := apply(st, op); ok && dfs(next) {
				return true
			}
			if op.Pending && dfs(st) {
				return true // the pending op never took effect
			}
			remaining[i/64] |= bit
			left++
		}
		return false
	}
	return dfs(regState{})
}
