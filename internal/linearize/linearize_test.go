package linearize

import (
	"math/rand"
	"sync"
	"testing"
)

// ops below use explicit timestamps; even = calls, odd = returns, so
// windows are easy to read. Key is always 1 unless stated.

func set(v uint64, found bool, call, ret int64) Op {
	return Op{Kind: OpSet, Key: 1, Input: v, Found: found, Call: call, Return: ret}
}
func get(v uint64, found bool, call, ret int64) Op {
	return Op{Kind: OpGet, Key: 1, Output: v, Found: found, Call: call, Return: ret}
}
func del(found bool, call, ret int64) Op {
	return Op{Kind: OpDelete, Key: 1, Found: found, Call: call, Return: ret}
}
func pending(op Op) Op {
	op.Pending = true
	op.Return = 0
	return op
}

func TestCheckKeyFixtures(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		want bool
	}{
		{"empty", nil, true},
		{"single write then read", []Op{
			set(7, false, 1, 2), get(7, true, 3, 4),
		}, true},
		{"read of never-written value", []Op{
			set(7, false, 1, 2), get(9, true, 3, 4),
		}, false},
		{"lost acked write", []Op{
			set(7, false, 1, 2), get(0, false, 3, 4),
		}, false},
		{"stale read after overwrite", []Op{
			set(1, false, 1, 2), set(2, true, 3, 4), get(1, true, 5, 6),
		}, false},
		{"concurrent read may order before write", []Op{
			set(1, false, 1, 6), get(0, false, 2, 3),
		}, true},
		{"concurrent read may order after write", []Op{
			set(1, false, 1, 6), get(1, true, 2, 3),
		}, true},
		{"delete then absent read", []Op{
			set(1, false, 1, 2), del(true, 3, 4), get(0, false, 5, 6),
		}, true},
		{"delete of missing key claims existence", []Op{
			del(true, 1, 2),
		}, false},
		{"set found flag must match prior state", []Op{
			set(1, false, 1, 2), set(2, false, 3, 4),
		}, false},
		{"two concurrent sets, read decides the order", []Op{
			set(1, false, 1, 10), set(2, false, 2, 9), get(2, true, 11, 12),
		}, false}, // one of the overlapping sets must observe Found=true
		{"two concurrent sets with consistent founds", []Op{
			set(1, false, 1, 10), set(2, true, 2, 9), get(2, true, 11, 12),
		}, true},
		{"pending write may be visible", []Op{
			pending(set(5, false, 1, 0)), get(5, true, 2, 3),
		}, true},
		{"pending write may be invisible", []Op{
			pending(set(5, false, 1, 0)), get(0, false, 2, 3),
		}, true},
		{"pending write cannot flicker", []Op{
			pending(set(5, false, 1, 0)), get(5, true, 2, 3), get(0, false, 4, 5),
		}, false},
		{"value cannot resurrect after delete", []Op{
			set(3, false, 1, 2), del(true, 3, 4), get(3, true, 5, 6),
		}, false},
		{"real-time order is respected", []Op{
			// get returned before set was invoked, so it cannot observe it
			get(4, true, 1, 2), set(4, false, 3, 4),
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckKey(tc.ops); got != tc.want {
				t.Fatalf("CheckKey = %v, want %v for %v", got, tc.want, tc.ops)
			}
		})
	}
}

// TestCheckPartitionsByKey: a violation on one key must not poison
// others, and the verdict names the offending key.
func TestCheckPartitionsByKey(t *testing.T) {
	h := []Op{
		{Kind: OpSet, Key: 1, Input: 7, Call: 1, Return: 2},
		{Kind: OpGet, Key: 1, Output: 7, Found: true, Call: 3, Return: 4},
		{Kind: OpSet, Key: 2, Input: 9, Call: 5, Return: 6},
		{Kind: OpGet, Key: 2, Output: 0, Found: false, Call: 7, Return: 8}, // lost write
	}
	res := Check(h)
	if res.Ok {
		t.Fatal("accepted a history with a lost acked write on key 2")
	}
	if len(res.BadKeys) != 1 || res.BadKeys[0] != 2 {
		t.Fatalf("BadKeys = %v, want [2]", res.BadKeys)
	}
}

// TestRecorderSequential: a recorded strictly sequential run over a
// reference map must always be accepted.
func TestRecorderSequential(t *testing.T) {
	rec := NewRecorder()
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		k := rng.Uint64() % 6
		switch rng.Intn(4) {
		case 0:
			_, found := ref[k]
			id := rec.Invoke(0, OpDelete, k, 0)
			delete(ref, k)
			rec.Return(id, 0, found, nil)
		case 1:
			v, found := ref[k]
			id := rec.Invoke(0, OpGet, k, 0)
			rec.Return(id, v, found, nil)
		default:
			v := rng.Uint64() % 100
			_, found := ref[k]
			id := rec.Invoke(0, OpSet, k, v)
			ref[k] = v
			rec.Return(id, v, found, nil)
		}
	}
	if res := Check(rec.History()); !res.Ok {
		t.Fatalf("sequential reference run rejected: %v", res)
	}
}

// TestRecorderConcurrentAtomicMap: concurrent clients over a mutex-held
// map are linearizable by construction; the recorder + checker must
// agree. This is the checker's soundness smoke test under real
// parallelism (the real-runtime acceptance run lives in kvstore's chaos
// tests).
func TestRecorderConcurrentAtomicMap(t *testing.T) {
	rec := NewRecorder()
	var mu sync.Mutex
	ref := make(map[uint64]uint64)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 7))
			for i := 0; i < 150; i++ {
				k := rng.Uint64() % 4
				switch rng.Intn(4) {
				case 0:
					id := rec.Invoke(c, OpDelete, k, 0)
					mu.Lock()
					_, found := ref[k]
					delete(ref, k)
					mu.Unlock()
					rec.Return(id, 0, found, nil)
				case 1:
					id := rec.Invoke(c, OpGet, k, 0)
					mu.Lock()
					v, found := ref[k]
					mu.Unlock()
					rec.Return(id, v, found, nil)
				default:
					v := rng.Uint64() % 50
					id := rec.Invoke(c, OpSet, k, v)
					mu.Lock()
					_, found := ref[k]
					ref[k] = v
					mu.Unlock()
					rec.Return(id, v, found, nil)
				}
			}
		}(c)
	}
	wg.Wait()
	if res := Check(rec.History()); !res.Ok {
		t.Fatalf("linearizable-by-construction run rejected: %v", res)
	}
}

// TestRecorderErrorStaysPending: a failed mutation is indeterminate and
// must be kept pending; a failed read is dropped.
func TestRecorderErrorStaysPending(t *testing.T) {
	rec := NewRecorder()
	idSet := rec.Invoke(0, OpSet, 1, 5)
	rec.Return(idSet, 0, false, errSentinel)
	idGet := rec.Invoke(0, OpGet, 1, 0)
	rec.Return(idGet, 0, false, errSentinel)
	h := rec.History()
	if len(h) != 1 {
		t.Fatalf("history %v, want just the pending set", h)
	}
	if !h[0].Pending || h[0].Kind != OpSet {
		t.Fatalf("errored set not pending: %v", h[0])
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }
