package linearize

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder captures a concurrent operation history with a shared
// monotonic logical clock. Invoke must be called before the operation can
// take effect and Return after its outcome is known, so the recorded
// [Call, Return] window brackets the true linearization point.
//
// The recorder survives its store: after a crash, instrument the
// recovered store with the same recorder and the clock keeps advancing,
// so pre- and post-crash operations merge into one checkable history.
type Recorder struct {
	clock atomic.Int64

	mu     sync.Mutex
	nextID int64
	ops    map[int64]*Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{ops: make(map[int64]*Op)}
}

// Now returns the current clock value. Use it to mark phase boundaries
// (e.g. the crash) in the recorded timeline.
func (r *Recorder) Now() int64 { return r.clock.Load() }

// Invoke records an operation's start and returns its id for Return.
func (r *Recorder) Invoke(client int, kind OpKind, key, input uint64) int64 {
	call := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := r.nextID
	r.ops[id] = &Op{
		Client:  client,
		Kind:    kind,
		Key:     key,
		Input:   input,
		Call:    call,
		Pending: true,
	}
	return id
}

// Return records an operation's observed outcome. A non-nil err leaves
// the operation pending: the client saw a failure, so whether the
// mutation took effect (it may have reached the log before the fault) is
// unknown — exactly what Pending models.
func (r *Recorder) Return(id int64, output uint64, found bool, err error) {
	ret := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[id]
	if op == nil || err != nil {
		return
	}
	op.Output, op.Found = output, found
	op.Return = ret
	op.Pending = false
}

// History returns the recorded operations sorted by Call time. Pending
// reads are dropped (their outcome was never observed, so they constrain
// nothing); pending mutations are kept with Pending set.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, 0, len(r.ops))
	for _, op := range r.ops {
		if op.Pending && op.Kind == OpGet {
			continue
		}
		out = append(out, *op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call < out[j].Call })
	return out
}

// Len returns the number of recorded operations (pending included).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
