// Bounded-staleness checking for replica reads.
//
// Replica reads are not linearizable — they may lag the primary — but the
// replication design still makes a checkable promise: a replica serves the
// store state as of some applied sequence number, applied prefixes are
// gapless prefixes of the primary's log, and the server rejects reads
// whose lag exceeds the client's bound. A replica read is therefore
// correct iff the value it observed is explained by SOME sequence number
// within the window the server stamped on the reply: at least the
// replica's applied watermark when the read was admitted, at most the
// watermark when the reply was built. The authority for "state as of seq
// S" is the surviving primary's log, replayed after the run.
package linearize

import "fmt"

// LogWrite is one record of the authoritative (post-run, surviving
// primary) log timeline, in sequence order.
type LogWrite struct {
	Seq    uint64
	Key    uint64
	Value  uint64
	Delete bool
}

// StaleRead is one replica read with the sequence window the server
// stamped on its reply.
type StaleRead struct {
	Key   uint64
	Value uint64
	Found bool
	// SeqLo and SeqHi bound the applied sequence number the read could
	// have been served at: applied watermark at admit, watermark at reply.
	SeqLo, SeqHi uint64
	// Lag is the primary-durable minus applied distance the server
	// observed when serving; Bound is the client's max-lag request. The
	// checker verifies the server honored the bound.
	Lag, Bound uint64
	// Replica names the serving node (diagnostics only).
	Replica string
}

func (r StaleRead) String() string {
	val := "absent"
	if r.Found {
		val = fmt.Sprintf("%d", r.Value)
	}
	return fmt.Sprintf("stale-read key=%d -> %s window=[%d,%d] lag=%d bound=%d replica=%s",
		r.Key, val, r.SeqLo, r.SeqHi, r.Lag, r.Bound, r.Replica)
}

// StaleResult reports a bounded-staleness check.
type StaleResult struct {
	Ok bool
	// Bad indexes the reads (into the input slice) that no sequence
	// number in their window explains, or that exceeded their lag bound.
	Bad []int
	// Reason describes each bad read, parallel to Bad.
	Reason []string
}

// CheckBoundedStale verifies every replica read against the authoritative
// log: the observed (value, presence) must equal the key's state at some
// sequence number within [SeqLo, SeqHi], and the served lag must be within
// the requested bound. The log must be in ascending Seq order (gapless not
// required for the check itself, but that is what the WAL provides).
func CheckBoundedStale(log []LogWrite, reads []StaleRead) StaleResult {
	// Per-key version chains: the state of a key as of S is the last
	// entry with Seq <= S (or "absent, zero" when none).
	chains := make(map[uint64][]version)
	var lastSeq uint64
	for _, w := range log {
		if w.Seq < lastSeq {
			return StaleResult{Ok: false, Bad: []int{-1},
				Reason: []string{fmt.Sprintf("log out of order at seq %d after %d", w.Seq, lastSeq)}}
		}
		lastSeq = w.Seq
		chains[w.Key] = append(chains[w.Key], version{seq: w.Seq, value: w.Value, present: !w.Delete})
	}

	res := StaleResult{Ok: true}
	for i, r := range reads {
		if r.Bound != 0 && r.Lag > r.Bound {
			res.Ok = false
			res.Bad = append(res.Bad, i)
			res.Reason = append(res.Reason, fmt.Sprintf("served lag %d exceeds bound %d: %v", r.Lag, r.Bound, r))
			continue
		}
		if r.SeqHi < r.SeqLo {
			res.Ok = false
			res.Bad = append(res.Bad, i)
			res.Reason = append(res.Reason, fmt.Sprintf("inverted window: %v", r))
			continue
		}
		if !staleReadExplained(chains[r.Key], r) {
			res.Ok = false
			res.Bad = append(res.Bad, i)
			res.Reason = append(res.Reason, fmt.Sprintf("no seq in window explains observation: %v", r))
		}
	}
	return res
}

// staleReadExplained reports whether some state of the key's version chain
// within the read's window matches the observation. Candidate states are
// the state as of SeqLo plus every version that lands inside the window.
func staleReadExplained(chain []version, r StaleRead) bool {
	// State as of SeqLo: last version with seq <= SeqLo.
	var at version // zero value: absent
	for _, v := range chain {
		if v.seq > r.SeqLo {
			break
		}
		at = v
	}
	if matches(at, r) {
		return true
	}
	for _, v := range chain {
		if v.seq <= r.SeqLo {
			continue
		}
		if v.seq > r.SeqHi {
			break
		}
		if matches(v, r) {
			return true
		}
	}
	return false
}

// version is one entry of a key's chain: its state from seq onward (until
// the next version).
type version struct {
	seq     uint64
	value   uint64
	present bool
}

func matches(v version, r StaleRead) bool {
	if !v.present {
		return !r.Found
	}
	return r.Found && v.value == r.Value
}
