package linearize

import "testing"

// timeline: seq 1: k1=10, seq 2: k2=20, seq 3: k1=11, seq 4: del k2,
// seq 5: k1=12.
func staleLog() []LogWrite {
	return []LogWrite{
		{Seq: 1, Key: 1, Value: 10},
		{Seq: 2, Key: 2, Value: 20},
		{Seq: 3, Key: 1, Value: 11},
		{Seq: 4, Key: 2, Delete: true},
		{Seq: 5, Key: 1, Value: 12},
	}
}

func TestBoundedStaleAccepts(t *testing.T) {
	reads := []StaleRead{
		// Exact states at single points.
		{Key: 1, Value: 10, Found: true, SeqLo: 1, SeqHi: 2},
		{Key: 1, Value: 11, Found: true, SeqLo: 3, SeqHi: 4},
		{Key: 1, Value: 12, Found: true, SeqLo: 5, SeqHi: 5},
		// A window spanning several versions: any of them explains.
		{Key: 1, Value: 10, Found: true, SeqLo: 1, SeqHi: 5},
		{Key: 1, Value: 12, Found: true, SeqLo: 1, SeqHi: 5},
		// Absence before creation and after deletion.
		{Key: 2, Found: false, SeqLo: 0, SeqHi: 1},
		{Key: 2, Found: false, SeqLo: 4, SeqHi: 9},
		// Key never written: absent at any window.
		{Key: 99, Found: false, SeqLo: 0, SeqHi: 100},
		// The state-as-of-SeqLo candidate: version landed before the
		// window opened and is still current inside it.
		{Key: 2, Value: 20, Found: true, SeqLo: 3, SeqHi: 3},
		// Lag within bound.
		{Key: 1, Value: 12, Found: true, SeqLo: 5, SeqHi: 5, Lag: 3, Bound: 8},
	}
	res := CheckBoundedStale(staleLog(), reads)
	if !res.Ok {
		t.Fatalf("valid reads rejected: %v", res.Reason)
	}
}

func TestBoundedStaleRejectsUnexplainedValue(t *testing.T) {
	cases := []StaleRead{
		// Value from outside the window (too old).
		{Key: 1, Value: 10, Found: true, SeqLo: 3, SeqHi: 4},
		// Value from the future of the window.
		{Key: 1, Value: 12, Found: true, SeqLo: 1, SeqHi: 4},
		// Value never written at all.
		{Key: 1, Value: 77, Found: true, SeqLo: 0, SeqHi: 100},
		// Claims absence while the key existed throughout the window.
		{Key: 1, Found: false, SeqLo: 3, SeqHi: 5},
		// Claims presence while the key was deleted throughout.
		{Key: 2, Value: 20, Found: true, SeqLo: 5, SeqHi: 9},
	}
	for i, r := range cases {
		res := CheckBoundedStale(staleLog(), []StaleRead{r})
		if res.Ok {
			t.Errorf("case %d: invalid read %v accepted", i, r)
		}
	}
}

func TestBoundedStaleRejectsLagOverBound(t *testing.T) {
	res := CheckBoundedStale(staleLog(), []StaleRead{
		{Key: 1, Value: 12, Found: true, SeqLo: 5, SeqHi: 5, Lag: 9, Bound: 4},
	})
	if res.Ok {
		t.Fatal("lag over bound accepted")
	}
}

func TestBoundedStaleRejectsInvertedWindowAndBadLog(t *testing.T) {
	if res := CheckBoundedStale(staleLog(), []StaleRead{
		{Key: 1, Value: 11, Found: true, SeqLo: 4, SeqHi: 3},
	}); res.Ok {
		t.Fatal("inverted window accepted")
	}
	if res := CheckBoundedStale([]LogWrite{{Seq: 5, Key: 1}, {Seq: 4, Key: 1}}, nil); res.Ok {
		t.Fatal("out-of-order log accepted")
	}
}

func TestBoundedStaleReportsIndices(t *testing.T) {
	reads := []StaleRead{
		{Key: 1, Value: 10, Found: true, SeqLo: 1, SeqHi: 1}, // ok
		{Key: 1, Value: 12, Found: true, SeqLo: 1, SeqHi: 1}, // bad
		{Key: 2, Value: 20, Found: true, SeqLo: 2, SeqHi: 3}, // ok
	}
	res := CheckBoundedStale(staleLog(), reads)
	if res.Ok || len(res.Bad) != 1 || res.Bad[0] != 1 {
		t.Fatalf("Bad=%v Reason=%v", res.Bad, res.Reason)
	}
}
