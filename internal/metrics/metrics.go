// Package metrics provides the small measurement helpers used by the
// real-runtime benchmarks and the command-line tools: monotonic stopwatch
// throughput meters and fixed-range histograms. Everything is
// allocation-free on the hot path.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one event.
func (c *Counter) Inc() { c.n.Add(1) }

// Add records n events.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the events recorded so far.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge tracks an instantaneous level (e.g. requests in flight) and its
// high-water mark. The zero value is ready to use.
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Inc raises the level by one and returns the new value.
func (g *Gauge) Inc() int64 {
	v := g.cur.Add(1)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.cur.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// IntHistogram is a fixed-bucket histogram over non-negative integer
// samples (queue depths, batch sizes) with power-of-two bucket boundaries:
// bucket i covers [2^i, 2^(i+1)). Allocation-free and concurrency-safe.
type IntHistogram struct {
	buckets [32]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one sample.
func (h *IntHistogram) Observe(v uint64) {
	i := 0
	for x := v; x > 1 && i < len(h.buckets)-1; x >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples.
func (h *IntHistogram) Count() uint64 { return h.count.Load() }

// Mean returns the average sample.
func (h *IntHistogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// bucket boundaries (at most 2x the true value).
func (h *IntHistogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return 1
			}
			return uint64(1) << uint(i+1)
		}
	}
	return uint64(1) << uint(len(h.buckets))
}

// String summarizes the histogram.
func (h *IntHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Throughput measures operations per second over a wall-clock interval.
type Throughput struct {
	ops   atomic.Uint64
	start time.Time
}

// Start begins (or restarts) the measurement window.
func (t *Throughput) Start() {
	t.ops.Store(0)
	t.start = time.Now()
}

// Add records n completed operations. Safe for concurrent use.
func (t *Throughput) Add(n uint64) { t.ops.Add(n) }

// Ops returns the operations recorded so far.
func (t *Throughput) Ops() uint64 { return t.ops.Load() }

// PerSecond returns the rate since Start.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / elapsed
}

// Mops returns the rate in million operations per second.
func (t *Throughput) Mops() float64 { return t.PerSecond() / 1e6 }

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries in nanoseconds: bucket i covers [2^i, 2^(i+1)) ns.
type Histogram struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := 0
	for v := ns; v > 1 && i < len(h.buckets)-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average duration.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// bucket boundaries.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(uint64(1) << uint(len(h.buckets)))
}

// Summary is a point-in-time percentile export of a Histogram. The
// percentile values are upper bounds from the power-of-two bucket
// boundaries (at most 2× the true latency).
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Summary captures the histogram's count, mean, and p50/p95/p99. Safe to
// call while observations continue; the snapshot may mix in a few
// observations that arrive during the call.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50<=%v p95<=%v p99<=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}
