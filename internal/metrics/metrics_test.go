package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestThroughput(t *testing.T) {
	var th Throughput
	th.Start()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				th.Add(1)
			}
		}()
	}
	wg.Wait()
	if th.Ops() != 4000 {
		t.Fatalf("Ops = %d, want 4000", th.Ops())
	}
	if th.PerSecond() <= 0 {
		t.Fatal("rate must be positive")
	}
	if th.Mops() <= 0 || th.Mops() > th.PerSecond() {
		t.Fatalf("Mops = %f out of range (rate %f)", th.Mops(), th.PerSecond())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m != time.Microsecond {
		t.Fatalf("Mean = %v, want 1µs", m)
	}
	// 1µs = 1000ns falls in bucket [512, 1024): the p50 upper bound is
	// 1024ns.
	if q := h.Quantile(0.5); q < time.Microsecond || q > 2*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if !(p50 < p99) {
		t.Fatalf("p50 (%v) must be below p99 (%v)", p50, p99)
	}
	if p99 < time.Millisecond {
		t.Fatalf("p99 = %v, want >= 1ms", p99)
	}
	if h.String() == "" {
		t.Fatal("String must render")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
	for i := 0; i < 95; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.P50 != h.Quantile(0.50) || s.P95 != h.Quantile(0.95) || s.P99 != h.Quantile(0.99) {
		t.Fatalf("summary quantiles disagree with Quantile(): %+v", s)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.P99 < time.Millisecond {
		t.Fatalf("p99 = %v, want >= 1ms (tail observations)", s.P99)
	}
	if s.String() == "" || s.Mean == 0 {
		t.Fatalf("summary must render with a mean: %+v", s)
	}
}

func TestHistogramNegative(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to zero instead of corrupting buckets
	if h.Count() != 1 {
		t.Fatal("negative observation lost")
	}
}

// TestHistogramSummaryEdgeCases pins Summary's exact output at the
// boundaries of the bucket scheme: no observations, one observation
// (every percentile collapses to its bucket's upper bound), sub-bucket
// zero/negative durations, observations past the last bucket boundary
// (the overflow bucket must cap, not wrap), and a bimodal split whose
// percentiles must land in two different buckets.
func TestHistogramSummaryEdgeCases(t *testing.T) {
	overflowBound := time.Duration(uint64(1) << 40) // upper bound of the last bucket
	cases := []struct {
		name    string
		observe []time.Duration
		want    Summary
	}{
		{
			name: "empty",
			want: Summary{},
		},
		{
			name:    "single sample",
			observe: []time.Duration{100 * time.Nanosecond},
			// 100ns lands in bucket [64,128); with one observation every
			// percentile is that bucket's upper bound.
			want: Summary{Count: 1, Mean: 100, P50: 128, P95: 128, P99: 128},
		},
		{
			name:    "zero duration",
			observe: []time.Duration{0},
			want:    Summary{Count: 1, Mean: 0, P50: 2, P95: 2, P99: 2},
		},
		{
			name:    "negative clamps to zero",
			observe: []time.Duration{-time.Second},
			want:    Summary{Count: 1, Mean: 0, P50: 2, P95: 2, P99: 2},
		},
		{
			name:    "overflow bucket caps",
			observe: []time.Duration{1 << 50, 1 << 55},
			want: Summary{
				Count: 2,
				Mean:  time.Duration((uint64(1<<50) + uint64(1<<55)) / 2),
				P50:   overflowBound, P95: overflowBound, P99: overflowBound,
			},
		},
		{
			name: "bimodal split crosses buckets",
			observe: func() []time.Duration {
				ds := make([]time.Duration, 0, 100)
				for i := 0; i < 90; i++ {
					ds = append(ds, 100*time.Nanosecond) // bucket bound 128ns
				}
				for i := 0; i < 10; i++ {
					ds = append(ds, 1000*time.Nanosecond) // bucket bound 1024ns
				}
				return ds
			}(),
			want: Summary{Count: 100, Mean: 190, P50: 128, P95: 1024, P99: 1024},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, d := range tc.observe {
				h.Observe(d)
			}
			if got := h.Summary(); got != tc.want {
				t.Fatalf("Summary() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero Counter not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 2 || g.Max() != 3 {
		t.Fatalf("Gauge = %d max %d, want 2 max 3", g.Value(), g.Max())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 2 {
		t.Fatalf("Gauge after balanced inc/dec = %d, want 2", g.Value())
	}
	if g.Max() < 3 || g.Max() > 10 {
		t.Fatalf("Gauge max = %d, want within [3,10]", g.Max())
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty IntHistogram not zero")
	}
	for _, v := range []uint64{0, 1, 1, 2, 4, 8, 64} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if got := h.Mean(); got < 11.0 || got > 12.0 {
		t.Fatalf("Mean = %v, want 80/7", got)
	}
	// Quantiles are power-of-two upper bounds: 3 of 7 samples land in the
	// lowest bucket, so p50 resolves to its upper bound.
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.9); q != 16 {
		t.Fatalf("p90 = %d, want 16 (bucket [8,16) upper bound)", q)
	}
	if q := h.Quantile(1.0); q != 128 {
		t.Fatalf("p100 = %d, want 128 (bucket [64,128) upper bound)", q)
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}
