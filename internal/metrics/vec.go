package metrics

import "sync/atomic"

// cacheLine is the assumed cache-line size used to pad per-slot counters.
const cacheLine = 64

// paddedCounter occupies a full cache line so adjacent slots of a
// CounterVec never false-share: each shard bumps its own line.
type paddedCounter struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// CounterVec is a fixed-size vector of cache-line-padded counters — one
// slot per shard (or worker, or NUMA node). Unlike a []Counter, slots
// cannot false-share: a hot router incrementing slot 0 on one core and
// slot 3 on another never bounces a line between them. All methods are
// safe for concurrent use.
type CounterVec struct {
	cells []paddedCounter
}

// NewCounterVec returns a vector of n zeroed counters.
func NewCounterVec(n int) *CounterVec {
	if n < 1 {
		n = 1
	}
	return &CounterVec{cells: make([]paddedCounter, n)}
}

// Len returns the number of slots.
func (v *CounterVec) Len() int { return len(v.cells) }

// Inc adds one event to slot i.
func (v *CounterVec) Inc(i int) { v.cells[i].n.Add(1) }

// Add records n events on slot i.
func (v *CounterVec) Add(i int, n uint64) { v.cells[i].n.Add(n) }

// Value returns slot i's count.
func (v *CounterVec) Value(i int) uint64 { return v.cells[i].n.Load() }

// Values returns a snapshot of every slot.
func (v *CounterVec) Values() []uint64 {
	out := make([]uint64, len(v.cells))
	for i := range v.cells {
		out[i] = v.cells[i].n.Load()
	}
	return out
}

// Total returns the sum over all slots.
func (v *CounterVec) Total() uint64 {
	var t uint64
	for i := range v.cells {
		t += v.cells[i].n.Load()
	}
	return t
}
