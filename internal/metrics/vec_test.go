package metrics

import (
	"sync"
	"testing"
	"unsafe"
)

func TestCounterVec(t *testing.T) {
	v := NewCounterVec(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	v.Inc(0)
	v.Add(2, 5)
	v.Inc(3)
	v.Inc(3)
	if got := v.Values(); got[0] != 1 || got[1] != 0 || got[2] != 5 || got[3] != 2 {
		t.Fatalf("Values = %v", got)
	}
	if v.Total() != 8 {
		t.Fatalf("Total = %d, want 8", v.Total())
	}
	if v.Value(2) != 5 {
		t.Fatalf("Value(2) = %d, want 5", v.Value(2))
	}
	// Degenerate size floors at one slot.
	if NewCounterVec(0).Len() != 1 {
		t.Fatal("NewCounterVec(0) must still allocate one slot")
	}
}

// The padding claim: adjacent slots must start on different cache lines.
func TestCounterVecPadding(t *testing.T) {
	if sz := unsafe.Sizeof(paddedCounter{}); sz != cacheLine {
		t.Fatalf("paddedCounter is %d bytes, want %d", sz, cacheLine)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	v := NewCounterVec(3)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Inc(g % 3)
			}
		}(g)
	}
	wg.Wait()
	if v.Total() != 6000 {
		t.Fatalf("Total = %d, want 6000", v.Total())
	}
	for i := 0; i < 3; i++ {
		if v.Value(i) != 2000 {
			t.Fatalf("slot %d = %d, want 2000", i, v.Value(i))
		}
	}
}
