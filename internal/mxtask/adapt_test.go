package mxtask

import (
	"testing"
	"time"
)

// feedWindow drives one full hill-climber window (adaptWindowBatches
// batches) at a synthetic task rate of rate tasks/second.
func feedWindow(w *Worker, rate float64) {
	const tasksPerBatch = 64
	elapsed := time.Duration(tasksPerBatch / rate * float64(time.Second))
	for i := 0; i < adaptWindowBatches; i++ {
		w.adaptObserve(tasksPerBatch, elapsed)
	}
}

// TestAdaptObserveDeadband drives the climber with deterministic synthetic
// rates: a decrease within the ~2% deadband must be treated as flat (no
// direction flip), while a real regression must still flip. Pre-fix, any
// decrease — even 1% measurement jitter — flipped the direction, leaving
// the climber permanently oscillating ±1 around the optimum.
func TestAdaptObserveDeadband(t *testing.T) {
	rt := New(Config{Workers: 1, PrefetchDistance: 4, AdaptivePrefetch: true, EpochInterval: -1})
	w := rt.workers[0]

	feedWindow(w, 1000) // baseline window; initializes dist=4, dir=+1
	if w.adapt.dir != 1 {
		t.Fatalf("baseline window: dir=%d, want +1", w.adapt.dir)
	}
	if w.adapt.prevRate == 0 {
		t.Fatal("baseline window did not record a rate")
	}

	feedWindow(w, 990) // 1% lower: measurement noise, inside the deadband
	if w.adapt.dir != 1 {
		t.Fatalf("1%% rate jitter flipped the climb direction (dir=%d, want +1)", w.adapt.dir)
	}

	feedWindow(w, 900) // ~9% lower: a real regression, must flip
	if w.adapt.dir != -1 {
		t.Fatalf("9%% rate regression did not flip the climb direction (dir=%d, want -1)", w.adapt.dir)
	}
}

// TestAdaptObserveStillClimbs sanity-checks that the deadband did not kill
// the climber: improving rates keep walking the distance up to its clamp.
func TestAdaptObserveStillClimbs(t *testing.T) {
	rt := New(Config{Workers: 1, PrefetchDistance: 4, AdaptivePrefetch: true, EpochInterval: -1})
	w := rt.workers[0]
	rate := 1000.0
	for i := 0; i < 3; i++ {
		feedWindow(w, rate)
		rate *= 1.10 // every window 10% better
	}
	if d := int(w.adapt.dist.Load()); d <= rt.cfg.PrefetchDistance {
		t.Fatalf("improving rates should walk dist upward: dist=%d, want > %d",
			d, rt.cfg.PrefetchDistance)
	}
}

// TestStolenBatchSkipsAdaptObserve steals a full batch from a sibling
// runtime's pool and asserts the thief's hill climber saw none of it: the
// stolen batch's latency profile belongs to the victim runtime, and
// pre-fix it polluted (and even initialized) the thief's adaptive
// distance.
func TestStolenBatchSkipsAdaptObserve(t *testing.T) {
	thiefRT := New(Config{Workers: 1, PrefetchDistance: 2, AdaptivePrefetch: true, EpochInterval: -1})
	victimRT := New(Config{Workers: 1, PrefetchDistance: 2, EpochInterval: -1})
	thief := thiefRT.workers[0]

	nop := func(*Context, *Task) {}
	fill := func(rt *Runtime, n int) {
		for i := 0; i < n; i++ {
			tk := rt.NewTask(nop, nil)
			rt.pending.Add(1)
			rt.pools[0].Push(tk)
		}
	}

	// Steal-only round: a full >=16-task batch drained from the victim.
	fill(victimRT, 32)
	if n := thief.drainPool(victimRT.pools[0], false, victimRT, true); n != 32 {
		t.Fatalf("stole %d tasks, want 32", n)
	}
	if got := thief.adapt.batches; got != 0 {
		t.Fatalf("stolen batch fed the thief's hill climber (batches=%d, want 0)", got)
	}
	if d := thief.adapt.dist.Load(); d != 0 {
		t.Fatalf("stolen batch initialized the thief's adaptive distance (dist=%d, want untouched 0)", d)
	}
	if p := victimRT.pending.Load(); p != 0 {
		t.Fatalf("victim pending=%d after stolen batch completed, want 0", p)
	}

	// Own-pool round: the climber must still observe local batches.
	fill(thiefRT, 32)
	if n := thief.drainPool(thiefRT.pools[0], true, thiefRT, false); n != 32 {
		t.Fatalf("drained %d own tasks, want 32", n)
	}
	if thief.adapt.batches == 0 && thief.adapt.dist.Load() == 0 {
		t.Fatal("own batch did not feed the hill climber")
	}
}
