// Package mxtask implements MxTasking: a task-based runtime in which
// applications attach annotations to tasks and data objects, and the runtime
// uses those annotations to inject memory prefetching (§3 of the paper) and
// synchronization (§4) on the application's behalf.
//
// The central abstraction is the MxTask (Task): a short unit of work that
// runs uninterruptedly to completion on one of the runtime's workers. Tasks
// are annotated with the data object (Resource) they access, their access
// mode (read or write), a priority, and optionally an explicit target core
// or NUMA node (Figure 1). Resources carry an isolation level, an expected
// read/write ratio and an access frequency; from these the runtime selects
// a synchronization primitive (§4.2) — the task never names one.
package mxtask

// Priority orders tasks within a pool: High tasks run before Normal, Normal
// before Low. The paper uses Low for per-core batch-grabber tasks that pull
// new work only when nothing else is ready (§6.1).
type Priority int8

const (
	PriorityNormal Priority = iota
	PriorityLow
	PriorityHigh
)

// String returns the annotation spelling used in Figure 1.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return "invalid"
	}
}

// AccessMode is a task's declared intention toward its annotated resource.
type AccessMode int8

const (
	// ReadOnly marks a task that does not modify the resource; the
	// runtime may execute it optimistically in parallel with other
	// readers.
	ReadOnly AccessMode = iota
	// Write marks a task that may modify the resource.
	Write
)

// String returns the annotation spelling used in the paper's API examples
// (access::readonly, access::write).
func (m AccessMode) String() string {
	if m == ReadOnly {
		return "readonly"
	}
	return "write"
}

// Isolation is a resource's required isolation level (Figure 1:
// "none", "exclusive", or "exclusive write; shared read").
type Isolation int8

const (
	// IsolationNone requests no synchronization at all; the application
	// guarantees safety by construction.
	IsolationNone Isolation = iota
	// IsolationExclusive serializes every access to the resource.
	IsolationExclusive
	// IsolationExclusiveWriteSharedRead allows parallel readers while
	// writers remain mutually exclusive (the "relaxed" level that maps
	// to optimistic strategies, §4.2).
	IsolationExclusiveWriteSharedRead
)

// String returns the annotation spelling used in Figure 1.
func (i Isolation) String() string {
	switch i {
	case IsolationNone:
		return "none"
	case IsolationExclusive:
		return "exclusive"
	case IsolationExclusiveWriteSharedRead:
		return "exclusive write; shared read"
	default:
		return "invalid"
	}
}

// RWRatio is the application's hint about a resource's expected read/write
// mix (Figure 1: "read-heavy", "balanced", "write-heavy").
type RWRatio int8

const (
	RWBalanced RWRatio = iota
	RWReadHeavy
	RWWriteHeavy
)

// String returns the annotation spelling used in Figure 1.
func (r RWRatio) String() string {
	switch r {
	case RWReadHeavy:
		return "read-heavy"
	case RWBalanced:
		return "balanced"
	case RWWriteHeavy:
		return "write-heavy"
	default:
		return "invalid"
	}
}

// Frequency is the application's hint about how often a resource is
// accessed (Figure 1: "low", "normal", "high").
type Frequency int8

const (
	FrequencyNormal Frequency = iota
	FrequencyLow
	FrequencyHigh
)

// String returns the annotation spelling used in Figure 1.
func (f Frequency) String() string {
	switch f {
	case FrequencyLow:
		return "low"
	case FrequencyNormal:
		return "normal"
	case FrequencyHigh:
		return "high"
	default:
		return "invalid"
	}
}

// AnyCore is the value of a task's target-core/target-NUMA annotation when
// the application expressed no placement preference.
const AnyCore = -1
