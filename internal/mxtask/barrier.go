package mxtask

import (
	"sync"
	"sync/atomic"
)

// Barrier realizes the generalized form of scheduling-based
// synchronization (§4.1): annotating dependencies between tasks. Tasks
// annotated with AnnotateAfter(b) are withheld from the pools until the
// barrier's count reaches zero — "in a task-based hash join implementation,
// the first probe task will not start before all build tasks have finished
// populating the in-memory hash table."
//
// A Barrier releases exactly once; after release, dependent spawns pass
// through immediately.
type Barrier struct {
	rt        *Runtime
	remaining atomic.Int64
	released  atomic.Bool

	mu      sync.Mutex
	waiting []pendingSpawn
}

// pendingSpawn remembers where a withheld task would have been scheduled.
type pendingSpawn struct {
	task  *Task
	local int // spawning worker, or AnyCore
}

// NewBarrier creates a barrier that releases after n arrivals. n must be
// positive; a zero-dependency barrier would be a plain spawn.
func (rt *Runtime) NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("mxtask: NewBarrier requires a positive count")
	}
	b := &Barrier{rt: rt}
	b.remaining.Store(int64(n))
	return b
}

// Arrive records one completed dependency. The arrival that brings the
// count to zero releases all withheld tasks (scheduling them by their
// annotations as usual). Extra arrivals panic: they indicate a
// miscounted dependency graph.
func (b *Barrier) Arrive() {
	n := b.remaining.Add(-1)
	switch {
	case n > 0:
		return
	case n < 0:
		panic("mxtask: Barrier.Arrive after release")
	}
	b.released.Store(true)
	b.mu.Lock()
	waiting := b.waiting
	b.waiting = nil
	b.mu.Unlock()
	for _, w := range waiting {
		b.rt.schedule(w.task, w.local)
	}
}

// Released reports whether all dependencies arrived.
func (b *Barrier) Released() bool { return b.released.Load() }

// Remaining returns the outstanding dependency count.
func (b *Barrier) Remaining() int64 {
	n := b.remaining.Load()
	if n < 0 {
		return 0
	}
	return n
}

// enqueue withholds a spawn until release; returns false if the barrier
// already released (the caller should schedule directly).
func (b *Barrier) enqueue(t *Task, local int) bool {
	if b.released.Load() {
		return false
	}
	b.mu.Lock()
	if b.released.Load() {
		b.mu.Unlock()
		return false
	}
	b.waiting = append(b.waiting, pendingSpawn{task: t, local: local})
	b.mu.Unlock()
	return true
}

// AnnotateAfter withholds the task until the barrier releases (Figure 1's
// dependency arrow between tasks). Combine freely with the other
// annotations; the task's resource routing applies at release time.
func (t *Task) AnnotateAfter(b *Barrier) *Task {
	t.after = b
	return t
}
