package mxtask

import (
	"sync/atomic"
	"testing"
)

func TestBarrierWithholdsUntilRelease(t *testing.T) {
	rt := newTestRuntime(2)
	rt.Start()
	defer rt.Stop()

	b := rt.NewBarrier(3)
	var order atomic.Int64 // bit 0: dependent ran; bits 1..: deps done

	dependent := rt.NewTask(func(*Context, *Task) {
		if order.Load() != 3 {
			t.Errorf("dependent ran before all dependencies (state %b)", order.Load())
		}
		order.Add(100)
	}, nil)
	dependent.AnnotateAfter(b)
	rt.Spawn(dependent)

	if b.Released() {
		t.Fatal("barrier released before any arrival")
	}
	if b.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", b.Remaining())
	}

	for i := 0; i < 3; i++ {
		dep := rt.NewTask(func(*Context, *Task) {
			order.Add(1)
			b.Arrive()
		}, nil)
		rt.Spawn(dep)
	}
	rt.Drain()
	if !b.Released() {
		t.Fatal("barrier not released after all arrivals")
	}
	if got := order.Load(); got != 103 {
		t.Fatalf("final state = %d, want 103 (dependent must have run once)", got)
	}
}

func TestBarrierSpawnAfterRelease(t *testing.T) {
	rt := newTestRuntime(1)
	rt.Start()
	defer rt.Stop()

	b := rt.NewBarrier(1)
	b.Arrive()
	var ran atomic.Int64
	task := rt.NewTask(func(*Context, *Task) { ran.Add(1) }, nil)
	task.AnnotateAfter(b)
	rt.Spawn(task) // must pass straight through
	rt.Drain()
	if ran.Load() != 1 {
		t.Fatal("task annotated to a released barrier never ran")
	}
}

func TestBarrierHonorsTaskAnnotationsAtRelease(t *testing.T) {
	rt := newTestRuntime(4)
	b := rt.NewBarrier(1)
	task := rt.NewTask(func(*Context, *Task) {}, nil)
	task.AnnotateCore(3)
	task.AnnotateAfter(b)
	rt.Spawn(task)
	// Not started yet: the withheld task must not sit in any pool.
	total := 0
	for _, w := range rt.workers {
		total += w.pool.Len()
	}
	if total != 0 {
		t.Fatalf("withheld task already pooled (%d)", total)
	}
	b.Arrive()
	if got := rt.workers[3].pool.Len(); got != 1 {
		t.Fatalf("released task not routed to annotated core (pool 3 len %d)", got)
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
}

func TestBarrierOverArrivePanics(t *testing.T) {
	rt := newTestRuntime(1)
	b := rt.NewBarrier(1)
	b.Arrive()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Arrive did not panic")
		}
	}()
	b.Arrive()
}

func TestBarrierZeroCountPanics(t *testing.T) {
	rt := newTestRuntime(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	rt.NewBarrier(0)
}

func TestBarrierFanInFanOut(t *testing.T) {
	// The hash-join pattern: many producers arrive, many consumers wait.
	rt := newTestRuntime(4)
	rt.Start()
	defer rt.Stop()

	const producers = 50
	const consumers = 50
	b := rt.NewBarrier(producers)
	var produced, consumedEarly atomic.Int64

	for i := 0; i < consumers; i++ {
		c := rt.NewTask(func(*Context, *Task) {
			if produced.Load() != producers {
				consumedEarly.Add(1)
			}
		}, nil)
		c.AnnotateAfter(b)
		rt.Spawn(c)
	}
	for i := 0; i < producers; i++ {
		rt.Spawn(rt.NewTask(func(*Context, *Task) {
			produced.Add(1)
			b.Arrive()
		}, nil))
	}
	rt.Drain()
	if got := consumedEarly.Load(); got != 0 {
		t.Fatalf("%d consumers ran before all producers finished", got)
	}
}
