package mxtask

// Context is handed to every executing task. It identifies the worker the
// task runs on and offers the fast paths that exploit run-to-completion:
// allocator access without synchronization (§5.2) and local spawning
// (Figure 5, scheduler side, line 5).
type Context struct {
	w  *Worker
	rt *Runtime
}

// WorkerID returns the logical core executing the task.
func (c *Context) WorkerID() int { return c.w.id }

// NUMANode returns the executing worker's NUMA node.
func (c *Context) NUMANode() int { return c.w.numa }

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// NewTask allocates a task from the worker's core heap. Because tasks run
// to completion, the heap needs no synchronization, making this a handful
// of instructions in the steady state (§5.2, Figure 7).
func (c *Context) NewTask(fn Func, arg any) *Task {
	return c.w.newTask(fn, arg)
}

// Spawn submits a follow-up task. Unless annotations or the resource's
// primitive dictate otherwise, the task lands in this worker's own pool,
// avoiding cache-coherence traffic.
//
// Inside an optimistic read, the spawn is buffered and only published once
// the read validates, making read-task bodies safely restartable.
func (c *Context) Spawn(t *Task) {
	if t.fn == nil {
		panic("mxtask: Spawn of task with nil function")
	}
	c.w.stats.spawned.Add(1)
	if c.w.buffering {
		c.w.spawnBuf = append(c.w.spawnBuf, t)
		return
	}
	c.rt.pending.Add(1)
	if b := t.after; b != nil && b.enqueue(t, c.w.id) {
		return // withheld until the barrier releases
	}
	c.rt.schedule(t, c.w.id)
}

// Retire registers free to run once no task can still hold an optimistic
// reference to a logically removed object (§4.4). Inside an optimistic
// read, the retire is buffered like Spawn.
func (c *Context) Retire(free func()) {
	if c.w.buffering {
		c.w.retireBuf = append(c.w.retireBuf, free)
		return
	}
	c.w.epoch.Retire(free)
}
