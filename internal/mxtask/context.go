package mxtask

// Context is handed to every executing task. It identifies the worker the
// task runs on and offers the fast paths that exploit run-to-completion:
// allocator access without synchronization (§5.2) and local spawning
// (Figure 5, scheduler side, line 5).
type Context struct {
	w *Worker
}

// WorkerID returns the logical core executing the task.
func (c *Context) WorkerID() int { return c.w.id }

// NUMANode returns the executing worker's NUMA node.
func (c *Context) NUMANode() int { return c.w.numa }

// Runtime returns the runtime the task belongs to. For a task stolen
// across runtimes within a Group, that is its home runtime, not the
// thief's — resource pool indices and pending accounting are home-relative
// coordinates, so follow-up work must route through home.
func (c *Context) Runtime() *Runtime { return c.w.homeRT() }

// Node returns the group-node index of the runtime whose worker is
// executing the task (0 for a standalone runtime). Combined with HomeNode
// it lets task bodies observe where they actually ran.
func (c *Context) Node() int { return c.w.rt.node }

// HomeNode returns the group-node index of the task's home runtime.
func (c *Context) HomeNode() int { return c.w.homeRT().node }

// Stolen reports whether the task is executing on a foreign runtime's
// worker via cross-runtime pool stealing.
func (c *Context) Stolen() bool { return c.w.execHome != nil }

// NewTask allocates a task from the worker's core heap. Because tasks run
// to completion, the heap needs no synchronization, making this a handful
// of instructions in the steady state (§5.2, Figure 7).
func (c *Context) NewTask(fn Func, arg any) *Task {
	return c.w.newTask(fn, arg)
}

// Spawn submits a follow-up task. Unless annotations or the resource's
// primitive dictate otherwise, the task lands in this worker's own pool,
// avoiding cache-coherence traffic.
//
// Inside an optimistic read, the spawn is buffered and only published once
// the read validates, making read-task bodies safely restartable.
func (c *Context) Spawn(t *Task) {
	if t.fn == nil {
		panic("mxtask: Spawn of task with nil function")
	}
	c.w.stats.spawned.Add(1)
	if c.w.buffering {
		c.w.spawnBuf = append(c.w.spawnBuf, t)
		return
	}
	home := c.w.homeRT()
	home.pending.Add(1)
	hint := c.w.spawnHint()
	if b := t.after; b != nil && b.enqueue(t, hint) {
		return // withheld until the barrier releases
	}
	home.schedule(t, hint)
}

// Retire registers free to run once no task can still hold an optimistic
// reference to a logically removed object (§4.4). Inside an optimistic
// read, the retire is buffered like Spawn.
func (c *Context) Retire(free func()) {
	if c.w.buffering {
		c.w.retireBuf = append(c.w.retireBuf, free)
		return
	}
	c.w.epoch.Retire(free)
}
