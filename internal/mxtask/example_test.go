package mxtask_test

import (
	"fmt"

	"mxtasking/internal/epoch"
	"mxtasking/internal/mxtask"
)

// The paper's Figure 2 in Go: create an annotated resource, spawn
// annotated tasks, let the runtime inject the synchronization.
func Example() {
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Batched, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	counter := 0
	res := rt.CreateResource(&counter, 8,
		mxtask.IsolationExclusive, mxtask.RWWriteHeavy, mxtask.FrequencyHigh)
	fmt.Println("primitive:", res.Primitive())

	for i := 0; i < 1000; i++ {
		t := rt.NewTask(func(*mxtask.Context, *mxtask.Task) { counter++ }, nil)
		t.AnnotateResource(res, mxtask.Write)
		rt.Spawn(t)
	}
	rt.Drain()
	fmt.Println("counter:", counter)
	// Output:
	// primitive: serialize-by-scheduling
	// counter: 1000
}

// Tasks spawn follow-up tasks; the runtime recycles their memory through
// the core heap, so steady-state task creation does not allocate.
func ExampleContext_NewTask() {
	rt := mxtask.New(mxtask.Config{Workers: 1, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	hops := 0
	var hop mxtask.Func
	hop = func(ctx *mxtask.Context, _ *mxtask.Task) {
		hops++
		if hops < 5 {
			ctx.Spawn(ctx.NewTask(hop, nil))
		}
	}
	rt.Spawn(rt.NewTask(hop, nil))
	rt.Drain()
	fmt.Println("hops:", hops)
	// Output:
	// hops: 5
}

// Barriers realize task dependencies (§4.1): dependent tasks are withheld
// until every producer arrived.
func ExampleBarrier() {
	rt := mxtask.New(mxtask.Config{Workers: 2, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	built := 0
	b := rt.NewBarrier(3)
	probe := rt.NewTask(func(*mxtask.Context, *mxtask.Task) {
		fmt.Println("probe sees", built, "build steps")
	}, nil)
	probe.AnnotateAfter(b)
	rt.Spawn(probe)

	buildRes := rt.CreateResource(&built, 8,
		mxtask.IsolationExclusive, mxtask.RWWriteHeavy, mxtask.FrequencyNormal)
	for i := 0; i < 3; i++ {
		t := rt.NewTask(func(*mxtask.Context, *mxtask.Task) {
			built++
			b.Arrive()
		}, nil)
		t.AnnotateResource(buildRes, mxtask.Write)
		rt.Spawn(t)
	}
	rt.Drain()
	// Output:
	// probe sees 3 build steps
}
