package mxtask

import (
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
)

func TestPanicContainment(t *testing.T) {
	var caught atomic.Int64
	var lastMsg atomic.Value
	rt := New(Config{
		Workers:       2,
		EpochPolicy:   epoch.Off,
		EpochInterval: -1,
		OnTaskPanic: func(r any, _ *Task) {
			caught.Add(1)
			lastMsg.Store(r)
		},
	})
	rt.Start()
	defer rt.Stop()

	var survived atomic.Int64
	for i := 0; i < 100; i++ {
		if i%10 == 3 {
			rt.Spawn(rt.NewTask(func(*Context, *Task) { panic("task fault injection") }, nil))
		} else {
			rt.Spawn(rt.NewTask(func(*Context, *Task) { survived.Add(1) }, nil))
		}
	}
	rt.Drain()
	if got := caught.Load(); got != 10 {
		t.Fatalf("caught %d panics, want 10", got)
	}
	if got := survived.Load(); got != 90 {
		t.Fatalf("%d healthy tasks ran, want 90 (panic killed a worker?)", got)
	}
	if msg := lastMsg.Load(); msg != "task fault injection" {
		t.Fatalf("handler saw %v", msg)
	}
	// Workers must still be alive and processing.
	var after atomic.Int64
	rt.Spawn(rt.NewTask(func(*Context, *Task) { after.Add(1) }, nil))
	rt.Drain()
	if after.Load() != 1 {
		t.Fatal("runtime dead after contained panics")
	}
}

func TestPanicInOptimisticReadIsContained(t *testing.T) {
	var caught atomic.Int64
	rt := New(Config{
		Workers:       1,
		EpochPolicy:   epoch.Off,
		EpochInterval: -1,
		OnTaskPanic:   func(any, *Task) { caught.Add(1) },
	})
	res := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWWriteHeavy, FrequencyLow)
	rt.Start()
	defer rt.Stop()

	task := rt.NewTask(func(*Context, *Task) { panic("reader fault") }, nil)
	task.AnnotateResource(res, ReadOnly)
	rt.Spawn(task)
	rt.Drain()
	if caught.Load() != 1 {
		t.Fatalf("caught %d, want 1", caught.Load())
	}
	// The runtime keeps going.
	var ok atomic.Int64
	rt.Spawn(rt.NewTask(func(*Context, *Task) { ok.Add(1) }, nil))
	rt.Drain()
	if ok.Load() != 1 {
		t.Fatal("worker stuck after contained optimistic-read panic")
	}
}

func TestAdaptivePrefetchStaysInBounds(t *testing.T) {
	rt := New(Config{
		Workers:          1,
		PrefetchDistance: 2,
		AdaptivePrefetch: true,
		EpochPolicy:      epoch.Off,
		EpochInterval:    -1,
	})
	obj := &touchable{buf: make([]byte, 1024)}
	res := rt.CreateResource(obj, 1024, IsolationNone, RWReadHeavy, FrequencyHigh)
	rt.Start()
	defer rt.Stop()

	// Feed many full batches so the hill climber takes several steps.
	var ran atomic.Int64
	for round := 0; round < 200; round++ {
		for i := 0; i < 64; i++ {
			task := rt.NewTask(func(*Context, *Task) { ran.Add(1) }, nil)
			task.AnnotateResource(res, ReadOnly)
			rt.Spawn(task)
		}
		rt.Drain()
		d := rt.workers[0].PrefetchDistance()
		if d < 1 || d > 4 {
			t.Fatalf("adaptive distance %d escaped [1, 4]", d)
		}
	}
	if ran.Load() != 200*64 {
		t.Fatalf("ran %d tasks", ran.Load())
	}
}

func TestAdaptivePrefetchDisabledKeepsConfig(t *testing.T) {
	rt := New(Config{Workers: 1, PrefetchDistance: 3, EpochInterval: -1})
	if got := rt.workers[0].PrefetchDistance(); got != 3 {
		t.Fatalf("distance = %d, want configured 3", got)
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	rt := New(Config{
		Workers:          2,
		PrefetchDistance: 2,
		TraceCapacity:    256,
		EpochPolicy:      epoch.Off,
		EpochInterval:    -1,
	})
	obj := &touchable{buf: make([]byte, 128)}
	res := rt.CreateResource(obj, 128, IsolationNone, RWReadHeavy, FrequencyHigh)
	rt.Start()
	defer rt.Stop()

	for i := 0; i < 200; i++ {
		task := rt.NewTask(func(*Context, *Task) {}, nil)
		task.AnnotateResource(res, ReadOnly)
		rt.Spawn(task)
	}
	rt.Drain()
	rt.Stop()

	events := rt.Trace()
	if len(events) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	kinds := map[TraceKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.String() == "" {
			t.Fatal("event must render")
		}
	}
	if kinds[TraceExecute] == 0 {
		t.Fatal("no execute events recorded")
	}
	if kinds[TracePrefetch] == 0 {
		t.Fatal("no prefetch events recorded despite distance 2")
	}
	// Per-worker sequences must be strictly increasing.
	lastSeq := map[int]uint64{}
	for _, e := range events {
		if prev, ok := lastSeq[e.Worker]; ok && e.Seq <= prev {
			t.Fatalf("worker %d sequence not increasing: %d after %d", e.Worker, e.Seq, prev)
		}
		lastSeq[e.Worker] = e.Seq
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	rt := newTestRuntime(1)
	rt.Start()
	defer rt.Stop()
	rt.Spawn(rt.NewTask(func(*Context, *Task) {}, nil))
	rt.Drain()
	if events := rt.Trace(); events != nil {
		t.Fatalf("disabled tracer returned %d events", len(events))
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := newTracer(4)
	for i := 0; i < 10; i++ {
		tr.record(0, TraceExecute, uint64(i))
	}
	events := tr.snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot = %d events, want ring capacity 4", len(events))
	}
	for i, e := range events {
		if e.Info != uint64(6+i) {
			t.Fatalf("event %d info = %d, want %d (oldest-first of the last 4)", i, e.Info, 6+i)
		}
	}
}
