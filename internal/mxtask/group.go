package mxtask

import (
	"sync/atomic"

	"mxtasking/internal/epoch"
)

// Group is a set of runtimes, one per simulated NUMA node — the execution
// substrate for sharded applications that keep a partition's data, task
// pools, and synchronization domains on a single node (the paper's
// locality argument, §2.3/§6, applied at the system level instead of
// inside one runtime). Each member runtime has its own workers, task
// allocator, and pool table, so on the common path nothing is shared
// across nodes: a task spawned on node i executes on node i's workers.
//
// With Config.Steal.Enabled the group becomes a cooperating scheduler
// (DESIGN.md §7): a member whose workers idle past a threshold steals
// whole task pools from overloaded siblings, under the victim pool's own
// consume latch, so the at-most-one-executor invariant holds across
// runtime boundaries exactly as it does within one. Tasks bound to an
// exclusive resource or carrying a core/NUMA locality annotation are never
// stolen. Stealing members share one epoch manager — a thief inside a
// victim's data structure must hold reclamation back the same way the
// victim's own workers do.
//
// Workers are divided as evenly as possible across the nodes (the first
// Workers mod nodes runtimes get one extra), and every member runs with
// NUMANodes=1 — the group models the topology, the members model one node
// each.
type Group struct {
	rts   []*Runtime
	steal StealConfig

	// loads caches each member's stealable backlog so victim selection
	// reads N padded atomics instead of touching sibling pools. Each
	// slot is only written by its member's workers (plus a corrective
	// store after a steal), padded to its own cache line.
	loads []paddedLoad

	stealAttempts  atomic.Uint64
	stealSuccesses atomic.Uint64
	stealAborts    atomic.Uint64
	tasksStolen    atomic.Uint64
}

// paddedLoad is a cache-line-padded load gauge: one per member, so
// publication from different nodes never false-shares.
type paddedLoad struct {
	v atomic.Int64
	_ [56]byte
}

// GroupStats is a snapshot of the group's stealing activity.
type GroupStats struct {
	StealAttempts  uint64 // victim selections that passed the hysteresis gate
	StealSuccesses uint64 // attempts that executed at least one stolen task
	StealAborts    uint64 // attempts that found the victim already drained
	TasksStolen    uint64 // tasks executed on a foreign runtime
	Imbalance      int64  // current max−min stealable backlog across members
	Loads          []int64
}

// NewGroup creates nodes runtimes from one template configuration,
// splitting cfg.Workers across them (each member gets at least one
// worker). Other fields of cfg apply to every member unchanged. Call
// Start before spawning tasks.
func NewGroup(cfg Config, nodes int) *Group {
	if nodes < 1 {
		nodes = 1
	}
	cfg.applyDefaults()
	g := &Group{
		rts:   make([]*Runtime, nodes),
		steal: cfg.Steal,
		loads: make([]paddedLoad, nodes),
	}
	base := cfg.Workers / nodes
	extra := cfg.Workers % nodes
	counts := make([]int, nodes)
	total := 0
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
		if counts[i] < 1 {
			counts[i] = 1
		}
		total += counts[i]
	}
	var shared *epoch.Manager
	if cfg.Steal.Enabled {
		shared = epoch.NewManager(total, cfg.EpochPolicy, cfg.EpochBatch)
	}
	offset := 0
	for i := range g.rts {
		c := cfg
		c.Workers = counts[i]
		c.NUMANodes = 1
		if shared != nil {
			c.sharedEpoch = shared
			c.epochOffset = offset
			if i > 0 && c.EpochInterval > 0 {
				// One epoch clock per shared manager: member 0's
				// ticker advances everyone.
				c.EpochInterval = -1
			}
			if c.Steal.SparePools == 0 {
				// Default spare pools: enough extra consume latches
				// that the whole group's workers could drain this
				// member concurrently, capped at 8.
				sp := total - counts[i]
				if sp > 8 {
					sp = 8
				}
				c.Steal.SparePools = sp
			}
		}
		rt := New(c)
		rt.group = g
		rt.node = i
		g.rts[i] = rt
		offset += counts[i]
	}
	return g
}

// Size returns the number of member runtimes (NUMA nodes).
func (g *Group) Size() int { return len(g.rts) }

// Runtime returns the i-th member runtime.
func (g *Group) Runtime(i int) *Runtime { return g.rts[i] }

// Runtimes returns the member runtimes in node order. The slice is the
// group's own; callers must not mutate it.
func (g *Group) Runtimes() []*Runtime { return g.rts }

// StealEnabled reports whether cross-runtime pool stealing is on.
func (g *Group) StealEnabled() bool { return g.steal.Enabled }

// Steal returns the group's effective stealing configuration (defaults
// resolved).
func (g *Group) Steal() StealConfig { return g.steal }

// Stats snapshots the group's stealing counters and current per-member
// stealable backlogs (recomputed from the pools, not the published cache).
func (g *Group) Stats() GroupStats {
	s := GroupStats{
		StealAttempts:  g.stealAttempts.Load(),
		StealSuccesses: g.stealSuccesses.Load(),
		StealAborts:    g.stealAborts.Load(),
		TasksStolen:    g.tasksStolen.Load(),
		Loads:          make([]int64, len(g.rts)),
	}
	var min, max int64
	for i, rt := range g.rts {
		l := rt.stealableBacklog()
		s.Loads[i] = l
		if i == 0 || l < min {
			min = l
		}
		if i == 0 || l > max {
			max = l
		}
	}
	s.Imbalance = max - min
	return s
}

// Start launches every member runtime.
func (g *Group) Start() {
	for _, rt := range g.rts {
		rt.Start()
	}
}

// Stop shuts every member runtime down (see Runtime.Stop).
func (g *Group) Stop() {
	for _, rt := range g.rts {
		rt.Stop()
	}
}

// Drain blocks until every spawned task on every member has completed.
// Must not be called from a task.
func (g *Group) Drain() {
	for _, rt := range g.rts {
		rt.Drain()
	}
}
