package mxtask

// Group is a set of independent runtimes, one per simulated NUMA node —
// the execution substrate for sharded applications that keep a partition's
// data, task pools, and synchronization domains on a single node (the
// paper's locality argument, §2.3/§6, applied at the system level instead
// of inside one runtime). Each member runtime has its own workers, task
// allocator, and epoch manager, so nothing is shared across nodes: a task
// spawned on node i can only ever touch node i's pools, which is exactly
// the isolation a per-NUMA-node shard wants.
//
// Workers are divided as evenly as possible across the nodes (the first
// Workers mod nodes runtimes get one extra), and every member runs with
// NUMANodes=1 — the group models the topology, the members model one node
// each.
type Group struct {
	rts []*Runtime
}

// NewGroup creates nodes runtimes from one template configuration,
// splitting cfg.Workers across them (each member gets at least one
// worker). Other fields of cfg apply to every member unchanged. Call
// Start before spawning tasks.
func NewGroup(cfg Config, nodes int) *Group {
	if nodes < 1 {
		nodes = 1
	}
	cfg.applyDefaults()
	g := &Group{rts: make([]*Runtime, nodes)}
	base := cfg.Workers / nodes
	extra := cfg.Workers % nodes
	for i := range g.rts {
		c := cfg
		c.Workers = base
		if i < extra {
			c.Workers++
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
		c.NUMANodes = 1
		g.rts[i] = New(c)
	}
	return g
}

// Size returns the number of member runtimes (NUMA nodes).
func (g *Group) Size() int { return len(g.rts) }

// Runtime returns the i-th member runtime.
func (g *Group) Runtime(i int) *Runtime { return g.rts[i] }

// Runtimes returns the member runtimes in node order. The slice is the
// group's own; callers must not mutate it.
func (g *Group) Runtimes() []*Runtime { return g.rts }

// Start launches every member runtime.
func (g *Group) Start() {
	for _, rt := range g.rts {
		rt.Start()
	}
}

// Stop shuts every member runtime down (see Runtime.Stop).
func (g *Group) Stop() {
	for _, rt := range g.rts {
		rt.Stop()
	}
}

// Drain blocks until every spawned task on every member has completed.
// Must not be called from a task.
func (g *Group) Drain() {
	for _, rt := range g.rts {
		rt.Drain()
	}
}
