package mxtask

import (
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
)

// A group splits the worker budget across nodes, floors at one worker per
// node, and keeps every member runtime fully independent.
func TestGroupWorkerSplit(t *testing.T) {
	cases := []struct {
		workers, nodes int
		want           []int
	}{
		{8, 2, []int{4, 4}},
		{8, 4, []int{2, 2, 2, 2}},
		{7, 3, []int{3, 2, 2}},
		{2, 4, []int{1, 1, 1, 1}}, // fewer workers than nodes: floor at 1
		{5, 1, []int{5}},
		{3, 0, []int{3}}, // nodes < 1 coerced to 1
	}
	for _, tc := range cases {
		g := NewGroup(Config{Workers: tc.workers, EpochInterval: -1}, tc.nodes)
		if g.Size() != len(tc.want) {
			t.Fatalf("NewGroup(%d workers, %d nodes).Size() = %d, want %d",
				tc.workers, tc.nodes, g.Size(), len(tc.want))
		}
		for i, want := range tc.want {
			if got := g.Runtime(i).Workers(); got != want {
				t.Errorf("workers=%d nodes=%d: runtime %d has %d workers, want %d",
					tc.workers, tc.nodes, i, got, want)
			}
			if got := g.Runtime(i).Config().NUMANodes; got != 1 {
				t.Errorf("member runtime %d models %d NUMA nodes, want 1", i, got)
			}
		}
	}
}

// Tasks spawned on each member execute on that member; Drain covers all of
// them.
func TestGroupStartStopDrain(t *testing.T) {
	g := NewGroup(Config{Workers: 4, EpochPolicy: epoch.Batched, EpochInterval: -1}, 2)
	g.Start()
	defer g.Stop()

	var ran [2]atomic.Int64
	const each = 200
	for node := 0; node < g.Size(); node++ {
		rt := g.Runtime(node)
		for i := 0; i < each; i++ {
			node := node
			rt.Spawn(rt.NewTask(func(_ *Context, _ *Task) { ran[node].Add(1) }, nil))
		}
	}
	g.Drain()
	for node := range ran {
		if got := ran[node].Load(); got != each {
			t.Fatalf("node %d executed %d tasks, want %d", node, got, each)
		}
	}
}
