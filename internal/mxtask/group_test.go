package mxtask

import (
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
)

// A group splits the worker budget across nodes, floors at one worker per
// node, and keeps every member runtime fully independent.
func TestGroupWorkerSplit(t *testing.T) {
	cases := []struct {
		workers, nodes int
		want           []int
	}{
		{8, 2, []int{4, 4}},
		{8, 4, []int{2, 2, 2, 2}},
		{7, 3, []int{3, 2, 2}},
		{2, 4, []int{1, 1, 1, 1}}, // fewer workers than nodes: floor at 1
		{5, 1, []int{5}},
		{3, 0, []int{3}}, // nodes < 1 coerced to 1
	}
	for _, tc := range cases {
		g := NewGroup(Config{Workers: tc.workers, EpochInterval: -1}, tc.nodes)
		if g.Size() != len(tc.want) {
			t.Fatalf("NewGroup(%d workers, %d nodes).Size() = %d, want %d",
				tc.workers, tc.nodes, g.Size(), len(tc.want))
		}
		for i, want := range tc.want {
			if got := g.Runtime(i).Workers(); got != want {
				t.Errorf("workers=%d nodes=%d: runtime %d has %d workers, want %d",
					tc.workers, tc.nodes, i, got, want)
			}
			if got := g.Runtime(i).Config().NUMANodes; got != 1 {
				t.Errorf("member runtime %d models %d NUMA nodes, want 1", i, got)
			}
		}
	}
}

// runGroupToCompletion spawns work on every member of a started group and
// verifies each node executes exactly its own share — the behavioral
// check behind the split arithmetic: degenerate shapes must not just
// produce the right worker counts, they must actually run and drain.
func runGroupToCompletion(t *testing.T, g *Group) {
	t.Helper()
	const each = 100
	ran := make([]atomic.Int64, g.Size())
	for node := 0; node < g.Size(); node++ {
		rt := g.Runtime(node)
		for i := 0; i < each; i++ {
			node := node
			rt.Spawn(rt.NewTask(func(_ *Context, _ *Task) { ran[node].Add(1) }, nil))
		}
	}
	g.Drain()
	for node := range ran {
		if got := ran[node].Load(); got != each {
			t.Fatalf("node %d executed %d tasks, want %d", node, got, each)
		}
	}
}

// Fewer workers than nodes: every member still gets one worker, and every
// member still executes and drains its tasks.
func TestGroupFewerWorkersThanNodes(t *testing.T) {
	g := NewGroup(Config{Workers: 2, EpochPolicy: epoch.Batched, EpochInterval: -1}, 4)
	g.Start()
	defer g.Stop()
	if g.Size() != 4 {
		t.Fatalf("Size = %d, want 4", g.Size())
	}
	for i := 0; i < g.Size(); i++ {
		if w := g.Runtime(i).Workers(); w != 1 {
			t.Fatalf("runtime %d has %d workers, want the 1-worker floor", i, w)
		}
	}
	runGroupToCompletion(t, g)
}

// A worker count not divisible by the node count: the uneven split (3/2/2
// here) must be fully functional, not just arithmetically right.
func TestGroupUnevenSplitRuns(t *testing.T) {
	g := NewGroup(Config{Workers: 7, EpochPolicy: epoch.Batched, EpochInterval: -1}, 3)
	g.Start()
	defer g.Stop()
	total := 0
	for i := 0; i < g.Size(); i++ {
		total += g.Runtime(i).Workers()
	}
	if total != 7 {
		t.Fatalf("uneven split lost workers: total %d, want 7", total)
	}
	runGroupToCompletion(t, g)
}

// The single-node degenerate group is just one runtime wearing a group
// hat: full worker budget, one member, normal spawn/drain semantics.
func TestGroupSingleNodeDegenerate(t *testing.T) {
	g := NewGroup(Config{Workers: 4, EpochPolicy: epoch.Batched, EpochInterval: -1}, 1)
	g.Start()
	defer g.Stop()
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if w := g.Runtime(0).Workers(); w != 4 {
		t.Fatalf("sole member has %d workers, want the full budget of 4", w)
	}
	if n := len(g.Runtimes()); n != 1 {
		t.Fatalf("Runtimes() has %d members, want 1", n)
	}
	runGroupToCompletion(t, g)
}

// Tasks spawned on each member execute on that member; Drain covers all of
// them.
func TestGroupStartStopDrain(t *testing.T) {
	g := NewGroup(Config{Workers: 4, EpochPolicy: epoch.Batched, EpochInterval: -1}, 2)
	g.Start()
	defer g.Stop()

	var ran [2]atomic.Int64
	const each = 200
	for node := 0; node < g.Size(); node++ {
		rt := g.Runtime(node)
		for i := 0; i < each; i++ {
			node := node
			rt.Spawn(rt.NewTask(func(_ *Context, _ *Task) { ran[node].Add(1) }, nil))
		}
	}
	g.Drain()
	for node := range ran {
		if got := ran[node].Load(); got != each {
			t.Fatalf("node %d executed %d tasks, want %d", node, got, each)
		}
	}
}
