package mxtask

import (
	"sync/atomic"

	"mxtasking/internal/latch"
)

// Inline read-side access and interleaved-descent observability.
//
// A group-descent task (blinktree.StartBatch) advances many traversal
// cursors inside one task body, so it cannot lean on the scheduler to
// inject per-node synchronization the way a one-node-per-task chain does.
// ReadInline is the escape hatch: it runs a read-only critical section
// against a single resource on the calling goroutine, under whatever
// read-side discipline the resource's primitive prescribes, and reports
// whether the section's effects may be kept. Callers that get false fall
// back to the scheduled per-node chain.

// inlineReadAttempts bounds how many times ReadInline re-runs fn after a
// failed optimistic validation before giving up. A writer-heavy node makes
// the scheduled chain (which waits properly) the better home for the
// access anyway, so the bound is small.
const inlineReadAttempts = 4

// ReadInline executes fn as a read-only critical section over r on the
// calling goroutine and returns whether fn's observations are valid.
//
//   - Optimistic primitives: seqlock discipline — fn runs, then the
//     version validates. On validation failure fn re-runs (it must be
//     restartable: reset outputs at the top) up to inlineReadAttempts
//     times; persistent failure returns false and the caller must discard
//     fn's effects.
//   - PrimRWLock / PrimSpinlock: fn runs under the latch; always true.
//   - PrimNone: fn runs bare; always true.
//   - PrimSerialize: returns false WITHOUT running fn — serialized
//     resources admit no access outside their pool's task order.
//
// fn must not spawn tasks or acquire resource latches itself; it is a
// plain memory read the same way an optimistic task body is.
func (r *Resource) ReadInline(fn func()) bool {
	switch r.prim {
	case PrimNone:
		fn()
		return true
	case PrimSerialize:
		return false
	case PrimSpinlock:
		r.mu.Lock()
		fn()
		r.mu.Unlock()
		return true
	case PrimRWLock:
		r.rw.RLock()
		fn()
		r.rw.RUnlock()
		return true
	default: // PrimOptimisticScheduling, PrimOptimisticLatch
		for i := 0; i < inlineReadAttempts; i++ {
			v, ok := r.version.ReadBegin()
			if !ok {
				// Writer holds the node; brief backoff, then retry.
				latch.SpinWait(i)
				continue
			}
			fn()
			if r.version.ReadValidate(v) {
				return true
			}
		}
		return false
	}
}

// InterleaveStats counts interleaved group-descent activity. Producers
// (e.g. blinktree.TaskTree) keep the live counters; a snapshot is folded
// into WorkerStats via AttachInterleave so STATS surfaces alongside the
// workers' own counters.
type InterleaveStats struct {
	// Groups is the number of group-descent tasks started (one per K-wide
	// cursor group, not per turn).
	Groups uint64
	// Cursors is the total number of traversal cursors admitted to groups.
	Cursors uint64
	// Turns counts group task executions: each turn advances every live
	// cursor one node step.
	Turns uint64
	// Steps counts successful inline node visits across all cursors.
	Steps uint64
	// Retired counts cursors completed inside a group (leaf reached and
	// the completion spawned by the group itself).
	Retired uint64
	// Fallbacks counts cursors handed off to the sequential per-key chain
	// (serialized resource, persistent validation failure, write op
	// reaching its leaf boundary, lone survivor, or a torn edge).
	Fallbacks uint64
	// MaxWidth is the widest cursor group started — the peak overlap
	// depth the dispatcher achieved.
	MaxWidth uint64
}

// Add accumulates o into s (MaxWidth by maximum).
func (s *InterleaveStats) Add(o InterleaveStats) {
	s.Groups += o.Groups
	s.Cursors += o.Cursors
	s.Turns += o.Turns
	s.Steps += o.Steps
	s.Retired += o.Retired
	s.Fallbacks += o.Fallbacks
	if o.MaxWidth > s.MaxWidth {
		s.MaxWidth = o.MaxWidth
	}
}

// interleaveSource is the registered snapshot provider (see
// AttachInterleave); wrapped in a struct so the atomic pointer has a
// concrete type.
type interleaveSource struct {
	fn func() InterleaveStats
}

// AttachInterleave connects an interleaved-descent counter source (e.g. a
// TaskTree's InterleaveStats method) to the runtime so Stats surfaces the
// group-descent activity next to the workers' own counters. Like
// AttachLearnedPrefetch this is observability wiring only; the last
// attached source wins.
func (rt *Runtime) AttachInterleave(fn func() InterleaveStats) {
	if fn == nil {
		rt.interleave.Store(nil)
		return
	}
	rt.interleave.Store(&interleaveSource{fn: fn})
}

// InterleaveSnapshot returns the attached source's current counters, or a
// zero value when none is attached.
func (rt *Runtime) InterleaveSnapshot() InterleaveStats {
	if src := rt.interleave.Load(); src != nil {
		return src.fn()
	}
	return InterleaveStats{}
}

// interleavePtr is the runtime-side storage for AttachInterleave, declared
// here to keep every interleave concern in one file.
type interleavePtr = atomic.Pointer[interleaveSource]
