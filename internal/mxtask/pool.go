package mxtask

import (
	"sync/atomic"

	"mxtasking/internal/latch"
)

// taskLane is an intrusive Vyukov MPSC queue of tasks. Push is the single
// atomic exchange that makes task spawning lightweight (§2.3); Pop is
// restricted to one consumer at a time, which the enclosing Pool enforces
// with its consume latch.
type taskLane struct {
	tail atomic.Pointer[Task]
	head *Task
	stub Task
}

func (l *taskLane) init() {
	l.tail.Store(&l.stub)
	l.head = &l.stub
}

// push enqueues t. Safe for any number of concurrent producers.
func (l *taskLane) push(t *Task) {
	t.next.Store(nil)
	prev := l.tail.Swap(t) // the single atomic xchg
	prev.next.Store(t)
}

// pop dequeues the oldest task; the caller must hold the pool's consume
// latch. ok is false when the lane is empty or a producer is mid-push.
func (l *taskLane) pop() (t *Task, ok bool) {
	head := l.head
	next := head.next.Load()
	if head == &l.stub {
		if next == nil {
			return nil, false
		}
		l.head = next
		head = next
		next = head.next.Load()
	}
	if next != nil {
		l.head = next
		return head, true
	}
	if head != l.tail.Load() {
		return nil, false // producer in flight
	}
	// head is the last task: re-insert the stub to detach it.
	l.stub.next.Store(nil)
	prev := l.tail.Swap(&l.stub)
	prev.next.Store(&l.stub)
	next = head.next.Load()
	if next == nil {
		return nil, false
	}
	l.head = next
	return head, true
}

// Pool is a task pool: the unit of scheduling-based synchronization. Tasks
// routed to one pool execute in order under the pool's consume latch, so a
// resource whose writers all land in one pool needs no further
// synchronization (§4.1).
//
// Pools hold three lanes, one per priority; consumers drain High before
// Normal before Low.
//
// Workers normally drain their own pool, but an idle worker may steal a
// whole pool (never individual tasks, §4.1 "worker threads may also steal
// task pools") by winning the consume latch.
type Pool struct {
	lanes   [3]taskLane // indexed by Priority
	consume latch.Spinlock
	size    atomic.Int64
	home    int // worker that owns the pool by default
}

func newPool(home int) *Pool {
	p := &Pool{home: home}
	for i := range p.lanes {
		p.lanes[i].init()
	}
	return p
}

// Push adds a task according to its priority annotation. Safe for
// concurrent use.
func (p *Pool) Push(t *Task) {
	p.lanes[t.prio].push(t)
	p.size.Add(1)
}

// TryAcquire attempts to become the pool's consumer.
func (p *Pool) TryAcquire() bool { return p.consume.TryLock() }

// Release gives up consumption rights.
func (p *Pool) Release() { p.consume.Unlock() }

// Pop removes the highest-priority ready task. The caller must hold the
// consume latch.
func (p *Pool) Pop() (*Task, bool) {
	for _, prio := range [3]Priority{PriorityHigh, PriorityNormal, PriorityLow} {
		if t, ok := p.lanes[prio].pop(); ok {
			p.size.Add(-1)
			return t, true
		}
	}
	return nil, false
}

// Len reports the approximate number of queued tasks.
func (p *Pool) Len() int { return int(p.size.Load()) }

// Home returns the index of the worker that owns this pool by default.
func (p *Pool) Home() int { return p.home }
