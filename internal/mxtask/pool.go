package mxtask

import (
	"sync/atomic"

	"mxtasking/internal/latch"
)

// taskLane is an intrusive Vyukov MPSC queue of tasks. Push is the single
// atomic exchange that makes task spawning lightweight (§2.3); Pop is
// restricted to one consumer at a time, which the enclosing Pool enforces
// with its consume latch.
type taskLane struct {
	tail atomic.Pointer[Task]
	head *Task
	stub Task
}

func (l *taskLane) init() {
	l.tail.Store(&l.stub)
	l.head = &l.stub
}

// push enqueues t. Safe for any number of concurrent producers.
func (l *taskLane) push(t *Task) {
	t.next.Store(nil)
	prev := l.tail.Swap(t) // the single atomic xchg
	prev.next.Store(t)
}

// peek returns the oldest task without removing it; the caller must hold
// the pool's consume latch. ok is false when the lane is empty or a
// producer is mid-push. peek may advance the lane head past the stub,
// which is safe under the consume latch and transparent to pop.
func (l *taskLane) peek() (t *Task, ok bool) {
	head := l.head
	next := head.next.Load()
	if head == &l.stub {
		if next == nil {
			return nil, false
		}
		l.head = next
		head = next
		next = head.next.Load()
	}
	if next != nil {
		return head, true
	}
	if head != l.tail.Load() {
		return nil, false // producer in flight
	}
	return head, true // head is the last (fully linked) task
}

// pop dequeues the oldest task; the caller must hold the pool's consume
// latch. ok is false when the lane is empty or a producer is mid-push.
func (l *taskLane) pop() (t *Task, ok bool) {
	head := l.head
	next := head.next.Load()
	if head == &l.stub {
		if next == nil {
			return nil, false
		}
		l.head = next
		head = next
		next = head.next.Load()
	}
	if next != nil {
		l.head = next
		return head, true
	}
	if head != l.tail.Load() {
		return nil, false // producer in flight
	}
	// head is the last task: re-insert the stub to detach it.
	l.stub.next.Store(nil)
	prev := l.tail.Swap(&l.stub)
	prev.next.Store(&l.stub)
	next = head.next.Load()
	if next == nil {
		return nil, false
	}
	l.head = next
	return head, true
}

// Pool is a task pool: the unit of scheduling-based synchronization. Tasks
// routed to one pool execute in order under the pool's consume latch, so a
// resource whose writers all land in one pool needs no further
// synchronization (§4.1).
//
// Pools hold three lanes, one per priority; consumers drain High before
// Normal before Low.
//
// Workers normally drain their own pool, but an idle worker may steal a
// whole pool (never individual tasks, §4.1 "worker threads may also steal
// task pools") by winning the consume latch. When the runtime belongs to a
// stealing Group, idle workers of sibling runtimes may drain the pool too
// — the same consume latch is what keeps the at-most-one-executor
// invariant across runtime boundaries (DESIGN.md §7).
type Pool struct {
	lanes   [3]taskLane // indexed by Priority
	consume latch.Spinlock
	size    atomic.Int64
	pinned  atomic.Int64 // queued tasks bound to this runtime (see Task.homeBound)
	idx     int          // position in the owning runtime's pool table
	home    int          // worker that owns the pool by default; -1 for spare pools
}

func newPool(idx, home int) *Pool {
	p := &Pool{idx: idx, home: home}
	for i := range p.lanes {
		p.lanes[i].init()
	}
	return p
}

// Push adds a task according to its priority annotation. Safe for
// concurrent use.
func (p *Pool) Push(t *Task) {
	if t.homeBound() {
		p.pinned.Add(1)
	}
	p.lanes[t.prio].push(t)
	p.size.Add(1)
}

// TryAcquire attempts to become the pool's consumer.
func (p *Pool) TryAcquire() bool { return p.consume.TryLock() }

// Release gives up consumption rights.
func (p *Pool) Release() { p.consume.Unlock() }

// Pop removes the highest-priority ready task. The caller must hold the
// consume latch.
func (p *Pool) Pop() (*Task, bool) {
	for _, prio := range [3]Priority{PriorityHigh, PriorityNormal, PriorityLow} {
		if t, ok := p.lanes[prio].pop(); ok {
			p.size.Add(-1)
			if t.homeBound() {
				p.pinned.Add(-1)
			}
			return t, true
		}
	}
	return nil, false
}

// PopStealable removes the highest-priority task that may execute on a
// foreign runtime. A home-bound task at a lane's head blocks that lane —
// tasks queued behind it keep their order and stay home — so a cross-
// runtime thief can never observe, let alone run, an excluded task. The
// caller must hold the consume latch.
func (p *Pool) PopStealable() (*Task, bool) {
	for _, prio := range [3]Priority{PriorityHigh, PriorityNormal, PriorityLow} {
		l := &p.lanes[prio]
		t, ok := l.peek()
		if !ok || t.homeBound() {
			continue
		}
		if popped, ok := l.pop(); ok {
			p.size.Add(-1)
			return popped, true
		}
	}
	return nil, false
}

// Len reports the approximate number of queued tasks.
func (p *Pool) Len() int { return int(p.size.Load()) }

// StealableLen reports the approximate number of queued tasks a foreign
// runtime's worker could execute (total minus home-bound). Both counters
// are sampled independently, so the estimate is clamped at zero.
func (p *Pool) StealableLen() int {
	n := p.size.Load() - p.pinned.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Home returns the index of the worker that owns this pool by default, or
// -1 for a spare pool (an extra scheduling channel with no resident
// worker; see Config.Steal).
func (p *Pool) Home() int { return p.home }

// Index returns the pool's position in its runtime's pool table.
func (p *Pool) Index() int { return p.idx }
