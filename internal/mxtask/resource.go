package mxtask

import (
	"mxtasking/internal/latch"
)

// Primitive is a synchronization mechanism the runtime may inject around a
// task's execution (§4.1). Applications normally never pick one — the
// runtime's cost model does (§4.2) — but an explicit choice can be forced
// through Resource.ForcePrimitive.
type Primitive int8

const (
	// PrimNone executes tasks without synchronization.
	PrimNone Primitive = iota
	// PrimSerialize synchronizes by scheduling: every access is routed to
	// the resource's task pool and executed in order; no latch, no
	// version check (§4.1 "Synchronization through Scheduling").
	PrimSerialize
	// PrimOptimisticScheduling lets readers run optimistically (validated
	// by a version counter) while writers are serialized by scheduling
	// them to the resource's pool (§4.2: preferred for read-heavy
	// resources).
	PrimOptimisticScheduling
	// PrimOptimisticLatch lets readers run optimistically while writers
	// acquire a latch (§4.2: preferred for write-heavy resources accessed
	// moderately or sparsely, where pool contention would dominate).
	PrimOptimisticLatch
	// PrimSpinlock serializes every access with a test-and-set spinlock
	// (the classic latch baseline).
	PrimSpinlock
	// PrimRWLock uses a reader/writer spinlock: shared for ReadOnly
	// tasks, exclusive for Write tasks.
	PrimRWLock
)

// String names the primitive for logs and experiment output.
func (p Primitive) String() string {
	switch p {
	case PrimNone:
		return "none"
	case PrimSerialize:
		return "serialize-by-scheduling"
	case PrimOptimisticScheduling:
		return "optimistic-scheduling"
	case PrimOptimisticLatch:
		return "optimistic-latch"
	case PrimSpinlock:
		return "spinlock"
	case PrimRWLock:
		return "rwlock"
	default:
		return "invalid"
	}
}

// serializesWrites reports whether the scheduler must route writing tasks to
// the resource's pool (Figure 5, scheduler side, lines 1–3).
func (p Primitive) serializesWrites() bool {
	return p == PrimSerialize || p == PrimOptimisticScheduling
}

// serializesAll reports whether every access must be routed to the
// resource's pool.
func (p Primitive) serializesAll() bool { return p == PrimSerialize }

// Prefetchable is implemented by data objects that can pull themselves into
// the CPU cache. The runtime calls Prefetch ahead of executing a task
// annotated with the object (§3). Implementations typically read one word
// per cache line of their backing storage.
//
// This stands in for the prefetcht0 instructions the paper's C++ runtime
// injects: Go exposes no prefetch intrinsic, but an actual read brings the
// line into the cache just the same (at the cost of blocking on the load,
// which the simulator models more faithfully).
type Prefetchable interface {
	Prefetch()
}

// Resource is an annotated data object (Figure 1, right side). Tasks link
// themselves to the resource they access; the runtime uses the resource's
// metadata for placement, prefetching and synchronization.
type Resource struct {
	// Object is the application's data object. If it implements
	// Prefetchable the runtime will prefetch it ahead of task execution.
	Object any
	// Size is the annotated object size in bytes; it bounds how much the
	// prefetcher pulls in.
	Size int

	isolation Isolation
	rwRatio   RWRatio
	frequency Frequency
	prim      Primitive

	// pool is the index of the worker whose task pool serializes this
	// resource when prim serializes accesses.
	pool int

	version latch.VersionLock // optimistic primitives
	mu      latch.Spinlock    // PrimSpinlock
	rw      latch.RWSpinLock  // PrimRWLock
}

// SelectPrimitive is the runtime's cost model (§4.2): it maps a resource's
// annotated access properties to the cheapest safe primitive.
//
//   - exclusive isolation     → serialize by scheduling (beats spinlocks in
//     the paper's benchmarks for exclusive access);
//   - shared reads, read-heavy → optimistic with writers scheduled: readers
//     at the resource's own worker never even need a version check;
//   - shared reads, write-heavy → optimistic latches: for frequently written
//     objects the contention on a single task pool would exceed latch
//     contention on the object itself;
//   - balanced mixes follow the access frequency: hot objects behave like
//     read-heavy ones (the pool's worker keeps them cached), cold ones like
//     write-heavy ones.
func SelectPrimitive(iso Isolation, ratio RWRatio, freq Frequency) Primitive {
	switch iso {
	case IsolationNone:
		return PrimNone
	case IsolationExclusive:
		return PrimSerialize
	case IsolationExclusiveWriteSharedRead:
		switch ratio {
		case RWReadHeavy:
			return PrimOptimisticScheduling
		case RWWriteHeavy:
			return PrimOptimisticLatch
		default: // RWBalanced
			if freq == FrequencyHigh {
				return PrimOptimisticScheduling
			}
			return PrimOptimisticLatch
		}
	default:
		return PrimNone
	}
}

// Isolation returns the resource's annotated isolation level.
func (r *Resource) Isolation() Isolation { return r.isolation }

// RWRatio returns the resource's annotated read/write ratio.
func (r *Resource) RWRatio() RWRatio { return r.rwRatio }

// Frequency returns the resource's annotated access frequency.
func (r *Resource) Frequency() Frequency { return r.frequency }

// Primitive returns the synchronization primitive in effect.
func (r *Resource) Primitive() Primitive { return r.prim }

// Pool returns the worker index whose pool serializes this resource.
func (r *Resource) Pool() int { return r.pool }

// ForcePrimitive overrides the cost model with an explicit primitive
// (the "unless the task requests a particular primitive explicitly through
// annotations" escape hatch of §4.1). It must be called before any task
// annotated with the resource is spawned.
func (r *Resource) ForcePrimitive(p Primitive) { r.prim = p }

// prefetch pulls the resource's object toward the cache.
func (r *Resource) prefetch() {
	if p, ok := r.Object.(Prefetchable); ok {
		p.Prefetch()
	}
}
