package mxtask

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mxtasking/internal/alloc"
	"mxtasking/internal/epoch"
	"mxtasking/internal/prefetch"
)

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of logical cores (worker goroutines).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// NUMANodes is the number of NUMA regions workers are spread over
	// (contiguous ranges, like the paper's machine). Defaults to 1.
	NUMANodes int
	// PrefetchDistance is how many tasks ahead the worker prefetches
	// data objects (§3; the paper found 2 best on its hardware). 0
	// disables prefetching.
	PrefetchDistance int
	// EpochPolicy selects the memory-reclamation mode (§4.4).
	// Defaults to epoch.Batched.
	EpochPolicy epoch.Policy
	// EpochBatch is the Batched policy's advancement batch (default 50).
	EpochBatch int
	// EpochInterval is the global epoch clock period (default 50ms,
	// following §4.4). Set negative to disable the ticker (tests and the
	// simulator advance epochs manually via AdvanceEpoch).
	EpochInterval time.Duration
	// PinWorkers locks each worker goroutine to an OS thread,
	// the closest available analogue to CPU pinning.
	PinWorkers bool
	// OnTaskPanic, when set, contains panics raised by task bodies: the
	// handler runs on the worker, the task counts as completed, and the
	// worker continues. When nil (default), a panicking task crashes the
	// program — the behaviour of a plain function call.
	OnTaskPanic func(recovered any, t *Task)
	// TraceCapacity, when positive, enables the per-worker event tracer
	// with a ring of this many events per worker (see Runtime.Trace).
	TraceCapacity int
	// AdaptivePrefetch lets each worker tune its own prefetch distance
	// at runtime within [1, PrefetchDistance*2] by hill-climbing on
	// batch execution time — the dynamic adjustment §3 sketches as a
	// natural extension. PrefetchDistance remains the starting point.
	AdaptivePrefetch bool
	// Steal configures cross-runtime pool stealing for runtimes created
	// as members of a Group (DESIGN.md §7). It has no effect on a
	// standalone Runtime.
	Steal StealConfig

	// sharedEpoch, when set by NewGroup, replaces the runtime's private
	// epoch manager so retired objects survive until cross-runtime
	// thieves have left their critical sections too; epochOffset is this
	// member's first worker slot in the shared manager.
	sharedEpoch *epoch.Manager
	epochOffset int
}

// StealConfig parameterizes cross-runtime pool stealing within a Group:
// idle workers of one member runtime drain whole task pools of overloaded
// sibling members, under the victim pool's own consume latch (DESIGN.md
// §7). Zero values select the documented defaults; stealing itself is off
// unless Enabled is set.
type StealConfig struct {
	// Enabled turns on cross-runtime stealing for Group members.
	Enabled bool
	// MinBacklog is the minimum stealable backlog (queued tasks not
	// bound to their home runtime) a victim must have before any member
	// attempts to steal from it. Defaults to 16.
	MinBacklog int
	// SparePools is the number of extra task pools each member carves
	// out beyond its per-worker pools. Spare pools are scheduling
	// channels without a resident worker: external spawns and resource
	// assignment round-robin over them too, so a hot member can expose
	// more independent consume latches than it has workers — the
	// structural headroom thieves need. Defaults to min(8, groupWorkers
	// − memberWorkers); 0 keeps the default, negative disables spares.
	SparePools int
	// IdleStreak is how many consecutive empty scheduling rounds a
	// worker must observe before it considers stealing from a sibling
	// runtime (the hysteresis that keeps a busy group from ping-ponging
	// pools). Failed attempts back the worker off exponentially on top.
	// Defaults to 2.
	IdleStreak int
}

func (c *StealConfig) applyDefaults() {
	if c.MinBacklog <= 0 {
		c.MinBacklog = 16
	}
	if c.IdleStreak <= 0 {
		c.IdleStreak = 2
	}
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.NUMANodes <= 0 {
		c.NUMANodes = 1
	}
	if c.EpochBatch <= 0 {
		c.EpochBatch = epoch.DefaultBatchSize
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 50 * time.Millisecond
	}
	c.Steal.applyDefaults()
}

// Runtime is the MxTasking engine: a set of workers, their task pools, the
// epoch manager and the task allocator. It mediates between the task-based
// execution model and Go's scheduler the way the paper's library mediates
// between tasks and OS threads (§2.3).
type Runtime struct {
	cfg      Config
	workers  []*Worker
	pools    []*Pool // per-worker pools first, then spare pools
	epochMgr *epoch.Manager
	alloc    *alloc.Allocator

	group *Group // stealing group this runtime belongs to, or nil
	node  int    // this runtime's index within group

	// learned, when set via AttachLearnedPrefetch, is the learned
	// prefetcher's shared metrics aggregate; Stats folds it into the
	// WorkerStats Learned* fields.
	learned atomic.Pointer[prefetch.Metrics]

	// interleave, when set via AttachInterleave, snapshots the attached
	// group-descent counters; Stats folds them into the WorkerStats
	// Interleave* fields.
	interleave interleavePtr

	pending  atomic.Int64 // spawned but not yet completed tasks
	spawnRR  atomic.Uint64
	resRR    atomic.Uint64
	stopped  atomic.Bool
	started  atomic.Bool
	wg       sync.WaitGroup
	stopTick chan struct{}
}

// New creates a runtime. Call Start before spawning tasks.
func New(cfg Config) *Runtime {
	cfg.applyDefaults()
	rt := &Runtime{
		cfg:      cfg,
		epochMgr: cfg.sharedEpoch,
		alloc:    alloc.New(cfg.Workers, cfg.NUMANodes),
		stopTick: make(chan struct{}),
	}
	if rt.epochMgr == nil {
		rt.epochMgr = epoch.NewManager(cfg.Workers, cfg.EpochPolicy, cfg.EpochBatch)
	}
	spares := 0
	if cfg.Steal.Enabled && cfg.Steal.SparePools > 0 {
		spares = cfg.Steal.SparePools
	}
	rt.pools = make([]*Pool, cfg.Workers+spares)
	for i := range rt.pools {
		home := i
		if i >= cfg.Workers {
			home = -1 // spare pool: no resident worker
		}
		rt.pools[i] = newPool(i, home)
	}
	perNode := (cfg.Workers + cfg.NUMANodes - 1) / cfg.NUMANodes
	rt.workers = make([]*Worker, cfg.Workers)
	for i := range rt.workers {
		node := i / perNode
		if node >= cfg.NUMANodes {
			node = cfg.NUMANodes - 1
		}
		w := &Worker{
			id:    i,
			numa:  node,
			rt:    rt,
			pool:  rt.pools[i],
			epoch: rt.epochMgr.Worker(cfg.epochOffset + i),
			heap:  rt.alloc.Core(i),
			trace: newTracer(cfg.TraceCapacity),
		}
		w.ctx = Context{w: w}
		rt.workers[i] = w
	}
	return rt
}

// Group returns the stealing group this runtime belongs to, or nil for a
// standalone runtime (or a member of a non-stealing group).
func (rt *Runtime) Group() *Group {
	if rt.group != nil && rt.group.steal.Enabled {
		return rt.group
	}
	return nil
}

// Node returns this runtime's index within its group (0 standalone).
func (rt *Runtime) Node() int { return rt.node }

// Pools returns the number of task pools (worker pools plus spares).
func (rt *Runtime) Pools() int { return len(rt.pools) }

// stealableBacklog estimates how many queued tasks a sibling runtime's
// workers could legally execute right now.
func (rt *Runtime) stealableBacklog() int64 {
	var n int64
	for _, p := range rt.pools {
		n += int64(p.StealableLen())
	}
	return n
}

// Workers returns the number of logical cores.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Config returns the runtime's effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Start launches the worker goroutines and the epoch clock.
func (rt *Runtime) Start() {
	if rt.started.Swap(true) {
		panic("mxtask: Runtime started twice")
	}
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go w.run()
	}
	if rt.cfg.EpochInterval > 0 && rt.cfg.EpochPolicy != epoch.Off {
		rt.wg.Add(1)
		go rt.epochClock()
	}
}

func (rt *Runtime) epochClock() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.EpochInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopTick:
			return
		case <-ticker.C:
			rt.epochMgr.Advance()
		}
	}
}

// AdvanceEpoch manually advances the global epoch (for tests and harnesses
// that disabled the ticker).
func (rt *Runtime) AdvanceEpoch() { rt.epochMgr.Advance() }

// Stop shuts the runtime down. Workers finish their current batch and
// exit; queued tasks that have not started are dropped. Use Drain first to
// run everything to completion.
func (rt *Runtime) Stop() {
	if !rt.started.Load() || rt.stopped.Swap(true) {
		return
	}
	close(rt.stopTick)
	rt.wg.Wait()
}

// Drain blocks until every spawned task has completed. It must not be
// called from a task (a task waiting for all tasks deadlocks by
// construction).
func (rt *Runtime) Drain() {
	for rt.pending.Load() > 0 {
		runtime.Gosched()
	}
}

// Pending returns the number of spawned-but-incomplete tasks.
func (rt *Runtime) Pending() int64 { return rt.pending.Load() }

// CreateResource wraps obj in an annotated Resource (paper Fig. 2 line 1).
// size is the object's size in bytes, which bounds prefetching. The
// synchronization primitive is selected by the cost model (§4.2) from the
// three annotations; the resource's serializing pool is assigned
// round-robin across workers.
func (rt *Runtime) CreateResource(obj any, size int, iso Isolation, ratio RWRatio, freq Frequency) *Resource {
	r := &Resource{
		Object:    obj,
		Size:      size,
		isolation: iso,
		rwRatio:   ratio,
		frequency: freq,
		prim:      SelectPrimitive(iso, ratio, freq),
	}
	r.pool = int(rt.resRR.Add(1)-1) % len(rt.pools)
	return r
}

// NewTask creates a task outside any worker (e.g. from the application's
// driver goroutine). Tasks created this way are garbage-collected rather
// than recycled; inside tasks, use Context.NewTask to hit the core-heap
// fast path.
func (rt *Runtime) NewTask(fn Func, arg any) *Task {
	t := &Task{}
	t.reset(fn, arg)
	return t
}

// Spawn submits a task for execution (paper Fig. 2 line 6). It is safe to
// call from anywhere; inside a task body, Context.Spawn is equivalent and
// counts toward the spawning worker's statistics.
func (rt *Runtime) Spawn(t *Task) {
	if t.fn == nil {
		panic("mxtask: Spawn of task with nil function")
	}
	rt.pending.Add(1)
	if b := t.after; b != nil && b.enqueue(t, AnyCore) {
		return // withheld until the barrier releases
	}
	rt.schedule(t, AnyCore)
}

// schedule implements the scheduler side of Figure 5: route to the
// resource's pool when scheduling synchronizes the access, else honour an
// explicit core/NUMA annotation, else stay local. localPool is an index
// into rt.pools (a worker id on the common path, or the home pool a stolen
// task was drained from); out-of-range hints fall back to round-robin.
func (rt *Runtime) schedule(t *Task, localPool int) {
	res := t.res
	switch {
	case res != nil && (res.prim.serializesAll() ||
		(res.prim.serializesWrites() && t.mode == Write)):
		rt.pools[res.pool].Push(t)
	case t.targetCore != AnyCore:
		rt.pools[t.targetCore%rt.cfg.Workers].Push(t)
	case t.targetNUMA != AnyCore:
		rt.pools[rt.pickInNUMA(t.targetNUMA)].Push(t)
	case localPool != AnyCore && localPool < len(rt.pools):
		rt.pools[localPool].Push(t)
	default:
		// External producers have no local pool; distribute
		// round-robin over every pool, spares included, so a hot
		// runtime exposes all its consume latches to thieves.
		rt.pools[int(rt.spawnRR.Add(1)-1)%len(rt.pools)].Push(t)
	}
}

// pickInNUMA returns the least-loaded worker of the given NUMA node.
func (rt *Runtime) pickInNUMA(node int) int {
	best, bestLen := -1, int(^uint(0)>>1)
	for _, w := range rt.workers {
		if w.numa != node%rt.cfg.NUMANodes {
			continue
		}
		if l := w.pool.Len(); l < bestLen {
			best, bestLen = w.id, l
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// AttachLearnedPrefetch connects a learned prefetcher's shared metrics to
// the runtime so Stats surfaces its counters next to the workers' own
// (hits, misses, induced strides, widest window). The streams themselves
// live in the application layer — e.g. one per server connection — and
// feed m concurrently; attaching is observability wiring only.
func (rt *Runtime) AttachLearnedPrefetch(m *prefetch.Metrics) { rt.learned.Store(m) }

// LearnedPrefetch returns the attached learned-prefetch metrics, or nil.
func (rt *Runtime) LearnedPrefetch() *prefetch.Metrics { return rt.learned.Load() }

// Stats aggregates all workers' counters, plus the attached learned
// prefetcher's (when any).
func (rt *Runtime) Stats() WorkerStats {
	var s WorkerStats
	for _, w := range rt.workers {
		ws := w.Stats()
		s.Executed += ws.Executed
		s.Spawned += ws.Spawned
		s.Prefetches += ws.Prefetches
		s.ReadRetries += ws.ReadRetries
		s.PoolsStolen += ws.PoolsStolen
		s.LocalFastPath += ws.LocalFastPath
	}
	if m := rt.learned.Load(); m != nil {
		s.LearnedHits = m.Hits.Load()
		s.LearnedMisses = m.Misses.Load()
		s.LearnedStrides = m.Induced.Load()
		s.LearnedIssued = m.Issued.Load()
		s.LearnedWindowMax = m.WindowMax()
	}
	if src := rt.interleave.Load(); src != nil {
		il := src.fn()
		s.InterleaveGroups = il.Groups
		s.InterleaveCursors = il.Cursors
		s.InterleaveTurns = il.Turns
		s.InterleaveSteps = il.Steps
		s.InterleaveRetired = il.Retired
		s.InterleaveFallbacks = il.Fallbacks
		s.InterleaveMaxWidth = il.MaxWidth
	}
	return s
}

// AllocStats exposes the task allocator's counters (Figure 7's experiment).
func (rt *Runtime) AllocStats() *alloc.Stats { return &rt.alloc.Stats }

// EpochManager exposes the reclamation manager (Figure 11's experiment).
func (rt *Runtime) EpochManager() *epoch.Manager { return rt.epochMgr }

// String describes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("mxtasking(workers=%d numa=%d prefetch=%d epoch=%s)",
		rt.cfg.Workers, rt.cfg.NUMANodes, rt.cfg.PrefetchDistance, rt.cfg.EpochPolicy)
}
