package mxtask

import (
	"sync/atomic"
	"testing"
	"time"

	"mxtasking/internal/epoch"
)

func newTestRuntime(workers int) *Runtime {
	return New(Config{
		Workers:       workers,
		EpochPolicy:   epoch.Batched,
		EpochInterval: -1, // manual epoch control in tests
	})
}

func TestSpawnAndDrain(t *testing.T) {
	rt := newTestRuntime(2)
	rt.Start()
	defer rt.Stop()

	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		rt.Spawn(rt.NewTask(func(*Context, *Task) { ran.Add(1) }, nil))
	}
	rt.Drain()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
	if s := rt.Stats(); s.Executed != 100 {
		t.Fatalf("Stats.Executed = %d, want 100", s.Executed)
	}
}

func TestFollowUpSpawns(t *testing.T) {
	rt := newTestRuntime(2)
	rt.Start()
	defer rt.Stop()

	var ran atomic.Int64
	// Each task spawns a chain of followers, like tree traversal tasks.
	var step Func
	step = func(ctx *Context, _ *Task) {
		ran.Add(1)
		depth := ctx.Runtime() // keep signature realistic
		_ = depth
		if n := ran.Load(); n < 1000 {
			ctx.Spawn(ctx.NewTask(step, nil))
		}
	}
	rt.Spawn(rt.NewTask(step, nil))
	rt.Drain()
	if got := ran.Load(); got < 1000 {
		t.Fatalf("chain ran %d tasks, want >= 1000", got)
	}
}

func TestExclusiveResourceSerializesWithoutLatches(t *testing.T) {
	rt := newTestRuntime(4)
	rt.Start()
	defer rt.Stop()

	// A plain, unsynchronized counter protected purely by scheduling:
	// all writers land in the resource's pool and run in order.
	counter := 0
	res := rt.CreateResource(&counter, 8, IsolationExclusive, RWWriteHeavy, FrequencyHigh)
	if res.Primitive() != PrimSerialize {
		t.Fatalf("primitive = %v, want serialize-by-scheduling", res.Primitive())
	}
	const n = 5000
	for i := 0; i < n; i++ {
		task := rt.NewTask(func(*Context, *Task) { counter++ }, nil)
		task.AnnotateResource(res, Write)
		rt.Spawn(task)
	}
	rt.Drain()
	if counter != n {
		t.Fatalf("counter = %d, want %d (scheduling-based synchronization lost updates)", counter, n)
	}
}

func TestOptimisticSchedulingReadersSeeConsistentState(t *testing.T) {
	rt := newTestRuntime(4)
	rt.Start()
	defer rt.Stop()

	// Writers keep pair[0] == pair[1]; validated readers must never see
	// them differ. Reads intentionally race with writes (optimistic), so
	// the fields are atomics; the *logical* torn-pair detection is the
	// version validation under test.
	var pair [2]atomic.Int64
	res := rt.CreateResource(&pair, 16, IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh)
	if res.Primitive() != PrimOptimisticScheduling {
		t.Fatalf("primitive = %v, want optimistic-scheduling", res.Primitive())
	}
	var torn atomic.Int64
	var writes atomic.Int64
	const writers = 2000
	const readers = 2000
	for i := 0; i < writers; i++ {
		task := rt.NewTask(func(*Context, *Task) {
			v := writes.Add(1)
			pair[0].Store(v)
			pair[1].Store(v)
		}, nil)
		task.AnnotateResource(res, Write)
		rt.Spawn(task)
	}
	for i := 0; i < readers; i++ {
		task := rt.NewTask(func(*Context, *Task) {
			a := pair[0].Load()
			b := pair[1].Load()
			if a != b {
				torn.Add(1)
			}
		}, nil)
		task.AnnotateResource(res, ReadOnly)
		rt.Spawn(task)
	}
	rt.Drain()
	// A reader body may observe a torn pair mid-retry; what matters is
	// that the *final validated* execution did not. Since the body
	// records unconditionally, we cannot assert torn == 0 here; instead
	// we assert writers were serialized (all updates survived).
	if got := pair[0].Load(); got != writers {
		t.Fatalf("pair[0] = %d, want %d (writers not serialized)", got, writers)
	}
}

func TestOptimisticReadRetriesAreCounted(t *testing.T) {
	// Force a validation failure: a reader task whose resource version is
	// bumped mid-read by the test (not by a task).
	rt := newTestRuntime(1)
	res := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWWriteHeavy, FrequencyLow)
	if res.Primitive() != PrimOptimisticLatch {
		t.Fatalf("primitive = %v, want optimistic-latch", res.Primitive())
	}
	rt.Start()
	defer rt.Stop()

	dirty := false
	task := rt.NewTask(func(*Context, *Task) {
		if !dirty {
			dirty = true
			// Simulate a concurrent write landing mid-read.
			res.version.Lock()
			res.version.Unlock()
		}
	}, nil)
	task.AnnotateResource(res, ReadOnly)
	rt.Spawn(task)
	rt.Drain()
	if s := rt.Stats(); s.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want 1", s.ReadRetries)
	}
}

func TestPriorityOrderWithinPool(t *testing.T) {
	rt := newTestRuntime(1)
	var order []Priority
	record := func(p Priority) Func {
		return func(*Context, *Task) { order = append(order, p) }
	}
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh, PriorityLow, PriorityHigh} {
		task := rt.NewTask(record(p), nil)
		task.AnnotatePriority(p)
		rt.Spawn(task)
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
	want := []Priority{PriorityHigh, PriorityHigh, PriorityNormal, PriorityLow, PriorityLow}
	if len(order) != len(want) {
		t.Fatalf("executed %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestCoreAnnotationPinsTask(t *testing.T) {
	rt := newTestRuntime(4)
	rt.Start()
	defer rt.Stop()

	var executedOn atomic.Int64
	executedOn.Store(-1)
	task := rt.NewTask(func(ctx *Context, _ *Task) { executedOn.Store(int64(ctx.WorkerID())) }, nil)
	task.AnnotateCore(2)
	rt.Spawn(task)
	rt.Drain()
	// A pinned task lands in pool 2; an idle worker may steal the whole
	// pool, so the guarantee is placement, not execution. With all
	// workers otherwise idle, stealing is still possible — accept any
	// worker but verify the task ran exactly once.
	if executedOn.Load() < 0 {
		t.Fatal("pinned task never executed")
	}
}

func TestNUMAAnnotationStaysInNode(t *testing.T) {
	rt := New(Config{Workers: 4, NUMANodes: 2, EpochInterval: -1})
	// Workers 0,1 -> node 0; workers 2,3 -> node 1.
	task := rt.NewTask(func(*Context, *Task) {}, nil)
	task.AnnotateNUMA(1)
	rt.schedule(task, AnyCore)
	if rt.workers[2].pool.Len()+rt.workers[3].pool.Len() != 1 {
		t.Fatal("NUMA-annotated task not placed in node 1's pools")
	}
	if rt.workers[0].pool.Len()+rt.workers[1].pool.Len() != 0 {
		t.Fatal("NUMA-annotated task leaked into node 0's pools")
	}
}

func TestTaskRecycling(t *testing.T) {
	rt := newTestRuntime(1)
	rt.Start()
	defer rt.Stop()

	// Warm up, then check steady-state allocations hit the core heap.
	var chain Func
	remaining := atomic.Int64{}
	remaining.Store(2000)
	chain = func(ctx *Context, _ *Task) {
		if remaining.Add(-1) > 0 {
			ctx.Spawn(ctx.NewTask(chain, nil))
		}
	}
	rt.Spawn(rt.NewTask(chain, nil))
	rt.Drain()
	hits := rt.AllocStats().CoreHits.Load()
	if hits < 1900 {
		t.Fatalf("core-heap hits = %d, want ~2000 (tasks are not being recycled)", hits)
	}
}

func TestEpochRetireAndCollect(t *testing.T) {
	rt := newTestRuntime(1)
	rt.Start()
	defer rt.Stop()

	var freed atomic.Int64
	task := rt.NewTask(func(ctx *Context, _ *Task) {
		ctx.Retire(func() { freed.Add(1) })
	}, nil)
	rt.Spawn(task)
	rt.Drain()
	if freed.Load() != 0 {
		t.Fatal("retiree freed before epoch advanced")
	}
	rt.AdvanceEpoch()
	// Trigger worker activity so Collect runs.
	rt.Spawn(rt.NewTask(func(*Context, *Task) {}, nil))
	rt.Drain()
	rt.AdvanceEpoch()
	rt.Spawn(rt.NewTask(func(*Context, *Task) {}, nil))
	rt.Drain()
	deadline := 0
	for freed.Load() == 0 && deadline < 1000 {
		rt.AdvanceEpoch()
		rt.Spawn(rt.NewTask(func(*Context, *Task) {}, nil))
		rt.Drain()
		deadline++
	}
	if freed.Load() != 1 {
		t.Fatalf("retiree freed %d times, want 1", freed.Load())
	}
}

func TestSelectPrimitive(t *testing.T) {
	cases := []struct {
		iso   Isolation
		ratio RWRatio
		freq  Frequency
		want  Primitive
	}{
		{IsolationNone, RWBalanced, FrequencyNormal, PrimNone},
		{IsolationExclusive, RWReadHeavy, FrequencyHigh, PrimSerialize},
		{IsolationExclusive, RWWriteHeavy, FrequencyLow, PrimSerialize},
		{IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh, PrimOptimisticScheduling},
		{IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyLow, PrimOptimisticScheduling},
		{IsolationExclusiveWriteSharedRead, RWWriteHeavy, FrequencyNormal, PrimOptimisticLatch},
		{IsolationExclusiveWriteSharedRead, RWBalanced, FrequencyHigh, PrimOptimisticScheduling},
		{IsolationExclusiveWriteSharedRead, RWBalanced, FrequencyLow, PrimOptimisticLatch},
	}
	for _, c := range cases {
		if got := SelectPrimitive(c.iso, c.ratio, c.freq); got != c.want {
			t.Errorf("SelectPrimitive(%v,%v,%v) = %v, want %v", c.iso, c.ratio, c.freq, got, c.want)
		}
	}
}

func TestForcePrimitive(t *testing.T) {
	rt := newTestRuntime(2)
	res := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh)
	res.ForcePrimitive(PrimSpinlock)
	if res.Primitive() != PrimSpinlock {
		t.Fatal("ForcePrimitive did not take effect")
	}
	rt.Start()
	defer rt.Stop()
	counter := 0
	const n = 2000
	for i := 0; i < n; i++ {
		task := rt.NewTask(func(*Context, *Task) { counter++ }, nil)
		task.AnnotateResource(res, Write)
		rt.Spawn(task)
	}
	rt.Drain()
	if counter != n {
		t.Fatalf("counter = %d, want %d under forced spinlock", counter, n)
	}
}

type touchable struct {
	touched atomic.Int64
	buf     []byte
}

func (p *touchable) Prefetch() {
	p.touched.Add(1)
	var sink byte
	for i := 0; i < len(p.buf); i += 64 {
		sink += p.buf[i]
	}
	_ = sink
}

func TestPrefetchIssued(t *testing.T) {
	rt := New(Config{Workers: 1, PrefetchDistance: 2, EpochInterval: -1})
	obj := &touchable{buf: make([]byte, 1024)}
	res := rt.CreateResource(obj, 1024, IsolationNone, RWReadHeavy, FrequencyHigh)
	// Queue enough tasks before starting so the first batch has lookahead.
	const n = 50
	for i := 0; i < n; i++ {
		task := rt.NewTask(func(*Context, *Task) {}, nil)
		task.AnnotateResource(res, ReadOnly)
		rt.Spawn(task)
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
	if got := rt.Stats().Prefetches; got == 0 {
		t.Fatal("no prefetches issued despite distance 2 and annotated resources")
	}
	if obj.touched.Load() == 0 {
		t.Fatal("prefetch never touched the data object")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	rt := New(Config{Workers: 1, PrefetchDistance: 0, EpochInterval: -1})
	obj := &touchable{buf: make([]byte, 64)}
	res := rt.CreateResource(obj, 64, IsolationNone, RWReadHeavy, FrequencyHigh)
	for i := 0; i < 20; i++ {
		task := rt.NewTask(func(*Context, *Task) {}, nil)
		task.AnnotateResource(res, ReadOnly)
		rt.Spawn(task)
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
	if got := rt.Stats().Prefetches; got != 0 {
		t.Fatalf("prefetches = %d with distance 0, want 0", got)
	}
}

func TestStopIsIdempotent(t *testing.T) {
	rt := newTestRuntime(2)
	rt.Start()
	rt.Stop()
	rt.Stop() // must not panic or deadlock
}

func TestAnnotationStrings(t *testing.T) {
	if got := IsolationExclusiveWriteSharedRead.String(); got != "exclusive write; shared read" {
		t.Errorf("isolation string = %q", got)
	}
	if got := RWReadHeavy.String(); got != "read-heavy" {
		t.Errorf("rw ratio string = %q", got)
	}
	if got := FrequencyHigh.String(); got != "high" {
		t.Errorf("frequency string = %q", got)
	}
	if got := PriorityLow.String(); got != "low" {
		t.Errorf("priority string = %q", got)
	}
	if got := Write.String(); got != "write" {
		t.Errorf("access mode string = %q", got)
	}
	if got := PrimOptimisticScheduling.String(); got != "optimistic-scheduling" {
		t.Errorf("primitive string = %q", got)
	}
}

func TestOptimisticReadSpawnsOnceDespiteRetry(t *testing.T) {
	// A read task that spawns a follower and is forced to retry once must
	// publish exactly one follower: spawns inside optimistic reads are
	// buffered until validation succeeds.
	rt := newTestRuntime(1)
	res := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWWriteHeavy, FrequencyLow)
	rt.Start()
	defer rt.Stop()

	var followers atomic.Int64
	dirty := false
	task := rt.NewTask(func(ctx *Context, _ *Task) {
		ctx.Spawn(ctx.NewTask(func(*Context, *Task) { followers.Add(1) }, nil))
		if !dirty {
			dirty = true
			res.version.Lock()
			res.version.Unlock() // invalidate the in-flight read
		}
	}, nil)
	task.AnnotateResource(res, ReadOnly)
	rt.Spawn(task)
	rt.Drain()
	if got := rt.Stats().ReadRetries; got != 1 {
		t.Fatalf("ReadRetries = %d, want 1", got)
	}
	if got := followers.Load(); got != 1 {
		t.Fatalf("follower ran %d times, want exactly 1 (buffered spawn leaked)", got)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	rt := New(Config{Workers: 3, NUMANodes: 1, EpochInterval: -1})
	if rt.Workers() != 3 {
		t.Fatal("Workers accessor wrong")
	}
	if rt.Config().Workers != 3 {
		t.Fatal("Config accessor wrong")
	}
	if rt.EpochManager() == nil {
		t.Fatal("EpochManager accessor nil")
	}
	res := rt.CreateResource(nil, 64, IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh)
	if res.Isolation() != IsolationExclusiveWriteSharedRead ||
		res.RWRatio() != RWReadHeavy || res.Frequency() != FrequencyHigh {
		t.Fatal("resource annotation accessors wrong")
	}
	task := rt.NewTask(func(*Context, *Task) {}, nil)
	task.AnnotateResource(res, Write).AnnotatePriority(PriorityHigh)
	if task.Resource() != res || task.Mode() != Write || task.Priority() != PriorityHigh {
		t.Fatal("task annotation accessors wrong")
	}
	if rt.workers[0].pool.Home() != 0 {
		t.Fatal("pool Home wrong")
	}
	// All enum strings render (incl. invalid values).
	for _, s := range []string{
		Priority(9).String(), AccessMode(0).String(), Isolation(9).String(),
		RWRatio(9).String(), Frequency(9).String(), Primitive(9).String(),
		IsolationNone.String(), FrequencyLow.String(), RWBalanced.String(),
		PrimNone.String(), PrimSerialize.String(), PrimOptimisticLatch.String(),
		PrimRWLock.String(), PriorityNormal.String(), FrequencyNormal.String(),
		TraceKind(9).String(), TraceSteal.String(), TraceCollect.String(),
	} {
		if s == "" {
			t.Fatal("empty enum string")
		}
	}
}

func TestEpochClockTicks(t *testing.T) {
	rt := New(Config{Workers: 1, EpochPolicy: epoch.Batched, EpochInterval: time.Millisecond})
	rt.Start()
	start := rt.EpochManager().Global()
	deadline := time.Now().Add(2 * time.Second)
	for rt.EpochManager().Global() == start && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rt.Stop()
	if rt.EpochManager().Global() == start {
		t.Fatal("epoch clock never advanced")
	}
}

func TestContextNUMANode(t *testing.T) {
	rt := New(Config{Workers: 2, NUMANodes: 2, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()
	got := make(chan int, 1)
	task := rt.NewTask(func(ctx *Context, _ *Task) { got <- ctx.NUMANode() }, nil)
	task.AnnotateCore(1)
	rt.Spawn(task)
	rt.Drain()
	if node := <-got; node != 0 && node != 1 {
		t.Fatalf("NUMANode = %d", node)
	}
}
