package mxtask

import (
	"runtime"
	"sync/atomic"
	"testing"

	"mxtasking/internal/epoch"
)

func TestExternalSpawnsSpreadRoundRobin(t *testing.T) {
	rt := New(Config{Workers: 4, EpochInterval: -1})
	for i := 0; i < 40; i++ {
		rt.Spawn(rt.NewTask(func(*Context, *Task) {}, nil))
	}
	for i, w := range rt.workers {
		if got := w.pool.Len(); got != 10 {
			t.Fatalf("pool %d got %d tasks, want 10 (round-robin broken)", i, got)
		}
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
}

func TestResourcePoolsSpreadRoundRobin(t *testing.T) {
	rt := New(Config{Workers: 4, EpochInterval: -1})
	counts := make([]int, 4)
	for i := 0; i < 40; i++ {
		res := rt.CreateResource(nil, 0, IsolationExclusive, RWBalanced, FrequencyNormal)
		counts[res.Pool()]++
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("worker %d owns %d resources, want 10", i, c)
		}
	}
}

func TestPickInNUMAPrefersLeastLoaded(t *testing.T) {
	rt := New(Config{Workers: 4, NUMANodes: 2, EpochInterval: -1})
	// Preload worker 2's pool so NUMA-1 placement prefers worker 3.
	for i := 0; i < 5; i++ {
		task := rt.NewTask(func(*Context, *Task) {}, nil)
		task.AnnotateCore(2)
		rt.Spawn(task)
	}
	task := rt.NewTask(func(*Context, *Task) {}, nil)
	task.AnnotateNUMA(1)
	rt.schedule(task, AnyCore)
	if got := rt.workers[3].pool.Len(); got != 1 {
		t.Fatalf("NUMA task not placed on least-loaded worker 3 (len %d)", got)
	}
	rt.Start()
	defer rt.Stop()
	rt.Drain()
}

func TestStopDropsQueuedWork(t *testing.T) {
	rt := New(Config{Workers: 1, EpochInterval: -1})
	var ran atomic.Int64
	rt.Start()
	// Flood, then stop without draining: the runtime must terminate even
	// with work queued, and must not run tasks after Stop returns.
	for i := 0; i < 100000; i++ {
		rt.Spawn(rt.NewTask(func(*Context, *Task) { ran.Add(1) }, nil))
	}
	rt.Stop()
	after := ran.Load()
	if after == 0 {
		t.Log("no tasks ran before stop (acceptable: stop won the race)")
	}
	done := ran.Load()
	if done != after {
		t.Fatalf("tasks kept running after Stop returned (%d -> %d)", after, done)
	}
}

func TestSpawnNilFuncPanics(t *testing.T) {
	rt := New(Config{Workers: 1, EpochInterval: -1})
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn of a nil-func task did not panic")
		}
	}()
	rt.Spawn(&Task{})
}

func TestMultipleExclusiveResourcesInterleave(t *testing.T) {
	// Several independently-serialized counters updated concurrently:
	// each must be exact, and they must not serialize against each other
	// globally (they may land in different pools).
	rt := New(Config{Workers: 4, EpochPolicy: epoch.Off, EpochInterval: -1})
	rt.Start()
	defer rt.Stop()

	const counters = 8
	const perCounter = 2000
	vals := make([]int, counters)
	ress := make([]*Resource, counters)
	pools := map[int]bool{}
	for i := range ress {
		ress[i] = rt.CreateResource(&vals[i], 8, IsolationExclusive, RWWriteHeavy, FrequencyHigh)
		pools[ress[i].Pool()] = true
	}
	if len(pools) < 2 {
		t.Fatalf("all %d resources share %d pool(s); serialization would be global", counters, len(pools))
	}
	for i := 0; i < counters; i++ {
		for j := 0; j < perCounter; j++ {
			i := i
			task := rt.NewTask(func(*Context, *Task) { vals[i]++ }, nil)
			task.AnnotateResource(ress[i], Write)
			rt.Spawn(task)
		}
	}
	rt.Drain()
	for i, v := range vals {
		if v != perCounter {
			t.Fatalf("counter %d = %d, want %d", i, v, perCounter)
		}
	}
}

func TestRuntimeString(t *testing.T) {
	rt := New(Config{Workers: 3, NUMANodes: 1, PrefetchDistance: 2, EpochInterval: -1})
	if s := rt.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestWorkerAccessors(t *testing.T) {
	rt := New(Config{Workers: 4, NUMANodes: 2, EpochInterval: -1})
	if rt.workers[0].ID() != 0 || rt.workers[3].ID() != 3 {
		t.Fatal("worker IDs wrong")
	}
	if rt.workers[0].NUMA() != 0 || rt.workers[3].NUMA() != 1 {
		t.Fatal("worker NUMA mapping wrong")
	}
}

// TestSchedulerRoutingMatrix pins Figure 5's scheduler-side decision table:
// which (primitive, access mode) combinations route to the resource's pool
// versus staying local.
func TestSchedulerRoutingMatrix(t *testing.T) {
	cases := []struct {
		prim       Primitive
		mode       AccessMode
		wantRouted bool
	}{
		{PrimNone, ReadOnly, false},
		{PrimNone, Write, false},
		{PrimSerialize, ReadOnly, true}, // all accesses serialized
		{PrimSerialize, Write, true},
		{PrimOptimisticScheduling, ReadOnly, false}, // readers stay local
		{PrimOptimisticScheduling, Write, true},     // writers to the pool
		{PrimOptimisticLatch, ReadOnly, false},
		{PrimOptimisticLatch, Write, false}, // latched, not scheduled
		{PrimSpinlock, ReadOnly, false},
		{PrimSpinlock, Write, false},
		{PrimRWLock, ReadOnly, false},
		{PrimRWLock, Write, false},
	}
	for _, c := range cases {
		rt := New(Config{Workers: 4, EpochInterval: -1})
		res := rt.CreateResource(nil, 0, IsolationNone, RWBalanced, FrequencyNormal)
		res.ForcePrimitive(c.prim)
		// Force the resource pool somewhere that is NOT the local
		// worker we pass to schedule.
		for res.Pool() == 1 {
			res = rt.CreateResource(nil, 0, IsolationNone, RWBalanced, FrequencyNormal)
			res.ForcePrimitive(c.prim)
		}
		task := rt.NewTask(func(*Context, *Task) {}, nil)
		task.AnnotateResource(res, c.mode)
		rt.schedule(task, 1) // "local" worker is 1
		routedLen := rt.workers[res.Pool()].pool.Len()
		localLen := rt.workers[1].pool.Len()
		if c.wantRouted && routedLen != 1 {
			t.Errorf("%v/%v: task not routed to resource pool", c.prim, c.mode)
		}
		if !c.wantRouted && localLen != 1 {
			t.Errorf("%v/%v: task did not stay local", c.prim, c.mode)
		}
	}
}

// TestBarrierSpawnFromOptimisticRead covers the buffered-publish path: a
// read task (retried once) spawns a barrier-annotated follower; the
// follower must be withheld until Arrive, and fire exactly once.
func TestBarrierSpawnFromOptimisticRead(t *testing.T) {
	rt := newTestRuntime(1)
	res := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWWriteHeavy, FrequencyLow)
	rt.Start()
	defer rt.Stop()

	b := rt.NewBarrier(1)
	var followerRan, readerRuns atomic.Int64
	dirty := false
	reader := rt.NewTask(func(ctx *Context, _ *Task) {
		readerRuns.Add(1)
		f := ctx.NewTask(func(*Context, *Task) { followerRan.Add(1) }, nil)
		f.AnnotateAfter(b)
		ctx.Spawn(f)
		if !dirty {
			dirty = true
			res.version.Lock()
			res.version.Unlock() // force one retry
		}
	}, nil)
	reader.AnnotateResource(res, ReadOnly)
	rt.Spawn(reader)

	// Wait for the reader to complete (the withheld follower keeps
	// Pending at 1).
	for readerRuns.Load() < 2 || rt.Pending() > 1 {
		runtime.Gosched()
	}
	if followerRan.Load() != 0 {
		t.Fatal("barrier-annotated follower ran before Arrive")
	}
	b.Arrive()
	rt.Drain()
	if followerRan.Load() != 1 {
		t.Fatalf("follower ran %d times, want exactly 1", followerRan.Load())
	}
}
