package mxtask

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"mxtasking/internal/epoch"
)

// yield hands the OS thread over between task executions. On hosts with
// fewer CPUs than workers (CI containers are often single-core) the hot
// worker would otherwise drain its entire backlog within one scheduler
// slice before any would-be thief wakes up — yielding interleaves the
// workers the way a multi-core box does naturally, which both lets steals
// happen and widens the overlap window the invariant checks probe.
func yield() { runtime.Gosched() }

// newStealGroup builds a stealing group tuned for tests: a low backlog
// threshold and a single-round idle gate so steals happen fast even on
// small workloads, and a manual epoch clock so tests control reclamation.
func newStealGroup(workers, nodes int) *Group {
	return NewGroup(Config{
		Workers:       workers,
		EpochPolicy:   epoch.Batched,
		EpochInterval: -1,
		Steal: StealConfig{
			Enabled:    true,
			MinBacklog: 2,
			IdleStreak: 1,
		},
	}, nodes)
}

// stealSeeds returns how many seeds the stress tests sweep. The default
// keeps `go test ./...` quick; MXTASK_STEAL_SEEDS=20 is the CI sweep
// (make steal-stress).
func stealSeeds(t *testing.T) int {
	if s := os.Getenv("MXTASK_STEAL_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad MXTASK_STEAL_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 1
	}
	return 4
}

// TestGroupStealStressSeeds is the seeded scheduler stress test: N member
// runtimes under adversarial spawn patterns — all load on node 0, bursty
// waves, and resource-bound mixes — run to Drain, asserting that no task
// is lost, double-executed, or executed concurrently with a sibling task
// of the same serialization domain.
//
// Instrumentation: every task carries a unique id into an execution ledger
// (exactly-once check), and every write task on an optimistically
// scheduled resource enters/leaves a per-resource "execution epoch"
// counter that must never exceed 1 (the cross-runtime consume-latch
// mutual-exclusion check). Task bodies touch atomics only, so the test is
// meaningful under -race.
func TestGroupStealStressSeeds(t *testing.T) {
	seeds := stealSeeds(t)
	patterns := []struct {
		name string
		run  func(t *testing.T, rng *rand.Rand)
	}{
		{"hot-node-0", stressHotNode},
		{"bursty-waves", stressBurstyWaves},
		{"resource-mix", stressResourceMix},
	}
	for seed := 0; seed < seeds; seed++ {
		for _, p := range patterns {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, p.name), func(t *testing.T) {
				p.run(t, rand.New(rand.NewSource(0xabcd^int64(seed)*7919)))
			})
		}
	}
}

// ledger tracks exactly-once execution: slot i counts executions of task i.
type ledger struct {
	execs []atomic.Int32
}

func newLedger(n int) *ledger {
	return &ledger{execs: make([]atomic.Int32, n)}
}

func (l *ledger) mark(i int) { l.execs[i].Add(1) }

func (l *ledger) check(t *testing.T) {
	t.Helper()
	for i := range l.execs {
		if n := l.execs[i].Load(); n != 1 {
			t.Fatalf("task %d executed %d times, want exactly once", i, n)
		}
	}
}

// domain is one serialization domain: an optimistically scheduled resource
// whose write tasks must never overlap, wherever they execute. active is
// the execution-epoch gauge; a second concurrent executor trips violation.
type domain struct {
	res       *Resource
	active    atomic.Int32
	violation atomic.Bool
	writes    atomic.Int64
}

func (d *domain) enter() {
	if d.active.Add(1) != 1 {
		d.violation.Store(true)
	}
	d.writes.Add(1)
}

func (d *domain) leave() { d.active.Add(-1) }

func newDomains(rt *Runtime, n int) []*domain {
	ds := make([]*domain, n)
	for i := range ds {
		ds[i] = &domain{}
		// Read-heavy shared resource → PrimOptimisticScheduling: writers
		// serialize through the resource's pool, and are stealable.
		ds[i].res = rt.CreateResource(ds[i], 64,
			IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh)
	}
	return ds
}

func checkDomains(t *testing.T, ds []*domain) {
	t.Helper()
	for i, d := range ds {
		if d.violation.Load() {
			t.Fatalf("domain %d: two executors ran write tasks concurrently", i)
		}
		if a := d.active.Load(); a != 0 {
			t.Fatalf("domain %d: active gauge %d after drain", i, a)
		}
	}
}

// stressHotNode piles every spawn onto node 0 while nodes 1..N idle — the
// hot-shard pattern the stealing scheduler exists to fix.
func stressHotNode(t *testing.T, rng *rand.Rand) {
	g := newStealGroup(4, 4)
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	const tasks = 4000
	led := newLedger(tasks)
	ds := newDomains(hot, 8)
	for i := 0; i < tasks; i++ {
		i := i
		d := ds[rng.Intn(len(ds))]
		task := hot.NewTask(func(ctx *Context, t *Task) {
			d.enter()
			led.mark(i)
			yield()
			d.leave()
		}, nil).AnnotateResource(d.res, Write)
		hot.Spawn(task)
	}
	g.Drain()
	led.check(t)
	checkDomains(t, ds)
	if got := hot.Pending(); got != 0 {
		t.Fatalf("hot runtime pending=%d after drain", got)
	}
}

// stressBurstyWaves alternates which node gets slammed, wave by wave, with
// drains between some waves — exercising hysteresis and the corrective
// load republication after a victim empties.
func stressBurstyWaves(t *testing.T, rng *rand.Rand) {
	g := newStealGroup(4, 3)
	g.Start()
	defer g.Stop()
	const waves, perWave = 6, 900
	led := newLedger(waves * perWave)
	for wv := 0; wv < waves; wv++ {
		target := g.Runtime(rng.Intn(g.Size()))
		ds := newDomains(target, 4)
		for i := 0; i < perWave; i++ {
			id := wv*perWave + i
			d := ds[rng.Intn(len(ds))]
			task := target.NewTask(func(ctx *Context, t *Task) {
				d.enter()
				led.mark(id)
				yield()
				d.leave()
			}, nil).AnnotateResource(d.res, Write)
			target.Spawn(task)
		}
		if rng.Intn(2) == 0 {
			g.Drain()
			checkDomains(t, ds)
		}
	}
	g.Drain()
	led.check(t)
}

// stressResourceMix interleaves stealable optimistic writes, pinned
// exclusive-resource tasks, locality-annotated tasks, plain unbound tasks,
// and task chains (spawns from inside bodies — including stolen ones,
// which must route back into the home runtime).
func stressResourceMix(t *testing.T, rng *rand.Rand) {
	g := newStealGroup(4, 4)
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	const roots = 1500
	// Each root either runs alone (1 execution slot) or chains one child.
	led := newLedger(2 * roots)
	ds := newDomains(hot, 6)
	var excl domain
	exclRes := hot.CreateResource(&excl, 64, IsolationExclusive, RWWriteHeavy, FrequencyHigh)
	var pinWrong atomic.Int64
	for i := 0; i < roots; i++ {
		id := i
		switch rng.Intn(5) {
		case 0: // pinned: exclusive resource, must stay on node 0
			task := hot.NewTask(func(ctx *Context, t *Task) {
				excl.enter()
				if ctx.Node() != 0 || ctx.Stolen() {
					pinWrong.Add(1)
				}
				led.mark(id)
				led.mark(roots + id) // chain slot unused: fill it
				excl.leave()
			}, nil).AnnotateResource(exclRes, Write)
			hot.Spawn(task)
		case 1: // locality-annotated, must stay on node 0
			task := hot.NewTask(func(ctx *Context, t *Task) {
				if ctx.Node() != 0 || ctx.Stolen() {
					pinWrong.Add(1)
				}
				led.mark(id)
				led.mark(roots + id)
			}, nil).AnnotateNUMA(0)
			hot.Spawn(task)
		case 2: // stealable write with a chained child spawned in-body
			d := ds[rng.Intn(len(ds))]
			cd := ds[rng.Intn(len(ds))]
			task := hot.NewTask(func(ctx *Context, t *Task) {
				d.enter()
				led.mark(id)
				yield()
				d.leave()
				child := ctx.NewTask(func(ctx *Context, t *Task) {
					cd.enter()
					led.mark(roots + id)
					yield()
					cd.leave()
				}, nil).AnnotateResource(cd.res, Write)
				ctx.Spawn(child)
			}, nil).AnnotateResource(d.res, Write)
			hot.Spawn(task)
		case 3: // optimistic read against a hot domain
			d := ds[rng.Intn(len(ds))]
			task := hot.NewTask(func(ctx *Context, t *Task) {
				led.mark(id)
				led.mark(roots + id)
			}, nil).AnnotateResource(d.res, ReadOnly)
			hot.Spawn(task)
		default: // plain unbound task
			task := hot.NewTask(func(ctx *Context, t *Task) {
				led.mark(id)
				led.mark(roots + id)
			}, nil)
			hot.Spawn(task)
		}
	}
	g.Drain()
	led.check(t)
	checkDomains(t, ds)
	if excl.violation.Load() {
		t.Fatal("exclusive resource saw two concurrent executors")
	}
	if n := pinWrong.Load(); n != 0 {
		t.Fatalf("%d pinned tasks executed off their home runtime", n)
	}
}

// TestGroupStealHappens proves the scheduler actually steals under a
// hot-node load — a test suite for a stealing scheduler that never steals
// would prove nothing.
func TestGroupStealHappens(t *testing.T) {
	g := newStealGroup(4, 4)
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	var sink atomic.Int64
	deadline := time.Now().Add(10 * time.Second)
	for round := 0; ; round++ {
		for i := 0; i < 3000; i++ {
			hot.Spawn(hot.NewTask(func(ctx *Context, t *Task) {
				sink.Add(1)
				yield()
			}, nil))
		}
		g.Drain()
		if s := g.Stats(); s.StealSuccesses > 0 {
			if s.TasksStolen == 0 {
				t.Fatalf("successes=%d but TasksStolen=0", s.StealSuccesses)
			}
			if s.StealAttempts < s.StealSuccesses {
				t.Fatalf("attempts=%d < successes=%d", s.StealAttempts, s.StealSuccesses)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no successful steal after %d rounds: %+v", round+1, g.Stats())
		}
	}
}

// TestGroupStealExclusions asserts the two exclusion rules from inside
// task bodies, under enough stealable load that steals demonstrably occur
// in the same run: exclusive-resource tasks and locality-annotated tasks
// are never observed executing off their home runtime.
func TestGroupStealExclusions(t *testing.T) {
	g := newStealGroup(4, 4)
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	var excl domain
	exclRes := hot.CreateResource(&excl, 64, IsolationExclusive, RWWriteHeavy, FrequencyHigh)
	var offHome atomic.Int64
	var sink atomic.Int64
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				task := hot.NewTask(func(ctx *Context, t *Task) {
					excl.enter()
					if ctx.Node() != 0 || ctx.Stolen() {
						offHome.Add(1)
					}
					excl.leave()
				}, nil).AnnotateResource(exclRes, Write)
				hot.Spawn(task)
			case 1:
				task := hot.NewTask(func(ctx *Context, t *Task) {
					if ctx.Node() != 0 || ctx.Stolen() {
						offHome.Add(1)
					}
				}, nil).AnnotateNUMA(0)
				hot.Spawn(task)
			case 2:
				task := hot.NewTask(func(ctx *Context, t *Task) {
					if ctx.Node() != 0 || ctx.Stolen() {
						offHome.Add(1)
					}
				}, nil).AnnotateCore(1)
				hot.Spawn(task)
			default: // stealable ballast that makes thieves show up
				hot.Spawn(hot.NewTask(func(ctx *Context, t *Task) {
					sink.Add(1)
					yield()
				}, nil))
			}
		}
		g.Drain()
		if n := offHome.Load(); n != 0 {
			t.Fatalf("%d excluded tasks executed off node 0", n)
		}
		if excl.violation.Load() {
			t.Fatal("exclusive resource saw two concurrent executors")
		}
		if g.Stats().StealSuccesses > 0 {
			return // exclusions held in a run where stealing happened
		}
		if time.Now().After(deadline) {
			t.Fatalf("no steal occurred, exclusion test proved nothing: %+v", g.Stats())
		}
	}
}

// TestGroupStealPendingAccounting checks that completions of stolen tasks
// are charged to the home runtime: after Drain every member's pending
// counter is exactly zero and the group executed exactly what was spawned.
func TestGroupStealPendingAccounting(t *testing.T) {
	g := newStealGroup(4, 3)
	g.Start()
	defer g.Stop()
	const perNode = 2500
	for i, rt := range g.Runtimes() {
		n := perNode * (1 + i*i) / (1 + i) // uneven load
		for j := 0; j < n; j++ {
			rt.Spawn(rt.NewTask(func(ctx *Context, t *Task) { yield() }, nil))
		}
	}
	g.Drain()
	var executed, spawnedExt uint64
	for i, rt := range g.Runtimes() {
		if p := rt.Pending(); p != 0 {
			t.Fatalf("node %d pending=%d after drain", i, p)
		}
		executed += rt.Stats().Executed
		spawnedExt += uint64(perNode * (1 + i*i) / (1 + i))
	}
	if executed != spawnedExt {
		t.Fatalf("executed=%d spawned=%d", executed, spawnedExt)
	}
}

// TestGroupSharedEpoch checks reclamation across the stealing boundary:
// retires issued while thieves roam must all run after the epoch advances
// past every member's workers (the group shares one epoch manager).
func TestGroupSharedEpoch(t *testing.T) {
	g := newStealGroup(4, 2)
	if g.Runtime(0).EpochManager() != g.Runtime(1).EpochManager() {
		t.Fatal("stealing group members must share one epoch manager")
	}
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	var freed atomic.Int64
	const tasks = 3000
	for i := 0; i < tasks; i++ {
		hot.Spawn(hot.NewTask(func(ctx *Context, t *Task) {
			ctx.Retire(func() { freed.Add(1) })
			yield()
		}, nil))
	}
	g.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for freed.Load() < tasks {
		hot.AdvanceEpoch() // shared manager: advances every member
		// Idle workers call epoch.Idle + Collect on their own; give
		// them a moment between advances.
		time.Sleep(time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatalf("freed %d/%d after epoch advances", freed.Load(), tasks)
		}
	}
}

// TestGroupStealDisabledNoCrossExecution pins down the default: a group
// built without Steal.Enabled never executes a task off its home runtime
// and reports zero stealing activity.
func TestGroupStealDisabledNoCrossExecution(t *testing.T) {
	g := NewGroup(Config{
		Workers:       4,
		EpochPolicy:   epoch.Batched,
		EpochInterval: -1,
	}, 4)
	g.Start()
	defer g.Stop()
	hot := g.Runtime(0)
	var offHome atomic.Int64
	for i := 0; i < 3000; i++ {
		hot.Spawn(hot.NewTask(func(ctx *Context, t *Task) {
			if ctx.Node() != 0 || ctx.Stolen() {
				offHome.Add(1)
			}
		}, nil))
	}
	g.Drain()
	if n := offHome.Load(); n != 0 {
		t.Fatalf("%d tasks executed off node 0 with stealing disabled", n)
	}
	s := g.Stats()
	if s.StealAttempts != 0 || s.StealSuccesses != 0 || s.TasksStolen != 0 {
		t.Fatalf("stealing disabled but stats nonzero: %+v", s)
	}
	if hot.Group() != nil {
		t.Fatal("Runtime.Group must be nil for a non-stealing group")
	}
}

// TestGroupStealSpareRouting checks the spare-pool plumbing: members of a
// stealing group expose more pools than workers, external spawns and
// resources land on spares too, and a standalone runtime has none.
func TestGroupStealSpareRouting(t *testing.T) {
	g := newStealGroup(4, 4)
	rt := g.Runtime(0)
	if rt.Pools() <= rt.Workers() {
		t.Fatalf("stealing member has %d pools for %d workers, want spares",
			rt.Pools(), rt.Workers())
	}
	seen := make(map[int]bool)
	for i := 0; i < 4*rt.Pools(); i++ {
		r := rt.CreateResource(nil, 0, IsolationExclusiveWriteSharedRead, RWReadHeavy, FrequencyHigh)
		seen[r.Pool()] = true
	}
	if len(seen) != rt.Pools() {
		t.Fatalf("resource RR covered %d of %d pools", len(seen), rt.Pools())
	}
	plain := New(Config{Workers: 2, EpochInterval: -1})
	if plain.Pools() != plain.Workers() {
		t.Fatalf("standalone runtime has %d pools for %d workers",
			plain.Pools(), plain.Workers())
	}
}
