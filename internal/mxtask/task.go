package mxtask

import (
	"sync/atomic"

	"mxtasking/internal/alloc"
)

// Func is the body of an MxTask. It receives the execution context of the
// worker running it. Task bodies annotated ReadOnly against an optimistic
// resource may be re-executed when a concurrent write invalidates their
// read (Figure 5, worker side, lines 10–16); such bodies must therefore be
// restartable: they should not publish side effects until they return, or
// must make those side effects idempotent.
type Func func(ctx *Context, t *Task)

// Task is an MxTask: a small, closed unit of work with annotations
// (Figure 1, left side). Create tasks with Runtime.NewTask or Context.NewTask
// (which recycle memory through the multi-level allocator, §5.2) and submit
// them with Spawn. A task must not be reused after it has been spawned; the
// runtime recycles its memory once it completes.
type Task struct {
	fn Func
	// Arg and Arg2 are application payloads; using fields instead of
	// closures keeps task creation allocation-free on the core-heap fast
	// path. By convention Arg carries the stable operation state and
	// Arg2 the per-step state (e.g. the tree node this task visits);
	// both are assigned by the spawning task before Spawn, never by the
	// running body, which keeps optimistic read bodies restartable.
	Arg  any
	Arg2 any

	res        *Resource
	mode       AccessMode
	prio       Priority
	targetCore int
	targetNUMA int

	after *Barrier // dependency barrier; scheduled only after release

	next  atomic.Pointer[Task] // intrusive pool link (single atomic-exchange spawn)
	block *alloc.Block         // backing allocation for recycling
}

// reset prepares a recycled task for reuse.
func (t *Task) reset(fn Func, arg any) {
	t.fn = fn
	t.Arg = arg
	t.Arg2 = nil
	t.res = nil
	t.mode = ReadOnly
	t.prio = PriorityNormal
	t.targetCore = AnyCore
	t.targetNUMA = AnyCore
	t.after = nil
	t.next.Store(nil)
}

// AnnotateResource links the task to the data object it will access,
// together with the intended access mode (paper Fig. 2, lines 4–5). The
// runtime uses this single annotation for both prefetching and
// synchronization.
func (t *Task) AnnotateResource(r *Resource, mode AccessMode) *Task {
	t.res = r
	t.mode = mode
	return t
}

// AnnotatePriority sets the task's scheduling priority.
func (t *Task) AnnotatePriority(p Priority) *Task {
	t.prio = p
	return t
}

// AnnotateCore pins the task to a specific worker (Figure 5, scheduler
// side, lines 6–7).
func (t *Task) AnnotateCore(core int) *Task {
	t.targetCore = core
	return t
}

// AnnotateNUMA restricts the task to workers of one NUMA node. The runtime
// picks the least-loaded worker in the node.
func (t *Task) AnnotateNUMA(node int) *Task {
	t.targetNUMA = node
	return t
}

// homeBound reports whether the task must execute on its home runtime and
// is therefore excluded from cross-runtime stealing (DESIGN.md §7): tasks
// pinned to a core or NUMA node carry a locality annotation the thief
// cannot honour, and tasks on an exclusive resource (PrimSerialize) rely
// on the resource's pool index — a home-relative coordinate — for their
// entire correctness argument.
func (t *Task) homeBound() bool {
	return t.targetCore != AnyCore || t.targetNUMA != AnyCore ||
		(t.res != nil && t.res.prim.serializesAll())
}

// Resource returns the annotated resource, or nil.
func (t *Task) Resource() *Resource { return t.res }

// Mode returns the annotated access mode.
func (t *Task) Mode() AccessMode { return t.mode }

// Priority returns the annotated priority.
func (t *Task) Priority() Priority { return t.prio }
