package mxtask

import "fmt"

// TraceKind classifies runtime trace events.
type TraceKind uint8

const (
	// TraceExecute: a task ran to completion (Info: 0 plain, 1 latched,
	// 2 optimistic read, 3 serialized-by-scheduling write path).
	TraceExecute TraceKind = iota
	// TraceSteal: the worker drained a foreign pool (Info: victim pool).
	TraceSteal
	// TraceRetry: an optimistic read was re-executed (Info: attempt).
	TraceRetry
	// TracePrefetch: a data-object prefetch was issued (Info: resource
	// pool of the prefetched object).
	TracePrefetch
	// TraceCollect: epoch reclamation freed objects (Info: count).
	TraceCollect
	// TraceGroupSteal: the worker drained a pool of a sibling runtime in
	// its Group (Info: victim node).
	TraceGroupSteal
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceExecute:
		return "execute"
	case TraceSteal:
		return "steal"
	case TraceRetry:
		return "retry"
	case TracePrefetch:
		return "prefetch"
	case TraceCollect:
		return "collect"
	case TraceGroupSteal:
		return "group-steal"
	default:
		return "invalid"
	}
}

// TraceEvent is one recorded runtime event. Seq orders events within one
// worker; cross-worker ordering is not defined (the recorder is
// synchronization-free by design).
type TraceEvent struct {
	Worker int
	Seq    uint64
	Kind   TraceKind
	Info   uint64
}

// String renders the event.
func (e TraceEvent) String() string {
	return fmt.Sprintf("w%d#%d %s(%d)", e.Worker, e.Seq, e.Kind, e.Info)
}

// tracer is a worker-local ring buffer. All writes come from the owning
// worker; snapshots must be taken while the runtime is stopped or
// quiescent.
type tracer struct {
	ring []TraceEvent
	seq  uint64
}

func newTracer(capacity int) *tracer {
	if capacity <= 0 {
		return nil
	}
	return &tracer{ring: make([]TraceEvent, capacity)}
}

func (t *tracer) record(worker int, kind TraceKind, info uint64) {
	if t == nil {
		return
	}
	t.ring[t.seq%uint64(len(t.ring))] = TraceEvent{
		Worker: worker, Seq: t.seq, Kind: kind, Info: info,
	}
	t.seq++
}

// snapshot returns the buffered events in sequence order.
func (t *tracer) snapshot() []TraceEvent {
	if t == nil || t.seq == 0 {
		return nil
	}
	n := t.seq
	capacity := uint64(len(t.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]TraceEvent, 0, n)
	start := t.seq - n
	for s := start; s < t.seq; s++ {
		out = append(out, t.ring[s%capacity])
	}
	return out
}

// Trace returns the most recent trace events of every worker (up to
// Config.TraceCapacity each, oldest first per worker). Call only while
// the runtime is stopped or quiescent; the recorder is worker-local and
// unsynchronized, which is what keeps it nearly free when enabled and
// entirely free when disabled.
func (rt *Runtime) Trace() []TraceEvent {
	var out []TraceEvent
	for _, w := range rt.workers {
		out = append(out, w.trace.snapshot()...)
	}
	return out
}
