package mxtask

import (
	"runtime"
	"sync/atomic"
	"time"

	"mxtasking/internal/alloc"
	"mxtasking/internal/epoch"
)

// batchLimit bounds how many tasks a worker drains from a pool per
// acquisition. The consume latch is held for the whole batch, which is what
// makes scheduling-based synchronization correct even when pools are stolen:
// at most one worker executes a given pool's tasks at any time.
const batchLimit = 64

// WorkerStats is a snapshot of a worker's execution counters. The
// Learned* fields are filled only by Runtime.Stats, from the learned
// prefetcher attached via AttachLearnedPrefetch (per-worker snapshots
// report zero: learned streams belong to the application layer, e.g. one
// per server connection, not to a worker).
type WorkerStats struct {
	Executed      uint64 // tasks run to completion
	Spawned       uint64 // tasks produced by this worker
	Prefetches    uint64 // prefetch operations issued (§3)
	ReadRetries   uint64 // optimistic reads re-executed after validation failure
	PoolsStolen   uint64 // foreign pools drained while idle
	LocalFastPath uint64 // optimistic reads that skipped validation (§4.2)

	LearnedHits      uint64 // accesses that matched a learned prediction
	LearnedMisses    uint64 // accesses that broke a confirmed stride
	LearnedStrides   uint64 // strides induced (confirmations + revivals)
	LearnedIssued    uint64 // predicted addresses turned into touch tasks
	LearnedWindowMax uint64 // widest adaptive lookahead window reached

	InterleaveGroups    uint64 // interleaved group-descent tasks started
	InterleaveCursors   uint64 // traversal cursors admitted to groups
	InterleaveTurns     uint64 // group turns (each advances all live cursors)
	InterleaveSteps     uint64 // successful inline node visits
	InterleaveRetired   uint64 // cursors completed inside a group
	InterleaveFallbacks uint64 // cursors handed off to per-key chains
	InterleaveMaxWidth  uint64 // widest group started (peak overlap depth)
}

// workerCounters are the live counters behind WorkerStats. They are
// atomics so snapshots may be taken while workers run; each counter is
// only ever written by its owning worker, so the atomics stay uncontended
// and near-free.
type workerCounters struct {
	executed      atomic.Uint64
	spawned       atomic.Uint64
	prefetches    atomic.Uint64
	readRetries   atomic.Uint64
	poolsStolen   atomic.Uint64
	localFastPath atomic.Uint64
}

// Worker executes tasks from pools. Each worker corresponds to one logical
// core of the runtime; from the operating system's perspective it is one
// goroutine, optionally pinned to an OS thread (§2.3).
type Worker struct {
	id    int
	numa  int
	rt    *Runtime
	pool  *Pool
	epoch *epoch.Worker
	heap  *alloc.CoreHeap
	ctx   Context
	stats workerCounters
	trace *tracer

	window         []*Task // drained batch, the prefetcher's lookahead horizon
	holdingOwnPool bool
	lastEpoch      uint64

	// Cross-runtime stealing state (DESIGN.md §7). While the worker
	// drains a pool stolen from a sibling runtime, execHome is that
	// runtime and execPool the stolen pool: task completion must be
	// accounted against the home runtime's pending counter, and spawns
	// from stolen tasks must route through the home runtime's scheduler
	// (resource pool indices are home-relative coordinates). Both are nil
	// outside a stolen batch.
	execHome  *Runtime
	execPool  *Pool
	idleStreak int
	stealFail  int // consecutive failed group-steal attempts (backoff)

	// Adaptive prefetch-distance state (§3's dynamic-adjustment
	// extension): hill-climbing on observed batch execution rate. dist
	// is atomic because diagnostics may read it while the worker runs;
	// everything else is worker-local.
	adapt struct {
		dist     atomic.Int32
		dir      int
		batches  int
		tasks    uint64
		elapsed  time.Duration
		prevRate float64
	}

	// Optimistic-read side-effect buffering (the runtime's realization of
	// Fig. 5 line 16, "reset t — undo all modifications"): while a
	// read-only task runs under version validation, its spawns and
	// retires are buffered; a failed validation discards them and the
	// body re-runs, a successful one publishes them.
	buffering bool
	spawnBuf  []*Task
	retireBuf []func()
}

// ID returns the worker's logical core number.
func (w *Worker) ID() int { return w.id }

// homeRT returns the runtime the currently executing task belongs to: the
// victim runtime during a stolen batch, the worker's own otherwise.
func (w *Worker) homeRT() *Runtime {
	if w.execHome != nil {
		return w.execHome
	}
	return w.rt
}

// spawnHint returns the pool index follow-up spawns should prefer, in the
// coordinates of homeRT's pool table: the stolen pool during a stolen
// batch (keeping task chains in their home runtime), the worker's own pool
// otherwise.
func (w *Worker) spawnHint() int {
	if w.execPool != nil {
		return w.execPool.idx
	}
	return w.id
}

// NUMA returns the worker's NUMA node.
func (w *Worker) NUMA() int { return w.numa }

// Stats returns a snapshot of the worker's counters. Safe to call at any
// time; counters for in-flight work may lag by a few tasks.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Executed:      w.stats.executed.Load(),
		Spawned:       w.stats.spawned.Load(),
		Prefetches:    w.stats.prefetches.Load(),
		ReadRetries:   w.stats.readRetries.Load(),
		PoolsStolen:   w.stats.poolsStolen.Load(),
		LocalFastPath: w.stats.localFastPath.Load(),
	}
}

func (w *Worker) run() {
	defer w.rt.wg.Done()
	if w.rt.cfg.PinWorkers {
		// Best-effort stand-in for sched_setaffinity: dedicating an OS
		// thread to the worker at least removes goroutine migration.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	stealing := w.rt.group != nil && w.rt.group.steal.Enabled
	for {
		if w.rt.stopped.Load() {
			return
		}
		did := w.drainPool(w.pool, true, w.rt, false) > 0
		if !did {
			// Idle: steal a whole pool from another worker of this
			// runtime (pools, not tasks — §4.1). Spare pools have no
			// resident worker, so this loop is also how they get
			// drained locally.
			n := len(w.rt.pools)
			for i := 1; i < n; i++ {
				victim := w.rt.pools[(w.id+i)%n]
				if victim.Len() == 0 {
					continue
				}
				if w.drainPool(victim, false, w.rt, false) > 0 {
					w.stats.poolsStolen.Add(1)
					w.trace.record(w.id, TraceSteal, uint64(victim.idx))
					did = true
					break
				}
			}
		}
		if stealing {
			// Publish our runtime's stealable backlog so idle
			// siblings can pick victims without touching our pools.
			g := w.rt.group
			g.loads[w.rt.node].v.Store(w.rt.stealableBacklog())
			if !did && w.stealFromGroup() > 0 {
				did = true
			}
		}
		w.maybeCollect()
		if did {
			w.idleStreak = 0
			continue
		}
		w.epoch.Idle()
		if w.rt.stopped.Load() {
			return
		}
		// Progressive backoff keeps idle workers from starving
		// application goroutines when the host has fewer CPUs than
		// workers (the paper's testbed pins one worker per core; this
		// library must also behave on oversubscribed machines).
		w.idleStreak++
		if w.idleStreak < 32 {
			runtime.Gosched()
		} else {
			pause := time.Duration(w.idleStreak) * time.Microsecond
			if pause > 200*time.Microsecond {
				pause = 200 * time.Microsecond
			}
			time.Sleep(pause)
		}
	}
}

// drainPool acquires the pool, drains up to batchLimit tasks into the
// lookahead window, and executes them with prefetching and injected
// synchronization. It returns how many tasks ran. home is the runtime the
// pool belongs to; stolen selects the cross-runtime path, which drains via
// PopStealable so home-bound tasks are never observed by a foreign worker.
// The consume latch is held for the whole batch — at most one worker,
// local or foreign, executes a given pool's tasks at any time.
func (w *Worker) drainPool(p *Pool, own bool, home *Runtime, stolen bool) int {
	if !p.TryAcquire() {
		return 0
	}
	w.window = w.window[:0]
	for len(w.window) < batchLimit {
		var t *Task
		var ok bool
		if stolen {
			t, ok = p.PopStealable()
		} else {
			t, ok = p.Pop()
		}
		if !ok {
			break
		}
		w.window = append(w.window, t)
	}
	if len(w.window) == 0 {
		p.Release()
		return 0
	}
	if home != w.rt {
		w.execHome, w.execPool = home, p
	}
	w.holdingOwnPool = own
	dist := w.prefetchDistance()
	start := time.Time{}
	// Stolen batches are excluded from the hill climber: their latency
	// profile belongs to the victim runtime (foreign resources, foreign
	// NUMA node), and feeding it into the thief's climber walks the
	// thief's distance off its own optimum.
	if w.rt.cfg.AdaptivePrefetch && !stolen && len(w.window) >= 16 {
		start = time.Now()
	}
	for i, t := range w.window {
		// Issue the prefetch for the task `dist` positions ahead
		// before executing the current one (Figures 3 and 4), so the
		// memory system has the duration of `dist` task executions to
		// bring the data in.
		if dist > 0 && i+dist < len(w.window) {
			w.prefetchFor(w.window[i+dist])
		}
		w.execute(t)
		w.window[i] = nil
	}
	w.holdingOwnPool = false
	w.execHome, w.execPool = nil, nil
	n := len(w.window)
	p.Release()
	if !start.IsZero() {
		w.adaptObserve(n, time.Since(start))
	}
	return n
}

// stealFromGroup attempts to drain one pool from an overloaded sibling
// runtime (DESIGN.md §7). Hysteresis gates the attempt: the worker must
// have idled for IdleStreak rounds (doubled per consecutive failure, up to
// 32×), the victim must advertise at least MinBacklog stealable tasks, and
// at least twice this runtime's own backlog. Returns tasks executed.
func (w *Worker) stealFromGroup() int {
	g := w.rt.group
	gate := g.steal.IdleStreak
	if f := w.stealFail; f > 0 {
		if f > 5 {
			f = 5
		}
		gate <<= uint(f)
	}
	if w.idleStreak < gate {
		return 0
	}
	own := w.rt.stealableBacklog()
	victim := -1
	var best int64
	for i := range g.rts {
		if i == w.rt.node || g.rts[i].stopped.Load() {
			continue
		}
		if l := g.loads[i].v.Load(); l > best {
			best, victim = l, i
		}
	}
	if victim < 0 || best < int64(g.steal.MinBacklog) || best < 2*own {
		return 0
	}
	g.stealAttempts.Add(1)
	vrt := g.rts[victim]
	var bp *Pool
	bestLen := 0
	for _, p := range vrt.pools {
		if l := p.StealableLen(); l > bestLen {
			bestLen, bp = l, p
		}
	}
	var n int
	if bp != nil {
		n = w.drainPool(bp, false, vrt, true)
	}
	// Re-publish the victim's load from the source of truth either way:
	// a stale overestimate would keep attracting thieves to a drained
	// runtime (the ping-pong hysteresis is meant to prevent).
	g.loads[victim].v.Store(vrt.stealableBacklog())
	if n == 0 {
		g.stealAborts.Add(1)
		w.stealFail++
		return 0
	}
	g.stealSuccesses.Add(1)
	g.tasksStolen.Add(uint64(n))
	w.stats.poolsStolen.Add(1)
	w.stealFail = 0
	w.trace.record(w.id, TraceGroupSteal, uint64(victim))
	return n
}

// prefetchDistance returns the distance in effect for this worker.
func (w *Worker) prefetchDistance() int {
	if d := w.adapt.dist.Load(); w.rt.cfg.AdaptivePrefetch && d > 0 {
		return int(d)
	}
	return w.rt.cfg.PrefetchDistance
}

// adaptDeadband is the relative tolerance below which a rate change is
// treated as measurement noise rather than a real regression (~2%).
const adaptDeadband = 0.02

// adaptWindowBatches is how many measured batches the climber accumulates
// before comparing rates.
const adaptWindowBatches = 24

// adaptObserve feeds one measured batch into the hill climber. After a
// window of batches it compares the task rate against the previous window
// and keeps walking in the improving direction, clamped to
// [1, 2·PrefetchDistance]. Decreases within adaptDeadband are treated as
// flat: the climber keeps its direction instead of flipping on noise.
func (w *Worker) adaptObserve(tasks int, elapsed time.Duration) {
	a := &w.adapt
	dist := int(a.dist.Load())
	if dist == 0 { // first use: start from the configured distance
		dist = w.rt.cfg.PrefetchDistance
		if dist < 1 {
			dist = 1
		}
		a.dir = 1
		a.dist.Store(int32(dist))
	}
	a.batches++
	a.tasks += uint64(tasks)
	a.elapsed += elapsed
	if a.batches < adaptWindowBatches || a.elapsed <= 0 {
		return
	}
	rate := float64(a.tasks) / a.elapsed.Seconds()
	// Only a decrease beyond the deadband counts as "got worse": batch
	// timing jitters a percent or two between identical windows, and
	// flipping on every such wiggle leaves the climber oscillating ±1
	// around the optimum forever instead of settling.
	if a.prevRate > 0 && rate < a.prevRate*(1-adaptDeadband) {
		a.dir = -a.dir // got worse: walk back
	}
	maxDist := 2 * w.rt.cfg.PrefetchDistance
	if maxDist < 2 {
		maxDist = 2
	}
	dist += a.dir
	if dist < 1 {
		dist = 1
		a.dir = 1
	}
	if dist > maxDist {
		dist = maxDist
		a.dir = -1
	}
	a.dist.Store(int32(dist))
	a.prevRate = rate
	a.batches = 0
	a.tasks = 0
	a.elapsed = 0
}

// PrefetchDistance exposes the worker's current effective distance
// (diagnostics and tests).
func (w *Worker) PrefetchDistance() int { return w.prefetchDistance() }

// prefetchFor touches the task's annotated data object (§3). With no
// prefetch intrinsic available, a plain read is the closest Go equivalent:
// it populates the cache for the later access.
func (w *Worker) prefetchFor(t *Task) {
	if t.res == nil {
		return
	}
	t.res.prefetch()
	w.stats.prefetches.Add(1)
	w.trace.record(w.id, TracePrefetch, uint64(t.res.pool))
}

// execute wraps the task body in the synchronization primitive its resource
// requires (Figure 5, worker side).
func (w *Worker) execute(t *Task) {
	w.epoch.Enter()
	res := t.res
	switch {
	case res == nil || res.prim == PrimNone || res.prim == PrimSerialize:
		// No sync needed, or scheduling already guarantees serial
		// access (Fig. 5 lines 3–4, 20–21).
		w.invoke(t)
	case res.prim == PrimSpinlock:
		res.mu.Lock()
		w.invoke(t)
		res.mu.Unlock()
	case res.prim == PrimRWLock:
		if t.mode == ReadOnly {
			res.rw.RLock()
			w.invoke(t)
			res.rw.RUnlock()
		} else {
			res.rw.Lock()
			w.invoke(t)
			res.rw.Unlock()
		}
	default: // PrimOptimisticScheduling, PrimOptimisticLatch
		if t.mode == ReadOnly {
			w.optimisticRead(t, res)
		} else {
			// Writers under optimistic scheduling are already
			// serialized through the resource's pool; the version
			// lock is then uncontended and only publishes the
			// version bump readers validate against. Under the
			// optimistic latch the same lock doubles as the
			// writer-exclusion latch.
			res.version.Lock()
			w.invoke(t)
			res.version.Unlock()
		}
	}
	w.epoch.Leave()
	w.stats.executed.Add(1)
	w.trace.record(w.id, TraceExecute, uint64(execKind(t)))
	home := w.homeRT()
	w.freeTask(t)
	// Completion is accounted against the task's home runtime — its
	// Drain is what waits for this task, even when a thief ran it.
	home.pending.Add(-1)
}

// execKind classifies an execution for the tracer.
func execKind(t *Task) int {
	res := t.res
	switch {
	case res == nil || res.prim == PrimNone:
		return 0
	case res.prim == PrimSpinlock || res.prim == PrimRWLock:
		return 1
	case t.mode == ReadOnly:
		return 2
	default:
		return 3
	}
}

// optimisticRead runs a read-only task under version validation, retrying
// until the read was not interleaved with a write (Fig. 5 lines 10–16).
//
// Fast path (§4.2): when the resource's writers are serialized through this
// worker's own pool and the worker currently holds that pool's consume
// latch, no writer can run concurrently — the version check is dispensable.
func (w *Worker) optimisticRead(t *Task, res *Resource) {
	if res.prim == PrimOptimisticScheduling && res.pool == w.id && w.holdingOwnPool {
		w.stats.localFastPath.Add(1)
		w.invoke(t)
		return
	}
	w.buffering = true
	for i := 0; ; i++ {
		v, ok := res.version.ReadBegin()
		if ok {
			w.spawnBuf = w.spawnBuf[:0]
			w.retireBuf = w.retireBuf[:0]
			w.invoke(t)
			if res.version.ReadValidate(v) {
				break
			}
			// Reset & re-execute (Fig. 5 line 16): discard the
			// buffered side effects of the invalid run.
			for j, bt := range w.spawnBuf {
				w.freeTask(bt)
				w.spawnBuf[j] = nil
			}
			w.stats.readRetries.Add(1)
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	w.buffering = false
	// Publish the validated run's side effects — against the home
	// runtime, whose pool table the spawn hints index.
	home := w.homeRT()
	hint := w.spawnHint()
	for j, bt := range w.spawnBuf {
		home.pending.Add(1)
		if b := bt.after; b == nil || !b.enqueue(bt, hint) {
			home.schedule(bt, hint)
		}
		w.spawnBuf[j] = nil
	}
	w.spawnBuf = w.spawnBuf[:0]
	for j, free := range w.retireBuf {
		w.epoch.Retire(free)
		w.retireBuf[j] = nil
	}
	w.retireBuf = w.retireBuf[:0]
}

func (w *Worker) invoke(t *Task) {
	if w.rt.cfg.OnTaskPanic != nil {
		defer func() {
			if r := recover(); r != nil {
				w.rt.cfg.OnTaskPanic(r, t)
			}
		}()
	}
	t.fn(&w.ctx, t)
}

// freeTask recycles the task's memory through the core heap (§5.2).
func (w *Worker) freeTask(t *Task) {
	b := t.block
	t.reset(nil, nil)
	if b != nil {
		w.heap.Free(b)
	}
}

// newTask allocates (or recycles) a task via the multi-level allocator.
func (w *Worker) newTask(fn Func, arg any) *Task {
	b := w.heap.Alloc()
	t, ok := b.Data.(*Task)
	if !ok {
		t = &Task{block: b}
		b.Data = t
	}
	t.reset(fn, arg)
	return t
}

// maybeCollect runs epoch reclamation when the global epoch advanced since
// the worker last looked (the runtime's ticker plays the paper's 50 ms
// epoch clock; reclamation itself runs on the worker, like the paper's
// garbage-collection tasks).
func (w *Worker) maybeCollect() {
	g := w.rt.epochMgr.Global()
	if g != w.lastEpoch {
		w.lastEpoch = g
		if freed := w.epoch.Collect(); freed > 0 {
			w.trace.record(w.id, TraceCollect, uint64(freed))
		}
	}
}
