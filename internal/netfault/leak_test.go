package netfault

import (
	"os"
	"testing"

	"mxtasking/internal/testleak"
)

// TestMain guards the suite against leaked proxy pump goroutines: every
// accept loop and per-direction pump must exit once the tests pass.
func TestMain(m *testing.M) {
	os.Exit(testleak.Main(m))
}
