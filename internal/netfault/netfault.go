// Package netfault is the network twin of internal/faultfs: a
// deterministic in-process TCP fault proxy for chaos-testing the KV
// client/server path. The seam it exploits is the same zero-cost one the
// filesystem harness uses — production code dials the server's address
// directly and pays nothing; a test interposes the proxy by handing the
// client the proxy's address instead, and every byte of the connection
// then flows through a per-connection fault Plan.
//
// A Plan is a schedule, not a dice roll: it is fixed when the connection
// is accepted (the i-th connection gets Script(i)), so a failing test
// reproduces exactly from its seed and connection index, the same way the
// faultfs crash sweep reproduces from a seed and operation index. The
// engine can inject latency per forwarded chunk, cap bandwidth, shatter
// writes into partial-write fragments, and — after a scheduled number of
// forwarded bytes — cut the connection four ways: silently blackhole both
// directions (bytes vanish, both peers see a stall), reset it (RST, both
// peers see a hard error), or drop exactly one direction (a one-way
// partition: requests vanish but the TCP session stays up, or replies
// vanish while requests keep landing).
//
// Those four cuts are precisely the tail conditions a production KV
// service must absorb (FaRM and RAMCloud both win or lose on them): the
// client side answers with deadlines, reconnects, and capped backoff
// (kvstore.DialConfig), the server side with idle reaping, write
// deadlines, and admission control — and the chaos matrix in
// internal/kvstore drives every combination through this proxy.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mxtasking/internal/metrics"
)

// Cut is the terminal fault of a connection's Plan: what happens to the
// byte stream once CutAfterBytes bytes (both directions combined) have
// been forwarded.
type Cut int

const (
	// CutNone never cuts: the plan's latency/bandwidth/chunking shaping
	// applies for the connection's whole life.
	CutNone Cut = iota
	// Blackhole silently discards every subsequent byte in both
	// directions. Neither peer gets an error — each just stops hearing
	// from the other, which is the fault only deadlines can detect.
	Blackhole
	// Reset aborts the connection with an RST in both directions (the
	// proxy closes with SO_LINGER=0). Both peers see a hard I/O error on
	// their next read or write.
	Reset
	// DropC2S silently discards client-to-server bytes only: requests
	// vanish, but the server's replies to earlier requests still arrive.
	// The one-way partition in the request direction.
	DropC2S
	// DropS2C silently discards server-to-client bytes only: requests
	// keep landing and executing, but their replies vanish. The nastier
	// one-way partition — the op happened, the client cannot know.
	DropS2C
)

// String names the cut for test labels and failure messages.
func (c Cut) String() string {
	switch c {
	case CutNone:
		return "none"
	case Blackhole:
		return "blackhole"
	case Reset:
		return "reset"
	case DropC2S:
		return "drop-c2s"
	case DropS2C:
		return "drop-s2c"
	}
	return fmt.Sprintf("Cut(%d)", int(c))
}

// Plan is one connection's complete fault schedule, fixed at accept time.
// The zero Plan forwards transparently.
type Plan struct {
	// Latency is added before each forwarded chunk in both directions
	// (so one request/reply round trip pays it at least twice).
	Latency time.Duration
	// BytesPerSec caps forwarding bandwidth per direction (0 = unlimited).
	BytesPerSec int
	// ChunkBytes shatters forwarded data into fragments of at most this
	// many bytes, each written separately (0 = forward as read). Combined
	// with Latency this models partial writes trickling through.
	ChunkBytes int
	// Cut selects the terminal fault; CutNone means the connection is
	// only shaped, never cut.
	Cut Cut
	// CutAfterBytes arms Cut after this many forwarded bytes, summed
	// over both directions. 0 cuts before the first byte passes.
	CutAfterBytes int64
}

// String renders the plan compactly for test labels.
func (p Plan) String() string {
	return fmt.Sprintf("{lat=%v bps=%d chunk=%d cut=%s@%d}",
		p.Latency, p.BytesPerSec, p.ChunkBytes, p.Cut, p.CutAfterBytes)
}

// Script assigns a Plan to the i-th accepted connection (0-based).
type Script func(conn int) Plan

// Clean is the do-nothing script: every connection forwards transparently.
func Clean() Script { return func(int) Plan { return Plan{} } }

// Fixed gives every connection the same plan.
func Fixed(p Plan) Script { return func(int) Plan { return p } }

// Only gives connection i the plan and every other connection a clean
// pass-through — the shape reconnect tests want: the first connection is
// doomed, the retry lands on a healthy one.
func Only(i int, p Plan) Script {
	return func(conn int) Plan {
		if conn == i {
			return p
		}
		return Plan{}
	}
}

// Chaos derives a reproducible pseudo-random plan per connection from
// seed: some connections clean, some shaped, some cut each of the four
// ways at a random early byte offset. Same seed, same schedule.
func Chaos(seed int64) Script {
	return func(conn int) Plan {
		rng := rand.New(rand.NewSource(seed ^ (int64(conn)+1)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
		var p Plan
		if rng.Intn(2) == 0 {
			p.Latency = time.Duration(rng.Intn(3)) * time.Millisecond
		}
		if rng.Intn(3) == 0 {
			p.ChunkBytes = 1 + rng.Intn(7)
		}
		switch rng.Intn(6) {
		case 0:
			p.Cut, p.CutAfterBytes = Blackhole, int64(rng.Intn(256))
		case 1:
			p.Cut, p.CutAfterBytes = Reset, int64(rng.Intn(256))
		case 2:
			p.Cut, p.CutAfterBytes = DropC2S, int64(rng.Intn(256))
		case 3:
			p.Cut, p.CutAfterBytes = DropS2C, int64(rng.Intn(256))
		}
		return p
	}
}

// Metrics exposes the proxy's live fault counters.
type Metrics struct {
	// Conns counts accepted client connections.
	Conns metrics.Counter
	// Cuts counts fired cut faults.
	Cuts metrics.Counter
	// ForwardedBytes counts bytes actually delivered (both directions).
	ForwardedBytes metrics.Counter
	// DroppedBytes counts bytes discarded by blackholes and partitions.
	DroppedBytes metrics.Counter
	// DelayedChunks counts chunks that paid injected latency.
	DelayedChunks metrics.Counter
}

// String renders the counters on one line.
func (m *Metrics) String() string {
	return fmt.Sprintf("conns=%d cuts=%d fwd=%d dropped=%d delayed=%d",
		m.Conns.Value(), m.Cuts.Value(), m.ForwardedBytes.Value(),
		m.DroppedBytes.Value(), m.DelayedChunks.Value())
}

// Proxy is the fault injector: it listens on its own loopback address and
// forwards each accepted connection to the target address through that
// connection's Plan. Hand a test client Proxy.Addr() instead of the real
// server address; close the proxy to tear every connection down.
type Proxy struct {
	ln     net.Listener
	target string
	script Script
	done   chan struct{}
	wg     sync.WaitGroup
	m      Metrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	nconn  int
	closed bool
}

// New starts a proxy on 127.0.0.1:0 forwarding to target (a host:port the
// real server listens on). script picks each connection's Plan; nil means
// Clean().
func New(target string, script Script) (*Proxy, error) {
	if script == nil {
		script = Clean()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: listen: %w", err)
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		script: script,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the client under test
// should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Metrics returns the proxy's live counters.
func (p *Proxy) Metrics() *Metrics { return &p.m }

// Conns returns how many connections the proxy has accepted so far.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nconn
}

// Close stops accepting, severs every live connection, and waits for the
// forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		idx := p.nconn
		p.nconn++
		p.conns[client] = struct{}{}
		p.mu.Unlock()
		p.m.Conns.Inc()
		p.wg.Add(1)
		go p.serve(client, p.script(idx))
	}
}

// untrack removes a finished connection from the teardown set.
func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serve dials the target and runs one pump per direction through the plan.
func (p *Proxy) serve(client net.Conn, plan Plan) {
	defer p.wg.Done()
	defer p.untrack(client)
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	defer p.untrack(server)

	st := &connState{plan: plan, client: client, server: server}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); p.pump(st, client, server, dirC2S) }()
	go func() { defer pumps.Done(); p.pump(st, server, client, dirS2C) }()
	pumps.Wait()
	client.Close()
	server.Close()
}

type direction int

const (
	dirC2S direction = iota
	dirS2C
)

// connState is the shared cut trigger for one proxied connection.
type connState struct {
	plan   Plan
	client net.Conn
	server net.Conn
	bytes  atomic.Int64
	fired  atomic.Bool
}

// fire arms the cut exactly once.
func (st *connState) fire(p *Proxy) {
	if st.fired.Swap(true) {
		return
	}
	p.m.Cuts.Inc()
	if st.plan.Cut == Reset {
		// SO_LINGER=0 turns Close into an RST so both peers observe a
		// hard error, not a graceful FIN.
		if tc, ok := st.client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		if tc, ok := st.server.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		st.client.Close()
		st.server.Close()
	}
}

// drops reports whether a fired cut swallows bytes in this direction.
func (st *connState) drops(dir direction) bool {
	if !st.fired.Load() {
		return false
	}
	switch st.plan.Cut {
	case Blackhole:
		return true
	case DropC2S:
		return dir == dirC2S
	case DropS2C:
		return dir == dirS2C
	}
	return false
}

// sleep waits d or until the proxy closes, whichever is first.
func (p *Proxy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.done:
	}
}

// pump forwards src to dst through the plan until either side dies. The
// source keeps being read even while its bytes are dropped — that is what
// makes a blackhole silent: the peer's writes still succeed.
func (p *Proxy) pump(st *connState, src, dst net.Conn, dir direction) {
	buf := make([]byte, 16<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if werr := p.forward(st, dst, buf[:n], dir); werr != nil {
				// The destination died (reset, proxy close): drain the
				// source so its peer sees silence, not backpressure.
				io.Copy(io.Discard, src)
				return
			}
		}
		if rerr != nil {
			// Propagate EOF as a half-close so in-flight replies in the
			// other direction still drain; errors tear down via Close in
			// serve once both pumps exit.
			if errors.Is(rerr, io.EOF) {
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}
			return
		}
	}
}

// forward pushes one read's worth of bytes through the plan: chunking,
// the cut trigger (split exactly at the scheduled byte), latency, and
// bandwidth pacing.
func (p *Proxy) forward(st *connState, dst net.Conn, b []byte, dir direction) error {
	for len(b) > 0 {
		chunk := b
		if st.plan.ChunkBytes > 0 && len(chunk) > st.plan.ChunkBytes {
			chunk = chunk[:st.plan.ChunkBytes]
		}
		// Fire the cut exactly at its scheduled global byte offset: the
		// bytes before the boundary still pass, the rest meet the fault.
		if st.plan.Cut != CutNone && !st.fired.Load() {
			seen := st.bytes.Load()
			if seen >= st.plan.CutAfterBytes {
				st.fire(p)
			} else if remain := st.plan.CutAfterBytes - seen; int64(len(chunk)) > remain {
				chunk = chunk[:remain]
			}
		}
		if st.drops(dir) {
			st.bytes.Add(int64(len(chunk)))
			p.m.DroppedBytes.Add(uint64(len(chunk)))
			b = b[len(chunk):]
			continue
		}
		if st.fired.Load() && st.plan.Cut == Reset {
			return net.ErrClosed
		}
		if st.plan.Latency > 0 {
			p.m.DelayedChunks.Inc()
			p.sleep(st.plan.Latency)
		}
		if st.plan.BytesPerSec > 0 {
			p.sleep(time.Duration(int64(len(chunk)) * int64(time.Second) / int64(st.plan.BytesPerSec)))
		}
		select {
		case <-p.done:
			return net.ErrClosed
		default:
		}
		if _, err := dst.Write(chunk); err != nil {
			return err
		}
		st.bytes.Add(int64(len(chunk)))
		p.m.ForwardedBytes.Add(uint64(len(chunk)))
		b = b[len(chunk):]
	}
	return nil
}
