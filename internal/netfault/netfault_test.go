package netfault

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer answers each received line with the same line, uppercased
// prefix "ECHO ". Returns the listen address and a stop func.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					select {
					case <-done:
						return
					default:
					}
					fmt.Fprintf(conn, "ECHO %s\n", sc.Text())
				}
			}()
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		wg.Wait()
	}
}

// dialProxy connects through the proxy with a bounded deadline so no
// assertion can hang.
func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

func roundTrip(conn net.Conn, line string) (string, error) {
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSpace(reply), err
}

// A clean plan forwards transparently in both directions.
func TestProxyTransparent(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	r := bufio.NewReader(conn)
	for i := 0; i < 10; i++ {
		if _, err := fmt.Fprintf(conn, "hello %d\n", i); err != nil {
			t.Fatal(err)
		}
		reply, err := r.ReadString('\n')
		if err != nil || strings.TrimSpace(reply) != fmt.Sprintf("ECHO hello %d", i) {
			t.Fatalf("round trip %d = %q, %v", i, reply, err)
		}
	}
	if got := p.Conns(); got != 1 {
		t.Fatalf("Conns = %d, want 1", got)
	}
	if p.Metrics().ForwardedBytes.Value() == 0 {
		t.Fatal("no bytes counted as forwarded")
	}
}

// Chunking shatters the stream into partial writes but must not corrupt
// it: the reassembled bytes are identical.
func TestProxyChunkedPartialWrites(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Fixed(Plan{ChunkBytes: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	long := strings.Repeat("abcdefgh", 100)
	reply, err := roundTrip(conn, long)
	if err != nil || reply != "ECHO "+long {
		t.Fatalf("chunked round trip failed: err=%v len(reply)=%d", err, len(reply))
	}
}

// Latency shaping delays traffic measurably without corrupting it.
func TestProxyLatency(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Fixed(Plan{Latency: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	start := time.Now()
	reply, err := roundTrip(conn, "ping")
	if err != nil || reply != "ECHO ping" {
		t.Fatalf("latency round trip = %q, %v", reply, err)
	}
	// One round trip crosses the proxy twice; both chunks pay the delay.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 40ms of injected latency", elapsed)
	}
	if p.Metrics().DelayedChunks.Value() < 2 {
		t.Fatalf("DelayedChunks = %d, want >= 2", p.Metrics().DelayedChunks.Value())
	}
}

// A blackhole is silent: writes keep succeeding, reads see nothing, and
// only a deadline unblocks the reader.
func TestProxyBlackhole(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Fixed(Plan{Cut: Blackhole, CutAfterBytes: 0}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "into the void\n"); err != nil {
		t.Fatalf("write into blackhole errored: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := conn.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read from blackhole = %d bytes, %v; want deadline timeout", n, err)
	}
	if p.Metrics().DroppedBytes.Value() == 0 {
		t.Fatal("blackhole dropped nothing")
	}
}

// Reset aborts the connection: the client sees a hard error promptly, not
// a stall.
func TestProxyReset(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Fixed(Plan{Cut: Reset, CutAfterBytes: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	// Enough bytes to cross the cut boundary.
	fmt.Fprintf(conn, "0123456789\n")
	buf := make([]byte, 64)
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		_, err := conn.Read(buf)
		if err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
			return // hard error: RST (or EOF depending on timing) — either unblocks the client
		}
		if time.Now().After(deadline) {
			t.Fatal("reset connection never surfaced an error")
		}
		// Keep poking: the RST may land on the next write.
		conn.Write([]byte("x\n"))
	}
}

// DropC2S partitions the request direction: bytes sent before the cut
// still echo, bytes after vanish while the connection stays up.
func TestProxyOneWayPartitionC2S(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	// "first\n" is 6 bytes; its echo "ECHO first\n" is 11 more. Cut well
	// past both so the first round trip completes before requests vanish.
	p, err := New(addr, Fixed(Plan{Cut: DropC2S, CutAfterBytes: 17}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	defer conn.Close()
	reply, err := roundTrip(conn, "first")
	if err != nil || reply != "ECHO first" {
		t.Fatalf("pre-cut round trip = %q, %v", reply, err)
	}
	// Post-cut: the request is swallowed; the reply never comes.
	if _, err := fmt.Fprintf(conn, "second\n"); err != nil {
		t.Fatalf("post-cut write errored (should be silent): %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := conn.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("post-cut read = %d bytes, %v; want timeout", n, err)
	}
}

// Only(0, plan) dooms just the first connection; the second is clean —
// the reconnect-and-retry shape.
func TestProxyScriptPerConnection(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Only(0, Plan{Cut: Blackhole}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c0 := dialProxy(t, p)
	defer c0.Close()
	fmt.Fprintf(c0, "doomed\n")
	c0.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c0.Read(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("conn 0 not blackholed: %v", err)
	}

	c1 := dialProxy(t, p)
	defer c1.Close()
	reply, err := roundTrip(c1, "alive")
	if err != nil || reply != "ECHO alive" {
		t.Fatalf("conn 1 = %q, %v; want clean pass-through", reply, err)
	}
}

// Chaos is deterministic: the same seed yields the same plan for the same
// connection index, and different seeds differ somewhere.
func TestChaosScriptDeterministic(t *testing.T) {
	a, b := Chaos(42), Chaos(42)
	for i := 0; i < 64; i++ {
		if a(i) != b(i) {
			t.Fatalf("Chaos(42) plan %d differs between instances", i)
		}
	}
	c := Chaos(43)
	same := true
	for i := 0; i < 64; i++ {
		if a(i) != c(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Chaos(42) and Chaos(43) produced identical schedules")
	}
}

// Closing the proxy severs live connections and leaves no goroutines
// pumping (exercised under -race; leaks would deadlock the wg).
func TestProxyCloseSevers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn := dialProxy(t, p)
	defer conn.Close()
	if reply, err := roundTrip(conn, "hi"); err != nil || reply != "ECHO hi" {
		t.Fatalf("round trip = %q, %v", reply, err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The severed connection surfaces EOF or a hard error, never a hang.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 8)); err == nil {
		t.Fatal("read on severed connection returned data")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("severed connection still open after proxy Close")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
