package pager

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzPageCodec drives both codec directions from one corpus:
//
//  1. Treat the input as a hostile page image and decode it — any outcome
//     but (valid page | ErrCorruptPage) is a bug; panics fail the fuzzer.
//  2. Treat the input as a record stream, build a page, and round-trip it
//     through Encode/Decode — the decoded page must be slot-for-slot
//     identical.
//  3. Re-corrupt the valid encoding one byte at a time (driven by the
//     input bytes) and require a typed error, never a wrong decode.
func FuzzPageCodec(f *testing.F) {
	// Seed: a valid encoded page, a truncated one, garbage, and edge sizes.
	valid := func(pageBytes int, records int) []byte {
		p := NewPage(5, SlotsPerPage(pageBytes))
		for i := 0; i < records && i < p.Cap(); i++ {
			p.Set(i, uint64(i)*1664525+1013904223, uint64(i)^0xDEAD)
		}
		buf := make([]byte, pageBytes)
		p.Encode(buf)
		return buf
	}
	f.Add(valid(128, 3))
	f.Add(valid(64, 2))
	f.Add(valid(256, 100))
	f.Add(valid(128, 0)[:100]) // truncated
	f.Add([]byte("MXPG but not really a page at all..."))
	f.Add(make([]byte, MinPageBytes))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Hostile decode: must return a page or ErrCorruptPage.
		if p, err := DecodePage(data, 5); err != nil {
			if !errors.Is(err, ErrCorruptPage) {
				t.Fatalf("decode error not typed: %v", err)
			}
		} else if p.Used() != countOccupied(p) {
			t.Fatalf("accepted page has inconsistent occupancy: used=%d", p.Used())
		}

		// 2. Round trip a page built from the input bytes.
		pageBytes := 64 + len(data)%512
		slotsPer := SlotsPerPage(pageBytes)
		p := NewPage(9, slotsPer)
		for i := 0; i+16 <= len(data) && i/16 < slotsPer; i += 16 {
			k := binary.LittleEndian.Uint64(data[i:])
			v := binary.LittleEndian.Uint64(data[i+8:])
			p.Set(i/16, k, v)
			if len(data) > i && data[i]%5 == 0 {
				p.Clear(i / 16)
			}
		}
		buf := make([]byte, pageBytes)
		p.Encode(buf)
		got, err := DecodePage(buf, 9)
		if err != nil {
			t.Fatalf("round trip rejected own encoding: %v", err)
		}
		if got.Used() != p.Used() || got.Cap() != p.Cap() {
			t.Fatalf("round trip used/cap %d/%d, want %d/%d", got.Used(), got.Cap(), p.Used(), p.Cap())
		}
		for i := 0; i < p.Cap(); i++ {
			ws, wok := p.Slot(i)
			gs, gok := got.Slot(i)
			if wok != gok || ws != gs {
				t.Fatalf("slot %d: got (%+v,%v) want (%+v,%v)", i, gs, gok, ws, wok)
			}
		}

		// 3. Single-byte corruption of the valid image: typed error or —
		// only for bytes the codec does not cover (there are none: the
		// CRC covers the whole page) — an identical decode.
		if len(data) > 0 {
			off := int(data[0]) % len(buf)
			buf[off] ^= 1 + data[len(data)-1]%255
			if _, err := DecodePage(buf, 9); err == nil {
				t.Fatalf("flipped byte %d not detected", off)
			} else if !errors.Is(err, ErrCorruptPage) {
				t.Fatalf("corruption error not typed: %v", err)
			}
		}
	})
}

func countOccupied(p *Page) int {
	n := 0
	for i := 0; i < p.Cap(); i++ {
		if p.Occupied(i) {
			n++
		}
	}
	return n
}
