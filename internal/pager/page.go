// Package pager is the larger-than-RAM storage engine (DESIGN.md §10): a
// buffer pool of fixed-size page frames over one random-access page file,
// with a page table, clock/second-chance eviction, and dirty-page
// writeback through the faultfs seam. Every pool operation — slot
// allocation, page load, writeback, prefetch touch — runs as an MxTask
// annotated with one exclusive resource per page file, so the pool needs
// no internal locking: serialize-by-scheduling, the paper's §4.2 argument
// applied to an I/O-bound object. A page load is where the runtime's
// prefetch story finally meets real I/O latency — Touch(pageID) issues the
// load as an ordinary schedulable task ahead of the cursor that will need
// it, instead of a blocking syscall inside a worker.
//
// The kvstore uses the pager as a spilled value tier: the Blink-tree keeps
// keys and structure in memory, and values at or above a spill threshold
// live in pager slots, addressed by tagged references (MakeRef). Slots are
// self-validating — each stores its (key, value) pair, and a load checks
// the key — so a slot recycled under a concurrent reader is detected and
// the reader re-descends instead of returning another key's value.
//
// Page files are a volatile cache, not an authority: the WAL and
// snapshots remain the durability story, and a restart rebuilds the page
// file from recovery replay (Open truncates). A torn page writeback is
// therefore recoverable by construction; within a run, every page carries
// a CRC so any corruption surfaces as a typed error (ErrCorruptPage),
// never as a silent wrong value.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// ErrCorruptPage marks a page image that failed validation on load: bad
// magic, version, length, page ID, occupancy, or CRC. Loads return it
// wrapped with the failing detail; they never panic on hostile bytes.
var ErrCorruptPage = errors.New("pager: corrupt page")

// Page-format constants.
const (
	pageMagic   = 0x4D585047 // "MXPG"
	pageVersion = 1

	// headerBytes is the fixed page header: magic(4) version(2)
	// reserved(2) pageID(8) used(4) crc(4).
	headerBytes = 24

	// SlotBytes is one record slot: the stored key and value, so loads
	// can validate that a slot still belongs to the key the reference
	// was minted for.
	SlotBytes = 16

	// MinPageBytes is the smallest legal page size (room for the header
	// and at least two slots).
	MinPageBytes = 64

	// maxSlots is the hard slot-count ceiling: a slot index must fit the
	// 16-bit slot field of a reference.
	maxSlots = 1<<16 - 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SlotsPerPage returns how many record slots a page of the given size
// holds alongside its header and occupancy bitmap.
func SlotsPerPage(pageBytes int) int {
	if pageBytes < MinPageBytes {
		return 0
	}
	n := (pageBytes - headerBytes) * 8 / (SlotBytes*8 + 1)
	if n > maxSlots {
		n = maxSlots
	}
	return n
}

// Slot is one stored record.
type Slot struct {
	Key, Value uint64
}

// Page is the decoded in-memory form of one page: an occupancy bitmap and
// the record slots.
type Page struct {
	ID     uint64
	bitmap []uint64
	slots  []Slot
	used   int
}

// NewPage returns an empty page with the given slot capacity.
func NewPage(id uint64, slotsPer int) *Page {
	return &Page{
		ID:     id,
		bitmap: make([]uint64, (slotsPer+63)/64),
		slots:  make([]Slot, slotsPer),
	}
}

// Cap returns the page's slot capacity.
func (p *Page) Cap() int { return len(p.slots) }

// Used returns the number of occupied slots.
func (p *Page) Used() int { return p.used }

// Free returns the number of unoccupied slots.
func (p *Page) Free() int { return len(p.slots) - p.used }

// Occupied reports whether slot i holds a record.
func (p *Page) Occupied(i int) bool {
	if i < 0 || i >= len(p.slots) {
		return false
	}
	return p.bitmap[i/64]&(1<<(i%64)) != 0
}

// Slot returns slot i's record and whether it is occupied.
func (p *Page) Slot(i int) (Slot, bool) {
	if !p.Occupied(i) {
		return Slot{}, false
	}
	return p.slots[i], true
}

// Set stores a record in slot i, marking it occupied.
func (p *Page) Set(i int, key, value uint64) {
	if !p.Occupied(i) {
		p.bitmap[i/64] |= 1 << (i % 64)
		p.used++
	}
	p.slots[i] = Slot{Key: key, Value: value}
}

// Clear frees slot i.
func (p *Page) Clear(i int) {
	if p.Occupied(i) {
		p.bitmap[i/64] &^= 1 << (i % 64)
		p.used--
		p.slots[i] = Slot{}
	}
}

// Alloc stores a record in the first free slot and returns its index;
// ok is false when the page is full.
func (p *Page) Alloc(key, value uint64) (slot int, ok bool) {
	for w, word := range p.bitmap {
		free := ^word
		if w == len(p.bitmap)-1 {
			// Mask tail bits past the slot capacity.
			if tail := len(p.slots) - w*64; tail < 64 {
				free &= 1<<tail - 1
			}
		}
		if free == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(free)
		p.Set(i, key, value)
		return i, true
	}
	return 0, false
}

// Encode serializes the page into buf, which must be exactly the page
// size the slot capacity was derived from. Layout: header, occupancy
// bitmap, slots, zero padding; the CRC covers the whole page with its own
// field zeroed.
func (p *Page) Encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint16(buf[4:], pageVersion)
	binary.LittleEndian.PutUint64(buf[8:], p.ID)
	binary.LittleEndian.PutUint32(buf[16:], uint32(p.used))
	off := headerBytes
	// Bitmap is byte-packed on the page (SlotsPerPage accounts for
	// ceil(n/8) bytes, not word-aligned words).
	for j := 0; j < (len(p.slots)+7)/8; j++ {
		buf[off] = byte(p.bitmap[j/8] >> ((j % 8) * 8))
		off++
	}
	for _, s := range p.slots {
		binary.LittleEndian.PutUint64(buf[off:], s.Key)
		binary.LittleEndian.PutUint64(buf[off+8:], s.Value)
		off += SlotBytes
	}
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(buf, crcTable))
}

// DecodePage parses and validates one page image. wantID is the page the
// caller asked the file for; a valid page with another ID (a misdirected
// or stale write) is corruption too.
func DecodePage(buf []byte, wantID uint64) (*Page, error) {
	slotsPer := SlotsPerPage(len(buf))
	if slotsPer < 1 {
		return nil, fmt.Errorf("%w: image of %d bytes is below the minimum page size", ErrCorruptPage, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != pageMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorruptPage, m)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != pageVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorruptPage, v)
	}
	stored := binary.LittleEndian.Uint32(buf[20:])
	cp := make([]byte, len(buf))
	copy(cp, buf)
	binary.LittleEndian.PutUint32(cp[20:], 0)
	if sum := crc32.Checksum(cp, crcTable); sum != stored {
		return nil, fmt.Errorf("%w: crc mismatch (stored %#x, computed %#x)", ErrCorruptPage, stored, sum)
	}
	id := binary.LittleEndian.Uint64(buf[8:])
	if id != wantID {
		return nil, fmt.Errorf("%w: page claims id %d, want %d", ErrCorruptPage, id, wantID)
	}
	p := NewPage(id, slotsPer)
	off := headerBytes
	used := 0
	for j := 0; j < (slotsPer+7)/8; j++ {
		p.bitmap[j/8] |= uint64(buf[off]) << ((j % 8) * 8)
		off++
	}
	for _, w := range p.bitmap {
		used += bits.OnesCount64(w)
	}
	if tail := slotsPer - (len(p.bitmap)-1)*64; tail < 64 {
		if p.bitmap[len(p.bitmap)-1]>>tail != 0 {
			return nil, fmt.Errorf("%w: occupancy bits past slot capacity", ErrCorruptPage)
		}
	}
	if stored := int(binary.LittleEndian.Uint32(buf[16:])); stored != used {
		return nil, fmt.Errorf("%w: used count %d disagrees with bitmap population %d", ErrCorruptPage, stored, used)
	}
	p.used = used
	for i := range p.slots {
		p.slots[i].Key = binary.LittleEndian.Uint64(buf[off:])
		p.slots[i].Value = binary.LittleEndian.Uint64(buf[off+8:])
		off += SlotBytes
	}
	return p, nil
}

// Reference encoding: bit 63 tags a pager reference (the kvstore spills
// every value with that bit set, so inline tree words and references never
// collide); bits 62..16 are the page ID, bits 15..0 the slot index.
const (
	// RefTag is the tag bit distinguishing a pager reference from an
	// inline value.
	RefTag = uint64(1) << 63

	refSlotBits = 16
	maxPageID   = uint64(1)<<(63-refSlotBits) - 1
)

// IsRef reports whether a tree word is a pager reference.
func IsRef(v uint64) bool { return v&RefTag != 0 }

// MakeRef builds the tagged reference for (pageID, slot).
func MakeRef(pageID uint64, slot int) uint64 {
	return RefTag | pageID<<refSlotBits | uint64(slot)
}

// SplitRef decomposes a reference into its page ID and slot index.
func SplitRef(ref uint64) (pageID uint64, slot int) {
	return ref &^ RefTag >> refSlotBits, int(ref & (1<<refSlotBits - 1))
}
