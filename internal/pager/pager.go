package pager

import (
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"mxtasking/internal/faultfs"
	"mxtasking/internal/mxtask"
)

// ErrNoFrames is returned when every frame in the pool is pinned and an
// operation needs to bring in a page. With sane pin discipline (pins held
// only across deliberate task boundaries) it indicates a pool sized
// smaller than the pin working set.
var ErrNoFrames = errors.New("pager: all frames pinned")

// Config sizes one pager instance.
type Config struct {
	// Path is the page file. Its parent directory is created if missing.
	Path string
	// FS is the filesystem seam; faultfs.Disk when nil.
	FS faultfs.FS
	// PageBytes is the on-file page size (default 4096, min MinPageBytes).
	PageBytes int
	// PoolFrames is the buffer-pool capacity in frames (default 128).
	PoolFrames int
}

type frame struct {
	page  *Page // nil when the frame is empty
	dirty bool
	pins  int
	ref   bool // second-chance bit
}

// Stats is a point-in-time snapshot of pool counters. All counters are
// monotonic; Pages and Resident are gauges.
type Stats struct {
	Hits       uint64 // frame lookups satisfied from the pool
	Misses     uint64 // lookups that had to load from the page file
	Evictions  uint64 // frames recycled by the clock hand
	Writebacks uint64 // dirty pages flushed on eviction or Flush
	Loads      uint64 // page-file reads (== Misses unless loads failed)
	Allocs     uint64 // slots handed out
	Frees      uint64 // slots reclaimed
	Touches    uint64 // prefetch touches processed
	Pages      uint64 // pages ever allocated in the file
	Resident   uint64 // pages currently in frames

	// Load-task latency (page-file read + decode) percentiles,
	// approximated from a power-of-two histogram.
	LoadP50Micros uint64
	LoadP99Micros uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const latBuckets = 40 // power-of-two ns buckets: bucket i covers [2^i, 2^(i+1))

// Pager is a buffer pool over one page file. Every operation runs as an
// mxtask annotated with the pager's exclusive resource, so the mutable
// pool state (frames, page table, clock hand, free lists) is accessed by
// exactly one worker at a time without locks; only the stats counters are
// atomic, so Stats can be read from any goroutine.
type Pager struct {
	rt   *mxtask.Runtime
	res  *mxtask.Resource
	file faultfs.RandomFile
	cfg  Config

	slotsPer int
	buf      []byte // scratch page image for loads and writebacks

	frames []frame
	table  map[uint64]int // pageID -> frame index
	hand   int
	npages uint64

	// Slot allocation: freeCnt tracks free slots per page; freeStack
	// holds candidate pages with free slots (lazily pruned).
	freeCnt   map[uint64]int
	freeStack []uint64
	inStack   map[uint64]bool

	closed bool

	hits, misses, evictions, writebacks atomic.Uint64
	loads, allocs, frees, touches       atomic.Uint64
	pagesGauge, residentGauge           atomic.Uint64
	lat                                 [latBuckets]atomic.Uint64
}

// Open creates a pager over cfg.Path. The page file is truncated: it is a
// volatile spill cache rebuilt from recovery replay, never an authority
// (see the package comment), so stale images from a previous run are
// garbage by definition.
func Open(rt *mxtask.Runtime, cfg Config) (*Pager, error) {
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4096
	}
	if cfg.PoolFrames == 0 {
		cfg.PoolFrames = 128
	}
	if cfg.PageBytes < MinPageBytes {
		return nil, fmt.Errorf("pager: PageBytes %d below minimum %d", cfg.PageBytes, MinPageBytes)
	}
	if cfg.PoolFrames < 1 {
		return nil, fmt.Errorf("pager: PoolFrames %d below minimum 1", cfg.PoolFrames)
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.Disk
	}
	if cfg.Path == "" {
		return nil, errors.New("pager: Config.Path required")
	}
	if dir := filepath.Dir(cfg.Path); dir != "." && dir != "/" {
		if err := cfg.FS.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pager: mkdir %s: %w", dir, err)
		}
	}
	f, err := cfg.FS.OpenRandom(cfg.Path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", cfg.Path, err)
	}
	pg := &Pager{
		rt:       rt,
		file:     f,
		cfg:      cfg,
		slotsPer: SlotsPerPage(cfg.PageBytes),
		buf:      make([]byte, cfg.PageBytes),
		frames:   make([]frame, cfg.PoolFrames),
		table:    make(map[uint64]int, cfg.PoolFrames),
		freeCnt:  make(map[uint64]int),
		inStack:  make(map[uint64]bool),
	}
	// The pool is an I/O-bound shared object: exclusive isolation (pool
	// metadata plus a file cursor cannot be read optimistically) and
	// write-heavy (loads mutate frames too).
	pg.res = rt.CreateResource(pg, 0, mxtask.IsolationExclusive, mxtask.RWWriteHeavy, mxtask.FrequencyLow)
	return pg, nil
}

// SlotsPer returns the record capacity of one page under this config.
func (pg *Pager) SlotsPer() int { return pg.slotsPer }

// PageBytes returns the configured page size.
func (pg *Pager) PageBytes() int { return pg.cfg.PageBytes }

// PoolFrames returns the configured pool capacity.
func (pg *Pager) PoolFrames() int { return pg.cfg.PoolFrames }

// Resource exposes the pager's exclusive resource so callers can chain
// their own tasks behind pool operations.
func (pg *Pager) Resource() *mxtask.Resource { return pg.res }

// spawn schedules fn as a pool task: worker-local when a context is
// available, via the runtime otherwise (safe from any goroutine).
func (pg *Pager) spawn(ctx *mxtask.Context, fn mxtask.Func) {
	if ctx != nil {
		t := ctx.NewTask(fn, nil).AnnotateResource(pg.res, mxtask.Write)
		ctx.Spawn(t)
		return
	}
	t := pg.rt.NewTask(fn, nil).AnnotateResource(pg.res, mxtask.Write)
	pg.rt.Spawn(t)
}

// --- frame management (every method below runs inside a pool task) ---

// victim picks a frame for recycling with the clock / second-chance scan:
// empty frames are taken immediately, a set reference bit buys one more
// sweep, pinned frames are skipped.
func (pg *Pager) victim() (int, error) {
	n := len(pg.frames)
	for pass := 0; pass < 2*n+1; pass++ {
		i := pg.hand
		pg.hand = (pg.hand + 1) % n
		f := &pg.frames[i]
		if f.page == nil {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i, nil
	}
	return 0, ErrNoFrames
}

// evict recycles frame i, writing the page back if dirty. On writeback
// failure the frame is left intact and the error propagates: losing a
// dirty page in-process would be silent data loss, the one thing the
// paged tier must never do.
func (pg *Pager) evict(i int) error {
	f := &pg.frames[i]
	if f.page == nil {
		return nil
	}
	if f.dirty {
		if err := pg.writeback(i); err != nil {
			return err
		}
	}
	delete(pg.table, f.page.ID)
	f.page = nil
	f.ref = false
	pg.evictions.Add(1)
	pg.residentGauge.Add(^uint64(0))
	return nil
}

func (pg *Pager) writeback(i int) error {
	f := &pg.frames[i]
	f.page.Encode(pg.buf)
	off := int64(f.page.ID) * int64(pg.cfg.PageBytes)
	if _, err := pg.file.WriteAt(pg.buf, off); err != nil {
		return fmt.Errorf("pager: writeback page %d: %w", f.page.ID, err)
	}
	f.dirty = false
	pg.writebacks.Add(1)
	return nil
}

// getFrame returns the frame index holding pageID, loading it from the
// page file on a miss. Eviction invariant: a page leaves the pool only
// after its image is on the file, so every non-resident page is loadable.
func (pg *Pager) getFrame(pageID uint64) (int, error) {
	if i, ok := pg.table[pageID]; ok {
		pg.frames[i].ref = true
		pg.hits.Add(1)
		return i, nil
	}
	pg.misses.Add(1)
	i, err := pg.victim()
	if err != nil {
		return 0, err
	}
	if err := pg.evict(i); err != nil {
		return 0, err
	}
	start := time.Now()
	off := int64(pageID) * int64(pg.cfg.PageBytes)
	if _, err := pg.file.ReadAt(pg.buf, off); err != nil {
		return 0, fmt.Errorf("pager: read page %d: %w", pageID, err)
	}
	page, err := DecodePage(pg.buf, pageID)
	if err != nil {
		return 0, err
	}
	pg.recordLoad(time.Since(start))
	pg.loads.Add(1)
	pg.install(i, page, false)
	return i, nil
}

// install places page into frame i and indexes it.
func (pg *Pager) install(i int, page *Page, dirty bool) {
	f := &pg.frames[i]
	f.page = page
	f.dirty = dirty
	f.ref = true
	f.pins = 0
	pg.table[page.ID] = i
	pg.residentGauge.Add(1)
}

// allocTarget returns a frame holding a page with at least one free slot,
// creating a fresh page when nothing has room. Preference order: a
// resident page (no I/O), a known-free page from the stack (one load), a
// brand-new page (no I/O; it is born dirty in a frame, so the eviction
// invariant holds — its first file image is written on eviction).
func (pg *Pager) allocTarget() (int, error) {
	for i := range pg.frames {
		f := &pg.frames[i]
		if f.page != nil && f.page.Free() > 0 {
			return i, nil
		}
	}
	for len(pg.freeStack) > 0 {
		id := pg.freeStack[len(pg.freeStack)-1]
		pg.freeStack = pg.freeStack[:len(pg.freeStack)-1]
		delete(pg.inStack, id)
		if pg.freeCnt[id] <= 0 {
			continue // stale entry: filled since it was pushed
		}
		return pg.getFrame(id)
	}
	id := pg.npages
	i, err := pg.victim()
	if err != nil {
		return 0, err
	}
	if err := pg.evict(i); err != nil {
		return 0, err
	}
	pg.npages++
	pg.pagesGauge.Store(pg.npages)
	pg.install(i, NewPage(id, pg.slotsPer), true)
	return i, nil
}

// noteFree records page id's free-slot count and queues it for reuse.
func (pg *Pager) noteFree(id uint64, free int) {
	if free <= 0 {
		delete(pg.freeCnt, id)
		return
	}
	pg.freeCnt[id] = free
	if !pg.inStack[id] {
		pg.inStack[id] = true
		pg.freeStack = append(pg.freeStack, id)
	}
}

func (pg *Pager) storeOne(key, value uint64) (uint64, error) {
	i, err := pg.allocTarget()
	if err != nil {
		return 0, err
	}
	f := &pg.frames[i]
	slot, ok := f.page.Alloc(key, value)
	if !ok {
		return 0, fmt.Errorf("pager: page %d reported free space but is full", f.page.ID)
	}
	f.dirty = true
	f.ref = true
	pg.noteFree(f.page.ID, f.page.Free())
	pg.allocs.Add(1)
	if f.page.ID > maxPageID {
		return 0, fmt.Errorf("pager: page id %d exceeds reference capacity", f.page.ID)
	}
	return MakeRef(f.page.ID, slot), nil
}

func (pg *Pager) loadOne(ref, key uint64) (uint64, bool, error) {
	pageID, slot := SplitRef(ref)
	if pageID >= pg.npages {
		return 0, false, fmt.Errorf("%w: reference to unallocated page %d", ErrCorruptPage, pageID)
	}
	i, err := pg.getFrame(pageID)
	if err != nil {
		return 0, false, err
	}
	s, occupied := pg.frames[i].page.Slot(slot)
	if !occupied || s.Key != key {
		// The slot was freed (and possibly recycled for another key)
		// after the caller captured the reference. Self-validation turns
		// that race into a retryable miss instead of a wrong value.
		return 0, false, nil
	}
	return s.Value, true, nil
}

func (pg *Pager) freeOne(ref uint64) {
	pageID, slot := SplitRef(ref)
	if pageID >= pg.npages {
		return
	}
	i, err := pg.getFrame(pageID)
	if err != nil {
		return // best effort: a leaked slot is only wasted space
	}
	f := &pg.frames[i]
	if !f.page.Occupied(slot) {
		return
	}
	f.page.Clear(slot)
	f.dirty = true
	pg.noteFree(f.page.ID, f.page.Free())
	pg.frees.Add(1)
}

// --- task-based public API ---

// Store writes one record into the paged tier and hands its reference to
// done. Scheduled as a pool task; done runs inside that task.
func (pg *Pager) Store(ctx *mxtask.Context, key, value uint64, done func(ctx *mxtask.Context, ref uint64, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		ref, err := pg.storeOne(key, value)
		done(tc, ref, err)
	})
}

// StoreBatch writes all pairs in one pool task — one scheduling round and
// at most a handful of page loads for the whole batch. On error the
// already-allocated prefix is freed and refs is nil.
func (pg *Pager) StoreBatch(ctx *mxtask.Context, pairs []Slot, done func(ctx *mxtask.Context, refs []uint64, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		refs := make([]uint64, len(pairs))
		for i, p := range pairs {
			ref, err := pg.storeOne(p.Key, p.Value)
			if err != nil {
				for _, r := range refs[:i] {
					pg.freeOne(r)
				}
				done(tc, nil, err)
				return
			}
			refs[i] = ref
		}
		done(tc, refs, nil)
	})
}

// Load resolves a reference. ok is false when the slot no longer holds
// key's record (freed or recycled since the reference was captured) — the
// caller should retry from its index. err is reserved for real failures
// (I/O, corruption).
func (pg *Pager) Load(ctx *mxtask.Context, ref, key uint64, done func(ctx *mxtask.Context, value uint64, ok bool, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		v, ok, err := pg.loadOne(ref, key)
		done(tc, v, ok, err)
	})
}

// LoadBatch resolves refs[i] against keys[i] in one pool task. A non-nil
// err aborts the batch (values/oks nil).
func (pg *Pager) LoadBatch(ctx *mxtask.Context, refs, keys []uint64, done func(ctx *mxtask.Context, values []uint64, oks []bool, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		values := make([]uint64, len(refs))
		oks := make([]bool, len(refs))
		for i, ref := range refs {
			v, ok, err := pg.loadOne(ref, keys[i])
			if err != nil {
				done(tc, nil, nil, err)
				return
			}
			values[i], oks[i] = v, ok
		}
		done(tc, values, oks, nil)
	})
}

// Free releases the slot behind ref. Fire-and-forget: frees are pure
// space reclamation in a volatile cache, so errors only leak a slot.
func (pg *Pager) Free(ctx *mxtask.Context, ref uint64) {
	pg.spawn(ctx, func(*mxtask.Context, *mxtask.Task) {
		pg.freeOne(ref)
	})
}

// Touch schedules a page load ahead of need — the page-level analogue of
// the tree's prefetch Touch. By the time the cursor's own task reaches
// the page it is resident and the lookup is a pool hit; this is where the
// paper's prefetch annotations meet real I/O latency instead of cache
// lines.
func (pg *Pager) Touch(ctx *mxtask.Context, pageID uint64) {
	pg.spawn(ctx, func(*mxtask.Context, *mxtask.Task) {
		pg.touches.Add(1)
		if pageID >= pg.npages {
			return
		}
		_, _ = pg.getFrame(pageID) // resident + ref bit set; errors are a missed prefetch, nothing more
	})
}

// Barrier enqueues fn as a pool task that touches no pool state. Pool
// tasks run FIFO on the pager's exclusive resource, so fn runs strictly
// after every pool operation enqueued before the Barrier call — callers
// use it to order their own dispatch behind in-flight allocations (the
// paged store's read-your-writes fence rides this).
func (pg *Pager) Barrier(ctx *mxtask.Context, fn func(ctx *mxtask.Context)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		fn(tc)
	})
}

// PageRef is a pinned page handle. While pinned the frame is exempt from
// eviction, so the *Page stays valid across task boundaries until Unpin.
type PageRef struct {
	pg     *Pager
	frame  int
	pageID uint64
}

// Page returns the pinned page. Mutating callers must MarkDirty.
func (r *PageRef) Page() *Page { return r.pg.frames[r.frame].page }

// PageID returns the pinned page's ID.
func (r *PageRef) PageID() uint64 { return r.pageID }

// MarkDirty flags the pinned page for writeback on eviction. Must run
// inside a pool task (e.g. the Pin callback or a chained task on
// Resource()).
func (r *PageRef) MarkDirty() { r.pg.frames[r.frame].dirty = true }

// Pin loads pageID and pins its frame, handing the caller a PageRef that
// remains valid until Unpin.
func (pg *Pager) Pin(ctx *mxtask.Context, pageID uint64, done func(ctx *mxtask.Context, ref *PageRef, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		i, err := pg.getFrame(pageID)
		if err != nil {
			done(tc, nil, err)
			return
		}
		pg.frames[i].pins++
		done(tc, &PageRef{pg: pg, frame: i, pageID: pageID}, nil)
	})
}

// Unpin releases the pin. The PageRef must not be used afterwards.
func (pg *Pager) Unpin(ctx *mxtask.Context, ref *PageRef) {
	pg.spawn(ctx, func(*mxtask.Context, *mxtask.Task) {
		if f := &pg.frames[ref.frame]; f.pins > 0 {
			f.pins--
		}
	})
}

// Flush writes every dirty resident page to the file, then calls done.
func (pg *Pager) Flush(ctx *mxtask.Context, done func(ctx *mxtask.Context, err error)) {
	pg.spawn(ctx, func(tc *mxtask.Context, _ *mxtask.Task) {
		var firstErr error
		for i := range pg.frames {
			f := &pg.frames[i]
			if f.page != nil && f.dirty {
				if err := pg.writeback(i); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if done != nil {
			done(tc, firstErr)
		}
	})
}

// Close closes the page file. The caller must have drained the runtime
// first — no pool task may be in flight.
func (pg *Pager) Close() error {
	if pg.closed {
		return nil
	}
	pg.closed = true
	return pg.file.Close()
}

// --- stats ---

func (pg *Pager) recordLoad(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= latBuckets {
		b = latBuckets - 1
	}
	pg.lat[b].Add(1)
}

// Stats snapshots the pool counters. Safe from any goroutine.
func (pg *Pager) Stats() Stats {
	s := Stats{
		Hits:       pg.hits.Load(),
		Misses:     pg.misses.Load(),
		Evictions:  pg.evictions.Load(),
		Writebacks: pg.writebacks.Load(),
		Loads:      pg.loads.Load(),
		Allocs:     pg.allocs.Load(),
		Frees:      pg.frees.Load(),
		Touches:    pg.touches.Load(),
		Pages:      pg.pagesGauge.Load(),
		Resident:   pg.residentGauge.Load(),
	}
	var counts [latBuckets]uint64
	var total uint64
	for i := range pg.lat {
		counts[i] = pg.lat[i].Load()
		total += counts[i]
	}
	s.LoadP50Micros = percentileMicros(counts[:], total, 0.50)
	s.LoadP99Micros = percentileMicros(counts[:], total, 0.99)
	return s
}

// percentileMicros walks the power-of-two histogram and returns the upper
// bound of the bucket containing percentile p, in microseconds.
func percentileMicros(counts []uint64, total uint64, p float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			upperNs := uint64(1) << (i + 1)
			return upperNs / 1000
		}
	}
	return 0
}
