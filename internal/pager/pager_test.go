package pager

import (
	"errors"
	"os"
	"sync"
	"testing"

	"mxtasking/internal/epoch"
	"mxtasking/internal/faultfs"
	"mxtasking/internal/mxtask"
)

func newRuntime(workers int) *mxtask.Runtime {
	rt := mxtask.New(mxtask.Config{
		Workers:          workers,
		PrefetchDistance: 2,
		EpochPolicy:      epoch.Batched,
		EpochInterval:    -1,
	})
	rt.Start()
	return rt
}

func newPager(t *testing.T, rt *mxtask.Runtime, pageBytes, frames int) (*Pager, *faultfs.FaultFS) {
	t.Helper()
	fs := faultfs.NewMem(1)
	pg, err := Open(rt, Config{Path: "/pg/pages", FS: fs, PageBytes: pageBytes, PoolFrames: frames})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return pg, fs
}

// storeSync / loadSync drive the task API synchronously for tests.
func storeSync(t *testing.T, rt *mxtask.Runtime, pg *Pager, key, value uint64) uint64 {
	t.Helper()
	var (
		wg  sync.WaitGroup
		ref uint64
		err error
	)
	wg.Add(1)
	pg.Store(nil, key, value, func(_ *mxtask.Context, r uint64, e error) {
		ref, err = r, e
		wg.Done()
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("Store(%d, %d): %v", key, value, err)
	}
	return ref
}

func loadSync(t *testing.T, rt *mxtask.Runtime, pg *Pager, ref, key uint64) (uint64, bool) {
	t.Helper()
	var (
		wg  sync.WaitGroup
		v   uint64
		ok  bool
		err error
	)
	wg.Add(1)
	pg.Load(nil, ref, key, func(_ *mxtask.Context, value uint64, o bool, e error) {
		v, ok, err = value, o, e
		wg.Done()
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("Load(%#x, %d): %v", ref, key, err)
	}
	return v, ok
}

func freeSync(rt *mxtask.Runtime, pg *Pager, ref uint64) {
	pg.Free(nil, ref)
	rt.Drain()
}

func TestSlotsPerPage(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 0}, {63, 0}, {64, 2}, {128, 6}, {4096, 252},
	}
	for _, c := range cases {
		if got := SlotsPerPage(c.bytes); got != c.want {
			t.Errorf("SlotsPerPage(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	// Whatever the count, header + bitmap + slots must fit.
	for _, b := range []int{64, 100, 128, 256, 4096, 1 << 20} {
		n := SlotsPerPage(b)
		if need := headerBytes + (n+7)/8 + n*SlotBytes; need > b {
			t.Errorf("SlotsPerPage(%d) = %d slots needing %d bytes", b, n, need)
		}
		// And one more slot must not fit (no wasted capacity), unless
		// capped by the slot-index width.
		if n < maxSlots {
			if need := headerBytes + (n+1+7)/8 + (n+1)*SlotBytes; need <= b {
				t.Errorf("SlotsPerPage(%d) = %d but %d slots also fit", b, n, n+1)
			}
		}
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	const pageBytes = 256
	p := NewPage(7, SlotsPerPage(pageBytes))
	p.Set(0, 100, 200)
	p.Set(3, ^uint64(0), 1)
	p.Set(p.Cap()-1, 42, 43)
	p.Clear(3)
	buf := make([]byte, pageBytes)
	p.Encode(buf)
	got, err := DecodePage(buf, 7)
	if err != nil {
		t.Fatalf("DecodePage: %v", err)
	}
	if got.Used() != 2 {
		t.Fatalf("Used = %d, want 2", got.Used())
	}
	if s, ok := got.Slot(0); !ok || s != (Slot{100, 200}) {
		t.Fatalf("slot 0 = %+v, %v", s, ok)
	}
	if _, ok := got.Slot(3); ok {
		t.Fatal("cleared slot 3 still occupied after round trip")
	}
	if s, ok := got.Slot(got.Cap() - 1); !ok || s != (Slot{42, 43}) {
		t.Fatalf("last slot = %+v, %v", s, ok)
	}
}

func TestPageCodecRejectsCorruption(t *testing.T) {
	const pageBytes = 128
	p := NewPage(3, SlotsPerPage(pageBytes))
	p.Set(1, 11, 22)
	good := make([]byte, pageBytes)
	p.Encode(good)

	flip := func(off int) []byte {
		b := make([]byte, len(good))
		copy(b, good)
		b[off] ^= 0xFF
		return b
	}
	cases := map[string][]byte{
		"magic":    flip(0),
		"version":  flip(4),
		"pageID":   flip(8),
		"used":     flip(16),
		"crc":      flip(20),
		"bitmap":   flip(headerBytes),
		"slotByte": flip(headerBytes + 1 + SlotBytes),
	}
	for name, buf := range cases {
		if _, err := DecodePage(buf, 3); !errors.Is(err, ErrCorruptPage) {
			t.Errorf("%s corruption: err = %v, want ErrCorruptPage", name, err)
		}
	}
	// Wrong expected ID on an otherwise valid image.
	if _, err := DecodePage(good, 4); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("wrong wantID: err = %v, want ErrCorruptPage", err)
	}
	if _, err := DecodePage(good[:32], 3); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("undersized image: err = %v, want ErrCorruptPage", err)
	}
}

func TestRefEncoding(t *testing.T) {
	cases := []struct {
		page uint64
		slot int
	}{{0, 0}, {1, 65535}, {maxPageID, 1}, {123456, 789}}
	for _, c := range cases {
		ref := MakeRef(c.page, c.slot)
		if !IsRef(ref) {
			t.Errorf("MakeRef(%d,%d) not tagged", c.page, c.slot)
		}
		p, s := SplitRef(ref)
		if p != c.page || s != c.slot {
			t.Errorf("SplitRef(MakeRef(%d,%d)) = (%d,%d)", c.page, c.slot, p, s)
		}
	}
	if IsRef(1 << 62) {
		t.Error("untagged word classified as ref")
	}
}

func TestPagerStoreLoadEvict(t *testing.T) {
	rt := newRuntime(2)
	defer rt.Stop()
	// Tiny pool: 2 frames, 6-slot pages — heavy eviction by design.
	pg, _ := newPager(t, rt, 128, 2)
	defer pg.Close()

	const n = 100
	refs := make(map[uint64]uint64, n)
	for k := uint64(0); k < n; k++ {
		refs[k] = storeSync(t, rt, pg, k, k*3+1)
	}
	st := pg.Stats()
	if st.Pages < n/6 {
		t.Fatalf("Pages = %d, want at least %d", st.Pages, n/6)
	}
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("no eviction pressure: %+v", st)
	}
	if st.Resident > 2 {
		t.Fatalf("Resident = %d exceeds pool", st.Resident)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := loadSync(t, rt, pg, refs[k], k)
		if !ok || v != k*3+1 {
			t.Fatalf("Load(%d) = (%d, %v), want (%d, true)", k, v, ok, k*3+1)
		}
	}
	st = pg.Stats()
	if st.Misses == 0 || st.Loads == 0 {
		t.Fatalf("reload produced no misses: %+v", st)
	}
	// In-memory loads are sub-microsecond, so the percentile may be 0;
	// it only must never exceed p99.
	if st.LoadP50Micros > st.LoadP99Micros {
		t.Fatalf("p50 %dus > p99 %dus", st.LoadP50Micros, st.LoadP99Micros)
	}
}

func TestPagerSlotValidation(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 2)
	defer pg.Close()

	ref := storeSync(t, rt, pg, 5, 500)
	freeSync(rt, pg, ref)
	// Freed slot: the stale ref must miss, not return garbage.
	if v, ok := loadSync(t, rt, pg, ref, 5); ok {
		t.Fatalf("load of freed slot returned (%d, true)", v)
	}
	// Recycle the slot for another key: still a miss for the old key.
	ref2 := storeSync(t, rt, pg, 9, 900)
	if ref2 != ref {
		t.Fatalf("free list did not recycle slot: %#x vs %#x", ref2, ref)
	}
	if v, ok := loadSync(t, rt, pg, ref, 5); ok {
		t.Fatalf("stale ref for key 5 resolved to (%d, true) after recycle", v)
	}
	// Same slot, same key: self-validation accepts the newer record.
	ref3 := storeSync(t, rt, pg, 9, 901)
	_ = ref3
	if v, ok := loadSync(t, rt, pg, ref, 9); !ok || v != 900 {
		t.Fatalf("recycled slot for key 9 = (%d, %v)", v, ok)
	}
}

func TestPagerBatch(t *testing.T) {
	rt := newRuntime(2)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 2)
	defer pg.Close()

	pairs := make([]Slot, 40)
	for i := range pairs {
		pairs[i] = Slot{Key: uint64(i), Value: uint64(i) * 7}
	}
	var (
		wg   sync.WaitGroup
		refs []uint64
	)
	wg.Add(1)
	pg.StoreBatch(nil, pairs, func(_ *mxtask.Context, r []uint64, err error) {
		if err != nil {
			t.Errorf("StoreBatch: %v", err)
		}
		refs = r
		wg.Done()
	})
	wg.Wait()
	if len(refs) != len(pairs) {
		t.Fatalf("got %d refs", len(refs))
	}

	keys := make([]uint64, len(pairs))
	for i := range pairs {
		keys[i] = pairs[i].Key
	}
	wg.Add(1)
	pg.LoadBatch(nil, refs, keys, func(_ *mxtask.Context, values []uint64, oks []bool, err error) {
		defer wg.Done()
		if err != nil {
			t.Errorf("LoadBatch: %v", err)
			return
		}
		for i := range values {
			if !oks[i] || values[i] != keys[i]*7 {
				t.Errorf("batch load %d = (%d, %v)", i, values[i], oks[i])
			}
		}
	})
	wg.Wait()
}

func TestPagerPinBlocksEviction(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 2)
	defer pg.Close()

	// Fill two pages so both frames are occupied.
	var firstRef uint64
	for k := uint64(0); k < 12; k++ {
		r := storeSync(t, rt, pg, k, k+1000)
		if k == 0 {
			firstRef = r
		}
	}
	pageID, _ := SplitRef(firstRef)

	var (
		wg   sync.WaitGroup
		pref *PageRef
	)
	wg.Add(1)
	pg.Pin(nil, pageID, func(_ *mxtask.Context, r *PageRef, err error) {
		if err != nil {
			t.Errorf("Pin: %v", err)
		}
		pref = r
		wg.Done()
	})
	wg.Wait()
	if pref == nil {
		t.Fatal("no PageRef")
	}
	if pref.PageID() != pageID || pref.Page().ID != pageID {
		t.Fatalf("PageRef page = %d, want %d", pref.Page().ID, pageID)
	}

	// Churn more pages than the pool holds: the pinned page must survive.
	for k := uint64(100); k < 160; k++ {
		storeSync(t, rt, pg, k, k)
	}
	if pref.Page() == nil || pref.Page().ID != pageID {
		t.Fatal("pinned frame was recycled under churn")
	}
	pg.Unpin(nil, pref)
	rt.Drain()

	// With 1 of 2 frames pinned, churn still works through the other.
	// Pin the second resident page too and a store must fail ErrNoFrames
	// once it needs a frame that cannot be freed.
}

func TestPagerAllFramesPinned(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 1)
	defer pg.Close()

	storeSync(t, rt, pg, 1, 10)
	var pref *PageRef
	var wg sync.WaitGroup
	wg.Add(1)
	pg.Pin(nil, 0, func(_ *mxtask.Context, r *PageRef, err error) {
		if err != nil {
			t.Errorf("Pin: %v", err)
		}
		pref = r
		wg.Done()
	})
	wg.Wait()

	// Force a page fault with every frame pinned: typed error, no panic.
	// Filling page 0 (6 slots) forces a new page and a victim search.
	for k := uint64(2); k <= 6; k++ {
		storeSync(t, rt, pg, k, k)
	}
	var gotErr error
	wg.Add(1)
	pg.Store(nil, 7, 7, func(_ *mxtask.Context, _ uint64, err error) {
		gotErr = err
		wg.Done()
	})
	wg.Wait()
	if !errors.Is(gotErr, ErrNoFrames) {
		t.Fatalf("store with all frames pinned: %v, want ErrNoFrames", gotErr)
	}
	pg.Unpin(nil, pref)
	rt.Drain()
	storeSync(t, rt, pg, 7, 7)
}

func TestPagerTouchPrefetches(t *testing.T) {
	rt := newRuntime(2)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 4)
	defer pg.Close()

	refs := make([]uint64, 0, 60)
	for k := uint64(0); k < 60; k++ {
		refs = append(refs, storeSync(t, rt, pg, k, k))
	}
	// Evict page 0 by churning, then touch it back in.
	pageID, _ := SplitRef(refs[0])
	pg.Touch(nil, pageID)
	rt.Drain()
	before := pg.Stats()
	if before.Touches == 0 {
		t.Fatal("touch not counted")
	}
	// The touched page is now resident: the load that follows is a hit.
	if _, ok := loadSync(t, rt, pg, refs[0], 0); !ok {
		t.Fatal("load after touch failed")
	}
	after := pg.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("load after touch was not a pool hit (hits %d -> %d)", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Fatalf("load after touch missed (misses %d -> %d)", before.Misses, after.Misses)
	}
}

func TestPagerCorruptFileLoad(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	fs := faultfs.NewMem(1)
	pg, err := Open(rt, Config{Path: "/pg/pages", FS: fs, PageBytes: 128, PoolFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()

	// Two pages' worth of data so page 0 can be evicted (written back).
	refs := make([]uint64, 0, 12)
	for k := uint64(0); k < 12; k++ {
		refs = append(refs, storeSync(t, rt, pg, k, k+7))
	}
	// Push page 0 out and smash its on-file image behind the pager's back.
	for k := uint64(100); k < 130; k++ {
		storeSync(t, rt, pg, k, k)
	}
	raw, err := fs.OpenRandom("/pg/pages", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteAt([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 40); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	var gotErr error
	var wg sync.WaitGroup
	wg.Add(1)
	pg.Load(nil, refs[0], 0, func(_ *mxtask.Context, _ uint64, _ bool, err error) {
		gotErr = err
		wg.Done()
	})
	wg.Wait()
	if !errors.Is(gotErr, ErrCorruptPage) {
		t.Fatalf("load of smashed page: %v, want ErrCorruptPage", gotErr)
	}
}

func TestPagerFreeRecyclesPages(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 3)
	defer pg.Close()

	refs := make([]uint64, 0, 30)
	for k := uint64(0); k < 30; k++ {
		refs = append(refs, storeSync(t, rt, pg, k, k))
	}
	pagesBefore := pg.Stats().Pages
	for _, r := range refs {
		freeSync(rt, pg, r)
	}
	if got := pg.Stats().Frees; got != 30 {
		t.Fatalf("Frees = %d, want 30", got)
	}
	// Refill: recycled slots mean no (or barely any) new pages.
	for k := uint64(100); k < 130; k++ {
		storeSync(t, rt, pg, k, k)
	}
	if got := pg.Stats().Pages; got != pagesBefore {
		t.Fatalf("Pages grew %d -> %d despite %d freed slots", pagesBefore, got, len(refs))
	}
}

func TestPagerConcurrentClients(t *testing.T) {
	rt := newRuntime(4)
	defer rt.Stop()
	pg, _ := newPager(t, rt, 128, 4)
	defer pg.Close()

	const clients, per = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := uint64(c*per + i)
				var inner sync.WaitGroup
				inner.Add(1)
				pg.Store(nil, key, key^0xABCD, func(ctx *mxtask.Context, ref uint64, err error) {
					if err != nil {
						t.Errorf("store %d: %v", key, err)
						inner.Done()
						return
					}
					// Chain the load off the store's context.
					pg.Load(ctx, ref, key, func(_ *mxtask.Context, v uint64, ok bool, err error) {
						if err != nil || !ok || v != key^0xABCD {
							t.Errorf("load %d = (%d, %v, %v)", key, v, ok, err)
						}
						inner.Done()
					})
				})
				inner.Wait()
			}
		}(c)
	}
	wg.Wait()
	st := pg.Stats()
	if st.Allocs != clients*per {
		t.Fatalf("Allocs = %d, want %d", st.Allocs, clients*per)
	}
}

func TestPagerFlush(t *testing.T) {
	rt := newRuntime(1)
	defer rt.Stop()
	fs := faultfs.NewMem(1)
	pg, err := Open(rt, Config{Path: "/pg/pages", FS: fs, PageBytes: 128, PoolFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := storeSync(t, rt, pg, 1, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	pg.Flush(nil, func(_ *mxtask.Context, err error) {
		if err != nil {
			t.Errorf("Flush: %v", err)
		}
		wg.Done()
	})
	wg.Wait()
	// The flushed image on the file decodes and holds the record.
	pageID, slot := SplitRef(ref)
	raw, err := fs.OpenRandom("/pg/pages", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := raw.ReadAt(buf, int64(pageID)*128); err != nil {
		t.Fatal(err)
	}
	p, err := DecodePage(buf, pageID)
	if err != nil {
		t.Fatalf("flushed page does not decode: %v", err)
	}
	if s, ok := p.Slot(slot); !ok || s != (Slot{1, 2}) {
		t.Fatalf("flushed slot = %+v, %v", s, ok)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
