package pager

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"mxtasking/internal/faultfs"
	"mxtasking/internal/mxtask"
)

// TestPagerStress is the seeded eviction-pressure suite behind `make
// pager-stress`: per seed it draws a pool far smaller than the dataset,
// runs a random store/load/free/touch stream from several goroutines, and
// lockstep-checks every load against an in-memory oracle. MXPG_SEEDS
// raises the seed count in CI (default 4, 20 under `make pager-stress`).
func TestPagerStress(t *testing.T) {
	seeds := 4
	if s := os.Getenv("MXPG_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("MXPG_SEEDS=%q: %v", s, err)
		}
		seeds = n
	}
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run("seed="+strconv.Itoa(seed), func(t *testing.T) {
			t.Parallel()
			stressOnce(t, int64(seed))
		})
	}
}

func stressOnce(t *testing.T, seed int64) {
	shape := rand.New(rand.NewSource(seed))
	pageBytes := []int{64, 128, 256, 1024}[shape.Intn(4)]
	frames := 1 + shape.Intn(4) // 1-4 frames: the dataset will dwarf the pool
	workers := 1 + shape.Intn(3)

	rt := newRuntime(workers)
	defer rt.Stop()
	fs := faultfs.NewMem(seed)
	pg, err := Open(rt, Config{Path: "/pg/pages", FS: fs, PageBytes: pageBytes, PoolFrames: frames})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()

	const clients = 3
	const opsPer = 300
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(c)))
			// Per-client oracle: ref -> (key, value) while live. Clients
			// own disjoint key ranges so frees never race with loads.
			type rec struct{ key, value, ref uint64 }
			var live []rec
			for i := 0; i < opsPer; i++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(live) == 0: // store
					key := uint64(c)<<32 | uint64(rng.Intn(1<<20))
					value := rng.Uint64() &^ RefTag
					var done sync.WaitGroup
					done.Add(1)
					pg.Store(nil, key, value, func(_ *mxtask.Context, ref uint64, err error) {
						defer done.Done()
						if err != nil {
							t.Errorf("seed %d store: %v", seed, err)
							return
						}
						live = append(live, rec{key, value, ref})
					})
					done.Wait()
				case op < 8: // load a live record, check against oracle
					r := live[rng.Intn(len(live))]
					var done sync.WaitGroup
					done.Add(1)
					pg.Load(nil, r.ref, r.key, func(_ *mxtask.Context, v uint64, ok bool, err error) {
						defer done.Done()
						if err != nil {
							t.Errorf("seed %d load: %v", seed, err)
							return
						}
						if !ok || v != r.value {
							t.Errorf("seed %d load key %d = (%d, %v), want (%d, true)", seed, r.key, v, ok, r.value)
						}
					})
					done.Wait()
				case op < 9: // free a live record
					i := rng.Intn(len(live))
					pg.Free(nil, live[i].ref)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default: // prefetch touch of a random known page
					r := live[rng.Intn(len(live))]
					pageID, _ := SplitRef(r.ref)
					pg.Touch(nil, pageID)
				}
			}
			// Final sweep: every still-live record must read back.
			for _, r := range live {
				var done sync.WaitGroup
				done.Add(1)
				pg.Load(nil, r.ref, r.key, func(_ *mxtask.Context, v uint64, ok bool, err error) {
					defer done.Done()
					if err != nil || !ok || v != r.value {
						t.Errorf("seed %d final load key %d = (%d, %v, %v), want %d", seed, r.key, v, ok, err, r.value)
					}
				})
				done.Wait()
			}
		}(c)
	}
	wg.Wait()
	rt.Drain()

	st := pg.Stats()
	if st.Evictions == 0 {
		t.Errorf("seed %d: no evictions with %d frames over %d pages — not a stress test", seed, frames, st.Pages)
	}
	if st.Resident > uint64(frames) {
		t.Errorf("seed %d: resident %d > frames %d", seed, st.Resident, frames)
	}
}
