// Package prefetch is a learned access-pattern prefetcher: instead of the
// paper's static annotations ("this task will touch that node"), a Stream
// watches the addresses an access sequence actually touches, induces the
// stride between consecutive accesses, and — once the stride has repeated
// often enough to be trusted — predicts the next K addresses so the caller
// can issue cache-warming touches ahead of demand.
//
// The design follows AIFM's Prefetcher (SNIPPETS.md Snippet 1): a
// fixed-size access-trace ring, Induce/Infer pattern functions, a
// hit-threshold before any prediction is issued, and an adaptive lookahead
// window that widens while predictions keep hitting and collapses when
// they miss. On top of that sits a self-disable gate: when the hit rate
// over a gating period stays below threshold (a random point-read stream
// never develops a stride), the stream switches itself off and each
// further access costs three compares and a ring store — no predictions,
// no touch tasks, ~zero overhead. A disabled stream keeps running stride
// detection, so a phase change back to a sequential pattern re-enables it.
//
// Streams are single-goroutine (the kvstore server keeps one per
// connection on the reader goroutine); the shared Metrics aggregate is
// atomic so any number of streams can feed one observability sink.
package prefetch

import "sync/atomic"

// Pattern is an induced access pattern: the stride between consecutive
// accesses. Strides are signed — descending walks learn just as well.
type Pattern = int64

// InduceFunc derives the pattern linking two consecutive accesses.
type InduceFunc func(prev, cur uint64) Pattern

// InferFunc predicts the k-th next access (k >= 1) following cur under an
// induced pattern.
type InferFunc func(cur uint64, p Pattern, k int) uint64

// InduceStride is the default InduceFunc: the delta between consecutive
// accesses (two's complement, so descending strides come out negative).
func InduceStride(prev, cur uint64) Pattern { return int64(cur - prev) }

// InferStride is the default InferFunc: cur + k·stride.
func InferStride(cur uint64, p Pattern, k int) uint64 {
	return cur + uint64(p)*uint64(k)
}

// Config parameterizes a Stream. Zero values select the defaults.
type Config struct {
	// TraceSize is the access-trace ring capacity (default 64).
	TraceSize int
	// HitThreshold is how many consecutive accesses must repeat a stride
	// before it is confirmed and predictions start (default 4; AIFM uses
	// 8 over a coarser trace).
	HitThreshold int
	// MinWindow / MaxWindow bound the adaptive lookahead window: how many
	// predicted addresses may be outstanding ahead of the newest access.
	// The window starts at MinWindow on confirmation, grows by one per
	// hit, and halves per miss (defaults 2 and 32).
	MinWindow int
	MaxWindow int
	// GateWindow is the gating period in accesses (default 64): at the
	// end of each period the hit rate is compared against GateBelow
	// (default 0.25) and the stream self-disables when it falls short.
	GateWindow int
	GateBelow  float64
	// Induce / Infer override the pattern functions (defaults:
	// InduceStride / InferStride).
	Induce InduceFunc
	Infer  InferFunc
}

func (c *Config) applyDefaults() {
	if c.TraceSize <= 0 {
		c.TraceSize = 64
	}
	if c.HitThreshold <= 0 {
		c.HitThreshold = 4
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 2
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = 32
		if c.MaxWindow < c.MinWindow {
			c.MaxWindow = c.MinWindow
		}
	}
	if c.GateWindow <= 0 {
		c.GateWindow = 64
	}
	if c.GateBelow <= 0 {
		c.GateBelow = 0.25
	}
	if c.Induce == nil {
		c.Induce = InduceStride
	}
	if c.Infer == nil {
		c.Infer = InferStride
	}
}

// Metrics is the shared, atomically updated aggregate across any number of
// streams (one per server, fed by every connection's streams). All
// counters are monotonic; WindowMax is a high-water gauge.
type Metrics struct {
	Streams   atomic.Uint64 // streams created
	Observed  atomic.Uint64 // accesses observed (enabled or not)
	Hits      atomic.Uint64 // accesses that matched an outstanding prediction
	Misses    atomic.Uint64 // accesses that broke a confirmed stride
	Induced   atomic.Uint64 // strides confirmed (first inductions + re-inductions)
	Issued    atomic.Uint64 // predicted addresses handed to the caller
	Disables  atomic.Uint64 // self-disable gate trips
	Reenables atomic.Uint64 // disabled streams revived by a fresh stride
	windowMax atomic.Uint64
}

// NoteWindow records a window size into the high-water gauge.
func (m *Metrics) NoteWindow(w int) {
	for {
		cur := m.windowMax.Load()
		if uint64(w) <= cur || m.windowMax.CompareAndSwap(cur, uint64(w)) {
			return
		}
	}
}

// WindowMax returns the widest lookahead window any stream reached.
func (m *Metrics) WindowMax() uint64 { return m.windowMax.Load() }

// StreamStats is a snapshot of one stream's counters and state.
type StreamStats struct {
	Observed uint64
	Hits     uint64
	Misses   uint64
	Induced  uint64
	Issued   uint64
	Disables uint64
	Window   int  // current lookahead window
	Disabled bool // gate tripped, stream in cheap re-probe mode
}

// Stream is one access sequence's learned prefetcher. Not safe for
// concurrent use: exactly one goroutine observes a stream.
type Stream struct {
	cfg Config
	m   *Metrics

	// Access-trace ring (newest at (pos-1) mod len).
	ring []uint64
	pos  int
	n    int

	lastIdx  uint64
	haveLast bool

	// Induction candidate: the most recent delta and how many consecutive
	// accesses repeated it.
	cand    Pattern
	candRun int

	// Confirmed pattern state. ahead counts how many predicted addresses
	// are outstanding beyond the newest access, so repeated Observe calls
	// extend the prediction frontier instead of re-issuing it.
	confirmed bool
	pattern   Pattern
	window    int
	ahead     int

	// Gating period accumulators.
	periodObs  int
	periodHits int
	disabled   bool

	stats StreamStats
}

// New creates a stream. m may be nil (no shared aggregation).
func New(cfg Config, m *Metrics) *Stream {
	cfg.applyDefaults()
	s := &Stream{cfg: cfg, m: m, ring: make([]uint64, cfg.TraceSize), window: cfg.MinWindow}
	if m != nil {
		m.Streams.Add(1)
	}
	return s
}

// Observe feeds one access into the stream and appends any newly predicted
// addresses to dst (reuse a buffer across calls to stay allocation-free).
// At most MaxWindow predictions are returned per call.
func (s *Stream) Observe(idx uint64, dst []uint64) []uint64 {
	s.stats.Observed++
	if s.m != nil {
		s.m.Observed.Add(1)
	}
	s.ring[s.pos] = idx
	s.pos = (s.pos + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	if !s.haveLast {
		s.haveLast = true
		s.lastIdx = idx
		return dst
	}
	p := s.cfg.Induce(s.lastIdx, idx)
	s.lastIdx = idx

	if s.disabled {
		// Cheap re-probe path: stride detection only. A phase change back
		// to a predictable pattern re-enables the stream; anything else
		// costs three compares.
		s.trackCandidate(p)
		if p != 0 && s.candRun >= s.cfg.HitThreshold {
			s.reenable(p)
			return s.predict(idx, dst)
		}
		return dst
	}

	s.periodObs++
	switch {
	case s.confirmed && p == s.pattern:
		// The access followed the prediction frontier: a hit. Widen.
		s.periodHits++
		s.stats.Hits++
		if s.m != nil {
			s.m.Hits.Add(1)
		}
		if s.window < s.cfg.MaxWindow {
			s.window++
			if s.m != nil {
				s.m.NoteWindow(s.window)
			}
		}
		if s.ahead > 0 {
			s.ahead--
		}
	case s.confirmed:
		// Confirmed stride broken: a miss. Collapse the window, drop the
		// confirmation, and start inducing afresh from this delta.
		s.stats.Misses++
		if s.m != nil {
			s.m.Misses.Add(1)
		}
		s.confirmed = false
		s.ahead = 0
		s.window /= 2
		if s.window < s.cfg.MinWindow {
			s.window = s.cfg.MinWindow
		}
		s.cand, s.candRun = p, 1
	default:
		s.trackCandidate(p)
		if p != 0 && s.candRun >= s.cfg.HitThreshold {
			s.confirm(p)
		}
	}

	if s.confirmed {
		dst = s.predict(idx, dst)
	}
	if s.periodObs >= s.cfg.GateWindow {
		rate := float64(s.periodHits) / float64(s.periodObs)
		s.periodObs, s.periodHits = 0, 0
		if rate < s.cfg.GateBelow {
			s.disable()
		}
	}
	return dst
}

// trackCandidate advances the induction run for delta p. A zero delta
// (repeated identical access) never builds a run — predicting the address
// just touched warms nothing.
func (s *Stream) trackCandidate(p Pattern) {
	if p != 0 && p == s.cand {
		s.candRun++
	} else {
		s.cand, s.candRun = p, 1
	}
}

// confirm promotes the induction candidate to the active pattern.
func (s *Stream) confirm(p Pattern) {
	s.confirmed = true
	s.pattern = p
	s.ahead = 0
	s.window = s.cfg.MinWindow
	s.stats.Induced++
	if s.m != nil {
		s.m.Induced.Add(1)
		s.m.NoteWindow(s.window)
	}
}

// predict extends the prediction frontier to window addresses beyond idx,
// appending only the addresses not already predicted.
func (s *Stream) predict(idx uint64, dst []uint64) []uint64 {
	issued := 0
	for k := s.ahead + 1; k <= s.window; k++ {
		dst = append(dst, s.cfg.Infer(idx, s.pattern, k))
		issued++
	}
	if issued > 0 {
		s.ahead = s.window
		s.stats.Issued += uint64(issued)
		if s.m != nil {
			s.m.Issued.Add(uint64(issued))
		}
	}
	return dst
}

// disable trips the self-disable gate.
func (s *Stream) disable() {
	s.disabled = true
	s.confirmed = false
	s.ahead = 0
	s.cand, s.candRun = 0, 0
	s.window = s.cfg.MinWindow
	s.stats.Disables++
	if s.m != nil {
		s.m.Disables.Add(1)
	}
}

// reenable revives a gated stream around a freshly detected stride.
func (s *Stream) reenable(p Pattern) {
	s.disabled = false
	s.periodObs, s.periodHits = 0, 0
	s.confirm(p)
	if s.m != nil {
		s.m.Reenables.Add(1)
	}
}

// Stats returns a snapshot of the stream's counters and gate state.
func (s *Stream) Stats() StreamStats {
	st := s.stats
	st.Window = s.window
	st.Disabled = s.disabled
	return st
}

// Disabled reports whether the self-disable gate has the stream off.
func (s *Stream) Disabled() bool { return s.disabled }

// Window returns the current lookahead window.
func (s *Stream) Window() int { return s.window }

// Trace returns the access-trace ring's contents, oldest first.
func (s *Stream) Trace() []uint64 {
	out := make([]uint64, 0, s.n)
	start := s.pos - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}
