package prefetch

import (
	"os"
	"strconv"
	"testing"
)

// splitmix64 drives the seeded random streams; deterministic per seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestSequentialInducesAndWidens(t *testing.T) {
	m := &Metrics{}
	s := New(Config{}, m)
	var preds []uint64
	var buf []uint64
	for i := uint64(0); i < 256; i++ {
		buf = s.Observe(i, buf[:0])
		preds = append(preds, buf...)
	}
	st := s.Stats()
	if st.Induced == 0 {
		t.Fatalf("sequential stream induced no stride: %+v", st)
	}
	if st.Disabled {
		t.Fatalf("sequential stream self-disabled: %+v", st)
	}
	if st.Window <= s.cfg.MinWindow {
		t.Fatalf("window did not widen on hits: window=%d min=%d", st.Window, s.cfg.MinWindow)
	}
	if st.Window != s.cfg.MaxWindow {
		t.Errorf("256 sequential accesses should saturate the window: window=%d max=%d", st.Window, s.cfg.MaxWindow)
	}
	if st.Hits == 0 || st.Issued == 0 {
		t.Fatalf("expected hits and issued predictions: %+v", st)
	}
	// Predictions must be strictly ahead of the access that issued them
	// and follow the +1 stride.
	for _, p := range preds {
		if p == 0 {
			t.Fatalf("predicted address 0 (behind the stream)")
		}
	}
	if m.Hits.Load() != st.Hits || m.Induced.Load() != st.Induced {
		t.Fatalf("metrics disagree with stream stats: m.Hits=%d st.Hits=%d", m.Hits.Load(), st.Hits)
	}
	if m.WindowMax() != uint64(s.cfg.MaxWindow) {
		t.Errorf("WindowMax=%d, want %d", m.WindowMax(), s.cfg.MaxWindow)
	}
}

func TestStridedPatternPredictsStride(t *testing.T) {
	for _, stride := range []int64{7, -3, 4096} {
		s := New(Config{}, nil)
		base := uint64(1 << 32)
		var last []uint64
		var buf []uint64
		cur := base
		for i := 0; i < 64; i++ {
			buf = s.Observe(cur, buf[:0])
			if len(buf) > 0 {
				last = append(last[:0], buf...)
			}
			cur += uint64(stride)
		}
		if s.Stats().Induced == 0 {
			t.Fatalf("stride %d never induced", stride)
		}
		if len(last) == 0 {
			t.Fatalf("stride %d issued no predictions", stride)
		}
		// Every prediction in the last batch lies a whole number of
		// strides (1..MaxWindow) ahead of the final observed access, and
		// consecutive predictions are one stride apart.
		final := cur - uint64(stride) // the final observed access
		for i, p := range last {
			steps := int64(p-final) / stride
			if int64(p-final)%stride != 0 || steps < 1 || steps > int64(s.cfg.MaxWindow) {
				t.Fatalf("stride %d: prediction %d is %d (mod %d) past access %d", stride, p, int64(p-final), stride, final)
			}
			if i > 0 && int64(p-last[i-1]) != stride {
				t.Fatalf("stride %d: batch not stride-consecutive: %v", stride, last)
			}
		}
	}
}

func TestRandomSelfDisables(t *testing.T) {
	m := &Metrics{}
	s := New(Config{}, m)
	state := uint64(42)
	var buf []uint64
	issuedAfterDisable := 0
	for i := 0; i < 1024; i++ {
		wasDisabled := s.Disabled()
		buf = s.Observe(splitmix64(&state), buf[:0])
		if wasDisabled && len(buf) > 0 {
			issuedAfterDisable += len(buf)
		}
	}
	st := s.Stats()
	if !st.Disabled {
		t.Fatalf("random stream did not self-disable: %+v", st)
	}
	if st.Disables == 0 || m.Disables.Load() == 0 {
		t.Fatalf("disable gate never tripped: %+v", st)
	}
	if issuedAfterDisable != 0 {
		t.Fatalf("disabled stream issued %d predictions", issuedAfterDisable)
	}
	// A 64-bit random walk virtually never repeats a delta 4 times, so
	// the stream should pay ~zero prediction work overall.
	if st.Issued > uint64(s.cfg.MaxWindow) {
		t.Errorf("random stream issued %d predictions, want ~0", st.Issued)
	}
}

func TestPhaseChangeReenables(t *testing.T) {
	m := &Metrics{}
	s := New(Config{}, m)
	state := uint64(7)
	var buf []uint64
	// Phase 1: random until gated off.
	for i := 0; i < 512 && !s.Disabled(); i++ {
		buf = s.Observe(splitmix64(&state), buf[:0])
	}
	if !s.Disabled() {
		t.Fatal("random phase did not gate the stream off")
	}
	// Phase 2: sequential; the cheap re-probe must revive the stream.
	predicted := 0
	for i := uint64(0); i < 64; i++ {
		buf = s.Observe(1000+i, buf[:0])
		predicted += len(buf)
	}
	if s.Disabled() {
		t.Fatal("sequential phase did not re-enable the stream")
	}
	if m.Reenables.Load() == 0 {
		t.Fatal("Reenables counter stayed zero across a revival")
	}
	if predicted == 0 {
		t.Fatal("revived stream issued no predictions")
	}
}

func TestSameSeedDeterminism(t *testing.T) {
	run := func() (StreamStats, []uint64) {
		s := New(Config{}, nil)
		state := uint64(99)
		var all, buf []uint64
		for i := 0; i < 300; i++ {
			var a uint64
			if i%3 == 0 {
				a = splitmix64(&state)
			} else {
				a = uint64(i) * 8
			}
			buf = s.Observe(a, buf[:0])
			all = append(all, buf...)
		}
		return s.Stats(), all
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 {
		t.Fatalf("same input, different stats: %+v vs %+v", s1, s2)
	}
	if len(p1) != len(p2) {
		t.Fatalf("same input, different prediction counts: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prediction %d differs: %d vs %d", i, p1[i], p2[i])
		}
	}
}

func TestTraceRing(t *testing.T) {
	s := New(Config{TraceSize: 8}, nil)
	for i := uint64(0); i < 20; i++ {
		s.Observe(i, nil)
	}
	tr := s.Trace()
	if len(tr) != 8 {
		t.Fatalf("trace length %d, want 8", len(tr))
	}
	for i, v := range tr {
		if v != uint64(12+i) {
			t.Fatalf("trace[%d]=%d, want %d (oldest-first ring of the last 8)", i, v, 12+i)
		}
	}
}

// TestPrefetchPatterns is the seeded stress matrix behind `make
// prefetch-stress`: sequential, strided, random, and phase-change streams
// under multiple seeds, asserting the gate behaves correctly for each
// pattern class. MXPF_SEEDS widens the sweep.
func TestPrefetchPatterns(t *testing.T) {
	seeds := 4
	if v := os.Getenv("MXPF_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			seeds = n
		}
	}
	type pattern struct {
		name string
		// next returns the i-th access for a seed.
		next func(seed uint64, state *uint64, i int) uint64
		// wantDisabled is the expected terminal gate state.
		wantDisabled bool
	}
	patterns := []pattern{
		{"sequential", func(seed uint64, _ *uint64, i int) uint64 { return seed + uint64(i) }, false},
		{"strided", func(seed uint64, _ *uint64, i int) uint64 { return seed + uint64(i)*uint64(3+seed%13) }, false},
		{"random", func(_ uint64, state *uint64, _ int) uint64 { return splitmix64(state) }, true},
		{"phase-change", func(seed uint64, state *uint64, i int) uint64 {
			if i < 256 {
				return splitmix64(state) // random phase gates the stream off
			}
			return seed + uint64(i) // sequential phase must revive it
		}, false},
	}
	for _, p := range patterns {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				m := &Metrics{}
				s := New(Config{}, m)
				state := seed * 0x9e3779b97f4a7c15
				var buf []uint64
				for i := 0; i < 512; i++ {
					buf = s.Observe(p.next(seed, &state, i), buf[:0])
				}
				st := s.Stats()
				if st.Disabled != p.wantDisabled {
					t.Fatalf("seed %d: disabled=%v, want %v (%+v)", seed, st.Disabled, p.wantDisabled, st)
				}
				if !p.wantDisabled && st.Issued == 0 {
					t.Fatalf("seed %d: predictable pattern issued no predictions (%+v)", seed, st)
				}
				if p.wantDisabled && st.Hits > uint64(s.cfg.GateWindow) {
					t.Fatalf("seed %d: random pattern hit %d times (%+v)", seed, st.Hits, st)
				}
			}
		})
	}
}

func BenchmarkObserveRandomDisabled(b *testing.B) {
	// The cost YCSB-C pays: a gated stream observing random accesses.
	s := New(Config{}, nil)
	state := uint64(1)
	var buf []uint64
	for i := 0; i < 256; i++ {
		buf = s.Observe(splitmix64(&state), buf[:0])
	}
	if !s.Disabled() {
		b.Fatal("stream not disabled after random warmup")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Observe(splitmix64(&state), buf[:0])
	}
	_ = buf
}

func BenchmarkObserveSequential(b *testing.B) {
	s := New(Config{}, nil)
	var buf []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Observe(uint64(i), buf[:0])
	}
	_ = buf
}
