package queue

import (
	"sync"
	"sync/atomic"
)

// Deque is a work-stealing double-ended queue in the style of Chase–Lev,
// used by the TBB-like baseline runtime (internal/tbb). The owner pushes and
// pops at the bottom without contention in the common case; thieves steal
// from the top.
//
// The implementation favours clarity over the last nanosecond: steals take a
// mutex, owner operations are lock-free against other owner operations (there
// are none — single owner) and synchronize with thieves through atomics plus
// the steal mutex on the shrink path. This is faithful enough for a baseline
// whose performance characteristics (stealing overhead, contention on steal)
// are what the paper's comparison exercises.
type Deque[T any] struct {
	mu     sync.Mutex // serializes thieves and the owner's race window
	buf    []T
	mask   uint64
	bottom atomic.Uint64 // owner end (next free slot)
	top    atomic.Uint64 // thief end (oldest element)
}

// NewDeque returns a deque with capacity for at least n elements; it grows
// automatically when full.
func NewDeque[T any](n int) *Deque[T] {
	capacity := 1
	for capacity < n {
		capacity <<= 1
	}
	return &Deque[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}
}

// Len reports the approximate number of queued elements.
func (d *Deque[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// PushBottom appends v at the owner's end. It is safe for concurrent use
// (external producers may push too); the mutex keeps the implementation
// simple — the contention profile, not raw push speed, is what the
// baseline comparison exercises.
func (d *Deque[T]) PushBottom(v T) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t == uint64(len(d.buf)) {
		d.growLocked()
	}
	d.buf[b&d.mask] = v
	d.bottom.Store(b + 1)
}

func (d *Deque[T]) growLocked() {
	b := d.bottom.Load()
	t := d.top.Load()
	old := d.buf
	oldMask := d.mask
	buf := make([]T, len(old)*2)
	for i := t; i < b; i++ {
		buf[i&uint64(len(buf)-1)] = old[i&oldMask]
	}
	d.buf = buf
	d.mask = uint64(len(buf) - 1)
}

// PopBottom removes the youngest element (LIFO for the owner — good cache
// locality, the property TBB's scheduler exploits). Only the owning worker
// may call it.
func (d *Deque[T]) PopBottom() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.bottom.Load()
	t := d.top.Load()
	if b == t {
		return v, false
	}
	b--
	d.bottom.Store(b)
	v = d.buf[b&d.mask]
	var zero T
	d.buf[b&d.mask] = zero
	return v, true
}

// Steal removes the oldest element (FIFO for thieves — steals the victim's
// coldest work). Safe for concurrent use by any goroutine.
func (d *Deque[T]) Steal() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.top.Load()
	b := d.bottom.Load()
	if t == b {
		return v, false
	}
	v = d.buf[t&d.mask]
	var zero T
	d.buf[t&d.mask] = zero
	d.top.Store(t + 1)
	return v, true
}
