package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 10; i++ {
		d.PushBottom(i)
	}
	for want := 9; want >= 0; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque[int](4)
	for i := 0; i < 10; i++ {
		d.PushBottom(i)
	}
	for want := 0; want < 5; want++ {
		v, ok := d.Steal()
		if !ok || v != want {
			t.Fatalf("Steal = %d,%v, want %d,true", v, ok, want)
		}
	}
	// Owner still gets LIFO on the remainder.
	for want := 9; want >= 5; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestDequeGrow(t *testing.T) {
	d := NewDeque[int](2)
	const n = 1000
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	if got := d.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for want := 0; want < n; want++ {
		v, ok := d.Steal()
		if !ok || v != want {
			t.Fatalf("Steal = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestDequeConcurrentSteal(t *testing.T) {
	const n = 20000
	const thieves = 4
	d := NewDeque[int](64)
	var sum, count atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					sum.Add(int64(v))
					count.Add(1)
				} else {
					runtime.Gosched()
					select {
					case <-stop:
						// Drain whatever remains, then exit.
						for {
							v, ok := d.Steal()
							if !ok {
								return
							}
							sum.Add(int64(v))
							count.Add(1)
						}
					default:
					}
				}
			}
		}()
	}
	var want int64
	for i := 1; i <= n; i++ {
		d.PushBottom(i)
		want += int64(i)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				sum.Add(int64(v))
				count.Add(1)
			}
		}
	}
	close(stop)
	wg.Wait()
	// Owner drains leftovers (thieves may have exited with items left).
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		sum.Add(int64(v))
		count.Add(1)
	}
	if count.Load() != n {
		t.Fatalf("consumed %d items, want %d", count.Load(), n)
	}
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d (items duplicated or lost)", sum.Load(), want)
	}
}

// TestDequeModelQuick drives the deque and a slice model with the same
// operation sequence (owner-side only) and checks equivalence.
func TestDequeModelQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDeque[int](2)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				d.PushBottom(next)
				model = append(model, next)
				next++
			case 1: // owner pop (youngest)
				v, ok := d.PopBottom()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						return false
					}
				}
			case 2: // steal (oldest)
				v, ok := d.Steal()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						return false
					}
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
