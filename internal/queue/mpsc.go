// Package queue provides the latch-free queue building blocks of this
// repository: a generic multi-producer/single-consumer (MPSC) queue whose
// push is a single atomic exchange (the discipline §2.3 of the paper relies
// on for lightweight task spawns — the runtime's task pools use an
// intrusive specialization of the same algorithm in internal/mxtask), a
// bounded single-producer/single-consumer ring, and the work-stealing
// deque that backs the TBB-style baseline runtime.
package queue

import (
	"sync/atomic"
)

// node is the internal MPSC list node.
type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// MPSC is an unbounded multi-producer/single-consumer FIFO queue based on
// Vyukov's intrusive MPSC design. Any number of goroutines may Push
// concurrently; exactly one goroutine may Pop.
//
// Push performs one atomic exchange plus one atomic store, mirroring the
// "single atomic xchg" task-spawn cost the paper describes. Pop is wait-free
// except for the transient window in which a producer has exchanged the tail
// but not yet linked its node; Pop reports "empty" in that window rather than
// spinning, so the consumer can go do other work.
type MPSC[T any] struct {
	tail   atomic.Pointer[node[T]] // producers exchange this
	head   *node[T]                // consumer-owned
	stub   node[T]
	length atomic.Int64
}

// NewMPSC returns an empty queue ready for use.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	q.tail.Store(&q.stub)
	q.head = &q.stub
	return q
}

// Push enqueues v. It is safe for concurrent use by multiple producers.
func (q *MPSC[T]) Push(v T) {
	n := &node[T]{val: v}
	prev := q.tail.Swap(n) // the single atomic exchange
	prev.next.Store(n)     // link; consumer tolerates the gap
	q.length.Add(1)
}

// Pop dequeues the oldest value. It must only be called by the single
// consumer. ok is false when the queue is observed empty (including the
// transient window in which a producer has exchanged the tail but not yet
// linked its node).
func (q *MPSC[T]) Pop() (v T, ok bool) {
	head := q.head
	next := head.next.Load()
	if head == &q.stub {
		if next == nil {
			return v, false
		}
		q.head = next
		head = next
		next = head.next.Load()
	}
	if next != nil {
		q.head = next
		v = head.val
		var zero T
		head.val = zero
		q.length.Add(-1)
		return v, true
	}
	tail := q.tail.Load()
	if head != tail {
		// A producer exchanged the tail but has not linked yet.
		return v, false
	}
	// head is the last real element. Re-insert the stub behind it so the
	// tail never dangles, then detach head.
	q.stub.next.Store(nil)
	prev := q.tail.Swap(&q.stub)
	prev.next.Store(&q.stub)
	next = head.next.Load()
	if next == nil {
		// A concurrent producer slipped in between the Swap above and
		// our re-check; its node will become visible shortly.
		return v, false
	}
	q.head = next
	v = head.val
	var zero T
	head.val = zero
	q.length.Add(-1)
	return v, true
}

// Len reports the approximate number of queued elements.
func (q *MPSC[T]) Len() int { return int(q.length.Load()) }

// Empty reports whether the queue appears empty. Like Len, the answer is a
// snapshot and may be stale by the time the caller acts on it.
func (q *MPSC[T]) Empty() bool { return q.Len() == 0 }
