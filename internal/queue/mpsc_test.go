package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestMPSCBasic(t *testing.T) {
	q := NewMPSC[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	if !q.Empty() {
		t.Fatal("new queue not empty")
	}
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for want := 1; want <= 3; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained queue succeeded")
	}
}

func TestMPSCInterleaved(t *testing.T) {
	q := NewMPSC[int]()
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < round%7+1; i++ {
			q.Push(next)
			next++
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
	if !q.Empty() {
		t.Fatalf("queue not empty after drain, len=%d", q.Len())
	}
}

func TestMPSCFIFOPerProducer(t *testing.T) {
	const producers = 4
	const perProducer = 2000
	q := NewMPSC[[2]int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[int]int) // producer -> next expected sequence
	total := 0
	for total < producers*perProducer {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched() // let producers run on single-CPU hosts
			continue
		}
		p, seq := v[0], v[1]
		if seen[p] != seq {
			t.Fatalf("producer %d: got seq %d, want %d (per-producer FIFO violated)", p, seq, seen[p])
		}
		seen[p] = seq + 1
		total++
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("extra element after all produced elements consumed")
	}
}

func TestMPSCNoLossQuick(t *testing.T) {
	// Property: pushing any sequence of values and draining yields a
	// multiset-equal sequence, with order preserved (single producer).
	f := func(vals []int16) bool {
		q := NewMPSC[int16]()
		for _, v := range vals {
			q.Push(v)
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMPSCPushPop(b *testing.B) {
	q := NewMPSC[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
