package queue

import "sync/atomic"

// SPSC is a bounded single-producer/single-consumer ring buffer: the
// classic worker-local staging structure (the runtime drains pool batches
// into a plain slice window instead, but the ring is part of the public
// toolkit, and PeekAt mirrors the lookahead the prefetcher performs).
//
// The capacity is rounded up to a power of two so index masking replaces the
// modulo operation.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // consumer position
	tail atomic.Uint64 // producer position
}

// NewSPSC returns a ring with capacity for at least n elements.
func NewSPSC[T any](n int) *SPSC[T] {
	capacity := 1
	for capacity < n {
		capacity <<= 1
	}
	return &SPSC[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}
}

// Cap returns the ring's capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of buffered elements.
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Push appends v. It returns false when the ring is full.
func (q *SPSC[T]) Push(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Pop removes the oldest element. ok is false when the ring is empty.
func (q *SPSC[T]) Pop() (v T, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return v, false
	}
	v = q.buf[head&q.mask]
	var zero T
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *SPSC[T]) Peek() (v T, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return v, false
	}
	return q.buf[head&q.mask], true
}

// PeekAt returns the element at offset i from the head (0 = oldest) without
// removing it. The worker's prefetch pass uses this to look a configurable
// distance ahead into the pool (§3, "prefetch distance").
func (q *SPSC[T]) PeekAt(i int) (v T, ok bool) {
	head := q.head.Load()
	if head+uint64(i) >= q.tail.Load() {
		return v, false
	}
	return q.buf[(head+uint64(i))&q.mask], true
}
