package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := NewSPSC[int](tc.n).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSPSCFullEmpty(t *testing.T) {
	q := NewSPSC[int](4)
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed before capacity", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
}

func TestSPSCPeekAt(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 5; i++ {
		q.Push(10 + i)
	}
	for i := 0; i < 5; i++ {
		v, ok := q.PeekAt(i)
		if !ok || v != 10+i {
			t.Fatalf("PeekAt(%d) = %d,%v, want %d,true", i, v, ok, 10+i)
		}
	}
	if _, ok := q.PeekAt(5); ok {
		t.Fatal("PeekAt past tail succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 10 {
		t.Fatalf("Peek = %d,%v, want 10,true", v, ok)
	}
	// Peeking must not consume.
	if got := q.Len(); got != 5 {
		t.Fatalf("Len after peeks = %d, want 5", got)
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](4)
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if q.Push(next) {
				next++
			}
		}
		for i := 0; i < 2; i++ {
			if v, ok := q.Pop(); ok {
				if v != expect {
					t.Fatalf("round %d: pop = %d, want %d", round, v, expect)
				}
				expect++
			}
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	const n = 20000
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := 0; want < n; {
		if v, ok := q.Pop(); ok {
			if v != want {
				t.Errorf("pop = %d, want %d", v, want)
				break
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

func TestSPSCOrderQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		q := NewSPSC[uint8](len(vals) + 1)
		for _, v := range vals {
			if !q.Push(v) {
				return false
			}
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
